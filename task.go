package awakemis

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"awakemis/internal/sim"
	"awakemis/internal/trace"
	"awakemis/internal/verify"
)

// Task is one registered problem: a name, an ID-assignment scheme, a
// run function, and an output verifier. Every public entry point —
// RunTask, Run, RunMIS, Runner.RunBatch, the deprecated wrappers, and
// both CLIs — dispatches through the task registry, so adding a
// problem means registering a Task, not editing the facade.
type Task struct {
	// Name identifies the task ("awake-mis", "coloring", ...).
	Name string
	// Kind is the problem family ("mis", "coloring", or "matching"),
	// which also names the Output field the task fills.
	Kind string
	// Summary is a one-line description with the paper reference.
	Summary string
	// IDScheme documents how the task derives per-node (or per-edge)
	// identifiers from Options.Seed.
	IDScheme string

	// rank orders the canonical task listing: the paper's MIS algorithms
	// first, then the §7 extensions.
	rank int
	// run executes the task; cfg is already resolved from opt.
	run func(ctx context.Context, g *Graph, opt Options, cfg sim.Config) (Output, *sim.Metrics, error)
	// verify checks the task's output against its oracle.
	verify func(g *Graph, out Output) error
}

// taskRegistry holds every registered task, keyed by name. Tasks are
// registered from per-algorithm shim files (task_*.go) at init time.
var taskRegistry = map[string]*Task{}

// registerTask adds a task to the registry; shim files call it from
// init. Registering an incomplete or duplicate task is a programming
// error, caught at startup.
func registerTask(t Task) {
	switch {
	case t.Name == "" || t.Kind == "" || t.run == nil || t.verify == nil:
		panic(fmt.Sprintf("awakemis: incomplete task registration %+v", t))
	case taskRegistry[t.Name] != nil:
		panic("awakemis: duplicate task " + t.Name)
	}
	taskRegistry[t.Name] = &t
}

// Tasks returns every registered task in canonical order.
func Tasks() []Task {
	out := make([]Task, 0, len(taskRegistry))
	for _, t := range taskRegistry {
		out = append(out, *t)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].rank != out[j].rank {
			return out[i].rank < out[j].rank
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// TaskNames returns the registered task names in canonical order.
func TaskNames() []string {
	ts := Tasks()
	names := make([]string, len(ts))
	for i, t := range ts {
		names[i] = t.Name
	}
	return names
}

// TaskByName looks a task up by name.
func TaskByName(name string) (Task, bool) {
	t, ok := taskRegistry[name]
	if !ok {
		return Task{}, false
	}
	return *t, true
}

// RunTask executes the named task on g and returns its Report. The
// output is always checked against the task's verification oracle
// before returning (a violation — possible only if a high-probability
// event failed — is reported as an error).
func RunTask(g *Graph, task string, opt Options) (*Report, error) {
	return RunTaskContext(context.Background(), g, task, opt)
}

// RunTaskContext is RunTask under a context: cancellation or a missed
// deadline aborts the simulation at the next round boundary and
// returns an error wrapping ctx.Err().
func RunTaskContext(ctx context.Context, g *Graph, task string, opt Options) (*Report, error) {
	return runTask(ctx, g, task, opt, opt.Workers)
}

// runTask is the registry dispatch shared by every entry point.
// workers overrides the stepped-engine pool size without being recorded
// in the Report (the Runner divides a shared budget among concurrent
// specs; worker count never changes results, so reports stay
// bit-identical to standalone runs).
func runTask(ctx context.Context, g *Graph, task string, opt Options, workers int) (*Report, error) {
	cfg, err := opt.simConfig(workers)
	if err != nil {
		return nil, err
	}
	return runTaskCfg(ctx, g, task, opt, cfg)
}

// runTaskOn is runTask against an explicit engine instance — the
// vectorized path hands each trial a lane handle of one shared
// sim.VectorEngine here, leaving everything else (IDs, tracer,
// observer, verification, Report assembly) on the scalar pipeline.
func runTaskOn(ctx context.Context, g *Graph, task string, opt Options, eng sim.Engine) (*Report, error) {
	cfg, err := opt.simConfig(opt.Workers)
	if err != nil {
		return nil, err
	}
	cfg.Engine = eng
	return runTaskCfg(ctx, g, task, opt, cfg)
}

func runTaskCfg(ctx context.Context, g *Graph, task string, opt Options, cfg sim.Config) (*Report, error) {
	t, ok := taskRegistry[task]
	if !ok {
		return nil, fmt.Errorf("awakemis: unknown task %q (have %s)",
			task, strings.Join(TaskNames(), "|"))
	}
	var collector *trace.Collector
	if opt.Trace {
		collector = trace.NewCollector()
		cfg.Tracer = collector
	}
	var acc *roundSummaryAcc
	if opt.RoundSummary {
		acc = &roundSummaryAcc{}
	}
	if acc != nil || opt.Observer != nil {
		cfg.Observer = &simObserver{user: opt.Observer, acc: acc}
	}
	start := time.Now()
	out, m, err := t.run(ctx, g, opt, cfg)
	if err != nil {
		return nil, fmt.Errorf("awakemis: %s: %w", task, err)
	}
	if verr := t.verify(g, out); verr != nil {
		return nil, fmt.Errorf("awakemis: %s produced invalid output (failed w.h.p. event): %w", task, verr)
	}
	rep := &Report{
		Task:     task,
		Engine:   cfg.Engine.Name(),
		Workers:  opt.Workers,
		Seed:     opt.Seed,
		Graph:    statsOf(g),
		Metrics:  fromSim(m),
		Output:   out,
		Verified: true,
		WallMS:   float64(time.Since(start)) / float64(time.Millisecond),
		trace:    collector,
	}
	if acc != nil {
		rep.RoundSummary = acc.summary()
	}
	return rep, nil
}

// verifyMIS is the output oracle shared by every MIS task.
func verifyMIS(g *Graph, out Output) error {
	return verify.CheckMIS(g.internal(), out.InMIS)
}
