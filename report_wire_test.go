package awakemis_test

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"awakemis"
)

// fullReport populates every wire field of a Report with distinctive
// values — the fixture the golden file freezes.
func fullReport() *awakemis.Report {
	return &awakemis.Report{
		Task:    "awake-mis",
		Name:    "golden",
		Engine:  "stepped",
		Workers: 8,
		Seed:    42,
		Graph:   awakemis.GraphStats{N: 64, M: 160, MaxDegree: 9},
		Metrics: awakemis.Metrics{
			Rounds:         1234,
			ExecutedRounds: 210,
			MaxAwake:       17,
			AvgAwake:       8.25,
			AwakeQuantiles: awakemis.AwakeQuantiles{Min: 2, P25: 5, P50: 8, P75: 11, P90: 14, P99: 16},
			AwakePerNode:   []int64{1, 2, 3}, // json:"-": must never appear on the wire
			MessagesSent:   5120,
			BitsSent:       81920,
			MaxMessageBits: 176,
		},
		Output:   awakemis.Output{InMIS: []bool{true, false, true}},
		Verified: true,
		WallMS:   12.5,
	}
}

// TestReportGoldenJSON freezes the Report wire format: field names,
// field order, and indentation must match the checked-in golden file
// byte for byte. Reports are served over HTTP and content-addressed
// in the daemon's cache, so silent drift breaks clients and
// invalidates caches — if a change here is intentional, it is a wire
// format break: update testdata/report_golden.json deliberately and
// call it out in the changelog.
func TestReportGoldenJSON(t *testing.T) {
	got, err := fullReport().JSON()
	if err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "report_golden.json")
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading %s: %v (regenerate by writing the marshaled fixture)", golden, err)
	}
	if string(got) != strings.TrimRight(string(want), "\n") {
		t.Errorf("Report wire format drifted from %s:\n--- got ---\n%s\n--- want ---\n%s", golden, got, want)
	}
}

// TestReportOmitemptyAudit pins which fields are elided when unset:
// optional labels and per-task outputs vanish, while structural
// fields (task, engine, seed, graph, metrics, output, verified,
// wall_ms) always appear so clients can rely on them.
func TestReportOmitemptyAudit(t *testing.T) {
	minimal := &awakemis.Report{Task: "luby", Engine: "stepped"}
	data, err := json.Marshal(minimal)
	if err != nil {
		t.Fatal(err)
	}
	var keys map[string]json.RawMessage
	if err := json.Unmarshal(data, &keys); err != nil {
		t.Fatal(err)
	}
	for _, always := range []string{"task", "engine", "seed", "graph", "metrics", "output", "verified", "wall_ms"} {
		if _, ok := keys[always]; !ok {
			t.Errorf("minimal report is missing required field %q", always)
		}
	}
	for _, elided := range []string{"name", "workers"} {
		if _, ok := keys[elided]; ok {
			t.Errorf("minimal report should elide %q", elided)
		}
	}

	// The compact awake-distribution summary always rides inside
	// metrics — even a zero-value report carries it, so study
	// aggregators never need to probe for its presence.
	var metrics map[string]json.RawMessage
	if err := json.Unmarshal(keys["metrics"], &metrics); err != nil {
		t.Fatal(err)
	}
	if _, ok := metrics["awake_quantiles"]; !ok {
		t.Error("metrics is missing awake_quantiles")
	}

	// The per-node awake counters are in-memory only (million-node
	// reports must stay compact), and empty task outputs are elided.
	full, err := json.Marshal(fullReport())
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(full), "AwakePerNode") || strings.Contains(string(full), "awake_per_node") {
		t.Error("AwakePerNode leaked onto the wire")
	}
	var out map[string]json.RawMessage
	if err := json.Unmarshal(data, &keys); err != nil {
		t.Fatal(err)
	}
	outRaw := keys["output"]
	if err := json.Unmarshal(outRaw, &out); err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{"in_mis", "color", "matched_with"} {
		if _, ok := out[field]; ok {
			t.Errorf("empty output should elide %q", field)
		}
	}
}

// TestReportRoundTrip: a report decoded from its own wire form and
// re-encoded is byte-identical — the property the daemon's cache and
// client rely on.
func TestReportRoundTrip(t *testing.T) {
	first, err := fullReport().JSON()
	if err != nil {
		t.Fatal(err)
	}
	var decoded awakemis.Report
	if err := json.Unmarshal(first, &decoded); err != nil {
		t.Fatal(err)
	}
	second, err := decoded.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(first) != string(second) {
		t.Errorf("round trip not stable:\n%s\nvs\n%s", first, second)
	}
}
