package awakemis

import (
	"context"
	"fmt"
)

// GraphSpec describes a generated input graph declaratively, so a Spec
// is fully serializable: the same JSON always reproduces the same
// graph. The fields mirror Generate / GenOptions.
type GraphSpec struct {
	// Family is a Generate family name ("" means "gnp").
	Family string `json:"family,omitempty"`
	// N is the number of nodes (0 means the Generate default, 1024).
	N int `json:"n,omitempty"`
	// P is the edge probability for gnp (0 means 4/n).
	P float64 `json:"p,omitempty"`
	// Degree is the degree for regular / attachments for powerlaw.
	Degree int `json:"degree,omitempty"`
	// Radius is the connection radius for geometric.
	Radius float64 `json:"radius,omitempty"`
	// Seed drives the generator. Zero means "derive from the run seed":
	// the spec's resolved Options.Seed, so one number reproduces both
	// the graph and the run on it.
	Seed int64 `json:"seed,omitempty"`
}

// build generates the graph, substituting runSeed for a zero Seed.
func (gs GraphSpec) build(runSeed int64) (*Graph, error) {
	family := gs.Family
	if family == "" {
		family = "gnp"
	}
	seed := gs.Seed
	if seed == 0 {
		seed = runSeed
	}
	return Generate(family, GenOptions{
		N: gs.N, P: gs.P, Degree: gs.Degree, Radius: gs.Radius, Seed: seed,
	})
}

// Spec is one unit of batch work: which task, on which graph, under
// which options. Specs marshal to/from JSON (the cmd/awakemis -batch
// file is a JSON array of them).
type Spec struct {
	// Name labels the spec in reports and progress output (optional).
	Name string `json:"name,omitempty"`
	// Task is the registered task name to run.
	Task string `json:"task"`
	// Graph describes the input graph.
	Graph GraphSpec `json:"graph"`
	// Options configures the run. A zero Seed is resolved by the Runner
	// through deterministic derivation (see Runner.Seed); RunSpec uses
	// it as-is.
	Options Options `json:"options"`
}

// RunSpec builds the spec's graph and executes its task, returning the
// Report. Equivalent to Generate + RunTask; Runner.RunBatch produces
// bit-identical reports for the same resolved specs.
func RunSpec(spec Spec) (*Report, error) {
	return RunSpecContext(context.Background(), spec)
}

// RunSpecContext is RunSpec under a context.
func RunSpecContext(ctx context.Context, spec Spec) (*Report, error) {
	return runSpec(ctx, spec, spec.Options.Workers)
}

// RunSpecWorkers is RunSpecContext with an explicit stepped-engine
// worker-pool size that overrides Options.Workers without being
// recorded in the Report — the caller's share of a machine-wide
// budget. The Runner and the service daemon use it to divide one
// budget among concurrent runs while keeping reports bit-identical to
// standalone RunSpec calls (worker counts never change results).
// workers == 0 falls back to Options.Workers.
func RunSpecWorkers(ctx context.Context, spec Spec, workers int) (*Report, error) {
	if workers == 0 {
		workers = spec.Options.Workers
	}
	return runSpec(ctx, spec, workers)
}

// runSpec runs one spec with an explicit worker-pool size (the
// Runner's share of its budget; never recorded in the Report).
func runSpec(ctx context.Context, spec Spec, workers int) (*Report, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	g, err := spec.Graph.build(spec.Options.Seed)
	if err != nil {
		return nil, fmt.Errorf("awakemis: spec %s: %w", spec.label(), err)
	}
	rep, err := runTask(ctx, g, spec.Task, spec.Options, workers)
	if err != nil {
		return nil, err
	}
	rep.Name = spec.Name
	return rep, nil
}

// label names the spec in errors and progress lines.
func (s Spec) label() string {
	if s.Name != "" {
		return s.Name
	}
	return s.Task
}
