package awakemis

import (
	"context"
	"fmt"
)

// GraphSpec describes a generated input graph declaratively, so a Spec
// is fully serializable: the same JSON always reproduces the same
// graph. The fields mirror Generate / GenOptions.
type GraphSpec struct {
	// Family is a Generate family name ("" means "gnp").
	Family string `json:"family,omitempty"`
	// N is the number of nodes (0 means the Generate default, 1024).
	N int `json:"n,omitempty"`
	// P is the edge probability for gnp (0 means 4/n).
	P float64 `json:"p,omitempty"`
	// Degree is the degree for regular / attachments for powerlaw.
	Degree int `json:"degree,omitempty"`
	// Radius is the connection radius for geometric.
	Radius float64 `json:"radius,omitempty"`
	// Seed drives the generator. Zero means "derive from the run seed":
	// the spec's resolved Options.Seed, so one number reproduces both
	// the graph and the run on it.
	Seed int64 `json:"seed,omitempty"`
}

// build generates the graph, substituting runSeed for a zero Seed.
func (gs GraphSpec) build(runSeed int64) (*Graph, error) {
	family := gs.Family
	if family == "" {
		family = "gnp"
	}
	seed := gs.Seed
	if seed == 0 {
		seed = runSeed
	}
	return Generate(family, GenOptions{
		N: gs.N, P: gs.P, Degree: gs.Degree, Radius: gs.Radius, Seed: seed,
	})
}

// Spec is one unit of batch work: which task, on which graph, under
// which options. Specs marshal to/from JSON (the cmd/awakemis -batch
// file is a JSON array of them).
type Spec struct {
	// Name labels the spec in reports and progress output (optional).
	Name string `json:"name,omitempty"`
	// Task is the registered task name to run.
	Task string `json:"task"`
	// Graph describes the input graph.
	Graph GraphSpec `json:"graph"`
	// Options configures the run. A zero Seed is resolved by the Runner
	// through deterministic derivation (see Runner.Seed); Run uses it
	// as-is.
	Options Options `json:"options"`
}

// RunSpec builds the spec's graph and executes its task, returning the
// Report.
//
// Deprecated: use Run(context.Background(), spec). RunSpec is a thin
// delegate kept for compatibility.
func RunSpec(spec Spec) (*Report, error) {
	return Run(context.Background(), spec)
}

// RunSpecContext is RunSpec under a context.
//
// Deprecated: use Run(ctx, spec). RunSpecContext is a thin delegate
// kept for compatibility.
func RunSpecContext(ctx context.Context, spec Spec) (*Report, error) {
	return Run(ctx, spec)
}

// RunSpecWorkers is RunSpecContext with an explicit stepped-engine
// worker-pool size.
//
// Deprecated: use Run(ctx, spec, WithWorkers(workers)). RunSpecWorkers
// is a thin delegate kept for compatibility.
func RunSpecWorkers(ctx context.Context, spec Spec, workers int) (*Report, error) {
	return Run(ctx, spec, WithWorkers(workers))
}

// runSpec runs one spec with an explicit worker-pool size (the
// Runner's share of its budget; never recorded in the Report).
func runSpec(ctx context.Context, spec Spec, workers int) (*Report, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	g, err := spec.Graph.build(spec.Options.Seed)
	if err != nil {
		return nil, fmt.Errorf("awakemis: spec %s: %w", spec.label(), err)
	}
	rep, err := runTask(ctx, g, spec.Task, spec.Options, workers)
	if err != nil {
		return nil, err
	}
	rep.Name = spec.Name
	return rep, nil
}

// label names the spec in errors and progress lines.
func (s Spec) label() string {
	if s.Name != "" {
		return s.Name
	}
	return s.Task
}
