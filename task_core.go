package awakemis

import (
	"context"

	"awakemis/internal/core"
	"awakemis/internal/ldtmis"
	"awakemis/internal/sim"
)

// Registration shim for internal/core: the paper's headline Awake-MIS
// algorithm (Theorem 13) and its round-efficient variant
// (Corollary 14).
func init() {
	registerTask(Task{
		Name:     string(AwakeMIS),
		Kind:     "mis",
		Summary:  "O(log log n)-awake MIS, the paper's main result (Theorem 13)",
		IDScheme: "anonymous: per-node randomness only, random poly(N) IDs drawn internally",
		rank:     0,
		run:      runAwakeMIS(ldtmis.VariantAwake),
		verify:   verifyMIS,
	})
	registerTask(Task{
		Name:     string(AwakeMISRound),
		Kind:     "mis",
		Summary:  "Awake-MIS on the deterministic LDT construction (Corollary 14)",
		IDScheme: "anonymous: per-node randomness only, random poly(N) IDs drawn internally",
		rank:     1,
		run:      runAwakeMIS(ldtmis.VariantRound),
		verify:   verifyMIS,
	})
}

func runAwakeMIS(variant ldtmis.Variant) func(context.Context, *Graph, Options, sim.Config) (Output, *sim.Metrics, error) {
	return func(ctx context.Context, g *Graph, opt Options, cfg sim.Config) (Output, *sim.Metrics, error) {
		params := opt.Params
		if variant == ldtmis.VariantRound {
			params.Variant = ldtmis.VariantRound
		}
		res, m, err := core.RunContext(ctx, g.internal(), params, cfg)
		if err != nil {
			return Output{}, m, err
		}
		return Output{InMIS: res.InMIS}, m, nil
	}
}
