package awakemis

import (
	"context"

	"awakemis/internal/sim"
	"awakemis/internal/verify"
	"awakemis/internal/vtcolor"
)

// Registration shim for internal/vtcolor: greedy (Δ+1)-coloring, the
// first §7 extension.
func init() {
	registerTask(Task{
		Name:     TaskColoring,
		Kind:     "coloring",
		Summary:  "greedy (Δ+1)-coloring in O(log n) awake rounds (§7 extension)",
		IDScheme: `random permutation of [1, n], stream "perm-ids"`,
		rank:     6,
		run: func(ctx context.Context, g *Graph, opt Options, cfg sim.Config) (Output, *sim.Metrics, error) {
			n := g.N()
			res, m, err := vtcolor.RunContext(ctx, g.internal(), permIDs(n, opt.Seed), n, cfg)
			if err != nil {
				return Output{}, m, err
			}
			return Output{Color: res.Color}, m, nil
		},
		verify: func(g *Graph, out Output) error {
			return verify.CheckColoring(g.internal(), out.Color)
		},
	})
}
