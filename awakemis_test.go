package awakemis

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestRunAllAlgorithmsProduceValidMIS(t *testing.T) {
	graphs := map[string]*Graph{
		"gnp":   GNP(80, 0.05, 1),
		"cycle": Cycle(30),
		"tree":  RandomTree(40, 2),
		"geo":   RandomGeometric(60, 0.2, 3),
	}
	for gname, g := range graphs {
		for _, algo := range Algorithms() {
			t.Run(gname+"/"+string(algo), func(t *testing.T) {
				res, err := RunMIS(g, algo, Options{Seed: 7, Strict: true})
				if err != nil {
					t.Fatal(err)
				}
				if err := Verify(g, res.InMIS); err != nil {
					t.Fatal(err)
				}
				if res.Metrics.MaxAwake < 1 || res.Metrics.Rounds < 1 {
					t.Errorf("suspicious metrics: %+v", res.Metrics)
				}
				if len(res.Metrics.AwakePerNode) != g.N() {
					t.Error("per-node metrics wrong length")
				}
			})
		}
	}
}

func TestRunUnknownAlgorithm(t *testing.T) {
	if _, err := RunMIS(Cycle(4), Algorithm("bogus"), Options{}); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}

func TestAwakeMISBeatsLubyGrowth(t *testing.T) {
	// The headline claim at the API level: as n grows 16x, Luby's awake
	// complexity grows log-like while Awake-MIS stays essentially flat.
	small, large := 64, 1024
	awake := func(algo Algorithm, n int) int64 {
		g := GNP(n, 4/float64(n), int64(n))
		res, err := RunMIS(g, algo, Options{Seed: int64(n)})
		if err != nil {
			t.Fatal(err)
		}
		return res.Metrics.MaxAwake
	}
	lubyGrowth := float64(awake(Luby, large)) / float64(awake(Luby, small))
	oursGrowth := float64(awake(AwakeMIS, large)) / float64(awake(AwakeMIS, small))
	if oursGrowth >= lubyGrowth {
		t.Errorf("awake-mis growth %.2fx not below luby growth %.2fx", oursGrowth, lubyGrowth)
	}
	if oursGrowth > 1.4 {
		t.Errorf("awake-mis growth %.2fx not log log-flat", oursGrowth)
	}
}

func TestNewGraphValidation(t *testing.T) {
	if _, err := NewGraph(3, [][2]int{{0, 0}}); err == nil {
		t.Error("self-loop accepted")
	}
	g, err := NewGraph(3, [][2]int{{0, 1}, {1, 2}, {0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if g.M() != 2 {
		t.Errorf("M = %d, want 2", g.M())
	}
	if got := g.Neighbors(1); len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Errorf("Neighbors(1) = %v", got)
	}
}

func TestGraphAccessors(t *testing.T) {
	g := Grid(3, 3)
	if g.N() != 9 || g.M() != 12 || g.MaxDegree() != 4 {
		t.Errorf("grid stats wrong: %v", g)
	}
	if !g.IsConnected() {
		t.Error("grid should be connected")
	}
	if len(g.Components()) != 1 {
		t.Error("grid has one component")
	}
	if len(g.Edges()) != 12 {
		t.Error("edge list wrong")
	}
	if !strings.Contains(g.String(), "n=9") {
		t.Errorf("String() = %s", g)
	}
	if Star(5).Degree(0) != 4 {
		t.Error("star center degree wrong")
	}
}

func TestGeneratorsProduceExpectedSizes(t *testing.T) {
	tests := []struct {
		g    *Graph
		n, m int
	}{
		{Cycle(5), 5, 5},
		{Path(5), 5, 4},
		{Complete(5), 5, 10},
		{Star(5), 5, 4},
		{RandomTree(17, 1), 17, 16},
	}
	for _, tt := range tests {
		if tt.g.N() != tt.n || tt.g.M() != tt.m {
			t.Errorf("%v: want n=%d m=%d", tt.g, tt.n, tt.m)
		}
	}
	if g := PreferentialAttachment(50, 2, 4); g.N() != 50 || !g.IsConnected() {
		t.Error("preferential attachment wrong")
	}
	if g := RandomRegular(30, 3, 5); g.MaxDegree() > 3 {
		t.Error("regular graph exceeds degree")
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	g := GNP(50, 0.08, 9)
	a, err := RunMIS(g, AwakeMIS, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunMIS(g, AwakeMIS, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for v := range a.InMIS {
		if a.InMIS[v] != b.InMIS[v] {
			t.Fatalf("replay diverged at %d", v)
		}
	}
	if a.Metrics.Rounds != b.Metrics.Rounds || a.Metrics.BitsSent != b.Metrics.BitsSent {
		t.Error("metrics diverged")
	}
}

func TestQuickFacadeAlwaysValid(t *testing.T) {
	f := func(seed int64, nn uint8) bool {
		n := int(nn%30) + 2
		g := GNP(n, 0.2, seed)
		res, err := RunMIS(g, AwakeMIS, Options{Seed: seed})
		if err != nil {
			return false
		}
		return Verify(g, res.InMIS) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}
