// WaitStudy transport tests against a scripted daemon: the SSE path
// is preferred when served, and a daemon without the events endpoint
// (older build, buffering proxy) degrades transparently to polling.
package client_test

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"awakemis/client"
)

// scriptedStudyMux fakes the study surface: the status GET serves
// "running" until `polls` requests have arrived, then "done"; the
// events route streams two SSE frames when on, and 404s when off.
func scriptedStudyMux(polls int64, sse bool, gets, streams *atomic.Int64) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/studies/s-000001", func(w http.ResponseWriter, _ *http.Request) {
		status := "running"
		if gets.Add(1) >= polls {
			status = "done"
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]any{
			"id": "s-000001", "status": status, "done": 1, "total": 2,
		})
	})
	if sse {
		mux.HandleFunc("GET /v1/studies/s-000001/events", func(w http.ResponseWriter, _ *http.Request) {
			streams.Add(1)
			w.Header().Set("Content-Type", "text/event-stream")
			fmt.Fprint(w, `data: {"id":"s-000001","status":"running","done":1,"total":2}`+"\n\n")
			fmt.Fprint(w, `data: {"id":"s-000001","status":"done","done":2,"total":2}`+"\n\n")
		})
	}
	return mux
}

// TestWaitStudyPrefersSSE: with the events endpoint served, WaitStudy
// consumes the stream to the terminal frame and never polls.
func TestWaitStudyPrefersSSE(t *testing.T) {
	var gets, streams atomic.Int64
	ts := httptest.NewServer(scriptedStudyMux(1, true, &gets, &streams))
	defer ts.Close()

	c := client.New(ts.URL, ts.Client())
	var observed []string
	st, err := c.WaitStudy(context.Background(), "s-000001", func(s *client.Study) {
		observed = append(observed, string(s.Status))
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Status != client.JobDone || st.Done != 2 {
		t.Fatalf("study = %+v", st)
	}
	if streams.Load() != 1 || gets.Load() != 0 {
		t.Errorf("streams=%d gets=%d, want the SSE path only", streams.Load(), gets.Load())
	}
	if len(observed) != 2 || observed[0] != "running" {
		t.Errorf("observed states %v, want [running done]", observed)
	}
}

// TestWaitStudyPollingFallback: a daemon without the events route
// (404) degrades to the polling loop and still lands the terminal
// state.
func TestWaitStudyPollingFallback(t *testing.T) {
	var gets, streams atomic.Int64
	ts := httptest.NewServer(scriptedStudyMux(3, false, &gets, &streams))
	defer ts.Close()

	c := client.New(ts.URL, ts.Client())
	c.PollInterval = 1 // fastest legal pacing; jitter stays sub-millisecond
	sawRunning := false
	st, err := c.WaitStudy(context.Background(), "s-000001", func(s *client.Study) {
		if s.Status == client.JobRunning {
			sawRunning = true
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Status != client.JobDone {
		t.Fatalf("study = %+v", st)
	}
	if gets.Load() < 3 {
		t.Errorf("server saw %d status polls, want >= 3", gets.Load())
	}
	if !sawRunning {
		t.Error("polling fallback never observed the running state")
	}
}
