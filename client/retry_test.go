package client_test

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"awakemis"
	"awakemis/client"
)

// overloadedThenOK fakes a daemon whose queue is full for the first
// `fails` submissions: queue-full 503s carry Retry-After (the marker
// the client backs off on), then the job is accepted.
func overloadedThenOK(fails int64, calls *atomic.Int64) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := calls.Add(1)
		if n <= fails {
			w.Header().Set("Retry-After", "1")
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusServiceUnavailable)
			json.NewEncoder(w).Encode(map[string]string{"error": "job queue is full (1 pending)"})
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(map[string]any{"id": "j-000001", "status": "queued"})
	})
}

func testSpec() awakemis.Spec {
	return awakemis.Spec{Task: "luby", Graph: awakemis.GraphSpec{Family: "gnp", N: 32}}
}

// TestSubmitRetriesQueueFull is the satellite acceptance test: a
// server that 503s twice (queue full) then succeeds — Submit backs
// off and lands the job on the third attempt.
func TestSubmitRetriesQueueFull(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(overloadedThenOK(2, &calls))
	defer ts.Close()

	c := client.New(ts.URL, ts.Client())
	start := time.Now()
	job, err := c.Submit(context.Background(), testSpec())
	if err != nil {
		t.Fatalf("submit after two 503s: %v", err)
	}
	if job.ID != "j-000001" {
		t.Errorf("job = %+v", job)
	}
	if got := calls.Load(); got != 3 {
		t.Errorf("server saw %d requests, want 3", got)
	}
	// Two waits of at least 50ms and 100ms happened between attempts.
	if elapsed := time.Since(start); elapsed < 150*time.Millisecond {
		t.Errorf("retries completed in %v; backoff not applied", elapsed)
	}
}

// TestSubmitRetriesAreCapped: a persistently full queue surfaces the
// 503 after MaxRetries retries instead of spinning forever.
func TestSubmitRetriesAreCapped(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(overloadedThenOK(1<<30, &calls))
	defer ts.Close()

	c := client.New(ts.URL, ts.Client())
	c.MaxRetries = 2
	_, err := c.Submit(context.Background(), testSpec())
	apiErr := new(client.APIError)
	if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("capped retry error = %v, want 503", err)
	}
	if apiErr.RetryAfter != time.Second {
		t.Errorf("RetryAfter = %v, want 1s from the header", apiErr.RetryAfter)
	}
	if got := calls.Load(); got != 3 { // initial attempt + 2 retries
		t.Errorf("server saw %d requests, want 3", got)
	}
}

// TestSubmitDoesNotRetryDraining: a 503 without Retry-After (the
// draining case) is a hard error — the server is going away, backing
// off cannot help.
func TestSubmitDoesNotRetryDraining(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusServiceUnavailable)
		json.NewEncoder(w).Encode(map[string]string{"error": "server is draining"})
	}))
	defer ts.Close()

	c := client.New(ts.URL, ts.Client())
	_, err := c.Submit(context.Background(), testSpec())
	apiErr := new(client.APIError)
	if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining error = %v, want 503", err)
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("server saw %d requests, want 1 (no retries while draining)", got)
	}
}

// TestSubmitRetryRespectsContext: cancellation during a backoff wait
// returns promptly with ctx's error.
func TestSubmitRetryRespectsContext(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(overloadedThenOK(1<<30, &calls))
	defer ts.Close()

	c := client.New(ts.URL, ts.Client())
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.Submit(ctx, testSpec())
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("cancellation took %v to surface", elapsed)
	}
}
