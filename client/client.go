// Package client is the typed Go client for the awakemisd service
// API: submit Specs, poll jobs, wait for Reports, cancel, and read
// the registry, stats, and health endpoints. The wire structs mirror
// internal/service one for one; the daemon's own end-to-end tests run
// through this package, so drift between the two is caught in CI.
package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"strconv"
	"strings"
	"time"

	"awakemis"
	"awakemis/internal/traceid"
)

// TraceIDHeader is the HTTP header carrying the request trace id. The
// client stamps it on every request whose context carries an id (see
// WithTraceID); Submit/SubmitStudy/Run mint one when absent, so every
// submission is greppable across the daemons it touches.
const TraceIDHeader = traceid.Header

// WithTraceID returns ctx carrying the given trace id; subsequent
// client calls under this ctx stamp it on their requests.
func WithTraceID(ctx context.Context, id string) context.Context {
	return traceid.With(ctx, id)
}

// TraceID returns the trace id carried by ctx, or "".
func TraceID(ctx context.Context) string { return traceid.From(ctx) }

// JobStatus mirrors the service's job lifecycle states.
type JobStatus string

const (
	JobQueued   JobStatus = "queued"
	JobRunning  JobStatus = "running"
	JobDone     JobStatus = "done"
	JobFailed   JobStatus = "failed"
	JobCanceled JobStatus = "canceled"
)

// Terminal reports whether the status is final.
func (s JobStatus) Terminal() bool {
	return s == JobDone || s == JobFailed || s == JobCanceled
}

// Job is one submission as the server reports it. Spec is the
// server's canonical form and Hash its content address.
type Job struct {
	ID     string          `json:"id"`
	Status JobStatus       `json:"status"`
	Hash   string          `json:"hash"`
	Spec   awakemis.Spec   `json:"spec"`
	Cached bool            `json:"cached,omitempty"`
	Error  string          `json:"error,omitempty"`
	Report json.RawMessage `json:"report,omitempty"`
	// TraceID is the trace id the submission carried (or the daemon
	// minted for it).
	TraceID string `json:"trace_id,omitempty"`
	// Progress is the live view of the running simulation, present
	// while the job runs.
	Progress *JobProgress `json:"progress,omitempty"`
}

// JobProgress mirrors the service's live job-progress block.
type JobProgress struct {
	// Rounds is the round horizon reached; Executed counts rounds
	// actually executed (all-asleep rounds are skipped).
	Rounds   int64 `json:"rounds"`
	Executed int64 `json:"executed"`
	// Awake is the awake-node count of the last observed round;
	// AwakeFrac the same over the graph size.
	Awake     int     `json:"awake"`
	AwakeFrac float64 `json:"awake_frac"`
	// ElapsedMS is wall time since the simulation started; ETAMS the
	// server's remaining-time estimate (0 until the awake count decays).
	ElapsedMS float64 `json:"elapsed_ms"`
	ETAMS     float64 `json:"eta_ms,omitempty"`
}

// DecodeReport unmarshals the job's Report (Status must be "done").
func (j *Job) DecodeReport() (*awakemis.Report, error) {
	if j.Status != JobDone {
		return nil, fmt.Errorf("client: job %s is %s, not done", j.ID, j.Status)
	}
	var rep awakemis.Report
	if err := json.Unmarshal(j.Report, &rep); err != nil {
		return nil, fmt.Errorf("client: decoding report of job %s: %w", j.ID, err)
	}
	return &rep, nil
}

// TaskInfo is one /v1/tasks registry entry.
type TaskInfo struct {
	Name     string `json:"name"`
	Kind     string `json:"kind"`
	Summary  string `json:"summary"`
	IDScheme string `json:"id_scheme"`
}

// Stats is the /v1/stats payload.
type Stats struct {
	CacheHits      int64 `json:"cache_hits"`
	CacheMisses    int64 `json:"cache_misses"`
	Coalesced      int64 `json:"coalesced"`
	EngineRuns     int64 `json:"engine_runs"`
	CacheEntries   int   `json:"cache_entries"`
	CacheBytes     int64 `json:"cache_bytes"`
	CacheBudget    int64 `json:"cache_budget_bytes"`
	CacheEvictions int64 `json:"cache_evictions"`
	JobsSubmitted  int64 `json:"jobs_submitted"`
	JobsCompleted  int64 `json:"jobs_completed"`
	JobsFailed     int64 `json:"jobs_failed"`
	JobsCanceled   int64 `json:"jobs_canceled"`

	StudiesSubmitted int64 `json:"studies_submitted"`
	StudiesCompleted int64 `json:"studies_completed"`
	StudiesFailed    int64 `json:"studies_failed"`
	StudiesCanceled  int64 `json:"studies_canceled"`
	// StudyCells tallies terminal study cells by outcome ("done",
	// "cached", "failed", "canceled"); omitted until a study finishes.
	StudyCells map[string]int64 `json:"study_cells,omitempty"`

	QueueDepth int  `json:"queue_depth"`
	InFlight   int  `json:"inflight"`
	Draining   bool `json:"draining"`

	// Persistent store tier (omitted unless the daemon runs with
	// -store-dir).
	StoreHits      int64 `json:"store_hits,omitempty"`
	StoreMisses    int64 `json:"store_misses,omitempty"`
	StoreEntries   int64 `json:"store_entries,omitempty"`
	StoreBytes     int64 `json:"store_bytes,omitempty"`
	StoreBudget    int64 `json:"store_budget_bytes,omitempty"`
	StoreEvictions int64 `json:"store_evictions,omitempty"`
	StoreCorrupt   int64 `json:"store_corrupt,omitempty"`
	StoreErrors    int64 `json:"store_errors,omitempty"`

	// Cluster forwarding (omitted unless the daemon fronts a cluster
	// with -peers).
	Forwarded     int64            `json:"forwarded,omitempty"`
	ForwardErrors int64            `json:"forward_errors,omitempty"`
	PeerForwards  map[string]int64 `json:"peer_forwards,omitempty"`
	PeersHealthy  int              `json:"peers_healthy,omitempty"`
	PeersTotal    int              `json:"peers_total,omitempty"`

	// Engine-level telemetry (omitted until a local simulation
	// executes a round).
	RoundsSimulated int64   `json:"rounds_simulated,omitempty"`
	SimSeconds      float64 `json:"sim_seconds,omitempty"`

	// Build identity of the serving daemon (mirrors Health).
	Version   string `json:"version,omitempty"`
	Revision  string `json:"revision,omitempty"`
	BuildTime string `json:"build_time,omitempty"`
	GoVersion string `json:"go_version,omitempty"`
}

// Health is the /v1/healthz payload: liveness plus the daemon's build
// identity.
type Health struct {
	Status    string `json:"status"`
	Version   string `json:"version,omitempty"`
	Revision  string `json:"revision,omitempty"`
	BuildTime string `json:"build_time,omitempty"`
	GoVersion string `json:"go_version,omitempty"`
}

// APIError is a non-2xx response decoded from the server's JSON error
// envelope.
type APIError struct {
	StatusCode int
	Message    string
	// RetryAfter is the server's Retry-After hint (zero when the
	// response carried none). The daemon attaches it to queue-full
	// 503s but not to draining 503s, and the Submit paths use exactly
	// that distinction to decide whether backing off can help.
	RetryAfter time.Duration
}

func (e *APIError) Error() string {
	return fmt.Sprintf("awakemisd: %s (HTTP %d)", e.Message, e.StatusCode)
}

// IsRetryable reports whether the request may succeed later (the
// server was draining or its queue full).
func (e *APIError) IsRetryable() bool {
	return e.StatusCode == http.StatusServiceUnavailable
}

// transient reports whether the error is a backoff-and-retry 503: the
// server explicitly said the condition is temporary.
func (e *APIError) transient() bool {
	return e.StatusCode == http.StatusServiceUnavailable && e.RetryAfter > 0
}

// Client talks to one awakemisd daemon.
type Client struct {
	baseURL string
	http    *http.Client
	// PollInterval paces Wait's status polling (default 25ms, backing
	// off 1.5x to 1s between polls).
	PollInterval time.Duration
	// MaxRetries bounds how many times Submit/SubmitStudy retry a
	// queue-full 503 (one marked Retry-After by the server) before
	// surfacing it, backing off exponentially with jitter between
	// attempts. 0 means the default 4; negative disables retrying.
	MaxRetries int
}

// New returns a client for the daemon at baseURL (e.g.
// "http://127.0.0.1:7600"). httpClient nil means http.DefaultClient.
func New(baseURL string, httpClient *http.Client) *Client {
	if httpClient == nil {
		httpClient = http.DefaultClient
	}
	return &Client{baseURL: strings.TrimRight(baseURL, "/"), http: httpClient}
}

// BaseURL returns the daemon base URL this client talks to.
func (c *Client) BaseURL() string { return c.baseURL }

// do issues one request and decodes the JSON response into out.
func (c *Client) do(ctx context.Context, method, path string, body, out any) error {
	var reqBody io.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			return fmt.Errorf("client: encoding request: %w", err)
		}
		reqBody = bytes.NewReader(data)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.baseURL+path, reqBody)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	traceid.Stamp(ctx, req)
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode >= 300 {
		var apiErr struct {
			Error string `json:"error"`
		}
		msg := strings.TrimSpace(string(data))
		if json.Unmarshal(data, &apiErr) == nil && apiErr.Error != "" {
			msg = apiErr.Error
		}
		var retryAfter time.Duration
		if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && secs > 0 {
			retryAfter = time.Duration(secs) * time.Second
		}
		return &APIError{StatusCode: resp.StatusCode, Message: msg, RetryAfter: retryAfter}
	}
	if out == nil {
		return nil
	}
	if err := json.Unmarshal(data, out); err != nil {
		return fmt.Errorf("client: decoding %s %s response: %w", method, path, err)
	}
	return nil
}

// submitBackoff runs a POST with bounded exponential backoff on
// queue-full 503s: attempts are spaced base·2ᵏ plus up to 100% jitter
// (decorrelating a thundering herd of retriers), capped at 2s per
// wait, at most MaxRetries retries, and every wait aborts promptly
// when ctx ends. Any other error — including a draining 503, which
// carries no Retry-After — is surfaced immediately.
func (c *Client) submitBackoff(ctx context.Context, path string, body, out any) error {
	retries := c.MaxRetries
	if retries == 0 {
		retries = 4
	}
	const maxWait = 2 * time.Second
	wait := 50 * time.Millisecond
	for attempt := 0; ; attempt++ {
		err := c.do(ctx, http.MethodPost, path, body, out)
		apiErr := new(APIError)
		if err == nil || attempt >= retries || !errors.As(err, &apiErr) || !apiErr.transient() {
			return err
		}
		d := wait + rand.N(wait) // wait..2·wait
		if d > maxWait {
			d = maxWait
		}
		timer := time.NewTimer(d)
		select {
		case <-ctx.Done():
			timer.Stop()
			return ctx.Err()
		case <-timer.C:
		}
		if wait *= 2; wait > maxWait {
			wait = maxWait
		}
	}
}

// Submit posts one spec and returns its job — possibly already done
// when served from the report cache. Queue-full rejections are
// retried with backoff (see MaxRetries). The submission runs under
// the ctx's trace id, minting one if absent, so every retry and the
// daemon-side records share it.
func (c *Client) Submit(ctx context.Context, spec awakemis.Spec) (*Job, error) {
	ctx, _ = traceid.Ensure(ctx)
	var job Job
	if err := c.submitBackoff(ctx, "/v1/jobs", spec, &job); err != nil {
		return nil, err
	}
	return &job, nil
}

// Job fetches a job's current state.
func (c *Client) Job(ctx context.Context, id string) (*Job, error) {
	var job Job
	if err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id, nil, &job); err != nil {
		return nil, err
	}
	return &job, nil
}

// Cancel asks the server to cancel the job and returns its final
// state. Other submitters of the same spec are unaffected.
func (c *Client) Cancel(ctx context.Context, id string) (*Job, error) {
	var job Job
	if err := c.do(ctx, http.MethodDelete, "/v1/jobs/"+id, nil, &job); err != nil {
		return nil, err
	}
	return &job, nil
}

// poll fetches repeatedly until terminal reports the value final or
// ctx ends, pacing with the client's backoff (PollInterval, 1.5x up
// to 1s) plus up to 100% jitter per sleep — the submit path's
// decorrelation convention, so a fleet of waiters released by the
// same event doesn't poll in lockstep. Every wait aborts promptly
// when ctx ends. onPoll, when non-nil, observes every fetched state —
// the shared loop behind Wait and WaitStudy.
func poll[T any](ctx context.Context, c *Client, fetch func(context.Context) (*T, error), terminal func(*T) bool, onPoll func(*T)) (*T, error) {
	interval := c.PollInterval
	if interval <= 0 {
		interval = 25 * time.Millisecond
	}
	for {
		v, err := fetch(ctx)
		if err != nil {
			return nil, err
		}
		if onPoll != nil {
			onPoll(v)
		}
		if terminal(v) {
			return v, nil
		}
		timer := time.NewTimer(interval + rand.N(interval)) // interval..2·interval
		select {
		case <-ctx.Done():
			timer.Stop()
			return v, ctx.Err()
		case <-timer.C:
		}
		if interval = interval * 3 / 2; interval > time.Second {
			interval = time.Second
		}
	}
}

// Wait polls the job until it reaches a terminal state or ctx ends.
func (c *Client) Wait(ctx context.Context, id string) (*Job, error) {
	return poll(ctx, c,
		func(ctx context.Context) (*Job, error) { return c.Job(ctx, id) },
		func(j *Job) bool { return j.Status.Terminal() }, nil)
}

// WaitJob follows the job to a terminal state, preferring the server's
// SSE event stream (GET /v1/jobs/{id}/events) — every state change,
// including live progress, arrives as it happens — and transparently
// falling back to Wait's polling loop against daemons without the
// stream. onUpdate, when non-nil, observes every received state.
func (c *Client) WaitJob(ctx context.Context, id string, onUpdate func(*Job)) (*Job, error) {
	job, err := c.waitSSE(ctx, id, onUpdate)
	if err == nil {
		return job, nil
	}
	if ctx.Err() != nil {
		return job, ctx.Err()
	}
	// The stream failed mid-flight or isn't served (older daemon,
	// buffering proxy): fall back to polling.
	return poll(ctx, c,
		func(ctx context.Context) (*Job, error) { return c.Job(ctx, id) },
		func(j *Job) bool { return j.Status.Terminal() }, onUpdate)
}

// errNoStream marks an events endpoint that did not produce an SSE
// stream; WaitJob and WaitStudy fall back to polling.
var errNoStream = errors.New("client: no event stream")

// waitSSE consumes the job's SSE stream until a terminal state.
func (c *Client) waitSSE(ctx context.Context, id string, onUpdate func(*Job)) (*Job, error) {
	return streamSSE(ctx, c, "/v1/jobs/"+id+"/events",
		func(j *Job) bool { return j.Status.Terminal() }, onUpdate)
}

// streamSSE consumes one record's SSE stream until terminal reports a
// frame final — the shared transport behind waitSSE and WaitStudy.
// Any transport or framing problem maps to errNoStream so the caller
// can fall back to polling.
func streamSSE[T any](ctx context.Context, c *Client, path string, terminal func(*T) bool, onUpdate func(*T)) (*T, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.baseURL+path, nil)
	if err != nil {
		return nil, err
	}
	req.Header.Set("Accept", "text/event-stream")
	traceid.Stamp(ctx, req)
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, errNoStream
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK ||
		!strings.HasPrefix(resp.Header.Get("Content-Type"), "text/event-stream") {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
		return nil, errNoStream
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64<<10), 64<<20) // a done frame carries the full report
	for sc.Scan() {
		line := sc.Text()
		data, ok := strings.CutPrefix(line, "data: ")
		if !ok {
			continue
		}
		v := new(T)
		if err := json.Unmarshal([]byte(data), v); err != nil {
			return nil, errNoStream
		}
		if onUpdate != nil {
			onUpdate(v)
		}
		if terminal(v) {
			return v, nil
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return nil, errNoStream // stream ended without a terminal state
}

// Run submits the spec and waits for its Report: the remote
// equivalent of awakemis.RunSpec. A failed or canceled job is an
// error.
func (c *Client) Run(ctx context.Context, spec awakemis.Spec) (*awakemis.Report, error) {
	ctx, _ = traceid.Ensure(ctx)
	job, err := c.Submit(ctx, spec)
	if err != nil {
		return nil, err
	}
	if !job.Status.Terminal() {
		if job, err = c.WaitJob(ctx, job.ID, nil); err != nil {
			return nil, err
		}
	}
	switch job.Status {
	case JobDone:
		return job.DecodeReport()
	case JobFailed:
		return nil, fmt.Errorf("awakemisd: job %s failed: %s", job.ID, job.Error)
	default:
		return nil, fmt.Errorf("awakemisd: job %s was %s", job.ID, job.Status)
	}
}

// Study is one submitted study as the server reports it: a
// parameter-sweep grid executing through the daemon's cache and
// coalescing machinery. Spec is the server's resolved form.
type Study struct {
	ID       string             `json:"id"`
	Status   JobStatus          `json:"status"`
	Spec     awakemis.StudySpec `json:"spec"`
	Done     int                `json:"done"`
	Total    int                `json:"total"`
	Error    string             `json:"error,omitempty"`
	Result   json.RawMessage    `json:"result,omitempty"`
	Progress *StudyProgress     `json:"progress,omitempty"`
}

// StudyProgress mirrors the server's live study view: per-cell states
// plus grid-wide aggregates. On a terminal study it is the frozen
// final tally.
type StudyProgress struct {
	Cells []StudyCellProgress `json:"cells"`

	CellsQueued   int `json:"cells_queued"`
	CellsRunning  int `json:"cells_running"`
	CellsDone     int `json:"cells_done"`
	CellsCached   int `json:"cells_cached"`
	CellsFailed   int `json:"cells_failed,omitempty"`
	CellsCanceled int `json:"cells_canceled,omitempty"`

	RunsDone   int `json:"runs_done"`
	RunsCached int `json:"runs_cached,omitempty"`

	ExecutedRounds  int64   `json:"executed_rounds"`
	EngineSeconds   float64 `json:"engine_seconds"`
	LanesVectorized int     `json:"lanes_vectorized,omitempty"`

	ElapsedMS float64 `json:"elapsed_ms"`
	ETAMS     float64 `json:"eta_ms,omitempty"`
}

// StudyCellProgress is one grid cell's progress: which cell it is and
// how far its trials have gotten.
type StudyCellProgress struct {
	Index  int    `json:"index"`
	Task   string `json:"task"`
	Family string `json:"family"`
	N      int    `json:"n"`
	Engine string `json:"engine"`

	State  string `json:"state"` // queued|running|done|cached|failed|canceled
	Done   int    `json:"done"`
	Trials int    `json:"trials"`
	Cached int    `json:"cached,omitempty"`
}

// DecodeResult unmarshals the study's StudyResult artifact (Status
// must be "done"). Result holds the exact artifact bytes — a client
// that wants byte-level determinism should persist Result directly.
func (st *Study) DecodeResult() (*awakemis.StudyResult, error) {
	if st.Status != JobDone {
		return nil, fmt.Errorf("client: study %s is %s, not done", st.ID, st.Status)
	}
	var res awakemis.StudyResult
	if err := json.Unmarshal(st.Result, &res); err != nil {
		return nil, fmt.Errorf("client: decoding result of study %s: %w", st.ID, err)
	}
	return &res, nil
}

// SubmitStudy posts one StudySpec; the study expands and aggregates
// asynchronously (poll WaitStudy). Queue-full rejections are retried
// with backoff (see MaxRetries). The study runs under the ctx's trace
// id, minting one if absent; every sub-job inherits it.
func (c *Client) SubmitStudy(ctx context.Context, ss awakemis.StudySpec) (*Study, error) {
	ctx, _ = traceid.Ensure(ctx)
	var study Study
	if err := c.submitBackoff(ctx, "/v1/studies", ss, &study); err != nil {
		return nil, err
	}
	return &study, nil
}

// Study fetches a study's current state.
func (c *Client) Study(ctx context.Context, id string) (*Study, error) {
	var study Study
	if err := c.do(ctx, http.MethodGet, "/v1/studies/"+id, nil, &study); err != nil {
		return nil, err
	}
	return &study, nil
}

// CancelStudy asks the server to cancel the study: unfinished
// sub-runs are canceled and no artifact is produced.
func (c *Client) CancelStudy(ctx context.Context, id string) (*Study, error) {
	var study Study
	if err := c.do(ctx, http.MethodDelete, "/v1/studies/"+id, nil, &study); err != nil {
		return nil, err
	}
	return &study, nil
}

// WaitStudy follows the study to a terminal state, preferring the
// server's SSE event stream (GET /v1/studies/{id}/events) — every
// progress change arrives as it happens — and transparently falling
// back to polling against daemons without the stream. onPoll, when
// non-nil, receives every observed state — the CLI uses it for
// progress lines.
func (c *Client) WaitStudy(ctx context.Context, id string, onPoll func(*Study)) (*Study, error) {
	terminal := func(s *Study) bool { return s.Status.Terminal() }
	study, err := streamSSE(ctx, c, "/v1/studies/"+id+"/events", terminal, onPoll)
	if err == nil {
		return study, nil
	}
	if ctx.Err() != nil {
		return study, ctx.Err()
	}
	// The stream failed mid-flight or isn't served (older daemon,
	// buffering proxy): fall back to polling.
	return poll(ctx, c,
		func(ctx context.Context) (*Study, error) { return c.Study(ctx, id) },
		terminal, onPoll)
}

// RunStudy submits the study and waits for its artifact: the remote
// equivalent of awakemis.RunStudy. A failed or canceled study is an
// error.
func (c *Client) RunStudy(ctx context.Context, ss awakemis.StudySpec) (*awakemis.StudyResult, error) {
	study, err := c.SubmitStudy(ctx, ss)
	if err != nil {
		return nil, err
	}
	if !study.Status.Terminal() {
		if study, err = c.WaitStudy(ctx, study.ID, nil); err != nil {
			return nil, err
		}
	}
	switch study.Status {
	case JobDone:
		return study.DecodeResult()
	case JobFailed:
		return nil, fmt.Errorf("awakemisd: study %s failed: %s", study.ID, study.Error)
	default:
		return nil, fmt.Errorf("awakemisd: study %s was %s", study.ID, study.Status)
	}
}

// Tasks lists the server's task registry.
func (c *Client) Tasks(ctx context.Context) ([]TaskInfo, error) {
	var infos []TaskInfo
	if err := c.do(ctx, http.MethodGet, "/v1/tasks", nil, &infos); err != nil {
		return nil, err
	}
	return infos, nil
}

// Studies lists every study the server remembers, newest first, with
// live progress attached but Result bodies stripped (fetch one study
// by id for its artifact).
func (c *Client) Studies(ctx context.Context) ([]Study, error) {
	var studies []Study
	if err := c.do(ctx, http.MethodGet, "/v1/studies", nil, &studies); err != nil {
		return nil, err
	}
	return studies, nil
}

// Stats fetches the server's counters.
func (c *Client) Stats(ctx context.Context) (*Stats, error) {
	var st Stats
	if err := c.do(ctx, http.MethodGet, "/v1/stats", nil, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// StatsRaw fetches /v1/stats as the server's exact JSON bytes. The
// cluster front uses it to relay per-peer snapshots without dragging
// them through this package's Stats struct (which would silently drop
// fields a newer peer reports).
func (c *Client) StatsRaw(ctx context.Context) (json.RawMessage, error) {
	var raw json.RawMessage
	if err := c.do(ctx, http.MethodGet, "/v1/stats", nil, &raw); err != nil {
		return nil, err
	}
	return raw, nil
}

// ClusterPeerStats is one worker daemon's row in the fleet view.
type ClusterPeerStats struct {
	Addr  string `json:"addr"`
	Up    bool   `json:"up"`
	Error string `json:"error,omitempty"`
	Stats *Stats `json:"stats,omitempty"`
}

// ClusterStatsView is the /v1/cluster/stats payload: the front's own
// counters, every peer's, and their merged fleet total.
type ClusterStatsView struct {
	Self       Stats              `json:"self"`
	Peers      []ClusterPeerStats `json:"peers"`
	Total      Stats              `json:"total"`
	PeersUp    int                `json:"peers_up"`
	PeersTotal int                `json:"peers_total"`
}

// ClusterStats fetches the fleet-wide aggregate a cluster front
// serves. Daemons not fronting a cluster answer 404.
func (c *Client) ClusterStats(ctx context.Context) (*ClusterStatsView, error) {
	var cs ClusterStatsView
	if err := c.do(ctx, http.MethodGet, "/v1/cluster/stats", nil, &cs); err != nil {
		return nil, err
	}
	return &cs, nil
}

// Health checks /v1/healthz and returns the daemon's build identity.
// A draining or unreachable server is an error (with a nil Health).
func (c *Client) Health(ctx context.Context) (*Health, error) {
	var h Health
	if err := c.do(ctx, http.MethodGet, "/v1/healthz", nil, &h); err != nil {
		return nil, err
	}
	if h.Status != "ok" {
		return nil, errors.New("awakemisd: health status " + h.Status)
	}
	return &h, nil
}
