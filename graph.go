package awakemis

import (
	"io"
	"math/rand"

	igraph "awakemis/internal/graph"
)

// Graph is an undirected simple graph on vertices 0..N-1, the input to
// every algorithm in this package. Construct one with NewGraph or a
// generator (GNP, Cycle, RandomTree, ...).
type Graph struct {
	g *igraph.Graph
}

// NewGraph builds a graph on n vertices from an undirected edge list.
// Duplicate edges are collapsed; self-loops are an error.
func NewGraph(n int, edges [][2]int) (*Graph, error) {
	g, err := igraph.FromEdges(n, edges)
	if err != nil {
		return nil, err
	}
	return &Graph{g: g}, nil
}

// N returns the number of vertices.
func (g *Graph) N() int { return g.g.N() }

// M returns the number of edges.
func (g *Graph) M() int { return g.g.M() }

// Degree returns the degree of vertex v.
func (g *Graph) Degree(v int) int { return g.g.Degree(v) }

// MaxDegree returns the maximum degree.
func (g *Graph) MaxDegree() int { return g.g.MaxDegree() }

// Edges returns the edge list with u < v in sorted order.
func (g *Graph) Edges() [][2]int { return g.g.Edges() }

// Neighbors returns the sorted neighbors of v.
func (g *Graph) Neighbors(v int) []int {
	nb := g.g.Neighbors(v)
	out := make([]int, len(nb))
	for i, w := range nb {
		out[i] = int(w)
	}
	return out
}

// IsConnected reports whether the graph is connected.
func (g *Graph) IsConnected() bool { return g.g.IsConnected() }

// Components returns the connected components as sorted vertex lists.
func (g *Graph) Components() [][]int { return g.g.Components() }

// String summarizes the graph.
func (g *Graph) String() string { return g.g.String() }

// internal returns the underlying representation for the algorithms.
func (g *Graph) internal() *igraph.Graph { return g.g }

// GNP returns an Erdős–Rényi random graph G(n, p).
func GNP(n int, p float64, seed int64) *Graph {
	return &Graph{g: igraph.GNP(n, p, rand.New(rand.NewSource(seed)))}
}

// Cycle returns the n-cycle.
func Cycle(n int) *Graph { return &Graph{g: igraph.Cycle(n)} }

// Path returns the n-vertex path.
func Path(n int) *Graph { return &Graph{g: igraph.Path(n)} }

// Complete returns the complete graph K_n.
func Complete(n int) *Graph { return &Graph{g: igraph.Complete(n)} }

// Star returns the star graph with center 0.
func Star(n int) *Graph { return &Graph{g: igraph.Star(n)} }

// Grid returns the rows×cols grid graph.
func Grid(rows, cols int) *Graph { return &Graph{g: igraph.Grid(rows, cols)} }

// RandomTree returns a uniformly random labeled tree.
func RandomTree(n int, seed int64) *Graph {
	return &Graph{g: igraph.RandomTree(n, rand.New(rand.NewSource(seed)))}
}

// RandomRegular returns an approximately d-regular random graph.
func RandomRegular(n, d int, seed int64) *Graph {
	return &Graph{g: igraph.RandomRegular(n, d, rand.New(rand.NewSource(seed)))}
}

// RandomGeometric returns a random geometric graph on the unit square
// with connection radius r — the classic model of a wireless sensor
// network, the paper's motivating deployment (§1.2).
func RandomGeometric(n int, r float64, seed int64) *Graph {
	return &Graph{g: igraph.RandomGeometric(n, r, rand.New(rand.NewSource(seed)))}
}

// PreferentialAttachment returns a Barabási–Albert style power-law
// graph with k attachments per vertex.
func PreferentialAttachment(n, k int, seed int64) *Graph {
	return &Graph{g: igraph.PreferentialAttachment(n, k, rand.New(rand.NewSource(seed)))}
}

// Hypercube returns the d-dimensional hypercube on 2^d vertices.
func Hypercube(d int) *Graph { return &Graph{g: igraph.Hypercube(d)} }

// Torus returns the rows×cols 2D torus.
func Torus(rows, cols int) *Graph { return &Graph{g: igraph.Torus(rows, cols)} }

// CompleteBipartite returns K_{a,b}.
func CompleteBipartite(a, b int) *Graph { return &Graph{g: igraph.CompleteBipartite(a, b)} }

// Barbell returns two K_k cliques joined by a path of pathLen vertices.
func Barbell(k, pathLen int) *Graph { return &Graph{g: igraph.Barbell(k, pathLen)} }

// Lollipop returns a K_k clique with a path tail attached.
func Lollipop(k, tail int) *Graph { return &Graph{g: igraph.Lollipop(k, tail)} }

// ReadGraph parses the edge-list interchange format ("# n m" header,
// one "u v" pair per line) produced by WriteGraph and cmd/graphgen.
func ReadGraph(r io.Reader) (*Graph, error) {
	g, err := igraph.ReadEdgeList(r)
	if err != nil {
		return nil, err
	}
	return &Graph{g: g}, nil
}

// WriteGraph writes g in the edge-list interchange format.
func WriteGraph(w io.Writer, g *Graph) error { return igraph.WriteEdgeList(w, g.g) }
