package awakemis

import (
	"context"
	"fmt"
	"sync"

	"awakemis/internal/sim"
)

// RunOption configures Run. Options compose left to right; the zero
// set reproduces RunSpecContext exactly.
type RunOption func(*runOptions)

type runOptions struct {
	workers  int
	observer RoundObserver
	trials   []Trial
	out      []*Report
}

// WithWorkers sets an explicit stepped-engine worker-pool size that
// overrides Options.Workers without being recorded in the Report — the
// caller's share of a machine-wide budget. The Runner and the service
// daemon use it to divide one budget among concurrent runs while
// keeping reports bit-identical to standalone calls (worker counts
// never change results). Zero falls back to Options.Workers.
func WithWorkers(n int) RunOption {
	return func(ro *runOptions) { ro.workers = n }
}

// WithObserver attaches a RoundObserver for this run without mutating
// the Spec. Local-only, like Options.Observer (which it overrides):
// never serialized, never affects results or report bytes.
func WithObserver(obs RoundObserver) RunOption {
	return func(ro *runOptions) { ro.observer = obs }
}

// Trial is one replication lane of a vectorized run: the same Spec
// re-seeded. Name overrides the report name when non-empty; Observer
// receives that lane's per-round stream (local-only).
type Trial struct {
	Seed     int64
	Name     string
	Observer RoundObserver
}

// WithVectorizedTrials runs the Spec once per trial — re-seeded per
// Trial — and fills out (which must have exactly one slot per trial)
// with the per-trial Reports; Run returns out[0]. When the trials are
// vectorizable — at least two of them, the stepped engine, and an
// explicit Graph.Seed so every trial shares one graph — all lanes
// execute in a single merged pass over the adjacency (one traversal
// per round feeds every lane's independent splitmix64 stream); each
// lane's Report stays bit-identical to a standalone scalar run of the
// same per-trial Spec, WallMS aside. Otherwise the trials run as an
// ordinary scalar loop with the same results. A failure in any trial
// fails the whole call.
func WithVectorizedTrials(trials []Trial, out []*Report) RunOption {
	return func(ro *runOptions) { ro.trials, ro.out = trials, out }
}

// Run builds the spec's graph and executes its task, returning the
// Report. It is the single consolidated entry point replacing the
// RunSpec / RunSpecContext / RunSpecWorkers trio: behavior beyond the
// plain run — worker budgets, observers, vectorized trial batches — is
// selected with functional options instead of more variants.
func Run(ctx context.Context, spec Spec, opts ...RunOption) (*Report, error) {
	var ro runOptions
	for _, opt := range opts {
		opt(&ro)
	}
	workers := ro.workers
	if workers == 0 {
		workers = spec.Options.Workers
	}
	if ro.observer != nil {
		spec.Options.Observer = ro.observer
	}
	if ro.trials == nil {
		return runSpec(ctx, spec, workers)
	}
	if len(ro.out) != len(ro.trials) {
		return nil, fmt.Errorf("awakemis: WithVectorizedTrials: %d trials but %d report slots", len(ro.trials), len(ro.out))
	}
	if len(ro.trials) == 0 {
		return nil, fmt.Errorf("awakemis: WithVectorizedTrials: no trials")
	}

	specs := make([]Spec, len(ro.trials))
	for i, tr := range ro.trials {
		sp := spec
		sp.Options.Seed = tr.Seed
		sp.Options.Observer = tr.Observer
		if tr.Name != "" {
			sp.Name = tr.Name
		}
		specs[i] = sp
	}

	if !vectorizable(spec, len(specs)) {
		for i := range specs {
			rep, err := runSpec(ctx, specs[i], workers)
			if err != nil {
				return nil, err
			}
			ro.out[i] = rep
		}
		return ro.out[0], nil
	}
	if err := runVectorized(ctx, specs, workers, ro.out); err != nil {
		return nil, err
	}
	return ro.out[0], nil
}

// vectorizable reports whether R trials of this spec can share one
// merged pass: at least two lanes, the stepped engine (the lockstep
// engine has no lane support), and an explicit Graph.Seed — with a
// zero Graph.Seed the graph derives from each trial's run seed, so the
// trials would not share a graph at all.
func vectorizable(spec Spec, r int) bool {
	if r < 2 || spec.Graph.Seed == 0 {
		return false
	}
	return spec.Options.Engine == "" || spec.Options.Engine == EngineStepped
}

// runVectorized executes the per-trial specs as lanes of one merged
// stepped pass. Each lane runs the ordinary task pipeline — per-lane
// IDs, tracer, observer, verification, Report assembly — against a
// lane handle of one shared sim.VectorEngine, so the algorithm code
// and the report contents are exactly the scalar path's.
func runVectorized(ctx context.Context, specs []Spec, workers int, out []*Report) error {
	for i := range specs {
		if err := specs[i].Validate(); err != nil {
			return err
		}
	}
	g, err := specs[0].Graph.build(specs[0].Options.Seed)
	if err != nil {
		return fmt.Errorf("awakemis: spec %s: %w", specs[0].label(), err)
	}

	ve := sim.NewVectorEngine(len(specs), workers)
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	errs := make([]error, len(specs))
	var wg sync.WaitGroup
	for i := range specs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rep, err := runTaskOn(ctx, g, specs[i].Task, specs[i].Options, ve.Lane(i))
			if err != nil {
				errs[i] = err
				// The lane may fail before reaching its engine call (it would
				// never arrive at the rendezvous): release the others.
				ve.Abort(err)
				cancel()
				return
			}
			rep.Name = specs[i].Name
			out[i] = rep
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
