package vtree

import (
	"reflect"
	"testing"
	"testing/quick"
)

func TestDepthSizeLeaves(t *testing.T) {
	tests := []struct{ i, d, size, leaves int }{
		{1, 0, 1, 1},
		{2, 1, 3, 2},
		{3, 2, 7, 4},
		{4, 2, 7, 4},
		{6, 3, 15, 8},
		{8, 3, 15, 8},
		{9, 4, 31, 16},
	}
	for _, tt := range tests {
		if got := Depth(tt.i); got != tt.d {
			t.Errorf("Depth(%d) = %d, want %d", tt.i, got, tt.d)
		}
		if got := Size(tt.i); got != tt.size {
			t.Errorf("Size(%d) = %d, want %d", tt.i, got, tt.size)
		}
		if got := Leaves(tt.i); got != tt.leaves {
			t.Errorf("Leaves(%d) = %d, want %d", tt.i, got, tt.leaves)
		}
	}
}

// TestFigure1 reproduces Figure 1 of the paper: the in-order labels of
// B([1,6]) and the g(x)=⌊x/2⌋+1 labels of B*([1,6]).
func TestFigure1(t *testing.T) {
	tr := Build(6)
	// Level-order (heap) traversal of the depth-3 tree in the figure.
	wantB := []int{8, 4, 12, 2, 6, 10, 14, 1, 3, 5, 7, 9, 11, 13, 15}
	wantStar := []int{5, 3, 7, 2, 4, 6, 8, 1, 2, 3, 4, 5, 6, 7, 8}
	if !reflect.DeepEqual(tr.BLabel, wantB) {
		t.Errorf("B([1,6]) labels = %v, want %v", tr.BLabel, wantB)
	}
	if !reflect.DeepEqual(tr.StarLabel, wantStar) {
		t.Errorf("B*([1,6]) labels = %v, want %v", tr.StarLabel, wantStar)
	}
}

// TestFigure2 reproduces Figure 2: S₃([1,6]) = {3,4,5} and
// S₅([1,6]) = {5,6} (7 clipped because there are only I=6 rounds), and
// the shared round 5 ∈ S₃ ∩ S₅ with 3 < 5 ≤ 5.
func TestFigure2(t *testing.T) {
	s3 := CommSet(3, 6)
	if !reflect.DeepEqual(s3, []int{3, 4, 5}) {
		t.Errorf("S3([1,6]) = %v, want [3 4 5]", s3)
	}
	s5 := CommSet(5, 6)
	if !reflect.DeepEqual(s5, []int{5, 6}) {
		t.Errorf("S5([1,6]) = %v, want [5 6]", s5)
	}
	if r := SharedRound(3, 5, 6); r != 5 {
		t.Errorf("SharedRound(3,5,6) = %d, want 5", r)
	}
	// The unclipped ancestors of leaf 5 include 7, as drawn.
	anc := Build(6).AncestorStarLabels(5)
	if !reflect.DeepEqual(anc, []int{5, 6, 7}) {
		t.Errorf("ancestors of leaf 5 = %v, want [5 6 7]", anc)
	}
}

// TestCommSetMatchesTree cross-checks the closed-form CommSet against
// the explicit tree's ancestor labels.
func TestCommSetMatchesTree(t *testing.T) {
	for _, i := range []int{1, 2, 3, 5, 6, 8, 13, 16, 33} {
		tr := Build(i)
		for k := 1; k <= i; k++ {
			want := []int{}
			for _, l := range tr.AncestorStarLabels(k) {
				if l <= i {
					want = append(want, l)
				}
			}
			got := CommSet(k, i)
			if !reflect.DeepEqual(got, want) {
				t.Errorf("CommSet(%d,%d) = %v, tree says %v", k, i, got, want)
			}
		}
	}
}

// TestObservation4 verifies |S_k([1,i])| ≤ ⌈log₂ i⌉.
func TestObservation4(t *testing.T) {
	for _, i := range []int{1, 2, 3, 4, 7, 8, 16, 100, 1000} {
		for k := 1; k <= i; k++ {
			if got := len(CommSet(k, i)); got > Depth(i) {
				t.Errorf("|S_%d([1,%d])| = %d > ⌈log i⌉ = %d", k, i, got, Depth(i))
			}
		}
	}
}

// TestObservation5 verifies that for all k < k′ there is a round
// r ∈ S_k ∩ S_k′ with k < r ≤ k′.
func TestObservation5(t *testing.T) {
	for _, i := range []int{2, 3, 6, 8, 17, 64} {
		for k := 1; k <= i; k++ {
			for kp := k + 1; kp <= i; kp++ {
				r := SharedRound(k, kp, i)
				if r <= k || r > kp {
					t.Fatalf("i=%d k=%d k'=%d: shared round %d not in (k,k']", i, k, kp, r)
				}
				if !contains(CommSet(k, i), r) {
					t.Fatalf("i=%d: %d not in S_%d = %v", i, r, k, CommSet(k, i))
				}
				if !contains(CommSet(kp, i), r) {
					t.Fatalf("i=%d: %d not in S_%d = %v", i, r, kp, CommSet(kp, i))
				}
			}
		}
	}
}

// Property-based version of Observation 5 over larger random inputs.
func TestQuickObservation5(t *testing.T) {
	f := func(a, b uint16, ii uint16) bool {
		i := int(ii%5000) + 2
		k := int(a)%i + 1
		kp := int(b)%i + 1
		if k == kp {
			return true
		}
		if k > kp {
			k, kp = kp, k
		}
		r := SharedRound(k, kp, i)
		return r > k && r <= kp && contains(CommSet(k, i), r) && contains(CommSet(kp, i), r)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestAwakeRoundsIncludesOwnID(t *testing.T) {
	for _, i := range []int{1, 2, 6, 16, 100} {
		for k := 1; k <= i; k++ {
			ar := AwakeRounds(k, i)
			if !contains(ar, k) {
				t.Errorf("AwakeRounds(%d,%d) = %v missing own ID", k, i, ar)
			}
			if len(ar) > Depth(i)+1 {
				t.Errorf("AwakeRounds(%d,%d) too large: %v", k, i, ar)
			}
			for idx := 1; idx < len(ar); idx++ {
				if ar[idx-1] >= ar[idx] {
					t.Errorf("AwakeRounds(%d,%d) not strictly sorted: %v", k, i, ar)
				}
			}
			for _, r := range ar {
				if r < 1 || r > i {
					t.Errorf("AwakeRounds(%d,%d) out of range: %v", k, i, ar)
				}
			}
		}
	}
}

func TestPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { Depth(0) },
		func() { CommSet(0, 5) },
		func() { CommSet(6, 5) },
		func() { SharedRound(3, 3, 5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func contains(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}
