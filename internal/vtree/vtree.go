// Package vtree implements the virtual binary tree technique of §5.1:
// the in-order labeled full binary tree B([1,i]), its relabeling
// B*([1,i]) under g(x) = ⌊x/2⌋ + 1, and the communication sets
// S_k([1,i]) used to decide in which rounds a node with ID k must be
// awake. The communication sets guarantee (Observation 5) that any two
// nodes with IDs k < k′ share an awake round r with k < r ≤ k′, which
// is what lets VT-MIS and Awake-MIS propagate "in MIS" information with
// only O(log i) awake rounds per node.
package vtree

import (
	"fmt"
	"math/bits"
	"sort"
)

// Depth returns d = ⌈log₂ i⌉, the depth of B([1,i]). Depth(1) = 0.
func Depth(i int) int {
	if i < 1 {
		panic(fmt.Sprintf("vtree: invalid i=%d", i))
	}
	return bits.Len(uint(i - 1))
}

// Size returns the number of nodes y = 2^(d+1) - 1 of B([1,i]).
func Size(i int) int { return 1<<(Depth(i)+1) - 1 }

// Leaves returns the number of leaves 2^d of B([1,i]).
func Leaves(i int) int { return 1 << Depth(i) }

// CommSet returns S_k([1,i]): the B*-labels of the proper ancestors of
// the k-th leaf, clipped to values ≤ i and deduplicated, in increasing
// order. |S_k| ≤ ⌈log₂ i⌉ (Observation 4).
//
// Figure 2 of the paper clips labels exceeding i ("not in round 7,
// since there are only I rounds"); we apply the same clipping.
func CommSet(k, i int) []int {
	if k < 1 || k > i {
		panic(fmt.Sprintf("vtree: k=%d out of [1,%d]", k, i))
	}
	d := Depth(i)
	set := make([]int, 0, d)
	for h := 1; h <= d; h++ {
		m := (k - 1) >> uint(h)
		label := m<<uint(h) + 1<<uint(h-1) + 1
		if label <= i {
			set = append(set, label)
		}
	}
	sort.Ints(set)
	// Deduplicate (distinct heights can map to the same clipped label
	// only via equal labels, which cannot happen, but keep the guard).
	out := set[:0]
	for idx, v := range set {
		if idx == 0 || v != set[idx-1] {
			out = append(out, v)
		}
	}
	return out
}

// AwakeRounds returns S_k([1,i]) ∪ {k}: the full set of rounds, within
// a block of i rounds, in which the node holding ID k participates in
// the VT-MIS wake schedule (§5.3: "the node that has ID r as well as
// all nodes u for which r ∈ S_idu wake up").
func AwakeRounds(k, i int) []int {
	s := CommSet(k, i)
	pos := sort.SearchInts(s, k)
	if pos < len(s) && s[pos] == k {
		return s
	}
	out := make([]int, 0, len(s)+1)
	out = append(out, s[:pos]...)
	out = append(out, k)
	out = append(out, s[pos:]...)
	return out
}

// SharedRound returns the smallest r ∈ S_k ∩ S_k′ with k < r ≤ k′
// guaranteed by Observation 5, for k < k′.
func SharedRound(k, kp, i int) int {
	if k >= kp {
		panic(fmt.Sprintf("vtree: SharedRound requires k < k', got %d >= %d", k, kp))
	}
	// The B*-label of the lowest common ancestor of leaves k and k′.
	h := bits.Len(uint((k - 1) ^ (kp - 1))) // LCA height
	m := (k - 1) >> uint(h)
	return m<<uint(h) + 1<<uint(h-1) + 1
}

// Tree describes B([1,i]) and B*([1,i]) explicitly for rendering and
// golden tests; index 0 is the root, children at 2j+1 / 2j+2.
type Tree struct {
	// BLabel[j] is the in-order label of heap-position j in B([1,i]).
	BLabel []int
	// StarLabel[j] = g(BLabel[j]) is the label in B*([1,i]).
	StarLabel []int
	depth     int
}

// Build materializes B([1,i]) / B*([1,i]).
func Build(i int) *Tree {
	d := Depth(i)
	y := Size(i)
	t := &Tree{BLabel: make([]int, y), StarLabel: make([]int, y), depth: d}
	// Heap position j at depth dep is the (j - (2^dep - 1))-th node of
	// its level; its in-order label follows from its leaf span.
	var fill func(j, dep, leafLo int)
	fill = func(j, dep, leafLo int) {
		span := 1 << uint(d-dep) // leaves under this node
		// In-order label of subtree root with leaf range [leafLo, leafLo+span-1]:
		// leaves sit at odd labels 2m-1, so the root label is lo+hi-1 in
		// leaf indices doubled: (2*leafLo-1 + 2*(leafLo+span-1)-1)/2.
		t.BLabel[j] = 2*leafLo + span - 2
		if span == 1 {
			t.BLabel[j] = 2*leafLo - 1
		}
		t.StarLabel[j] = t.BLabel[j]/2 + 1
		if dep < d {
			fill(2*j+1, dep+1, leafLo)
			fill(2*j+2, dep+1, leafLo+span/2)
		}
	}
	fill(0, 0, 1)
	return t
}

// Depth returns the tree depth d.
func (t *Tree) Depth() int { return t.depth }

// LeafPosition returns the heap index of the k-th leaf (1-based).
func (t *Tree) LeafPosition(k int) int {
	return (1<<uint(t.depth) - 1) + (k - 1)
}

// AncestorStarLabels returns the B*-labels on the path from the k-th
// leaf's parent up to the root (the unclipped communication set).
func (t *Tree) AncestorStarLabels(k int) []int {
	var out []int
	j := t.LeafPosition(k)
	for j > 0 {
		j = (j - 1) / 2
		out = append(out, t.StarLabel[j])
	}
	sort.Ints(out)
	return out
}
