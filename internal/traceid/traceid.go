// Package traceid propagates a request-scoped trace id across the
// cluster: the client stamps the X-Awakemis-Trace-Id header, the
// daemon adopts (or mints) the id into the request context and its
// structured logs, and the front forwards it to the owning worker — so
// one grep finds a job's whole path through every process.
package traceid

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"net/http"
	"regexp"
)

// Header is the HTTP header carrying the trace id.
const Header = "X-Awakemis-Trace-Id"

// valid bounds accepted ids: hex-ish tokens up to 64 chars, so log
// fields stay greppable and header injection cannot smuggle structure.
var valid = regexp.MustCompile(`^[A-Za-z0-9_-]{1,64}$`)

type ctxKey struct{}

// New mints a fresh random 16-byte hex trace id.
func New() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand never fails on supported platforms; a fixed id is
		// still a valid (if useless) trace id.
		return "trace-rand-unavailable"
	}
	return hex.EncodeToString(b[:])
}

// With returns ctx carrying the given trace id.
func With(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, ctxKey{}, id)
}

// From returns the trace id carried by ctx, or "".
func From(ctx context.Context) string {
	id, _ := ctx.Value(ctxKey{}).(string)
	return id
}

// Ensure returns ctx guaranteed to carry a trace id, minting one if
// absent, along with the id.
func Ensure(ctx context.Context) (context.Context, string) {
	if id := From(ctx); id != "" {
		return ctx, id
	}
	id := New()
	return With(ctx, id), id
}

// FromRequest extracts a well-formed trace id from the request header,
// or "" when absent or malformed.
func FromRequest(r *http.Request) string {
	id := r.Header.Get(Header)
	if id == "" || !valid.MatchString(id) {
		return ""
	}
	return id
}

// Stamp sets the trace id carried by ctx (if any) on the outgoing
// request's header.
func Stamp(ctx context.Context, req *http.Request) {
	if id := From(ctx); id != "" {
		req.Header.Set(Header, id)
	}
}
