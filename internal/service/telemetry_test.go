// Telemetry tests: live job progress on GET /v1/jobs/{id} and the SSE
// event stream, trace-id propagation from request header to job record
// and structured logs, build info on /v1/healthz and /v1/stats, and
// the engine-level Prometheus series.
package service_test

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"awakemis/client"
	"awakemis/internal/service"
)

// TestJobProgressAndEvents submits a slow run and follows it two ways
// at once — polling GET /v1/jobs/{id} and consuming the SSE stream via
// client.WaitJob — asserting the progress block appears, its round
// counter never decreases, and the stream ends with the terminal
// state.
func TestJobProgressAndEvents(t *testing.T) {
	_, c := newTestServer(t, service.Config{})
	ctx := context.Background()

	job, err := c.Submit(ctx, blockerSpec(2500))
	if err != nil {
		t.Fatal(err)
	}
	if job.Status.Terminal() {
		t.Fatalf("blocker finished instantly: %+v", job)
	}

	var mu sync.Mutex
	var rounds []int64
	sawProgress := false
	final, err := c.WaitJob(ctx, job.ID, func(j *client.Job) {
		mu.Lock()
		defer mu.Unlock()
		if j.Progress != nil {
			sawProgress = true
			rounds = append(rounds, j.Progress.Rounds)
			if j.Progress.Executed <= 0 || j.Progress.Awake < 0 {
				t.Errorf("implausible progress: %+v", *j.Progress)
			}
			if j.Progress.AwakeFrac < 0 || j.Progress.AwakeFrac > 1 {
				t.Errorf("awake fraction %v out of [0,1]", j.Progress.AwakeFrac)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if final.Status != client.JobDone {
		t.Fatalf("job ended %s: %s", final.Status, final.Error)
	}
	if !sawProgress {
		t.Error("no progress frame observed over a multi-hundred-ms run")
	}
	for i := 1; i < len(rounds); i++ {
		if rounds[i] < rounds[i-1] {
			t.Errorf("progress rounds regressed: %v", rounds)
		}
	}
	// Terminal job: the progress block is dropped, the report stands.
	if final.Progress != nil {
		t.Errorf("terminal job still carries progress: %+v", final.Progress)
	}
	if len(final.Report) == 0 {
		t.Error("terminal SSE frame carried no report")
	}
}

// TestTraceIDPropagation pins the trace trail: a client-supplied trace
// id is echoed on the response header, recorded on the job, and
// appears in the server's structured job records; an absent header
// gets a minted id.
func TestTraceIDPropagation(t *testing.T) {
	var logBuf bytes.Buffer
	var logMu sync.Mutex
	syncw := writerFunc(func(p []byte) (int, error) {
		logMu.Lock()
		defer logMu.Unlock()
		return logBuf.Write(p)
	})
	srv := service.New(service.Config{
		Workers: 1,
		Logger:  slog.New(slog.NewJSONHandler(syncw, nil)),
	})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		sctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		srv.Shutdown(sctx)
		ts.Close()
	})
	c := client.New(ts.URL, ts.Client())
	c.PollInterval = 5 * time.Millisecond

	const trace = "trace-test-0123456789abcdef"
	ctx := client.WithTraceID(context.Background(), trace)
	job, err := c.Submit(ctx, targetSpec())
	if err != nil {
		t.Fatal(err)
	}
	if job.TraceID != trace {
		t.Errorf("job trace id %q, want %q", job.TraceID, trace)
	}
	if !job.Status.Terminal() {
		if job, err = c.WaitJob(ctx, job.ID, nil); err != nil {
			t.Fatal(err)
		}
	}
	if job.Status != client.JobDone {
		t.Fatalf("job ended %s: %s", job.Status, job.Error)
	}

	logMu.Lock()
	logs := logBuf.String()
	logMu.Unlock()
	wantRecords := []string{"http request", "job start", "job end"}
	for _, rec := range wantRecords {
		found := false
		for _, line := range strings.Split(logs, "\n") {
			if strings.Contains(line, rec) && strings.Contains(line, trace) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no %q record carrying trace id %q in logs:\n%s", rec, trace, logs)
		}
	}

	// The response header echoes the id; absent ids are minted.
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/tasks", nil)
	req.Header.Set(client.TraceIDHeader, trace)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if got := resp.Header.Get(client.TraceIDHeader); got != trace {
		t.Errorf("response trace header %q, want %q", got, trace)
	}
	resp2, err := http.Get(ts.URL + "/v1/tasks")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	if got := resp2.Header.Get(client.TraceIDHeader); got == "" {
		t.Error("no minted trace id on an untraced request")
	}
}

// TestHealthAndStatsBuildInfo: /v1/healthz and /v1/stats carry the
// same build identity (in tests at least the Go toolchain version is
// always known).
func TestHealthAndStatsBuildInfo(t *testing.T) {
	_, c := newTestServer(t, service.Config{})
	ctx := context.Background()

	h, err := c.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" {
		t.Errorf("health status %q", h.Status)
	}
	if h.GoVersion == "" {
		t.Error("health carries no Go version")
	}
	st, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.GoVersion != h.GoVersion || st.Version != h.Version {
		t.Errorf("stats build info %q/%q diverges from health %q/%q",
			st.Version, st.GoVersion, h.Version, h.GoVersion)
	}
}

// TestEngineTelemetryCounters: a completed local run moves
// rounds_simulated and sim_seconds, and /metrics exposes the engine
// series and the queue-wait histogram.
func TestEngineTelemetryCounters(t *testing.T) {
	srv, c := newTestServer(t, service.Config{Metrics: true})
	ctx := context.Background()

	if _, err := c.Run(ctx, targetSpec()); err != nil {
		t.Fatal(err)
	}
	st := srv.StatsSnapshot()
	if st.RoundsSimulated <= 0 {
		t.Errorf("rounds_simulated = %d after a completed run", st.RoundsSimulated)
	}
	if st.SimSeconds <= 0 {
		t.Errorf("sim_seconds = %v after a completed run", st.SimSeconds)
	}

	resp, err := http.Get(c.BaseURL() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, series := range []string{
		"awakemisd_engine_rounds_simulated_total",
		"awakemisd_sim_seconds_total",
		"awakemisd_queue_wait_seconds_bucket",
		"awakemisd_queue_wait_seconds_count",
	} {
		if !strings.Contains(text, series) {
			t.Errorf("metrics output lacks %s", series)
		}
	}
}

// TestEventsStreamRaw consumes the SSE endpoint with a plain HTTP
// client, pinning the wire format (content type, data: framing) that
// non-Go consumers (curl -N, EventSource) rely on.
func TestEventsStreamRaw(t *testing.T) {
	_, c := newTestServer(t, service.Config{})
	ctx := context.Background()

	job, err := c.Submit(ctx, targetSpec())
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(c.BaseURL() + "/v1/jobs/" + job.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64<<10), 16<<20)
	frames := 0
	for sc.Scan() {
		data, ok := strings.CutPrefix(sc.Text(), "data: ")
		if !ok {
			continue
		}
		frames++
		var j client.Job
		if err := json.Unmarshal([]byte(data), &j); err != nil {
			t.Fatalf("frame %d is not a Job: %v\n%s", frames, err, data)
		}
		if j.ID != job.ID {
			t.Errorf("frame carries job %s, want %s", j.ID, job.ID)
		}
		if j.Status.Terminal() {
			return // stream closes after the terminal frame
		}
	}
	t.Fatalf("stream ended after %d frames without a terminal state", frames)
}

// TestEventsUnknownJob: the events endpoint 404s like the job GET.
func TestEventsUnknownJob(t *testing.T) {
	_, c := newTestServer(t, service.Config{})
	resp, err := http.Get(c.BaseURL() + "/v1/jobs/j-999999/events")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("status %d, want 404", resp.StatusCode)
	}
}

// TestClusterTraceAndProgress: one trace id crosses the whole cluster
// — stamped by the client, recorded on the front's job, and present in
// the worker daemon's structured job records — and the worker's live
// progress is relayed into the front's job view. The front's engine
// counters stay untouched: telemetry for forwarded rounds is the
// worker's to report.
func TestClusterTraceAndProgress(t *testing.T) {
	ctx := context.Background()
	var mu sync.Mutex
	var workerLog, frontLog bytes.Buffer
	sink := func(buf *bytes.Buffer) *slog.Logger {
		return slog.New(slog.NewJSONHandler(writerFunc(func(p []byte) (int, error) {
			mu.Lock()
			defer mu.Unlock()
			return buf.Write(p)
		}), nil))
	}
	w := startDaemon(t, service.Config{Logger: sink(&workerLog)}, nil)
	defer w.stop(t)
	front := startDaemon(t, service.Config{Logger: sink(&frontLog)}, []string{w.ts.URL})
	defer front.stop(t)

	const trace = "cluster-trace-e2e-1"
	tctx := client.WithTraceID(ctx, trace)
	job, err := front.c.Submit(tctx, blockerSpec(2500))
	if err != nil {
		t.Fatal(err)
	}
	if job.TraceID != trace {
		t.Errorf("front job trace id %q, want %q", job.TraceID, trace)
	}

	sawRelayedProgress := false
	final, err := front.c.WaitJob(tctx, job.ID, func(j *client.Job) {
		if j.Progress != nil && j.Progress.Rounds > 0 {
			sawRelayedProgress = true
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if final.Status != client.JobDone {
		t.Fatalf("job ended %s: %s", final.Status, final.Error)
	}
	if !sawRelayedProgress {
		t.Error("front never relayed worker progress during a multi-hundred-ms run")
	}

	mu.Lock()
	wl, fl := workerLog.String(), frontLog.String()
	mu.Unlock()
	if !strings.Contains(fl, trace) {
		t.Errorf("front logs never mention trace id %q:\n%s", trace, fl)
	}
	if !(strings.Contains(wl, "job start") && strings.Contains(wl, trace)) {
		t.Errorf("worker logs carry no job record with trace id %q:\n%s", trace, wl)
	}

	fs, err := front.c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if fs.RoundsSimulated != 0 {
		t.Errorf("front rounds_simulated = %d, want 0 (forwarded rounds are the worker's)", fs.RoundsSimulated)
	}
	ws, err := w.c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if ws.RoundsSimulated <= 0 {
		t.Errorf("worker rounds_simulated = %d after a completed run", ws.RoundsSimulated)
	}
}

// writerFunc adapts a function to io.Writer (lock-guarded log sinks).
type writerFunc func(p []byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }
