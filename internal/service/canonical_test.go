package service_test

import (
	"context"
	"reflect"
	"testing"

	"awakemis"
	"awakemis/internal/service"
)

func TestCanonicalizeFillsDefaults(t *testing.T) {
	got := service.Canonicalize(awakemis.Spec{Task: "luby"})
	want := awakemis.Spec{
		Task:    "luby",
		Graph:   awakemis.GraphSpec{Family: "gnp", N: 1024, P: 4.0 / 1024},
		Options: awakemis.Options{Engine: awakemis.EngineStepped},
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Canonicalize(zero spec) = %+v, want %+v", got, want)
	}
}

func TestCanonicalizeZeroesIrrelevantFields(t *testing.T) {
	// A cycle ignores p, degree, and radius: specs differing only in
	// those knobs canonicalize — and therefore hash — identically.
	got := service.Canonicalize(awakemis.Spec{
		Task:    "luby",
		Graph:   awakemis.GraphSpec{Family: "Cycle", N: 64, P: 0.5, Degree: 7, Radius: 0.3},
		Options: awakemis.Options{Seed: 3, Workers: 8, Trace: true},
	})
	want := awakemis.Spec{
		Task:    "luby",
		Graph:   awakemis.GraphSpec{Family: "cycle", N: 64, Seed: 3},
		Options: awakemis.Options{Seed: 3, Engine: awakemis.EngineStepped},
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Canonicalize = %+v, want %+v", got, want)
	}
}

// TestCanonicalizeSmallGNPStaysValid: the default edge probability
// 4/n exceeds 1 for n < 4; canonicalization must clamp it so a spec
// that validates raw still validates (and runs identically) in
// canonical form.
func TestCanonicalizeSmallGNPStaysValid(t *testing.T) {
	spec := awakemis.Spec{Task: "luby", Graph: awakemis.GraphSpec{N: 3}, Options: awakemis.Options{Seed: 7}}
	canon := service.Canonicalize(spec)
	if canon.Graph.P != 1 {
		t.Errorf("canonical P = %v, want the clamp to 1", canon.Graph.P)
	}
	if err := canon.Validate(); err != nil {
		t.Errorf("canonical form of a valid spec fails validation: %v", err)
	}
	raw, err := awakemis.Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	canonRep, err := awakemis.Run(context.Background(), canon)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(raw.Output, canonRep.Output) || raw.Metrics.Rounds != canonRep.Metrics.Rounds {
		t.Error("n=3 gnp: canonical run diverges from the raw run")
	}
}

func TestCanonicalizeResolvesGraphSeed(t *testing.T) {
	spec := awakemis.Spec{
		Task:    "vt-mis",
		Graph:   awakemis.GraphSpec{Family: "tree", N: 40},
		Options: awakemis.Options{Seed: 77},
	}
	if got := service.Canonicalize(spec).Graph.Seed; got != 77 {
		t.Errorf("graph seed = %d, want the run seed 77", got)
	}
	spec.Graph.Seed = 5 // explicit graph seed survives
	if got := service.Canonicalize(spec).Graph.Seed; got != 5 {
		t.Errorf("graph seed = %d, want the explicit 5", got)
	}
}

func TestHashEquivalenceClasses(t *testing.T) {
	base := awakemis.Spec{
		Task:    "awake-mis",
		Graph:   awakemis.GraphSpec{Family: "gnp", N: 64},
		Options: awakemis.Options{Seed: 1},
	}
	h := func(s awakemis.Spec) string {
		t.Helper()
		hash, err := service.Hash(s)
		if err != nil {
			t.Fatal(err)
		}
		return hash
	}

	// Equal: defaults made explicit, worker/trace knobs, family case.
	same := []awakemis.Spec{base, base, base}
	same[1].Graph.P = 4.0 / 64
	same[1].Options.Engine = awakemis.EngineStepped
	same[1].Options.Workers = 16
	same[2].Graph.Family = "GNP"
	same[2].Graph.Seed = 1
	same[2].Options.Trace = true
	for i, s := range same {
		if h(s) != h(base) {
			t.Errorf("result-equivalent variant %d hashes differently", i)
		}
	}

	// Different: anything that changes the simulation or its label.
	diff := []awakemis.Spec{base, base, base, base, base}
	diff[0].Options.Seed = 2
	diff[1].Graph.N = 65
	diff[2].Task = "luby"
	diff[3].Name = "labeled"
	diff[4].Options.Strict = true
	seen := map[string]int{h(base): -1}
	for i, s := range diff {
		hash := h(s)
		if prev, dup := seen[hash]; dup {
			t.Errorf("variants %d and %d collide", prev, i)
		}
		seen[hash] = i
	}
}

// TestHashFrozen pins the canonical encoding: a change here silently
// invalidates every deployed report cache, so it must be deliberate.
func TestHashFrozen(t *testing.T) {
	hash, err := service.Hash(awakemis.Spec{
		Task:    "awake-mis",
		Graph:   awakemis.GraphSpec{Family: "gnp", N: 64},
		Options: awakemis.Options{Seed: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	const frozen = "5ffc313e92f510c2e1c341ae99614766efd2129d22ebcb2dd30732eeebff7fe9"
	if hash != frozen {
		t.Errorf("canonical hash drifted:\n got %s\nwant %s\n(an intentional change must update this constant and the README's cache note)", hash, frozen)
	}
}

// TestCanonicalSpecRunsIdentically: canonicalization must be
// semantics-preserving — the canonical spec produces the same Report
// as the original (the property content-addressed caching relies on).
func TestCanonicalSpecRunsIdentically(t *testing.T) {
	specs := []awakemis.Spec{
		{Task: "luby", Graph: awakemis.GraphSpec{Family: "Cycle", N: 40, P: 0.9}, Options: awakemis.Options{Seed: 4, Workers: 3}},
		{Task: "awake-mis", Graph: awakemis.GraphSpec{N: 48}, Options: awakemis.Options{Seed: 2}},
		{Task: "coloring", Graph: awakemis.GraphSpec{Family: "geometric", N: 30}, Options: awakemis.Options{Seed: 6, Engine: awakemis.EngineLockstep}},
	}
	for i, spec := range specs {
		raw, err := awakemis.Run(context.Background(), spec)
		if err != nil {
			t.Fatalf("spec %d raw: %v", i, err)
		}
		canon, err := awakemis.Run(context.Background(), service.Canonicalize(spec))
		if err != nil {
			t.Fatalf("spec %d canonical: %v", i, err)
		}
		raw.WallMS, canon.WallMS = 0, 0
		// Workers is zeroed by canonicalization and worker counts never
		// change results; ignore it like wall time.
		raw.Workers, canon.Workers = 0, 0
		if !reflect.DeepEqual(raw, canon) {
			t.Errorf("spec %d: canonical run diverges:\n%+v\nvs\n%+v", i, raw, canon)
		}
	}
}
