package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"maps"
	"net/http"
	"runtime"
	"sync"
	"time"

	"awakemis"
	"awakemis/internal/buildinfo"
	"awakemis/internal/store"
	"awakemis/internal/traceid"
)

// Config sizes a Server. The zero value is usable; every field has a
// production-minded default.
type Config struct {
	// Workers is the number of simulations in flight at once (0 means
	// one per CPU, capped at 4 — simulations are themselves parallel).
	Workers int
	// SimWorkers is the total stepped-engine worker budget, divided
	// evenly among the Workers slots (0 means one per CPU), mirroring
	// Runner.Workers. Worker counts never change results.
	SimWorkers int
	// QueueSize bounds the pending-simulation queue; submissions that
	// need a new simulation when the queue is full are rejected with
	// 503 (0 means 256). Duplicate and cached submissions never take a
	// queue slot.
	QueueSize int
	// CacheBytes is the report cache's byte budget (0 means 64 MiB;
	// negative disables caching).
	CacheBytes int64
	// JobHistory caps how many finished jobs stay queryable; the oldest
	// finished jobs are forgotten first (0 means 4096).
	JobHistory int
	// Store, when non-nil, is the persistent tier under the in-memory
	// report cache: completed reports are written through to it and
	// cache misses fall back to it, so reports survive restarts and
	// grow past the memory budget. The caller opens it (store.Open)
	// and closes it after Shutdown.
	Store *store.Store
	// Forward, when non-nil, turns the server into a cluster front:
	// instead of running simulations locally, workers hand each flight
	// to the Forwarder (which shards across worker daemons). The local
	// cache, store, singleflight, queue, and study executor all still
	// apply — the front deduplicates cluster-wide before any peer sees
	// a job, and EngineRuns stays zero.
	Forward Forwarder
	// Metrics enables GET /metrics (Prometheus text format) and the
	// per-route request latency histograms behind it.
	Metrics bool
	// Logger receives the server's structured records: one per HTTP
	// request (trace id, route, status, duration) and one per job start
	// and end (trace id, spec hash, task, queue wait, run time, peer).
	// Nil silences them — tests and embedders opt in explicitly.
	Logger *slog.Logger
}

// Forwarder executes a flight on a remote worker daemon on behalf of
// a front server. Forward returns the peer's exact report bytes (the
// byte-identity contract extends across the cluster) and the address
// of the peer that served it; progress, when non-nil, receives relayed
// live-progress views from the peer while the run executes. The trace
// id carried by ctx (traceid.From) must be propagated to the peer.
// Implemented by internal/cluster.Front.
type Forwarder interface {
	Forward(ctx context.Context, spec awakemis.Spec, progress func(JobProgress)) (report []byte, peer string, err error)
	// PeerHealth reports every configured peer's last known health.
	PeerHealth() map[string]bool
}

// noopHandler is the zero-cost slog sink behind a nil Config.Logger.
// (slog.DiscardHandler needs Go 1.24; the repo still tests on 1.23.)
type noopHandler struct{}

func (noopHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (noopHandler) Handle(context.Context, slog.Record) error { return nil }
func (noopHandler) WithAttrs([]slog.Attr) slog.Handler        { return noopHandler{} }
func (noopHandler) WithGroup(string) slog.Handler             { return noopHandler{} }

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = min(runtime.NumCPU(), 4)
	}
	if c.SimWorkers <= 0 {
		c.SimWorkers = runtime.NumCPU()
	}
	if c.QueueSize <= 0 {
		c.QueueSize = 256
	}
	if c.CacheBytes == 0 {
		c.CacheBytes = 64 << 20
	}
	if c.CacheBytes < 0 {
		c.CacheBytes = 0
	}
	if c.JobHistory <= 0 {
		c.JobHistory = 4096
	}
	return c
}

// JobStatus is a job's lifecycle state on the wire.
type JobStatus string

const (
	// JobQueued: waiting for a worker (or attached to a queued
	// duplicate's flight).
	JobQueued JobStatus = "queued"
	// JobRunning: its simulation is executing.
	JobRunning JobStatus = "running"
	// JobDone: the Report is available.
	JobDone JobStatus = "done"
	// JobFailed: the run errored; Error describes why.
	JobFailed JobStatus = "failed"
	// JobCanceled: the submitter canceled before completion.
	JobCanceled JobStatus = "canceled"
)

// terminal reports whether the status is final.
func (s JobStatus) terminal() bool {
	return s == JobDone || s == JobFailed || s == JobCanceled
}

// Job is the wire view of one submission. Spec is the canonical form
// (defaults filled, seed resolved) and Hash its content address;
// identical canonical specs share one simulation and one cache entry.
type Job struct {
	ID     string        `json:"id"`
	Status JobStatus     `json:"status"`
	Hash   string        `json:"hash"`
	Spec   awakemis.Spec `json:"spec"`
	// Cached reports that the job was served from the report cache
	// without waiting on a simulation.
	Cached bool `json:"cached,omitempty"`
	// Error is set when Status is "failed".
	Error string `json:"error,omitempty"`
	// Report holds the run's Report (the exact cached bytes — equal
	// specs always receive bit-identical reports) when Status is "done".
	Report json.RawMessage `json:"report,omitempty"`
	// TraceID is the request trace id the submission carried (or was
	// minted), greppable across every daemon the job touched.
	TraceID string `json:"trace_id,omitempty"`
	// Progress is the live view of the running simulation, attached
	// while the flight executes and dropped once terminal (the Report
	// then carries the full story).
	Progress *JobProgress `json:"progress,omitempty"`
}

// job is a Job plus the server-side bookkeeping that never leaves the
// process.
type job struct {
	Job
	flight *flight
	// done closes when the job reaches a terminal state — the in-process
	// completion signal study executors wait on (HTTP clients poll).
	done chan struct{}
	// rounds/simNS are the flight tracker's totals stamped when the job
	// goes terminal (the flight pointer is cleared then), and vectorized
	// marks a job that ran as a lane of a merged cell pass — study
	// progress aggregates all three after the run is gone.
	rounds     int64
	simNS      int64
	vectorized bool
}

// flight is one in-flight (or queued) simulation shared by every job
// whose spec hashes to the same content address — the singleflight
// unit. All fields are guarded by Server.mu except spec/hash, which
// are immutable.
type flight struct {
	hash string
	spec awakemis.Spec
	jobs []*job
	// live counts attached jobs that have not been canceled; when it
	// drops to zero the flight is abandoned (and its run, if started,
	// canceled) — but one waiter's cancellation never aborts the run
	// for the others.
	live int
	// cancel aborts the running simulation at its next round boundary
	// (nil until a worker picks the flight up).
	cancel context.CancelFunc
	state  JobStatus // JobQueued until a worker starts it
	// traceID is the first submitter's trace id — the one the run (and
	// any cluster forward) executes under. Coalesced duplicates keep
	// their own ids on their jobs.
	traceID string
	// enqueued is when the flight entered the queue (queue-wait
	// telemetry).
	enqueued time.Time
	// tracker observes the running simulation for live progress (nil
	// until a worker picks the flight up).
	tracker *progressTracker
	// group, when non-nil, marks the flight as one trial lane of a
	// study cell whose siblings share a graph: the first lane a worker
	// pops drives all still-queued lanes as one vectorized run (guarded
	// by Server.mu, like the rest of the flight).
	group *vectorGroup
}

// vectorGroup ties the flights of one study cell's trials together so
// a single worker can execute them as one merged vectorized pass. The
// group is advisory: lanes popped or canceled before the drive simply
// run (or die) alone on the scalar path, with identical results.
type vectorGroup struct {
	flights []*flight // trial order
	started bool      // set by the driving worker under Server.mu
}

// Stats is the /v1/stats payload: cache effectiveness, queue
// pressure, and job accounting. EngineRuns counts simulations
// actually started — the acceptance signal that cache hits and
// coalesced duplicates never invoke an engine.
type Stats struct {
	CacheHits      int64 `json:"cache_hits"`
	CacheMisses    int64 `json:"cache_misses"`
	Coalesced      int64 `json:"coalesced"`
	EngineRuns     int64 `json:"engine_runs"`
	CacheEntries   int   `json:"cache_entries"`
	CacheBytes     int64 `json:"cache_bytes"`
	CacheBudget    int64 `json:"cache_budget_bytes"`
	CacheEvictions int64 `json:"cache_evictions"`
	JobsSubmitted  int64 `json:"jobs_submitted"`
	JobsCompleted  int64 `json:"jobs_completed"`
	JobsFailed     int64 `json:"jobs_failed"`
	JobsCanceled   int64 `json:"jobs_canceled"`
	// Study accounting: studies are grids of sub-jobs, so one study
	// submission moves JobsSubmitted by its cell×trial count while
	// moving StudiesSubmitted by one. EngineRuns still counts actual
	// simulations — a re-submitted study leaves it unchanged.
	StudiesSubmitted int64 `json:"studies_submitted"`
	StudiesCompleted int64 `json:"studies_completed"`
	StudiesFailed    int64 `json:"studies_failed"`
	StudiesCanceled  int64 `json:"studies_canceled"`
	// QueueDepth is the number of flights waiting for a worker;
	// InFlight counts distinct simulations queued or running.
	QueueDepth int  `json:"queue_depth"`
	InFlight   int  `json:"inflight"`
	Draining   bool `json:"draining"`

	// Persistent store tier (all omitempty: the wire shape is
	// unchanged unless a store is configured). StoreHits count cache
	// misses served from disk; StoreBytes/StoreEntries meter the
	// record files; StoreCorrupt counts records discarded by
	// checksum verification; StoreErrors counts failed write-throughs.
	StoreHits      int64 `json:"store_hits,omitempty"`
	StoreMisses    int64 `json:"store_misses,omitempty"`
	StoreEntries   int64 `json:"store_entries,omitempty"`
	StoreBytes     int64 `json:"store_bytes,omitempty"`
	StoreBudget    int64 `json:"store_budget_bytes,omitempty"`
	StoreEvictions int64 `json:"store_evictions,omitempty"`
	StoreCorrupt   int64 `json:"store_corrupt,omitempty"`
	StoreErrors    int64 `json:"store_errors,omitempty"`

	// Cluster forwarding (all omitempty: present only on a front
	// daemon). Forwarded counts flights served by a peer, attributed
	// per peer in PeerForwards; ForwardErrors counts flights no peer
	// could serve.
	Forwarded     int64            `json:"forwarded,omitempty"`
	ForwardErrors int64            `json:"forward_errors,omitempty"`
	PeerForwards  map[string]int64 `json:"peer_forwards,omitempty"`
	PeersHealthy  int              `json:"peers_healthy,omitempty"`
	PeersTotal    int              `json:"peers_total,omitempty"`

	// Engine-level telemetry (omitempty: zero until a local simulation
	// executes a round — always zero on a pure front). RoundsSimulated
	// totals executed rounds across all local runs; SimSeconds totals
	// the engine time they took.
	RoundsSimulated int64   `json:"rounds_simulated,omitempty"`
	SimSeconds      float64 `json:"sim_seconds,omitempty"`

	// StudyCells counts study cells by terminal outcome ("done",
	// "cached", "failed", "canceled") across all finished studies —
	// the Prometheus awakemisd_study_cells_total series (omitempty:
	// absent until a study finishes).
	StudyCells map[string]int64 `json:"study_cells,omitempty"`

	// Build identity of the serving daemon (omitempty: absent when the
	// binary carries no module/VCS metadata). Mirrors /v1/healthz and
	// `awakemisd -version`.
	Version   string `json:"version,omitempty"`
	Revision  string `json:"revision,omitempty"`
	BuildTime string `json:"build_time,omitempty"`
	GoVersion string `json:"go_version,omitempty"`
}

// Server is the awakemisd core: a bounded queue of deduplicated
// simulation flights, a worker pool executing them through the public
// facade with context cancellation, a content-addressed report cache
// in front, and the HTTP API over all of it. Create with New, serve
// Handler, stop with Shutdown.
type Server struct {
	cfg    Config
	perRun int // stepped-engine workers per simulation slot

	mu        sync.Mutex
	cond      *sync.Cond // signaled on queue pushes and on drain
	jobs      map[string]*job
	doneOrder []string // finished job IDs, oldest first (history cap)
	inflight  map[string]*flight
	// queue holds flights waiting for a worker, oldest first. A slice
	// under mu (not a channel) so canceling every waiter of a queued
	// flight can remove it immediately — abandoned flights neither
	// occupy bounded-queue capacity nor reach a worker.
	queue []*flight
	cache *tieredCache
	// fwd delegates execution to a cluster of worker daemons (nil =
	// run locally); peerForwards attributes served flights per peer.
	fwd          Forwarder
	peerForwards map[string]int64
	stats        Stats
	simNS        int64 // engine time across local runs (Stats.SimSeconds)
	draining     bool
	seq          int

	// Studies: each submission fans out into sub-jobs through the same
	// Submit path (cache, coalescing, bounded queue) and aggregates
	// into a StudyResult artifact. studyDone mirrors doneOrder;
	// studyCells tallies terminal cell outcomes (Stats.StudyCells).
	studies    map[string]*studyRun
	studyDone  []string
	studySeq   int
	studyCells map[string]int64

	baseCtx    context.Context
	cancelRuns context.CancelFunc
	wg         sync.WaitGroup
	mux        *http.ServeMux
	handler    http.Handler // mux behind the trace/log/metrics middleware
	metrics    *metricsState
	logger     *slog.Logger
}

// New starts a Server: its workers run until Shutdown.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:          cfg,
		perRun:       max(1, cfg.SimWorkers/cfg.Workers),
		jobs:         map[string]*job{},
		inflight:     map[string]*flight{},
		studies:      map[string]*studyRun{},
		cache:        newTieredCache(cfg.CacheBytes, cfg.Store),
		fwd:          cfg.Forward,
		peerForwards: map[string]int64{},
		logger:       cfg.Logger,
	}
	if s.logger == nil {
		s.logger = slog.New(noopHandler{})
	}
	s.cond = sync.NewCond(&s.mu)
	s.baseCtx, s.cancelRuns = context.WithCancel(context.Background())
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleGetJob)
	s.mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleJobEvents)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancelJob)
	s.mux.HandleFunc("POST /v1/studies", s.handleSubmitStudy)
	s.mux.HandleFunc("GET /v1/studies", s.handleListStudies)
	s.mux.HandleFunc("GET /v1/studies/{id}", s.handleGetStudy)
	s.mux.HandleFunc("GET /v1/studies/{id}/events", s.handleStudyEvents)
	s.mux.HandleFunc("DELETE /v1/studies/{id}", s.handleCancelStudy)
	s.mux.HandleFunc("GET /v1/tasks", s.handleTasks)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /v1/cluster/stats", s.handleClusterStats)
	s.mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /v1/dashboard", s.handleDashboard)
	if cfg.Metrics {
		s.metrics = newMetricsState()
		s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	}
	// Trace-id adoption and request logging apply to every route;
	// latency histograms only when Metrics is on.
	s.handler = s.middleware(s.mux)
	for range cfg.Workers {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// Handler returns the HTTP API.
func (s *Server) Handler() http.Handler { return s.handler }

// Shutdown drains the server: new submissions are rejected, queued
// and running simulations finish, then the workers and study
// executors exit (a study still expanding when the drain begins fails
// — its remaining sub-runs can no longer be submitted). If ctx
// expires first, in-flight simulations are canceled at their next
// round boundary (their jobs fail) and Shutdown returns ctx.Err()
// after the workers stop. Safe to call once.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return errors.New("service: already shut down")
	}
	s.draining = true
	s.stats.Draining = true
	s.cond.Broadcast() // workers finish the queue, then exit
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.cancelRuns()
		<-done
		return ctx.Err()
	}
}

// Submit enqueues a spec and returns its job: served from cache
// (terminal, Cached), attached to an identical in-flight simulation,
// or queued as a new flight. The error is ErrInvalidSpec-wrapping for
// malformed specs and ErrUnavailable-wrapping when draining or full.
func (s *Server) Submit(spec awakemis.Spec) (Job, error) {
	return s.SubmitTraced(spec, "")
}

// SubmitTraced is Submit carrying the submitter's trace id: the job
// records it, and a new flight runs (and forwards) under it, so one
// grep follows the job across every daemon.
func (s *Server) SubmitTraced(spec awakemis.Spec, traceID string) (Job, error) {
	if err := spec.Validate(); err != nil {
		return Job{}, err
	}
	canonical := Canonicalize(spec)
	hash, err := hashCanonical(canonical)
	if err != nil {
		return Job{}, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	j, err := s.submitLocked(canonical, hash, traceID)
	if err != nil {
		return Job{}, err
	}
	return j.Job, nil
}

// submitLocked is the Submit core, shared with the study executor:
// the spec is already canonical and hashed, and s.mu is held.
func (s *Server) submitLocked(canonical awakemis.Spec, hash, traceID string) (*job, error) {
	if s.draining {
		return nil, fmt.Errorf("%w: server is draining", ErrUnavailable)
	}
	s.seq++
	j := &job{
		Job: Job{
			ID:      fmt.Sprintf("j-%06d", s.seq),
			Hash:    hash,
			Spec:    canonical,
			Status:  JobQueued,
			TraceID: traceID,
		},
		done: make(chan struct{}),
	}

	if data, ok := s.cache.getMem(hash); ok {
		return s.serveCachedLocked(j, data), nil
	}
	if f, ok := s.inflight[hash]; ok {
		s.stats.JobsSubmitted++
		s.stats.Coalesced++
		j.flight = f
		j.Status = f.state
		f.jobs = append(f.jobs, j)
		f.live++
		s.jobs[j.ID] = j
		return j, nil
	}
	// The persistent tier is consulted after the in-flight index so
	// coalesced duplicates never pay for file I/O; a hit is promoted
	// into the memory LRU by the cache itself.
	if data, ok := s.cache.getDisk(hash); ok {
		return s.serveCachedLocked(j, data), nil
	}
	if len(s.queue) >= s.cfg.QueueSize {
		return nil, fmt.Errorf("%w: job queue is full (%d pending)", ErrOverloaded, s.cfg.QueueSize)
	}
	s.stats.JobsSubmitted++
	s.stats.CacheMisses++
	f := &flight{hash: hash, spec: canonical, jobs: []*job{j}, live: 1, state: JobQueued,
		traceID: traceID, enqueued: time.Now()}
	j.flight = f
	s.inflight[hash] = f
	s.jobs[j.ID] = j
	s.queue = append(s.queue, f)
	s.cond.Signal()
	return j, nil
}

// serveCachedLocked completes a fresh job from cached report bytes
// (either tier): terminal immediately, no queue slot, no engine run.
// Callers hold s.mu.
func (s *Server) serveCachedLocked(j *job, data []byte) *job {
	s.stats.JobsSubmitted++
	s.stats.CacheHits++
	s.stats.JobsCompleted++
	j.Status = JobDone
	j.Cached = true
	j.Report = data
	s.jobs[j.ID] = j
	s.finishLocked(j)
	return j
}

// Lookup returns the job's current wire view, with a live progress
// snapshot attached while its simulation runs.
func (s *Server) Lookup(id string) (Job, bool) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	if !ok {
		s.mu.Unlock()
		return Job{}, false
	}
	wire := j.Job
	var tracker *progressTracker
	if j.flight != nil {
		tracker = j.flight.tracker
	}
	s.mu.Unlock()
	if tracker != nil {
		// Snapshot outside s.mu: the tracker has its own lock, shared
		// with the engine goroutine.
		wire.Progress = tracker.snapshot()
	}
	return wire, true
}

// Cancel marks the job canceled. The shared simulation keeps running
// as long as any duplicate submitter still wants it; only when the
// last live job cancels is the run itself aborted (or the queued
// flight abandoned). Canceling a finished job returns ErrConflict.
func (s *Server) Cancel(id string) (Job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return Job{}, fmt.Errorf("%w: no job %s", ErrNotFound, id)
	}
	if j.Status.terminal() {
		return j.Job, fmt.Errorf("%w: job %s already %s", ErrConflict, id, j.Status)
	}
	s.cancelLocked(j)
	return j.Job, nil
}

// cancelLocked cancels a non-terminal job; s.mu is held. Shared by
// Cancel and the study teardown paths.
func (s *Server) cancelLocked(j *job) {
	f := j.flight // finishLocked clears the pointer
	j.Status = JobCanceled
	if f != nil && f.tracker != nil {
		j.rounds, j.simNS = f.tracker.progressTotals()
	}
	s.stats.JobsCanceled++
	s.finishLocked(j)
	if f != nil {
		f.live--
		if f.live == 0 {
			// Last waiter gone: abandon the flight. Remove it from the
			// dedup index first so a new identical submission starts
			// fresh instead of attaching to a dying run, then free its
			// queue slot (if still queued) or abort its run.
			if s.inflight[f.hash] == f {
				delete(s.inflight, f.hash)
			}
			for i, queued := range s.queue {
				if queued == f {
					s.queue = append(s.queue[:i], s.queue[i+1:]...)
					break
				}
			}
			if f.cancel != nil {
				f.cancel()
			}
		}
	}
}

// StatsSnapshot returns current counters.
func (s *Server) StatsSnapshot() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.SimSeconds = float64(s.simNS) / 1e9
	bi := buildinfo.Get()
	st.Version, st.Revision = bi.Version, bi.Revision
	st.BuildTime, st.GoVersion = bi.BuildTime, bi.GoVersion
	st.CacheEntries = s.cache.mem.len()
	st.CacheBytes = s.cache.mem.bytes
	st.CacheBudget = s.cache.mem.budget
	st.CacheEvictions = s.cache.mem.evicted
	st.QueueDepth = len(s.queue)
	st.InFlight = len(s.inflight)
	st.Draining = s.draining
	if d := s.cache.disk; d != nil {
		ds := d.Stats()
		st.StoreHits, st.StoreMisses = ds.Hits, ds.Misses
		st.StoreEntries, st.StoreBytes = ds.Entries, ds.Bytes
		st.StoreBudget, st.StoreEvictions = ds.Budget, ds.Evictions
		st.StoreCorrupt = ds.Corrupt
	}
	if s.fwd != nil {
		health := s.fwd.PeerHealth()
		st.PeersTotal = len(health)
		for _, up := range health {
			if up {
				st.PeersHealthy++
			}
		}
		if len(s.peerForwards) > 0 {
			st.PeerForwards = maps.Clone(s.peerForwards)
		}
	}
	if len(s.studyCells) > 0 {
		st.StudyCells = maps.Clone(s.studyCells)
	}
	return st
}

// worker executes queued flights until drain completes: on Shutdown
// it finishes whatever is still queued, then exits. Flights in the
// queue always have at least one live job — Cancel removes fully
// abandoned flights under the same lock.
func (s *Server) worker() {
	defer s.wg.Done()
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		for len(s.queue) == 0 && !s.draining {
			s.cond.Wait()
		}
		if len(s.queue) == 0 {
			return // draining and nothing left
		}
		f := s.queue[0]
		s.queue = s.queue[1:]
		if g := f.group; g != nil && !g.started {
			if lanes := s.stealGroupLocked(f); len(lanes) > 1 {
				s.runLanesLocked(lanes)
				continue
			}
		}
		ctx, cancel := context.WithCancel(s.baseCtx)
		f.cancel = cancel
		f.state = JobRunning
		f.tracker = newProgressTracker(f.spec.Graph.N)
		queueWait := time.Since(f.enqueued)
		for _, j := range f.jobs {
			if j.Status == JobQueued {
				j.Status = JobRunning
			}
		}
		if s.fwd == nil {
			s.stats.EngineRuns++
		}
		waiters := len(f.jobs)
		s.mu.Unlock()

		if s.metrics != nil {
			s.metrics.observeQueueWait(queueWait.Seconds())
		}
		// The run (and any forward) executes under the first submitter's
		// trace id, so worker-daemon logs join the same trail.
		if f.traceID != "" {
			ctx = traceid.With(ctx, f.traceID)
		}
		s.logger.Info("job start",
			"trace_id", f.traceID, "hash", f.hash,
			"task", f.spec.Task, "graph_n", f.spec.Graph.N,
			"queue_wait_ns", queueWait.Nanoseconds(), "waiters", waiters)
		start := time.Now()

		var data []byte
		var err error
		var peer string
		if s.fwd != nil {
			// Front mode: a peer runs the simulation; data is the peer's
			// exact report bytes, preserving byte identity cluster-wide.
			// The peer's progress views relay into this flight's tracker.
			data, peer, err = s.fwd.Forward(ctx, f.spec, f.tracker.setRemote)
		} else {
			// The observer rides a run option, never the canonical spec,
			// so it cannot reach canonicalization or the wire.
			var rep *awakemis.Report
			rep, err = awakemis.Run(ctx, f.spec,
				awakemis.WithWorkers(s.perRun), awakemis.WithObserver(f.tracker))
			if err == nil {
				data, err = json.Marshal(rep)
			}
		}
		cancel()

		status, errText := "done", ""
		if err != nil {
			status, errText = "failed", err.Error()
		}
		s.logger.Info("job end",
			"trace_id", f.traceID, "hash", f.hash, "status", status,
			"run_ns", time.Since(start).Nanoseconds(), "peer", peer,
			"error", errText)

		s.mu.Lock()
		rounds, simNS := f.tracker.totals()
		s.stats.RoundsSimulated += rounds
		s.simNS += simNS
		jobRounds, jobSimNS := f.tracker.progressTotals()
		for _, j := range f.jobs {
			// Stamp every waiter with the flight's executed totals (remote
			// relays included) before the flight pointer goes away — study
			// progress keeps aggregating them after the run is gone.
			j.rounds, j.simNS = jobRounds, jobSimNS
		}
		if s.fwd != nil {
			if err == nil {
				s.stats.Forwarded++
				s.peerForwards[peer]++
			} else {
				s.stats.ForwardErrors++
			}
		}
		if s.inflight[f.hash] == f {
			delete(s.inflight, f.hash)
		}
		for _, j := range f.jobs {
			if j.Status.terminal() {
				continue // canceled waiters keep their cancellation
			}
			if err != nil {
				j.Status = JobFailed
				j.Error = err.Error()
				s.stats.JobsFailed++
			} else {
				j.Status = JobDone
				j.Report = data
				s.stats.JobsCompleted++
			}
			s.finishLocked(j)
		}
		if err == nil {
			s.cache.putMem(f.hash, data)
			if s.cache.hasDisk() {
				// Persist outside the lock: gzip + fsync must not stall
				// submissions. The record is content-addressed, so a
				// concurrent equal write is an idempotent no-op.
				s.mu.Unlock()
				perr := s.cache.putDisk(f.hash, data)
				s.mu.Lock()
				if perr != nil {
					s.stats.StoreErrors++
				}
			}
		}
	}
}

// stealGroupLocked claims a popped flight's vector group: it marks the
// group started and removes the still-queued sibling lanes from the
// queue, returning the claimable lanes in trial order. Lanes already
// canceled (gone from the queue) are left out. Callers hold s.mu.
func (s *Server) stealGroupLocked(f *flight) []*flight {
	g := f.group
	g.started = true
	stolen := make(map[*flight]bool, len(g.flights))
	keep := s.queue[:0]
	for _, q := range s.queue {
		mate := false
		for _, m := range g.flights {
			if q == m {
				mate = true
				break
			}
		}
		if mate {
			stolen[q] = true
		} else {
			keep = append(keep, q)
		}
	}
	s.queue = keep
	lanes := make([]*flight, 0, len(g.flights))
	for _, m := range g.flights {
		if m == f || stolen[m] {
			lanes = append(lanes, m)
		}
	}
	return lanes
}

// runLanesLocked executes the flights of one study cell as a single
// vectorized run: one merged pass over the shared graph, one lane per
// trial. Everything a scalar flight gets — job accounting, per-lane
// progress tracker, queue-wait metrics, job start/end logs, cache and
// store write-through, EngineRuns — happens per lane, so stats and
// logs are indistinguishable from the lanes having run scalar, and
// each lane's cached report bytes are byte-identical to a scalar run
// of its spec. Called (and returns) with s.mu held.
func (s *Server) runLanesLocked(lanes []*flight) {
	ctx, cancel := context.WithCancel(s.baseCtx)
	// Per-lane cancel closures honor the last-waiter rule per flight
	// without aborting the merged run for the other lanes: the real
	// cancel fires only when every lane has been released. Every
	// f.cancel call site holds s.mu, which guards the counter.
	liveLanes := len(lanes)
	laneCancel := func() {
		liveLanes--
		if liveLanes == 0 {
			cancel()
		}
	}
	trials := make([]awakemis.Trial, len(lanes))
	out := make([]*awakemis.Report, len(lanes))
	waits := make([]time.Duration, len(lanes))
	waiters := make([]int, len(lanes))
	for i, f := range lanes {
		f.cancel = laneCancel
		f.state = JobRunning
		f.tracker = newProgressTracker(f.spec.Graph.N)
		waits[i] = time.Since(f.enqueued)
		waiters[i] = len(f.jobs)
		for _, j := range f.jobs {
			if j.Status == JobQueued {
				j.Status = JobRunning
			}
		}
		trials[i] = awakemis.Trial{
			Seed:     f.spec.Options.Seed,
			Name:     f.spec.Name,
			Observer: f.tracker,
		}
	}
	s.stats.EngineRuns += int64(len(lanes))
	template := lanes[0].spec
	s.mu.Unlock()

	// The merged run executes under the driving lane's trace id (a
	// study submits every lane under one id anyway); each lane still
	// logs its own start/end so log trails match the scalar path.
	if lanes[0].traceID != "" {
		ctx = traceid.With(ctx, lanes[0].traceID)
	}
	for i, f := range lanes {
		if s.metrics != nil {
			s.metrics.observeQueueWait(waits[i].Seconds())
		}
		s.logger.Info("job start",
			"trace_id", f.traceID, "hash", f.hash,
			"task", f.spec.Task, "graph_n", f.spec.Graph.N,
			"queue_wait_ns", waits[i].Nanoseconds(), "waiters", waiters[i],
			"vector_lanes", len(lanes))
	}
	start := time.Now()
	_, err := awakemis.Run(ctx, template,
		awakemis.WithWorkers(s.perRun), awakemis.WithVectorizedTrials(trials, out))
	runNS := time.Since(start).Nanoseconds()

	datas := make([][]byte, len(lanes))
	for i := range lanes {
		if err != nil {
			break
		}
		datas[i], err = json.Marshal(out[i])
	}
	status, errText := "done", ""
	if err != nil {
		status, errText = "failed", err.Error()
	}
	for _, f := range lanes {
		s.logger.Info("job end",
			"trace_id", f.traceID, "hash", f.hash, "status", status,
			"run_ns", runNS, "peer", "", "error", errText)
	}

	s.mu.Lock()
	cancel() // release the merged context; also settles liveLanes stragglers
	for i, f := range lanes {
		rounds, simNS := f.tracker.totals()
		s.stats.RoundsSimulated += rounds
		s.simNS += simNS
		jobRounds, jobSimNS := f.tracker.progressTotals()
		for _, j := range f.jobs {
			j.rounds, j.simNS = jobRounds, jobSimNS
			j.vectorized = true
		}
		if s.inflight[f.hash] == f {
			delete(s.inflight, f.hash)
		}
		for _, j := range f.jobs {
			if j.Status.terminal() {
				continue // canceled waiters keep their cancellation
			}
			if err != nil {
				j.Status = JobFailed
				j.Error = err.Error()
				s.stats.JobsFailed++
			} else {
				j.Status = JobDone
				j.Report = datas[i]
				s.stats.JobsCompleted++
			}
			s.finishLocked(j)
		}
		if err == nil {
			s.cache.putMem(f.hash, datas[i])
		}
	}
	if err == nil && s.cache.hasDisk() {
		// Persist outside the lock, like the scalar path.
		s.mu.Unlock()
		var perr bool
		for i, f := range lanes {
			if s.cache.putDisk(f.hash, datas[i]) != nil {
				perr = true
			}
		}
		s.mu.Lock()
		if perr {
			s.stats.StoreErrors++
		}
	}
}

// finishLocked records a job reaching a terminal state and enforces
// the finished-job history cap. Callers hold s.mu.
func (s *Server) finishLocked(j *job) {
	j.flight = nil
	close(j.done)
	s.doneOrder = append(s.doneOrder, j.ID)
	for len(s.doneOrder) > s.cfg.JobHistory {
		delete(s.jobs, s.doneOrder[0])
		s.doneOrder = s.doneOrder[1:]
	}
}
