package service

import (
	"time"
)

// CellState is one study cell's lifecycle state on the wire. It is
// derived from the cell's trial sub-jobs, so it moves exactly as far
// as they do: queued → running → done, with "cached" marking a cell
// every one of whose trials was served from the report cache without
// an engine run (a cell that mixes cached and executed trials reports
// "done" with a nonzero Cached count).
type CellState string

const (
	CellQueued   CellState = "queued"
	CellRunning  CellState = "running"
	CellDone     CellState = "done"
	CellCached   CellState = "cached"
	CellFailed   CellState = "failed"
	CellCanceled CellState = "canceled"
)

// StudyCellProgress is the live view of one aggregation cell: its
// identity (mirroring awakemis.StudyCell) plus how far its trials
// have gotten.
type StudyCellProgress struct {
	Index  int    `json:"index"`
	Task   string `json:"task"`
	Family string `json:"family"`
	N      int    `json:"n"`
	Engine string `json:"engine"`
	// State summarizes the cell's trials; Done of Trials sub-runs have
	// produced a report, Cached of them straight from the cache.
	State  CellState `json:"state"`
	Done   int       `json:"done"`
	Trials int       `json:"trials"`
	Cached int       `json:"cached,omitempty"`
}

// StudyProgress is the live view of a running study, attached to the
// wire Study on GET /v1/studies/{id} and the SSE event stream. The
// per-cell states and every counter are monotone while the study
// runs, and the terminal view is frozen at completion — a finished
// study keeps reporting which cells were served from cache and how
// many rounds its grid actually executed. Best-effort observability
// data; it never feeds into the StudyResult artifact.
type StudyProgress struct {
	// Cells is the per-cell ticker, in grid enumeration order.
	Cells []StudyCellProgress `json:"cells"`
	// Aggregate cell counts by state (cached cells are not double
	// counted under done).
	CellsQueued   int `json:"cells_queued"`
	CellsRunning  int `json:"cells_running"`
	CellsDone     int `json:"cells_done"`
	CellsCached   int `json:"cells_cached"`
	CellsFailed   int `json:"cells_failed,omitempty"`
	CellsCanceled int `json:"cells_canceled,omitempty"`
	// RunsDone counts sub-runs that produced a report (the live
	// counterpart of the study's Done field, which advances in spec
	// order); RunsCached counts the ones served from cache.
	RunsDone   int `json:"runs_done"`
	RunsCached int `json:"runs_cached,omitempty"`
	// ExecutedRounds totals rounds executed by the study's sub-runs so
	// far (live trackers plus finished jobs); EngineSeconds totals the
	// engine time they took (zero through a cluster front, where the
	// worker daemons own the engine clocks). LanesVectorized counts
	// sub-runs executed as lanes of a merged vectorized cell pass.
	ExecutedRounds  int64   `json:"executed_rounds"`
	EngineSeconds   float64 `json:"engine_seconds"`
	LanesVectorized int     `json:"lanes_vectorized,omitempty"`
	// ElapsedMS is wall time since submission; ETAMS extrapolates the
	// remaining wall time from the completion rate so far (omitted
	// until the first sub-run finishes, zero once terminal).
	ElapsedMS float64 `json:"elapsed_ms"`
	ETAMS     float64 `json:"eta_ms,omitempty"`
}

// studyProgressLocked assembles the study's live progress view from
// its sub-jobs. Callers hold s.mu; the terminal view is frozen by
// finishStudyLocked, after which st.final is returned as-is (the
// sub-job references are released there).
func (s *Server) studyProgressLocked(st *studyRun) *StudyProgress {
	if st.final != nil {
		return st.final
	}
	trials := max(1, st.Spec.Trials)
	p := &StudyProgress{Cells: make([]StudyCellProgress, len(st.cells))}
	for i, c := range st.cells {
		cp := StudyCellProgress{
			Index: c.Index, Task: c.Task, Family: c.Family,
			N: c.N, Engine: string(c.Engine), Trials: trials,
		}
		var failed, canceled, running int
		lo := min(i*trials, len(st.jobs))
		hi := min(lo+trials, len(st.jobs))
		for _, j := range st.jobs[lo:hi] {
			switch j.Status {
			case JobDone:
				cp.Done++
				if j.Cached {
					cp.Cached++
				}
			case JobFailed:
				failed++
			case JobCanceled:
				canceled++
			case JobRunning:
				running++
			}
			if j.vectorized {
				p.LanesVectorized++
			}
			// Executed-round / engine-time attribution: finished jobs carry
			// their stamped totals, live ones are read off their flight's
			// tracker (shared with the engine goroutine; totals stamped at
			// finish come from the same tracker, so the sum is monotone).
			rounds, simNS := j.rounds, j.simNS
			if !j.Status.terminal() && j.flight != nil && j.flight.tracker != nil {
				rounds, simNS = j.flight.tracker.progressTotals()
			}
			p.ExecutedRounds += rounds
			p.EngineSeconds += float64(simNS) / 1e9
		}
		switch {
		case failed > 0:
			cp.State = CellFailed
			p.CellsFailed++
		case canceled > 0:
			cp.State = CellCanceled
			p.CellsCanceled++
		case cp.Done == trials && cp.Cached == trials:
			cp.State = CellCached
			p.CellsCached++
		case cp.Done == trials:
			cp.State = CellDone
			p.CellsDone++
		case running > 0:
			cp.State = CellRunning
			p.CellsRunning++
		default:
			cp.State = CellQueued
			p.CellsQueued++
		}
		p.RunsDone += cp.Done
		p.RunsCached += cp.Cached
		p.Cells[i] = cp
	}
	p.ElapsedMS = float64(time.Since(st.started)) / float64(time.Millisecond)
	// Rate extrapolation: sub-runs completed so far set the pace for
	// the remainder. (Cells finish roughly geometrically under the
	// cache/vectorization mix, so this decays toward the truth as the
	// grid drains — good enough for a ticker, never for results.)
	if remaining := st.Total - p.RunsDone; p.RunsDone > 0 && remaining > 0 {
		p.ETAMS = p.ElapsedMS * float64(remaining) / float64(p.RunsDone)
	}
	return p
}

// finalizeStudyProgressLocked freezes the study's terminal progress
// view. Cells whose sub-jobs never reached a terminal report — the
// submission phase hadn't gotten to them, or their runs were canceled
// with the study — are folded into "canceled" so the frozen view
// accounts for every cell. Callers hold s.mu.
func (s *Server) finalizeStudyProgressLocked(st *studyRun) {
	p := s.studyProgressLocked(st)
	if st.final != nil {
		return
	}
	for i := range p.Cells {
		switch p.Cells[i].State {
		case CellQueued, CellRunning:
			p.Cells[i].State = CellCanceled
			p.CellsCanceled++
		}
	}
	p.CellsQueued, p.CellsRunning = 0, 0
	p.ETAMS = 0
	st.final = p
	if s.studyCells == nil {
		s.studyCells = map[string]int64{}
	}
	for _, c := range p.Cells {
		s.studyCells[string(c.State)]++
	}
}
