package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"time"
)

// eventPollInterval paces the SSE change detector between completion
// signals: snapshots are cheap (one lock, one small marshal), and the
// job's done channel delivers the terminal transition immediately
// regardless.
const eventPollInterval = 120 * time.Millisecond

// handleJobEvents is GET /v1/jobs/{id}/events: a Server-Sent Events
// stream of the job's wire view. One `data:` frame is sent
// immediately, another whenever the view changes (progress updates,
// status transitions), and a final one at the terminal state, after
// which the stream closes. Clients (client.WaitJob, curl -N, EventSource)
// follow a run live instead of polling.
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	j, ok := s.jobs[id]
	var done chan struct{}
	if ok {
		done = j.done
	}
	s.mu.Unlock()
	if !ok {
		writeError(w, fmt.Errorf("%w: no job %s", ErrNotFound, id))
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, fmt.Errorf("streaming unsupported by connection"))
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	var last []byte
	// send emits a frame when the job view changed; false means the job
	// was forgotten (history cap) and the stream should end.
	send := func() bool {
		job, ok := s.Lookup(id)
		if !ok {
			return false
		}
		data, err := json.Marshal(job)
		if err != nil {
			return false
		}
		if bytes.Equal(data, last) {
			return true
		}
		last = data
		fmt.Fprintf(w, "data: %s\n\n", data)
		fl.Flush()
		return true
	}
	if !send() {
		return
	}

	ticker := time.NewTicker(eventPollInterval)
	defer ticker.Stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case <-done:
			send() // the terminal frame
			return
		case <-ticker.C:
			if !send() {
				return
			}
		}
	}
}
