package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"time"
)

// eventPollInterval paces the SSE change detector between completion
// signals: snapshots are cheap (one lock, one small marshal), and the
// job's done channel delivers the terminal transition immediately
// regardless.
const eventPollInterval = 120 * time.Millisecond

// streamEvents is the SSE core shared by the job and study event
// endpoints: one `data:` frame immediately, another whenever the
// JSON-marshaled view changes (byte-equal frames are deduplicated),
// and a final one when done closes, after which the stream ends.
//
// Subscriber lifecycle: the handler goroutine IS the subscription —
// there is no registry to leak. A client disconnect cancels
// r.Context(), the select falls out, and everything the stream held
// (ticker, last-frame buffer) dies with the handler; the run itself
// is untouched (watching is not waiting — the last-waiter cancel rule
// only counts submitters).
func streamEvents(w http.ResponseWriter, r *http.Request, done <-chan struct{}, view func() (any, bool)) {
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, fmt.Errorf("streaming unsupported by connection"))
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	var last []byte
	// send emits a frame when the view changed; false means the record
	// was forgotten (history cap) and the stream should end.
	send := func() bool {
		v, ok := view()
		if !ok {
			return false
		}
		data, err := json.Marshal(v)
		if err != nil {
			return false
		}
		if bytes.Equal(data, last) {
			return true
		}
		last = data
		fmt.Fprintf(w, "data: %s\n\n", data)
		fl.Flush()
		return true
	}
	if !send() {
		return
	}

	ticker := time.NewTicker(eventPollInterval)
	defer ticker.Stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case <-done:
			send() // the terminal frame
			return
		case <-ticker.C:
			if !send() {
				return
			}
		}
	}
}

// handleJobEvents is GET /v1/jobs/{id}/events: a Server-Sent Events
// stream of the job's wire view. One `data:` frame is sent
// immediately, another whenever the view changes (progress updates,
// status transitions), and a final one at the terminal state, after
// which the stream closes. Clients (client.WaitJob, curl -N, EventSource)
// follow a run live instead of polling.
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	j, ok := s.jobs[id]
	var done chan struct{}
	if ok {
		done = j.done
	}
	s.mu.Unlock()
	if !ok {
		writeError(w, fmt.Errorf("%w: no job %s", ErrNotFound, id))
		return
	}
	streamEvents(w, r, done, func() (any, bool) {
		job, ok := s.Lookup(id)
		return job, ok
	})
}

// handleStudyEvents is GET /v1/studies/{id}/events: the study
// counterpart of handleJobEvents. Frames carry the study's wire view
// with live per-cell progress; the terminal frame additionally
// carries the StudyResult artifact (and, for a fully cache-served
// study, every cell marked "cached" — the stream proves no engine
// ran).
func (s *Server) handleStudyEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	st, ok := s.studies[id]
	var done chan struct{}
	if ok {
		done = st.done
	}
	s.mu.Unlock()
	if !ok {
		writeError(w, fmt.Errorf("%w: no study %s", ErrNotFound, id))
		return
	}
	streamEvents(w, r, done, func() (any, bool) {
		study, ok := s.LookupStudy(id)
		return study, ok
	})
}
