// Tests of the Prometheus text endpoint: exposition format, counter
// values tracking StatsSnapshot, and per-route latency histograms
// recorded by the instrumentation middleware.
package service_test

import (
	"context"
	"io"
	"net/http"
	"strings"
	"testing"

	"awakemis/internal/service"
)

func scrapeMetrics(t *testing.T, baseURL string) (string, string) {
	t.Helper()
	resp, err := http.Get(baseURL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: %d", resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body), resp.Header.Get("Content-Type")
}

func TestMetricsEndpoint(t *testing.T) {
	_, c := newTestServer(t, service.Config{Metrics: true})
	ctx := context.Background()

	if _, err := c.Run(ctx, targetSpec()); err != nil {
		t.Fatal(err)
	}

	body, contentType := scrapeMetrics(t, c.BaseURL())
	if !strings.HasPrefix(contentType, "text/plain; version=0.0.4") {
		t.Errorf("Content-Type = %q, want Prometheus text exposition", contentType)
	}

	for _, line := range []string{
		"awakemisd_engine_runs_total 1",
		"awakemisd_jobs_submitted_total 1",
		"awakemisd_jobs_completed_total 1",
		"awakemisd_queue_depth 0",
		"awakemisd_draining 0",
	} {
		if !strings.Contains(body, line+"\n") {
			t.Errorf("metrics missing %q", line)
		}
	}
	// The POST that submitted the job was itself instrumented.
	if !strings.Contains(body, `awakemisd_http_request_duration_seconds_count{route="POST /v1/jobs"} 1`) {
		t.Errorf("metrics missing the POST /v1/jobs latency count:\n%.2000s", body)
	}
	if !strings.Contains(body, `awakemisd_http_request_duration_seconds_bucket{route="POST /v1/jobs",le="+Inf"} 1`) {
		t.Error("metrics missing the +Inf histogram bucket")
	}
	if !strings.Contains(body, "# TYPE awakemisd_http_request_duration_seconds histogram") {
		t.Error("metrics missing the histogram TYPE header")
	}
}

func TestMetricsDisabledByDefault(t *testing.T) {
	_, c := newTestServer(t, service.Config{})
	resp, err := http.Get(c.BaseURL() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("GET /metrics without Config.Metrics = %d, want 404", resp.StatusCode)
	}
}
