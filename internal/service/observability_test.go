// Observability-plane tests: live per-cell study progress over both
// polling and the SSE stream (counters monotone, cache-served cells
// reported as "cached"), subscriber lifecycle (a disconnected SSE
// client leaks no goroutine), the fleet-wide /v1/cluster/stats
// aggregate, and the embedded dashboard.
package service_test

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"awakemis"
	"awakemis/client"
	"awakemis/internal/service"
)

// slowStudy is a grid of deliberately slow cells (naive-greedy on a
// cycle is O(n) awake rounds), so live progress frames are observable
// even on a fast box: 2 cells x 2 trials = 4 sub-runs.
func slowStudy() awakemis.StudySpec {
	return awakemis.StudySpec{
		Name:     "slow",
		Tasks:    []string{"naive-greedy"},
		Families: []awakemis.GraphSpec{{Family: "cycle"}},
		Sizes:    []int{1500, 2500},
		Trials:   2,
		Seed:     9,
		Options:  awakemis.Options{Strict: true},
	}
}

// checkMonotone fails the test if the observed sequence ever
// decreases.
func checkMonotone(t *testing.T, label string, seq []int64) {
	t.Helper()
	for i := 1; i < len(seq); i++ {
		if seq[i] < seq[i-1] {
			t.Errorf("%s regressed at observation %d: %v", label, i, seq)
			return
		}
	}
}

// TestStudyProgressLiveMonotone follows one slow study two ways at
// once — client.WaitStudy (the SSE path) and direct polling of GET
// /v1/studies/{id} — asserting on both feeds that the progress block
// is attached, every aggregate counter and per-cell trial count moves
// monotonically, and the terminal view is frozen complete.
func TestStudyProgressLiveMonotone(t *testing.T) {
	srv, c := newTestServer(t, service.Config{Workers: 1, Metrics: true})
	ctx := context.Background()

	study, err := c.SubmitStudy(ctx, slowStudy())
	if err != nil {
		t.Fatal(err)
	}
	id := study.ID

	// Polling observer, concurrent with the SSE wait below.
	pollDone := make(chan []int64)
	go func() {
		var runs []int64
		for {
			st, err := c.Study(ctx, id)
			if err != nil {
				break
			}
			if st.Progress != nil {
				runs = append(runs, int64(st.Progress.RunsDone))
			}
			if st.Status.Terminal() {
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
		pollDone <- runs
	}()

	var mu sync.Mutex
	var runsSeen, roundsSeen []int64
	cellDone := map[int]int{}
	sawRunning := false
	final, err := c.WaitStudy(ctx, id, func(s *client.Study) {
		mu.Lock()
		defer mu.Unlock()
		if s.Progress == nil {
			t.Error("frame without a progress block")
			return
		}
		p := s.Progress
		runsSeen = append(runsSeen, int64(p.RunsDone))
		roundsSeen = append(roundsSeen, p.ExecutedRounds)
		if p.CellsRunning > 0 {
			sawRunning = true
		}
		if got := p.CellsQueued + p.CellsRunning + p.CellsDone + p.CellsCached +
			p.CellsFailed + p.CellsCanceled; got != len(p.Cells) {
			t.Errorf("cell state counts sum to %d, want %d", got, len(p.Cells))
		}
		for _, cell := range p.Cells {
			if cell.Done < cellDone[cell.Index] {
				t.Errorf("cell %d trials regressed %d -> %d", cell.Index, cellDone[cell.Index], cell.Done)
			}
			cellDone[cell.Index] = cell.Done
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if final.Status != client.JobDone {
		t.Fatalf("study ended %s: %s", final.Status, final.Error)
	}
	checkMonotone(t, "SSE runs_done", runsSeen)
	checkMonotone(t, "SSE executed_rounds", roundsSeen)
	checkMonotone(t, "polled runs_done", <-pollDone)
	if !sawRunning {
		t.Error("never observed a running cell over a multi-second study")
	}

	// Terminal view: frozen, complete, and still served after the
	// sub-job references were released.
	p := final.Progress
	if p == nil {
		t.Fatal("terminal study carries no progress")
	}
	if p.CellsDone != 2 || p.RunsDone != 4 {
		t.Errorf("terminal cells_done/runs_done = %d/%d, want 2/4", p.CellsDone, p.RunsDone)
	}
	if p.CellsQueued != 0 || p.CellsRunning != 0 || p.ETAMS != 0 {
		t.Errorf("terminal view not frozen: %+v", p)
	}
	if p.ExecutedRounds <= 0 || p.EngineSeconds <= 0 {
		t.Errorf("terminal executed_rounds/engine_seconds = %d/%v, want > 0", p.ExecutedRounds, p.EngineSeconds)
	}
	if st := srv.StatsSnapshot(); st.StudyCells["done"] != 2 {
		t.Errorf("stats study_cells = %v, want done:2", st.StudyCells)
	}

	// The new Prometheus series tick with the study's terminal tally.
	resp, err := http.Get(c.BaseURL() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), `awakemisd_study_cells_total{state="done"} 2`) {
		t.Error("metrics output lacks the study_cells done series")
	}
}

// TestCachedStudyStreamsCachedCells is the re-submission acceptance
// criterion: after a study completes once, submitting it again costs
// zero engine runs, and its SSE stream's terminal frame reports every
// cell "cached" (not "done" with untracked provenance) with the
// artifact attached.
func TestCachedStudyStreamsCachedCells(t *testing.T) {
	_, c := newTestServer(t, service.Config{Workers: 2})
	ctx := context.Background()

	spec := awakemis.StudySpec{
		Name:    "warm",
		Tasks:   []string{"luby"},
		Sizes:   []int{32, 64},
		Trials:  2,
		Seed:    5,
		Options: awakemis.Options{Strict: true},
	}
	first, err := c.SubmitStudy(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	firstDone, err := c.WaitStudy(ctx, first.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	if firstDone.Status != client.JobDone {
		t.Fatalf("first study ended %s: %s", firstDone.Status, firstDone.Error)
	}
	if p := firstDone.Progress; p == nil || p.CellsDone != 2 || p.CellsCached != 0 {
		t.Errorf("cold study progress = %+v, want 2 done, 0 cached", p)
	}
	st, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	engineRuns := st.EngineRuns

	// Re-submission: consume the raw SSE stream to its terminal frame.
	again, err := c.SubmitStudy(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(c.BaseURL() + "/v1/studies/" + again.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}
	var terminal *client.Study
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64<<10), 16<<20)
	for sc.Scan() {
		data, ok := strings.CutPrefix(sc.Text(), "data: ")
		if !ok {
			continue
		}
		var s client.Study
		if err := json.Unmarshal([]byte(data), &s); err != nil {
			t.Fatalf("frame is not a Study: %v\n%s", err, data)
		}
		if s.Status.Terminal() {
			terminal = &s
			break
		}
	}
	if terminal == nil {
		t.Fatal("stream ended without a terminal frame")
	}
	if terminal.Status != client.JobDone || len(terminal.Result) == 0 {
		t.Fatalf("terminal frame = %s with %d result bytes", terminal.Status, len(terminal.Result))
	}
	p := terminal.Progress
	if p == nil {
		t.Fatal("terminal frame carries no progress")
	}
	if p.CellsCached != len(p.Cells) || len(p.Cells) != 2 {
		t.Errorf("cells_cached = %d of %d cells, want all 2", p.CellsCached, len(p.Cells))
	}
	for _, cell := range p.Cells {
		if cell.State != "cached" {
			t.Errorf("cell %d state %q, want cached", cell.Index, cell.State)
		}
		if cell.Cached != cell.Trials {
			t.Errorf("cell %d cached %d of %d trials", cell.Index, cell.Cached, cell.Trials)
		}
	}
	if p.RunsCached != terminal.Total {
		t.Errorf("runs_cached = %d, want %d", p.RunsCached, terminal.Total)
	}
	if p.ExecutedRounds != 0 {
		t.Errorf("cached study executed %d rounds", p.ExecutedRounds)
	}

	// Zero new engine runs: the stream proves it, the counter confirms.
	st, err = c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.EngineRuns != engineRuns {
		t.Errorf("re-submission ran %d new simulations", st.EngineRuns-engineRuns)
	}
	if st.StudyCells["cached"] != 2 || st.StudyCells["done"] != 2 {
		t.Errorf("study_cells = %v, want cached:2 done:2", st.StudyCells)
	}

	// The studies index lists both, newest first, progress attached but
	// results stripped.
	list, err := c.Studies(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 2 || list[0].ID != again.ID || list[1].ID != first.ID {
		t.Fatalf("studies list = %+v", list)
	}
	for _, s := range list {
		if len(s.Result) != 0 {
			t.Errorf("listed study %s carries %d result bytes", s.ID, len(s.Result))
		}
		if s.Progress == nil {
			t.Errorf("listed study %s carries no progress", s.ID)
		}
	}
}

// TestStudyEventsUnknownStudy: the study events endpoint 404s like the
// study GET.
func TestStudyEventsUnknownStudy(t *testing.T) {
	_, c := newTestServer(t, service.Config{})
	resp, err := http.Get(c.BaseURL() + "/v1/studies/s-999999/events")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("status %d, want 404", resp.StatusCode)
	}
}

// TestSSEDisconnectLeaksNoGoroutines pins the subscriber lifecycle: a
// client that disconnects mid-stream (context cancel) unregisters
// cleanly — the handler goroutine and everything it held die — and
// the watched run itself is unaffected. Mirrors the engine's
// TestAbortedRunsLeakNoGoroutines.
func TestSSEDisconnectLeaksNoGoroutines(t *testing.T) {
	_, c := newTestServer(t, service.Config{Workers: 1})
	ctx := context.Background()

	// The blocker occupies the single worker, so both the job and the
	// study stay live for as long as the streams care to watch.
	blocker, err := c.Submit(ctx, blockerSpec(2500))
	if err != nil {
		t.Fatal(err)
	}
	study, err := c.SubmitStudy(ctx, awakemis.StudySpec{
		Name: "watched", Tasks: []string{"luby"}, Sizes: []int{32}, Trials: 2, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}

	openAndDrop := func(path string) {
		t.Helper()
		sctx, cancel := context.WithCancel(ctx)
		defer cancel()
		req, err := http.NewRequestWithContext(sctx, http.MethodGet, c.BaseURL()+path, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		// Read the initial frame so the handler is provably mid-stream,
		// then hang up.
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 64<<10), 16<<20)
		for sc.Scan() {
			if strings.HasPrefix(sc.Text(), "data: ") {
				return
			}
		}
		t.Fatalf("no frame from %s", path)
	}

	baseline := runtime.NumGoroutine()
	for range 4 {
		openAndDrop("/v1/jobs/" + blocker.ID + "/events")
		openAndDrop("/v1/studies/" + study.ID + "/events")
	}

	// Handler goroutines unwind asynchronously after the disconnect.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if now := runtime.NumGoroutine(); now <= baseline+2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines: baseline %d, now %d — SSE handlers leaked", baseline, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}

	// The watched records never noticed: the study still cancels (or,
	// if the blocker already drained, already finished — a 409).
	if _, err := c.CancelStudy(ctx, study.ID); err != nil {
		var apiErr *client.APIError
		if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusConflict {
			t.Fatal(err)
		}
	}
	final, err := c.Wait(ctx, blocker.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.Status != client.JobDone {
		t.Errorf("blocker ended %s after stream churn", final.Status)
	}
}

// TestClusterStatsAggregation: the front serves /v1/cluster/stats —
// every peer's counters fetched live plus a merged fleet total that
// equals self + sum(peers) — while worker daemons (no -peers) 404 the
// endpoint.
func TestClusterStatsAggregation(t *testing.T) {
	ctx := context.Background()
	w1 := startDaemon(t, service.Config{}, nil)
	defer w1.stop(t)
	w2 := startDaemon(t, service.Config{}, nil)
	defer w2.stop(t)
	front := startDaemon(t, service.Config{Metrics: true}, []string{w1.ts.URL, w2.ts.URL})
	defer front.stop(t)

	runStudyJSON(t, front.c, clusterStudy())

	cs, err := front.c.ClusterStats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if cs.PeersTotal != 2 || cs.PeersUp != 2 || len(cs.Peers) != 2 {
		t.Fatalf("peers up/total = %d/%d (%d rows)", cs.PeersUp, cs.PeersTotal, len(cs.Peers))
	}
	var peerRuns, peerRounds int64
	for _, p := range cs.Peers {
		if !p.Up || p.Stats == nil || p.Error != "" {
			t.Fatalf("peer row %+v, want up with stats", p)
		}
		peerRuns += p.Stats.EngineRuns
		peerRounds += p.Stats.RoundsSimulated
	}
	if peerRuns <= 0 {
		t.Error("no engine runs on any worker after a forwarded study")
	}
	if got, want := cs.Total.EngineRuns, cs.Self.EngineRuns+peerRuns; got != want {
		t.Errorf("total engine_runs = %d, want self %d + peers %d", got, cs.Self.EngineRuns, peerRuns)
	}
	if got, want := cs.Total.RoundsSimulated, cs.Self.RoundsSimulated+peerRounds; got != want {
		t.Errorf("total rounds_simulated = %d, want %d", got, want)
	}
	if cs.Total.JobsCompleted != cs.Self.JobsCompleted+cs.Peers[0].Stats.JobsCompleted+cs.Peers[1].Stats.JobsCompleted {
		t.Error("total jobs_completed is not the fleet sum")
	}
	// The front ran the study, so the fleet total carries its cell tally.
	if cs.Total.StudyCells["done"] != int64(len(clusterStudy().Cells())) {
		t.Errorf("total study_cells = %v", cs.Total.StudyCells)
	}

	// Workers are not fronts: 404, same shape as any unknown resource.
	var apiErr *client.APIError
	if _, err := w1.c.ClusterStats(ctx); !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusNotFound {
		t.Errorf("worker cluster stats error = %v, want 404", err)
	}

	// The front's metrics carry the cluster gauge.
	resp, err := http.Get(front.ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "awakemisd_cluster_peers_up 2") {
		t.Error("front metrics lack awakemisd_cluster_peers_up 2")
	}
}

// TestDashboardServed: the embedded dashboard is one self-contained
// HTML page wired to the public API endpoints.
func TestDashboardServed(t *testing.T) {
	_, c := newTestServer(t, service.Config{})
	resp, err := http.Get(c.BaseURL() + "/v1/dashboard")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/html") {
		t.Errorf("content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	page := string(body)
	for _, want := range []string{"awakemisd", "/v1/stats", "/v1/studies", "/v1/cluster/stats", "EventSource"} {
		if !strings.Contains(page, want) {
			t.Errorf("dashboard page lacks %q", want)
		}
	}
	if strings.Contains(page, "<script src=") || strings.Contains(page, "<link") {
		t.Error("dashboard references external assets")
	}
}
