package service

import (
	_ "embed"
	"net/http"
)

// The dashboard is a single self-contained HTML page embedded in the
// binary — no external assets, no build step, usable the moment a
// daemon is up. It consumes only the public API (/v1/stats,
// /v1/studies, /v1/cluster/stats, and the per-study SSE streams), so
// it shows exactly what any other client could see.
//
//go:embed dashboard.html
var dashboardHTML []byte

// handleDashboard is GET /v1/dashboard.
func (s *Server) handleDashboard(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	w.Write(dashboardHTML)
}
