package service

import (
	"fmt"
	"testing"
)

func val(size int) []byte {
	v := make([]byte, size)
	for i := range v {
		v[i] = byte(i)
	}
	return v
}

func TestCacheEvictionRespectsByteBudget(t *testing.T) {
	c := newReportCache(100)
	for i := range 10 {
		c.put(fmt.Sprintf("h%d", i), val(30))
		if c.bytes > 100 {
			t.Fatalf("after insert %d: %d bytes exceeds the 100-byte budget", i, c.bytes)
		}
	}
	// 10 × 30 bytes through a 100-byte budget: only the 3 newest fit.
	if c.len() != 3 {
		t.Errorf("entries = %d, want 3", c.len())
	}
	if c.bytes != 90 {
		t.Errorf("bytes = %d, want 90", c.bytes)
	}
	if c.evicted != 7 {
		t.Errorf("evicted = %d, want 7", c.evicted)
	}
	for i := range 7 {
		if _, ok := c.get(fmt.Sprintf("h%d", i)); ok {
			t.Errorf("h%d should have been evicted", i)
		}
	}
	for i := 7; i < 10; i++ {
		if _, ok := c.get(fmt.Sprintf("h%d", i)); !ok {
			t.Errorf("h%d should have survived", i)
		}
	}
}

func TestCacheLRUOrder(t *testing.T) {
	c := newReportCache(90)
	c.put("a", val(30))
	c.put("b", val(30))
	c.put("c", val(30))
	// Touch "a": it becomes most recently used, so inserting "d"
	// evicts "b" instead.
	if _, ok := c.get("a"); !ok {
		t.Fatal("a missing")
	}
	c.put("d", val(30))
	if _, ok := c.get("b"); ok {
		t.Error("b should have been evicted (least recently used)")
	}
	for _, h := range []string{"a", "c", "d"} {
		if _, ok := c.get(h); !ok {
			t.Errorf("%s should have survived", h)
		}
	}
}

func TestCacheRejectsOversizedValue(t *testing.T) {
	c := newReportCache(50)
	c.put("small", val(20))
	c.put("huge", val(51)) // bigger than the whole budget
	if _, ok := c.get("huge"); ok {
		t.Error("value larger than the budget should not be cached")
	}
	if _, ok := c.get("small"); !ok {
		t.Error("oversized insert must not evict existing entries")
	}
	if c.bytes != 20 {
		t.Errorf("bytes = %d, want 20", c.bytes)
	}
}

func TestCacheOverwriteSameKey(t *testing.T) {
	c := newReportCache(100)
	c.put("k", val(40))
	c.put("k", val(60))
	if c.len() != 1 {
		t.Fatalf("entries = %d, want 1", c.len())
	}
	if c.bytes != 60 {
		t.Errorf("bytes = %d, want 60", c.bytes)
	}
	got, ok := c.get("k")
	if !ok || len(got) != 60 {
		t.Errorf("get(k) = %d bytes, %v; want the 60-byte overwrite", len(got), ok)
	}
}
