package service

import (
	"container/list"

	"awakemis/internal/store"
)

// tieredCache layers the in-memory LRU over an optional persistent
// content-addressed store: hot entries are served from RAM, the disk
// tier survives restarts and grows past the memory budget. The two
// tiers are deliberately exposed separately — the Server consults
// memory under its mutex on every submission but checks disk only
// after the in-flight index (no file I/O for coalesced duplicates),
// and persists to disk outside the mutex (gzip + fsync must not
// stall submissions).
type tieredCache struct {
	mem  *reportCache
	disk *store.Store // nil means memory-only
}

func newTieredCache(memBudget int64, disk *store.Store) *tieredCache {
	return &tieredCache{mem: newReportCache(memBudget), disk: disk}
}

func (t *tieredCache) getMem(hash string) ([]byte, bool) { return t.mem.get(hash) }

// getDisk consults the persistent tier, promoting a hit into the
// in-memory LRU so repeats are served from RAM. The store verifies
// every record against its embedded checksum, so a promoted value is
// exactly the bytes the original run produced.
func (t *tieredCache) getDisk(hash string) ([]byte, bool) {
	if t.disk == nil {
		return nil, false
	}
	data, ok := t.disk.Get(hash)
	if ok {
		t.mem.put(hash, data)
	}
	return data, ok
}

func (t *tieredCache) putMem(hash string, value []byte) { t.mem.put(hash, value) }

func (t *tieredCache) putDisk(hash string, value []byte) error {
	if t.disk == nil {
		return nil
	}
	return t.disk.Put(hash, value)
}

func (t *tieredCache) hasDisk() bool { return t.disk != nil }

// reportCache is a byte-budgeted LRU of marshaled Reports keyed by
// canonical spec hash. Values are immutable wire bytes: a hit serves
// exactly the bytes the original run produced, so every caller of an
// equal spec sees a bit-identical Report. Not safe for concurrent use;
// the Server guards it with its mutex.
type reportCache struct {
	budget  int64 // max total value bytes (0 disables caching)
	bytes   int64 // current total value bytes
	entries map[string]*list.Element
	lru     *list.List // front = most recently used
	evicted int64      // lifetime eviction count
}

type cacheEntry struct {
	hash  string
	value []byte
}

func newReportCache(budget int64) *reportCache {
	return &reportCache{
		budget:  budget,
		entries: map[string]*list.Element{},
		lru:     list.New(),
	}
}

// get returns the cached bytes for hash and marks the entry most
// recently used.
func (c *reportCache) get(hash string) ([]byte, bool) {
	el, ok := c.entries[hash]
	if !ok {
		return nil, false
	}
	c.lru.MoveToFront(el)
	return el.Value.(*cacheEntry).value, true
}

// put inserts value under hash, evicting least-recently-used entries
// until the byte budget holds. A value larger than the whole budget
// is not cached at all (it would only evict everything for nothing).
func (c *reportCache) put(hash string, value []byte) {
	if int64(len(value)) > c.budget {
		return
	}
	if el, ok := c.entries[hash]; ok { // lost a race with an equal run
		c.bytes += int64(len(value)) - int64(len(el.Value.(*cacheEntry).value))
		el.Value.(*cacheEntry).value = value
		c.lru.MoveToFront(el)
	} else {
		c.entries[hash] = c.lru.PushFront(&cacheEntry{hash: hash, value: value})
		c.bytes += int64(len(value))
	}
	for c.bytes > c.budget {
		oldest := c.lru.Back()
		if oldest == nil {
			break
		}
		entry := oldest.Value.(*cacheEntry)
		c.lru.Remove(oldest)
		delete(c.entries, entry.hash)
		c.bytes -= int64(len(entry.value))
		c.evicted++
	}
}

// len reports the number of cached entries.
func (c *reportCache) len() int { return len(c.entries) }
