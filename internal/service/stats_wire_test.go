// Wire-compatibility audit for the Stats JSON shape: every field
// added for stores and clusters is omitempty, so a plain daemon's
// /v1/stats document is byte-for-byte the pre-cluster shape — scripts
// doing `jq .engine_runs` (and the CI smoke jobs) never see a change.
package service

import (
	"encoding/json"
	"sort"
	"testing"
)

// legacyStatsKeys is the frozen pre-store/pre-cluster key set. A
// zero-valued Stats must marshal to exactly these keys, no more.
var legacyStatsKeys = []string{
	"cache_budget_bytes",
	"cache_bytes",
	"cache_entries",
	"cache_evictions",
	"cache_hits",
	"cache_misses",
	"coalesced",
	"draining",
	"engine_runs",
	"inflight",
	"jobs_canceled",
	"jobs_completed",
	"jobs_failed",
	"jobs_submitted",
	"queue_depth",
	"studies_canceled",
	"studies_completed",
	"studies_failed",
	"studies_submitted",
}

func marshalKeys(t *testing.T, s Stats) []string {
	t.Helper()
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]json.RawMessage
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func TestStatsZeroValueKeepsLegacyShape(t *testing.T) {
	got := marshalKeys(t, Stats{})
	if len(got) != len(legacyStatsKeys) {
		t.Fatalf("zero Stats marshals %d keys, want the %d legacy keys:\ngot:  %v\nwant: %v",
			len(got), len(legacyStatsKeys), got, legacyStatsKeys)
	}
	for i, k := range legacyStatsKeys {
		if got[i] != k {
			t.Errorf("key[%d] = %q, want %q", i, got[i], k)
		}
	}
}

// TestStudyZeroValueKeepsLegacyShape freezes the Study wire shape:
// every observability field (progress, result, error) is omitempty,
// so a minimal study document keeps the pre-progress key set and
// canonical artifact hashes stay unchanged.
func TestStudyZeroValueKeepsLegacyShape(t *testing.T) {
	data, err := json.Marshal(Study{})
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]json.RawMessage
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	got := make([]string, 0, len(m))
	for k := range m {
		got = append(got, k)
	}
	sort.Strings(got)
	want := []string{"done", "id", "spec", "status", "total"}
	if len(got) != len(want) {
		t.Fatalf("zero Study marshals keys %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("key[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestStatsNewFieldsAppearWhenSet(t *testing.T) {
	s := Stats{
		StoreHits:      1,
		StoreMisses:    2,
		StoreEntries:   3,
		StoreBytes:     4,
		StoreBudget:    5,
		StoreEvictions: 6,
		StoreCorrupt:   7,
		StoreErrors:    8,
		Forwarded:      9,
		ForwardErrors:  10,
		PeerForwards:   map[string]int64{"http://w1": 9},
		PeersHealthy:   1,
		PeersTotal:     2,

		StudyCells: map[string]int64{"done": 4, "cached": 2},

		RoundsSimulated: 11,
		SimSeconds:      0.5,
		Version:         "v1.2.3",
		Revision:        "abc123",
		BuildTime:       "2026-01-01T00:00:00Z",
		GoVersion:       "go1.24",
	}
	want := map[string]bool{
		"store_hits": true, "store_misses": true, "store_entries": true,
		"store_bytes": true, "store_budget_bytes": true, "store_evictions": true,
		"store_corrupt": true, "store_errors": true,
		"forwarded": true, "forward_errors": true, "peer_forwards": true,
		"peers_healthy": true, "peers_total": true,
		"study_cells":      true,
		"rounds_simulated": true, "sim_seconds": true,
		"version": true, "revision": true, "build_time": true, "go_version": true,
	}
	got := marshalKeys(t, s)
	seen := map[string]bool{}
	for _, k := range got {
		seen[k] = true
	}
	for k := range want {
		if !seen[k] {
			t.Errorf("set field %q missing from marshal output %v", k, got)
		}
	}
	if len(got) != len(legacyStatsKeys)+len(want) {
		t.Errorf("full Stats marshals %d keys, want %d", len(got), len(legacyStatsKeys)+len(want))
	}
}
