package service

import (
	"math"
	"sync"
	"time"

	"awakemis"
)

// JobProgress is the live view of a running job's simulation,
// attached to the wire Job while its flight executes (GET
// /v1/jobs/{id} and the SSE event stream). All fields are
// best-effort observability data — they never feed back into results.
type JobProgress struct {
	// Rounds is the round horizon reached so far (last observed round
	// number + 1); Executed counts rounds actually executed (all-asleep
	// rounds are skipped by the engines).
	Rounds   int64 `json:"rounds"`
	Executed int64 `json:"executed"`
	// Awake is the awake-node count of the last observed round, and
	// AwakeFrac the same as a fraction of the graph size.
	Awake     int     `json:"awake"`
	AwakeFrac float64 `json:"awake_frac"`
	// ElapsedMS is wall time since the simulation started.
	ElapsedMS float64 `json:"elapsed_ms"`
	// ETAMS estimates the remaining wall time by geometric-decay
	// extrapolation of the awake count (the paper's algorithms put
	// nodes to sleep at roughly constant rate in log-scale). Omitted
	// until the awake count is decaying.
	ETAMS float64 `json:"eta_ms,omitempty"`
}

// progressTracker is the per-flight awakemis.RoundObserver behind live
// job progress: the engine goroutine feeds it one flat RoundStat per
// round, HTTP handlers snapshot it concurrently. It doubles as the
// engine-telemetry source for /v1/stats and /metrics (rounds
// simulated, sim-seconds).
type progressTracker struct {
	n     int // graph size, for AwakeFrac (0 = unknown)
	start time.Time

	mu     sync.Mutex
	cur    JobProgress
	peak   int   // peak awake count, for the ETA extrapolation
	simNS  int64 // summed per-round engine time
	remote bool  // cur was relayed from a worker daemon (front mode)
}

func newProgressTracker(n int) *progressTracker {
	return &progressTracker{n: n, start: time.Now()}
}

// ObserveRound implements awakemis.RoundObserver. O(1) per round.
func (t *progressTracker) ObserveRound(st awakemis.RoundStat) {
	t.mu.Lock()
	t.cur.Rounds = st.Round + 1
	t.cur.Executed++
	t.cur.Awake = st.Awake
	if t.n > 0 {
		t.cur.AwakeFrac = float64(st.Awake) / float64(t.n)
	}
	if st.Awake > t.peak {
		t.peak = st.Awake
	}
	t.simNS += st.ElapsedNS
	t.mu.Unlock()
}

// setRemote replaces the tracked state with a progress view relayed
// from the worker daemon actually running the simulation (front mode).
func (t *progressTracker) setRemote(p JobProgress) {
	t.mu.Lock()
	t.cur = p
	t.remote = true
	t.mu.Unlock()
}

// snapshot returns the current progress view, or nil before the first
// round (or relayed update) lands.
func (t *progressTracker) snapshot() *JobProgress {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.cur.Executed == 0 && !t.remote {
		return nil
	}
	p := t.cur
	if !t.remote {
		p.ElapsedMS = float64(time.Since(t.start)) / float64(time.Millisecond)
		// awake(t) ≈ peak·r^t for some decay r<1, so the remaining
		// rounds-to-one scale like log(awake)/log(peak/awake) of the
		// elapsed ones. Only meaningful once decay is underway.
		if t.peak > 0 && p.Awake > 1 && p.Awake < t.peak {
			p.ETAMS = p.ElapsedMS * math.Log(float64(p.Awake)) / math.Log(float64(t.peak)/float64(p.Awake))
		}
	}
	return &p
}

// totals returns the engine-level telemetry accumulated so far:
// executed rounds and summed per-round engine time. Zero in front mode
// (the worker daemon that ran the engine reports them instead).
func (t *progressTracker) totals() (rounds, simNS int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.remote {
		return 0, 0
	}
	return t.cur.Executed, t.simNS
}

// progressTotals is totals for study-progress attribution: unlike the
// server-stats totals it keeps counting through a front — the relayed
// remote rounds are exactly what a study submitter wants aggregated —
// while engine time stays local-only (the wall clock of a remote run
// is not engine time).
func (t *progressTracker) progressTotals() (rounds, simNS int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.remote {
		return t.cur.Executed, 0
	}
	return t.cur.Executed, t.simNS
}
