package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"time"

	"awakemis"
)

// Study is the wire view of one submitted study: a declarative
// parameter-sweep grid whose cells execute as ordinary jobs through
// the server's cache and singleflight — so a re-submitted study costs
// zero simulations — and whose Reports aggregate server-side into a
// StudyResult artifact.
type Study struct {
	ID     string             `json:"id"`
	Status JobStatus          `json:"status"`
	Spec   awakemis.StudySpec `json:"spec"`
	// Done of Total sub-runs have finished.
	Done  int `json:"done"`
	Total int `json:"total"`
	// Error is set when Status is "failed".
	Error string `json:"error,omitempty"`
	// Result holds the StudyResult artifact when Status is "done" —
	// byte-identical to a local `awakemis -study` run of the same
	// spec, because the daemon assembles it through the same public
	// accumulator.
	Result json.RawMessage `json:"result,omitempty"`
	// Progress is the live per-cell view of the grid (states, executed
	// rounds, ETA), attached once the executor starts and frozen at
	// the terminal state — so a finished study still reports which
	// cells the cache served.
	Progress *StudyProgress `json:"progress,omitempty"`
}

// studyRun is a Study plus the server-side execution state.
type studyRun struct {
	Study
	// traceID is the submitter's trace id; every sub-job inherits it,
	// so one grep finds the whole grid across the cluster.
	traceID string
	// jobs are the submitted sub-jobs in spec order (guarded by
	// Server.mu; grows during the submission phase).
	jobs []*job
	// cells is the resolved grid's cell list, fixed at submission:
	// sub-job i belongs to cells[i/Trials], the invariant the per-cell
	// progress derivation leans on.
	cells []awakemis.StudyCell
	// started anchors the progress clock (and the ETA extrapolation).
	started time.Time
	// final is the progress view frozen at the terminal transition
	// (the sub-job references are released there); nil while live.
	final *StudyProgress
	// done closes when the study reaches a terminal state — the
	// completion signal the SSE event stream selects on.
	done chan struct{}
	// ctx is canceled when the study is canceled, the server force
	// stops, or the executor exits; the submission loop's backpressure
	// wait selects on it.
	ctx    context.Context
	cancel context.CancelFunc
}

// backpressureRetry paces study submission when the job queue is
// full: rather than failing the whole grid, the executor waits for
// capacity and retries.
const backpressureRetry = 10 * time.Millisecond

// SubmitStudy validates and starts a study, returning its initial
// wire view. Expansion and execution happen asynchronously: poll
// LookupStudy (GET /v1/studies/{id}) until terminal. Errors wrap
// ErrInvalidSpec for malformed studies and ErrUnavailable while
// draining.
func (s *Server) SubmitStudy(ss awakemis.StudySpec) (Study, error) {
	return s.SubmitStudyTraced(ss, "")
}

// SubmitStudyTraced is SubmitStudy carrying the submitter's trace id:
// every sub-job of the grid records and runs under it.
func (s *Server) SubmitStudyTraced(ss awakemis.StudySpec, traceID string) (Study, error) {
	acc, err := ss.Accumulator()
	if err != nil {
		return Study{}, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return Study{}, fmt.Errorf("%w: server is draining", ErrUnavailable)
	}
	s.studySeq++
	ctx, cancel := context.WithCancel(s.baseCtx)
	st := &studyRun{
		Study: Study{
			ID:     fmt.Sprintf("s-%06d", s.studySeq),
			Status: JobQueued,
			Spec:   acc.Study(),
			Total:  acc.Total(),
		},
		traceID: traceID,
		cells:   acc.Study().Cells(),
		started: time.Now(),
		done:    make(chan struct{}),
		ctx:     ctx,
		cancel:  cancel,
	}
	s.studies[st.ID] = st
	s.stats.StudiesSubmitted++
	s.wg.Add(1) // Shutdown waits for study executors like workers
	go s.runStudy(st, acc)
	return st.Study, nil
}

// LookupStudy returns the study's current wire view, with the live
// (or, once terminal, frozen) per-cell progress attached.
func (s *Server) LookupStudy(id string) (Study, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.studies[id]
	if !ok {
		return Study{}, false
	}
	wire := st.Study
	wire.Progress = s.studyProgressLocked(st)
	return wire, true
}

// ListStudies returns every queryable study newest-first, Results
// stripped (an artifact can run to megabytes; fetch it by id). The
// dashboard's study panel reads this.
func (s *Server) ListStudies() []Study {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Study, 0, len(s.studies))
	for _, st := range s.studies {
		wire := st.Study
		wire.Result = nil
		wire.Progress = s.studyProgressLocked(st)
		out = append(out, wire)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID > out[j].ID })
	return out
}

// CancelStudy cancels a study: unfinished sub-jobs are canceled (a
// sub-run shared with another submitter keeps running for them — the
// usual last-waiter rule), submission stops, and no artifact is
// produced. Canceling a finished study returns ErrConflict.
func (s *Server) CancelStudy(id string) (Study, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.studies[id]
	if !ok {
		return Study{}, fmt.Errorf("%w: no study %s", ErrNotFound, id)
	}
	if st.Status.terminal() {
		return st.Study, fmt.Errorf("%w: study %s already %s", ErrConflict, id, st.Status)
	}
	st.Status = JobCanceled
	s.stats.StudiesCanceled++
	for _, j := range st.jobs {
		if !j.Status.terminal() {
			s.cancelLocked(j)
		}
	}
	s.finishStudyLocked(st)
	st.cancel()
	return st.Study, nil
}

// runStudy is the study executor: submit every expanded spec through
// the ordinary job path (cache hits and in-flight duplicates resolve
// instantly; new work queues behind the bounded queue with
// backpressure), wait for the sub-jobs in spec order, stream their
// Reports into the public accumulator, and publish the artifact.
func (s *Server) runStudy(st *studyRun, acc *awakemis.StudyAccumulator) {
	defer s.wg.Done()
	defer st.cancel()
	specs := acc.Specs()
	s.mu.Lock()
	if st.Status == JobQueued {
		st.Status = JobRunning
	}
	s.mu.Unlock()

	// Submission phase. Consecutive Trials specs form one cell whose
	// lanes share a graph; the fresh still-queued lanes of each cell are
	// tied into a vectorGroup so the first worker to reach any of them
	// executes the cell as one merged vectorized run. Cache hits,
	// coalesced duplicates, and forwarded (cluster-front) flights stay on
	// their usual paths.
	trials := st.Spec.Trials
	if trials < 1 {
		trials = 1
	}
	var cellNew []*flight
	for _, spec := range specs {
		canonical := Canonicalize(spec)
		hash, err := hashCanonical(canonical)
		if err != nil {
			s.failStudy(st, err)
			return
		}
		for {
			s.mu.Lock()
			if st.Status.terminal() {
				s.mu.Unlock()
				return // canceled while submitting; CancelStudy cleaned up
			}
			j, err := s.submitLocked(canonical, hash, st.traceID)
			if err == nil {
				st.jobs = append(st.jobs, j)
				// A lane is groupable only when this submission created its
				// flight (a coalesced or cached lane already has an owner)
				// and the spec is one the vectorized engine accepts.
				if s.fwd == nil && trials >= 2 &&
					canonical.Options.Engine == awakemis.EngineStepped &&
					canonical.Graph.Seed != 0 &&
					j.flight != nil && j.flight.state == JobQueued &&
					len(j.flight.jobs) == 1 && j.flight.jobs[0] == j {
					cellNew = append(cellNew, j.flight)
				}
				if len(st.jobs)%trials == 0 {
					s.groupCellLocked(cellNew)
					cellNew = cellNew[:0]
				}
			}
			draining := s.draining
			s.mu.Unlock()
			if err == nil {
				break
			}
			if !errors.Is(err, ErrUnavailable) || draining {
				s.failStudy(st, fmt.Errorf("submitting %s: %w", spec.Name, err))
				return
			}
			// Queue full: wait for capacity, then retry.
			select {
			case <-st.ctx.Done():
				s.failStudy(st, fmt.Errorf("submitting %s: %w", spec.Name, st.ctx.Err()))
				return
			case <-time.After(backpressureRetry):
			}
		}
	}

	// Aggregation phase: wait in spec order (completion order doesn't
	// matter — the accumulator is order-independent by construction).
	for i := range specs {
		s.mu.Lock()
		if st.Status.terminal() { // canceled: st.jobs already released
			s.mu.Unlock()
			return
		}
		j := st.jobs[i]
		s.mu.Unlock()
		<-j.done
		s.mu.Lock()
		jj := j.Job
		if !st.Status.terminal() {
			st.Done++
		}
		canceled := st.Status.terminal()
		s.mu.Unlock()
		if canceled {
			return
		}
		if jj.Status != JobDone {
			s.failStudy(st, fmt.Errorf("sub-run %s (%s) ended %s: %s", jj.ID, specs[i].Name, jj.Status, jj.Error))
			return
		}
		var rep awakemis.Report
		if err := json.Unmarshal(jj.Report, &rep); err != nil {
			s.failStudy(st, fmt.Errorf("decoding report of sub-run %s: %w", jj.ID, err))
			return
		}
		if err := acc.Add(i, &rep); err != nil {
			s.failStudy(st, err)
			return
		}
	}

	result, err := acc.Result()
	if err != nil {
		s.failStudy(st, err)
		return
	}
	data, err := result.JSON()
	if err != nil {
		s.failStudy(st, err)
		return
	}
	s.mu.Lock()
	if !st.Status.terminal() {
		st.Status = JobDone
		st.Result = data
		s.stats.StudiesCompleted++
		s.finishStudyLocked(st)
	}
	s.mu.Unlock()
}

// groupCellLocked ties the still-queued fresh flights of one study
// cell into a vectorGroup so the first worker to reach any of them
// drives the rest as one merged vectorized run. Lanes a worker already
// picked up (or the last waiter abandoned) stay out, and a cell with
// fewer than two groupable lanes is left on the scalar path. Callers
// hold s.mu.
func (s *Server) groupCellLocked(cell []*flight) {
	lanes := make([]*flight, 0, len(cell))
	for _, f := range cell {
		if f.state == JobQueued && f.group == nil && f.live > 0 {
			lanes = append(lanes, f)
		}
	}
	if len(lanes) < 2 {
		return
	}
	g := &vectorGroup{flights: lanes}
	for _, f := range lanes {
		f.group = g
	}
}

// failStudy marks the study failed (unless already terminal) and
// cancels its unfinished sub-jobs.
func (s *Server) failStudy(st *studyRun, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if st.Status.terminal() {
		return
	}
	st.Status = JobFailed
	st.Error = err.Error()
	s.stats.StudiesFailed++
	for _, j := range st.jobs {
		if !j.Status.terminal() {
			s.cancelLocked(j)
		}
	}
	s.finishStudyLocked(st)
}

// finishStudyLocked records a study reaching a terminal state and
// enforces the finished-study history cap. The progress view is
// frozen first (it needs the sub-jobs), then the sub-job references
// are released so a finished study pins no Report bytes beyond the
// job history and cache budgets (the executor guards its st.jobs
// reads with a terminal check). Callers hold s.mu.
func (s *Server) finishStudyLocked(st *studyRun) {
	s.finalizeStudyProgressLocked(st)
	close(st.done)
	st.jobs = nil
	s.studyDone = append(s.studyDone, st.ID)
	for len(s.studyDone) > s.cfg.JobHistory {
		delete(s.studies, s.studyDone[0])
		s.studyDone = s.studyDone[1:]
	}
}
