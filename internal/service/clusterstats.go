package service

import (
	"context"
	"encoding/json"
	"fmt"
	"maps"
	"net/http"
	"sort"
	"time"
)

// PeerSnapshot is one peer's /v1/stats fetch result as a
// PeerStatsFetcher reports it: raw JSON on success (the service
// decodes it into its own Stats, so the fetcher needs no wire-struct
// mirroring), the fetch error otherwise.
type PeerSnapshot struct {
	Addr string
	Data []byte
	Err  error
}

// PeerStatsFetcher is the optional Forwarder extension behind GET
// /v1/cluster/stats: snapshot every peer's /v1/stats concurrently,
// each fetch bounded by its own timeout, and return one entry per
// configured peer. Implemented by internal/cluster.Front.
type PeerStatsFetcher interface {
	FetchPeerStats(ctx context.Context) []PeerSnapshot
}

// clusterStatsTimeout bounds the whole fan-out fetch; the fetcher
// additionally bounds each peer individually, so one hung peer delays
// the response by at most its probe timeout.
const clusterStatsTimeout = 5 * time.Second

// ClusterPeerStats is one peer's row in the /v1/cluster/stats payload.
type ClusterPeerStats struct {
	Addr string `json:"addr"`
	// Up reports whether the stats fetch succeeded — a live liveness
	// signal, not the prober's cached opinion.
	Up    bool   `json:"up"`
	Error string `json:"error,omitempty"`
	Stats *Stats `json:"stats,omitempty"`
}

// ClusterStats is the /v1/cluster/stats payload: the serving front's
// own snapshot, every peer's snapshot (fetched concurrently with
// bounded timeouts), and the merged fleet total — queue depth,
// inflight, cache/store counters, and engine runs summed across self
// plus every reachable peer. Hit *rates* are intentionally absent:
// they derive from the summed hits/misses, and shipping both invites
// disagreement.
type ClusterStats struct {
	Self       Stats              `json:"self"`
	Peers      []ClusterPeerStats `json:"peers"`
	Total      Stats              `json:"total"`
	PeersUp    int                `json:"peers_up"`
	PeersTotal int                `json:"peers_total"`
}

// handleClusterStats is GET /v1/cluster/stats, served by any daemon
// whose Forwarder can snapshot its peers (a front given -peers);
// everything else 404s — a worker daemon has no fleet to aggregate.
func (s *Server) handleClusterStats(w http.ResponseWriter, r *http.Request) {
	fetcher, ok := s.fwd.(PeerStatsFetcher)
	if !ok {
		writeError(w, fmt.Errorf("%w: not a cluster front", ErrNotFound))
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), clusterStatsTimeout)
	defer cancel()
	snaps := fetcher.FetchPeerStats(ctx)
	sort.Slice(snaps, func(i, j int) bool { return snaps[i].Addr < snaps[j].Addr })

	cs := ClusterStats{
		Self:       s.StatsSnapshot(),
		Peers:      make([]ClusterPeerStats, 0, len(snaps)),
		PeersTotal: len(snaps),
	}
	cs.Total = cs.Self
	// Total starts as a deep copy of Self: the map fields must not be
	// shared, or merging peers would corrupt the Self view.
	cs.Total.PeerForwards = maps.Clone(cs.Self.PeerForwards)
	cs.Total.StudyCells = maps.Clone(cs.Self.StudyCells)
	// The fleet total carries no single build identity.
	cs.Total.Version, cs.Total.Revision = "", ""
	cs.Total.BuildTime, cs.Total.GoVersion = "", ""
	for _, snap := range snaps {
		row := ClusterPeerStats{Addr: snap.Addr}
		if snap.Err != nil {
			row.Error = snap.Err.Error()
			cs.Peers = append(cs.Peers, row)
			continue
		}
		var st Stats
		if err := json.Unmarshal(snap.Data, &st); err != nil {
			row.Error = fmt.Sprintf("decoding stats: %s", err)
			cs.Peers = append(cs.Peers, row)
			continue
		}
		row.Up = true
		row.Stats = &st
		cs.Peers = append(cs.Peers, row)
		cs.PeersUp++
		mergeStats(&cs.Total, &st)
	}
	writeJSON(w, http.StatusOK, cs)
}

// mergeStats folds one peer's snapshot into the fleet total: counters
// and gauges sum (queue depth and inflight are additive pressure
// across the fleet), maps merge key-wise, Draining ORs (one draining
// daemon makes the fleet partially draining), and the build-identity
// strings stay whatever the destination carries.
func mergeStats(dst *Stats, src *Stats) {
	dst.CacheHits += src.CacheHits
	dst.CacheMisses += src.CacheMisses
	dst.Coalesced += src.Coalesced
	dst.EngineRuns += src.EngineRuns
	dst.CacheEntries += src.CacheEntries
	dst.CacheBytes += src.CacheBytes
	dst.CacheBudget += src.CacheBudget
	dst.CacheEvictions += src.CacheEvictions
	dst.JobsSubmitted += src.JobsSubmitted
	dst.JobsCompleted += src.JobsCompleted
	dst.JobsFailed += src.JobsFailed
	dst.JobsCanceled += src.JobsCanceled
	dst.StudiesSubmitted += src.StudiesSubmitted
	dst.StudiesCompleted += src.StudiesCompleted
	dst.StudiesFailed += src.StudiesFailed
	dst.StudiesCanceled += src.StudiesCanceled
	dst.QueueDepth += src.QueueDepth
	dst.InFlight += src.InFlight
	dst.Draining = dst.Draining || src.Draining
	dst.StoreHits += src.StoreHits
	dst.StoreMisses += src.StoreMisses
	dst.StoreEntries += src.StoreEntries
	dst.StoreBytes += src.StoreBytes
	dst.StoreBudget += src.StoreBudget
	dst.StoreEvictions += src.StoreEvictions
	dst.StoreCorrupt += src.StoreCorrupt
	dst.StoreErrors += src.StoreErrors
	dst.Forwarded += src.Forwarded
	dst.ForwardErrors += src.ForwardErrors
	dst.PeersHealthy += src.PeersHealthy
	dst.PeersTotal += src.PeersTotal
	dst.RoundsSimulated += src.RoundsSimulated
	dst.SimSeconds += src.SimSeconds
	for peer, n := range src.PeerForwards {
		if dst.PeerForwards == nil {
			dst.PeerForwards = map[string]int64{}
		}
		dst.PeerForwards[peer] += n
	}
	for state, n := range src.StudyCells {
		if dst.StudyCells == nil {
			dst.StudyCells = map[string]int64{}
		}
		dst.StudyCells[state] += n
	}
}
