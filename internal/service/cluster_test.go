// End-to-end tests of cluster mode: a front daemon sharding a study
// across two worker daemons produces the byte-identical artifact of
// direct execution; a full restart of every process serves the
// re-submitted study entirely from the persistent stores (zero engine
// runs anywhere); and a dead peer's keys reroute to its ring
// successor.
package service_test

import (
	"bytes"
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"awakemis"
	"awakemis/client"
	"awakemis/internal/cluster"
	"awakemis/internal/service"
	"awakemis/internal/store"
)

// daemon is one restartable awakemisd-shaped process: a Server over
// real HTTP, optionally store-backed, optionally a cluster front.
type daemon struct {
	srv   *service.Server
	ts    *httptest.Server
	c     *client.Client
	front *cluster.Front
}

// startDaemon boots a daemon the way cmd/awakemisd wires one: open
// store (caller-owned, reopened across "restarts"), optional front.
func startDaemon(t *testing.T, cfg service.Config, peers []string) *daemon {
	t.Helper()
	d := &daemon{}
	if len(peers) > 0 {
		front, err := cluster.New(peers, cluster.Options{HealthInterval: -1})
		if err != nil {
			t.Fatal(err)
		}
		cfg.Forward = front
		d.front = front
	}
	if cfg.Workers == 0 {
		cfg.Workers = 2
	}
	d.srv = service.New(cfg)
	d.ts = httptest.NewServer(d.srv.Handler())
	d.c = client.New(d.ts.URL, d.ts.Client())
	d.c.PollInterval = 5 * time.Millisecond
	return d
}

// stop shuts the daemon down the way SIGTERM does: drain, close
// front, close listener. The store is left to the caller — reopening
// it is the restart under test.
func (d *daemon) stop(t *testing.T) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := d.srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if d.front != nil {
		d.front.Close()
	}
	d.ts.Close()
}

// clusterStudy is a small grid (2 tasks x 2 sizes x 2 trials = 8
// sub-runs) — enough to exercise sharding without slowing the suite.
func clusterStudy() awakemis.StudySpec {
	return awakemis.StudySpec{
		Name:    "cluster-e2e",
		Tasks:   []string{"awake-mis", "vt-mis"},
		Sizes:   []int{64, 256},
		Trials:  2,
		Seed:    7,
		Options: awakemis.Options{Strict: true},
	}
}

// runStudyJSON submits the study through the client and returns the
// canonical rendering of the daemon's artifact.
func runStudyJSON(t *testing.T, c *client.Client, spec awakemis.StudySpec) []byte {
	t.Helper()
	ctx := context.Background()
	study, err := c.RunStudy(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	data, err := study.JSON()
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestClusterStudyIdentityAndRestart is the tentpole acceptance test:
// a 2-worker cluster serves a study byte-identical to direct local
// execution; after a full restart of every process (stores reopened
// from disk), the re-submitted study costs zero engine runs on every
// daemon and zero forwards on the front, and the artifact is still
// byte-identical.
func TestClusterStudyIdentityAndRestart(t *testing.T) {
	ctx := context.Background()
	spec := clusterStudy()
	nSpecs := len(spec.Specs())

	local, err := awakemis.RunStudyContext(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	localJSON, err := local.JSON()
	if err != nil {
		t.Fatal(err)
	}

	w1Dir, w2Dir, fDir := t.TempDir(), t.TempDir(), t.TempDir()
	openStore := func(dir string) *store.Store {
		st, err := store.Open(dir, 0)
		if err != nil {
			t.Fatal(err)
		}
		return st
	}

	// First boot: two workers, one front sharding across them.
	w1 := startDaemon(t, service.Config{Store: openStore(w1Dir)}, nil)
	w2 := startDaemon(t, service.Config{Store: openStore(w2Dir)}, nil)
	front := startDaemon(t, service.Config{Store: openStore(fDir)}, []string{w1.ts.URL, w2.ts.URL})

	clusterJSON := runStudyJSON(t, front.c, spec)
	if !bytes.Equal(clusterJSON, localJSON) {
		t.Fatalf("cluster artifact differs from direct execution:\ncluster: %.300s\nlocal:   %.300s", clusterJSON, localJSON)
	}

	fs, err := front.c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if fs.EngineRuns != 0 {
		t.Errorf("front engine_runs = %d, want 0 (fronts own no engines)", fs.EngineRuns)
	}
	if fs.Forwarded != int64(nSpecs) {
		t.Errorf("forwarded = %d, want %d", fs.Forwarded, nSpecs)
	}
	var peerSum int64
	for _, n := range fs.PeerForwards {
		peerSum += n
	}
	if peerSum != int64(nSpecs) {
		t.Errorf("peer_forwards sum = %d (%v), want %d", peerSum, fs.PeerForwards, nSpecs)
	}
	if fs.PeersHealthy != 2 || fs.PeersTotal != 2 {
		t.Errorf("peers = %d/%d healthy, want 2/2", fs.PeersHealthy, fs.PeersTotal)
	}
	s1, err := w1.c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := w2.c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if s1.EngineRuns+s2.EngineRuns != int64(nSpecs) {
		t.Errorf("worker engine_runs = %d + %d, want %d total", s1.EngineRuns, s2.EngineRuns, nSpecs)
	}
	// The sharding split depends on the test servers' random ports, so
	// only the total is deterministic: every sub-run persisted exactly
	// once, on the worker that ran it.
	if s1.StoreEntries+s2.StoreEntries != int64(nSpecs) {
		t.Errorf("store entries = %d + %d, want %d total across workers", s1.StoreEntries, s2.StoreEntries, nSpecs)
	}

	// Remember which worker owned one concrete sub-run, to probe its
	// store directly after restart.
	firstBootRing := cluster.NewRing([]string{w1.ts.URL, w2.ts.URL}, 0)
	probe := spec.Specs()[0]
	probeHash, err := service.Hash(probe)
	if err != nil {
		t.Fatal(err)
	}
	probeOwnedByW1 := firstBootRing.Owner(probeHash) == w1.ts.URL

	// Full restart: stop every process, reopen every store from disk.
	front.stop(t)
	w1.stop(t)
	w2.stop(t)

	w1 = startDaemon(t, service.Config{Store: openStore(w1Dir)}, nil)
	w2 = startDaemon(t, service.Config{Store: openStore(w2Dir)}, nil)
	front = startDaemon(t, service.Config{Store: openStore(fDir)}, []string{w1.ts.URL, w2.ts.URL})
	defer front.stop(t)
	defer w2.stop(t)
	defer w1.stop(t)

	againJSON := runStudyJSON(t, front.c, spec)
	if !bytes.Equal(againJSON, localJSON) {
		t.Error("post-restart artifact differs from direct execution")
	}
	fs, err = front.c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if fs.EngineRuns != 0 || fs.Forwarded != 0 {
		t.Errorf("post-restart front: engine_runs=%d forwarded=%d, want 0/0 (all served from its store)", fs.EngineRuns, fs.Forwarded)
	}
	if fs.StoreHits < int64(nSpecs) {
		t.Errorf("post-restart front store_hits = %d, want >= %d", fs.StoreHits, nSpecs)
	}

	// The worker that owned the probe spec serves it from its reopened
	// store too: zero engine runs even when addressed directly.
	owner := w1
	if !probeOwnedByW1 {
		owner = w2
	}
	if _, err := owner.c.Run(ctx, probe); err != nil {
		t.Fatal(err)
	}
	ws, err := owner.c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if ws.EngineRuns != 0 {
		t.Errorf("post-restart worker engine_runs = %d, want 0 (probe should hit the reopened store)", ws.EngineRuns)
	}
	if ws.StoreHits == 0 {
		t.Error("post-restart worker store_hits = 0, want the probe to be a disk hit")
	}
}

// TestClusterReroutesAroundDeadPeer: a spec owned by an unreachable
// peer lands on the ring successor instead, the job still succeeds,
// and the dead peer is marked unhealthy.
func TestClusterReroutesAroundDeadPeer(t *testing.T) {
	ctx := context.Background()
	w := startDaemon(t, service.Config{}, nil)
	defer w.stop(t)
	// Port 1 refuses connections immediately; probing is disabled in
	// startDaemon, so the front starts out believing the peer is fine.
	dead := "http://127.0.0.1:1"
	front := startDaemon(t, service.Config{}, []string{w.ts.URL, dead})
	defer front.stop(t)

	// Find a spec the dead peer owns, so the reroute path is what runs.
	ring := cluster.NewRing([]string{w.ts.URL, dead}, 0)
	spec := targetSpec()
	for seed := int64(1); ; seed++ {
		spec.Options.Seed = seed
		h, err := service.Hash(spec)
		if err != nil {
			t.Fatal(err)
		}
		if ring.Owner(h) == dead {
			break
		}
	}

	if _, err := front.c.Run(ctx, spec); err != nil {
		t.Fatalf("run via front with dead owner: %v", err)
	}

	fs, err := front.c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if fs.Forwarded != 1 {
		t.Errorf("forwarded = %d, want 1", fs.Forwarded)
	}
	if fs.PeerForwards[dead] != 0 {
		t.Errorf("dead peer credited with %d forwards", fs.PeerForwards[dead])
	}
	if fs.PeersHealthy != 1 {
		t.Errorf("peers_healthy = %d, want 1 (the failed forward marks the dead peer down)", fs.PeersHealthy)
	}
	if fs.EngineRuns != 0 {
		t.Errorf("front engine_runs = %d, want 0", fs.EngineRuns)
	}
}
