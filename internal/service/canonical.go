// Package service is the job-queue layer of the awakemisd daemon: it
// accepts Specs over HTTP, deduplicates them through a
// content-addressed report cache with in-flight coalescing
// (singleflight), executes them on a bounded worker pool via the
// public Runner/RunSpec facade, and serves the resulting Reports. On
// top of jobs it serves studies (POST /v1/studies): declarative
// parameter-sweep grids whose cells execute as ordinary jobs — so
// repeated and overlapping sweeps coalesce through the same cache —
// and aggregate server-side into StudyResult artifacts.
//
// The subsystem exploits the determinism contract of the simulator:
// a resolved (Spec, seed, engine) triple always produces the same
// Report (up to wall time), so equal canonical specs can share one
// simulation and cached bytes can be served forever.
package service

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"strings"

	"awakemis"
)

// Canonicalize returns the spec in canonical form: every default
// filled in, the graph seed resolved, and result-irrelevant knobs
// zeroed, so that two specs hash equal exactly when they would
// execute the same simulation and label its report the same way.
//
// The rules (also documented in the README, "Canonical specs and the
// report cache"):
//
//   - Graph.Family is lowercased (Generate matches case-insensitively)
//     and "" becomes "gnp"; Graph.N 0 becomes 1024; family
//     parameters the family ignores are zeroed, and the ones it reads
//     get their Generate defaults (P = 4/n for gnp, Degree = 4 for
//     regular/powerlaw, Radius = 0.1 for geometric).
//   - Graph.Seed 0 resolves to Options.Seed (the substitution
//     GraphSpec already performs at build time).
//   - Options.Engine "" becomes "stepped". Options.Workers,
//     Options.Trace, and Options.Observer are zeroed: worker counts
//     never change results, and traces and observers never reach the
//     wire. Options.RoundSummary is kept — it adds a (deterministic)
//     block to the report bytes, so summarized and plain submissions
//     cache separately.
//   - Options.Seed is taken literally (RunSpec runs seed 0 as seed 0),
//     as are N, Bandwidth, Strict, MaxRounds, and Params. Name is kept
//     verbatim: it is part of the Report, so differently named
//     submissions are cached separately.
//
// Canonicalization is sound but not complete: equal canonical specs
// always produce identical reports, while some distinct canonical
// specs (say, an explicit Options.N equal to the node count versus a
// zero one) may too — they just cache separately.
func Canonicalize(spec awakemis.Spec) awakemis.Spec {
	c := spec

	family := strings.ToLower(c.Graph.Family)
	if family == "" {
		family = "gnp"
	}
	n := c.Graph.N
	if n <= 0 {
		n = 1024
	}
	g := awakemis.GraphSpec{Family: family, N: n}
	switch family {
	case "gnp":
		g.P = c.Graph.P
		if g.P == 0 {
			// Generate's default edge probability, clamped: 4/n exceeds 1
			// for n < 4, where it means the same graph as p = 1 but would
			// fail validation.
			g.P = min(1, 4/float64(n))
		}
	case "regular", "powerlaw":
		g.Degree = c.Graph.Degree
		if g.Degree == 0 {
			g.Degree = 4
		}
	case "geometric":
		g.Radius = c.Graph.Radius
		if g.Radius == 0 {
			g.Radius = 0.1
		}
	}
	g.Seed = c.Graph.Seed
	if g.Seed == 0 {
		g.Seed = c.Options.Seed
	}
	c.Graph = g

	if c.Options.Engine == "" {
		c.Options.Engine = awakemis.EngineStepped
	}
	c.Options.Workers = 0
	c.Options.Trace = false
	c.Options.Observer = nil
	return c
}

// Hash returns the spec's content address: the hex SHA-256 of the
// canonical spec's JSON encoding. Struct fields marshal in their
// (frozen, golden-tested) declaration order, so the encoding — and
// therefore the hash — is stable across processes and releases.
func Hash(spec awakemis.Spec) (string, error) {
	return hashCanonical(Canonicalize(spec))
}

// hashCanonical hashes a spec that is already in canonical form (the
// Server calls it with the Canonicalize result it stores, so the two
// can never drift apart).
func hashCanonical(canonical awakemis.Spec) (string, error) {
	data, err := json.Marshal(canonical)
	if err != nil {
		return "", fmt.Errorf("service: hashing spec: %w", err)
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:]), nil
}
