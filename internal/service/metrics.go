package service

import (
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// The operational surface: GET /metrics in Prometheus text format,
// rendered by hand — the repo takes no dependencies, and the format
// is a stable, trivially writable line protocol. Counters and gauges
// come from StatsSnapshot (the same numbers /v1/stats serves, so the
// two surfaces can never disagree); request latency histograms are
// collected by the instrument middleware per mux route.

// latencyBuckets are the histogram's cumulative upper bounds in
// seconds: sub-millisecond cache hits through multi-second engine
// runs.
var latencyBuckets = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// histogram is one route's latency distribution. counts[i] is the
// number of observations in (bucket i-1, bucket i]; the final slot
// collects the +Inf overflow.
type histogram struct {
	counts []int64 // len(latencyBuckets)+1
	sum    float64
	total  int64
}

// metricsState guards the per-route latency histograms and the
// queue-wait histogram (how long flights sat queued before a worker
// picked them up).
type metricsState struct {
	mu        sync.Mutex
	routes    map[string]*histogram
	queueWait histogram
}

func newMetricsState() *metricsState {
	return &metricsState{
		routes:    map[string]*histogram{},
		queueWait: histogram{counts: make([]int64, len(latencyBuckets)+1)},
	}
}

// observe records one request's duration under its route label.
func (m *metricsState) observe(route string, seconds float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	h, ok := m.routes[route]
	if !ok {
		h = &histogram{counts: make([]int64, len(latencyBuckets)+1)}
		m.routes[route] = h
	}
	h.observe(seconds)
}

// observeQueueWait records one flight's time in the queue.
func (m *metricsState) observeQueueWait(seconds float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.queueWait.observe(seconds)
}

func (h *histogram) observe(seconds float64) {
	i := sort.SearchFloat64s(latencyBuckets, seconds)
	h.counts[i]++
	h.sum += seconds
	h.total++
}

// handleMetrics is GET /metrics.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	st := s.StatsSnapshot()
	var b strings.Builder

	scalar := func(name, typ, help string, v any) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s %s\n%s %v\n", name, help, name, typ, name, v)
	}
	scalar("awakemisd_queue_depth", "gauge", "Flights waiting for a worker.", st.QueueDepth)
	scalar("awakemisd_inflight", "gauge", "Distinct simulations queued or running.", st.InFlight)
	scalar("awakemisd_draining", "gauge", "1 while the server drains for shutdown.", b2i(st.Draining))
	scalar("awakemisd_engine_runs_total", "counter", "Simulations actually started by the local engine.", st.EngineRuns)
	scalar("awakemisd_cache_hits_total", "counter", "Submissions served from the report cache (memory or store).", st.CacheHits)
	scalar("awakemisd_cache_misses_total", "counter", "Submissions that needed a new flight.", st.CacheMisses)
	scalar("awakemisd_coalesced_total", "counter", "Submissions attached to an identical in-flight simulation.", st.Coalesced)
	scalar("awakemisd_cache_entries", "gauge", "Reports in the in-memory LRU.", st.CacheEntries)
	scalar("awakemisd_cache_bytes", "gauge", "Bytes in the in-memory LRU.", st.CacheBytes)
	scalar("awakemisd_cache_evictions_total", "counter", "In-memory LRU evictions.", st.CacheEvictions)
	scalar("awakemisd_jobs_submitted_total", "counter", "Jobs accepted.", st.JobsSubmitted)
	scalar("awakemisd_jobs_completed_total", "counter", "Jobs finished with a report.", st.JobsCompleted)
	scalar("awakemisd_jobs_failed_total", "counter", "Jobs that errored.", st.JobsFailed)
	scalar("awakemisd_jobs_canceled_total", "counter", "Jobs canceled by submitters.", st.JobsCanceled)
	scalar("awakemisd_studies_submitted_total", "counter", "Studies accepted.", st.StudiesSubmitted)
	scalar("awakemisd_studies_completed_total", "counter", "Studies that produced an artifact.", st.StudiesCompleted)
	fmt.Fprintf(&b, "# HELP awakemisd_study_cells_total Study cells by terminal outcome.\n# TYPE awakemisd_study_cells_total counter\n")
	for _, state := range []string{"cached", "canceled", "done", "failed"} {
		fmt.Fprintf(&b, "awakemisd_study_cells_total{state=%s} %d\n", labelQuote(state), st.StudyCells[state])
	}
	scalar("awakemisd_engine_rounds_simulated_total", "counter", "Rounds executed by local simulations.", st.RoundsSimulated)
	scalar("awakemisd_sim_seconds_total", "counter", "Engine time spent by local simulations.", strconv.FormatFloat(st.SimSeconds, 'g', -1, 64))

	if s.cache.hasDisk() {
		scalar("awakemisd_store_hits_total", "counter", "Cache misses served from the persistent store.", st.StoreHits)
		scalar("awakemisd_store_misses_total", "counter", "Persistent store lookups that found nothing.", st.StoreMisses)
		scalar("awakemisd_store_entries", "gauge", "Records in the persistent store.", st.StoreEntries)
		scalar("awakemisd_store_bytes", "gauge", "Record file bytes in the persistent store.", st.StoreBytes)
		scalar("awakemisd_store_evictions_total", "counter", "Records evicted by the store byte budget.", st.StoreEvictions)
		scalar("awakemisd_store_corrupt_total", "counter", "Records discarded by checksum verification.", st.StoreCorrupt)
	}

	if s.fwd != nil {
		scalar("awakemisd_forwarded_total", "counter", "Flights served by a cluster peer.", st.Forwarded)
		scalar("awakemisd_forward_errors_total", "counter", "Flights no peer could serve.", st.ForwardErrors)
		scalar("awakemisd_cluster_peers_up", "gauge", "Peers whose last health probe (or forward) succeeded.", st.PeersHealthy)
		health := s.fwd.PeerHealth()
		peers := make([]string, 0, len(health))
		for addr := range health {
			peers = append(peers, addr)
		}
		sort.Strings(peers)
		fmt.Fprintf(&b, "# HELP awakemisd_peer_up 1 if the peer's last health probe (or forward) succeeded.\n# TYPE awakemisd_peer_up gauge\n")
		for _, addr := range peers {
			fmt.Fprintf(&b, "awakemisd_peer_up{peer=%s} %d\n", labelQuote(addr), b2i(health[addr]))
		}
		fmt.Fprintf(&b, "# HELP awakemisd_peer_forwards_total Flights served, by peer.\n# TYPE awakemisd_peer_forwards_total counter\n")
		for _, addr := range peers {
			fmt.Fprintf(&b, "awakemisd_peer_forwards_total{peer=%s} %d\n", labelQuote(addr), st.PeerForwards[addr])
		}
	}

	s.renderLatency(&b)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.Write([]byte(b.String()))
}

// renderLatency writes the per-route request duration histograms and
// the queue-wait histogram.
func (s *Server) renderLatency(b *strings.Builder) {
	const name = "awakemisd_http_request_duration_seconds"
	s.metrics.mu.Lock()
	defer s.metrics.mu.Unlock()
	routes := make([]string, 0, len(s.metrics.routes))
	for route := range s.metrics.routes {
		routes = append(routes, route)
	}
	sort.Strings(routes)
	fmt.Fprintf(b, "# HELP %s HTTP request latency by mux route.\n# TYPE %s histogram\n", name, name)
	for _, route := range routes {
		renderHistogram(b, name, "route="+labelQuote(route), s.metrics.routes[route])
	}

	const qname = "awakemisd_queue_wait_seconds"
	fmt.Fprintf(b, "# HELP %s Time flights spent queued before a worker picked them up.\n# TYPE %s histogram\n", qname, qname)
	renderHistogram(b, qname, "", &s.metrics.queueWait)
}

// renderHistogram writes one histogram's bucket/sum/count lines; label
// is a preformatted `name="value"` pair, or "" for a bare histogram.
func renderHistogram(b *strings.Builder, name, label string, h *histogram) {
	le := func(bound string) string {
		if label == "" {
			return fmt.Sprintf("{le=%q}", bound)
		}
		return fmt.Sprintf("{%s,le=%q}", label, bound)
	}
	cum := int64(0)
	for i, bound := range latencyBuckets {
		cum += h.counts[i]
		fmt.Fprintf(b, "%s_bucket%s %d\n", name, le(strconv.FormatFloat(bound, 'g', -1, 64)), cum)
	}
	cum += h.counts[len(latencyBuckets)]
	fmt.Fprintf(b, "%s_bucket%s %d\n", name, le("+Inf"), cum)
	suffix := ""
	if label != "" {
		suffix = "{" + label + "}"
	}
	fmt.Fprintf(b, "%s_sum%s %s\n", name, suffix, strconv.FormatFloat(h.sum, 'g', -1, 64))
	fmt.Fprintf(b, "%s_count%s %d\n", name, suffix, h.total)
}

// labelQuote escapes a label value per the Prometheus text format.
func labelQuote(v string) string {
	return strconv.Quote(v) // \", \\ and \n escapes match the exposition format
}

func b2i(v bool) int {
	if v {
		return 1
	}
	return 0
}
