// End-to-end tests of daemon-served studies: byte-identity between
// direct and daemon execution (the study determinism contract), cache
// coalescing on re-submission (engine_runs unchanged), validation
// mapping, and cancellation.
package service_test

import (
	"bytes"
	"context"
	"errors"
	"net/http"
	"strings"
	"testing"
	"time"

	"awakemis"
	"awakemis/client"
	"awakemis/internal/service"
)

// e2eStudy is the acceptance grid: the headline task and VT-MIS over
// an n-sweep, three trials per cell.
func e2eStudy() awakemis.StudySpec {
	return awakemis.StudySpec{
		Name:    "e2e",
		Tasks:   []string{"awake-mis", "vt-mis"},
		Sizes:   []int{64, 256, 1024},
		Trials:  3,
		Seed:    5,
		Options: awakemis.Options{Strict: true},
	}
}

// TestStudyDirectVsDaemon is the cross-path determinism contract:
// the same StudySpec produces a byte-identical StudyResult artifact
// whether executed directly through the public StudyRunner or
// submitted to the daemon — and a re-submitted study is served
// entirely from the report cache (engine_runs unchanged).
func TestStudyDirectVsDaemon(t *testing.T) {
	_, c := newTestServer(t, service.Config{Workers: 2})
	ctx := context.Background()

	spec := e2eStudy()
	local, err := awakemis.RunStudyContext(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	localJSON, err := local.JSON()
	if err != nil {
		t.Fatal(err)
	}
	// The acceptance criterion's fit shape, asserted on the shared
	// artifact: awake-mis's awake metric prefers log log n.
	fit, ok := local.Fit("awake-mis", "gnp", awakemis.EngineStepped, "max_awake")
	if !ok || fit.Model != "loglog n" {
		t.Errorf("awake-mis max_awake fit = %+v (ok=%v), want loglog n", fit, ok)
	}

	study, err := c.SubmitStudy(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if study.Total != len(spec.Specs()) {
		t.Errorf("study total = %d, want %d", study.Total, len(spec.Specs()))
	}
	study, err = c.WaitStudy(ctx, study.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	if study.Status != client.JobDone {
		t.Fatalf("study finished %s: %s", study.Status, study.Error)
	}
	if study.Done != study.Total {
		t.Errorf("done = %d, want %d", study.Done, study.Total)
	}
	// Byte identity across direct and daemon execution. The HTTP layer
	// compacts embedded raw JSON in transit, so the contract is on the
	// canonical rendering: decode the daemon's artifact and re-render
	// with the same JSON() both paths use (an exact float round trip —
	// TestStudyArtifactRoundTrip in the root package pins that).
	remote, err := study.DecodeResult()
	if err != nil {
		t.Fatal(err)
	}
	remoteJSON, err := remote.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(remoteJSON, localJSON) {
		t.Errorf("daemon artifact differs from direct execution:\ndaemon: %.300s\nlocal:  %.300s", remoteJSON, localJSON)
	}

	stats, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	runs := stats.EngineRuns
	if want := int64(len(spec.Specs())); runs != want {
		t.Errorf("engine_runs = %d, want %d (one per expanded spec)", runs, want)
	}
	if stats.StudiesSubmitted != 1 || stats.StudiesCompleted != 1 {
		t.Errorf("study counters = %+v", stats)
	}

	// Re-submission: every sub-run is a cache hit, zero new engine
	// runs, byte-identical artifact.
	again, err := c.RunStudy(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	againJSON, err := again.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(againJSON, localJSON) {
		t.Error("re-submitted study artifact differs from direct execution")
	}
	stats, err = c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.EngineRuns != runs {
		t.Errorf("re-submission ran %d new simulations", stats.EngineRuns-runs)
	}
	if stats.CacheHits < int64(len(spec.Specs())) {
		t.Errorf("cache_hits = %d after re-submission", stats.CacheHits)
	}
	if stats.StudiesCompleted != 2 {
		t.Errorf("studies_completed = %d, want 2", stats.StudiesCompleted)
	}
}

// TestStudyDaemonVectorizedVsLocalScalar pins the identity contract
// across both the execution boundary and the vectorization axis: a
// daemon-served study (whose cells run as merged vectorized lanes)
// produces the same artifact as a local run forced onto the per-trial
// scalar path, at a replication count high enough to exercise wide
// lane batches.
func TestStudyDaemonVectorizedVsLocalScalar(t *testing.T) {
	_, c := newTestServer(t, service.Config{Workers: 2})
	ctx := context.Background()

	spec := awakemis.StudySpec{
		Name:    "vec8",
		Tasks:   []string{"luby", "vt-mis"},
		Sizes:   []int{32, 64},
		Trials:  8,
		Seed:    11,
		Options: awakemis.Options{Strict: true},
	}
	scalar := awakemis.StudyRunner{Scalar: true}
	local, err := scalar.Run(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	localJSON, err := local.JSON()
	if err != nil {
		t.Fatal(err)
	}
	remote, err := c.RunStudy(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	remoteJSON, err := remote.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(remoteJSON, localJSON) {
		t.Errorf("daemon vectorized artifact differs from local scalar:\ndaemon: %.300s\nlocal:  %.300s", remoteJSON, localJSON)
	}
	// Vectorized lanes still meter one engine run per trial spec.
	stats, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(len(spec.Specs())); stats.EngineRuns != want {
		t.Errorf("engine_runs = %d, want %d", stats.EngineRuns, want)
	}
}

func TestStudyValidationAndLookupErrors(t *testing.T) {
	_, c := newTestServer(t, service.Config{})
	ctx := context.Background()

	_, err := c.SubmitStudy(ctx, awakemis.StudySpec{Tasks: []string{"quicksort"}})
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusBadRequest {
		t.Errorf("invalid study error = %v, want 400", err)
	}
	if !strings.Contains(err.Error(), "unknown task") {
		t.Errorf("error %q does not name the bad task", err)
	}

	if _, err := c.Study(ctx, "s-999999"); !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusNotFound {
		t.Errorf("missing study error = %v, want 404", err)
	}
	if _, err := c.CancelStudy(ctx, "s-999999"); !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusNotFound {
		t.Errorf("cancel missing study error = %v, want 404", err)
	}
}

// TestStudyCancel: canceling a study cancels its queued sub-runs and
// produces no artifact; canceling again conflicts.
func TestStudyCancel(t *testing.T) {
	_, c := newTestServer(t, service.Config{Workers: 1})
	ctx := context.Background()

	// Occupy the single worker so the study's sub-runs stay queued.
	blocker, err := c.Submit(ctx, blockerSpec(1500))
	if err != nil {
		t.Fatal(err)
	}

	study, err := c.SubmitStudy(ctx, awakemis.StudySpec{
		Name:   "doomed",
		Tasks:  []string{"luby"},
		Sizes:  []int{32, 64},
		Trials: 2,
		Seed:   5,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Give the executor a beat to start submitting sub-jobs, then
	// cancel (cancellation must also work mid-submission).
	time.Sleep(20 * time.Millisecond)
	canceled, err := c.CancelStudy(ctx, study.ID)
	if err != nil {
		t.Fatal(err)
	}
	if canceled.Status != client.JobCanceled {
		t.Fatalf("canceled study status = %s", canceled.Status)
	}
	if len(canceled.Result) != 0 {
		t.Error("canceled study has a result")
	}
	var apiErr *client.APIError
	if _, err := c.CancelStudy(ctx, study.ID); !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusConflict {
		t.Errorf("double cancel error = %v, want 409", err)
	}

	// The blocker is unaffected by the study's cancellation.
	final, err := c.Wait(ctx, blocker.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.Status != client.JobDone {
		t.Errorf("blocker finished %s", final.Status)
	}
	stats, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.StudiesCanceled != 1 {
		t.Errorf("studies_canceled = %d", stats.StudiesCanceled)
	}
}
