// End-to-end tests of the awakemisd core: real HTTP via httptest, the
// typed client package (so client/server wire compatibility is tested
// here too), and the -race-critical coalescing and cancellation
// paths. The timing trick throughout: a Config{Workers: 1} server and
// a slow "blocker" spec occupying the single slot make queue states
// deterministic — everything submitted behind the blocker provably
// coalesces or cancels before its flight starts.
package service_test

import (
	"bytes"
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"awakemis"
	"awakemis/client"
	"awakemis/internal/service"
)

// blockerSpec runs long enough (hundreds of milliseconds to seconds,
// scaling with n — naive-greedy on a cycle is O(n) awake) that work
// submitted "behind" it is safely queued even on a slow 1-CPU box.
func blockerSpec(n int) awakemis.Spec {
	return awakemis.Spec{
		Name:    "blocker",
		Task:    "naive-greedy",
		Graph:   awakemis.GraphSpec{Family: "cycle", N: n},
		Options: awakemis.Options{Seed: 9},
	}
}

// targetSpec is the fast spec the dedup tests submit in duplicate.
func targetSpec() awakemis.Spec {
	return awakemis.Spec{
		Name:    "target",
		Task:    "awake-mis",
		Graph:   awakemis.GraphSpec{Family: "gnp", N: 64, P: 0.06},
		Options: awakemis.Options{Seed: 3},
	}
}

// newTestServer starts a one-worker server over real HTTP and returns
// a typed client for it. Cleanup shuts both down.
func newTestServer(t *testing.T, cfg service.Config) (*service.Server, *client.Client) {
	t.Helper()
	if cfg.Workers == 0 {
		cfg.Workers = 1
	}
	srv := service.New(cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
		ts.Close()
	})
	c := client.New(ts.URL, ts.Client())
	c.PollInterval = 5 * time.Millisecond
	return srv, c
}

// TestConcurrentDuplicatesCoalesce is the acceptance flow: N
// identical concurrent POSTs trigger exactly one simulation, every
// submitter receives a bit-identical Report, and a resubmission after
// completion is served from cache without invoking an engine — all
// asserted via /v1/stats counters.
func TestConcurrentDuplicatesCoalesce(t *testing.T) {
	_, c := newTestServer(t, service.Config{})
	ctx := context.Background()

	// Occupy the single worker so the duplicate flight stays queued
	// until all N submissions are in.
	blocker, err := c.Submit(ctx, blockerSpec(1500))
	if err != nil {
		t.Fatal(err)
	}

	const n = 8
	jobs := make([]*client.Job, n)
	var wg sync.WaitGroup
	for i := range n {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			job, err := c.Submit(ctx, targetSpec())
			if err != nil {
				t.Errorf("submit %d: %v", i, err)
				return
			}
			jobs[i] = job
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	reports := make([][]byte, n)
	for i, job := range jobs {
		final, err := c.Wait(ctx, job.ID)
		if err != nil {
			t.Fatalf("wait %d: %v", i, err)
		}
		if final.Status != client.JobDone {
			t.Fatalf("job %d finished %s (%s)", i, final.Status, final.Error)
		}
		reports[i] = final.Report
	}
	for i := 1; i < n; i++ {
		if !bytes.Equal(reports[0], reports[i]) {
			t.Errorf("report %d is not bit-identical to report 0", i)
		}
	}
	// All duplicates share one content address, distinct job IDs.
	ids := map[string]bool{}
	for i, job := range jobs {
		if job.Hash != jobs[0].Hash {
			t.Errorf("job %d hash %s != %s", i, job.Hash, jobs[0].Hash)
		}
		ids[job.ID] = true
	}
	if len(ids) != n {
		t.Errorf("%d distinct job IDs for %d submissions", len(ids), n)
	}

	if _, err := c.Wait(ctx, blocker.ID); err != nil {
		t.Fatal(err)
	}
	st, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.EngineRuns != 2 { // blocker + exactly one target run
		t.Errorf("engine_runs = %d, want 2", st.EngineRuns)
	}
	if st.CacheMisses != 2 || st.Coalesced != n-1 {
		t.Errorf("misses/coalesced = %d/%d, want 2/%d", st.CacheMisses, st.Coalesced, n-1)
	}

	// Resubmission after completion: a cache hit, terminal immediately,
	// same bytes, no new engine run.
	again, err := c.Submit(ctx, targetSpec())
	if err != nil {
		t.Fatal(err)
	}
	if again.Status != client.JobDone || !again.Cached {
		t.Errorf("resubmission status/cached = %s/%t, want done/true", again.Status, again.Cached)
	}
	if !bytes.Equal(again.Report, reports[0]) {
		t.Error("cached report is not bit-identical to the original")
	}
	st, err = c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.CacheHits != 1 || st.EngineRuns != 2 {
		t.Errorf("after resubmit: hits/engine_runs = %d/%d, want 1/2", st.CacheHits, st.EngineRuns)
	}
}

// TestCancelOneWaiterKeepsSharedRun: with two submitters attached to
// one flight, canceling one must not abort the simulation the other
// is waiting on.
func TestCancelOneWaiterKeepsSharedRun(t *testing.T) {
	_, c := newTestServer(t, service.Config{})
	ctx := context.Background()

	blocker, err := c.Submit(ctx, blockerSpec(1500))
	if err != nil {
		t.Fatal(err)
	}
	a, err := c.Submit(ctx, targetSpec())
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.Submit(ctx, targetSpec())
	if err != nil {
		t.Fatal(err)
	}

	canceled, err := c.Cancel(ctx, a.ID)
	if err != nil {
		t.Fatal(err)
	}
	if canceled.Status != client.JobCanceled {
		t.Fatalf("canceled job status = %s", canceled.Status)
	}

	final, err := c.Wait(ctx, b.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.Status != client.JobDone || len(final.Report) == 0 {
		t.Fatalf("surviving waiter finished %s (%s), want done with a report", final.Status, final.Error)
	}
	// The canceled job stays canceled — it does not inherit the report.
	after, err := c.Job(ctx, a.ID)
	if err != nil {
		t.Fatal(err)
	}
	if after.Status != client.JobCanceled || after.Report != nil {
		t.Errorf("canceled job after completion: %s with %d report bytes", after.Status, len(after.Report))
	}
	if _, err := c.Wait(ctx, blocker.ID); err != nil {
		t.Fatal(err)
	}
	st, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.EngineRuns != 2 || st.JobsCanceled != 1 || st.JobsCompleted != 2 {
		t.Errorf("engine_runs/canceled/completed = %d/%d/%d, want 2/1/2",
			st.EngineRuns, st.JobsCanceled, st.JobsCompleted)
	}
}

// TestCancelLastWaiterWhileQueued: when every submitter of a queued
// flight cancels, the flight is abandoned without ever invoking an
// engine.
func TestCancelLastWaiterWhileQueued(t *testing.T) {
	srv, c := newTestServer(t, service.Config{})
	ctx := context.Background()

	blocker, err := c.Submit(ctx, blockerSpec(1200))
	if err != nil {
		t.Fatal(err)
	}
	d, err := c.Submit(ctx, targetSpec())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Cancel(ctx, d.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Wait(ctx, blocker.ID); err != nil {
		t.Fatal(err)
	}
	// Give the worker a moment to pop and skip the abandoned flight.
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := srv.StatsSnapshot()
		if st.InFlight == 0 {
			if st.EngineRuns != 1 {
				t.Errorf("engine_runs = %d, want 1 (the blocker only)", st.EngineRuns)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("abandoned flight never drained: %+v", st)
		}
		time.Sleep(2 * time.Millisecond)
	}
	// Canceling again conflicts.
	if _, err := c.Cancel(ctx, d.ID); err == nil {
		t.Error("second cancel should conflict")
	} else if apiErr := new(client.APIError); !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusConflict {
		t.Errorf("second cancel error = %v, want HTTP 409", err)
	}
}

// TestCancelRunningJobAbortsSimulation: canceling the only submitter
// of a running job stops the engine at the next round boundary — a
// multi-second simulation must not hold up shutdown.
func TestCancelRunningJobAbortsSimulation(t *testing.T) {
	srv, c := newTestServer(t, service.Config{})
	ctx := context.Background()

	slow := awakemis.Spec{
		Name:    "marathon",
		Task:    "naive-greedy",
		Graph:   awakemis.GraphSpec{Family: "cycle", N: 4000}, // several seconds uncanceled
		Options: awakemis.Options{Seed: 9},
	}
	job, err := c.Submit(ctx, slow)
	if err != nil {
		t.Fatal(err)
	}
	// Wait until the worker picks it up.
	deadline := time.Now().Add(10 * time.Second)
	for {
		j, err := c.Job(ctx, job.ID)
		if err != nil {
			t.Fatal(err)
		}
		if j.Status == client.JobRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never started running (status %s)", j.Status)
		}
		time.Sleep(2 * time.Millisecond)
	}
	start := time.Now()
	if _, err := c.Cancel(ctx, job.ID); err != nil {
		t.Fatal(err)
	}
	// Shutdown only returns once the worker is idle; if the run were
	// not aborted this would take the simulation's full several
	// seconds.
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Errorf("cancel-to-idle took %v; the run was not aborted", elapsed)
	}
}

// TestQueueFullRejects: a submission needing a new simulation when
// the queue is full gets 503; duplicates of queued work still attach.
func TestQueueFullRejects(t *testing.T) {
	_, c := newTestServer(t, service.Config{QueueSize: 1})
	// This test observes the raw queue-full 503 (the client's backoff,
	// tested in client/retry_test.go, would mask it by retrying until
	// the blocker finishes).
	c.MaxRetries = -1
	ctx := context.Background()

	blocker, err := c.Submit(ctx, blockerSpec(3000))
	if err != nil {
		t.Fatal(err)
	}
	// Wait until the blocker occupies the worker, freeing its queue
	// slot.
	deadline := time.Now().Add(10 * time.Second)
	for {
		j, err := c.Job(ctx, blocker.ID)
		if err != nil {
			t.Fatal(err)
		}
		if j.Status == client.JobRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("blocker never started")
		}
		time.Sleep(2 * time.Millisecond)
	}
	queued, err := c.Submit(ctx, targetSpec()) // fills the slot
	if err != nil {
		t.Fatal(err)
	}
	other := targetSpec()
	other.Options.Seed = 999 // distinct content address: needs a new slot
	_, err = c.Submit(ctx, other)
	apiErr := new(client.APIError)
	if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("overflow submit error = %v, want HTTP 503", err)
	}
	if !apiErr.IsRetryable() {
		t.Error("queue-full error should be retryable")
	}
	// A duplicate of the queued spec coalesces instead of overflowing.
	dup, err := c.Submit(ctx, targetSpec())
	if err != nil {
		t.Fatalf("duplicate of queued spec rejected: %v", err)
	}
	// Canceling every waiter of the queued flight frees its slot
	// immediately — the rejected spec now fits without waiting for the
	// busy worker.
	if _, err := c.Cancel(ctx, queued.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Cancel(ctx, dup.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Submit(ctx, other); err != nil {
		t.Errorf("slot not freed by canceling the queued flight: %v", err)
	}
}

// TestSubmitValidation: malformed specs are 400s with ErrInvalidSpec
// discrimination, not 500s.
func TestSubmitValidation(t *testing.T) {
	srv, c := newTestServer(t, service.Config{})
	ctx := context.Background()

	bad := awakemis.Spec{Task: "no-such-task"}
	_, err := c.Submit(ctx, bad)
	apiErr := new(client.APIError)
	if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown task: %v, want HTTP 400", err)
	}
	if !strings.Contains(apiErr.Message, "unknown task") {
		t.Errorf("error message %q not descriptive", apiErr.Message)
	}
	// Direct API surface agrees.
	if _, err := srv.Submit(bad); !errors.Is(err, awakemis.ErrInvalidSpec) {
		t.Errorf("Server.Submit = %v, want ErrInvalidSpec", err)
	}
	// Nothing was spent on the bad spec.
	if st := srv.StatsSnapshot(); st.JobsSubmitted != 0 || st.EngineRuns != 0 {
		t.Errorf("bad specs counted: %+v", st)
	}
}

// TestRunAndRegistryEndpoints covers the client's high-level Run plus
// /v1/tasks and /v1/healthz.
func TestRunAndRegistryEndpoints(t *testing.T) {
	_, c := newTestServer(t, service.Config{})
	ctx := context.Background()

	if _, err := c.Health(ctx); err != nil {
		t.Fatalf("health: %v", err)
	}
	infos, err := c.Tasks(ctx)
	if err != nil {
		t.Fatal(err)
	}
	want := awakemis.Tasks()
	if len(infos) != len(want) {
		t.Fatalf("%d tasks over the wire, registry has %d", len(infos), len(want))
	}
	for i, info := range infos {
		if info.Name != want[i].Name || info.Kind != want[i].Kind {
			t.Errorf("task %d = %s/%s, want %s/%s", i, info.Name, info.Kind, want[i].Name, want[i].Kind)
		}
	}

	rep, err := c.Run(ctx, targetSpec())
	if err != nil {
		t.Fatal(err)
	}
	local, err := awakemis.Run(context.Background(), service.Canonicalize(targetSpec()))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Task != local.Task || rep.Seed != local.Seed || rep.Metrics.MaxAwake != local.Metrics.MaxAwake || !rep.Verified {
		t.Errorf("remote report diverges from local run:\n%+v\nvs\n%+v", rep, local)
	}
}

// TestGracefulDrain: Shutdown finishes queued work, then the server
// refuses new submissions and reports draining health.
func TestGracefulDrain(t *testing.T) {
	srv := service.New(service.Config{Workers: 1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	c := client.New(ts.URL, ts.Client())
	c.PollInterval = 5 * time.Millisecond
	ctx := context.Background()

	jobs := make([]service.Job, 3)
	for i := range jobs {
		spec := targetSpec()
		spec.Options.Seed = int64(i + 1) // three distinct queued runs
		job, err := srv.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		jobs[i] = job
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	// Every queued job was drained to completion, not abandoned.
	for i, job := range jobs {
		final, ok := srv.Lookup(job.ID)
		if !ok || final.Status != service.JobDone {
			t.Errorf("job %d after drain: %+v", i, final)
		}
	}
	// New work is refused on both surfaces, and health reports it.
	if _, err := srv.Submit(targetSpec()); !errors.Is(err, service.ErrUnavailable) {
		t.Errorf("post-drain Submit = %v, want ErrUnavailable", err)
	}
	_, err := c.Health(ctx)
	apiErr := new(client.APIError)
	if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("post-drain health = %v, want HTTP 503", err)
	}
	st := srv.StatsSnapshot()
	if !st.Draining || st.JobsCompleted != 3 {
		t.Errorf("post-drain stats: %+v", st)
	}
}
