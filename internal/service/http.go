package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"awakemis"
	"awakemis/internal/buildinfo"
	"awakemis/internal/traceid"
)

// Sentinel errors the API layer maps to HTTP statuses; together with
// awakemis.ErrInvalidSpec (400) they give callers of Submit/Cancel the
// same discrimination the HTTP client gets.
var (
	// ErrUnavailable: the server is draining or the queue is full (503).
	ErrUnavailable = errors.New("service unavailable")
	// ErrNotFound: no such job (404).
	ErrNotFound = errors.New("not found")
	// ErrConflict: the job is already in a terminal state (409).
	ErrConflict = errors.New("conflict")
)

// ErrOverloaded is the queue-full case of ErrUnavailable: transient
// by construction, so its 503 carries a Retry-After header and the
// client package backs off and retries. A draining 503 deliberately
// does not — the server is going away, retrying it is futile.
var ErrOverloaded = fmt.Errorf("%w: overloaded", ErrUnavailable)

// TaskInfo is the /v1/tasks wire view of one registry entry.
type TaskInfo struct {
	Name     string `json:"name"`
	Kind     string `json:"kind"`
	Summary  string `json:"summary"`
	IDScheme string `json:"id_scheme"`
}

// apiError is the JSON error envelope every non-2xx response carries.
type apiError struct {
	Error string `json:"error"`
}

// statusWriter captures the response status for the request log while
// passing Flush through — the SSE stream needs the flusher even behind
// the middleware.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// middleware wraps every route with the cross-cutting request
// concerns: adopt (or mint) the X-Awakemis-Trace-Id header into the
// request context and echo it on the response, emit one structured
// request record, and — when metrics are on — feed the per-route
// latency histogram. The route label is the matched ServeMux pattern
// ("POST /v1/jobs", "GET /v1/jobs/{id}", ...), so path parameters
// never explode label cardinality; unmatched requests group under
// "other".
func (s *Server) middleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		id := traceid.FromRequest(r)
		if id == "" {
			id = traceid.New()
		}
		w.Header().Set(traceid.Header, id)
		r = r.WithContext(traceid.With(r.Context(), id))
		sw := &statusWriter{ResponseWriter: w}
		next.ServeHTTP(sw, r)
		route := r.Pattern
		if route == "" {
			route = "other"
		}
		elapsed := time.Since(start)
		if s.metrics != nil {
			s.metrics.observe(route, elapsed.Seconds())
		}
		status := sw.status
		if status == 0 {
			status = http.StatusOK
		}
		s.logger.Info("http request",
			"trace_id", id, "method", r.Method, "path", r.URL.Path,
			"route", route, "status", status, "duration_ns", elapsed.Nanoseconds())
	})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		http.Error(w, `{"error":"encoding response"}`, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(data)
}

// writeError maps an error to its HTTP status: 400 for malformed
// specs, 503 for drain/overload (queue-full 503s add Retry-After so
// clients know backing off can succeed), 404/409 for job lookups,
// 500 otherwise.
func writeError(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	switch {
	case errors.Is(err, awakemis.ErrInvalidSpec):
		status = http.StatusBadRequest
	case errors.Is(err, ErrUnavailable):
		status = http.StatusServiceUnavailable
		if errors.Is(err, ErrOverloaded) {
			w.Header().Set("Retry-After", "1")
		}
	case errors.Is(err, ErrNotFound):
		status = http.StatusNotFound
	case errors.Is(err, ErrConflict):
		status = http.StatusConflict
	}
	writeJSON(w, status, apiError{Error: err.Error()})
}

// handleSubmit is POST /v1/jobs: the body is one Spec. Responds 200
// with a terminal job on a cache hit, 202 with a queued/running job
// otherwise.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	var spec awakemis.Spec
	if err := dec.Decode(&spec); err != nil {
		writeError(w, fmt.Errorf("%w: decoding spec: %s", awakemis.ErrInvalidSpec, err))
		return
	}
	job, err := s.SubmitTraced(spec, traceid.From(r.Context()))
	if err != nil {
		writeError(w, err)
		return
	}
	status := http.StatusAccepted
	if job.Status.terminal() {
		status = http.StatusOK
	}
	writeJSON(w, status, job)
}

// handleGetJob is GET /v1/jobs/{id}.
func (s *Server) handleGetJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	job, ok := s.Lookup(id)
	if !ok {
		writeError(w, fmt.Errorf("%w: no job %s", ErrNotFound, id))
		return
	}
	writeJSON(w, http.StatusOK, job)
}

// handleCancelJob is DELETE /v1/jobs/{id}.
func (s *Server) handleCancelJob(w http.ResponseWriter, r *http.Request) {
	job, err := s.Cancel(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, job)
}

// handleSubmitStudy is POST /v1/studies: the body is one StudySpec.
// Always 202 — studies expand and aggregate asynchronously; poll GET
// /v1/studies/{id} until terminal (sub-runs served from cache resolve
// near-instantly, but the artifact is still assembled off-request).
func (s *Server) handleSubmitStudy(w http.ResponseWriter, r *http.Request) {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	var ss awakemis.StudySpec
	if err := dec.Decode(&ss); err != nil {
		writeError(w, fmt.Errorf("%w: decoding study spec: %s", awakemis.ErrInvalidSpec, err))
		return
	}
	study, err := s.SubmitStudyTraced(ss, traceid.From(r.Context()))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, study)
}

// handleListStudies is GET /v1/studies: every queryable study
// newest-first, Results stripped (fetch an artifact by id).
func (s *Server) handleListStudies(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.ListStudies())
}

// handleGetStudy is GET /v1/studies/{id}.
func (s *Server) handleGetStudy(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	study, ok := s.LookupStudy(id)
	if !ok {
		writeError(w, fmt.Errorf("%w: no study %s", ErrNotFound, id))
		return
	}
	writeJSON(w, http.StatusOK, study)
}

// handleCancelStudy is DELETE /v1/studies/{id}.
func (s *Server) handleCancelStudy(w http.ResponseWriter, r *http.Request) {
	study, err := s.CancelStudy(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, study)
}

// handleTasks is GET /v1/tasks: the task registry.
func (s *Server) handleTasks(w http.ResponseWriter, _ *http.Request) {
	tasks := awakemis.Tasks()
	infos := make([]TaskInfo, len(tasks))
	for i, t := range tasks {
		infos[i] = TaskInfo{Name: t.Name, Kind: t.Kind, Summary: t.Summary, IDScheme: t.IDScheme}
	}
	writeJSON(w, http.StatusOK, infos)
}

// handleStats is GET /v1/stats.
func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.StatsSnapshot())
}

// healthPayload is the /v1/healthz body: liveness plus the build
// identity of the serving binary, so every daemon in a cluster can be
// identified from the outside.
type healthPayload struct {
	Status string `json:"status"`
	buildinfo.Info
}

// handleHealthz is GET /v1/healthz: 200 while serving, 503 while
// draining; either way the body carries the daemon's build info.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	payload := healthPayload{Status: "ok", Info: buildinfo.Get()}
	if draining {
		payload.Status = "draining"
		writeJSON(w, http.StatusServiceUnavailable, payload)
		return
	}
	writeJSON(w, http.StatusOK, payload)
}
