package prob

import (
	"math"
	"math/rand"
	"testing"
)

// TestLemma1LowerTailEmpirical validates the first Chernoff inequality
// of Lemma 1 against simulation: the empirical frequency of the lower
// tail never exceeds the bound (up to sampling noise).
func TestLemma1LowerTailEmpirical(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	k, p := 400, 0.5
	for _, delta := range []float64{0.2, 0.4, 0.6} {
		bound := ChernoffLower(k, p, delta)
		threshold := (1 - delta) * p * float64(k)
		trials := 20000
		hits := 0
		for trial := 0; trial < trials; trial++ {
			sum := 0
			for i := 0; i < k; i++ {
				if rng.Float64() < p {
					sum++
				}
			}
			if float64(sum) <= threshold {
				hits++
			}
		}
		freq := float64(hits) / float64(trials)
		if freq > bound+0.01 {
			t.Errorf("δ=%.1f: empirical lower tail %.4f exceeds Chernoff bound %.4f",
				delta, freq, bound)
		}
	}
}

// TestLemma1UpperTailEmpirical does the same for the second inequality.
func TestLemma1UpperTailEmpirical(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	k, p := 400, 0.5
	for _, delta := range []float64{0.2, 0.5, 1.0} {
		bound := ChernoffUpper(k, p, delta)
		threshold := (1 + delta) * p * float64(k)
		trials := 20000
		hits := 0
		for trial := 0; trial < trials; trial++ {
			sum := 0
			for i := 0; i < k; i++ {
				if rng.Float64() < p {
					sum++
				}
			}
			if float64(sum) >= threshold {
				hits++
			}
		}
		freq := float64(hits) / float64(trials)
		if freq > bound+0.01 {
			t.Errorf("δ=%.1f: empirical upper tail %.4f exceeds Chernoff bound %.4f",
				delta, freq, bound)
		}
	}
}

func TestChernoffEdgeCases(t *testing.T) {
	if b := ChernoffLower(-1, 0.5, 0.5); b != 1 {
		t.Errorf("negative k should give trivial bound, got %v", b)
	}
	if b := ChernoffLower(10, 0.5, 1.5); b != 1 {
		t.Errorf("δ>1 should give trivial bound, got %v", b)
	}
	if b := ChernoffUpper(10, 2, 0.5); b != 1 {
		t.Errorf("p>1 should give trivial bound, got %v", b)
	}
	if b := ChernoffUpper(10, 0.5, -0.1); b != 1 {
		t.Errorf("δ<0 should give trivial bound, got %v", b)
	}
	// Bounds decay with k.
	if ChernoffLower(1000, 0.5, 0.5) >= ChernoffLower(100, 0.5, 0.5) {
		t.Error("bound should tighten with more samples")
	}
}

func TestBatchPopulationBounds(t *testing.T) {
	lo, hi, errProb := BatchPopulationBounds(100)
	if lo != 50 || hi != 150 {
		t.Errorf("bounds = [%v, %v], want [50, 150]", lo, hi)
	}
	if errProb <= 0 || errProb >= 1 {
		t.Errorf("errProb = %v", errProb)
	}
	// Larger means concentrate better.
	_, _, e1 := BatchPopulationBounds(10)
	_, _, e2 := BatchPopulationBounds(1000)
	if e2 >= e1 {
		t.Error("concentration should improve with mean")
	}
}

func TestShatterTailMatchesLemma3(t *testing.T) {
	// The lemma's constant: P[C' ≥ 6·ln(n/ε)] ≤ ε/n.
	n, eps := 1024, 0.001
	k := int(math.Ceil(ShatterBound(n, eps)))
	if got := ShatterTail(k); got > eps/float64(n)*1.01 {
		t.Errorf("ShatterTail(%d) = %v, want ≤ %v", k, got, eps/float64(n))
	}
	if ShatterTail(0) != 1 {
		t.Error("k=0 should be trivial")
	}
}

func TestResidualBound(t *testing.T) {
	// Matches Lemma 2's expression.
	got := ResidualBound(100, 400, 1000, 0.001)
	want := 4 * math.Log(1000/0.001)
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("ResidualBound = %v, want %v", got, want)
	}
	if ResidualBound(0, 5, 10, 0.1) != 0 {
		t.Error("invalid args should give 0")
	}
	if ResidualBound(10, 5, 10, 0.1) != 0 {
		t.Error("t' < t should give 0")
	}
}

func TestUnionBound(t *testing.T) {
	if got := UnionBound(0.1, 0.2, 0.05); math.Abs(got-0.35) > 1e-12 {
		t.Errorf("UnionBound = %v", got)
	}
	if got := UnionBound(0.9, 0.9); got != 1 {
		t.Errorf("UnionBound should clamp at 1, got %v", got)
	}
	if got := UnionBound(); got != 0 {
		t.Errorf("empty UnionBound = %v", got)
	}
}

func TestTheorem13Failure(t *testing.T) {
	// With the default-scale constants the failure estimate must be
	// well below 1 for moderate n, and decrease as populations grow.
	f1 := Theorem13Failure(1024, 7, 84, 10*math.Log(1024))
	f2 := Theorem13Failure(1024, 7, 84, 40*math.Log(1024))
	if f2 >= f1 {
		t.Errorf("larger populations should reduce failure: %v vs %v", f1, f2)
	}
}

func TestIDCollisionProb(t *testing.T) {
	if p := IDCollisionProb(1024, 1<<30); p > 0.001 {
		t.Errorf("collision prob %v too high for N^3 space", p)
	}
	if p := IDCollisionProb(100, 0); p != 1 {
		t.Errorf("zero space should be certain collision, got %v", p)
	}
	if p := IDCollisionProb(1<<20, 4); p != 1 {
		t.Errorf("overfull space should clamp to 1, got %v", p)
	}
}
