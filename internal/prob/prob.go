// Package prob implements the probabilistic toolkit of §4.2: the two
// Chernoff bounds of Lemma 1 (used throughout the paper's analysis),
// tail-probability calculators for the batch-population and shattering
// arguments, and helpers for choosing Awake-MIS constants so that the
// high-probability events of Theorem 13 hold at a target error rate.
package prob

import (
	"fmt"
	"math"
)

// ChernoffLower bounds P[Σ Xᵢ ≤ (1−δ)·pk] ≤ exp(−δ²kp/2) for k i.i.d.
// Bernoulli(p) variables and 0 ≤ δ ≤ 1 (Lemma 1, first inequality).
func ChernoffLower(k int, p, delta float64) float64 {
	if err := checkArgs(k, p); err != nil || delta < 0 || delta > 1 {
		return 1
	}
	return math.Exp(-delta * delta * float64(k) * p / 2)
}

// ChernoffUpper bounds P[Σ Xᵢ ≥ (1+δ)·pk] ≤ exp(−δ²kp/(2+δ)) for δ ≥ 0
// (Lemma 1, second inequality, via ln(1+δ) ≥ 2δ/(2+δ)).
func ChernoffUpper(k int, p, delta float64) float64 {
	if err := checkArgs(k, p); err != nil || delta < 0 {
		return 1
	}
	return math.Exp(-delta * delta * float64(k) * p / (2 + delta))
}

func checkArgs(k int, p float64) error {
	if k < 0 || p < 0 || p > 1 {
		return fmt.Errorf("prob: invalid k=%d p=%v", k, p)
	}
	return nil
}

// BatchPopulationBounds returns the [lo, hi] range that |V_i| — the
// number of nodes in batch levels 1..i of Awake-MIS — stays within,
// except with probability at most 2·exp(−mean/10), following the
// Theorem 13 proof (δ = 1/2 on both tails).
func BatchPopulationBounds(mean float64) (lo, hi, errProb float64) {
	lo = mean / 2
	hi = 3 * mean / 2
	errProb = math.Exp(-mean/10) + math.Exp(-mean/8)
	return lo, hi, errProb
}

// ShatterTail bounds the probability that the branching process of
// Lemma 3 survives k steps: P[C′ ≥ k] ≤ exp(−k/6).
func ShatterTail(k int) float64 {
	if k <= 0 {
		return 1
	}
	return math.Exp(-float64(k) / 6)
}

// ShatterBound returns the component-size bound 6·ln(n/ε) of Lemma 3.
func ShatterBound(n int, eps float64) float64 {
	if n < 1 || eps <= 0 {
		return 0
	}
	return 6 * math.Log(float64(n)/eps)
}

// ResidualBound returns the degree bound (t′/t)·ln(n/ε) of Lemma 2.
func ResidualBound(t, tPrime, n int, eps float64) float64 {
	if t < 1 || tPrime < t || n < 1 || eps <= 0 {
		return 0
	}
	return float64(tPrime) / float64(t) * math.Log(float64(n)/eps)
}

// UnionBound combines per-event failure probabilities.
func UnionBound(probs ...float64) float64 {
	var sum float64
	for _, p := range probs {
		sum += p
	}
	if sum > 1 {
		return 1
	}
	return sum
}

// Theorem13Failure estimates the total failure probability of one
// Awake-MIS execution with the given derived quantities, by summing the
// per-phase events the proof union-bounds: batch-population
// concentration, residual degree, and shattering, per phase.
func Theorem13Failure(n, levels, batchesPerLevel int, meanLevelPop float64) float64 {
	_, _, popErr := BatchPopulationBounds(meanLevelPop)
	perPhase := UnionBound(popErr, 1/float64(n*n*n), 1/float64(n*n*n))
	return UnionBound(perPhase * float64(levels*batchesPerLevel))
}

// IDCollisionProb bounds the probability that n uniform IDs from
// [1, space] collide (birthday bound n²/(2·space)).
func IDCollisionProb(n int, space int64) float64 {
	if space <= 0 {
		return 1
	}
	p := float64(n) * float64(n) / (2 * float64(space))
	if p > 1 {
		return 1
	}
	return p
}
