package vtmis

import (
	"testing"

	"awakemis/internal/graph"
	"awakemis/internal/misproto"
	"awakemis/internal/sim"
	"awakemis/internal/verify"
)

// TestBrokenScheduleFailsWithoutCommSets is the negative control for
// the whole sleeping model: a "VT-MIS" that drops the communication
// sets — each node wakes only in its own round — never has two
// neighbors awake simultaneously, so every state message is lost to a
// sleeping receiver, every node believes it is first, and the output
// violates independence. This proves the simulator actually enforces
// the model hazard the virtual-tree technique exists to solve (and that
// the verify oracle catches the failure).
func TestBrokenScheduleFailsWithoutCommSets(t *testing.T) {
	g := graph.Path(6)
	ids := []int{1, 2, 3, 4, 5, 6}
	in := make([]bool, g.N())
	prog := func(ctx *sim.Ctx) {
		id := ids[ctx.Node()]
		state := misproto.Undecided
		if id > 1 {
			ctx.SleepUntil(int64(id - 1)) // wake only in own round (round id-1)
		}
		ctx.Broadcast(misproto.StateMsg{State: state})
		inbox := ctx.Deliver()
		for _, m := range inbox {
			if sm, ok := m.Msg.(misproto.StateMsg); ok && sm.State == misproto.InMIS {
				state = misproto.NotInMIS
			}
		}
		if state == misproto.Undecided {
			state = misproto.InMIS
		}
		in[ctx.Node()] = state == misproto.InMIS
	}
	m, err := sim.Run(g, prog, sim.Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// All messages must have been lost: no round ever had two awake
	// neighbors (round 0 has node 0 awake... all nodes are awake at
	// round 0 by the model, so adjacent pairs DO share round 0 — but
	// nodes with id > 1 send nothing there and have not decided).
	if err := verify.CheckMIS(g, in); err == nil {
		t.Fatal("broken schedule produced a valid MIS; the sleeping hazard is not being enforced")
	}
	if m.MessagesDelivered >= m.MessagesSent {
		t.Errorf("expected message loss, got %d/%d delivered",
			m.MessagesDelivered, m.MessagesSent)
	}
	// The correct algorithm on the same instance succeeds.
	res, _, err := Run(g, ids, 6, sim.Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := verify.CheckMIS(g, res.InMIS); err != nil {
		t.Fatalf("correct VT-MIS failed on the control instance: %v", err)
	}
}

// TestSubProcedureComposition exercises RunSub's entry/exit contract
// directly: two consecutive VT-MIS instances on disjoint windows, the
// second on the residual graph semantics (decided nodes keep silent) —
// the composability property of §3 in distributed form.
func TestSubProcedureComposition(t *testing.T) {
	g := graph.Cycle(12)
	ids := make([]int, 12)
	for v := range ids {
		ids[v] = v + 1
	}
	in := make([]bool, g.N())
	prog := func(ctx *sim.Ctx) {
		state := misproto.Undecided
		ports := make([]int, ctx.Degree())
		for i := range ports {
			ports[i] = i
		}
		// First window: rounds 1..12.
		RunSub(ctx, 1, ids[ctx.Node()], 12, &state, ports)
		// Second window: rounds 101..112; decided nodes re-announce,
		// undecided nodes (there are none for MIS, but the contract
		// must hold) would decide here. States must be unchanged by a
		// second pass.
		before := state
		RunSub(ctx, 101, ids[ctx.Node()], 12, &state, ports)
		if state == misproto.Undecided {
			t.Errorf("node %d undecided after two windows", ctx.Node())
		}
		if before == misproto.InMIS && state != misproto.InMIS {
			t.Errorf("node %d left the MIS across windows", ctx.Node())
		}
		in[ctx.Node()] = state == misproto.InMIS
	}
	if _, err := sim.Run(g, prog, sim.Config{Seed: 2}); err != nil {
		t.Fatal(err)
	}
	if err := verify.CheckMIS(g, in); err != nil {
		t.Fatal(err)
	}
}
