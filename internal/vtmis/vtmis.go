// Package vtmis implements Algorithm VT-MIS (§5.3, Lemma 10): the
// awake-efficient distributed implementation of sequential greedy MIS.
// Given unique IDs in [1, I], the algorithm spans I rounds; a node with
// ID k is awake only in the rounds of its virtual-binary-tree
// communication set S_k([1, I]) ∪ {k} — O(log I) rounds — yet computes
// the lexicographically first MIS with respect to the ID order, because
// Observation 5 guarantees every ordered pair of neighbors shares an
// awake round between their two IDs.
package vtmis

import (
	"fmt"

	"awakemis/internal/graph"
	"awakemis/internal/misproto"
	"awakemis/internal/sim"
	"awakemis/internal/vtree"
)

// RunSub executes VT-MIS as a sub-procedure over algorithm rounds
// r ∈ [1, idBound] mapped to simulator rounds base+r-1.
//
// Contract: the caller must be in an awake round strictly before base;
// RunSub ends that round. On return the node has finished the receive
// step of its last awake round, and the caller must end that round
// (sleep, advance, or return from the program).
//
// id is the node's unique ID in [1, idBound]; state is read and
// updated in place; ports lists the ports on which participating
// neighbors are reachable (every participant must use a port list that
// includes all participating neighbors).
func RunSub(ctx *sim.Ctx, base int64, id, idBound int, state *misproto.State, ports []int) {
	rounds := vtree.AwakeRounds(id, idBound)
	first := true
	for _, r := range rounds {
		if *state == misproto.NotInMIS {
			break // nothing left to learn or announce
		}
		target := base + int64(r) - 1
		if first {
			ctx.SleepUntil(target)
			first = false
		} else if target > ctx.Round() {
			ctx.SleepUntil(target)
		}
		for _, p := range ports {
			ctx.Send(p, misproto.StateMsg{State: *state})
		}
		in := ctx.Deliver()
		if *state == misproto.Undecided {
			for _, m := range in {
				if sm, ok := m.Msg.(misproto.StateMsg); ok && sm.State == misproto.InMIS {
					*state = misproto.NotInMIS
					break
				}
			}
		}
		if r == id && *state == misproto.Undecided {
			*state = misproto.InMIS
		}
	}
	if first {
		// The node never woke (possible only for an already-decided
		// NotInMIS node); put it at base so the caller's exit contract
		// ("in an awake round") holds.
		ctx.SleepUntil(base)
		ctx.Deliver()
	}
}

// Result collects the standalone algorithm's output.
type Result struct {
	InMIS []bool
}

// Run executes standalone VT-MIS on g with the given unique IDs in
// [1, idBound]. All nodes participate on all ports. Round 0 is the
// model's initial all-awake round; the algorithm occupies rounds
// 1..idBound.
func Run(g *graph.Graph, ids []int, idBound int, cfg sim.Config) (*Result, *sim.Metrics, error) {
	if err := CheckIDs(g.N(), ids, idBound); err != nil {
		return nil, nil, err
	}
	res := &Result{InMIS: make([]bool, g.N())}
	prog := func(ctx *sim.Ctx) {
		state := misproto.Undecided
		ports := make([]int, ctx.Degree())
		for i := range ports {
			ports[i] = i
		}
		RunSub(ctx, 1, ids[ctx.Node()], idBound, &state, ports)
		res.InMIS[ctx.Node()] = state == misproto.InMIS
	}
	m, err := sim.Run(g, prog, cfg)
	return res, m, err
}

// CheckIDs validates that ids are unique and within [1, idBound].
func CheckIDs(n int, ids []int, idBound int) error {
	if len(ids) != n {
		return fmt.Errorf("vtmis: %d ids for %d nodes", len(ids), n)
	}
	seen := make(map[int]bool, n)
	for v, id := range ids {
		if id < 1 || id > idBound {
			return fmt.Errorf("vtmis: node %d id %d outside [1,%d]", v, id, idBound)
		}
		if seen[id] {
			return fmt.Errorf("vtmis: duplicate id %d", id)
		}
		seen[id] = true
	}
	return nil
}
