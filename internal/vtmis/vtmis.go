// Package vtmis implements Algorithm VT-MIS (§5.3, Lemma 10): the
// awake-efficient distributed implementation of sequential greedy MIS.
// Given unique IDs in [1, I], the algorithm spans I rounds; a node with
// ID k is awake only in the rounds of its virtual-binary-tree
// communication set S_k([1, I]) ∪ {k} — O(log I) rounds — yet computes
// the lexicographically first MIS with respect to the ID order, because
// Observation 5 guarantees every ordered pair of neighbors shares an
// awake round between their two IDs.
package vtmis

import (
	"context"
	"fmt"

	"awakemis/internal/graph"
	"awakemis/internal/misproto"
	"awakemis/internal/sim"
	"awakemis/internal/vtree"
)

// RunSub executes VT-MIS as a sub-procedure over algorithm rounds
// r ∈ [1, idBound] mapped to simulator rounds base+r-1.
//
// Contract: the caller must be in an awake round strictly before base;
// RunSub ends that round. On return the node has finished the receive
// step of its last awake round, and the caller must end that round
// (sleep, advance, or return from the program).
//
// id is the node's unique ID in [1, idBound]; state is read and
// updated in place; ports lists the ports on which participating
// neighbors are reachable (every participant must use a port list that
// includes all participating neighbors).
func RunSub(ctx *sim.Ctx, base int64, id, idBound int, state *misproto.State, ports []int) {
	rounds := vtree.AwakeRounds(id, idBound)
	first := true
	for _, r := range rounds {
		if *state == misproto.NotInMIS {
			break // nothing left to learn or announce
		}
		target := base + int64(r) - 1
		if first {
			ctx.SleepUntil(target)
			first = false
		} else if target > ctx.Round() {
			ctx.SleepUntil(target)
		}
		for _, p := range ports {
			ctx.Send(p, misproto.StateMsg{State: *state})
		}
		in := ctx.Deliver()
		if *state == misproto.Undecided {
			for _, m := range in {
				if sm, ok := m.Msg.(misproto.StateMsg); ok && sm.State == misproto.InMIS {
					*state = misproto.NotInMIS
					break
				}
			}
		}
		if r == id && *state == misproto.Undecided {
			*state = misproto.InMIS
		}
	}
	if first {
		// The node never woke (possible only for an already-decided
		// NotInMIS node); put it at base so the caller's exit contract
		// ("in an awake round") holds.
		ctx.SleepUntil(base)
		ctx.Deliver()
	}
}

// RunSubStep is RunSub in continuation-passing step form, for callers
// that compose VT-MIS into a sim.Machine-driven StepNode (LDT-MIS's
// final window). Entry/exit contract matches RunSub: call it at the end
// of an awake round strictly before base; k runs inside the final awake
// round's receive continuation. It attends the same rounds, sends the
// same messages, and leaves *state identical to RunSub.
func RunSubStep(m *sim.Machine, base int64, id, idBound int, state *misproto.State, ports []int, k func()) {
	rounds := vtree.AwakeRounds(id, idBound)
	var attend func(idx int)
	attend = func(idx int) {
		if idx >= len(rounds) || *state == misproto.NotInMIS {
			if idx == 0 {
				// The node never woke (possible only for an already-decided
				// NotInMIS node); park it at base so the caller's exit
				// contract ("in an awake round") holds.
				m.Yield(base, nil, func([]sim.Inbound) { k() })
				return
			}
			k()
			return
		}
		r := rounds[idx]
		m.Yield(base+int64(r)-1, func(out *sim.Outbox) {
			for _, p := range ports {
				out.Send(p, misproto.StateMsg{State: *state})
			}
		}, func(in []sim.Inbound) {
			if *state == misproto.Undecided {
				for _, msg := range in {
					if sm, ok := msg.Msg.(misproto.StateMsg); ok && sm.State == misproto.InMIS {
						*state = misproto.NotInMIS
						break
					}
				}
			}
			if r == id && *state == misproto.Undecided {
				*state = misproto.InMIS
			}
			attend(idx + 1)
		})
	}
	attend(0)
}

// Result collects the standalone algorithm's output.
type Result struct {
	InMIS []bool
}

// Program returns the standalone per-node program in goroutine form
// (all nodes participate on all ports, rounds 1..idBound after the
// model's initial all-awake round 0).
func Program(res *Result, ids []int, idBound int) sim.Program {
	return func(ctx *sim.Ctx) {
		state := misproto.Undecided
		ports := make([]int, ctx.Degree())
		for i := range ports {
			ports[i] = i
		}
		RunSub(ctx, 1, ids[ctx.Node()], idBound, &state, ports)
		res.InMIS[ctx.Node()] = state == misproto.InMIS
	}
}

// stepNode is the state-machine form of Program: the node attends
// exactly the rounds of its communication set S_id([1,I]) ∪ {id}, and
// each attended round's broadcast is staged at the previous one (the
// state it announces can only have changed during attended rounds).
// Both forms run bit-identically.
type stepNode struct {
	res    *Result
	node   int
	id     int
	state  misproto.State
	rounds []int // vtree.AwakeRounds(id, idBound); sim round r-1+base, base=1
	idx    int
}

// StepProgram returns the standalone per-node program in step form.
func StepProgram(res *Result, ids []int, idBound int) sim.StepProgram {
	return func(env *sim.NodeEnv) sim.StepNode {
		return &stepNode{
			res:    res,
			node:   env.ID,
			id:     ids[env.ID],
			rounds: vtree.AwakeRounds(ids[env.ID], idBound),
		}
	}
}

func (n *stepNode) Start(out *sim.Outbox) {
	// Round 0 (the model's initial all-awake round) sends nothing; the
	// first communication-set round is staged from OnWake(0).
}

func (n *stepNode) OnWake(round int64, inbox []sim.Inbound, out *sim.Outbox) (int64, bool) {
	if round > 0 {
		// An attended communication round r = rounds[idx].
		r := n.rounds[n.idx]
		if n.state == misproto.Undecided {
			for _, m := range inbox {
				if sm, ok := m.Msg.(misproto.StateMsg); ok && sm.State == misproto.InMIS {
					n.state = misproto.NotInMIS
					break
				}
			}
		}
		if r == n.id && n.state == misproto.Undecided {
			n.state = misproto.InMIS
		}
		n.idx++
		if n.state == misproto.NotInMIS || n.idx == len(n.rounds) {
			n.res.InMIS[n.node] = n.state == misproto.InMIS
			return 0, true
		}
	}
	out.Broadcast(misproto.StateMsg{State: n.state})
	return int64(n.rounds[n.idx]), false // base 1: round r is sim round r
}

// Run executes standalone VT-MIS on g with the given unique IDs in
// [1, idBound]. All nodes participate on all ports. Round 0 is the
// model's initial all-awake round; the algorithm occupies rounds
// 1..idBound.
func Run(g *graph.Graph, ids []int, idBound int, cfg sim.Config) (*Result, *sim.Metrics, error) {
	return RunContext(context.Background(), g, ids, idBound, cfg)
}

// RunContext is Run under a context; cancellation aborts the
// simulation at the next round boundary.
func RunContext(ctx context.Context, g *graph.Graph, ids []int, idBound int, cfg sim.Config) (*Result, *sim.Metrics, error) {
	if err := CheckIDs(g.N(), ids, idBound); err != nil {
		return nil, nil, err
	}
	res := &Result{InMIS: make([]bool, g.N())}
	m, err := sim.RunStepContext(ctx, g, StepProgram(res, ids, idBound), cfg)
	return res, m, err
}

// CheckIDs validates that ids are unique and within [1, idBound].
func CheckIDs(n int, ids []int, idBound int) error {
	if len(ids) != n {
		return fmt.Errorf("vtmis: %d ids for %d nodes", len(ids), n)
	}
	seen := make(map[int]bool, n)
	for v, id := range ids {
		if id < 1 || id > idBound {
			return fmt.Errorf("vtmis: node %d id %d outside [1,%d]", v, id, idBound)
		}
		if seen[id] {
			return fmt.Errorf("vtmis: duplicate id %d", id)
		}
		seen[id] = true
	}
	return nil
}
