package vtmis

import (
	"math/rand"
	"testing"
	"testing/quick"

	"awakemis/internal/graph"
	"awakemis/internal/sim"
	"awakemis/internal/verify"
	"awakemis/internal/vtree"
)

func permIDs(n int, rng *rand.Rand) ([]int, []int) {
	perm := rng.Perm(n)
	ids := make([]int, n)
	order := make([]int, n)
	for v, p := range perm {
		ids[v] = p + 1
		order[p] = v
	}
	return ids, order
}

func TestVTMISComputesLFMIS(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	graphs := map[string]*graph.Graph{
		"cycle":    graph.Cycle(33),
		"path":     graph.Path(16),
		"complete": graph.Complete(10),
		"star":     graph.Star(21),
		"gnp":      graph.GNP(80, 0.1, rng),
		"tree":     graph.RandomTree(64, rng),
		"disjoint": graph.DisjointUnion(graph.Cycle(7), graph.Path(5)),
	}
	for name, g := range graphs {
		t.Run(name, func(t *testing.T) {
			ids, order := permIDs(g.N(), rng)
			res, m, err := Run(g, ids, g.N(), sim.Config{Seed: 11, Strict: true})
			if err != nil {
				t.Fatal(err)
			}
			if err := verify.CheckLFMIS(g, res.InMIS, order); err != nil {
				t.Fatal(err)
			}
			// Lemma 10: O(log I) awake complexity. Each node is awake in
			// at most ⌈log I⌉ + 1 algorithm rounds, plus the initial
			// all-awake model round.
			bound := int64(vtree.Depth(g.N()) + 2)
			if m.MaxAwake > bound {
				t.Errorf("MaxAwake = %d > bound %d", m.MaxAwake, bound)
			}
			// Round complexity is O(I).
			if m.Rounds > int64(g.N())+1 {
				t.Errorf("Rounds = %d > I+1 = %d", m.Rounds, g.N()+1)
			}
		})
	}
}

func TestVTMISSparseIDs(t *testing.T) {
	// IDs from a large space [1, I], I >> n, exercising the virtual-tree
	// schedule with gaps (the regime LDT-MIS improves on).
	rng := rand.New(rand.NewSource(4))
	g := graph.GNP(40, 0.15, rng)
	bound := 1 << 12
	perm := rng.Perm(bound)[:g.N()]
	ids := make([]int, g.N())
	for v := range ids {
		ids[v] = perm[v] + 1
	}
	res, m, err := Run(g, ids, bound, sim.Config{Seed: 13, Strict: true})
	if err != nil {
		t.Fatal(err)
	}
	// Order implied by IDs.
	type pair struct{ id, v int }
	pairs := make([]pair, g.N())
	for v := range ids {
		pairs[v] = pair{ids[v], v}
	}
	order := []int{}
	for id := 1; id <= bound; id++ {
		for _, p := range pairs {
			if p.id == id {
				order = append(order, p.v)
			}
		}
	}
	if err := verify.CheckLFMIS(g, res.InMIS, order); err != nil {
		t.Fatal(err)
	}
	if m.MaxAwake > int64(vtree.Depth(bound)+2) {
		t.Errorf("MaxAwake = %d exceeds O(log I) bound %d", m.MaxAwake, vtree.Depth(bound)+2)
	}
}

// TestVTMISExponentiallyBetterThanNaive is the Lemma 10 headline: same
// output as the naive O(I)-awake algorithm with only O(log I) awake.
func TestVTMISAwakeVsRounds(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := 256
	g := graph.GNP(n, 0.05, rng)
	ids, _ := permIDs(n, rng)
	_, m, err := Run(g, ids, n, sim.Config{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if m.MaxAwake >= int64(n)/8 {
		t.Errorf("awake %d not exponentially below I=%d", m.MaxAwake, n)
	}
	if m.Rounds < int64(n)/2 {
		t.Errorf("rounds %d suspiciously low for I=%d", m.Rounds, n)
	}
}

func TestQuickVTMISMatchesSequential(t *testing.T) {
	f := func(seed int64, nn uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nn%30) + 1
		g := graph.GNP(n, 0.3, rng)
		ids, order := permIDs(n, rng)
		res, _, err := Run(g, ids, n, sim.Config{Seed: seed, Strict: true})
		if err != nil {
			return false
		}
		return verify.CheckLFMIS(g, res.InMIS, order) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestVTMISRejectsBadIDs(t *testing.T) {
	g := graph.Path(3)
	for _, ids := range [][]int{
		{1, 2},     // wrong length
		{1, 1, 2},  // duplicate
		{0, 1, 2},  // below range
		{1, 2, 99}, // above bound
	} {
		if _, _, err := Run(g, ids, 3, sim.Config{}); err == nil {
			t.Errorf("ids %v accepted", ids)
		}
	}
}

func TestVTMISSingleNode(t *testing.T) {
	g := graph.New(1)
	res, _, err := Run(g, []int{1}, 1, sim.Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.InMIS[0] {
		t.Error("single node must join MIS")
	}
}
