package luby

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"awakemis/internal/graph"
	"awakemis/internal/sim"
	"awakemis/internal/verify"
)

func TestLubyValidMIS(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	graphs := map[string]*graph.Graph{
		"cycle":    graph.Cycle(40),
		"path":     graph.Path(25),
		"complete": graph.Complete(15),
		"star":     graph.Star(30),
		"gnp":      graph.GNP(120, 0.08, rng),
		"tree":     graph.RandomTree(80, rng),
		"grid":     graph.Grid(9, 9),
		"isolated": graph.New(7),
		"disjoint": graph.DisjointUnion(graph.Cycle(5), graph.Complete(4), graph.New(2)),
	}
	for name, g := range graphs {
		t.Run(name, func(t *testing.T) {
			res, m, err := Run(g, sim.Config{Seed: 7, Strict: true})
			if err != nil {
				t.Fatal(err)
			}
			if err := verify.CheckMIS(g, res.InMIS); err != nil {
				t.Fatal(err)
			}
			if m.MaxAwake < 1 {
				t.Error("no node was ever awake")
			}
		})
	}
}

func TestLubyIsolatedNodesJoin(t *testing.T) {
	g := graph.New(5)
	res, m, err := Run(g, sim.Config{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for v, in := range res.InMIS {
		if !in {
			t.Errorf("isolated node %d not in MIS", v)
		}
	}
	if m.MaxAwake != 2 {
		t.Errorf("isolated nodes should decide in one iteration (2 awake rounds), got %d", m.MaxAwake)
	}
}

func TestLubyAwakeIsLogarithmic(t *testing.T) {
	// Luby's awake complexity grows like Θ(log n): verify it stays
	// within a generous constant of log₂ n on random graphs.
	for _, n := range []int{64, 256, 1024} {
		rng := rand.New(rand.NewSource(int64(n)))
		g := graph.GNP(n, 4/float64(n), rng)
		_, m, err := Run(g, sim.Config{Seed: int64(n)})
		if err != nil {
			t.Fatal(err)
		}
		bound := 8 * math.Log2(float64(n))
		if float64(m.MaxAwake) > bound {
			t.Errorf("n=%d: MaxAwake %d > %f", n, m.MaxAwake, bound)
		}
	}
}

func TestLubyDeterministicReplay(t *testing.T) {
	g := graph.Cycle(30)
	r1, m1, err := Run(g, sim.Config{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	r2, m2, err := Run(g, sim.Config{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	for v := range r1.InMIS {
		if r1.InMIS[v] != r2.InMIS[v] {
			t.Fatalf("replay diverged at node %d", v)
		}
	}
	if m1.Rounds != m2.Rounds || m1.TotalAwake != m2.TotalAwake {
		t.Error("replay metrics diverged")
	}
}

func TestQuickLubyAlwaysMIS(t *testing.T) {
	f := func(seed int64, nn uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nn%40) + 1
		g := graph.GNP(n, 0.25, rng)
		res, _, err := Run(g, sim.Config{Seed: seed, Strict: true})
		if err != nil {
			return false
		}
		return verify.CheckMIS(g, res.InMIS) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestLubyCongestCompliant(t *testing.T) {
	g := graph.Complete(20)
	_, m, err := Run(g, sim.Config{Seed: 3, Strict: true})
	if err != nil {
		t.Fatal(err)
	}
	if m.MaxMessageBits > sim.DefaultBandwidth(g.N()) {
		t.Errorf("message of %d bits exceeds bandwidth", m.MaxMessageBits)
	}
}
