// Package luby implements Luby's classical randomized MIS algorithm
// [Luby 1986; Alon–Babai–Itai 1986] as a SLEEPING-CONGEST program. It
// is the paper's main baseline: O(log n) rounds and — because a node
// must stay awake every round until it is decided — O(log n) awake
// complexity, the bound Awake-MIS improves exponentially.
package luby

import (
	"awakemis/internal/bitio"
	"awakemis/internal/graph"
	"awakemis/internal/sim"
)

// valueMsg carries a node's random value for one Luby iteration.
type valueMsg struct {
	Value int64
}

// Bits sizes the value field for the N^4 value space.
func (m valueMsg) Bits() int { return bitio.IntBits(m.Value) }

// joinMsg announces that the sender joined the MIS.
type joinMsg struct{}

// Bits returns the one-bit wire size.
func (m joinMsg) Bits() int { return 1 }

var (
	_ sim.Message = valueMsg{}
	_ sim.Message = joinMsg{}
)

// Result collects the algorithm's output.
type Result struct {
	InMIS []bool
}

// Program returns the per-node program writing into res (res.InMIS must
// have length n). Each iteration costs two rounds: a value-exchange
// round and a join-announcement round. Ties are broken conservatively
// (neither endpoint is a local minimum), which preserves independence;
// with values drawn from [0, N⁴) ties are rare.
func Program(res *Result) sim.Program {
	return func(ctx *sim.Ctx) {
		n4 := int64(ctx.N())
		n4 = n4 * n4 * n4 * n4
		if n4 < 1<<16 {
			n4 = 1 << 16
		}
		for {
			// Value round: only undecided nodes send.
			val := ctx.Rand().Int63n(n4)
			ctx.Broadcast(valueMsg{Value: val})
			in := ctx.Deliver()
			isMin := true
			for _, m := range in {
				if vm, ok := m.Msg.(valueMsg); ok && vm.Value <= val {
					isMin = false
					break
				}
			}
			ctx.Advance()

			// Join round: winners announce; losers listen.
			if isMin {
				res.InMIS[ctx.Node()] = true
				ctx.Broadcast(joinMsg{})
				ctx.Deliver()
				return // in MIS: halt (silence = inactive to neighbors)
			}
			in = ctx.Deliver()
			for _, m := range in {
				if _, ok := m.Msg.(joinMsg); ok {
					return // neighbor joined: we are notinMIS, halt
				}
			}
			ctx.Advance()
		}
	}
}

// Run executes Luby's algorithm on g and returns the MIS selection and
// metrics.
func Run(g *graph.Graph, cfg sim.Config) (*Result, *sim.Metrics, error) {
	res := &Result{InMIS: make([]bool, g.N())}
	m, err := sim.Run(g, Program(res), cfg)
	return res, m, err
}
