// Package luby implements Luby's classical randomized MIS algorithm
// [Luby 1986; Alon–Babai–Itai 1986] as a SLEEPING-CONGEST program. It
// is the paper's main baseline: O(log n) rounds and — because a node
// must stay awake every round until it is decided — O(log n) awake
// complexity, the bound Awake-MIS improves exponentially.
package luby

import (
	"awakemis/internal/bitio"
	"awakemis/internal/graph"
	"awakemis/internal/sim"
	"context"
)

// valueMsg carries a node's random value for one Luby iteration.
type valueMsg struct {
	Value int64
}

// Bits sizes the value field for the N^4 value space.
func (m valueMsg) Bits() int { return bitio.IntBits(m.Value) }

// joinMsg announces that the sender joined the MIS.
type joinMsg struct{}

// Bits returns the one-bit wire size.
func (m joinMsg) Bits() int { return 1 }

var (
	_ sim.Message = valueMsg{}
	_ sim.Message = joinMsg{}
)

// Result collects the algorithm's output.
type Result struct {
	InMIS []bool
}

// valueSpace returns the tie-avoiding value space [0, N⁴) (clamped up
// to 2¹⁶ for tiny N), shared by both program forms.
func valueSpace(n int) int64 {
	n4 := int64(n)
	n4 = n4 * n4 * n4 * n4
	if n4 < 1<<16 {
		n4 = 1 << 16
	}
	return n4
}

// Program returns the per-node program in goroutine form, writing into
// res (res.InMIS must have length n). Each iteration costs two rounds:
// a value-exchange round and a join-announcement round. Ties are broken
// conservatively (neither endpoint is a local minimum), which preserves
// independence; with values drawn from [0, N⁴) ties are rare.
func Program(res *Result) sim.Program {
	return func(ctx *sim.Ctx) {
		n4 := valueSpace(ctx.N())
		for {
			// Value round: only undecided nodes send.
			val := ctx.Rand().Int63n(n4)
			ctx.Broadcast(valueMsg{Value: val})
			in := ctx.Deliver()
			isMin := true
			for _, m := range in {
				if vm, ok := m.Msg.(valueMsg); ok && vm.Value <= val {
					isMin = false
					break
				}
			}
			ctx.Advance()

			// Join round: winners announce; losers listen.
			if isMin {
				res.InMIS[ctx.Node()] = true
				ctx.Broadcast(joinMsg{})
				ctx.Deliver()
				return // in MIS: halt (silence = inactive to neighbors)
			}
			in = ctx.Deliver()
			for _, m := range in {
				if _, ok := m.Msg.(joinMsg); ok {
					return // neighbor joined: we are notinMIS, halt
				}
			}
			ctx.Advance()
		}
	}
}

// stepNode is the state-machine form of Program: the two rounds of each
// iteration become two OnWake calls. The join-round broadcast is staged
// while processing the value round's inbox (it depends only on whether
// this node was the local minimum), and the next iteration's value is
// drawn while processing the join round — the same per-node RNG order
// as the goroutine form, so both forms run bit-identically.
type stepNode struct {
	res   *Result
	node  int
	env   *sim.NodeEnv
	n4    int64
	val   int64
	isMin bool
	join  bool // next OnWake is a join round
}

// StepProgram returns the per-node program in step form.
func StepProgram(res *Result) sim.StepProgram {
	return func(env *sim.NodeEnv) sim.StepNode {
		return &stepNode{res: res, node: env.ID, env: env, n4: valueSpace(env.N)}
	}
}

func (n *stepNode) Start(out *sim.Outbox) {
	n.val = n.env.Rand.Int63n(n.n4)
	out.Broadcast(valueMsg{Value: n.val})
}

func (n *stepNode) OnWake(round int64, inbox []sim.Inbound, out *sim.Outbox) (int64, bool) {
	if !n.join {
		// Value round: am I the local minimum among undecided neighbors?
		n.isMin = true
		for _, m := range inbox {
			if vm, ok := m.Msg.(valueMsg); ok && vm.Value <= n.val {
				n.isMin = false
				break
			}
		}
		n.join = true
		if n.isMin {
			n.res.InMIS[n.node] = true
			out.Broadcast(joinMsg{})
		}
		return round + 1, false
	}
	// Join round: winners halt after announcing; losers halt on hearing
	// a neighbor join, else start another iteration.
	if n.isMin {
		return 0, true
	}
	for _, m := range inbox {
		if _, ok := m.Msg.(joinMsg); ok {
			return 0, true
		}
	}
	n.join = false
	n.val = n.env.Rand.Int63n(n.n4)
	out.Broadcast(valueMsg{Value: n.val})
	return round + 1, false
}

// Run executes Luby's algorithm on g and returns the MIS selection and
// metrics.
func Run(g *graph.Graph, cfg sim.Config) (*Result, *sim.Metrics, error) {
	return RunContext(context.Background(), g, cfg)
}

// RunContext is Run under a context; cancellation aborts the
// simulation at the next round boundary.
func RunContext(ctx context.Context, g *graph.Graph, cfg sim.Config) (*Result, *sim.Metrics, error) {
	res := &Result{InMIS: make([]bool, g.N())}
	m, err := sim.RunStepContext(ctx, g, StepProgram(res), cfg)
	return res, m, err
}
