package greedy

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"awakemis/internal/graph"
	"awakemis/internal/verify"
)

func TestMISValidOnFamilies(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	graphs := map[string]*graph.Graph{
		"cycle":    graph.Cycle(31),
		"path":     graph.Path(17),
		"complete": graph.Complete(12),
		"star":     graph.Star(20),
		"gnp":      graph.GNP(100, 0.1, rng),
		"tree":     graph.RandomTree(60, rng),
		"grid":     graph.Grid(8, 9),
		"empty":    graph.New(10),
	}
	for name, g := range graphs {
		t.Run(name, func(t *testing.T) {
			in, order := MIS(g, rng)
			if err := verify.CheckMIS(g, in); err != nil {
				t.Fatal(err)
			}
			if err := verify.CheckLFMIS(g, in, order); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestCompleteGraphPicksFirst(t *testing.T) {
	g := graph.Complete(8)
	order := []int{5, 2, 0, 1, 3, 4, 6, 7}
	in := WithOrder(g, order)
	if !in[5] || verify.Size(in) != 1 {
		t.Errorf("complete graph MIS must be exactly the first node; got %v", in)
	}
}

// TestComposability verifies the composability property of §3 for many
// random (graph, order, t) triples.
func TestComposability(t *testing.T) {
	f := func(seed int64, nn, tt uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nn%60) + 1
		g := graph.GNP(n, 0.25, rng)
		order := rng.Perm(n)
		cut := int(tt) % (n + 1)
		whole := WithOrder(g, order)
		composed := Compose(g, order, cut)
		for v := range whole {
			if whole[v] != composed[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestLemma2ResidualSparsity checks the residual sparsity bound: after
// processing t of n nodes, the residual graph among the first t′ has
// max degree at most (t′/t)·ln(n/ε) — we test with ε = 1/n, i.e. bound
// 2·(t′/t)·ln n, over several random graphs.
func TestLemma2ResidualSparsity(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 600
	for trial := 0; trial < 5; trial++ {
		g := graph.GNP(n, 0.08, rng)
		order := rng.Perm(n)
		for _, tc := range []struct{ t, tp int }{
			{50, 100}, {50, 600}, {100, 300}, {200, 600},
		} {
			got := ResidualMaxDegree(g, order, tc.t, tc.tp)
			bound := float64(tc.tp) / float64(tc.t) * 2 * math.Log(float64(n))
			if float64(got) > bound {
				t.Errorf("trial %d t=%d t'=%d: residual max degree %d > bound %.1f",
					trial, tc.t, tc.tp, got, bound)
			}
		}
	}
}

// TestLemma2Monotone sanity-checks that processing a larger prefix
// leaves a (weakly) sparser residual graph on the same suffix window.
func TestLemma2Monotone(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := graph.GNP(400, 0.2, rng)
	order := rng.Perm(400)
	dSmall := ResidualMaxDegree(g, order, 20, 400)
	dLarge := ResidualMaxDegree(g, order, 200, 400)
	if dLarge > dSmall {
		t.Errorf("residual degree after t=200 (%d) exceeds after t=20 (%d)", dLarge, dSmall)
	}
}

// TestLemma3Shattering checks that partitioning a bounded-degree graph
// into 2Δ random classes leaves components of size ≤ 6·ln(n/ε), tested
// with ε = 1/n (bound 12 ln n).
func TestLemma3Shattering(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 5; trial++ {
		h := graph.RandomRegular(800, 6, rng)
		sizes := Shatter(h, rng)
		if len(sizes) != 2*h.MaxDegree() {
			t.Fatalf("expected 2Δ classes, got %d", len(sizes))
		}
		got := MaxShatteredComponent(sizes)
		bound := 12 * math.Log(float64(h.N()))
		if float64(got) > bound {
			t.Errorf("trial %d: max shattered component %d > bound %.1f", trial, got, bound)
		}
	}
}

func TestShatterEdgeCases(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	// Empty graph: Δ forced to 1, two classes, all singleton components.
	sizes := Shatter(graph.New(5), rng)
	if len(sizes) != 2 {
		t.Fatalf("classes = %d, want 2", len(sizes))
	}
	if got := MaxShatteredComponent(sizes); got != 1 {
		t.Errorf("max component = %d, want 1", got)
	}
	if got := MaxShatteredComponent([][]int{{}, {}}); got != 0 {
		t.Errorf("all-empty classes: max = %d, want 0", got)
	}
}

func TestPrefixAndResidual(t *testing.T) {
	g := graph.Path(5)
	order := []int{0, 1, 2, 3, 4}
	mt := Prefix(g, order, 1) // {0}
	if !mt[0] || verify.Size(mt) != 1 {
		t.Fatalf("prefix MIS = %v", mt)
	}
	res := Residual(g, order, mt, 5)
	// 0 in MIS, 1 blocked; 2,3,4 remain.
	want := []int{2, 3, 4}
	if len(res) != len(want) {
		t.Fatalf("residual = %v, want %v", res, want)
	}
	for i := range want {
		if res[i] != want[i] {
			t.Fatalf("residual = %v, want %v", res, want)
		}
	}
	// t beyond length is clipped.
	if got := Prefix(g, order, 99); verify.Size(got) != 3 {
		t.Errorf("full prefix MIS size = %d, want 3", verify.Size(got))
	}
}

func TestRandomOrderIsPermutation(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	order := RandomOrder(10, rng)
	seen := make([]bool, 10)
	for _, v := range order {
		if v < 0 || v >= 10 || seen[v] {
			t.Fatalf("not a permutation: %v", order)
		}
		seen[v] = true
	}
}
