// Package greedy implements the sequential randomized greedy MIS
// algorithm and the two structural properties of it that Awake-MIS
// rests on (§3, §4):
//
//   - composability: running greedy on a prefix of the order, removing
//     the MIS's closed neighborhood, and continuing on the remainder
//     yields the greedy MIS of the whole order;
//   - residual sparsity (Lemma 2): after processing the first t nodes,
//     the graph induced by the undecided nodes among the first t′ has
//     maximum degree ≈ (t′/t)·ln(n/ε) w.h.p.;
//   - shattering (Lemma 3): partitioning a max-degree-Δ graph into 2Δ
//     random classes leaves components of size ≤ 6·ln(n/ε) w.h.p.
package greedy

import (
	"math/rand"

	"awakemis/internal/graph"
)

// RandomOrder returns a uniformly random permutation of 0..n-1.
func RandomOrder(n int, rng *rand.Rand) []int {
	order := rng.Perm(n)
	return order
}

// MIS runs sequential randomized greedy MIS with a fresh uniform order
// and returns the selection and the order used.
func MIS(g *graph.Graph, rng *rand.Rand) (in []bool, order []int) {
	order = RandomOrder(g.N(), rng)
	return WithOrder(g, order), order
}

// WithOrder runs sequential greedy MIS with the given processing order
// and returns the LFMIS with respect to it.
func WithOrder(g *graph.Graph, order []int) []bool {
	in := make([]bool, g.N())
	blocked := make([]bool, g.N())
	for _, v := range order {
		if blocked[v] {
			continue
		}
		in[v] = true
		for _, w := range g.Neighbors(v) {
			blocked[w] = true
		}
	}
	return in
}

// Prefix runs greedy MIS on only the first t nodes of the order and
// returns the partial selection (the LFMIS of G[V_t]).
func Prefix(g *graph.Graph, order []int, t int) []bool {
	if t > len(order) {
		t = len(order)
	}
	return WithOrder(g, order[:t])
}

// Residual returns the vertices among the first t′ of the order that
// are neither in the prefix-MIS mt nor adjacent to it — the set
// V_{t′} \ N(M_t) of Lemma 2.
func Residual(g *graph.Graph, order []int, mt []bool, tPrime int) []int {
	if tPrime > len(order) {
		tPrime = len(order)
	}
	out := []int{}
	for _, v := range order[:tPrime] {
		if mt[v] {
			continue
		}
		blocked := false
		for _, w := range g.Neighbors(v) {
			if mt[w] {
				blocked = true
				break
			}
		}
		if !blocked {
			out = append(out, v)
		}
	}
	return out
}

// ResidualMaxDegree runs the Lemma 2 experiment: it computes the
// maximum degree of G[V_{t′} \ N(M_t)] for the given order.
func ResidualMaxDegree(g *graph.Graph, order []int, t, tPrime int) int {
	mt := Prefix(g, order, t)
	res := Residual(g, order, mt, tPrime)
	sub, _ := g.Induced(res)
	return sub.MaxDegree()
}

// Compose verifies the composability property constructively: it runs
// greedy on order[:t], removes N(M_t), runs greedy on the remaining
// order, and returns the union selection. By §3 this equals
// WithOrder(g, order).
func Compose(g *graph.Graph, order []int, t int) []bool {
	if t > len(order) {
		t = len(order)
	}
	mt := Prefix(g, order, t)
	in := append([]bool(nil), mt...)
	blocked := make([]bool, g.N())
	for v := range mt {
		if mt[v] {
			blocked[v] = true
			for _, w := range g.Neighbors(v) {
				blocked[w] = true
			}
		}
	}
	for _, v := range order[t:] {
		if blocked[v] {
			continue
		}
		in[v] = true
		for _, w := range g.Neighbors(v) {
			blocked[w] = true
		}
	}
	return in
}

// Shatter partitions the vertices of h into 2Δ classes uniformly at
// random (Δ = max degree, forced ≥ 1) and returns, for each class, the
// sizes of the connected components of the induced subgraph — the
// Lemma 3 experiment.
func Shatter(h *graph.Graph, rng *rand.Rand) [][]int {
	delta := h.MaxDegree()
	if delta < 1 {
		delta = 1
	}
	classes := 2 * delta
	assign := make([]int, h.N())
	members := make([][]int, classes)
	for v := range assign {
		c := rng.Intn(classes)
		assign[v] = c
		members[c] = append(members[c], v)
	}
	out := make([][]int, classes)
	for c, vs := range members {
		sub, _ := h.Induced(vs)
		out[c] = graph.SortedComponentSizes(sub)
	}
	return out
}

// MaxShatteredComponent returns the largest component size over all
// classes of a Shatter result (0 if all classes are empty).
func MaxShatteredComponent(shatter [][]int) int {
	max := 0
	for _, sizes := range shatter {
		if len(sizes) > 0 && sizes[0] > max {
			max = sizes[0]
		}
	}
	return max
}
