package trace

import (
	"strings"
	"testing"

	"awakemis/internal/graph"
	"awakemis/internal/sim"
)

// run executes a tiny two-node protocol with a known wake pattern and
// returns the collector.
func run(t *testing.T) *Collector {
	t.Helper()
	c := NewCollector()
	g := graph.Path(2)
	prog := func(ctx *sim.Ctx) {
		if ctx.Node() == 0 {
			// Awake rounds 0,1,2 then 10.
			ctx.Advance()
			ctx.Send(0, probe{})
			ctx.Advance() // round 2: neighbor asleep -> lost? neighbor awake in 0 only
			ctx.SleepUntil(10)
		} else {
			// Awake round 0 only; the round-1 message from node 0 is lost.
			_ = ctx
		}
	}
	if _, err := sim.Run(g, prog, sim.Config{Seed: 1, Tracer: c}); err != nil {
		t.Fatal(err)
	}
	return c
}

type probe struct{}

func (probe) Bits() int { return 1 }

func TestCollectorAwakeRounds(t *testing.T) {
	c := run(t)
	want0 := []int64{0, 1, 2, 10}
	got0 := c.AwakeRounds[0]
	if len(got0) != len(want0) {
		t.Fatalf("node 0 awake %v, want %v", got0, want0)
	}
	for i := range want0 {
		if got0[i] != want0[i] {
			t.Fatalf("node 0 awake %v, want %v", got0, want0)
		}
	}
	if len(c.AwakeRounds[1]) != 1 || c.AwakeRounds[1][0] != 0 {
		t.Errorf("node 1 awake %v, want [0]", c.AwakeRounds[1])
	}
}

func TestCollectorMessageLoss(t *testing.T) {
	c := run(t)
	if c.Sent != 1 || c.Delivered != 0 || c.Lost != 1 {
		t.Errorf("sent/delivered/lost = %d/%d/%d, want 1/0/1", c.Sent, c.Delivered, c.Lost)
	}
	if c.LossRate() != 1 {
		t.Errorf("LossRate = %v, want 1", c.LossRate())
	}
	if c.LostByRound[1] != 1 {
		t.Errorf("loss should be recorded in round 1: %v", c.LostByRound)
	}
	if !strings.Contains(c.Summary(), "1 lost") {
		t.Errorf("summary: %s", c.Summary())
	}
}

func TestEmptyCollector(t *testing.T) {
	c := NewCollector()
	if c.LossRate() != 0 {
		t.Error("empty collector loss rate should be 0")
	}
	if c.Intervals(5) != nil {
		t.Error("unknown node should have no intervals")
	}
}

func TestIntervals(t *testing.T) {
	c := run(t)
	iv := c.Intervals(0)
	want := [][2]int64{{0, 2}, {10, 10}}
	if len(iv) != len(want) {
		t.Fatalf("intervals = %v, want %v", iv, want)
	}
	for i := range want {
		if iv[i] != want[i] {
			t.Fatalf("intervals = %v, want %v", iv, want)
		}
	}
}

func TestTimelineRendering(t *testing.T) {
	c := run(t)
	out := c.Timeline([]int{0, 1}, 11)
	if !strings.Contains(out, "rounds 0..10") {
		t.Errorf("timeline header wrong:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("timeline should have 3 lines:\n%s", out)
	}
	// Node 0's row: awake at start and at the end.
	row0 := lines[1]
	if !strings.Contains(row0, "0 |") {
		t.Errorf("row0 = %q", row0)
	}
	if strings.Count(row0, ".")+strings.Count(row0, ":")+strings.Count(row0, "#")+strings.Count(row0, "@") < 2 {
		t.Errorf("row0 should show at least 2 awake cells: %q", row0)
	}
	// Degenerate width falls back.
	if out := c.Timeline([]int{0}, 0); !strings.Contains(out, "|") {
		t.Error("zero width should fall back to default")
	}
}

func TestBusiestNodes(t *testing.T) {
	c := run(t)
	if got := c.BusiestNodes(2); len(got) != 2 || got[0] != 0 {
		t.Errorf("busiest = %v, want [0 1]", got)
	}
	if got := c.BusiestNodes(99); len(got) != 2 {
		t.Errorf("k beyond population should clamp: %v", got)
	}
}

// TestMaxNodesSampling pins the scalability cap: once MaxNodes distinct
// nodes are recorded, further nodes' awake events are counted but not
// stored, and — because round 0 wakes every node in ascending order —
// the sample is exactly the first MaxNodes ids. Global message counters
// are unaffected.
func TestMaxNodesSampling(t *testing.T) {
	c := NewCollector()
	c.MaxNodes = 4
	g := graph.Cycle(16)
	prog := func(ctx *sim.Ctx) {
		ctx.Broadcast(probe{})
		ctx.Deliver()
		ctx.Advance()
		ctx.Broadcast(probe{})
		ctx.Deliver()
	}
	if _, err := sim.Run(g, prog, sim.Config{Seed: 1, Tracer: c}); err != nil {
		t.Fatal(err)
	}
	if len(c.AwakeRounds) != 4 {
		t.Fatalf("sampled %d nodes, want 4", len(c.AwakeRounds))
	}
	for v := 0; v < 4; v++ {
		if len(c.AwakeRounds[v]) != 2 {
			t.Errorf("node %d awake rounds %v, want 2 entries (under-cap behavior unchanged)", v, c.AwakeRounds[v])
		}
	}
	if _, ok := c.AwakeRounds[5]; ok {
		t.Error("node beyond the cap was recorded")
	}
	if c.SkippedEvents != 2*12 {
		t.Errorf("skipped events = %d, want 24", c.SkippedEvents)
	}
	if want := int64(2 * 2 * g.M()); c.Sent != want || c.Delivered != want {
		t.Errorf("global counters perturbed by sampling: sent/delivered = %d/%d, want %d", c.Sent, c.Delivered, want)
	}
	if !strings.Contains(c.Summary(), "capped at 4") {
		t.Errorf("summary should flag the partial sample: %s", c.Summary())
	}
}

// TestDefaultCapUnbounded documents the defaults: NewCollector samples
// at DefaultMaxNodes, and MaxNodes ≤ 0 restores unbounded recording.
func TestDefaultCapUnbounded(t *testing.T) {
	if NewCollector().MaxNodes != DefaultMaxNodes {
		t.Errorf("NewCollector cap = %d, want %d", NewCollector().MaxNodes, DefaultMaxNodes)
	}
	c := NewCollector()
	c.MaxNodes = 0
	for v := 0; v < 100; v++ {
		c.NodeAwake(0, v)
	}
	if len(c.AwakeRounds) != 100 || c.SkippedEvents != 0 {
		t.Errorf("unbounded collector recorded %d nodes, skipped %d", len(c.AwakeRounds), c.SkippedEvents)
	}
}

// TestRoundLog runs the round observer through a real simulation and
// checks totals, peak, timeline, and summary.
func TestRoundLog(t *testing.T) {
	l := NewRoundLog()
	g := graph.Cycle(32)
	prog := func(ctx *sim.Ctx) {
		ctx.Broadcast(probe{})
		ctx.Deliver()
		if ctx.Node()%2 == 0 {
			ctx.Advance() // odd nodes sleep after round 0
			ctx.Broadcast(probe{})
			ctx.Deliver()
		}
	}
	m, err := sim.Run(g, prog, sim.Config{Seed: 1, Observer: l})
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(l.Stats)) != m.ExecutedRounds {
		t.Fatalf("logged %d rounds, metrics executed %d", len(l.Stats), m.ExecutedRounds)
	}
	sent, delivered, bits, awake := l.Totals()
	if sent != m.MessagesSent || delivered != m.MessagesDelivered || bits != m.BitsSent || awake != m.TotalAwake {
		t.Errorf("totals %d/%d/%d/%d != metrics %d/%d/%d/%d",
			sent, delivered, bits, awake, m.MessagesSent, m.MessagesDelivered, m.BitsSent, m.TotalAwake)
	}
	round, peak := l.PeakAwake()
	if round != 0 || peak != 32 {
		t.Errorf("peak = %d at round %d, want 32 at round 0", peak, round)
	}
	if out := l.Timeline(10); !strings.Contains(out, "awake |") {
		t.Errorf("timeline: %s", out)
	}
	if s := l.Summary(); !strings.Contains(s, "peak 32 awake at round 0") {
		t.Errorf("summary: %s", s)
	}
	if (&RoundLog{}).Summary() != "no rounds observed" {
		t.Errorf("empty summary: %q", (&RoundLog{}).Summary())
	}
}

func TestDensityRow(t *testing.T) {
	if got := densityRow([]int{0, 1, 2, 5}); len([]rune(got)) != 4 {
		t.Errorf("row length wrong: %q", got)
	}
	if got := densityRow([]int{0, 0}); got != "  " {
		t.Errorf("all-zero row = %q", got)
	}
	// High-count rows use the scaled branch.
	got := densityRow([]int{0, 100, 50, 10})
	if []rune(got)[0] != ' ' || []rune(got)[1] != '@' {
		t.Errorf("scaled row = %q", got)
	}
}
