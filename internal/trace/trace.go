// Package trace collects and renders execution views of the
// SLEEPING-CONGEST simulator at two depths. Collector (a sim.Tracer)
// records which rounds each sampled node was awake — the per-node deep
// view for debugging schedules (a node awake when its peer sleeps is
// the classic sleeping-model bug). RoundLog (a sim.RoundObserver)
// records one flat aggregate per executed round — awake count,
// messages, bits — with cost independent of the node count, so round
// timelines keep working at n = 10⁷ where per-node recording cannot.
package trace

import (
	"fmt"
	"sort"
	"strings"

	"awakemis/internal/sim"
)

// DefaultMaxNodes is the node-sample cap NewCollector installs: enough
// for every timeline and busiest-node view while keeping the per-node
// maps bounded on million-node graphs.
const DefaultMaxNodes = 4096

// Collector implements sim.Tracer, recording awake rounds per node and
// message-loss counters. Per-node recording is O(awake rounds) memory
// per node, so Collector samples: once MaxNodes distinct nodes have
// been recorded, awake events for further nodes are counted but not
// stored. Because every node is awake in round 0 and rounds visit
// nodes in ascending index order, the sample is exactly the first
// MaxNodes node ids — deterministic across engines and worker counts.
// The message counters (Sent, Delivered, Lost, LostByRound) are global
// and unaffected by sampling.
type Collector struct {
	// AwakeRounds[v] lists the rounds node v was awake, ascending.
	// Only sampled nodes appear; see MaxNodes.
	AwakeRounds map[int][]int64
	// Sent, Delivered, Lost count messages.
	Sent, Delivered, Lost int64
	// LostByRound counts lost messages per round (schedule bugs show up
	// as loss spikes).
	LostByRound map[int64]int64
	// MaxNodes caps how many distinct nodes AwakeRounds records
	// (first-k by id). Zero or negative means unbounded — the historic
	// behavior, O(n·rounds) memory on large graphs.
	MaxNodes int
	// SkippedEvents counts awake events dropped by the sample cap; the
	// summary reports when a trace is partial.
	SkippedEvents int64
}

var _ sim.Tracer = (*Collector)(nil)

// NewCollector returns an empty Collector sampling at DefaultMaxNodes.
// Set MaxNodes before the run to widen, narrow, or (≤0) unbound the
// node sample.
func NewCollector() *Collector {
	return &Collector{
		AwakeRounds: map[int][]int64{},
		LostByRound: map[int64]int64{},
		MaxNodes:    DefaultMaxNodes,
	}
}

// NodeAwake implements sim.Tracer.
func (c *Collector) NodeAwake(round int64, node int) {
	rs, ok := c.AwakeRounds[node]
	if !ok && c.MaxNodes > 0 && len(c.AwakeRounds) >= c.MaxNodes {
		c.SkippedEvents++
		return
	}
	c.AwakeRounds[node] = append(rs, round)
}

// Message implements sim.Tracer.
func (c *Collector) Message(round int64, from, to, bits int, delivered bool) {
	c.Sent++
	if delivered {
		c.Delivered++
	} else {
		c.Lost++
		c.LostByRound[round]++
	}
}

// LossRate returns the fraction of messages lost to sleeping receivers.
func (c *Collector) LossRate() float64 {
	if c.Sent == 0 {
		return 0
	}
	return float64(c.Lost) / float64(c.Sent)
}

// Intervals compresses a node's awake rounds into [lo, hi] runs of
// consecutive rounds.
func (c *Collector) Intervals(node int) [][2]int64 {
	rounds := c.AwakeRounds[node]
	if len(rounds) == 0 {
		return nil
	}
	var out [][2]int64
	lo, hi := rounds[0], rounds[0]
	for _, r := range rounds[1:] {
		if r == hi+1 {
			hi = r
			continue
		}
		out = append(out, [2]int64{lo, hi})
		lo, hi = r, r
	}
	return append(out, [2]int64{lo, hi})
}

// Timeline renders an ASCII awake-density timeline: the horizon
// [0, maxRound] is split into width buckets and each bucket shows how
// many of the selected nodes were awake there (space, ., :, #, @ by
// density).
func (c *Collector) Timeline(nodes []int, width int) string {
	if width < 1 {
		width = 60
	}
	var maxRound int64 = 1
	for _, v := range nodes {
		rs := c.AwakeRounds[v]
		if len(rs) > 0 && rs[len(rs)-1]+1 > maxRound {
			maxRound = rs[len(rs)-1] + 1
		}
	}
	bucket := func(r int64) int {
		b := int(r * int64(width) / maxRound)
		if b >= width {
			b = width - 1
		}
		return b
	}
	var b strings.Builder
	fmt.Fprintf(&b, "rounds 0..%d, %d per cell\n", maxRound-1, (maxRound+int64(width)-1)/int64(width))
	for _, v := range nodes {
		counts := make([]int, width)
		for _, r := range c.AwakeRounds[v] {
			counts[bucket(r)]++
		}
		fmt.Fprintf(&b, "%6d |%s|\n", v, densityRow(counts))
	}
	return b.String()
}

func densityRow(counts []int) string {
	glyphs := []rune(" .:#@")
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	row := make([]rune, len(counts))
	for i, c := range counts {
		switch {
		case c == 0:
			row[i] = glyphs[0]
		case max <= 4:
			g := c
			if g >= len(glyphs) {
				g = len(glyphs) - 1
			}
			row[i] = glyphs[g]
		default:
			g := 1 + c*(len(glyphs)-2)/max
			if g >= len(glyphs) {
				g = len(glyphs) - 1
			}
			row[i] = glyphs[g]
		}
	}
	return string(row)
}

// BusiestNodes returns the ids of the k nodes with the most awake
// rounds, descending (ties by id).
func (c *Collector) BusiestNodes(k int) []int {
	type nc struct {
		node  int
		count int
	}
	all := make([]nc, 0, len(c.AwakeRounds))
	for v, rs := range c.AwakeRounds {
		all = append(all, nc{v, len(rs)})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].count != all[j].count {
			return all[i].count > all[j].count
		}
		return all[i].node < all[j].node
	})
	if k > len(all) {
		k = len(all)
	}
	out := make([]int, k)
	for i := 0; i < k; i++ {
		out[i] = all[i].node
	}
	return out
}

// Summary returns a one-paragraph description of the trace.
func (c *Collector) Summary() string {
	s := fmt.Sprintf("traced %d nodes; %d messages sent, %d delivered, %d lost to sleepers (%.1f%%)",
		len(c.AwakeRounds), c.Sent, c.Delivered, c.Lost, 100*c.LossRate())
	if c.SkippedEvents > 0 {
		s += fmt.Sprintf("; node sample capped at %d (first %d ids)", c.MaxNodes, c.MaxNodes)
	}
	return s
}

// RoundLog implements sim.RoundObserver: a flat append-only log of
// per-round aggregates. Unlike Collector it holds no per-node state at
// all — memory is O(executed rounds) — so it is the trace layer that
// still works at n = 10⁷. All fields except Elapsed are deterministic
// for a fixed (graph, task, seed) on every engine at every worker
// count.
type RoundLog struct {
	// Stats holds one entry per executed round, in round order.
	Stats []sim.RoundStat
}

var _ sim.RoundObserver = (*RoundLog)(nil)

// NewRoundLog returns an empty RoundLog.
func NewRoundLog() *RoundLog { return &RoundLog{} }

// ObserveRound implements sim.RoundObserver.
func (l *RoundLog) ObserveRound(st sim.RoundStat) { l.Stats = append(l.Stats, st) }

// Totals sums the per-round deltas; each equals the corresponding
// final sim.Metrics counter (messages sent/delivered, bits, total
// awake node-rounds).
func (l *RoundLog) Totals() (sent, delivered, bits, awake int64) {
	for _, st := range l.Stats {
		sent += st.Sent
		delivered += st.Delivered
		bits += st.Bits
		awake += int64(st.Awake)
	}
	return
}

// PeakAwake returns the maximum awake-node count over all rounds and
// the first round attaining it.
func (l *RoundLog) PeakAwake() (round int64, awake int) {
	for _, st := range l.Stats {
		if st.Awake > awake {
			round, awake = st.Round, st.Awake
		}
	}
	return
}

// Timeline renders an ASCII awake-density timeline of the whole run:
// the horizon [0, lastRound] is split into width buckets and each cell
// shows the awake node-round mass that fell there. One row, any n.
func (l *RoundLog) Timeline(width int) string {
	if width < 1 {
		width = 60
	}
	var maxRound int64 = 1
	if n := len(l.Stats); n > 0 {
		maxRound = l.Stats[n-1].Round + 1
	}
	counts := make([]int, width)
	for _, st := range l.Stats {
		b := int(st.Round * int64(width) / maxRound)
		if b >= width {
			b = width - 1
		}
		counts[b] += st.Awake
	}
	var b strings.Builder
	fmt.Fprintf(&b, "rounds 0..%d, %d per cell\n", maxRound-1, (maxRound+int64(width)-1)/int64(width))
	fmt.Fprintf(&b, " awake |%s|\n", densityRow(counts))
	return b.String()
}

// Summary returns a one-paragraph description of the round log.
func (l *RoundLog) Summary() string {
	if len(l.Stats) == 0 {
		return "no rounds observed"
	}
	sent, delivered, _, awake := l.Totals()
	peakRound, peak := l.PeakAwake()
	return fmt.Sprintf("%d executed rounds over horizon %d; peak %d awake at round %d; %d awake node-rounds; %d messages sent, %d delivered",
		len(l.Stats), l.Stats[len(l.Stats)-1].Round+1, peak, peakRound, awake, sent, delivered)
}
