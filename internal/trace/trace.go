// Package trace collects and renders execution timelines from the
// SLEEPING-CONGEST simulator: which rounds each node was awake, how
// awake rounds cluster into the phase structure of an algorithm, and
// how many messages were lost to sleeping receivers. It exists for
// debugging schedules (a node awake when its peer sleeps is the classic
// sleeping-model bug) and for the timeline views in cmd/awakemis.
package trace

import (
	"fmt"
	"sort"
	"strings"

	"awakemis/internal/sim"
)

// Collector implements sim.Tracer, recording awake rounds per node and
// message-loss counters.
type Collector struct {
	// AwakeRounds[v] lists the rounds node v was awake, ascending.
	AwakeRounds map[int][]int64
	// Sent, Delivered, Lost count messages.
	Sent, Delivered, Lost int64
	// LostByRound counts lost messages per round (schedule bugs show up
	// as loss spikes).
	LostByRound map[int64]int64
}

var _ sim.Tracer = (*Collector)(nil)

// NewCollector returns an empty Collector.
func NewCollector() *Collector {
	return &Collector{
		AwakeRounds: map[int][]int64{},
		LostByRound: map[int64]int64{},
	}
}

// NodeAwake implements sim.Tracer.
func (c *Collector) NodeAwake(round int64, node int) {
	c.AwakeRounds[node] = append(c.AwakeRounds[node], round)
}

// Message implements sim.Tracer.
func (c *Collector) Message(round int64, from, to, bits int, delivered bool) {
	c.Sent++
	if delivered {
		c.Delivered++
	} else {
		c.Lost++
		c.LostByRound[round]++
	}
}

// LossRate returns the fraction of messages lost to sleeping receivers.
func (c *Collector) LossRate() float64 {
	if c.Sent == 0 {
		return 0
	}
	return float64(c.Lost) / float64(c.Sent)
}

// Intervals compresses a node's awake rounds into [lo, hi] runs of
// consecutive rounds.
func (c *Collector) Intervals(node int) [][2]int64 {
	rounds := c.AwakeRounds[node]
	if len(rounds) == 0 {
		return nil
	}
	var out [][2]int64
	lo, hi := rounds[0], rounds[0]
	for _, r := range rounds[1:] {
		if r == hi+1 {
			hi = r
			continue
		}
		out = append(out, [2]int64{lo, hi})
		lo, hi = r, r
	}
	return append(out, [2]int64{lo, hi})
}

// Timeline renders an ASCII awake-density timeline: the horizon
// [0, maxRound] is split into width buckets and each bucket shows how
// many of the selected nodes were awake there (space, ., :, #, @ by
// density).
func (c *Collector) Timeline(nodes []int, width int) string {
	if width < 1 {
		width = 60
	}
	var maxRound int64 = 1
	for _, v := range nodes {
		rs := c.AwakeRounds[v]
		if len(rs) > 0 && rs[len(rs)-1]+1 > maxRound {
			maxRound = rs[len(rs)-1] + 1
		}
	}
	bucket := func(r int64) int {
		b := int(r * int64(width) / maxRound)
		if b >= width {
			b = width - 1
		}
		return b
	}
	var b strings.Builder
	fmt.Fprintf(&b, "rounds 0..%d, %d per cell\n", maxRound-1, (maxRound+int64(width)-1)/int64(width))
	for _, v := range nodes {
		counts := make([]int, width)
		for _, r := range c.AwakeRounds[v] {
			counts[bucket(r)]++
		}
		fmt.Fprintf(&b, "%6d |%s|\n", v, densityRow(counts))
	}
	return b.String()
}

func densityRow(counts []int) string {
	glyphs := []rune(" .:#@")
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	row := make([]rune, len(counts))
	for i, c := range counts {
		switch {
		case c == 0:
			row[i] = glyphs[0]
		case max <= 4:
			g := c
			if g >= len(glyphs) {
				g = len(glyphs) - 1
			}
			row[i] = glyphs[g]
		default:
			g := 1 + c*(len(glyphs)-2)/max
			if g >= len(glyphs) {
				g = len(glyphs) - 1
			}
			row[i] = glyphs[g]
		}
	}
	return string(row)
}

// BusiestNodes returns the ids of the k nodes with the most awake
// rounds, descending (ties by id).
func (c *Collector) BusiestNodes(k int) []int {
	type nc struct {
		node  int
		count int
	}
	all := make([]nc, 0, len(c.AwakeRounds))
	for v, rs := range c.AwakeRounds {
		all = append(all, nc{v, len(rs)})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].count != all[j].count {
			return all[i].count > all[j].count
		}
		return all[i].node < all[j].node
	})
	if k > len(all) {
		k = len(all)
	}
	out := make([]int, k)
	for i := 0; i < k; i++ {
		out[i] = all[i].node
	}
	return out
}

// Summary returns a one-paragraph description of the trace.
func (c *Collector) Summary() string {
	return fmt.Sprintf("traced %d nodes; %d messages sent, %d delivered, %d lost to sleepers (%.1f%%)",
		len(c.AwakeRounds), c.Sent, c.Delivered, c.Lost, 100*c.LossRate())
}
