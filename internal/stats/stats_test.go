package stats

import (
	"math"
	"strings"
	"testing"
)

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4})
	if s.N != 4 || s.Mean != 2.5 || s.Min != 1 || s.Max != 4 || s.Median != 2.5 {
		t.Errorf("summary = %+v", s)
	}
	odd := Summarize([]float64{5, 1, 3})
	if odd.Median != 3 {
		t.Errorf("odd median = %v", odd.Median)
	}
	empty := Summarize(nil)
	if empty.N != 0 {
		t.Errorf("empty summary = %+v", empty)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{10, 20, 30, 40, 50, 60, 70, 80, 90, 100}
	if q := Quantile(xs, 0.5); q != 50 {
		t.Errorf("median = %v", q)
	}
	if q := Quantile(xs, 0.9); q != 90 {
		t.Errorf("p90 = %v", q)
	}
	if q := Quantile(xs, 0); q != 10 {
		t.Errorf("p0 = %v", q)
	}
	if q := Quantile(nil, 0.5); q != 0 {
		t.Errorf("empty quantile = %v", q)
	}
}

func TestFitModelLinear(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{3, 5, 7, 9, 11} // y = 1 + 2x
	a, b, r2 := FitModel(xs, ys, func(x float64) float64 { return x })
	if math.Abs(a-1) > 1e-9 || math.Abs(b-2) > 1e-9 || r2 < 0.999 {
		t.Errorf("fit = %v + %v·x, R²=%v", a, b, r2)
	}
}

func TestFitGrowthIdentifiesLog(t *testing.T) {
	xs := []float64{64, 256, 1024, 4096, 16384}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 5 + 3*math.Log2(x)
	}
	fit := FitGrowth(xs, ys)
	if fit.Model != "log n" {
		t.Errorf("model = %q, want log n (fit %+v)", fit.Model, fit)
	}
}

func TestFitGrowthIdentifiesLogLog(t *testing.T) {
	xs := []float64{64, 256, 1024, 4096, 16384, 65536}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 100 + 40*math.Log2(math.Log2(x))
	}
	fit := FitGrowth(xs, ys)
	if fit.Model != "loglog n" {
		t.Errorf("model = %q, want loglog n (fit %+v)", fit.Model, fit)
	}
}

func TestFitGrowthConstant(t *testing.T) {
	xs := []float64{10, 100, 1000}
	ys := []float64{7, 7, 7}
	fit := FitGrowth(xs, ys)
	if fit.R2 < 0.999 {
		t.Errorf("constant data should fit perfectly: %+v", fit)
	}
}

func TestGrowthRatio(t *testing.T) {
	if r := GrowthRatio([]float64{10, 20, 30}); r != 3 {
		t.Errorf("ratio = %v", r)
	}
	if !math.IsNaN(GrowthRatio([]float64{5})) {
		t.Error("single-point ratio should be NaN")
	}
	if !math.IsNaN(GrowthRatio([]float64{0, 5})) {
		t.Error("zero-start ratio should be NaN")
	}
}

func TestTable(t *testing.T) {
	tb := &Table{Header: []string{"n", "awake", "model"}}
	tb.Add(1024, 12.5, "luby")
	tb.Add(65536, 17.0, "awakemis")
	out := tb.String()
	if !strings.Contains(out, "awake") || !strings.Contains(out, "12.50") {
		t.Errorf("table output:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Errorf("table has %d lines, want 4:\n%s", len(lines), out)
	}
	// All lines align to the same width pattern.
	if len(lines[0]) == 0 || lines[1][0] != '-' {
		t.Errorf("separator line malformed:\n%s", out)
	}
}
