package stats

import (
	"math"
	"strings"
	"testing"
)

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4})
	if s.N != 4 || s.Mean != 2.5 || s.Min != 1 || s.Max != 4 || s.Median != 2.5 {
		t.Errorf("summary = %+v", s)
	}
	odd := Summarize([]float64{5, 1, 3})
	if odd.Median != 3 {
		t.Errorf("odd median = %v", odd.Median)
	}
	empty := Summarize(nil)
	if empty.N != 0 {
		t.Errorf("empty summary = %+v", empty)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{10, 20, 30, 40, 50, 60, 70, 80, 90, 100}
	if q := Quantile(xs, 0.5); q != 50 {
		t.Errorf("median = %v", q)
	}
	if q := Quantile(xs, 0.9); q != 90 {
		t.Errorf("p90 = %v", q)
	}
	if q := Quantile(xs, 0); q != 10 {
		t.Errorf("p0 = %v", q)
	}
	if q := Quantile(nil, 0.5); q != 0 {
		t.Errorf("empty quantile = %v", q)
	}
}

func TestFitModelLinear(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{3, 5, 7, 9, 11} // y = 1 + 2x
	a, b, r2 := FitModel(xs, ys, func(x float64) float64 { return x })
	if math.Abs(a-1) > 1e-9 || math.Abs(b-2) > 1e-9 || r2 < 0.999 {
		t.Errorf("fit = %v + %v·x, R²=%v", a, b, r2)
	}
}

func TestFitGrowthIdentifiesLog(t *testing.T) {
	xs := []float64{64, 256, 1024, 4096, 16384}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 5 + 3*math.Log2(x)
	}
	fit := FitGrowth(xs, ys)
	if fit.Model != "log n" {
		t.Errorf("model = %q, want log n (fit %+v)", fit.Model, fit)
	}
}

func TestFitGrowthIdentifiesLogLog(t *testing.T) {
	xs := []float64{64, 256, 1024, 4096, 16384, 65536}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 100 + 40*math.Log2(math.Log2(x))
	}
	fit := FitGrowth(xs, ys)
	if fit.Model != "loglog n" {
		t.Errorf("model = %q, want loglog n (fit %+v)", fit.Model, fit)
	}
}

func TestFitGrowthConstant(t *testing.T) {
	xs := []float64{10, 100, 1000}
	ys := []float64{7, 7, 7}
	fit := FitGrowth(xs, ys)
	if fit.R2 < 0.999 {
		t.Errorf("constant data should fit perfectly: %+v", fit)
	}
}

func TestGrowthRatio(t *testing.T) {
	if r := GrowthRatio([]float64{10, 20, 30}); r != 3 {
		t.Errorf("ratio = %v", r)
	}
	if !math.IsNaN(GrowthRatio([]float64{5})) {
		t.Error("single-point ratio should be NaN")
	}
	if !math.IsNaN(GrowthRatio([]float64{0, 5})) {
		t.Error("zero-start ratio should be NaN")
	}
}

// synthetic builds ys = a + b·f(xs) plus a small deterministic wobble
// so fits are near-perfect but not degenerate.
func synthetic(xs []float64, a, b float64, f func(float64) float64) []float64 {
	ys := make([]float64, len(xs))
	for i, x := range xs {
		wobble := 0.01 * float64(i%3-1)
		ys[i] = a + b*f(x) + wobble
	}
	return ys
}

func TestCompareGrowthVerdicts(t *testing.T) {
	xs := []float64{64, 256, 1024, 4096, 16384, 65536}
	cases := []struct {
		model string
		f     func(float64) float64
	}{
		{"loglog n", func(x float64) float64 { return math.Log2(math.Log2(x)) }},
		{"log n", math.Log2},
		{"n", func(x float64) float64 { return x }},
	}
	for _, c := range cases {
		v := CompareGrowth(xs, synthetic(xs, 2, 3, c.f))
		if v.Preferred.Model != c.model {
			t.Errorf("%s data: preferred %q (verdict %+v)", c.model, v.Preferred.Model, v)
		}
		if v.RunnerUp.Model == c.model || v.RunnerUp.Model == "none" {
			t.Errorf("%s data: runner-up %q", c.model, v.RunnerUp.Model)
		}
		if v.Margin < 0 {
			t.Errorf("%s data: negative margin %v", c.model, v.Margin)
		}
		if v.Preferred.R2-v.RunnerUp.R2-v.Margin > 1e-12 {
			t.Errorf("%s data: margin %v inconsistent with R² gap", c.model, v.Margin)
		}
	}
}

func TestModelsAndModelFunc(t *testing.T) {
	names := Models()
	if len(names) < 3 || names[0] != "const" {
		t.Errorf("models = %v", names)
	}
	for _, name := range names {
		if _, ok := ModelFunc(name); !ok {
			t.Errorf("ModelFunc(%q) missing", name)
		}
	}
	if _, ok := ModelFunc("zipf"); ok {
		t.Error("ModelFunc accepted an unknown model")
	}
}

func TestBootstrapSlopeCI(t *testing.T) {
	xs := []float64{64, 256, 1024, 4096, 16384, 65536}
	ys := synthetic(xs, 2, 3, math.Log2)
	lo, hi := BootstrapSlopeCI(xs, ys, "log n", 300, 7)
	if !(lo <= 3 && 3 <= hi) {
		t.Errorf("CI [%v, %v] does not cover the true slope 3", lo, hi)
	}
	if hi-lo > 1 {
		t.Errorf("CI [%v, %v] is implausibly wide for near-noiseless data", lo, hi)
	}
	// Determinism: equal seeds give equal intervals; different seeds
	// may not (resampling differs).
	lo2, hi2 := BootstrapSlopeCI(xs, ys, "log n", 300, 7)
	if lo != lo2 || hi != hi2 {
		t.Errorf("bootstrap not deterministic: [%v, %v] vs [%v, %v]", lo, hi, lo2, hi2)
	}
}

func TestBootstrapSlopeCIDegenerate(t *testing.T) {
	// Two points: the CI degenerates to the point estimate.
	lo, hi := BootstrapSlopeCI([]float64{2, 4}, []float64{1, 2}, "n", 100, 1)
	if lo != hi {
		t.Errorf("two-point CI should be degenerate, got [%v, %v]", lo, hi)
	}
	// Unknown model: NaN.
	lo, hi = BootstrapSlopeCI([]float64{1, 2, 3}, []float64{1, 2, 3}, "zipf", 100, 1)
	if !math.IsNaN(lo) || !math.IsNaN(hi) {
		t.Errorf("unknown model CI = [%v, %v], want NaNs", lo, hi)
	}
}

func TestTable(t *testing.T) {
	tb := &Table{Header: []string{"n", "awake", "model"}}
	tb.Add(1024, 12.5, "luby")
	tb.Add(65536, 17.0, "awakemis")
	out := tb.String()
	if !strings.Contains(out, "awake") || !strings.Contains(out, "12.50") {
		t.Errorf("table output:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Errorf("table has %d lines, want 4:\n%s", len(lines), out)
	}
	// All lines align to the same width pattern.
	if len(lines[0]) == 0 || lines[1][0] != '-' {
		t.Errorf("separator line malformed:\n%s", out)
	}
}
