// Package stats provides the small statistics toolkit the experiment
// harness and the study subsystem use: aggregation over repeated
// trials, quantiles, least squares fits against candidate growth
// models (log n, log log n, n) with bootstrap confidence intervals
// and a fit-comparison verdict, and fixed-width table rendering.
package stats

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"
)

// Summary aggregates a sample.
type Summary struct {
	N      int
	Mean   float64
	Std    float64
	Min    float64
	Max    float64
	Median float64
}

// Summarize computes a Summary of xs (zero value for empty input).
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: xs[0], Max: xs[0]}
	for _, x := range xs {
		s.Mean += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean /= float64(len(xs))
	for _, x := range xs {
		d := x - s.Mean
		s.Std += d * d
	}
	s.Std = math.Sqrt(s.Std / float64(len(xs)))
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	mid := len(sorted) / 2
	if len(sorted)%2 == 1 {
		s.Median = sorted[mid]
	} else {
		s.Median = (sorted[mid-1] + sorted[mid]) / 2
	}
	return s
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) by nearest-rank.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	idx := int(math.Ceil(q*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// Fit is a least-squares fit y ≈ A + B·f(x).
type Fit struct {
	Model string
	A, B  float64
	R2    float64
}

// Model functions for FitGrowth.
var models = []struct {
	name string
	f    func(x float64) float64
}{
	{"const", func(x float64) float64 { return 0 }},
	{"loglog n", func(x float64) float64 { return math.Log2(math.Max(2, math.Log2(math.Max(2, x)))) }},
	{"log n", func(x float64) float64 { return math.Log2(math.Max(2, x)) }},
	{"sqrt n", math.Sqrt},
	{"n", func(x float64) float64 { return x }},
}

// FitModel fits y ≈ A + B·f(x) for one transform and returns (A, B, R²).
func FitModel(xs, ys []float64, f func(float64) float64) (a, b, r2 float64) {
	n := float64(len(xs))
	if n < 2 {
		if len(ys) == 1 {
			return ys[0], 0, 1
		}
		return 0, 0, 0
	}
	var sx, sy, sxx, sxy float64
	for i := range xs {
		t := f(xs[i])
		sx += t
		sy += ys[i]
		sxx += t * t
		sxy += t * ys[i]
	}
	den := n*sxx - sx*sx
	if math.Abs(den) < 1e-12 {
		// Degenerate transform (constant): best fit is the mean.
		return sy / n, 0, r2For(xs, ys, func(x float64) float64 { return sy / n })
	}
	b = (n*sxy - sx*sy) / den
	a = (sy - b*sx) / n
	fit := func(x float64) float64 { return a + b*f(x) }
	return a, b, r2For(xs, ys, fit)
}

func r2For(xs, ys []float64, fit func(float64) float64) float64 {
	var mean float64
	for _, y := range ys {
		mean += y
	}
	mean /= float64(len(ys))
	var ssTot, ssRes float64
	for i := range ys {
		ssTot += (ys[i] - mean) * (ys[i] - mean)
		d := ys[i] - fit(xs[i])
		ssRes += d * d
	}
	if ssTot < 1e-12 {
		if ssRes < 1e-9 {
			return 1
		}
		return 0
	}
	return 1 - ssRes/ssTot
}

// FitGrowth fits every candidate growth model and returns the best fit
// by R² (ties favor the slower-growing model, matching how complexity
// claims are judged).
func FitGrowth(xs, ys []float64) Fit {
	best := Fit{Model: "none", R2: math.Inf(-1)}
	for _, m := range models {
		a, b, r2 := FitModel(xs, ys, m.f)
		if r2 > best.R2+1e-9 {
			best = Fit{Model: m.name, A: a, B: b, R2: r2}
		}
	}
	return best
}

// Models lists the candidate growth-model names, slowest-growing
// first — the tie-break order FitGrowth and CompareGrowth use.
func Models() []string {
	names := make([]string, len(models))
	for i, m := range models {
		names[i] = m.name
	}
	return names
}

// ModelFunc returns the transform f of a named model (y ≈ A + B·f(x)).
func ModelFunc(name string) (func(float64) float64, bool) {
	for _, m := range models {
		if m.name == name {
			return m.f, true
		}
	}
	return nil, false
}

// Verdict is the outcome of comparing every candidate growth model on
// one series: the preferred fit, the best competing fit, and the R²
// margin separating them. A small margin means the data cannot
// distinguish the two models over the sampled range — the honest
// reading of laptop-scale sweeps of slowly diverging functions.
type Verdict struct {
	// Preferred is the winning fit (FitGrowth's choice: best R², ties
	// to the slower-growing model).
	Preferred Fit
	// RunnerUp is the best fit among the other models.
	RunnerUp Fit
	// Margin is Preferred.R2 - RunnerUp.R2 (≥ ~0 by construction).
	Margin float64
}

// CompareGrowth fits every candidate model and returns the verdict.
func CompareGrowth(xs, ys []float64) Verdict {
	best := FitGrowth(xs, ys)
	runner := Fit{Model: "none", R2: math.Inf(-1)}
	for _, m := range models {
		if m.name == best.Model {
			continue
		}
		a, b, r2 := FitModel(xs, ys, m.f)
		if r2 > runner.R2+1e-9 {
			runner = Fit{Model: m.name, A: a, B: b, R2: r2}
		}
	}
	margin := best.R2 - runner.R2
	if math.IsInf(runner.R2, -1) {
		margin = 0
	}
	return Verdict{Preferred: best, RunnerUp: runner, Margin: margin}
}

// BootstrapSlopeCI returns a percentile-bootstrap 95% confidence
// interval for the slope B of the named model: the series is resampled
// with replacement `resamples` times (default 200 when ≤ 0), each
// resample is refit, and the 2.5%/97.5% quantiles of the slope
// estimates are returned. The resampling RNG is seeded explicitly, so
// equal inputs always produce equal intervals — the determinism the
// study artifact format relies on. Series with fewer than three
// points return a degenerate [B, B] interval.
func BootstrapSlopeCI(xs, ys []float64, model string, resamples int, seed int64) (lo, hi float64) {
	f, ok := ModelFunc(model)
	if !ok || len(xs) != len(ys) || len(xs) == 0 {
		return math.NaN(), math.NaN()
	}
	if len(xs) < 3 {
		_, b, _ := FitModel(xs, ys, f)
		return b, b
	}
	if resamples <= 0 {
		resamples = 200
	}
	r := rand.New(rand.NewSource(seed))
	slopes := make([]float64, resamples)
	bx := make([]float64, len(xs))
	by := make([]float64, len(ys))
	for i := range slopes {
		for j := range bx {
			k := r.Intn(len(xs))
			bx[j], by[j] = xs[k], ys[k]
		}
		_, b, _ := FitModel(bx, by, f)
		slopes[i] = b
	}
	return Quantile(slopes, 0.025), Quantile(slopes, 0.975)
}

// GrowthRatio returns ys[len-1]/ys[0]: how much the measurement grew
// across the sweep (≈1 for log log-like behavior over laptop ranges,
// ≈log(x_last)/log(x_first) for logarithmic behavior).
func GrowthRatio(ys []float64) float64 {
	if len(ys) < 2 || ys[0] == 0 {
		return math.NaN()
	}
	return ys[len(ys)-1] / ys[0]
}

// Table renders rows with a header as fixed-width aligned text.
type Table struct {
	Header []string
	Rows   [][]string
}

// Add appends a row; values are formatted with %v.
func (t *Table) Add(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// String implements fmt.Stringer.
func (t *Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}
