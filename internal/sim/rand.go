package sim

import (
	"math/rand"

	"awakemis/internal/rng"
)

// nodeSource is a splitmix64 stream: 8 bytes of state per node instead
// of the ~4.9KB of math/rand's default source, so million-node runs
// keep their RNG footprint negligible. Both engines derive every node's
// stream from (Config.Seed, node index) through this source, which is
// what makes runs bit-identical across engines and worker counts.
type nodeSource struct {
	state uint64
}

var _ rand.Source64 = (*nodeSource)(nil)

func (s *nodeSource) Seed(seed int64) { s.state = uint64(seed) }

func (s *nodeSource) Int63() int64 { return int64(s.Uint64() >> 1) }

func (s *nodeSource) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	return rng.Mix(s.state)
}

// newNodeRand returns node id's private randomness for a run seed. The
// stream derivation lives in internal/rng (rng.Stream) and is frozen:
// recorded runs replay bit-identically across engines and releases.
func newNodeRand(seed int64, id int) *rand.Rand {
	return rand.New(&nodeSource{state: uint64(rng.Stream(seed, int64(id)))})
}
