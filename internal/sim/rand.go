package sim

import "math/rand"

// nodeSource is a splitmix64 stream: 8 bytes of state per node instead
// of the ~4.9KB of math/rand's default source, so million-node runs
// keep their RNG footprint negligible. Both engines derive every node's
// stream from (Config.Seed, node index) through this source, which is
// what makes runs bit-identical across engines and worker counts.
type nodeSource struct {
	state uint64
}

var _ rand.Source64 = (*nodeSource)(nil)

func (s *nodeSource) Seed(seed int64) { s.state = uint64(seed) }

func (s *nodeSource) Int63() int64 { return int64(s.Uint64() >> 1) }

func (s *nodeSource) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// newNodeRand returns node id's private randomness for a run seed.
func newNodeRand(seed int64, id int) *rand.Rand {
	return rand.New(&nodeSource{state: uint64(mix(seed, int64(id)))})
}

// mix derives a per-node stream seed from the run seed (splitmix64
// finalizer).
func mix(seed, id int64) int64 {
	z := uint64(seed) + 0x9e3779b97f4a7c15*uint64(id+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}
