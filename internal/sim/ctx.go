package sim

import (
	"fmt"
	"math/rand"
)

// Program is the goroutine form of a per-node algorithm. It runs on its
// own goroutine and drives rounds through the Ctx. Returning from the
// program halts the node (its awake-round counter stops).
type Program func(ctx *Ctx)

func (Program) isNodeProgram() {}

type phase uint8

const (
	phaseCompute   phase = iota // in step (1)/(2): may Send, must Deliver
	phaseDelivered              // after Deliver: must end the round
)

type haltSignal struct{}
type quitSignal struct{}

// ctxBackend is the engine-side half of a Ctx: how staged sends are
// transmitted and how the node blocks between awake rounds. The
// lockstep engine and the stepped engine's goroutine adapter each
// implement it.
type ctxBackend interface {
	// deliver transmits the sends staged in c.out for the current round
	// and blocks until the round's inbox is available. It may panic with
	// quitSignal when the run is aborting.
	deliver(c *Ctx) []Inbound
	// endRound schedules the node to wake in round next and blocks until
	// that round begins, returning its number (always next). It may
	// panic with quitSignal when the run is aborting.
	endRound(c *Ctx, next int64) int64
}

// Ctx is a node's handle to the simulation in goroutine form. All
// methods must be called from the node's own program goroutine.
type Ctx struct {
	backend ctxBackend
	cfg     *Config
	id      int
	degree  int
	rng     *rand.Rand
	ph      phase
	round   int64
	out     []outMsg // sends staged for the current round
	extra   any      // per-node scratch usable by composed sub-algorithms
}

// Node returns the node's index. The model is anonymous: algorithms may
// use the index to record their output but must not base decisions on
// it (tests shuffle indices to keep implementations honest).
func (c *Ctx) Node() int { return c.id }

// N returns the common upper bound on the network size known to nodes.
func (c *Ctx) N() int { return c.cfg.N }

// Bandwidth returns the per-message bit budget B.
func (c *Ctx) Bandwidth() int { return c.cfg.Bandwidth }

// Degree returns the node's number of ports.
func (c *Ctx) Degree() int { return c.degree }

// Round returns the current round number.
func (c *Ctx) Round() int64 { return c.round }

// Rand returns the node's private randomness source.
func (c *Ctx) Rand() *rand.Rand { return c.rng }

// Extra returns mutable per-node scratch shared between composed
// sub-algorithms running on the same node.
func (c *Ctx) Extra() any { return c.extra }

// SetExtra stores per-node scratch.
func (c *Ctx) SetExtra(v any) { c.extra = v }

// Send queues a message on the given port for this round. It must be
// called before Deliver. If the receiving neighbor is asleep this round,
// the message is lost.
func (c *Ctx) Send(port int, m Message) {
	if c.ph != phaseCompute {
		panic("sim: Send after Deliver in the same round")
	}
	if port < 0 || port >= c.degree {
		panic(fmt.Sprintf("sim: node %d: invalid port %d (degree %d)", c.id, port, c.degree))
	}
	if c.cfg.Strict {
		if bits := m.Bits(); bits > c.cfg.Bandwidth {
			panic(&BandwidthError{Node: c.id, Port: port, Bits: bits, Budget: c.cfg.Bandwidth})
		}
	}
	c.out = append(c.out, outMsg{port, m})
}

// Broadcast sends m on every port.
func (c *Ctx) Broadcast(m Message) {
	for p := 0; p < c.degree; p++ {
		c.Send(p, m)
	}
}

// Deliver completes the send step of the current round and returns the
// messages received this round, sorted by arrival port. It must be
// called exactly once per awake round (ending the round calls it
// implicitly, discarding the inbox).
func (c *Ctx) Deliver() []Inbound {
	if c.ph != phaseCompute {
		panic("sim: Deliver called twice in one round")
	}
	c.ph = phaseDelivered
	return c.backend.deliver(c)
}

// Advance ends the current round with the node staying awake in the
// next round.
func (c *Ctx) Advance() { c.endRound(c.round + 1) }

// Sleep ends the current round and sleeps for k full rounds, waking in
// round Round()+k+1. Sleep(0) is equivalent to Advance.
func (c *Ctx) Sleep(k int64) {
	if k < 0 {
		panic("sim: negative sleep")
	}
	c.endRound(c.round + 1 + k)
}

// SleepUntil ends the current round and wakes the node in round r.
func (c *Ctx) SleepUntil(r int64) {
	if r <= c.round {
		panic(fmt.Sprintf("sim: SleepUntil(%d) not after current round %d", r, c.round))
	}
	c.endRound(r)
}

// Halt terminates the node's program immediately.
func (c *Ctx) Halt() { panic(haltSignal{}) }

func (c *Ctx) endRound(next int64) {
	if c.ph == phaseCompute {
		_ = c.Deliver() // complete the round's receive step; discard inbox
	}
	c.round = c.backend.endRound(c, next)
	c.ph = phaseCompute
}
