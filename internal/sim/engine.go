package sim

import (
	"context"
	"fmt"

	"awakemis/internal/graph"
)

// NodeProgram is either form of per-node algorithm: Program (goroutine
// form) or StepProgram (state-machine form). Every Engine accepts both,
// adapting whichever is not its native form.
type NodeProgram interface {
	isNodeProgram()
}

// Engine executes a node program over a graph. Implementations must
// honor the package's determinism contract: identical (graph, program,
// Config.Seed) runs produce identical Metrics and per-node outputs on
// every engine.
type Engine interface {
	// Name identifies the engine ("lockstep" or "stepped").
	Name() string
	// Run executes prog on every node of g under cfg. cfg.Engine is
	// ignored (the receiver runs the program). Engines poll ctx at every
	// round boundary: once it is cancelled or past its deadline, Run
	// stops the simulation, releases every node, and returns an error
	// wrapping ctx.Err().
	Run(ctx context.Context, g *graph.Graph, prog NodeProgram, cfg Config) (*Metrics, error)
}

var defaultEngine Engine = NewSteppedEngine(0)

// Default returns the engine Run uses when Config.Engine is nil: the
// stepped engine with one worker per CPU.
func Default() Engine { return defaultEngine }

func engineOf(cfg Config) Engine {
	if cfg.Engine != nil {
		return cfg.Engine
	}
	return defaultEngine
}

// EngineByName resolves an engine from its CLI/config name: "stepped"
// (or "") with the given worker count, or "lockstep".
func EngineByName(name string, workers int) (Engine, error) {
	switch name {
	case "", "stepped":
		if workers == 0 {
			return defaultEngine, nil
		}
		return NewSteppedEngine(workers), nil
	case "lockstep":
		return NewLockstepEngine(), nil
	default:
		return nil, fmt.Errorf("sim: unknown engine %q (want stepped or lockstep)", name)
	}
}
