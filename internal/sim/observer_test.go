package sim

import (
	"context"
	"testing"

	"awakemis/internal/graph"
)

// obsLog records every RoundStat it observes.
type obsLog struct {
	stats []RoundStat
}

func (o *obsLog) ObserveRound(st RoundStat) { o.stats = append(o.stats, st) }

// staggerNode broadcasts every awake round and sleeps id%3 extra rounds
// between wakes, so the schedule loses messages to sleeping receivers
// and skips rounds where nobody is awake — exercising every RoundStat
// field.
type staggerNode struct {
	id     int
	rounds int64
}

func (s *staggerNode) Start(out *Outbox) { out.Broadcast(intMsg(0)) }

func (s *staggerNode) OnWake(round int64, inbox []Inbound, out *Outbox) (int64, bool) {
	if round >= s.rounds {
		return 0, true
	}
	out.Broadcast(intMsg(round))
	return round + 1 + int64(s.id%3), false
}

var staggerProg StepProgram = func(env *NodeEnv) StepNode {
	return &staggerNode{id: env.ID, rounds: 20}
}

// TestObserverTotalsMatchMetrics pins the observer identity: summing
// the per-round deltas over all observed rounds reproduces the final
// Metrics exactly, on both engines at several worker counts, and the
// deterministic RoundStat fields are bit-identical across all engine
// configurations.
func TestObserverTotalsMatchMetrics(t *testing.T) {
	g := graph.Grid(16, 16)
	var ref []RoundStat
	var refName string
	for name, eng := range testEngines() {
		obs := &obsLog{}
		cfg := Config{Seed: 11, Engine: eng, Observer: obs}
		m, err := eng.Run(context.Background(), g, staggerProg, cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		var sent, delivered, bits, awake int64
		prev := int64(-1)
		for _, st := range obs.stats {
			if st.Round <= prev {
				t.Fatalf("%s: rounds not strictly increasing: %d after %d", name, st.Round, prev)
			}
			prev = st.Round
			sent += st.Sent
			delivered += st.Delivered
			bits += st.Bits
			awake += int64(st.Awake)
		}
		if int64(len(obs.stats)) != m.ExecutedRounds {
			t.Errorf("%s: observed %d rounds, metrics executed %d", name, len(obs.stats), m.ExecutedRounds)
		}
		if last := obs.stats[len(obs.stats)-1]; last.Round+1 != m.Rounds {
			t.Errorf("%s: last observed round %d, metrics rounds %d", name, last.Round, m.Rounds)
		}
		if sent != m.MessagesSent || delivered != m.MessagesDelivered || bits != m.BitsSent {
			t.Errorf("%s: observer totals sent/delivered/bits = %d/%d/%d, metrics %d/%d/%d",
				name, sent, delivered, bits, m.MessagesSent, m.MessagesDelivered, m.BitsSent)
		}
		if awake != m.TotalAwake {
			t.Errorf("%s: observer awake total %d, metrics %d", name, awake, m.TotalAwake)
		}
		if delivered == sent {
			t.Errorf("%s: schedule lost no messages; test is not exercising losses", name)
		}
		if ref == nil {
			ref, refName = obs.stats, name
			continue
		}
		if len(ref) != len(obs.stats) {
			t.Fatalf("round count diverges: %s=%d vs %s=%d", refName, len(ref), name, len(obs.stats))
		}
		for i := range ref {
			a, b := ref[i], obs.stats[i]
			a.Elapsed, b.Elapsed = 0, 0 // wall time is the only nondeterministic field
			if a != b {
				t.Fatalf("round stat %d diverges: %s=%+v vs %s=%+v", i, refName, a, name, b)
			}
		}
	}
}

// TestObserverMetricsUnchanged asserts that attaching an observer never
// perturbs the run itself: metrics are bit-identical with and without.
func TestObserverMetricsUnchanged(t *testing.T) {
	g := graph.Cycle(64)
	bare, err := RunStep(g, staggerProg, Config{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	observed, err := RunStep(g, staggerProg, Config{Seed: 5, Observer: &obsLog{}})
	if err != nil {
		t.Fatal(err)
	}
	if bare.MessagesSent != observed.MessagesSent || bare.Rounds != observed.Rounds ||
		bare.TotalAwake != observed.TotalAwake || bare.BitsSent != observed.BitsSent {
		t.Errorf("observer perturbed the run: bare=%+v observed=%+v", bare, observed)
	}
}

// TestObserverRoundAllocs extends the zero-allocation guard to the
// observer hook: with the observer nil the round loop still allocates
// nothing (the probe is a single branch), and with a recording observer
// attached the budget is at most one allocation per round (the
// observer's own append, amortized).
func TestObserverRoundAllocs(t *testing.T) {
	run := func(t *testing.T, obs RoundObserver, budget float64) {
		g := graph.Cycle(512)
		cfg, err := Config{Seed: 7, Observer: obs}.withDefaults(g.N())
		if err != nil {
			t.Fatal(err)
		}
		rs, err := newStepState(g, allocProbe, cfg, true, 1)
		if err != nil {
			t.Fatal(err)
		}
		defer rs.close()
		for i := 0; i < 8; i++ {
			if err := rs.round(1); err != nil {
				t.Fatal(err)
			}
		}
		avg := testing.AllocsPerRun(100, func() {
			if err := rs.round(1); err != nil {
				t.Fatal(err)
			}
		})
		if avg > budget {
			t.Errorf("steady-state round allocates %.2f objects/round, budget %.0f", avg, budget)
		}
	}
	t.Run("nil-observer", func(t *testing.T) { run(t, nil, 0) })
	t.Run("attached", func(t *testing.T) { run(t, &obsLog{}, 1) })
}
