package sim

import (
	"context"
	"fmt"
	"sync"

	"awakemis/internal/graph"
)

// lockstepEngine is the reference engine: one goroutine per node,
// synchronized in lock-step by channels. It is the seed simulator's
// engine, kept for cross-checking the stepped engine and for debugging
// (a node program is an ordinary goroutine with a readable stack).
type lockstepEngine struct{}

// NewLockstepEngine returns the goroutine-per-node engine.
func NewLockstepEngine() Engine { return lockstepEngine{} }

// Name implements Engine.
func (lockstepEngine) Name() string { return "lockstep" }

// Run implements Engine. Step programs are adapted to goroutine form.
func (lockstepEngine) Run(ctx context.Context, g *graph.Graph, prog NodeProgram, cfg Config) (*Metrics, error) {
	switch p := prog.(type) {
	case Program:
		return runLockstep(ctx, g, p, cfg)
	case StepProgram:
		return runLockstep(ctx, g, p.asProgram(), cfg)
	default:
		return nil, fmt.Errorf("sim: lockstep: unsupported program type %T", prog)
	}
}

type eventKind uint8

const (
	evSends eventKind = iota // node finished its send step
	evEnd                    // node finished the round (nextWake set)
)

type nodeEvent struct {
	id   int
	kind eventKind
}

type lsNode struct {
	ctx      *Ctx
	cont     chan struct{}  // engine -> node: your awake round began
	inboxCh  chan []Inbound // engine -> node: receive step payload
	inbox    []Inbound      // staged by engine during routing
	nextWake int64          // written by node before evEnd
	roundNow int64          // written by engine before cont
	err      error          // program panic, converted to error
	halted   bool
}

type lockstepRun struct {
	g      *graph.Graph
	cfg    Config
	states []*lsNode
	events chan nodeEvent
	quit   chan struct{}
	wg     sync.WaitGroup
	m      Metrics
}

// outOf implements router.
func (e *lockstepRun) outOf(v int) []outMsg { return e.states[v].ctx.out }

// inboxOf implements router.
func (e *lockstepRun) inboxOf(v int) *[]Inbound { return &e.states[v].inbox }

// deliver implements ctxBackend: hand the round's sends to the engine
// and block for the inbox.
func (e *lockstepRun) deliver(c *Ctx) []Inbound {
	st := e.states[c.id]
	e.sendEvent(nodeEvent{c.id, evSends})
	select {
	case in := <-st.inboxCh:
		return in
	case <-e.quit:
		panic(quitSignal{})
	}
}

// endRound implements ctxBackend: record the wake time and block until
// the engine starts the node's next awake round.
func (e *lockstepRun) endRound(c *Ctx, next int64) int64 {
	st := e.states[c.id]
	st.nextWake = next
	e.sendEvent(nodeEvent{c.id, evEnd})
	select {
	case <-st.cont:
		return st.roundNow
	case <-e.quit:
		panic(quitSignal{})
	}
}

func (e *lockstepRun) sendEvent(ev nodeEvent) {
	select {
	case e.events <- ev:
	case <-e.quit:
		panic(quitSignal{})
	}
}

func runLockstep(ctx context.Context, g *graph.Graph, prog Program, cfg Config) (*Metrics, error) {
	n := g.N()
	cfg, err := cfg.withDefaults(n)
	if err != nil {
		return nil, err
	}

	e := &lockstepRun{
		g:      g,
		cfg:    cfg,
		states: make([]*lsNode, n),
		events: make(chan nodeEvent, n),
		quit:   make(chan struct{}),
	}
	e.m.AwakePerNode = make([]int64, n)

	q := newWakeQueue()
	for v := 0; v < n; v++ {
		st := &lsNode{
			cont:    make(chan struct{}, 1),
			inboxCh: make(chan []Inbound, 1),
		}
		st.ctx = &Ctx{
			backend: e,
			cfg:     &e.cfg,
			id:      v,
			degree:  g.Degree(v),
			rng:     newNodeRand(cfg.Seed, v),
		}
		e.states[v] = st
		q.add(0, v) // all nodes start awake in round 0
		e.wg.Add(1)
		go e.nodeMain(st, prog)
	}

	err = e.loop(ctx, q)
	close(e.quit)
	e.wg.Wait()
	if err == nil {
		for v, st := range e.states {
			if st.err != nil {
				err = fmt.Errorf("sim: node %d: %w", v, st.err)
				break
			}
		}
	}
	return &e.m, err
}

func (e *lockstepRun) nodeMain(st *lsNode, prog Program) {
	defer e.wg.Done()
	ctx := st.ctx
	// Wait for round 0.
	select {
	case <-st.cont:
		ctx.round = st.roundNow
	case <-e.quit:
		return
	}
	aborted := func() (aborted bool) {
		defer func() {
			switch r := recover().(type) {
			case nil, haltSignal:
			case quitSignal:
				aborted = true
			case error:
				st.err = fmt.Errorf("program panic: %w", r)
			default:
				st.err = fmt.Errorf("program panic: %v", r)
			}
		}()
		prog(ctx)
		return false
	}()
	if aborted {
		return
	}
	// Graceful halt from whatever point in the round the program stopped.
	func() {
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(quitSignal); !ok {
					panic(r)
				}
			}
		}()
		if ctx.ph == phaseCompute {
			ctx.ph = phaseDelivered
			e.sendEvent(nodeEvent{ctx.id, evSends})
			select {
			case <-st.inboxCh:
			case <-e.quit:
				panic(quitSignal{})
			}
		}
		st.halted = true
		e.sendEvent(nodeEvent{ctx.id, evEnd})
	}()
}

func (e *lockstepRun) loop(ctx context.Context, q *wakeQueue) error {
	stamp := make([]int64, len(e.states)) // stamp[v] == clock+1 iff v awake now
	cur := make([]int32, len(e.states))   // routing's per-receiver port cursors
	probe := roundProbe{obs: e.cfg.Observer}
	for !q.empty() {
		// Honor cancellation at every round boundary. All node goroutines
		// are parked between rounds here, so returning is safe: the
		// caller closes quit, which unwinds every program.
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("sim: aborted after round %d: %w", e.m.Rounds, err)
		}
		clock, awake := q.pop()
		if clock > e.cfg.MaxRounds {
			return fmt.Errorf("%w (round %d)", ErrMaxRounds, clock)
		}
		probe.begin(&e.m)
		e.m.ExecutedRounds++
		if clock+1 > e.m.Rounds {
			e.m.Rounds = clock + 1
		}

		// Step 1+2: wake everyone scheduled for this round; collect sends.
		for _, v := range awake {
			st := e.states[v]
			st.roundNow = clock
			e.m.noteAwake(v, clock, e.cfg.Tracer)
			st.cont <- struct{}{}
		}
		if err := e.collect(len(awake), evSends); err != nil {
			return err
		}

		// Routing: deliver only between mutually awake neighbors. The
		// evSends handshake ordered each node's ctx.out writes before
		// this read; the inboxCh send below orders the reset after it.
		routeRound(e.g, &e.m, e.cfg.Tracer, clock, awake, stamp, cur, e)

		// Step 3: deliver inboxes (sorted by port for determinism).
		for _, v := range awake {
			st := e.states[v]
			st.ctx.out = st.ctx.out[:0]
			in := st.inbox
			st.inbox = nil
			sortInbox(in)
			st.inboxCh <- in
		}
		if err := e.collect(len(awake), evEnd); err != nil {
			return err
		}

		// Reschedule.
		for _, v := range awake {
			st := e.states[v]
			if st.halted || st.err != nil {
				continue
			}
			if st.nextWake <= clock {
				return fmt.Errorf("sim: node %d scheduled wake %d not after round %d", v, st.nextWake, clock)
			}
			q.add(st.nextWake, v)
		}
		probe.end(&e.m, clock, len(awake))
		q.recycle(awake)
	}
	return nil
}

// collect waits for exactly count events of the given kind; an evEnd
// arriving during the send phase indicates the node errored before
// delivering, which aborts the run.
func (e *lockstepRun) collect(count int, want eventKind) error {
	for i := 0; i < count; i++ {
		ev := <-e.events
		if ev.kind != want {
			return fmt.Errorf("sim: node %d: protocol violation (program error: %v)",
				ev.id, e.states[ev.id].err)
		}
	}
	return nil
}
