package sim

import (
	"context"
	"testing"

	"awakemis/internal/graph"
)

// pingNode is a minimal Machine-driven StepNode: broadcast a bit in
// rounds 0 and 2, count what arrives, halt.
type pingNode struct {
	Machine
	got int
	out *[]int
	id  int
}

func (n *pingNode) Start(out *Outbox) {
	n.Begin(out, func() {
		n.Yield(0, func(o *Outbox) { o.Broadcast(floodBit{}) }, func(in []Inbound) {
			n.got += len(in)
			n.Yield(2, func(o *Outbox) { o.Broadcast(floodBit{}) }, func(in []Inbound) {
				n.got += len(in)
				(*n.out)[n.id] = n.got
			})
		})
	})
}

type floodBit struct{}

func (floodBit) Bits() int { return 1 }

// TestMachineDrivesStepNode checks the CPS trampoline end to end on
// both engines: wakes in exactly the yielded rounds, sends staged by
// the yield's send closure, halt on continuation return.
func TestMachineDrivesStepNode(t *testing.T) {
	g := graph.Cycle(8)
	for ename, eng := range map[string]Engine{
		"stepped":  NewSteppedEngine(2),
		"lockstep": NewLockstepEngine(),
	} {
		got := make([]int, g.N())
		prog := StepProgram(func(env *NodeEnv) StepNode {
			return &pingNode{out: &got, id: env.ID}
		})
		m, err := eng.Run(context.Background(), g, prog, Config{Seed: 1})
		if err != nil {
			t.Fatalf("%s: %v", ename, err)
		}
		for v, c := range got {
			if c != 4 { // 2 neighbors × 2 attended rounds
				t.Fatalf("%s: node %d received %d messages, want 4", ename, v, c)
			}
		}
		if m.Rounds != 3 || m.MaxAwake != 2 {
			t.Fatalf("%s: rounds=%d maxAwake=%d, want 3/2", ename, m.Rounds, m.MaxAwake)
		}
	}
}

// TestMachineNonTailYieldPanics: a second Yield without an intervening
// wake is a CPS conversion bug and must be caught loudly.
func TestMachineNonTailYieldPanics(t *testing.T) {
	var m Machine
	var out Outbox
	defer func() {
		if recover() == nil {
			t.Fatal("double Yield did not panic")
		}
	}()
	m.Begin(&out, func() {
		m.Yield(0, nil, func([]Inbound) {})
		m.Yield(1, nil, func([]Inbound) {})
	})
}

// TestMachineBeginMustScheduleRoundZero: every node is awake in round
// 0, so a prologue yielding a later round is a bug.
func TestMachineBeginMustScheduleRoundZero(t *testing.T) {
	var m Machine
	var out Outbox
	defer func() {
		if recover() == nil {
			t.Fatal("Begin yielding round 3 did not panic")
		}
	}()
	m.Begin(&out, func() {
		m.Yield(3, nil, func([]Inbound) {})
	})
}
