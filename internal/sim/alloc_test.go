package sim

import (
	"testing"

	"awakemis/internal/graph"
)

// emptyMsg is a zero-size, zero-bit message: broadcasting it exercises
// the full send/route/deliver path without boxing allocations of its
// own, so any allocation the guard sees belongs to the engine.
type emptyMsg struct{}

func (emptyMsg) Bits() int { return 0 }

// allocProbeNode wakes every round forever and broadcasts on all ports,
// keeping every inbox and outbox at steady occupancy.
type allocProbeNode struct{}

func (allocProbeNode) Start(out *Outbox) { out.Broadcast(emptyMsg{}) }

func (allocProbeNode) OnWake(round int64, inbox []Inbound, out *Outbox) (int64, bool) {
	out.Broadcast(emptyMsg{})
	return round + 1, false
}

var allocProbe StepProgram = func(env *NodeEnv) StepNode { return allocProbeNode{} }

// TestSteppedRoundZeroAllocs pins the tentpole invariant of the stepped
// engine: once buffers have grown to their steady-state capacity, a
// full round — routing through precomputed CSR reverse ports, inbox
// sorting, every OnWake fan-out, and rescheduling — performs zero heap
// allocations for native step programs. A regression here (a closure
// creeping into the hot path, sort.Slice, per-round goroutines, inbox
// reallocation) fails the test rather than silently costing 10x at
// n=10⁷.
func TestSteppedRoundZeroAllocs(t *testing.T) {
	// Cycle(512) keeps every node awake with two messages per inbox per
	// round; 512 ≥ minParallel so the workers=4 case exercises the pool.
	for _, workers := range []int{1, 4} {
		t.Run(map[int]string{1: "workers=1", 4: "workers=4"}[workers], func(t *testing.T) {
			g := graph.Cycle(512)
			cfg, err := Config{Seed: 7}.withDefaults(g.N())
			if err != nil {
				t.Fatal(err)
			}
			rs, err := newStepState(g, allocProbe, cfg, true, workers)
			if err != nil {
				t.Fatal(err)
			}
			defer rs.close()

			// Warm up: grow inboxes for both round parities, the wake
			// queue's bucket pool, and the outbox slices.
			for i := 0; i < 8; i++ {
				if err := rs.round(workers); err != nil {
					t.Fatal(err)
				}
			}

			avg := testing.AllocsPerRun(100, func() {
				if err := rs.round(workers); err != nil {
					t.Fatal(err)
				}
			})
			if avg != 0 {
				t.Errorf("steady-state round allocates %.1f objects/round, want 0", avg)
			}
		})
	}
}

// TestAdapterInboxNotReused documents the adapter boundary of the reuse
// optimization: goroutine-form programs receive their inbox through
// Ctx.Deliver, which makes no borrowing promise, so the engine must
// hand the slice over rather than truncate it for the next round.
func TestAdapterInboxNotReused(t *testing.T) {
	g := graph.Cycle(8)
	var retained [][]Inbound
	prog := Program(func(ctx *Ctx) {
		for r := 0; r < 4; r++ {
			ctx.Broadcast(emptyMsg{})
			in := ctx.Deliver()
			if ctx.id == 0 {
				retained = append(retained, in)
			}
			ctx.Advance()
		}
	})
	if _, err := Run(g, prog, Config{Seed: 3}); err != nil {
		t.Fatal(err)
	}
	seen := map[*Inbound]bool{}
	for _, in := range retained {
		if len(in) == 0 {
			continue
		}
		if seen[&in[0]] {
			t.Fatal("adapter-delivered inbox buffer was reused across rounds")
		}
		seen[&in[0]] = true
		for _, ib := range in {
			if _, ok := ib.Msg.(emptyMsg); !ok {
				t.Fatalf("retained inbox corrupted: %T", ib.Msg)
			}
		}
	}
	if len(retained) < 3 {
		t.Fatalf("expected node 0 to retain inboxes from several rounds, got %d", len(retained))
	}
}
