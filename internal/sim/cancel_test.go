package sim

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"awakemis/internal/graph"
)

// spinNode wakes every round forever: the worst case for cancellation,
// since the run would otherwise only stop at MaxRounds.
type spinNode struct{}

func (spinNode) Start(out *Outbox) {}
func (spinNode) OnWake(round int64, inbox []Inbound, out *Outbox) (int64, bool) {
	return round + 1, false
}

func spinStepProgram() StepProgram {
	return func(env *NodeEnv) StepNode { return spinNode{} }
}

func spinGoroutineProgram() Program {
	return func(ctx *Ctx) {
		for {
			ctx.Advance()
		}
	}
}

// cancelEngines is the grid the cancellation contract covers: the
// lockstep engine and the stepped engine at several worker counts.
func cancelEngines() map[string]Engine {
	return map[string]Engine{
		"lockstep":  NewLockstepEngine(),
		"stepped-1": NewSteppedEngine(1),
		"stepped-4": NewSteppedEngine(4),
	}
}

func TestCancelMidRunBothEngines(t *testing.T) {
	g := graph.Cycle(64)
	progs := map[string]NodeProgram{
		"step-form":      spinStepProgram(),
		"goroutine-form": spinGoroutineProgram(),
	}
	for ename, eng := range cancelEngines() {
		for pname, prog := range progs {
			t.Run(ename+"/"+pname, func(t *testing.T) {
				ctx, cancel := context.WithCancel(context.Background())
				go func() {
					time.Sleep(10 * time.Millisecond)
					cancel()
				}()
				start := time.Now()
				m, err := eng.Run(ctx, g, prog, Config{Seed: 1})
				elapsed := time.Since(start)
				if !errors.Is(err, context.Canceled) {
					t.Fatalf("err = %v, want context.Canceled", err)
				}
				if elapsed > 5*time.Second {
					t.Fatalf("cancellation took %v; not prompt", elapsed)
				}
				if m == nil {
					t.Fatal("metrics should describe the partial run")
				}
				// The run was killed mid-flight: it must have made progress
				// but not reached the MaxRounds backstop.
				if m.Rounds < 1 || m.Rounds >= 1<<40 {
					t.Errorf("partial rounds = %d", m.Rounds)
				}
			})
		}
	}
}

func TestDeadlineExceededBothEngines(t *testing.T) {
	g := graph.Cycle(32)
	for ename, eng := range cancelEngines() {
		t.Run(ename, func(t *testing.T) {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
			defer cancel()
			_, err := eng.Run(ctx, g, spinStepProgram(), Config{Seed: 2})
			if !errors.Is(err, context.DeadlineExceeded) {
				t.Fatalf("err = %v, want context.DeadlineExceeded", err)
			}
		})
	}
}

func TestPreCancelledContextRunsNothing(t *testing.T) {
	g := graph.Cycle(8)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for ename, eng := range cancelEngines() {
		m, err := eng.Run(ctx, g, spinStepProgram(), Config{Seed: 3})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("%s: err = %v, want context.Canceled", ename, err)
		}
		if m != nil && m.ExecutedRounds > 0 {
			t.Errorf("%s: executed %d rounds under a dead context", ename, m.ExecutedRounds)
		}
	}
}

// panicAtRoundProgram panics on every node once the given round is
// reached — a mid-run abort that exercises the engines' failure path.
func panicAtRoundProgram(r int64) Program {
	return func(ctx *Ctx) {
		for {
			if ctx.Round() >= r {
				panic("boom")
			}
			ctx.Advance()
		}
	}
}

// TestAbortedRunsLeakNoGoroutines pins down goroutineAdapter.shutdown
// (and the lockstep engine's equivalent): every way a run can abort
// mid-round — context cancellation, deadline, per-node panic, the
// MaxRounds backstop — must join all per-node program goroutines before
// Run returns. A leak of even one node per run compounds quickly under
// the service daemon's batch traffic, so the test drives many aborted
// runs and requires the goroutine count to settle back to baseline.
func TestAbortedRunsLeakNoGoroutines(t *testing.T) {
	g := graph.Cycle(96)
	engines := cancelEngines()
	baseline := runtime.NumGoroutine()

	for ename, eng := range engines {
		for i := 0; i < 5; i++ {
			// Context cancelled mid-round: per-node goroutines are parked in
			// the adapter/backend handshake when quit closes.
			ctx, cancel := context.WithCancel(context.Background())
			go func() {
				time.Sleep(time.Millisecond)
				cancel()
			}()
			if _, err := eng.Run(ctx, g, spinGoroutineProgram(), Config{Seed: int64(i)}); err == nil {
				t.Fatalf("%s: cancelled run reported success", ename)
			}
			cancel()

			// Per-node panic mid-round.
			if _, err := eng.Run(context.Background(), g, panicAtRoundProgram(50), Config{Seed: int64(i)}); err == nil {
				t.Fatalf("%s: panicking run reported success", ename)
			}

			// MaxRounds backstop.
			if _, err := eng.Run(context.Background(), g, spinGoroutineProgram(), Config{Seed: int64(i), MaxRounds: 64}); !errors.Is(err, ErrMaxRounds) {
				t.Fatalf("%s: err = %v, want ErrMaxRounds", ename, err)
			}
		}
	}

	// Shutdown joins synchronously, but give the runtime a moment to
	// retire exiting goroutines before declaring a leak.
	deadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC()
		now := runtime.NumGoroutine()
		if now <= baseline+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines: baseline %d, now %d after aborted runs; stacks:\n%s",
				baseline, now, buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestUncancelledContextHarmless(t *testing.T) {
	// A live context must not perturb results: same metrics with and
	// without one, on both engines.
	g := graph.Cycle(16)
	prog := spinStepProgram()
	cfg := Config{Seed: 4, MaxRounds: 100}
	for ename, eng := range cancelEngines() {
		_, plain := eng.Run(context.Background(), g, prog, cfg)
		ctx, cancel := context.WithCancel(context.Background())
		_, withCtx := eng.Run(ctx, g, prog, cfg)
		cancel()
		if !errors.Is(plain, ErrMaxRounds) || !errors.Is(withCtx, ErrMaxRounds) {
			t.Fatalf("%s: want ErrMaxRounds from both, got %v / %v", ename, plain, withCtx)
		}
	}
}
