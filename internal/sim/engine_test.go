package sim

import (
	"sync"
	"testing"

	"awakemis/internal/graph"
)

// recordingTracer checks the Tracer contract: events arrive from the
// engine goroutine in nondecreasing round order.
type recordingTracer struct {
	mu         sync.Mutex
	awake      []int64
	messages   int
	delivered  int
	outOfOrder bool
	lastRound  int64
}

func (r *recordingTracer) NodeAwake(round int64, node int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if round < r.lastRound {
		r.outOfOrder = true
	}
	r.lastRound = round
	r.awake = append(r.awake, round)
}

func (r *recordingTracer) Message(round int64, from, to, bits int, delivered bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if round < r.lastRound {
		r.outOfOrder = true
	}
	r.messages++
	if delivered {
		r.delivered++
	}
}

func TestTracerEventStream(t *testing.T) {
	g := graph.Cycle(8)
	tr := &recordingTracer{}
	prog := func(ctx *Ctx) {
		ctx.Broadcast(intMsg(1))
		ctx.Deliver()
		ctx.Sleep(3)
		ctx.Broadcast(intMsg(2))
		ctx.Deliver()
	}
	m, err := Run(g, prog, Config{Seed: 1, Tracer: tr})
	if err != nil {
		t.Fatal(err)
	}
	if tr.outOfOrder {
		t.Error("tracer saw rounds out of order")
	}
	if int64(len(tr.awake)) != m.TotalAwake {
		t.Errorf("tracer awake events %d != TotalAwake %d", len(tr.awake), m.TotalAwake)
	}
	if int64(tr.messages) != m.MessagesSent {
		t.Errorf("tracer messages %d != sent %d", tr.messages, m.MessagesSent)
	}
	if int64(tr.delivered) != m.MessagesDelivered {
		t.Errorf("tracer delivered %d != %d", tr.delivered, m.MessagesDelivered)
	}
}

func TestSleepImmediatelyAtStart(t *testing.T) {
	// A node may end round 0 without any sends or explicit Deliver.
	g := graph.New(2)
	prog := func(ctx *Ctx) {
		if ctx.Node() == 0 {
			ctx.SleepUntil(5)
			if ctx.Round() != 5 {
				t.Errorf("woke at %d, want 5", ctx.Round())
			}
			return
		}
	}
	m, err := Run(g, prog, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if m.AwakePerNode[0] != 2 || m.AwakePerNode[1] != 1 {
		t.Errorf("awake = %v, want [2 1]", m.AwakePerNode)
	}
}

func TestHaltedNeighborsDoNotDeadlock(t *testing.T) {
	// One side of every edge halts in round 0; the other keeps sending
	// into the void for many rounds. The engine must neither deadlock
	// nor deliver anything.
	g := graph.CompleteBipartite(4, 4)
	prog := func(ctx *Ctx) {
		if ctx.Node() < 4 {
			return // halt immediately
		}
		for i := 0; i < 50; i++ {
			ctx.Broadcast(intMsg(int64(i)))
			in := ctx.Deliver()
			for _, m := range in {
				if _, ok := m.Msg.(intMsg); ok && ctx.Round() > 0 {
					t.Error("received message from halted neighbor")
				}
			}
			ctx.Advance()
		}
	}
	m, err := Run(g, prog, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Only round 0 delivers: senders 4..7 each reach the four not-yet-
	// halted nodes 0..3 (halting nodes are still awake in round 0).
	if m.MessagesDelivered != 16 {
		t.Errorf("delivered = %d, want 16", m.MessagesDelivered)
	}
}

func TestZeroDegreeBroadcast(t *testing.T) {
	g := graph.New(3)
	prog := func(ctx *Ctx) {
		ctx.Broadcast(intMsg(1)) // no ports: no-op
		in := ctx.Deliver()
		if len(in) != 0 {
			t.Error("isolated node received messages")
		}
	}
	m, err := Run(g, prog, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if m.MessagesSent != 0 {
		t.Errorf("messages = %d, want 0", m.MessagesSent)
	}
}

func TestLongSparseScheduleMetrics(t *testing.T) {
	// Nodes wake in disjoint singleton rounds; ExecutedRounds must equal
	// the number of distinct wake rounds.
	g := graph.New(5)
	prog := func(ctx *Ctx) {
		id := int64(ctx.Node())
		ctx.SleepUntil(1000 + 100*id)
	}
	m, err := Run(g, prog, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if m.ExecutedRounds != 6 { // round 0 plus five wake rounds
		t.Errorf("ExecutedRounds = %d, want 6", m.ExecutedRounds)
	}
	if m.Rounds != 1401 {
		t.Errorf("Rounds = %d, want 1401", m.Rounds)
	}
}
