package sim

import (
	"fmt"
	"sync"
)

// goroutineAdapter runs goroutine-form programs on the stepped engine:
// each node's program runs on its own goroutine, paused at round
// boundaries, and a gnode translates between the program's Ctx calls
// and the engine's StepNode protocol. The translation preserves the
// program's per-node execution order exactly, so adapted programs are
// bit-identical with their lockstep runs.
//
// The adapter is run-scoped: shutdown unblocks and joins every program
// goroutine (needed when the engine aborts mid-run).
type goroutineAdapter struct {
	prog Program
	cfg  *Config
	quit chan struct{}
	wg   sync.WaitGroup
}

func newGoroutineAdapter(prog Program, cfg *Config) *goroutineAdapter {
	return &goroutineAdapter{prog: prog, cfg: cfg, quit: make(chan struct{})}
}

func (a *goroutineAdapter) stepProgram() StepProgram {
	return func(env *NodeEnv) StepNode {
		return &gnode{
			a:      a,
			env:    env,
			yield:  make(chan gyield),
			resume: make(chan gresume),
		}
	}
}

// shutdown aborts any still-running program goroutines and waits for
// them to exit. It is called (deferred) after the engine's run loop
// returns — normally, on context cancellation, or on a node failure —
// at which point no OnWake call is in flight and every live program
// goroutine is parked in a select that includes quit: closing it
// unwinds each program via quitSignal, so Wait cannot hang and no
// per-node goroutine outlives the run (asserted by the leak test in
// cancel_test.go).
func (a *goroutineAdapter) shutdown() {
	close(a.quit)
	a.wg.Wait()
}

type yieldKind uint8

const (
	ySends yieldKind = iota // program finished a round's send step
	yEnd                    // program ended the round (next set)
	yDone                   // program halted cleanly
	yErr                    // program panicked
)

type gyield struct {
	kind  yieldKind
	sends []outMsg
	next  int64
	err   error
}

type gresume struct {
	inbox []Inbound
	round int64
}

// gnode bridges one node: StepNode on the engine side, ctxBackend on
// the program side. The program goroutine is parked inside deliver
// (waiting for an inbox) between OnWake calls.
type gnode struct {
	a      *goroutineAdapter
	env    *NodeEnv
	yield  chan gyield
	resume chan gresume
	next   int64
	exited bool
}

var (
	_ StepNode   = (*gnode)(nil)
	_ ctxBackend = (*gnode)(nil)
)

// Start implements StepNode: launch the program goroutine and run it up
// to its first send-step yield, staging the round-0 sends.
func (n *gnode) Start(out *Outbox) {
	ctx := &Ctx{
		backend: n,
		cfg:     n.a.cfg,
		id:      n.env.ID,
		degree:  n.env.Degree,
		rng:     n.env.Rand,
	}
	n.a.wg.Add(1)
	go n.main(ctx)
	if _, done := n.pump(out); done {
		n.exited = true
	}
}

// OnWake implements StepNode: feed the program its round inbox, then
// run it to its next send-step yield (transparently waking it into its
// next round) or to completion.
func (n *gnode) OnWake(round int64, inbox []Inbound, out *Outbox) (int64, bool) {
	if n.exited {
		return 0, true
	}
	select {
	case n.resume <- gresume{inbox: inbox}:
	case <-n.a.quit:
		return 0, true
	}
	return n.pump(out)
}

// pump drains program yields until the node has staged the sends for
// its next awake round (returning its wake time) or halted. The quit
// alternatives are defensive: pump only runs inside Start/OnWake, which
// never overlap shutdown today, but the handshake must not deadlock if
// that ordering ever changes.
func (n *gnode) pump(out *Outbox) (int64, bool) {
	for {
		var y gyield
		select {
		case y = <-n.yield:
		case <-n.a.quit:
			return 0, true
		}
		switch y.kind {
		case ySends:
			out.msgs = append(out.msgs, y.sends...) // validated by Ctx.Send
			return n.next, false
		case yEnd:
			n.next = y.next
			select {
			case n.resume <- gresume{round: y.next}:
			case <-n.a.quit:
				return 0, true
			}
		case yDone:
			return 0, true
		default: // yErr
			panic(&nodeFailure{node: n.env.ID, err: y.err})
		}
	}
}

// deliver implements ctxBackend on the program side.
func (n *gnode) deliver(c *Ctx) []Inbound {
	select {
	case n.yield <- gyield{kind: ySends, sends: c.out}:
	case <-n.a.quit:
		panic(quitSignal{})
	}
	select {
	case r := <-n.resume:
		c.out = c.out[:0]
		return r.inbox
	case <-n.a.quit:
		panic(quitSignal{})
	}
}

// endRound implements ctxBackend on the program side.
func (n *gnode) endRound(c *Ctx, next int64) int64 {
	select {
	case n.yield <- gyield{kind: yEnd, next: next}:
	case <-n.a.quit:
		panic(quitSignal{})
	}
	select {
	case r := <-n.resume:
		return r.round
	case <-n.a.quit:
		panic(quitSignal{})
	}
}

// main is the program goroutine: the analogue of the lockstep engine's
// nodeMain, including the graceful completion of a half-finished final
// round.
func (n *gnode) main(ctx *Ctx) {
	defer n.a.wg.Done()
	var progErr error
	aborted := func() (aborted bool) {
		defer func() {
			switch r := recover().(type) {
			case nil, haltSignal:
			case quitSignal:
				aborted = true
			case error:
				progErr = fmt.Errorf("program panic: %w", r)
			default:
				progErr = fmt.Errorf("program panic: %v", r)
			}
		}()
		n.a.prog(ctx)
		return false
	}()
	if aborted {
		return
	}
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(quitSignal); !ok {
				panic(r)
			}
		}
	}()
	if progErr != nil {
		select {
		case n.yield <- gyield{kind: yErr, err: progErr}:
		case <-n.a.quit:
		}
		return
	}
	if ctx.ph == phaseCompute {
		// Finish the round the program stopped in: transmit its staged
		// sends and discard the inbox.
		ctx.ph = phaseDelivered
		_ = n.deliver(ctx)
	}
	select {
	case n.yield <- gyield{kind: yDone}:
	case <-n.a.quit:
	}
}
