package sim

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"

	"awakemis/internal/graph"
	"awakemis/internal/rng"
)

// VectorEngine executes R independent replications ("lanes") of a
// step program on one shared graph in a single merged pass: one wake
// queue, one adjacency traversal per round, one worker pool — instead
// of R full simulations. Lanes differ only in their Config (seed,
// tracer, observer); the graph and program form are shared, which is
// exactly the shape of a study cell's trial axis.
//
// The engine is a rendezvous coordinator: the caller obtains one
// Engine handle per lane with Lane(i) and runs each lane through the
// ordinary simulation entry points (sim.RunStepContext via Config.
// Engine). Each handle's Run blocks until every lane has arrived; the
// last arrival drives the merged simulation inline and the others
// return its per-lane results. Algorithm packages therefore need no
// changes — they construct their per-lane programs exactly as for a
// scalar run, and the handle intercepts execution at the engine
// boundary.
//
// State is the stepped engine's struct-of-arrays layout widened by a
// trial lane: every per-node array is indexed by the packed id
// p = v·R + t (node-major, lane-minor), so one sorted awake list
// interleaves all lanes and routing walks each CSR row once per
// sender regardless of how many lanes that sender is awake in. The
// galloping reverse-port cursors stay per-receiver (size n, shared by
// all lanes): arrival ports depend only on the (v, w) edge, and the
// packed order keeps senders ascending in v across lanes, so the
// scalar cursor invariant carries over unchanged.
//
// Determinism: each lane's per-node RNG streams, routing order, inbox
// ordering, and metrics are bit-identical to a scalar stepped run of
// the same (graph, program, Config) — the per-lane subsequence of the
// merged pass is exactly the scalar pass. The merged round loop is
// allocation-free at steady state, like the scalar engine (guarded in
// alloc tests). A failure in any lane aborts the whole merged run;
// every lane then returns the (deterministic, lowest-packed-index)
// error.
type VectorEngine struct {
	lanes   int
	workers int

	mu      sync.Mutex
	g       *graph.Graph
	progs   []StepProgram
	cfgs    []Config
	regs    []bool
	arrived int
	aborted error
	started bool

	done chan struct{} // closed once results (or an abort) are published
	ms   []*Metrics
	err  error
}

// NewVectorEngine returns a coordinator for `lanes` replications
// sharing one worker pool of the given size (0 means one worker per
// CPU). Every lane must eventually call its handle's Run (or the
// caller must Abort), or the arrived lanes block forever.
func NewVectorEngine(lanes, workers int) *VectorEngine {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if lanes < 1 {
		lanes = 1
	}
	return &VectorEngine{
		lanes:   lanes,
		workers: workers,
		progs:   make([]StepProgram, lanes),
		cfgs:    make([]Config, lanes),
		regs:    make([]bool, lanes),
		done:    make(chan struct{}),
	}
}

// Lane returns lane i's Engine handle. The handle reports the stepped
// engine's name: vectorization is an execution strategy, not an
// engine identity — results, reports, and canonical spec hashes are
// those of the stepped engine.
func (ve *VectorEngine) Lane(i int) Engine { return &laneEngine{ve: ve, lane: i} }

// Abort unblocks lanes waiting at the rendezvous when another lane
// failed before reaching its engine call (so its Run will never
// arrive). It is a no-op once the merged run has started or a prior
// abort was recorded.
func (ve *VectorEngine) Abort(err error) {
	if err == nil {
		err = errors.New("sim: vector: aborted")
	}
	ve.mu.Lock()
	defer ve.mu.Unlock()
	if ve.started || ve.aborted != nil {
		return
	}
	ve.aborted = err
	ve.err = err
	close(ve.done)
}

// laneEngine is one lane's Engine handle.
type laneEngine struct {
	ve   *VectorEngine
	lane int
}

// Name implements Engine. Lanes run the stepped engine's semantics
// and identify as it.
func (le *laneEngine) Name() string { return "stepped" }

// Run implements Engine: register the lane's program and config, and
// either drive the merged pass (last arrival) or wait for its result.
func (le *laneEngine) Run(ctx context.Context, g *graph.Graph, prog NodeProgram, cfg Config) (*Metrics, error) {
	ve, lane := le.ve, le.lane
	sp, ok := prog.(StepProgram)
	if !ok {
		err := fmt.Errorf("sim: vector: lane %d: only step-form programs can be vectorized, got %T", lane, prog)
		ve.Abort(err)
		return nil, err
	}
	cfg, err := cfg.withDefaults(g.N())
	if err != nil {
		ve.Abort(err)
		return nil, err
	}

	ve.mu.Lock()
	if ve.aborted != nil {
		err := ve.aborted
		ve.mu.Unlock()
		return nil, err
	}
	if lane < 0 || lane >= ve.lanes || ve.regs[lane] {
		ve.mu.Unlock()
		err := fmt.Errorf("sim: vector: invalid or duplicate lane %d of %d", lane, ve.lanes)
		ve.Abort(err)
		return nil, err
	}
	if ve.g == nil {
		ve.g = g
	} else if ve.g != g {
		ve.mu.Unlock()
		err := errors.New("sim: vector: all lanes must share one graph")
		ve.Abort(err)
		return nil, err
	}
	ve.progs[lane], ve.cfgs[lane], ve.regs[lane] = sp, cfg, true
	ve.arrived++
	last := ve.arrived == ve.lanes
	if last {
		ve.started = true
	}
	ve.mu.Unlock()

	if last {
		ms, err := ve.drive(ctx)
		ve.mu.Lock()
		ve.ms, ve.err = ms, err
		ve.mu.Unlock()
		close(ve.done)
	} else {
		select {
		case <-ve.done:
		case <-ctx.Done():
			// The driver shares the run's context (all lanes derive from
			// one parent) and aborts at its next round boundary; returning
			// here without its result is safe — results are read under mu
			// after done only.
			return nil, fmt.Errorf("sim: aborted: %w", ctx.Err())
		}
	}

	ve.mu.Lock()
	defer ve.mu.Unlock()
	if ve.err != nil {
		return nil, ve.err
	}
	return ve.ms[lane], nil
}

// drive validates cross-lane config agreement, builds the merged
// state, and runs rounds until every lane's every node halted.
func (ve *VectorEngine) drive(ctx context.Context) ([]*Metrics, error) {
	base := ve.cfgs[0]
	for t, cfg := range ve.cfgs {
		if cfg.N != base.N || cfg.Bandwidth != base.Bandwidth ||
			cfg.Strict != base.Strict || cfg.MaxRounds != base.MaxRounds {
			return nil, fmt.Errorf("sim: vector: lane %d config diverges from lane 0 (N/Bandwidth/Strict/MaxRounds must agree)", t)
		}
	}
	if int64(ve.g.N())*int64(ve.lanes) > math.MaxInt32 {
		// Routing scratch holds packed ids as int32.
		return nil, fmt.Errorf("sim: vector: %d nodes x %d lanes exceeds the packed-id range", ve.g.N(), ve.lanes)
	}
	vs, err := newVecState(ve.g, ve.progs, ve.cfgs, ve.workers)
	if err != nil {
		return nil, err
	}
	defer vs.close()
	for !vs.q.empty() {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("sim: aborted after round %d: %w", vs.maxRoundSeen(), err)
		}
		if err := vs.round(ve.workers); err != nil {
			return nil, err
		}
	}
	return vs.ms, nil
}

// vecState is the merged run's struct-of-arrays state: the stepped
// engine's stepState widened by a trial lane. All per-node arrays are
// indexed by the packed id p = v·R + t.
type vecState struct {
	g    *graph.Graph
	R    int
	cfgs []Config
	ms   []*Metrics // per lane
	q    *wakeQueue // packed ids

	node  []StepNode // packed; nil once halted
	out   []Outbox   // packed
	next  []int64    // packed; haltedWake once done
	stamp []int64    // packed routing scratch: stamp[p] == clock+1 iff (v,t) awake
	cur   []int32    // per-RECEIVER port cursors, size n (shared across lanes)
	vOf   []int32    // packed -> node (p/R, precomputed: the hot loops avoid dividing by a runtime R)
	tOf   []int32    // packed -> lane (p%R)

	// Flat CSR inboxes. A merged round can hold n·R inboxes, so the
	// scalar engine's slice-per-node buffers would cost 2·n·R slice
	// headers of GC-scanned memory and a grow-from-nil append per
	// delivery. Instead route counts each awake receiver's deliveries
	// (inCount), carves per-receiver regions out of one flat buffer
	// with a prefix sum over the awake list (inOff), and fills the
	// regions in a second pass in the same sender order as the scalar
	// router. The fill advances inOff[p] to the region's end, so a
	// receiver's inbox is inBuf[par][inOff[p]-inCount[p]:inOff[p]].
	// Two buffers keyed by round parity preserve the scalar engine's
	// one-round reuse slack for programs that hold the inbox slightly
	// beyond the OnWake contract.
	inCount []int32      // packed: deliveries to (v,t) this round
	inOff   []int32      // packed: region start, then fill cursor, then region end
	inBuf   [2][]Inbound // flat delivery storage, keyed by round parity

	probes []roundProbe // per lane

	// Per-round lane bookkeeping scratch (reused, no allocation):
	// laneMark[t] == clock+1 iff lane t has awake nodes this round,
	// laneAwake[t] counts them, active lists the marked lanes.
	laneMark  []int64
	laneAwake []int
	active    []int

	// Round scope published to workers before shards dispatch.
	awake []int
	clock int64
	par   int

	jobs chan [2]int
	wg   sync.WaitGroup

	failMu   sync.Mutex
	failPack int
	failErr  error
}

// newVecState builds the merged node state — each lane's machines
// constructed in the same ascending-node order as a scalar run — and
// stages every (node, lane)'s round-0 sends.
func newVecState(g *graph.Graph, progs []StepProgram, cfgs []Config, workers int) (*vecState, error) {
	n, R := g.N(), len(progs)
	vs := &vecState{
		g:         g,
		R:         R,
		cfgs:      cfgs,
		ms:        make([]*Metrics, R),
		q:         newWakeQueue(),
		node:      make([]StepNode, n*R),
		out:       make([]Outbox, n*R),
		next:      make([]int64, n*R),
		stamp:     make([]int64, n*R),
		cur:       make([]int32, n),
		vOf:       make([]int32, n*R),
		tOf:       make([]int32, n*R),
		inCount:   make([]int32, n*R),
		inOff:     make([]int32, n*R),
		probes:    make([]roundProbe, R),
		laneMark:  make([]int64, R),
		laneAwake: make([]int, R),
		active:    make([]int, 0, R),
	}

	// Environments, RNG sources, and the RNG states themselves are
	// slab-allocated: three arrays for the whole merged run instead of
	// n·R small heap objects (rand.New inlines, so the dereferenced
	// copy into the slab never escapes).
	envs := make([]NodeEnv, n*R)
	srcs := make([]nodeSource, n*R)
	rnds := make([]rand.Rand, n*R)
	for t := 0; t < R; t++ {
		vs.ms[t] = &Metrics{AwakePerNode: make([]int64, n)}
		vs.probes[t] = roundProbe{obs: cfgs[t].Observer}
	}
	// Construction runs in packed order — node-major, lane-minor — so
	// the slab writes are sequential. Each lane still sees its machines
	// built in ascending node order, the scalar construction order.
	for v := 0; v < n; v++ {
		deg := g.Degree(v)
		for t := 0; t < R; t++ {
			p := v*R + t
			vs.vOf[p], vs.tOf[p] = int32(v), int32(t)
			vs.out[p].configure(v, deg, &vs.cfgs[t])
			srcs[p].state = uint64(rng.Stream(cfgs[t].Seed, int64(v)))
			rnds[p] = *rand.New(&srcs[p])
			envs[p] = NodeEnv{
				ID:        v,
				Degree:    deg,
				N:         cfgs[t].N,
				Bandwidth: cfgs[t].Bandwidth,
				Rand:      &rnds[p],
			}
			if err := vs.startNode(p, progs[t], &envs[p]); err != nil {
				return vs, fmt.Errorf("sim: node %d: %w", v, err)
			}
			vs.q.add(0, p)
		}
	}

	if workers > 1 {
		vs.jobs = make(chan [2]int, workers)
		for i := 0; i < workers; i++ {
			go vs.worker()
		}
	}
	return vs, nil
}

func (vs *vecState) close() {
	if vs.jobs != nil {
		close(vs.jobs)
	}
}

// maxRoundSeen reports the furthest round any lane reached (error
// messages only).
func (vs *vecState) maxRoundSeen() int64 {
	var r int64
	for _, m := range vs.ms {
		if m.Rounds > r {
			r = m.Rounds
		}
	}
	return r
}

// round executes one merged round: pop the packed awake set, meter
// each active lane, route every lane's staged sends in one pass, fan
// the step calls across the pool, and reschedule. The per-lane
// subsequence of everything that happens here is bit-identical to the
// scalar engine's round. Factored out (like stepState.round) so the
// allocation-regression tests can drive it directly.
func (vs *vecState) round(workers int) error {
	clock, awake := vs.q.pop()
	if clock > vs.cfgs[0].MaxRounds {
		return fmt.Errorf("%w (round %d)", ErrMaxRounds, clock)
	}

	// Detect the lanes with awake nodes this round and count them; only
	// those lanes observe the round (a lane whose nodes all sleep now
	// skips it, exactly as its scalar run would).
	R := vs.R
	vs.active = vs.active[:0]
	for _, p := range awake {
		t := int(vs.tOf[p])
		if vs.laneMark[t] != clock+1 {
			vs.laneMark[t] = clock + 1
			vs.laneAwake[t] = 0
			vs.active = append(vs.active, t)
		}
		vs.laneAwake[t]++
	}
	for _, t := range vs.active {
		vs.probes[t].begin(vs.ms[t])
		vs.ms[t].ExecutedRounds++
		if clock+1 > vs.ms[t].Rounds {
			vs.ms[t].Rounds = clock + 1
		}
	}
	for _, p := range awake {
		t := vs.tOf[p]
		vs.ms[t].noteAwake(int(vs.vOf[p]), clock, vs.cfgs[t].Tracer)
	}

	vs.clock = clock
	vs.par = int(clock & 1)
	vs.route(clock, awake)

	vs.stepAll(awake, workers)

	if err := vs.failErr; err != nil {
		return fmt.Errorf("sim: node %d: %w", vs.failPack/R, err)
	}

	for _, p := range awake {
		next := vs.next[p]
		if next == haltedWake {
			continue
		}
		if next <= clock {
			return fmt.Errorf("sim: node %d scheduled wake %d not after round %d", p/R, next, clock)
		}
		vs.q.add(next, p)
	}
	for _, t := range vs.active {
		vs.probes[t].end(vs.ms[t], clock, vs.laneAwake[t])
	}
	vs.q.recycle(awake)
	return nil
}

// route delivers one merged round's staged sends. Senders run in
// packed order — ascending node, lane-minor — so each receiver's
// arrival ports ascend across the whole merged round regardless of
// lane, and the scalar per-receiver galloping cursor works unchanged
// on n entries shared by all R lanes. Metering and delivery are
// per-lane: a message sent in lane t reaches (w, t) only if that
// lane's copy of w is awake.
//
// Delivery is a counting sort into the round's flat buffer: pass one
// meters every send exactly like the scalar router — in the same
// per-message order, so tracers and metrics are bit-identical — and
// counts each receiver's deliveries; a prefix sum over the awake list
// carves the buffer into per-receiver regions; pass two resolves
// arrival ports with the shared cursors and fills the regions in the
// same sender order. The buffer grows at most once per round, exactly
// to the delivered total — no per-delivery append, no doubling churn,
// no per-inbox backing arrays.
func (vs *vecState) route(clock int64, awake []int) {
	R := vs.R
	for _, p := range awake {
		vs.stamp[p] = clock + 1
		vs.cur[vs.vOf[p]] = 0
		vs.inCount[p] = 0
	}
	for _, p := range awake {
		v, t := int(vs.vOf[p]), int(vs.tOf[p])
		m := vs.ms[t]
		tracer := vs.cfgs[t].Tracer
		for _, om := range vs.out[p].msgs {
			bits := om.msg.Bits()
			m.MessagesSent++
			m.BitsSent += int64(bits)
			if bits > m.MaxMessageBits {
				m.MaxMessageBits = bits
			}
			w := vs.g.Neighbor(v, om.port)
			wp := w*R + t
			delivered := vs.stamp[wp] == clock+1
			if tracer != nil {
				tracer.Message(clock, v, w, bits, delivered)
			}
			if !delivered {
				continue
			}
			vs.inCount[wp]++
			m.MessagesDelivered++
		}
	}
	total := 0
	for _, p := range awake {
		vs.inOff[p] = int32(total)
		total += int(vs.inCount[p])
	}
	buf := vs.inBuf[vs.par]
	if cap(buf) < total {
		buf = make([]Inbound, total)
	}
	buf = buf[:total]
	vs.inBuf[vs.par] = buf
	for _, p := range awake {
		v, t := int(vs.vOf[p]), int(vs.tOf[p])
		for _, om := range vs.out[p].msgs {
			w := vs.g.Neighbor(v, om.port)
			wp := w*R + t
			if vs.stamp[wp] != clock+1 {
				continue
			}
			port := portFrom(vs.g.Neighbors(w), int32(v), int(vs.cur[w]))
			vs.cur[w] = int32(port) // not port+1: v may send on the same port again
			buf[vs.inOff[wp]] = Inbound{Port: port, Msg: om.msg}
			vs.inOff[wp]++
		}
	}
}

// stepAll fans OnWake over the packed awake list in contiguous
// shards; a shard boundary may split one node's lanes, which is fine —
// every packed entry is an independent state machine.
func (vs *vecState) stepAll(awake []int, workers int) {
	const minParallel = 128
	if vs.jobs == nil || len(awake) < minParallel {
		vs.stepRange(awake)
		return
	}
	vs.awake = awake
	chunk := (len(awake) + workers - 1) / workers
	for lo := 0; lo < len(awake); lo += chunk {
		hi := lo + chunk
		if hi > len(awake) {
			hi = len(awake)
		}
		vs.wg.Add(1)
		vs.jobs <- [2]int{lo, hi}
	}
	vs.wg.Wait()
}

func (vs *vecState) worker() {
	for span := range vs.jobs {
		vs.stepRange(vs.awake[span[0]:span[1]])
		vs.wg.Done()
	}
}

func (vs *vecState) stepRange(awake []int) {
	for _, p := range awake {
		vs.stepPacked(p)
	}
}

// fail records a packed-entry failure, keeping the lowest packed
// index so the surfaced error is deterministic at every worker count.
func (vs *vecState) fail(p int, err error) {
	vs.failMu.Lock()
	if vs.failErr == nil || p < vs.failPack {
		vs.failPack, vs.failErr = p, err
	}
	vs.failMu.Unlock()
}

func (vs *vecState) stepPacked(p int) {
	defer func() {
		if r := recover(); r != nil {
			if f, ok := r.(*nodeFailure); ok {
				vs.fail(p, f.err)
			} else {
				f := &nodeFailure{}
				f.attach(r)
				vs.fail(p, f.err)
			}
		}
	}()
	// Native step programs only: the inbox is borrowed for the OnWake
	// call (the vector engine rejects goroutine-form programs at
	// registration). The region's capacity is clamped so a program
	// appending to its inbox cannot clobber a neighbor's region.
	end := vs.inOff[p]
	start := end - vs.inCount[p]
	in := vs.inBuf[vs.par][start:end:end]
	sortInbox(in)
	out := &vs.out[p]
	out.reset()
	next, done := vs.node[p].OnWake(vs.clock, in, out)
	if done {
		vs.node[p] = nil     // release the machine; staged sends are dropped
		vs.out[p].msgs = nil // and their storage: merged runs hold n·R outboxes live
		vs.next[p] = haltedWake
		return
	}
	vs.next[p] = next
}

func (vs *vecState) startNode(p int, sp StepProgram, env *NodeEnv) (err error) {
	defer func() {
		if r := recover(); r != nil {
			if f, ok := r.(*nodeFailure); ok {
				err = f.err
			} else {
				f := &nodeFailure{}
				f.attach(r)
				err = f.err
			}
		}
	}()
	vs.node[p] = sp(env)
	vs.node[p].Start(&vs.out[p])
	return nil
}
