// Package sim implements the SLEEPING-CONGEST model of the paper
// (§1.3): an anonymous, port-numbered, synchronous message-passing
// network in which every node is either awake or asleep in each round.
//
// Each round has the paper's three steps: (1) awake nodes perform local
// computation, (2) awake nodes send messages to adjacent nodes, and
// (3) awake nodes receive messages sent this round by awake neighbors.
// Messages sent to (or by) a sleeping node are lost. Nodes know the
// current round number whenever they are awake.
//
// The engine runs one goroutine per node, synchronized in lock-step by
// channels, and skips over rounds in which every node sleeps, so that
// round numbers are exact (round complexity is measured faithfully)
// while simulation cost is proportional to the total number of awake
// node-rounds. Awake complexity (§1.4) is metered per node.
package sim

import (
	"container/heap"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"awakemis/internal/bitio"
	"awakemis/internal/graph"
)

// Message is a payload sent over an edge in one round. Bits reports the
// exact number of bits the message occupies on the wire; the engine
// enforces the CONGEST bandwidth bound against it.
type Message interface {
	Bits() int
}

// Inbound is a message received by a node, tagged with the local port
// it arrived on.
type Inbound struct {
	Port int
	Msg  Message
}

// Program is the per-node algorithm. It runs on its own goroutine and
// drives rounds through the Ctx. Returning from the program halts the
// node (its awake-round counter stops).
type Program func(ctx *Ctx)

// Config controls a simulation run. The zero value gives sensible
// defaults: bandwidth 16·⌈log₂N⌉+16 bits, strict CONGEST enforcement
// off, a generous round cutoff, and N equal to the actual node count.
type Config struct {
	// Seed derives every node's private randomness; identical seeds
	// replay identical executions.
	Seed int64
	// N is the common polynomial upper bound on the node count known to
	// every node (the paper's N). Zero means the exact node count.
	N int
	// Bandwidth is the per-message bit budget B = O(log N). Zero means
	// the default 16·⌈log₂N⌉+16.
	Bandwidth int
	// Strict makes any Send whose message exceeds Bandwidth an error.
	Strict bool
	// MaxRounds aborts runs that exceed this round count (safety net
	// against schedule bugs). Zero means 1<<40.
	MaxRounds int64
	// Tracer, if non-nil, receives execution events (awake rounds and
	// message routing) as they happen. Tracer methods are called from
	// the engine goroutine only.
	Tracer Tracer
}

// Tracer observes a simulation for debugging and visualization.
// Implementations must be cheap; they run on the engine's hot path.
type Tracer interface {
	// NodeAwake fires when a node begins an awake round.
	NodeAwake(round int64, node int)
	// Message fires for every sent message; delivered reports whether
	// the receiver was awake.
	Message(round int64, from, to, bits int, delivered bool)
}

// Metrics aggregates the complexity measures of a run.
type Metrics struct {
	// Rounds is the round complexity: 1 + the last round in which any
	// node was awake (rounds are numbered from 0).
	Rounds int64
	// ExecutedRounds counts rounds the engine actually simulated (rounds
	// with at least one awake node); the difference from Rounds is the
	// time all nodes slept through.
	ExecutedRounds int64
	// AwakePerNode[v] is A_v, the number of rounds node v was awake.
	AwakePerNode []int64
	// MaxAwake is the worst-case awake complexity max_v A_v.
	MaxAwake int64
	// TotalAwake is Σ_v A_v (node-averaged awake = TotalAwake / n).
	TotalAwake int64
	// MessagesSent counts messages handed to Send by awake nodes.
	MessagesSent int64
	// MessagesDelivered counts messages that reached an awake receiver.
	MessagesDelivered int64
	// BitsSent is the total size of all sent messages.
	BitsSent int64
	// MaxMessageBits is the largest single message observed.
	MaxMessageBits int
}

// AvgAwake returns the node-averaged awake complexity.
func (m *Metrics) AvgAwake() float64 {
	if len(m.AwakePerNode) == 0 {
		return 0
	}
	return float64(m.TotalAwake) / float64(len(m.AwakePerNode))
}

// ErrMaxRounds is returned when a run exceeds Config.MaxRounds.
var ErrMaxRounds = errors.New("sim: exceeded MaxRounds")

// BandwidthError reports a CONGEST violation under Config.Strict.
type BandwidthError struct {
	Node, Port, Bits, Budget int
}

func (e *BandwidthError) Error() string {
	return fmt.Sprintf("sim: node %d port %d sent %d bits, budget %d",
		e.Node, e.Port, e.Bits, e.Budget)
}

// DefaultBandwidth returns the default CONGEST budget for a given N.
func DefaultBandwidth(n int) int {
	if n < 2 {
		n = 2
	}
	return 16*bitio.UintBits(uint64(n)) + 16
}

type phase uint8

const (
	phaseCompute   phase = iota // in step (1)/(2): may Send, must Deliver
	phaseDelivered              // after Deliver: must end the round
)

type eventKind uint8

const (
	evSends eventKind = iota // node finished its send step
	evEnd                    // node finished the round (nextWake set)
)

type nodeEvent struct {
	id   int
	kind eventKind
}

const haltedWake = int64(-1)

type outMsg struct {
	port int
	msg  Message
}

type nodeState struct {
	cont     chan struct{}  // engine -> node: your awake round began
	inboxCh  chan []Inbound // engine -> node: receive step payload
	nextWake int64          // written by node before evEnd
	roundNow int64          // written by engine before cont
	out      []outMsg       // written by node during compute, read after evSends
	inbox    []Inbound      // staged by engine during routing
	err      error          // program panic, converted to error
	halted   bool
}

type engine struct {
	g      *graph.Graph
	cfg    Config
	states []*nodeState
	events chan nodeEvent
	quit   chan struct{}
	wg     sync.WaitGroup
	m      Metrics
}

type haltSignal struct{}
type quitSignal struct{}

// Ctx is a node's handle to the simulation. All methods must be called
// from the node's own program goroutine.
type Ctx struct {
	eng   *engine
	id    int
	rng   *rand.Rand
	ph    phase
	round int64
	extra any // per-node scratch usable by composed sub-algorithms
}

// Node returns the node's index. The model is anonymous: algorithms may
// use the index to record their output but must not base decisions on
// it (tests shuffle indices to keep implementations honest).
func (c *Ctx) Node() int { return c.id }

// N returns the common upper bound on the network size known to nodes.
func (c *Ctx) N() int { return c.eng.cfg.N }

// Bandwidth returns the per-message bit budget B.
func (c *Ctx) Bandwidth() int { return c.eng.cfg.Bandwidth }

// Degree returns the node's number of ports.
func (c *Ctx) Degree() int { return c.eng.g.Degree(c.id) }

// Round returns the current round number.
func (c *Ctx) Round() int64 { return c.round }

// Rand returns the node's private randomness source.
func (c *Ctx) Rand() *rand.Rand { return c.rng }

// Extra returns mutable per-node scratch shared between composed
// sub-algorithms running on the same node.
func (c *Ctx) Extra() any { return c.extra }

// SetExtra stores per-node scratch.
func (c *Ctx) SetExtra(v any) { c.extra = v }

// Send queues a message on the given port for this round. It must be
// called before Deliver. If the receiving neighbor is asleep this round,
// the message is lost.
func (c *Ctx) Send(port int, m Message) {
	if c.ph != phaseCompute {
		panic("sim: Send after Deliver in the same round")
	}
	if port < 0 || port >= c.Degree() {
		panic(fmt.Sprintf("sim: node %d: invalid port %d (degree %d)", c.id, port, c.Degree()))
	}
	bits := m.Bits()
	if c.eng.cfg.Strict && bits > c.eng.cfg.Bandwidth {
		panic(&BandwidthError{Node: c.id, Port: port, Bits: bits, Budget: c.eng.cfg.Bandwidth})
	}
	c.eng.states[c.id].out = append(c.eng.states[c.id].out, outMsg{port, m})
}

// Broadcast sends m on every port.
func (c *Ctx) Broadcast(m Message) {
	for p := 0; p < c.Degree(); p++ {
		c.Send(p, m)
	}
}

// Deliver completes the send step of the current round and returns the
// messages received this round, sorted by arrival port. It must be
// called exactly once per awake round (ending the round calls it
// implicitly, discarding the inbox).
func (c *Ctx) Deliver() []Inbound {
	if c.ph != phaseCompute {
		panic("sim: Deliver called twice in one round")
	}
	c.ph = phaseDelivered
	st := c.eng.states[c.id]
	c.sendEvent(nodeEvent{c.id, evSends})
	select {
	case in := <-st.inboxCh:
		return in
	case <-c.eng.quit:
		panic(quitSignal{})
	}
}

// Advance ends the current round with the node staying awake in the
// next round.
func (c *Ctx) Advance() { c.endRound(c.round + 1) }

// Sleep ends the current round and sleeps for k full rounds, waking in
// round Round()+k+1. Sleep(0) is equivalent to Advance.
func (c *Ctx) Sleep(k int64) {
	if k < 0 {
		panic("sim: negative sleep")
	}
	c.endRound(c.round + 1 + k)
}

// SleepUntil ends the current round and wakes the node in round r.
func (c *Ctx) SleepUntil(r int64) {
	if r <= c.round {
		panic(fmt.Sprintf("sim: SleepUntil(%d) not after current round %d", r, c.round))
	}
	c.endRound(r)
}

// Halt terminates the node's program immediately.
func (c *Ctx) Halt() { panic(haltSignal{}) }

func (c *Ctx) endRound(next int64) {
	if c.ph == phaseCompute {
		_ = c.Deliver() // complete the round's receive step; discard inbox
	}
	st := c.eng.states[c.id]
	st.nextWake = next
	c.sendEvent(nodeEvent{c.id, evEnd})
	select {
	case <-st.cont:
		c.round = st.roundNow
		c.ph = phaseCompute
	case <-c.eng.quit:
		panic(quitSignal{})
	}
}

func (c *Ctx) sendEvent(ev nodeEvent) {
	select {
	case c.eng.events <- ev:
	case <-c.eng.quit:
		panic(quitSignal{})
	}
}

// wakeHeap is a min-heap of (round, node) pairs.
type wakeItem struct {
	round int64
	id    int
}
type wakeHeap []wakeItem

func (h wakeHeap) Len() int { return len(h) }
func (h wakeHeap) Less(i, j int) bool {
	return h[i].round < h[j].round || (h[i].round == h[j].round && h[i].id < h[j].id)
}
func (h wakeHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *wakeHeap) Push(x any)   { *h = append(*h, x.(wakeItem)) }
func (h *wakeHeap) Pop() any     { old := *h; x := old[len(old)-1]; *h = old[:len(old)-1]; return x }

// Run simulates prog on every node of g under cfg and returns the
// measured complexity metrics. It returns an error if any node program
// panicked, violated the CONGEST bound under Strict, or the run
// exceeded MaxRounds.
func Run(g *graph.Graph, prog Program, cfg Config) (*Metrics, error) {
	n := g.N()
	if cfg.N == 0 {
		cfg.N = n
	}
	if cfg.N < n {
		return nil, fmt.Errorf("sim: N=%d below node count %d", cfg.N, n)
	}
	if cfg.Bandwidth == 0 {
		cfg.Bandwidth = DefaultBandwidth(cfg.N)
	}
	if cfg.MaxRounds == 0 {
		cfg.MaxRounds = 1 << 40
	}

	e := &engine{
		g:      g,
		cfg:    cfg,
		states: make([]*nodeState, n),
		events: make(chan nodeEvent, n),
		quit:   make(chan struct{}),
	}
	e.m.AwakePerNode = make([]int64, n)

	h := make(wakeHeap, 0, n)
	for v := 0; v < n; v++ {
		st := &nodeState{
			cont:    make(chan struct{}, 1),
			inboxCh: make(chan []Inbound, 1),
		}
		e.states[v] = st
		h = append(h, wakeItem{0, v}) // all nodes start awake in round 0
		ctx := &Ctx{eng: e, id: v, rng: rand.New(rand.NewSource(mix(cfg.Seed, int64(v))))}
		e.wg.Add(1)
		go e.nodeMain(ctx, prog)
	}
	heap.Init(&h)

	err := e.loop(&h)
	close(e.quit)
	e.wg.Wait()
	if err == nil {
		for v, st := range e.states {
			if st.err != nil {
				err = fmt.Errorf("sim: node %d: %w", v, st.err)
				break
			}
		}
	}
	return &e.m, err
}

func (e *engine) nodeMain(ctx *Ctx, prog Program) {
	defer e.wg.Done()
	st := e.states[ctx.id]
	// Wait for round 0.
	select {
	case <-st.cont:
		ctx.round = st.roundNow
	case <-e.quit:
		return
	}
	aborted := func() (aborted bool) {
		defer func() {
			switch r := recover().(type) {
			case nil, haltSignal:
			case quitSignal:
				aborted = true
			case error:
				st.err = fmt.Errorf("program panic: %w", r)
			default:
				st.err = fmt.Errorf("program panic: %v", r)
			}
		}()
		prog(ctx)
		return false
	}()
	if aborted {
		return
	}
	// Graceful halt from whatever point in the round the program stopped.
	func() {
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(quitSignal); !ok {
					panic(r)
				}
			}
		}()
		if ctx.ph == phaseCompute {
			ctx.ph = phaseDelivered
			ctx.sendEvent(nodeEvent{ctx.id, evSends})
			select {
			case <-st.inboxCh:
			case <-e.quit:
				panic(quitSignal{})
			}
		}
		st.halted = true
		st.nextWake = haltedWake
		ctx.sendEvent(nodeEvent{ctx.id, evEnd})
	}()
}

func (e *engine) loop(h *wakeHeap) error {
	awake := make([]int, 0, len(e.states))
	awakeStamp := make([]int64, len(e.states)) // awakeStamp[v] == clock+1 iff v awake now
	for h.Len() > 0 {
		clock := (*h)[0].round
		if clock > e.cfg.MaxRounds {
			return fmt.Errorf("%w (round %d)", ErrMaxRounds, clock)
		}
		awake = awake[:0]
		for h.Len() > 0 && (*h)[0].round == clock {
			awake = append(awake, heap.Pop(h).(wakeItem).id)
		}
		sort.Ints(awake)
		e.m.ExecutedRounds++
		if clock+1 > e.m.Rounds {
			e.m.Rounds = clock + 1
		}

		// Step 1+2: wake everyone scheduled for this round; collect sends.
		for _, v := range awake {
			st := e.states[v]
			st.roundNow = clock
			e.m.AwakePerNode[v]++
			e.m.TotalAwake++
			if e.m.AwakePerNode[v] > e.m.MaxAwake {
				e.m.MaxAwake = e.m.AwakePerNode[v]
			}
			if e.cfg.Tracer != nil {
				e.cfg.Tracer.NodeAwake(clock, v)
			}
			st.cont <- struct{}{}
		}
		if err := e.collect(len(awake), evSends); err != nil {
			return err
		}

		// Routing: deliver only between mutually awake neighbors.
		for _, v := range awake {
			awakeStamp[v] = clock + 1
		}
		for _, v := range awake {
			st := e.states[v]
			for _, om := range st.out {
				bits := om.msg.Bits()
				e.m.MessagesSent++
				e.m.BitsSent += int64(bits)
				if bits > e.m.MaxMessageBits {
					e.m.MaxMessageBits = bits
				}
				w := e.g.Neighbor(v, om.port)
				delivered := awakeStamp[w] == clock+1
				if e.cfg.Tracer != nil {
					e.cfg.Tracer.Message(clock, v, w, bits, delivered)
				}
				if !delivered {
					continue // receiver asleep: message lost
				}
				backPort := portOf(e.g, w, v)
				e.states[w].inbox = append(e.states[w].inbox, Inbound{Port: backPort, Msg: om.msg})
				e.m.MessagesDelivered++
			}
			st.out = st.out[:0]
		}

		// Step 3: deliver inboxes (sorted by port for determinism).
		for _, v := range awake {
			st := e.states[v]
			in := st.inbox
			st.inbox = nil
			sort.Slice(in, func(i, j int) bool { return in[i].Port < in[j].Port })
			st.inboxCh <- in
		}
		if err := e.collect(len(awake), evEnd); err != nil {
			return err
		}

		// Reschedule.
		for _, v := range awake {
			st := e.states[v]
			if st.halted || st.err != nil {
				continue
			}
			if st.nextWake <= clock {
				return fmt.Errorf("sim: node %d scheduled wake %d not after round %d", v, st.nextWake, clock)
			}
			heap.Push(h, wakeItem{st.nextWake, v})
		}
	}
	return nil
}

// collect waits for exactly count events of the given kind; an evEnd
// arriving during the send phase indicates the node errored before
// delivering, which aborts the run.
func (e *engine) collect(count int, want eventKind) error {
	for i := 0; i < count; i++ {
		ev := <-e.events
		if ev.kind != want {
			return fmt.Errorf("sim: node %d: protocol violation (program error: %v)",
				ev.id, e.states[ev.id].err)
		}
	}
	return nil
}

// portOf returns u's port leading to neighbor v.
func portOf(g *graph.Graph, u, v int) int {
	nb := g.Neighbors(u)
	lo, hi := 0, len(nb)
	for lo < hi {
		mid := (lo + hi) / 2
		if int(nb[mid]) < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// mix derives a per-node seed from the run seed (splitmix64 finalizer).
func mix(seed, id int64) int64 {
	z := uint64(seed) + 0x9e3779b97f4a7c15*uint64(id+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}
