// Package sim implements the SLEEPING-CONGEST model of the paper
// (§1.3): an anonymous, port-numbered, synchronous message-passing
// network in which every node is either awake or asleep in each round.
//
// Each round has the paper's three steps: (1) awake nodes perform local
// computation, (2) awake nodes send messages to adjacent nodes, and
// (3) awake nodes receive messages sent this round by awake neighbors.
// Messages sent to (or by) a sleeping node are lost. Nodes know the
// current round number whenever they are awake.
//
// # Node programs
//
// Algorithms come in two interchangeable forms. A Program is a
// goroutine-style procedure that drives rounds imperatively through a
// Ctx (Send, Deliver, Sleep). A StepProgram is an explicit state
// machine: the engine calls OnWake once per awake round with the
// round's inbox, and the node returns the messages for its next awake
// round plus when that round is. Adapters convert each form to the
// other, so every engine runs every program.
//
// # Engines
//
// Two Engine implementations execute programs:
//
//   - LockstepEngine runs one goroutine per node, synchronized in
//     lock-step by channels — simple, and the reference semantics.
//   - SteppedEngine (the default) keeps all node state inline, drives
//     awake nodes from a wake-time bucket queue, and fans each round's
//     OnWake calls across a worker pool in deterministic node-index
//     shards. It avoids per-node goroutines and channel handshakes
//     entirely, which makes million-node runs feasible.
//
// # Determinism contract
//
// For a fixed (graph, program, Config.Seed), both engines — and the
// stepped engine at every worker count — produce bit-identical results:
// the same per-node outputs, the same Metrics (including AwakePerNode),
// and the same message streams. This holds because (a) each node owns a
// private RNG stream derived from Config.Seed and its index, (b) a
// node's step depends only on its own state and inbox, and (c) message
// routing and inbox ordering go through code shared by both engines:
// senders are processed in ascending node order and each inbox is
// sorted by arrival port. Cross-engine tests assert this contract for
// every algorithm in the repository.
//
// The contract covers runs that complete without error. On a failing
// run both engines report an error, but they differ in which node's
// failure surfaces and in how far the metrics advanced: the stepped
// engine aborts at the first failing round (lowest node index first),
// while the lockstep engine lets unaffected nodes keep running.
//
// Both engines skip over rounds in which every node sleeps, so round
// numbers are exact (round complexity is measured faithfully) while
// simulation cost is proportional to the total number of awake
// node-rounds. Awake complexity (§1.4) is metered per node.
package sim

import (
	"context"
	"errors"
	"fmt"
	"slices"
	"time"

	"awakemis/internal/bitio"
	"awakemis/internal/graph"
)

// Message is a payload sent over an edge in one round. Bits reports the
// exact number of bits the message occupies on the wire; the engine
// enforces the CONGEST bandwidth bound against it.
type Message interface {
	Bits() int
}

// Inbound is a message received by a node, tagged with the local port
// it arrived on.
type Inbound struct {
	Port int
	Msg  Message
}

// Config controls a simulation run. The zero value gives sensible
// defaults: bandwidth 16·⌈log₂N⌉+16 bits, strict CONGEST enforcement
// off, a generous round cutoff, N equal to the actual node count, and
// the default (stepped) engine.
type Config struct {
	// Seed derives every node's private randomness; identical seeds
	// replay identical executions on every engine.
	Seed int64
	// N is the common polynomial upper bound on the node count known to
	// every node (the paper's N). Zero means the exact node count.
	N int
	// Bandwidth is the per-message bit budget B = O(log N). Zero means
	// the default 16·⌈log₂N⌉+16.
	Bandwidth int
	// Strict makes any Send whose message exceeds Bandwidth an error.
	Strict bool
	// MaxRounds aborts runs that exceed this round count (safety net
	// against schedule bugs). Zero means 1<<40.
	MaxRounds int64
	// Tracer, if non-nil, receives execution events (awake rounds and
	// message routing) as they happen. Tracer methods are called from
	// the engine goroutine only.
	Tracer Tracer
	// Observer, if non-nil, receives one flat RoundStat per executed
	// round. Unlike Tracer it carries no per-node or per-message detail,
	// so attaching it costs O(1) per round regardless of n. Observer
	// methods are called from the engine goroutine only.
	Observer RoundObserver
	// Engine selects the runtime engine. Nil means Default().
	Engine Engine
}

// withDefaults validates cfg against the node count and fills defaults.
func (cfg Config) withDefaults(n int) (Config, error) {
	if cfg.N == 0 {
		cfg.N = n
	}
	if cfg.N < n {
		return cfg, fmt.Errorf("sim: N=%d below node count %d", cfg.N, n)
	}
	if cfg.Bandwidth == 0 {
		cfg.Bandwidth = DefaultBandwidth(cfg.N)
	}
	if cfg.MaxRounds == 0 {
		cfg.MaxRounds = 1 << 40
	}
	return cfg, nil
}

// Tracer observes a simulation for debugging and visualization.
// Implementations must be cheap; they run on the engine's hot path.
type Tracer interface {
	// NodeAwake fires when a node begins an awake round.
	NodeAwake(round int64, node int)
	// Message fires for every sent message; delivered reports whether
	// the receiver was awake.
	Message(round int64, from, to, bits int, delivered bool)
}

// RoundStat is the flat aggregate of one executed round: no maps, no
// per-node state, just counters. The message counters are deltas for
// this round alone; summed over all observed rounds they equal the
// corresponding final Metrics totals exactly (the identity is frozen by
// test across engines and worker counts).
type RoundStat struct {
	// Round is the round number (clock); rounds where every node sleeps
	// are skipped, so consecutive stats may jump.
	Round int64
	// Awake is the number of nodes awake this round.
	Awake int
	// Sent counts messages handed to Send this round.
	Sent int64
	// Delivered counts this round's messages that reached an awake
	// receiver (Sent - Delivered were lost to sleeping nodes).
	Delivered int64
	// Bits is the total wire size of this round's sends.
	Bits int64
	// Elapsed is the wall time the engine spent simulating the round.
	// It is the only nondeterministic field.
	Elapsed time.Duration
}

// RoundObserver receives per-round aggregates as the engine executes.
// ObserveRound fires once per executed round, in round order, after the
// round completed successfully (rounds aborted by an error or
// cancellation are not observed). Implementations should be cheap and
// ideally allocation-free: the hook itself adds no heap allocations,
// and the engine's steady-state allocation guards budget at most one
// allocation per round for the observer's own bookkeeping.
type RoundObserver interface {
	ObserveRound(RoundStat)
}

// roundProbe converts the run's cumulative Metrics counters into
// per-round deltas for a RoundObserver. With a nil observer both calls
// are a single predictable branch, preserving the zero-allocation
// round loop.
type roundProbe struct {
	obs       RoundObserver
	start     time.Time
	sent      int64
	delivered int64
	bits      int64
}

// begin snapshots the cumulative counters at the top of a round.
func (p *roundProbe) begin(m *Metrics) {
	if p.obs == nil {
		return
	}
	p.sent, p.delivered, p.bits = m.MessagesSent, m.MessagesDelivered, m.BitsSent
	p.start = time.Now()
}

// end emits the round's RoundStat once the round has fully completed.
func (p *roundProbe) end(m *Metrics, round int64, awake int) {
	if p.obs == nil {
		return
	}
	p.obs.ObserveRound(RoundStat{
		Round:     round,
		Awake:     awake,
		Sent:      m.MessagesSent - p.sent,
		Delivered: m.MessagesDelivered - p.delivered,
		Bits:      m.BitsSent - p.bits,
		Elapsed:   time.Since(p.start),
	})
}

// Metrics aggregates the complexity measures of a run.
type Metrics struct {
	// Rounds is the round complexity: 1 + the last round in which any
	// node was awake (rounds are numbered from 0).
	Rounds int64
	// ExecutedRounds counts rounds the engine actually simulated (rounds
	// with at least one awake node); the difference from Rounds is the
	// time all nodes slept through.
	ExecutedRounds int64
	// AwakePerNode[v] is A_v, the number of rounds node v was awake.
	AwakePerNode []int64
	// MaxAwake is the worst-case awake complexity max_v A_v.
	MaxAwake int64
	// TotalAwake is Σ_v A_v (node-averaged awake = TotalAwake / n).
	TotalAwake int64
	// MessagesSent counts messages handed to Send by awake nodes.
	MessagesSent int64
	// MessagesDelivered counts messages that reached an awake receiver.
	MessagesDelivered int64
	// BitsSent is the total size of all sent messages.
	BitsSent int64
	// MaxMessageBits is the largest single message observed.
	MaxMessageBits int
}

// AvgAwake returns the node-averaged awake complexity.
func (m *Metrics) AvgAwake() float64 {
	if len(m.AwakePerNode) == 0 {
		return 0
	}
	return float64(m.TotalAwake) / float64(len(m.AwakePerNode))
}

// noteAwake meters the start of an awake round for node v.
func (m *Metrics) noteAwake(v int, clock int64, tracer Tracer) {
	m.AwakePerNode[v]++
	m.TotalAwake++
	if m.AwakePerNode[v] > m.MaxAwake {
		m.MaxAwake = m.AwakePerNode[v]
	}
	if tracer != nil {
		tracer.NodeAwake(clock, v)
	}
}

// ErrMaxRounds is returned when a run exceeds Config.MaxRounds.
var ErrMaxRounds = errors.New("sim: exceeded MaxRounds")

// BandwidthError reports a CONGEST violation under Config.Strict.
type BandwidthError struct {
	Node, Port, Bits, Budget int
}

func (e *BandwidthError) Error() string {
	return fmt.Sprintf("sim: node %d port %d sent %d bits, budget %d",
		e.Node, e.Port, e.Bits, e.Budget)
}

// DefaultBandwidth returns the default CONGEST budget for a given N.
func DefaultBandwidth(n int) int {
	if n < 2 {
		n = 2
	}
	return 16*bitio.UintBits(uint64(n)) + 16
}

// outMsg is a staged send: a message queued on a local port.
type outMsg struct {
	port int
	msg  Message
}

// Run simulates the goroutine-form prog on every node of g under cfg
// and returns the measured complexity metrics. It returns an error if
// any node program panicked, violated the CONGEST bound under Strict,
// or the run exceeded MaxRounds. The engine is cfg.Engine (Default()
// when nil).
func Run(g *graph.Graph, prog Program, cfg Config) (*Metrics, error) {
	return RunContext(context.Background(), g, prog, cfg)
}

// RunContext is Run under a context: the engine polls ctx at every
// round boundary and aborts the simulation — returning an error that
// wraps ctx.Err() — once it is cancelled or past its deadline. A nil
// ctx means context.Background().
func RunContext(ctx context.Context, g *graph.Graph, prog Program, cfg Config) (*Metrics, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	return engineOf(cfg).Run(ctx, g, prog, cfg)
}

// RunStep is Run for step-form programs.
func RunStep(g *graph.Graph, prog StepProgram, cfg Config) (*Metrics, error) {
	return RunStepContext(context.Background(), g, prog, cfg)
}

// RunStepContext is RunContext for step-form programs.
func RunStepContext(ctx context.Context, g *graph.Graph, prog StepProgram, cfg Config) (*Metrics, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	return engineOf(cfg).Run(ctx, g, prog, cfg)
}

// router gives routeRound access to an engine's staged sends and inbox
// buffers without per-round closure allocations: both run states
// (stepState, lockstepRun) implement it directly.
type router interface {
	// outOf returns node v's sends staged for the current round.
	outOf(v int) []outMsg
	// inboxOf returns the inbox buffer routeRound appends v's
	// deliveries to.
	inboxOf(v int) *[]Inbound
}

// routeRound delivers one round's staged sends between mutually awake
// nodes and meters the traffic. Senders are processed in ascending node
// order (awake must be sorted); receivers' inboxes accumulate in that
// order and are port-sorted before delivery. Both engines route through
// this function — the cross-engine determinism contract depends on it.
//
// Reverse ports (the arrival port an Inbound is tagged with) are
// recovered by a monotone cursor per receiver: because senders arrive
// in ascending order and CSR rows are sorted, each receiver's arrival
// ports are ascending within the round, so a galloping search from the
// receiver's cursor costs O(1) amortized when most neighbors send and
// O(log degree) when few do — with no reverse-port array held in
// memory and no allocation.
//
// stamp must satisfy stamp[v] == clock+1 exactly for awake v, and cur
// is per-receiver cursor scratch; the function establishes both
// invariants itself.
func routeRound(g *graph.Graph, m *Metrics, tracer Tracer, clock int64, awake []int, stamp []int64, cur []int32, rt router) {
	for _, v := range awake {
		stamp[v] = clock + 1
		cur[v] = 0
	}
	for _, v := range awake {
		for _, om := range rt.outOf(v) {
			bits := om.msg.Bits()
			m.MessagesSent++
			m.BitsSent += int64(bits)
			if bits > m.MaxMessageBits {
				m.MaxMessageBits = bits
			}
			w := g.Neighbor(v, om.port)
			delivered := stamp[w] == clock+1
			if tracer != nil {
				tracer.Message(clock, v, w, bits, delivered)
			}
			if !delivered {
				continue // receiver asleep: message lost
			}
			port := portFrom(g.Neighbors(w), int32(v), int(cur[w]))
			cur[w] = int32(port) // not port+1: v may send on the same port again this round
			in := rt.inboxOf(w)
			*in = append(*in, Inbound{Port: port, Msg: om.msg})
			m.MessagesDelivered++
		}
	}
}

// portFrom returns the index of v in the sorted row nb, searching from
// position from. v must be present at or after from. Galloping keeps
// the cost proportional to the jump actually taken: ~2 comparisons when
// v sits at the cursor (dense traffic), O(log gap) otherwise.
func portFrom(nb []int32, v int32, from int) int {
	lo, step := from, 1
	for lo+step < len(nb) && nb[lo+step] < v {
		lo += step
		step <<= 1
	}
	hi := lo + step
	if hi > len(nb) {
		hi = len(nb)
	}
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if nb[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// sortInbox orders a round's inbox by arrival port, identically in both
// engines (part of the determinism contract). Routing appends in
// ascending sender order, which already yields ascending receiver ports
// (port numbering is sorted by neighbor index), so this insertion sort
// is a stable O(len) verification pass in practice — and allocates
// nothing, unlike sort.Slice, keeping it off the steady-state heap.
func sortInbox(in []Inbound) {
	for i := 1; i < len(in); i++ {
		for j := i; j > 0 && in[j].Port < in[j-1].Port; j-- {
			in[j], in[j-1] = in[j-1], in[j]
		}
	}
}

// wakeQueue schedules (round, node) wake-ups: one bucket of node
// indices per distinct wake round, plus a min-heap over the distinct
// rounds. Buckets are sorted at pop time, so the execution order within
// a round is ascending node index regardless of insertion order.
type wakeQueue struct {
	buckets map[int64][]int
	heap    []int64 // min-heap of distinct rounds with non-empty buckets
	free    [][]int // recycled bucket storage
}

func newWakeQueue() *wakeQueue {
	return &wakeQueue{buckets: make(map[int64][]int)}
}

func (q *wakeQueue) empty() bool { return len(q.heap) == 0 }

// add schedules node v to wake in round r.
func (q *wakeQueue) add(r int64, v int) {
	b, ok := q.buckets[r]
	if !ok {
		if n := len(q.free); n > 0 {
			b = q.free[n-1]
			q.free = q.free[:n-1]
		}
		q.pushRound(r)
	}
	q.buckets[r] = append(b, v)
}

// pop removes and returns the earliest scheduled round and its nodes in
// ascending index order. The slice is owned by the queue; return it
// with recycle once processed.
func (q *wakeQueue) pop() (int64, []int) {
	r := q.popRound()
	b := q.buckets[r]
	delete(q.buckets, r)
	slices.Sort(b)
	return r, b
}

// recycle returns a bucket slice obtained from pop for reuse.
func (q *wakeQueue) recycle(b []int) { q.free = append(q.free, b[:0]) }

func (q *wakeQueue) pushRound(r int64) {
	q.heap = append(q.heap, r)
	i := len(q.heap) - 1
	for i > 0 {
		p := (i - 1) / 2
		if q.heap[p] <= q.heap[i] {
			break
		}
		q.heap[p], q.heap[i] = q.heap[i], q.heap[p]
		i = p
	}
}

func (q *wakeQueue) popRound() int64 {
	h := q.heap
	r := h[0]
	last := len(h) - 1
	h[0] = h[last]
	q.heap = h[:last]
	h = q.heap
	i := 0
	for {
		l, rr := 2*i+1, 2*i+2
		small := i
		if l < len(h) && h[l] < h[small] {
			small = l
		}
		if rr < len(h) && h[rr] < h[small] {
			small = rr
		}
		if small == i {
			break
		}
		h[i], h[small] = h[small], h[i]
		i = small
	}
	return r
}
