package sim

import (
	"fmt"
	"math/rand"
)

// StepProgram is the state-machine form of a per-node algorithm: a
// factory called once per node at run start. Engines drive the returned
// StepNode round by round with no dedicated goroutine, which is what
// lets the stepped engine scale to millions of nodes.
type StepProgram func(env *NodeEnv) StepNode

func (StepProgram) isNodeProgram() {}

// NodeEnv is a step node's static view of the network, fixed for the
// whole run.
type NodeEnv struct {
	// ID is the node's index (output-recording only; the model is
	// anonymous).
	ID int
	// Degree is the node's number of ports.
	Degree int
	// N is the common upper bound on the network size known to nodes.
	N int
	// Bandwidth is the per-message bit budget B.
	Bandwidth int
	// Rand is the node's private randomness stream, identical to the
	// stream a goroutine-form program sees through Ctx.Rand.
	Rand *rand.Rand
}

// StepNode is one node's state machine.
//
// Time works as follows: every node is awake in round 0 (the model's
// initial round). Start stages the node's round-0 sends. Then, for each
// awake round r, the engine transmits the sends staged for r, collects
// what awake neighbors sent this node in r, and calls
// OnWake(r, inbox, out). The node updates its state from the inbox,
// stages into out the messages it will transmit at its next awake
// round, and returns that round's number — or done, which halts the
// node at the end of round r (anything staged is discarded).
//
// Sends for a round are therefore decided at the end of the node's
// previous awake round — the same information horizon as the goroutine
// form, where round r's sends may depend on everything up to round
// r_prev's inbox but not on round r's.
//
// The inbox slice is only valid during the OnWake call.
type StepNode interface {
	// Start stages the node's sends for round 0.
	Start(out *Outbox)
	// OnWake handles awake round round. nextWake must exceed round
	// unless done is true.
	OnWake(round int64, inbox []Inbound, out *Outbox) (nextWake int64, done bool)
}

// Outbox collects the sends a step node stages for one awake round.
type Outbox struct {
	msgs      []outMsg
	node      int
	degree    int
	bandwidth int
	strict    bool
}

func (o *Outbox) configure(node, degree int, cfg *Config) {
	o.node = node
	o.degree = degree
	o.bandwidth = cfg.Bandwidth
	o.strict = cfg.Strict
}

// Send queues a message on the given port. If the receiving neighbor is
// asleep in the round the message is transmitted, it is lost.
func (o *Outbox) Send(port int, m Message) {
	if port < 0 || port >= o.degree {
		panic(fmt.Sprintf("sim: node %d: invalid port %d (degree %d)", o.node, port, o.degree))
	}
	if o.strict {
		if bits := m.Bits(); bits > o.bandwidth {
			panic(&BandwidthError{Node: o.node, Port: port, Bits: bits, Budget: o.bandwidth})
		}
	}
	if cap(o.msgs) == 0 && o.degree > 1 {
		// Most nodes that send at all address several ports (Broadcast
		// is the common case), so grow straight to degree capacity
		// instead of paying the append doubling churn per node.
		o.msgs = make([]outMsg, 0, o.degree)
	}
	o.msgs = append(o.msgs, outMsg{port, m})
}

// Broadcast sends m on every port.
func (o *Outbox) Broadcast(m Message) {
	for p := 0; p < o.degree; p++ {
		o.Send(p, m)
	}
}

func (o *Outbox) reset() { o.msgs = o.msgs[:0] }

// asProgram adapts a step program to goroutine form, for engines that
// execute goroutine programs natively.
func (sp StepProgram) asProgram() Program {
	return func(ctx *Ctx) {
		env := &NodeEnv{
			ID:        ctx.id,
			Degree:    ctx.degree,
			N:         ctx.cfg.N,
			Bandwidth: ctx.cfg.Bandwidth,
			Rand:      ctx.rng,
		}
		var out Outbox
		out.configure(ctx.id, ctx.degree, ctx.cfg)
		node := sp(env)
		node.Start(&out)
		for {
			for _, om := range out.msgs {
				ctx.Send(om.port, om.msg)
			}
			in := ctx.Deliver()
			out.reset()
			next, done := node.OnWake(ctx.round, in, &out)
			if done {
				return
			}
			ctx.SleepUntil(next)
		}
	}
}
