package sim

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"

	"awakemis/internal/graph"
)

// testEngines returns every engine configuration under test: the
// lockstep reference and the stepped engine at several worker counts.
func testEngines() map[string]Engine {
	return map[string]Engine{
		"lockstep":   NewLockstepEngine(),
		"stepped-1":  NewSteppedEngine(1),
		"stepped-4":  NewSteppedEngine(4),
		"stepped-16": NewSteppedEngine(16),
	}
}

// runAll executes prog under every engine configuration and asserts all
// runs produced identical metrics, returning the common metrics.
func runAll(t *testing.T, g *graph.Graph, prog NodeProgram, cfg Config) *Metrics {
	t.Helper()
	var ref *Metrics
	var refName string
	for name, eng := range testEngines() {
		cfg.Engine = eng
		m, err := eng.Run(context.Background(), g, prog, cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if ref == nil {
			ref, refName = m, name
			continue
		}
		if !reflect.DeepEqual(ref, m) {
			t.Fatalf("metrics diverge: %s=%+v vs %s=%+v", refName, ref, name, m)
		}
	}
	return ref
}

// stepFlood is a native StepNode: broadcast for a fixed number of
// rounds, then halt.
type stepFlood struct {
	rounds int64
}

func (s *stepFlood) Start(out *Outbox) { out.Broadcast(intMsg(0)) }

func (s *stepFlood) OnWake(round int64, inbox []Inbound, out *Outbox) (int64, bool) {
	if round == s.rounds-1 {
		return 0, true
	}
	out.Broadcast(intMsg(round + 1))
	return round + 1, false
}

func TestStepProgramAcrossEngines(t *testing.T) {
	g := graph.Grid(8, 8)
	sp := StepProgram(func(env *NodeEnv) StepNode { return &stepFlood{rounds: 5} })
	m := runAll(t, g, sp, Config{Seed: 3})
	if m.Rounds != 5 || m.MaxAwake != 5 {
		t.Errorf("rounds/maxawake = %d/%d, want 5/5", m.Rounds, m.MaxAwake)
	}
	want := int64(5 * 2 * g.M())
	if m.MessagesSent != want || m.MessagesDelivered != want {
		t.Errorf("messages = %d/%d, want %d", m.MessagesSent, m.MessagesDelivered, want)
	}
}

// TestStepMatchesGoroutineForm runs semantically identical programs in
// both forms and demands bit-identical metrics.
func TestStepMatchesGoroutineForm(t *testing.T) {
	g := graph.Cycle(12)
	gp := Program(func(ctx *Ctx) {
		for i := int64(0); i < 5; i++ {
			ctx.Broadcast(intMsg(i))
			ctx.Deliver()
			if i < 4 {
				ctx.Advance()
			}
		}
	})
	sp := StepProgram(func(env *NodeEnv) StepNode { return &stepFlood{rounds: 5} })
	a := runAll(t, g, gp, Config{Seed: 9})
	b := runAll(t, g, sp, Config{Seed: 9})
	if !reflect.DeepEqual(a, b) {
		t.Errorf("forms diverge: goroutine=%+v step=%+v", a, b)
	}
}

// TestGoroutineProgramsAcrossEngines exercises the adapter's tricky
// control-flow paths on every engine: immediate sleep, immediate halt,
// halting mid-compute (staged sends must still transmit), clock
// skipping, and randomness-driven schedules.
func TestGoroutineProgramsAcrossEngines(t *testing.T) {
	progs := map[string]Program{
		"sleep-at-start": func(ctx *Ctx) {
			if ctx.Node() == 0 {
				ctx.SleepUntil(5)
			}
		},
		"halt-immediately": func(ctx *Ctx) {
			if ctx.Node()%2 == 0 {
				ctx.Halt()
			}
			ctx.Advance()
			ctx.Advance()
		},
		"return-mid-compute": func(ctx *Ctx) {
			ctx.Advance()
			// Round 1: stage a send, then return without Deliver; the
			// engine must still transmit it and meter the round.
			ctx.Broadcast(intMsg(7))
		},
		"clock-skip": func(ctx *Ctx) {
			ctx.SleepUntil(1_000_000 + int64(ctx.Node()))
		},
		"random-schedule": func(ctx *Ctx) {
			for i := 0; i < 6; i++ {
				ctx.Broadcast(intMsg(ctx.Rand().Int63n(100)))
				in := ctx.Deliver()
				if len(in) > 0 && ctx.Rand().Int63n(2) == 0 {
					ctx.Sleep(ctx.Rand().Int63n(5))
				} else {
					ctx.Advance()
				}
			}
		},
		"talk-then-listen": func(ctx *Ctx) {
			if ctx.Node() < 4 {
				ctx.Sleep(1)
				in := ctx.Deliver()
				if ctx.Node() == 0 && len(in) != 0 {
					panic("should hear nothing in a skipped round")
				}
				return
			}
			ctx.Broadcast(intMsg(1))
			ctx.Deliver()
			ctx.Advance()
			ctx.Broadcast(intMsg(2))
		},
	}
	graphs := map[string]*graph.Graph{
		"cycle": graph.Cycle(10),
		"star":  graph.Star(9),
		"empty": graph.New(6),
	}
	for pname, prog := range progs {
		for gname, g := range graphs {
			t.Run(pname+"/"+gname, func(t *testing.T) {
				runAll(t, g, prog, Config{Seed: 11})
			})
		}
	}
}

func TestSteppedErrorPaths(t *testing.T) {
	stepped := NewSteppedEngine(4)
	g := graph.Path(3)

	t.Run("program-panic", func(t *testing.T) {
		prog := Program(func(ctx *Ctx) {
			if ctx.Node() == 1 {
				panic("boom")
			}
			ctx.Deliver()
		})
		_, err := stepped.Run(context.Background(), g, prog, Config{Seed: 1})
		if err == nil || !strings.Contains(err.Error(), "node 1") {
			t.Fatalf("err = %v, want node 1 panic", err)
		}
	})

	t.Run("strict-bandwidth", func(t *testing.T) {
		prog := Program(func(ctx *Ctx) {
			ctx.Send(0, bigMsg{bits: 10_000})
			ctx.Deliver()
		})
		_, err := stepped.Run(context.Background(), g, prog, Config{Seed: 1, Strict: true})
		var be *BandwidthError
		if !errors.As(err, &be) {
			t.Fatalf("err = %v, want BandwidthError", err)
		}
	})

	t.Run("strict-bandwidth-step-form", func(t *testing.T) {
		sp := StepProgram(func(env *NodeEnv) StepNode { return &bigSender{} })
		_, err := stepped.Run(context.Background(), g, sp, Config{Seed: 1, Strict: true})
		var be *BandwidthError
		if !errors.As(err, &be) {
			t.Fatalf("err = %v, want BandwidthError", err)
		}
	})

	t.Run("max-rounds", func(t *testing.T) {
		prog := Program(func(ctx *Ctx) {
			for {
				ctx.Sleep(100)
			}
		})
		_, err := stepped.Run(context.Background(), g, prog, Config{Seed: 1, MaxRounds: 500})
		if !errors.Is(err, ErrMaxRounds) {
			t.Fatalf("err = %v, want ErrMaxRounds", err)
		}
	})

	t.Run("invalid-port-step-form", func(t *testing.T) {
		sp := StepProgram(func(env *NodeEnv) StepNode { return &badPortSender{} })
		_, err := stepped.Run(context.Background(), g, sp, Config{Seed: 1})
		if err == nil || !strings.Contains(err.Error(), "invalid port") {
			t.Fatalf("err = %v, want invalid port", err)
		}
	})

	t.Run("non-monotone-wake", func(t *testing.T) {
		sp := StepProgram(func(env *NodeEnv) StepNode { return &stuckNode{} })
		_, err := stepped.Run(context.Background(), g, sp, Config{Seed: 1})
		if err == nil || !strings.Contains(err.Error(), "not after round") {
			t.Fatalf("err = %v, want schedule error", err)
		}
	})
}

type bigSender struct{}

func (bigSender) Start(out *Outbox) { out.Send(0, bigMsg{bits: 10_000}) }
func (bigSender) OnWake(round int64, inbox []Inbound, out *Outbox) (int64, bool) {
	return 0, true
}

type badPortSender struct{}

func (badPortSender) Start(out *Outbox) {}
func (badPortSender) OnWake(round int64, inbox []Inbound, out *Outbox) (int64, bool) {
	out.Send(99, intMsg(1))
	return round + 1, false
}

type stuckNode struct{}

func (stuckNode) Start(out *Outbox) {}
func (stuckNode) OnWake(round int64, inbox []Inbound, out *Outbox) (int64, bool) {
	return round, false // not after the current round
}

// TestFuzzEquivalence drives randomized programs over randomized graphs
// through every engine configuration and demands identical metrics and
// identical per-node receive transcripts.
func TestFuzzEquivalence(t *testing.T) {
	for trial := 0; trial < 8; trial++ {
		seed := int64(100 + trial)
		g := graph.GNP(40, 0.12, newNodeRand(seed, 777))
		var ref []int64
		var refName string
		for name, eng := range testEngines() {
			sums := make([]int64, g.N())
			prog := Program(func(ctx *Ctx) {
				v := ctx.Node()
				for i := 0; i < 8; i++ {
					if ctx.Rand().Int63n(3) > 0 {
						ctx.Broadcast(intMsg(ctx.Rand().Int63n(1000)))
					}
					in := ctx.Deliver()
					for _, m := range in {
						sums[v] += int64(m.Msg.(intMsg)) * int64(m.Port+1)
					}
					if ctx.Rand().Int63n(4) == 0 {
						return
					}
					ctx.Sleep(ctx.Rand().Int63n(3))
				}
			})
			if _, err := eng.Run(context.Background(), g, prog, Config{Seed: seed}); err != nil {
				t.Fatalf("trial %d %s: %v", trial, name, err)
			}
			if ref == nil {
				ref, refName = sums, name
				continue
			}
			if !reflect.DeepEqual(ref, sums) {
				t.Fatalf("trial %d: transcript diverges between %s and %s", trial, refName, name)
			}
		}
	}
}

// TestWakeQueueOrder checks the bucket queue pops rounds in order with
// node indices sorted regardless of insertion order.
func TestWakeQueueOrder(t *testing.T) {
	q := newWakeQueue()
	q.add(7, 3)
	q.add(2, 9)
	q.add(7, 1)
	q.add(2, 4)
	q.add(5, 0)
	wantRounds := []int64{2, 5, 7}
	wantNodes := [][]int{{4, 9}, {0}, {1, 3}}
	for i := 0; !q.empty(); i++ {
		r, nodes := q.pop()
		if r != wantRounds[i] {
			t.Fatalf("pop %d: round %d, want %d", i, r, wantRounds[i])
		}
		if !reflect.DeepEqual(nodes, wantNodes[i]) {
			t.Fatalf("pop %d: nodes %v, want %v", i, nodes, wantNodes[i])
		}
		q.recycle(nodes)
	}
}

func TestEngineNames(t *testing.T) {
	if NewLockstepEngine().Name() != "lockstep" || NewSteppedEngine(2).Name() != "stepped" {
		t.Error("engine names wrong")
	}
	if Default().Name() != "stepped" {
		t.Error("default engine must be stepped")
	}
	for _, name := range []string{"", "stepped", "lockstep"} {
		if _, err := EngineByName(name, 0); err != nil {
			t.Errorf("EngineByName(%q): %v", name, err)
		}
	}
	if _, err := EngineByName("bogus", 0); err == nil {
		t.Error("bogus engine accepted")
	}
	if e, _ := EngineByName("stepped", 3); e.(*steppedEngine).workers != 3 {
		t.Error("worker count not honored")
	}
}
