package sim

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"

	"awakemis/internal/graph"
	"awakemis/internal/rng"
)

// steppedEngine keeps all node state inline and drives awake nodes from
// a wake-time bucket queue: no per-node goroutines, no channel
// handshakes on the hot path. Each round's OnWake calls are fanned
// across a persistent worker pool in deterministic contiguous
// node-index shards; because a step depends only on the node's own
// state, inbox, and private RNG stream, results are bit-identical at
// every worker count.
//
// State is struct-of-arrays: the per-node machine, staged outbox,
// parity-pooled inbox buffers, and next-wake round each live in their
// own flat array, so the hot loops (routing, stepping, rescheduling)
// touch only the arrays they need. At steady state the engine performs
// zero heap allocations per round for native step programs: inboxes
// are reused buffers keyed by round parity, outboxes reset in place,
// message routing writes through the graph's precomputed reverse
// ports, and the worker pool is fed over a channel of index spans
// (guarded by the testing.AllocsPerRun tests in alloc_test.go).
type steppedEngine struct {
	workers int
}

// NewSteppedEngine returns the inline-state engine with the given
// worker-pool size (0 means one worker per CPU).
func NewSteppedEngine(workers int) Engine {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &steppedEngine{workers: workers}
}

// Name implements Engine.
func (e *steppedEngine) Name() string { return "stepped" }

// Run implements Engine. Goroutine programs are adapted to step form.
func (e *steppedEngine) Run(ctx context.Context, g *graph.Graph, prog NodeProgram, cfg Config) (*Metrics, error) {
	cfg, err := cfg.withDefaults(g.N())
	if err != nil {
		return nil, err
	}
	switch p := prog.(type) {
	case StepProgram:
		return e.run(ctx, g, p, cfg, true)
	case Program:
		ad := newGoroutineAdapter(p, &cfg)
		defer ad.shutdown()
		return e.run(ctx, g, ad.stepProgram(), cfg, false)
	default:
		return nil, fmt.Errorf("sim: stepped: unsupported program type %T", prog)
	}
}

// haltedWake marks a node that returned done from its last OnWake.
const haltedWake = math.MinInt64

// nodeFailure wraps a per-node error recovered from a step call.
type nodeFailure struct {
	node int
	err  error
}

func (f *nodeFailure) attach(r any) {
	switch v := r.(type) {
	case error:
		f.err = fmt.Errorf("program panic: %w", v)
	default:
		f.err = fmt.Errorf("program panic: %v", v)
	}
}

// stepState is one run's struct-of-arrays node state plus the
// round-scoped scratch the worker pool reads.
type stepState struct {
	g   *graph.Graph
	cfg Config
	m   *Metrics
	q   *wakeQueue

	node  []StepNode     // per-node machine; nil once halted
	out   []Outbox       // sends staged for each node's next awake round
	inbox [2][][]Inbound // per-node inbox buffers keyed by round parity
	next  []int64        // wake round returned by the last OnWake (haltedWake once done)
	stamp []int64        // routing scratch: stamp[v] == clock+1 iff v awake now
	cur   []int32        // routing scratch: per-receiver port cursors

	probe roundProbe // per-round deltas for cfg.Observer (no-op when nil)

	// reuse marks native step programs, whose inbox slices are borrowed
	// for the duration of OnWake only: their buffers are truncated and
	// reused. Adapter-run goroutine programs may retain Deliver results,
	// so their inboxes are handed over and reallocated.
	reuse bool

	// Round scope, published to workers before shards are dispatched.
	awake []int
	clock int64
	par   int // clock & 1: which inbox parity this round fills and drains

	// Worker pool: spans of the awake slice flow over jobs; a nil
	// channel means single-worker (shards run inline).
	jobs chan [2]int
	wg   sync.WaitGroup

	// Lowest-node failure of the current round, aggregated across shards.
	failMu   sync.Mutex
	failNode int
	failErr  error
}

// outOf implements router.
func (rs *stepState) outOf(v int) []outMsg { return rs.out[v].msgs }

// inboxOf implements router.
func (rs *stepState) inboxOf(v int) *[]Inbound { return &rs.inbox[rs.par][v] }

func (e *steppedEngine) run(ctx context.Context, g *graph.Graph, sp StepProgram, cfg Config, native bool) (*Metrics, error) {
	rs, err := newStepState(g, sp, cfg, native, e.workers)
	if err != nil {
		return rs.m, err
	}
	defer rs.close()

	for !rs.q.empty() {
		// Honor cancellation at every round boundary: the nodes' inline
		// state is simply dropped, so an abort needs no unwinding.
		if err := ctx.Err(); err != nil {
			return rs.m, fmt.Errorf("sim: aborted after round %d: %w", rs.m.Rounds, err)
		}
		if err := rs.round(e.workers); err != nil {
			return rs.m, err
		}
	}
	return rs.m, nil
}

// newStepState builds a run's node state, stages every node's round-0
// sends, and spawns the worker pool. The returned state is driven by
// calling round until the queue empties, then released with close. It
// is split from run so tests can drive single rounds (the allocation
// guards measure round in isolation after a warm-up).
func newStepState(g *graph.Graph, sp StepProgram, cfg Config, native bool, workers int) (*stepState, error) {
	n := g.N()
	rs := &stepState{
		g:     g,
		cfg:   cfg,
		m:     &Metrics{AwakePerNode: make([]int64, n)},
		q:     newWakeQueue(),
		node:  make([]StepNode, n),
		out:   make([]Outbox, n),
		next:  make([]int64, n),
		stamp: make([]int64, n),
		cur:   make([]int32, n),
		reuse: native,
		probe: roundProbe{obs: cfg.Observer},
	}
	rs.inbox[0] = make([][]Inbound, n)
	rs.inbox[1] = make([][]Inbound, n)

	// Construct every node machine and stage its round-0 sends. The
	// environments and RNG sources are slab-allocated: two arrays for
	// the whole run instead of two heap objects per node.
	envs := make([]NodeEnv, n)
	srcs := make([]nodeSource, n)
	for v := 0; v < n; v++ {
		rs.out[v].configure(v, g.Degree(v), &rs.cfg)
		srcs[v].state = uint64(rng.Stream(cfg.Seed, int64(v)))
		envs[v] = NodeEnv{
			ID:        v,
			Degree:    g.Degree(v),
			N:         cfg.N,
			Bandwidth: cfg.Bandwidth,
			Rand:      rand.New(&srcs[v]),
		}
		if err := rs.startNode(v, sp, &envs[v]); err != nil {
			return rs, fmt.Errorf("sim: node %d: %w", v, err)
		}
		rs.q.add(0, v) // all nodes start awake in round 0
	}

	if workers > 1 {
		rs.jobs = make(chan [2]int, workers)
		for i := 0; i < workers; i++ {
			go rs.worker()
		}
	}
	return rs, nil
}

// close releases the worker pool.
func (rs *stepState) close() {
	if rs.jobs != nil {
		close(rs.jobs)
	}
}

// round executes one scheduled round: pop the awake set, route the
// staged sends, fan the OnWake calls across the pool, and reschedule.
// It is the engine's entire per-round path, factored out so the
// allocation-regression tests can drive it directly.
func (rs *stepState) round(workers int) error {
	clock, awake := rs.q.pop()
	if clock > rs.cfg.MaxRounds {
		return fmt.Errorf("%w (round %d)", ErrMaxRounds, clock)
	}
	rs.probe.begin(rs.m)
	rs.m.ExecutedRounds++
	if clock+1 > rs.m.Rounds {
		rs.m.Rounds = clock + 1
	}
	for _, v := range awake {
		rs.m.noteAwake(v, clock, rs.cfg.Tracer)
	}

	// Transmit the sends staged for this round (decided at each node's
	// previous awake round) between mutually awake nodes. The inboxes
	// filled here are this round's parity buffers; OnWake drains them.
	rs.clock = clock
	rs.par = int(clock & 1)
	routeRound(rs.g, rs.m, rs.cfg.Tracer, clock, awake, rs.stamp, rs.cur, rs)

	// Fan the step calls across the worker pool in contiguous
	// node-index shards.
	rs.stepAll(awake, workers)

	// Surface the lowest-indexed failure deterministically.
	if err := rs.failErr; err != nil {
		return fmt.Errorf("sim: node %d: %w", rs.failNode, err)
	}

	// Reschedule.
	for _, v := range awake {
		next := rs.next[v]
		if next == haltedWake {
			continue
		}
		if next <= clock {
			return fmt.Errorf("sim: node %d scheduled wake %d not after round %d", v, next, clock)
		}
		rs.q.add(next, v)
	}
	rs.probe.end(rs.m, clock, len(awake))
	rs.q.recycle(awake)
	return nil
}

// stepAll runs OnWake for every awake node, splitting the (sorted)
// awake list into at most workers contiguous shards. Shard boundaries
// affect scheduling only, never results: a step touches nothing but its
// own node's state.
func (rs *stepState) stepAll(awake []int, workers int) {
	const minParallel = 128
	if rs.jobs == nil || len(awake) < minParallel {
		rs.stepRange(awake)
		return
	}
	rs.awake = awake
	chunk := (len(awake) + workers - 1) / workers
	for lo := 0; lo < len(awake); lo += chunk {
		hi := lo + chunk
		if hi > len(awake) {
			hi = len(awake)
		}
		rs.wg.Add(1)
		rs.jobs <- [2]int{lo, hi}
	}
	rs.wg.Wait()
}

// worker drains awake-list spans for the run's lifetime; the channel
// send/receive pair orders each round's published state before the
// shard that reads it.
func (rs *stepState) worker() {
	for span := range rs.jobs {
		rs.stepRange(rs.awake[span[0]:span[1]])
		rs.wg.Done()
	}
}

func (rs *stepState) stepRange(awake []int) {
	for _, v := range awake {
		rs.stepNode(v)
	}
}

// fail records a node failure, keeping the lowest node index so the
// surfaced error is deterministic at every worker count.
func (rs *stepState) fail(v int, err error) {
	rs.failMu.Lock()
	if rs.failErr == nil || v < rs.failNode {
		rs.failNode, rs.failErr = v, err
	}
	rs.failMu.Unlock()
}

func (rs *stepState) stepNode(v int) {
	defer func() {
		if r := recover(); r != nil {
			if f, ok := r.(*nodeFailure); ok {
				rs.fail(v, f.err)
			} else {
				f := &nodeFailure{}
				f.attach(r)
				rs.fail(v, f.err)
			}
		}
	}()
	buf := &rs.inbox[rs.par][v]
	in := *buf
	if rs.reuse {
		// Native step nodes borrow the inbox for the OnWake call only,
		// so the buffer is truncated for reuse. It is not refilled
		// before the next round of the same parity, giving one full
		// round of slack beyond the contract.
		*buf = in[:0]
	} else {
		// The goroutine adapter hands the slice to a program that may
		// retain it (Ctx.Deliver makes no borrowing promise): start a
		// fresh buffer next round.
		*buf = nil
	}
	sortInbox(in)
	out := &rs.out[v]
	out.reset()
	next, done := rs.node[v].OnWake(rs.clock, in, out)
	if done {
		rs.node[v] = nil // release the machine; staged sends are dropped
		rs.next[v] = haltedWake
		return
	}
	rs.next[v] = next
}

func (rs *stepState) startNode(v int, sp StepProgram, env *NodeEnv) (err error) {
	defer func() {
		if r := recover(); r != nil {
			if f, ok := r.(*nodeFailure); ok {
				err = f.err
			} else {
				f := &nodeFailure{}
				f.attach(r)
				err = f.err
			}
		}
	}()
	rs.node[v] = sp(env)
	rs.node[v].Start(&rs.out[v])
	return nil
}
