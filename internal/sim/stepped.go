package sim

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"awakemis/internal/graph"
)

// steppedEngine keeps all node state inline and drives awake nodes from
// a wake-time bucket queue: no per-node goroutines, no channel
// handshakes on the hot path. Each round's OnWake calls are fanned
// across a worker pool in deterministic contiguous node-index shards;
// because a step depends only on the node's own state, inbox, and
// private RNG stream, results are bit-identical at every worker count.
type steppedEngine struct {
	workers int
}

// NewSteppedEngine returns the inline-state engine with the given
// worker-pool size (0 means one worker per CPU).
func NewSteppedEngine(workers int) Engine {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &steppedEngine{workers: workers}
}

// Name implements Engine.
func (e *steppedEngine) Name() string { return "stepped" }

// Run implements Engine. Goroutine programs are adapted to step form.
func (e *steppedEngine) Run(ctx context.Context, g *graph.Graph, prog NodeProgram, cfg Config) (*Metrics, error) {
	cfg, err := cfg.withDefaults(g.N())
	if err != nil {
		return nil, err
	}
	switch p := prog.(type) {
	case StepProgram:
		return e.run(ctx, g, p, cfg)
	case Program:
		ad := newGoroutineAdapter(p, &cfg)
		defer ad.shutdown()
		return e.run(ctx, g, ad.stepProgram(), cfg)
	default:
		return nil, fmt.Errorf("sim: stepped: unsupported program type %T", prog)
	}
}

// snode is one node's inline state.
type snode struct {
	node  StepNode  // nil once the node halted
	out   Outbox    // sends staged for round next
	inbox []Inbound // accumulated by routing for the current round
	next  int64     // wake round returned by the last OnWake
	done  bool
	err   error
}

// nodeFailure wraps a per-node error recovered from a step call.
type nodeFailure struct {
	node int
	err  error
}

func (f *nodeFailure) attach(r any) {
	switch v := r.(type) {
	case error:
		f.err = fmt.Errorf("program panic: %w", v)
	default:
		f.err = fmt.Errorf("program panic: %v", v)
	}
}

func (e *steppedEngine) run(ctx context.Context, g *graph.Graph, sp StepProgram, cfg Config) (*Metrics, error) {
	n := g.N()
	m := &Metrics{AwakePerNode: make([]int64, n)}
	nodes := make([]snode, n)
	q := newWakeQueue()

	// Construct every node machine and stage its round-0 sends.
	for v := 0; v < n; v++ {
		sn := &nodes[v]
		sn.out.configure(v, g.Degree(v), &cfg)
		env := &NodeEnv{
			ID:        v,
			Degree:    g.Degree(v),
			N:         cfg.N,
			Bandwidth: cfg.Bandwidth,
			Rand:      newNodeRand(cfg.Seed, v),
		}
		if err := startNode(sn, sp, env); err != nil {
			return m, fmt.Errorf("sim: node %d: %w", v, err)
		}
		q.add(0, v) // all nodes start awake in round 0
	}

	stamp := make([]int64, n)
	for !q.empty() {
		// Honor cancellation at every round boundary: the nodes' inline
		// state is simply dropped, so an abort needs no unwinding.
		if err := ctx.Err(); err != nil {
			return m, fmt.Errorf("sim: aborted after round %d: %w", m.Rounds, err)
		}
		clock, awake := q.pop()
		if clock > cfg.MaxRounds {
			return m, fmt.Errorf("%w (round %d)", ErrMaxRounds, clock)
		}
		m.ExecutedRounds++
		if clock+1 > m.Rounds {
			m.Rounds = clock + 1
		}
		for _, v := range awake {
			m.noteAwake(v, clock, cfg.Tracer)
		}

		// Transmit the sends staged for this round (decided at each
		// node's previous awake round) between mutually awake nodes.
		routeRound(g, m, cfg.Tracer, clock, awake, stamp,
			func(v int) []outMsg { return nodes[v].out.msgs },
			func(v int) *[]Inbound { return &nodes[v].inbox })

		// Fan the step calls across the worker pool in contiguous
		// node-index shards.
		e.stepAll(nodes, awake, clock)

		// Surface the lowest-indexed failure deterministically.
		for _, v := range awake {
			if err := nodes[v].err; err != nil {
				return m, fmt.Errorf("sim: node %d: %w", v, err)
			}
		}

		// Reschedule.
		for _, v := range awake {
			sn := &nodes[v]
			if sn.done {
				sn.node = nil // release the machine; staged sends are dropped
				continue
			}
			if sn.next <= clock {
				return m, fmt.Errorf("sim: node %d scheduled wake %d not after round %d", v, sn.next, clock)
			}
			q.add(sn.next, v)
		}
		q.recycle(awake)
	}
	return m, nil
}

// stepAll runs OnWake for every awake node, splitting the (sorted)
// awake list into at most e.workers contiguous shards. Shard boundaries
// affect scheduling only, never results: a step touches nothing but its
// own node's state.
func (e *steppedEngine) stepAll(nodes []snode, awake []int, clock int64) {
	const minParallel = 128
	if e.workers == 1 || len(awake) < minParallel {
		stepRange(nodes, awake, clock)
		return
	}
	shards := e.workers
	chunk := (len(awake) + shards - 1) / shards
	var wg sync.WaitGroup
	for lo := 0; lo < len(awake); lo += chunk {
		hi := lo + chunk
		if hi > len(awake) {
			hi = len(awake)
		}
		wg.Add(1)
		go func(part []int) {
			defer wg.Done()
			stepRange(nodes, part, clock)
		}(awake[lo:hi])
	}
	wg.Wait()
}

func stepRange(nodes []snode, awake []int, clock int64) {
	for _, v := range awake {
		stepNode(&nodes[v], clock)
	}
}

func stepNode(sn *snode, clock int64) {
	defer func() {
		if r := recover(); r != nil {
			if f, ok := r.(*nodeFailure); ok {
				sn.err = f.err
			} else {
				f := &nodeFailure{}
				f.attach(r)
				sn.err = f.err
			}
		}
	}()
	// Hand the inbox over and start a fresh slice next round. Buffer
	// reuse here is forbidden even though StepNode declares the inbox
	// borrowed: goroutine programs running through the adapter may
	// legitimately retain their Deliver() result past the round, and
	// they receive this very slice.
	in := sn.inbox
	sn.inbox = nil
	sortInbox(in)
	sn.out.reset()
	sn.next, sn.done = sn.node.OnWake(clock, in, &sn.out)
}

func startNode(sn *snode, sp StepProgram, env *NodeEnv) (err error) {
	defer func() {
		if r := recover(); r != nil {
			if f, ok := r.(*nodeFailure); ok {
				err = f.err
			} else {
				f := &nodeFailure{}
				f.attach(r)
				err = f.err
			}
		}
	}()
	sn.node = sp(env)
	sn.node.Start(&sn.out)
	return nil
}
