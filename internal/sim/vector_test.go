package sim

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"awakemis/internal/graph"
)

// vecProbeNode is a randomness-driven step node: it broadcasts with a
// coin flip, sleeps a random number of rounds between wakes, and halts
// after a fixed number of awake rounds — exercising lane interleaving,
// sleeping receivers (message loss), and staggered halts.
type vecProbeNode struct {
	rnd  *rand.Rand
	left int
}

func (n *vecProbeNode) Start(out *Outbox) {
	if n.rnd.Intn(2) == 0 {
		out.Broadcast(emptyMsg{})
	}
}

func (n *vecProbeNode) OnWake(round int64, inbox []Inbound, out *Outbox) (int64, bool) {
	n.left--
	if n.left <= 0 {
		return 0, true
	}
	if n.rnd.Intn(3) > 0 {
		out.Broadcast(emptyMsg{})
	}
	return round + 1 + int64(n.rnd.Intn(3)), false
}

var vecProbe StepProgram = func(env *NodeEnv) StepNode {
	return &vecProbeNode{rnd: env.Rand, left: 6 + env.Rand.Intn(4)}
}

// statRecorder collects the observer stream with wall times zeroed, so
// streams compare deterministically.
type statRecorder struct{ stats []RoundStat }

func (r *statRecorder) ObserveRound(st RoundStat) {
	st.Elapsed = 0
	r.stats = append(r.stats, st)
}

// runVectorLanes drives a vectorized run the way the facade does: one
// goroutine per lane, each entering through its lane handle.
func runVectorLanes(t *testing.T, g *graph.Graph, progs []StepProgram, cfgs []Config, workers int) ([]*Metrics, []error) {
	t.Helper()
	ve := NewVectorEngine(len(progs), workers)
	ms := make([]*Metrics, len(progs))
	errs := make([]error, len(progs))
	var wg sync.WaitGroup
	for i := range progs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ms[i], errs[i] = ve.Lane(i).Run(context.Background(), g, progs[i], cfgs[i])
		}(i)
	}
	wg.Wait()
	return ms, errs
}

// TestVectorMatchesScalar is the vector engine's determinism contract:
// every lane of a merged run produces Metrics and an observer stream
// bit-identical to a scalar stepped run of the same (graph, program,
// seed) — at several worker counts, on graphs dense and sparse.
func TestVectorMatchesScalar(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"cycle": graph.Cycle(64),
		"gnp":   graph.GNP(96, 0.08, rand.New(rand.NewSource(5))),
		"grid":  graph.Grid(8, 8),
	}
	seeds := []int64{3, 101, -7, 42}
	for gname, g := range graphs {
		for _, workers := range []int{1, 4} {
			var wantMS []*Metrics
			var wantObs [][]RoundStat
			for _, seed := range seeds {
				rec := &statRecorder{}
				m, err := NewSteppedEngine(1).Run(context.Background(), g, vecProbe,
					Config{Seed: seed, Observer: rec})
				if err != nil {
					t.Fatalf("%s: scalar seed %d: %v", gname, seed, err)
				}
				wantMS = append(wantMS, m)
				wantObs = append(wantObs, rec.stats)
			}

			progs := make([]StepProgram, len(seeds))
			cfgs := make([]Config, len(seeds))
			recs := make([]*statRecorder, len(seeds))
			for i, seed := range seeds {
				progs[i] = vecProbe
				recs[i] = &statRecorder{}
				cfgs[i] = Config{Seed: seed, Observer: recs[i]}
			}
			ms, errs := runVectorLanes(t, g, progs, cfgs, workers)
			for i := range seeds {
				if errs[i] != nil {
					t.Fatalf("%s workers=%d lane %d: %v", gname, workers, i, errs[i])
				}
				if !reflect.DeepEqual(ms[i], wantMS[i]) {
					t.Errorf("%s workers=%d lane %d metrics diverge:\nvector %+v\nscalar %+v",
						gname, workers, i, ms[i], wantMS[i])
				}
				if !reflect.DeepEqual(recs[i].stats, wantObs[i]) {
					t.Errorf("%s workers=%d lane %d observer stream diverges from scalar", gname, workers, i)
				}
			}
		}
	}
}

// TestVectorSingleLane pins the degenerate R=1 case to the scalar run.
func TestVectorSingleLane(t *testing.T) {
	g := graph.Cycle(32)
	want, err := NewSteppedEngine(1).Run(context.Background(), g, vecProbe, Config{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	ms, errs := runVectorLanes(t, g, []StepProgram{vecProbe}, []Config{{Seed: 11}}, 1)
	if errs[0] != nil {
		t.Fatal(errs[0])
	}
	if !reflect.DeepEqual(ms[0], want) {
		t.Errorf("single-lane vector diverges from scalar:\nvector %+v\nscalar %+v", ms[0], want)
	}
}

// TestVectorLaneFailure: one lane panicking fails the whole merged run
// deterministically — every lane surfaces the same error.
func TestVectorLaneFailure(t *testing.T) {
	g := graph.Cycle(8)
	boom := StepProgram(func(env *NodeEnv) StepNode {
		return stepFunc(func(round int64, inbox []Inbound, out *Outbox) (int64, bool) {
			if round == 2 && env.ID == 3 {
				panic("lane blew up")
			}
			return round + 1, false
		})
	})
	steady := StepProgram(func(env *NodeEnv) StepNode {
		return stepFunc(func(round int64, inbox []Inbound, out *Outbox) (int64, bool) {
			return round + 1, round >= 10
		})
	})
	ms, errs := runVectorLanes(t, g, []StepProgram{steady, boom}, []Config{{Seed: 1}, {Seed: 2}}, 2)
	for i, err := range errs {
		if err == nil {
			t.Fatalf("lane %d: expected the merged run to fail, got metrics %+v", i, ms[i])
		}
		if errs[0].Error() != err.Error() {
			t.Fatalf("lanes disagree on the failure: %v vs %v", errs[0], err)
		}
	}
}

// stepFunc adapts a function to a StepNode that stages nothing at
// start.
type stepFunc func(round int64, inbox []Inbound, out *Outbox) (int64, bool)

func (stepFunc) Start(out *Outbox) {}
func (f stepFunc) OnWake(round int64, inbox []Inbound, out *Outbox) (int64, bool) {
	return f(round, inbox, out)
}

// TestVectorAbortUnblocksLanes: when a lane errors before reaching its
// engine call, Abort releases the lanes already waiting at the
// rendezvous with the abort error instead of deadlocking.
func TestVectorAbortUnblocksLanes(t *testing.T) {
	g := graph.Cycle(8)
	ve := NewVectorEngine(2, 1)
	cause := errors.New("lane 1 never arrived")
	done := make(chan error, 1)
	go func() {
		_, err := ve.Lane(0).Run(context.Background(), g, vecProbe, Config{Seed: 1})
		done <- err
	}()
	ve.Abort(cause)
	if err := <-done; !errors.Is(err, cause) {
		t.Fatalf("waiting lane returned %v, want %v", err, cause)
	}
	// Lanes arriving after the abort see it too.
	if _, err := ve.Lane(1).Run(context.Background(), g, vecProbe, Config{Seed: 2}); !errors.Is(err, cause) {
		t.Fatalf("late lane returned %v, want %v", err, cause)
	}
}

// TestVectorRejectsGoroutinePrograms: only native step programs can be
// vectorized; goroutine-form programs are rejected at registration.
func TestVectorRejectsGoroutinePrograms(t *testing.T) {
	g := graph.Cycle(4)
	ve := NewVectorEngine(1, 1)
	prog := Program(func(ctx *Ctx) {})
	if _, err := ve.Lane(0).Run(context.Background(), g, prog, Config{Seed: 1}); err == nil {
		t.Fatal("goroutine program accepted by the vector engine")
	}
}

// TestVectorRoundZeroAllocs extends the stepped engine's steady-state
// allocation guard to the merged round loop: with nil observers, a
// full vectorized round over 4 lanes — lane detection, per-lane
// metering, one-pass routing through the shared reverse-port cursors,
// the step fan-out, and rescheduling — allocates nothing.
func TestVectorRoundZeroAllocs(t *testing.T) {
	for _, workers := range []int{1, 4} {
		t.Run(map[int]string{1: "workers=1", 4: "workers=4"}[workers], func(t *testing.T) {
			g := graph.Cycle(128)
			const lanes = 4
			progs := make([]StepProgram, lanes)
			cfgs := make([]Config, lanes)
			for i := range progs {
				progs[i] = allocProbe
				cfg, err := Config{Seed: int64(i + 1)}.withDefaults(g.N())
				if err != nil {
					t.Fatal(err)
				}
				cfgs[i] = cfg
			}
			vs, err := newVecState(g, progs, cfgs, workers)
			if err != nil {
				t.Fatal(err)
			}
			defer vs.close()

			for i := 0; i < 8; i++ {
				if err := vs.round(workers); err != nil {
					t.Fatal(err)
				}
			}
			avg := testing.AllocsPerRun(100, func() {
				if err := vs.round(workers); err != nil {
					t.Fatal(err)
				}
			})
			if avg != 0 {
				t.Errorf("steady-state vectorized round allocates %.1f objects/round, want 0", avg)
			}
		})
	}
}
