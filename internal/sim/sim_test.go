package sim

import (
	"errors"
	"sync"
	"testing"

	"awakemis/internal/bitio"
	"awakemis/internal/graph"
)

// intMsg is a simple test message carrying one integer.
type intMsg int64

func (m intMsg) Bits() int { return bitio.IntBits(int64(m)) }

// bigMsg reports an arbitrary size regardless of content.
type bigMsg struct{ bits int }

func (m bigMsg) Bits() int { return m.bits }

var (
	_ Message = intMsg(0)
	_ Message = bigMsg{}
)

// collector gathers per-node outputs race-free (each node writes only
// its own slot; the engine's final barrier orders it before reads).
type collector struct {
	mu   sync.Mutex
	vals map[int][]int64
}

func newCollector() *collector { return &collector{vals: map[int][]int64{}} }

func (c *collector) add(node int, v int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.vals[node] = append(c.vals[node], v)
}

func TestPingExchange(t *testing.T) {
	g := graph.Path(2)
	got := newCollector()
	prog := func(ctx *Ctx) {
		ctx.Send(0, intMsg(int64(100+ctx.Node())))
		in := ctx.Deliver()
		if len(in) != 1 {
			t.Errorf("node %d: got %d messages, want 1", ctx.Node(), len(in))
			return
		}
		got.add(ctx.Node(), int64(in[0].Msg.(intMsg)))
	}
	m, err := Run(g, prog, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got.vals[0][0] != 101 || got.vals[1][0] != 100 {
		t.Errorf("exchange wrong: %v", got.vals)
	}
	if m.Rounds != 1 {
		t.Errorf("Rounds = %d, want 1", m.Rounds)
	}
	if m.MaxAwake != 1 || m.TotalAwake != 2 {
		t.Errorf("awake metrics = max %d total %d, want 1/2", m.MaxAwake, m.TotalAwake)
	}
	if m.MessagesSent != 2 || m.MessagesDelivered != 2 {
		t.Errorf("messages = %d sent %d delivered, want 2/2", m.MessagesSent, m.MessagesDelivered)
	}
}

func TestMessageToSleepingNodeIsLost(t *testing.T) {
	g := graph.Path(2)
	got := newCollector()
	prog := func(ctx *Ctx) {
		if ctx.Node() == 0 {
			// Round 0: sleep through round 1, wake round 2.
			ctx.Sleep(1)
			// Round 2: nothing should be waiting (round-1 msg lost).
			in := ctx.Deliver()
			got.add(0, int64(len(in)))
			return
		}
		// Node 1: round 0 idle, round 1 send (lost), round 2 send (heard).
		ctx.Advance()
		ctx.Send(0, intMsg(7))
		ctx.Advance()
		ctx.Send(0, intMsg(9))
		in := ctx.Deliver()
		got.add(1, int64(len(in)))
	}
	m, err := Run(g, prog, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got.vals[0][0] != 1 {
		t.Errorf("node 0 should hear exactly the round-2 message, got %d", got.vals[0][0])
	}
	if m.MessagesSent != 2 || m.MessagesDelivered != 1 {
		t.Errorf("sent %d delivered %d, want 2/1", m.MessagesSent, m.MessagesDelivered)
	}
}

func TestSenderAsleepMessageNotSent(t *testing.T) {
	// A sleeping node cannot send: the API has no way to express it, and
	// nothing is delivered to an awake listener from a sleeping neighbor.
	g := graph.Path(2)
	heard := newCollector()
	prog := func(ctx *Ctx) {
		if ctx.Node() == 0 {
			ctx.Sleep(3)
			return
		}
		for i := 0; i < 3; i++ {
			in := ctx.Deliver()
			heard.add(1, int64(len(in)))
			ctx.Advance()
		}
	}
	if _, err := Run(g, prog, Config{Seed: 1}); err != nil {
		t.Fatal(err)
	}
	for _, c := range heard.vals[1] {
		if c != 0 {
			t.Errorf("awake node heard %d messages from sleeping neighbor", c)
		}
	}
}

func TestClockSkipping(t *testing.T) {
	g := graph.New(3)
	prog := func(ctx *Ctx) {
		ctx.SleepUntil(1_000_000)
		// One more awake round at 1e6, then halt.
	}
	m, err := Run(g, prog, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if m.Rounds != 1_000_001 {
		t.Errorf("Rounds = %d, want 1000001", m.Rounds)
	}
	if m.ExecutedRounds != 2 {
		t.Errorf("ExecutedRounds = %d, want 2 (round 0 and round 1e6)", m.ExecutedRounds)
	}
	if m.MaxAwake != 2 {
		t.Errorf("MaxAwake = %d, want 2", m.MaxAwake)
	}
}

func TestRoundNumbersVisible(t *testing.T) {
	g := graph.New(1)
	var rounds []int64
	prog := func(ctx *Ctx) {
		rounds = append(rounds, ctx.Round())
		ctx.Advance()
		rounds = append(rounds, ctx.Round())
		ctx.SleepUntil(10)
		rounds = append(rounds, ctx.Round())
	}
	if _, err := Run(g, prog, Config{Seed: 1}); err != nil {
		t.Fatal(err)
	}
	want := []int64{0, 1, 10}
	for i := range want {
		if rounds[i] != want[i] {
			t.Errorf("round[%d] = %d, want %d", i, rounds[i], want[i])
		}
	}
}

func TestStrictCongestViolation(t *testing.T) {
	g := graph.Path(2)
	prog := func(ctx *Ctx) {
		ctx.Send(0, bigMsg{bits: 10_000})
		ctx.Deliver()
	}
	_, err := Run(g, prog, Config{Seed: 1, Strict: true})
	if err == nil {
		t.Fatal("expected bandwidth error")
	}
	var be *BandwidthError
	if !errors.As(err, &be) {
		t.Fatalf("error %v is not a BandwidthError", err)
	}
}

func TestNonStrictAllowsBigMessages(t *testing.T) {
	g := graph.Path(2)
	prog := func(ctx *Ctx) {
		ctx.Send(0, bigMsg{bits: 10_000})
		ctx.Deliver()
	}
	m, err := Run(g, prog, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if m.MaxMessageBits != 10_000 {
		t.Errorf("MaxMessageBits = %d", m.MaxMessageBits)
	}
}

func TestMaxRoundsAborts(t *testing.T) {
	g := graph.New(1)
	prog := func(ctx *Ctx) {
		for {
			ctx.Sleep(100)
		}
	}
	_, err := Run(g, prog, Config{Seed: 1, MaxRounds: 500})
	if !errors.Is(err, ErrMaxRounds) {
		t.Fatalf("err = %v, want ErrMaxRounds", err)
	}
}

func TestProgramPanicBecomesError(t *testing.T) {
	g := graph.Path(3)
	prog := func(ctx *Ctx) {
		if ctx.Node() == 1 {
			panic("boom")
		}
		ctx.Deliver()
	}
	_, err := Run(g, prog, Config{Seed: 1})
	if err == nil {
		t.Fatal("expected error from panicking program")
	}
}

func TestHalt(t *testing.T) {
	g := graph.New(2)
	prog := func(ctx *Ctx) {
		if ctx.Node() == 0 {
			ctx.Halt()
			t.Error("unreachable after Halt")
		}
		ctx.Advance()
		ctx.Advance()
	}
	m, err := Run(g, prog, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if m.AwakePerNode[0] != 1 {
		t.Errorf("halted node awake %d rounds, want 1", m.AwakePerNode[0])
	}
	if m.AwakePerNode[1] != 3 {
		t.Errorf("node 1 awake %d rounds, want 3", m.AwakePerNode[1])
	}
}

func TestDeterministicReplay(t *testing.T) {
	g := graph.Cycle(16)
	run := func() []int64 {
		vals := make([]int64, g.N())
		prog := func(ctx *Ctx) {
			x := ctx.Rand().Int63n(1000)
			ctx.Broadcast(intMsg(x))
			in := ctx.Deliver()
			sum := x
			for _, m := range in {
				sum += int64(m.Msg.(intMsg))
			}
			vals[ctx.Node()] = sum
			ctx.Advance()
			vals[ctx.Node()] += ctx.Rand().Int63n(10)
		}
		if _, err := Run(g, prog, Config{Seed: 42}); err != nil {
			t.Fatal(err)
		}
		return vals
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay diverged at node %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	g := graph.New(8)
	run := func(seed int64) int64 {
		var mu sync.Mutex
		var total int64
		prog := func(ctx *Ctx) {
			v := ctx.Rand().Int63n(1 << 30)
			mu.Lock()
			total += v
			mu.Unlock()
		}
		if _, err := Run(g, prog, Config{Seed: seed}); err != nil {
			t.Fatal(err)
		}
		return total
	}
	if run(1) == run(2) {
		t.Error("different seeds produced identical randomness (unlikely)")
	}
}

func TestInboxSortedByPort(t *testing.T) {
	g := graph.Star(5) // center 0 with 4 leaves
	var ports []int
	prog := func(ctx *Ctx) {
		if ctx.Node() == 0 {
			in := ctx.Deliver()
			for _, m := range in {
				ports = append(ports, m.Port)
			}
			return
		}
		ctx.Send(0, intMsg(int64(ctx.Node())))
		ctx.Deliver()
	}
	if _, err := Run(g, prog, Config{Seed: 1}); err != nil {
		t.Fatal(err)
	}
	if len(ports) != 4 {
		t.Fatalf("center heard %d messages, want 4", len(ports))
	}
	for i, p := range ports {
		if p != i {
			t.Errorf("inbox[%d].Port = %d, want %d", i, p, i)
		}
	}
}

func TestPortSymmetry(t *testing.T) {
	// A message sent on port p arrives tagged with the receiver's port
	// back to the sender.
	g := graph.Cycle(6)
	bad := newCollector()
	prog := func(ctx *Ctx) {
		// Everybody announces on every port; receivers echo next round.
		ctx.Broadcast(intMsg(int64(ctx.Node())))
		in := ctx.Deliver()
		for _, m := range in {
			nb := g.Neighbor(ctx.Node(), m.Port)
			if nb != int(m.Msg.(intMsg)) {
				bad.add(ctx.Node(), int64(nb))
			}
		}
	}
	if _, err := Run(g, prog, Config{Seed: 1}); err != nil {
		t.Fatal(err)
	}
	if len(bad.vals) != 0 {
		t.Errorf("port attribution wrong for nodes %v", bad.vals)
	}
}

func TestSendAfterDeliverPanics(t *testing.T) {
	g := graph.Path(2)
	prog := func(ctx *Ctx) {
		ctx.Deliver()
		ctx.Send(0, intMsg(1)) // misuse
	}
	if _, err := Run(g, prog, Config{Seed: 1}); err == nil {
		t.Fatal("expected misuse error")
	}
}

func TestInvalidPortPanics(t *testing.T) {
	g := graph.Path(2)
	prog := func(ctx *Ctx) {
		ctx.Send(5, intMsg(1))
	}
	if _, err := Run(g, prog, Config{Seed: 1}); err == nil {
		t.Fatal("expected invalid-port error")
	}
}

func TestNTooSmallRejected(t *testing.T) {
	g := graph.New(10)
	if _, err := Run(g, func(ctx *Ctx) {}, Config{N: 5}); err == nil {
		t.Fatal("expected error for N < n")
	}
}

func TestDefaultBandwidth(t *testing.T) {
	if b := DefaultBandwidth(1024); b != 16*11+16 {
		t.Errorf("DefaultBandwidth(1024) = %d", b)
	}
	if b := DefaultBandwidth(0); b != 16*2+16 {
		t.Errorf("DefaultBandwidth(0) = %d", b)
	}
}

func TestAvgAwake(t *testing.T) {
	m := &Metrics{AwakePerNode: []int64{1, 3}, TotalAwake: 4}
	if got := m.AvgAwake(); got != 2 {
		t.Errorf("AvgAwake = %v, want 2", got)
	}
	empty := &Metrics{}
	if got := empty.AvgAwake(); got != 0 {
		t.Errorf("empty AvgAwake = %v", got)
	}
}

func TestManyNodesFloodStress(t *testing.T) {
	g := graph.Grid(30, 30)
	prog := func(ctx *Ctx) {
		for i := 0; i < 5; i++ {
			ctx.Broadcast(intMsg(int64(i)))
			ctx.Deliver()
			ctx.Advance()
		}
	}
	m, err := Run(g, prog, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if m.Rounds != 6 {
		t.Errorf("Rounds = %d, want 6", m.Rounds)
	}
	wantMsgs := int64(5 * 2 * g.M()) // each edge both directions, 5 rounds
	if m.MessagesSent != wantMsgs {
		t.Errorf("MessagesSent = %d, want %d", m.MessagesSent, wantMsgs)
	}
}

func TestEmptyGraph(t *testing.T) {
	g := graph.New(0)
	m, err := Run(g, func(ctx *Ctx) {}, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if m.Rounds != 0 {
		t.Errorf("Rounds = %d, want 0", m.Rounds)
	}
}

func TestExtraScratch(t *testing.T) {
	g := graph.New(1)
	prog := func(ctx *Ctx) {
		ctx.SetExtra(42)
		if ctx.Extra().(int) != 42 {
			t.Error("Extra round-trip failed")
		}
	}
	if _, err := Run(g, prog, Config{Seed: 1}); err != nil {
		t.Fatal(err)
	}
}
