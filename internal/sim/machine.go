package sim

// Machine drives a continuation-passing node procedure as a native
// StepNode: no goroutine, no channels, just a registered receive
// continuation per awake round. It exists so that deeply sequential
// algorithms (the LDT tree procedures, Awake-MIS's phase loop) can be
// CPS-converted once and then run on the stepped engine's inline hot
// path instead of through the goroutine adapter.
//
// A procedure is ordinary Go code whose wake points are expressed as
// Yield calls: Yield(r, send, recv) declares that the node's next awake
// round is r, stages r's messages immediately via send (we are at the
// end of the node's previous awake round — the same information horizon
// the StepNode contract gives every native port), and registers recv to
// handle round r's inbox. When recv runs it either Yields again
// (directly or through any chain of nested calls) or returns without
// yielding, which halts the node.
//
// Two rules keep a CPS procedure faithful to its goroutine original:
//
//  1. Yield must be in tail position — no code may run after it in the
//     continuation, because the goroutine form would execute that code
//     only after the next wake. Machine panics on a second Yield
//     without an intervening wake, which catches most violations.
//  2. The inbox slice passed to recv is borrowed: consume it inside the
//     continuation, never retain it across a Yield.
//
// Embed a Machine in a StepNode and implement Start as
// m.Begin(out, program); Machine itself provides OnWake.
type Machine struct {
	out    *Outbox
	next   int64
	staged bool
	recv   func(in []Inbound)
}

// Yield schedules the node's next awake round r: send (if non-nil)
// stages round r's messages into the node's outbox now, and recv is
// invoked with round r's inbox when it arrives. Inside Begin, r must be
// 0 (every node is awake in the model's initial round); afterwards r
// must exceed the current round, which the engine enforces.
func (m *Machine) Yield(r int64, send func(out *Outbox), recv func(in []Inbound)) {
	if m.out == nil {
		panic("sim: Machine.Yield outside Begin/OnWake")
	}
	if m.staged {
		panic("sim: Machine.Yield twice without an intervening wake (non-tail Yield?)")
	}
	m.next = r
	m.staged = true
	m.recv = recv
	if send != nil {
		send(m.out)
	}
}

// Begin runs the procedure's prologue during StepNode.Start: program
// executes until its first Yield — which must schedule round 0 — or to
// completion for a node with nothing to do.
func (m *Machine) Begin(out *Outbox, program func()) {
	m.out = out
	m.staged = false
	program()
	m.out = nil
	if m.staged && m.next != 0 {
		panic("sim: Machine.Begin must Yield round 0 (all nodes are awake in round 0)")
	}
}

// OnWake implements StepNode: it hands the round's inbox to the
// registered continuation and reports the next wake the continuation
// staged, or done if it returned without yielding.
func (m *Machine) OnWake(round int64, inbox []Inbound, out *Outbox) (int64, bool) {
	recv := m.recv
	if recv == nil {
		return 0, true
	}
	m.out = out
	m.staged = false
	m.recv = nil
	recv(inbox)
	m.out = nil
	if !m.staged {
		return 0, true
	}
	return m.next, false
}
