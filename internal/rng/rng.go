// Package rng centralizes every seed derivation in the repository.
//
// Historically each caller invented its own derivation — XORing the run
// seed with a small constant (seed^0x1d5 for permutation IDs,
// seed^0x2e6 for 40-bit IDs, seed^0x3f7 for edge permutations). XOR
// with nearby constants produces correlated math/rand source states:
// two streams whose labels differ in a few bits start from seeds that
// differ in the same few bits. This package replaces all of them with
// splitmix64-based derivation, which decorrelates streams by design:
// every output bit of Mix depends on every input bit.
//
// The per-node simulation streams (Stream) keep the exact derivation
// the engines have always used, preserving cross-engine bit-identity
// of recorded runs. The labeled derivations (Derive) intentionally
// differ from the old XOR constants, so outputs that depended on them
// (ID permutations, edge orders) shift once — see the PR notes.
package rng

// golden is the splitmix64 increment, 2^64/φ rounded to odd.
const golden = 0x9e3779b97f4a7c15

// Mix is the splitmix64 output function (Steele–Lea–Flood 2014): a
// bijective avalanche mix of a 64-bit word. Every output bit depends on
// every input bit, which is what makes derived streams independent.
func Mix(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Stream derives node id's private RNG stream seed from a run seed —
// the exact derivation both simulation engines have used since the
// engine split, kept verbatim so recorded runs stay bit-identical.
func Stream(seed, id int64) int64 {
	return int64(Mix(uint64(seed) + golden*uint64(id+1)))
}

// Derive returns an independent 64-bit seed for the stream identified
// by (label, n) under the given root seed. Distinct labels — and
// distinct indices under one label — yield decorrelated streams; equal
// inputs always yield the same output, so derived streams are as
// replayable as the root seed itself.
func Derive(seed int64, label string, n int64) int64 {
	z := Mix(uint64(seed) + golden)
	for i := 0; i < len(label); i++ {
		z = Mix(z + golden*uint64(label[i]+1))
	}
	z = Mix(z + golden*uint64(n))
	return int64(z)
}

// idBits is the ID-space width of the paper's LDT-MIS: IDs are drawn
// from [1, 2^40] (Lemma 11 budgets O(log I) bits for I = 2^40).
const idBits = 40

// half is the width of one Feistel half.
const half = idBits / 2

// halfMask extracts one 20-bit half.
const halfMask = 1<<half - 1

// IDs40 assigns n distinct IDs from [1, 2^40]: ID v is the counter v
// encrypted with a seed-keyed 4-round Feistel permutation of the 40-bit
// space. Distinctness is structural — a permutation cannot collide — so
// unlike rejection sampling there is no hash table, no retry loop, and
// no allocation beyond the result slice. n must not exceed 2^40.
func IDs40(n int, seed int64) []int64 {
	if int64(n) > 1<<idBits {
		panic("rng: IDs40 space exhausted")
	}
	var keys [4]uint64
	for r := range keys {
		keys[r] = uint64(Derive(seed, "ids40", int64(r)))
	}
	ids := make([]int64, n)
	for v := range ids {
		ids[v] = int64(feistel40(uint64(v), &keys)) + 1
	}
	return ids
}

// feistel40 applies a balanced 4-round Feistel network to a 40-bit
// value. Whatever the round function, the construction is a bijection
// on {0,1}^40: each round is invertible given its key.
func feistel40(x uint64, keys *[4]uint64) uint64 {
	l, r := (x>>half)&halfMask, x&halfMask
	for _, k := range keys {
		l, r = r, l^(Mix(r+k)&halfMask)
	}
	return l<<half | r
}
