package rng

import "testing"

func TestStreamMatchesHistoricalDerivation(t *testing.T) {
	// The engines' per-node stream derivation is frozen: changing it
	// would silently re-randomize every recorded simulation. This spells
	// the original formula out independently of Stream.
	historical := func(seed, id int64) int64 {
		z := uint64(seed) + 0x9e3779b97f4a7c15*uint64(id+1)
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return int64(z ^ (z >> 31))
	}
	for _, seed := range []int64{0, 1, -7, 1 << 40} {
		for _, id := range []int64{0, 1, 2, 999999} {
			if got, want := Stream(seed, id), historical(seed, id); got != want {
				t.Fatalf("Stream(%d,%d) = %d, want %d", seed, id, got, want)
			}
		}
	}
}

func TestDeriveSeparatesLabelsAndIndices(t *testing.T) {
	seen := map[int64]string{}
	for _, seed := range []int64{0, 1, 42} {
		for _, label := range []string{"perm-ids", "big-ids", "edge-perm", "spec", ""} {
			for n := int64(0); n < 50; n++ {
				v := Derive(seed, label, n)
				key := string(rune(seed)) + label + string(rune(n))
				if prev, dup := seen[v]; dup {
					t.Fatalf("Derive collision: %q and %q both map to %d", prev, key, v)
				}
				seen[v] = key
				if v != Derive(seed, label, n) {
					t.Fatal("Derive not deterministic")
				}
			}
		}
	}
}

func TestIDs40DistinctAndInRange(t *testing.T) {
	for _, seed := range []int64{0, 1, -3, 123456789} {
		ids := IDs40(5000, seed)
		seen := make(map[int64]bool, len(ids))
		for _, id := range ids {
			if id < 1 || id > 1<<40 {
				t.Fatalf("id %d outside [1, 2^40]", id)
			}
			if seen[id] {
				t.Fatalf("duplicate id %d (seed %d)", id, seed)
			}
			seen[id] = true
		}
	}
}

func TestIDs40SeedSensitivity(t *testing.T) {
	a, b := IDs40(100, 1), IDs40(100, 2)
	same := 0
	for i := range a {
		if a[i] == b[i] {
			same++
		}
	}
	if same > 2 {
		t.Errorf("%d/100 ids identical across seeds; permutations look correlated", same)
	}
	c := IDs40(100, 1)
	for i := range a {
		if a[i] != c[i] {
			t.Fatal("IDs40 not deterministic")
		}
	}
}

func TestFeistel40IsPermutation(t *testing.T) {
	// Exhaustively check injectivity on a prefix of the domain (a
	// Feistel network is a bijection by construction; this guards the
	// masking arithmetic).
	var keys [4]uint64
	for r := range keys {
		keys[r] = uint64(Derive(9, "ids40", int64(r)))
	}
	seen := map[uint64]uint64{}
	for x := uint64(0); x < 1<<16; x++ {
		y := feistel40(x, &keys)
		if y >= 1<<40 {
			t.Fatalf("feistel40(%d) = %d exceeds 40 bits", x, y)
		}
		if prev, dup := seen[y]; dup {
			t.Fatalf("collision: feistel40(%d) == feistel40(%d)", prev, x)
		}
		seen[y] = x
	}
}
