// Package core implements Algorithm Awake-MIS (§6), the paper's main
// contribution: a randomized distributed MIS algorithm with
// O(log log n) worst-case awake complexity in SLEEPING-CONGEST
// (Theorem 13), plus the round-efficient variant built on the
// deterministic LDT construction (Corollary 14).
//
// Every node picks a batch (i, j) ∈ [1,ℓ] × [1,2Δ′] — level i with
// probability ∝ c·2^i·log n / n (so batch-level populations double) and
// j uniform. Batches are processed in 2ℓΔ′ phases: the first round of
// each phase is a communication round in which exactly the nodes whose
// virtual-binary-tree communication set contains the phase index wake
// and exchange states (so any node attends O(log log n) communication
// rounds yet, by Observation 5, always learns about MIS neighbors from
// earlier batches in time); the rest of the phase is an LDT-MIS window
// in which the still-undecided nodes of that batch — whose induced
// subgraph is shattered into O(log n)-size components by Lemmas 2
// and 3 — compute an LFMIS with respect to a fresh random ordering.
package core

import (
	"context"
	"fmt"
	"math"

	"awakemis/internal/graph"
	"awakemis/internal/ldtmis"
	"awakemis/internal/misproto"
	"awakemis/internal/sim"
	"awakemis/internal/vtree"
)

// Params configures Awake-MIS. The proof constants of §6 (batch
// probability 10·2^i log n/n, Δ′ = 9 ln(n⁴), component bound
// 6 ln(n⁴)) are asymptotic; the defaults here preserve every
// high-probability argument at laptop sizes while keeping the
// simulation tractable (see DESIGN.md §2, substitution 3).
type Params struct {
	// C1 scales the batch-level probabilities (paper: 10).
	C1 float64 `json:"c1,omitempty"`
	// DeltaPrime is Δ′, the residual-degree bound; batches per level
	// number 2Δ′. Zero means ⌈6·ln N⌉.
	DeltaPrime int `json:"delta_prime,omitempty"`
	// NP is the component-size bound handed to LDT-MIS phases.
	// Zero means ⌈12·ln N⌉.
	NP int `json:"np,omitempty"`
	// Variant selects the LDT construction inside phases:
	// ldtmis.VariantAwake gives Theorem 13, ldtmis.VariantRound gives
	// Corollary 14.
	Variant ldtmis.Variant `json:"variant,omitempty"`
	// IDSpace is the random-ID space (paper: poly(N)). Zero means N³.
	IDSpace int64 `json:"id_space,omitempty"`
}

// WithDefaults fills zero fields for a network bound N.
func (p Params) WithDefaults(n int) Params {
	if n < 2 {
		n = 2
	}
	ln := math.Log(float64(n))
	if p.C1 == 0 {
		p.C1 = 4
	}
	if p.DeltaPrime == 0 {
		p.DeltaPrime = int(math.Ceil(6 * ln))
	}
	if p.NP == 0 {
		p.NP = int(math.Ceil(12 * ln))
	}
	if p.IDSpace == 0 {
		nn := int64(n)
		p.IDSpace = nn * nn * nn
		if p.IDSpace < 1<<16 {
			p.IDSpace = 1 << 16
		}
	}
	return p
}

// Schedule is the deterministic phase timetable every node derives
// locally from (N, Params, bandwidth).
type Schedule struct {
	Levels      int   // ℓ
	BatchesPer  int   // 2Δ′
	TotalPhases int   // 2ℓΔ′
	PhaseSpan   int64 // 1 communication round + LDT-MIS window
	NP          int
	Variant     ldtmis.Variant
	cumProb     []float64 // cumProb[i-1] = P[level ≤ i]
}

// NewSchedule derives the timetable for a known bound n and bandwidth.
func NewSchedule(n int, params Params, bandwidth int) *Schedule {
	params = params.WithDefaults(n)
	ell := int(math.Ceil(math.Log2(float64(n)) - math.Log2(math.Log2(float64(max2(n, 4)))))) // ⌈log n − log log n⌉
	if ell < 1 {
		ell = 1
	}
	// Cumulative level probabilities F_i = min(1, C1·2^i·ln(n)/n);
	// levels past the cap would be empty, so the ladder truncates there.
	ln := math.Log(float64(n))
	cum := make([]float64, 0, ell)
	for i := 1; i <= ell; i++ {
		f := params.C1 * math.Pow(2, float64(i)) * ln / float64(n)
		if f >= 1 || i == ell {
			cum = append(cum, 1)
			break
		}
		cum = append(cum, f)
	}
	ell = len(cum)
	batches := 2 * params.DeltaPrime
	return &Schedule{
		Levels:      ell,
		BatchesPer:  batches,
		TotalPhases: ell * batches,
		PhaseSpan:   1 + ldtmis.Span(params.NP, bandwidth, params.Variant),
		NP:          params.NP,
		Variant:     params.Variant,
		cumProb:     cum,
	}
}

func max2(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// PhaseStart returns the first simulator round of phase p ∈ [1, total].
func (s *Schedule) PhaseStart(p int) int64 { return int64(p-1) * s.PhaseSpan }

// TotalRounds returns the timetable's horizon.
func (s *Schedule) TotalRounds() int64 { return int64(s.TotalPhases) * s.PhaseSpan }

// SampleBatch draws a batch (level, j) using the node's randomness
// source via the two uniform variates u1, u2 ∈ [0,1).
func (s *Schedule) SampleBatch(u1, u2 float64) (level, j int) {
	level = s.Levels
	for i, f := range s.cumProb {
		if u1 < f {
			level = i + 1
			break
		}
	}
	j = 1 + int(u2*float64(s.BatchesPer))
	if j > s.BatchesPer {
		j = s.BatchesPer
	}
	return level, j
}

// Phase maps a batch to its phase index under the lexicographic order g.
func (s *Schedule) Phase(level, j int) int { return (level-1)*s.BatchesPer + j }

// Result collects the algorithm's output.
type Result struct {
	InMIS []bool
	// Batch[v] is the phase index node v drew (diagnostics).
	Batch []int
}

// Program returns the per-node Awake-MIS program in goroutine form:
// the cross-form oracle (Run executes the step form natively).
func Program(res *Result, sched *Schedule, params Params, n int) sim.Program {
	params = params.WithDefaults(n)
	return func(ctx *sim.Ctx) {
		rng := ctx.Rand()
		id := rng.Int63n(params.IDSpace) + 1
		level, j := sched.SampleBatch(rng.Float64(), rng.Float64())
		myPhase := sched.Phase(level, j)
		res.Batch[ctx.Node()] = myPhase

		state := misproto.Undecided
		commRounds := vtree.AwakeRounds(myPhase, sched.TotalPhases)
		for _, r := range commRounds {
			if state == misproto.NotInMIS {
				break // nothing more to learn or announce
			}
			target := sched.PhaseStart(r)
			if target > ctx.Round() {
				ctx.SleepUntil(target)
			}
			// (target == Round() only at the model's initial all-awake
			// round 0, which is this node's first communication round.)
			ctx.Broadcast(misproto.StateMsg{State: state})
			in := ctx.Deliver()
			if state == misproto.Undecided {
				for _, m := range in {
					if sm, ok := m.Msg.(misproto.StateMsg); ok && sm.State == misproto.InMIS {
						state = misproto.NotInMIS
						break
					}
				}
			}
			if r == myPhase && state == misproto.Undecided {
				ldtmis.RunSub(ctx, sched.PhaseStart(r)+1, id, sched.NP, sched.Variant, &state)
			}
		}
		res.InMIS[ctx.Node()] = state == misproto.InMIS
	}
}

// Run executes Awake-MIS on g.
func Run(g *graph.Graph, params Params, cfg sim.Config) (*Result, *sim.Metrics, error) {
	return RunContext(context.Background(), g, params, cfg)
}

// RunContext is Run under a context; cancellation aborts the
// simulation at the next round boundary.
func RunContext(ctx context.Context, g *graph.Graph, params Params, cfg sim.Config) (*Result, *sim.Metrics, error) {
	n := cfg.N
	if n == 0 {
		n = g.N()
	}
	if n < 2 {
		n = 2
	}
	if cfg.Bandwidth == 0 {
		cfg.Bandwidth = sim.DefaultBandwidth(n)
	}
	params = params.WithDefaults(n)
	sched := NewSchedule(n, params, cfg.Bandwidth)
	res := &Result{InMIS: make([]bool, g.N()), Batch: make([]int, g.N())}
	m, err := sim.RunStepContext(ctx, g, StepProgram(res, sched, params, n), cfg)
	if err != nil {
		return nil, m, fmt.Errorf("core: %w", err)
	}
	return res, m, nil
}
