package core

import (
	"math"
	"math/rand"
	"testing"

	"awakemis/internal/graph"
	"awakemis/internal/ldtmis"
	"awakemis/internal/sim"
	"awakemis/internal/verify"
)

func testParams() Params {
	// Tighter-than-default constants keep test runtimes low while still
	// satisfying every high-probability bound at these sizes.
	return Params{C1: 4, DeltaPrime: 8, NP: 24}
}

func TestAwakeMISValidOnFamilies(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	graphs := map[string]*graph.Graph{
		"single":   graph.New(1),
		"pair":     graph.Path(2),
		"cycle":    graph.Cycle(48),
		"path":     graph.Path(33),
		"star":     graph.Star(40),
		"tree":     graph.RandomTree(64, rng),
		"gnp":      graph.GNP(96, 0.05, rng),
		"grid":     graph.Grid(8, 8),
		"isolated": graph.New(12),
		"disjoint": graph.DisjointUnion(graph.Cycle(9), graph.Complete(5), graph.New(3)),
	}
	for name, g := range graphs {
		t.Run(name, func(t *testing.T) {
			res, m, err := Run(g, testParams(), sim.Config{Seed: 11, Strict: true})
			if err != nil {
				t.Fatal(err)
			}
			if err := verify.CheckMIS(g, res.InMIS); err != nil {
				t.Fatal(err)
			}
			if m.MaxAwake < 1 {
				t.Error("nobody was awake")
			}
		})
	}
}

func TestAwakeMISRoundVariant(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := graph.GNP(60, 0.06, rng)
	p := testParams()
	p.Variant = ldtmis.VariantRound
	res, _, err := Run(g, p, sim.Config{Seed: 13, Strict: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := verify.CheckMIS(g, res.InMIS); err != nil {
		t.Fatal(err)
	}
}

func TestAwakeMISDenseGraph(t *testing.T) {
	// Dense graphs stress the batching: nearly everything is decided by
	// the first few phases' MIS neighborhoods.
	g := graph.Complete(30)
	res, _, err := Run(g, testParams(), sim.Config{Seed: 17, Strict: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := verify.CheckMIS(g, res.InMIS); err != nil {
		t.Fatal(err)
	}
	if verify.Size(res.InMIS) != 1 {
		t.Errorf("complete graph MIS size %d, want 1", verify.Size(res.InMIS))
	}
}

// TestTheorem13AwakeComplexity measures the headline claim: worst-case
// awake complexity stays within the O(log log n)-regime budget while n
// quadruples; in particular it must stay far below Θ(log n)·the naive
// constant and below any linear-in-n quantity.
func TestTheorem13AwakeComplexity(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep is slow")
	}
	var awakes []int64
	for _, n := range []int{64, 256} {
		rng := rand.New(rand.NewSource(int64(n)))
		g := graph.GNP(n, 4/float64(n), rng)
		_, m, err := Run(g, testParams(), sim.Config{Seed: int64(n), Strict: true})
		if err != nil {
			t.Fatal(err)
		}
		awakes = append(awakes, m.MaxAwake)
		// Constants dominate at these sizes; what matters is that the
		// count is bounded and essentially flat in n (growth check
		// below). Guard against anything in the Θ(n) or Θ(√n·poly)
		// regimes sneaking in.
		if m.MaxAwake > 2000 {
			t.Errorf("n=%d: MaxAwake %d implausibly large", n, m.MaxAwake)
		}
	}
	// Quadrupling n must grow awake complexity by far less than the 2x
	// a Θ(log n) algorithm would show: allow at most ~35%.
	if g := float64(awakes[1]) / float64(awakes[0]); g > 1.35 {
		t.Errorf("awake growth %0.2fx from n=64 to n=256 is not log log-like (%v)", g, awakes)
	}
}

func TestScheduleBasics(t *testing.T) {
	p := testParams().WithDefaults(1024)
	s := NewSchedule(1024, p, sim.DefaultBandwidth(1024))
	if s.Levels < 1 || s.TotalPhases != s.Levels*s.BatchesPer {
		t.Fatalf("schedule inconsistent: %+v", s)
	}
	if s.PhaseStart(1) != 0 {
		t.Errorf("PhaseStart(1) = %d", s.PhaseStart(1))
	}
	if s.PhaseStart(2)-s.PhaseStart(1) != s.PhaseSpan {
		t.Error("phase spacing wrong")
	}
	if s.TotalRounds() != int64(s.TotalPhases)*s.PhaseSpan {
		t.Error("TotalRounds wrong")
	}
}

func TestSampleBatchDistribution(t *testing.T) {
	p := testParams().WithDefaults(4096)
	s := NewSchedule(4096, p, sim.DefaultBandwidth(4096))
	rng := rand.New(rand.NewSource(3))
	counts := make([]int, s.Levels+1)
	trials := 200000
	for i := 0; i < trials; i++ {
		level, j := s.SampleBatch(rng.Float64(), rng.Float64())
		if level < 1 || level > s.Levels || j < 1 || j > s.BatchesPer {
			t.Fatalf("sample out of range: (%d,%d)", level, j)
		}
		counts[level]++
	}
	// Level populations must grow geometrically: each level about twice
	// the previous (until the final capped level), per the §6 batching
	// argument.
	for i := 2; i+1 < s.Levels; i++ {
		if counts[i] < 1000 || counts[i+1] < 1000 {
			continue
		}
		ratio := float64(counts[i+1]) / float64(counts[i])
		if ratio < 1.5 || ratio > 2.5 {
			t.Errorf("level %d -> %d ratio %.2f, want ~2 (counts %v)", i, i+1, ratio, counts)
		}
	}
	// The phase map g must be a lexicographic bijection.
	seen := map[int]bool{}
	for l := 1; l <= s.Levels; l++ {
		for j := 1; j <= s.BatchesPer; j++ {
			ph := s.Phase(l, j)
			if ph < 1 || ph > s.TotalPhases || seen[ph] {
				t.Fatalf("Phase(%d,%d) = %d invalid", l, j, ph)
			}
			seen[ph] = true
		}
	}
}

func TestWithDefaults(t *testing.T) {
	p := Params{}.WithDefaults(1024)
	if p.C1 == 0 || p.DeltaPrime == 0 || p.NP == 0 || p.IDSpace == 0 {
		t.Fatalf("defaults not filled: %+v", p)
	}
	want := int(math.Ceil(6 * math.Log(1024)))
	if p.DeltaPrime != want {
		t.Errorf("DeltaPrime = %d, want %d", p.DeltaPrime, want)
	}
	// Explicit values survive.
	q := Params{C1: 2, DeltaPrime: 5, NP: 9, IDSpace: 100}.WithDefaults(1024)
	if q.C1 != 2 || q.DeltaPrime != 5 || q.NP != 9 || q.IDSpace != 100 {
		t.Errorf("explicit params overwritten: %+v", q)
	}
}

func TestAwakeMISDeterministicReplay(t *testing.T) {
	g := graph.Cycle(32)
	run := func() *Result {
		res, _, err := Run(g, testParams(), sim.Config{Seed: 23})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	for v := range a.InMIS {
		if a.InMIS[v] != b.InMIS[v] || a.Batch[v] != b.Batch[v] {
			t.Fatalf("replay diverged at node %d", v)
		}
	}
}

func TestAwakeMISRespectsCongest(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := graph.GNP(50, 0.1, rng)
	_, m, err := Run(g, testParams(), sim.Config{Seed: 29, Strict: true})
	if err != nil {
		t.Fatal(err)
	}
	if m.MaxMessageBits > sim.DefaultBandwidth(50) {
		t.Errorf("max message %d bits exceeds bandwidth %d",
			m.MaxMessageBits, sim.DefaultBandwidth(50))
	}
}
