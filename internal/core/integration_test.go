package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"awakemis/internal/graph"
	"awakemis/internal/ldtmis"
	"awakemis/internal/sim"
	"awakemis/internal/verify"
)

func TestAwakeMISOnStructuredFamilies(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"hypercube": graph.Hypercube(6),
		"torus":     graph.Torus(7, 9),
		"barbell":   graph.Barbell(10, 12),
		"lollipop":  graph.Lollipop(12, 24),
		"bipartite": graph.CompleteBipartite(10, 14),
		"powerlaw":  graph.PreferentialAttachment(90, 3, rand.New(rand.NewSource(1))),
	}
	for name, g := range graphs {
		t.Run(name, func(t *testing.T) {
			res, _, err := Run(g, testParams(), sim.Config{Seed: 31, Strict: true})
			if err != nil {
				t.Fatal(err)
			}
			if err := verify.CheckMIS(g, res.InMIS); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestAwakeMISRoundVariantOnFamilies(t *testing.T) {
	p := testParams()
	p.Variant = ldtmis.VariantRound
	for name, g := range map[string]*graph.Graph{
		"cycle":   graph.Cycle(40),
		"star":    graph.Star(25),
		"torus":   graph.Torus(5, 6),
		"lonely":  graph.New(6),
		"barbell": graph.Barbell(6, 4),
	} {
		t.Run(name, func(t *testing.T) {
			res, _, err := Run(g, p, sim.Config{Seed: 37, Strict: true})
			if err != nil {
				t.Fatal(err)
			}
			if err := verify.CheckMIS(g, res.InMIS); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestAwakeMISWithPolynomialBound exercises the paper's actual
// knowledge model: nodes know only a polynomial upper bound N on n.
func TestAwakeMISWithPolynomialBound(t *testing.T) {
	g := graph.Cycle(50)
	// Nodes believe the network may have up to n^2 = 2500 nodes.
	res, m, err := Run(g, testParams(), sim.Config{Seed: 41, N: 2500, Strict: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := verify.CheckMIS(g, res.InMIS); err != nil {
		t.Fatal(err)
	}
	// Loose bound costs more phases but awake stays in the same regime.
	if m.MaxAwake > 2500 {
		t.Errorf("MaxAwake %d blew up under loose N", m.MaxAwake)
	}
}

// TestBatchPhaseAssignmentsRecorded checks the diagnostics output: each
// node's recorded batch is a valid phase index.
func TestBatchPhaseAssignmentsRecorded(t *testing.T) {
	g := graph.Cycle(30)
	params := testParams()
	res, _, err := Run(g, params, sim.Config{Seed: 43})
	if err != nil {
		t.Fatal(err)
	}
	sched := NewSchedule(30, params, sim.DefaultBandwidth(30))
	for v, ph := range res.Batch {
		if ph < 1 || ph > sched.TotalPhases {
			t.Errorf("node %d batch phase %d outside [1,%d]", v, ph, sched.TotalPhases)
		}
	}
}

// TestQuickAwakeMISRandomGraphs property-tests validity across random
// (seed, size, density) combinations for both variants.
func TestQuickAwakeMISRandomGraphs(t *testing.T) {
	f := func(seed int64, nn uint8, dens uint8, roundVariant bool) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nn%50) + 2
		p := float64(dens%30)/100 + 0.02
		g := graph.GNP(n, p, rng)
		params := testParams()
		if roundVariant {
			params.Variant = ldtmis.VariantRound
		}
		res, _, err := Run(g, params, sim.Config{Seed: seed})
		if err != nil {
			return false
		}
		return verify.CheckMIS(g, res.InMIS) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestScheduleTruncatesEmptyLevels verifies the cap logic: with large
// C1 the cumulative probability hits 1 early and empty top levels are
// dropped from the timetable.
func TestScheduleTruncatesEmptyLevels(t *testing.T) {
	small := NewSchedule(1024, Params{C1: 1000, DeltaPrime: 8, NP: 24}, 176)
	big := NewSchedule(1024, Params{C1: 0.5, DeltaPrime: 8, NP: 24}, 176)
	if small.Levels >= big.Levels {
		t.Errorf("large C1 should truncate levels: %d vs %d", small.Levels, big.Levels)
	}
	if small.cumProb[small.Levels-1] != 1 {
		t.Error("last level must absorb all remaining probability")
	}
}
