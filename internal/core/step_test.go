package core_test

import (
	"context"
	"math/rand"
	"reflect"
	"testing"

	"awakemis/internal/core"
	"awakemis/internal/graph"
	"awakemis/internal/ldtmis"
	"awakemis/internal/sim"
)

// TestStepFormMatchesGoroutineForm is the port-faithfulness check for
// Awake-MIS: the native step machine and the goroutine original must be
// bit-identical in outputs AND metrics on both engines, for both LDT
// variants, at several worker counts.
func TestStepFormMatchesGoroutineForm(t *testing.T) {
	g := graph.GNP(60, 0.06, rand.New(rand.NewSource(3)))
	engines := map[string]sim.Engine{
		"lockstep":  sim.NewLockstepEngine(),
		"stepped-1": sim.NewSteppedEngine(1),
		"stepped-4": sim.NewSteppedEngine(4),
	}
	for _, variant := range []ldtmis.Variant{ldtmis.VariantAwake, ldtmis.VariantRound} {
		t.Run(variant.String(), func(t *testing.T) {
			n := g.N()
			params := core.Params{Variant: variant}.WithDefaults(n)
			cfg := sim.Config{Seed: 11, Strict: true, Bandwidth: sim.DefaultBandwidth(n)}
			sched := core.NewSchedule(n, params, cfg.Bandwidth)

			var refRes *core.Result
			var refM *sim.Metrics
			check := func(form, ename string, res *core.Result, m *sim.Metrics) {
				t.Helper()
				if refRes == nil {
					refRes, refM = res, m
					return
				}
				if !reflect.DeepEqual(refRes, res) {
					t.Fatalf("%s/%s: output diverges from reference", form, ename)
				}
				if !reflect.DeepEqual(refM, m) {
					t.Fatalf("%s/%s: metrics diverge:\n%+v\nvs\n%+v", form, ename, refM, m)
				}
			}
			for ename, eng := range engines {
				res := &core.Result{InMIS: make([]bool, n), Batch: make([]int, n)}
				m, err := eng.Run(context.Background(), g, core.Program(res, sched, params, n), cfg)
				if err != nil {
					t.Fatalf("goroutine/%s: %v", ename, err)
				}
				check("goroutine", ename, res, m)
			}
			for ename, eng := range engines {
				res := &core.Result{InMIS: make([]bool, n), Batch: make([]int, n)}
				m, err := eng.Run(context.Background(), g, core.StepProgram(res, sched, params, n), cfg)
				if err != nil {
					t.Fatalf("step/%s: %v", ename, err)
				}
				check("step", ename, res, m)
			}
		})
	}
}
