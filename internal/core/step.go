package core

// Step form of Awake-MIS: the phase loop of Program as an explicit
// state machine. Each node attends its O(log log n) communication
// rounds (staged one wake at a time through a sim.Machine) and, in its
// own phase, runs the step-form LDT-MIS window in place — so the
// paper's headline algorithm executes on the stepped engine's inline
// hot path with no per-node goroutine. Bit-identical with the
// goroutine form; the cross-form tests assert it.

import (
	"awakemis/internal/ldtmis"
	"awakemis/internal/misproto"
	"awakemis/internal/sim"
	"awakemis/internal/vtree"
)

type stepNode struct {
	sim.Machine
	env     *sim.NodeEnv
	res     *Result
	sched   *Schedule
	idSpace int64
	id      int64
	state   misproto.State
	// rounds is the node's communication set (phases it attends).
	rounds  []int
	myPhase int
}

// StepProgram returns the per-node Awake-MIS program in step form.
func StepProgram(res *Result, sched *Schedule, params Params, n int) sim.StepProgram {
	params = params.WithDefaults(n)
	return func(env *sim.NodeEnv) sim.StepNode {
		return &stepNode{env: env, res: res, sched: sched, idSpace: params.IDSpace}
	}
}

func (c *stepNode) Start(out *sim.Outbox) {
	rng := c.env.Rand
	c.id = rng.Int63n(c.idSpace) + 1
	level, j := c.sched.SampleBatch(rng.Float64(), rng.Float64())
	c.myPhase = c.sched.Phase(level, j)
	c.res.Batch[c.env.ID] = c.myPhase
	c.rounds = vtree.AwakeRounds(c.myPhase, c.sched.TotalPhases)

	c.Begin(out, func() {
		if c.sched.PhaseStart(c.rounds[0]) == 0 {
			// Phase 1 is this node's first communication round and starts
			// at round 0, the model's initial all-awake round.
			c.attend(0)
			return
		}
		c.Yield(0, nil, func([]sim.Inbound) { c.attend(0) })
	})
}

// attend stages communication round i of the node's schedule, or
// finishes the node when the schedule is exhausted or the node has
// learned it is not in the MIS (nothing more to learn or announce).
func (c *stepNode) attend(i int) {
	if i >= len(c.rounds) || c.state == misproto.NotInMIS {
		c.res.InMIS[c.env.ID] = c.state == misproto.InMIS
		return // no yield: the node halts
	}
	r := c.rounds[i]
	c.Yield(c.sched.PhaseStart(r), func(out *sim.Outbox) {
		out.Broadcast(misproto.StateMsg{State: c.state})
	}, func(in []sim.Inbound) {
		if c.state == misproto.Undecided {
			for _, m := range in {
				if sm, ok := m.Msg.(misproto.StateMsg); ok && sm.State == misproto.InMIS {
					c.state = misproto.NotInMIS
					break
				}
			}
		}
		if r == c.myPhase && c.state == misproto.Undecided {
			ldtmis.RunSubStep(&c.Machine, c.env.Rand, c.env.Bandwidth,
				c.sched.PhaseStart(r)+1, c.id, c.sched.NP, c.sched.Variant, &c.state,
				func(int) { c.attend(i + 1) })
			return
		}
		c.attend(i + 1)
	})
}
