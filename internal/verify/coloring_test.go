package verify

import (
	"testing"

	"awakemis/internal/graph"
)

func TestCheckColoringAcceptsValid(t *testing.T) {
	g := graph.Cycle(6)
	if err := CheckColoring(g, []int{0, 1, 0, 1, 0, 1}); err != nil {
		t.Errorf("valid 2-coloring rejected: %v", err)
	}
}

func TestCheckColoringRejections(t *testing.T) {
	g := graph.Path(3)
	tests := []struct {
		name  string
		color []int
	}{
		{"wrong length", []int{0, 1}},
		{"uncolored", []int{0, -1, 0}},
		{"over degree", []int{0, 3, 0}},
		{"monochromatic edge", []int{0, 0, 1}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := CheckColoring(g, tt.color); err == nil {
				t.Errorf("%v accepted", tt.color)
			}
		})
	}
}

func TestNumColors(t *testing.T) {
	if got := NumColors([]int{0, 2, 0, 2, 5}); got != 3 {
		t.Errorf("NumColors = %d, want 3", got)
	}
	if got := NumColors(nil); got != 0 {
		t.Errorf("empty NumColors = %d", got)
	}
}

func TestCheckLFMISRejectsInvalidMIS(t *testing.T) {
	// CheckLFMIS must first reject non-MIS inputs.
	g := graph.Path(3)
	if err := CheckLFMIS(g, []bool{true, true, false}, []int{0, 1, 2}); err == nil {
		t.Error("dependent set accepted by CheckLFMIS")
	}
}
