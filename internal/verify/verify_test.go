package verify

import (
	"math/rand"
	"testing"
	"testing/quick"

	"awakemis/internal/graph"
)

func TestCheckMISAcceptsValid(t *testing.T) {
	g := graph.Cycle(6)
	in := []bool{true, false, true, false, true, false}
	if err := CheckMIS(g, in); err != nil {
		t.Errorf("valid MIS rejected: %v", err)
	}
}

func TestCheckMISRejectsDependent(t *testing.T) {
	g := graph.Path(3)
	in := []bool{true, true, false}
	if err := CheckMIS(g, in); err == nil {
		t.Error("dependent set accepted")
	}
	if IsIndependent(g, in) {
		t.Error("IsIndependent true for dependent set")
	}
}

func TestCheckMISRejectsNonMaximal(t *testing.T) {
	g := graph.Path(5)
	in := []bool{true, false, false, false, true}
	if err := CheckMIS(g, in); err == nil {
		t.Error("non-maximal set accepted")
	}
	if IsMaximal(g, in) {
		t.Error("IsMaximal true for non-maximal set")
	}
}

func TestCheckMISRejectsWrongLength(t *testing.T) {
	g := graph.Path(3)
	if err := CheckMIS(g, []bool{true}); err == nil {
		t.Error("wrong-length selection accepted")
	}
}

func TestLFMISKnownOrder(t *testing.T) {
	// Path 0-1-2-3, order 1,3,0,2: 1 joins, 3 joins, 0 blocked? no —
	// 0 is adjacent to 1 which is in, so blocked; 2 adjacent to both.
	g := graph.Path(4)
	in := LFMIS(g, []int{1, 3, 0, 2})
	want := []bool{false, true, false, true}
	for v := range want {
		if in[v] != want[v] {
			t.Errorf("LFMIS[%d] = %v, want %v", v, in[v], want[v])
		}
	}
	if err := CheckLFMIS(g, in, []int{1, 3, 0, 2}); err != nil {
		t.Errorf("CheckLFMIS rejected its own construction: %v", err)
	}
}

func TestCheckLFMISRejectsOtherMIS(t *testing.T) {
	// {0,2} and {1,3} are both MIS of C4; only one is LF for the order.
	g := graph.Cycle(4)
	order := []int{0, 1, 2, 3}
	other := []bool{false, true, false, true}
	if err := CheckLFMIS(g, other, order); err == nil {
		t.Error("non-LF MIS accepted")
	}
}

func TestLFMISAlwaysValid(t *testing.T) {
	f := func(seed int64, nn uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nn%50) + 1
		g := graph.GNP(n, 0.3, rng)
		order := rng.Perm(n)
		in := LFMIS(g, order)
		return CheckMIS(g, in) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSize(t *testing.T) {
	if got := Size([]bool{true, false, true}); got != 2 {
		t.Errorf("Size = %d, want 2", got)
	}
}
