// Package verify provides correctness oracles for MIS outputs: set
// independence, maximality, and the lexicographically-first-MIS (LFMIS)
// property with respect to a given node ordering (§4.3). Every
// algorithm's tests cross-check against these oracles.
package verify

import (
	"fmt"

	"awakemis/internal/graph"
)

// IsIndependent reports whether no two selected vertices are adjacent.
func IsIndependent(g *graph.Graph, in []bool) bool {
	return firstDependentEdge(g, in) == [2]int{-1, -1}
}

func firstDependentEdge(g *graph.Graph, in []bool) [2]int {
	for u := 0; u < g.N(); u++ {
		if !in[u] {
			continue
		}
		for _, w := range g.Neighbors(u) {
			if in[w] {
				return [2]int{u, int(w)}
			}
		}
	}
	return [2]int{-1, -1}
}

// IsMaximal reports whether every unselected vertex has a selected
// neighbor.
func IsMaximal(g *graph.Graph, in []bool) bool {
	return firstUncovered(g, in) == -1
}

func firstUncovered(g *graph.Graph, in []bool) int {
	for u := 0; u < g.N(); u++ {
		if in[u] {
			continue
		}
		covered := false
		for _, w := range g.Neighbors(u) {
			if in[w] {
				covered = true
				break
			}
		}
		if !covered {
			return u
		}
	}
	return -1
}

// CheckMIS returns a descriptive error if the selection is not a
// maximal independent set of g.
func CheckMIS(g *graph.Graph, in []bool) error {
	if len(in) != g.N() {
		return fmt.Errorf("verify: selection length %d != n %d", len(in), g.N())
	}
	if e := firstDependentEdge(g, in); e[0] >= 0 {
		return fmt.Errorf("verify: not independent: edge (%d,%d) both selected", e[0], e[1])
	}
	if v := firstUncovered(g, in); v >= 0 {
		return fmt.Errorf("verify: not maximal: vertex %d uncovered", v)
	}
	return nil
}

// LFMIS computes the lexicographically first MIS of g with respect to
// the ordering order (order[0] processed first). It is the reference
// implementation of sequential greedy MIS (§4.3).
func LFMIS(g *graph.Graph, order []int) []bool {
	in := make([]bool, g.N())
	blocked := make([]bool, g.N())
	for _, v := range order {
		if blocked[v] {
			continue
		}
		in[v] = true
		for _, w := range g.Neighbors(v) {
			blocked[w] = true
		}
	}
	return in
}

// CheckLFMIS returns an error unless the selection equals the LFMIS of
// g with respect to order.
func CheckLFMIS(g *graph.Graph, in []bool, order []int) error {
	if err := CheckMIS(g, in); err != nil {
		return err
	}
	want := LFMIS(g, order)
	for v := range want {
		if want[v] != in[v] {
			return fmt.Errorf("verify: not LFMIS w.r.t. order: vertex %d is %v, want %v",
				v, in[v], want[v])
		}
	}
	return nil
}

// Size returns the number of selected vertices.
func Size(in []bool) int {
	c := 0
	for _, b := range in {
		if b {
			c++
		}
	}
	return c
}

// CheckColoring returns an error unless color is a proper vertex
// coloring of g in which every node's color is at most its degree
// (the greedy guarantee, implying ≤ Δ+1 colors overall).
func CheckColoring(g *graph.Graph, color []int) error {
	if len(color) != g.N() {
		return fmt.Errorf("verify: coloring length %d != n %d", len(color), g.N())
	}
	for u := 0; u < g.N(); u++ {
		if color[u] < 0 {
			return fmt.Errorf("verify: vertex %d uncolored", u)
		}
		if color[u] > g.Degree(u) {
			return fmt.Errorf("verify: vertex %d color %d exceeds degree %d",
				u, color[u], g.Degree(u))
		}
		for _, w := range g.Neighbors(u) {
			if color[u] == color[int(w)] {
				return fmt.Errorf("verify: edge (%d,%d) monochromatic with color %d",
					u, w, color[u])
			}
		}
	}
	return nil
}

// NumColors returns the number of distinct colors used.
func NumColors(color []int) int {
	seen := map[int]bool{}
	for _, c := range color {
		seen[c] = true
	}
	return len(seen)
}

// CheckMatching returns an error unless matchedWith (partner index or
// -1) encodes a maximal matching of g: symmetric, along edges, and
// with no edge joining two unmatched vertices.
func CheckMatching(g *graph.Graph, matchedWith []int) error {
	if len(matchedWith) != g.N() {
		return fmt.Errorf("verify: matching length %d != n %d", len(matchedWith), g.N())
	}
	for u, w := range matchedWith {
		if w < 0 {
			continue
		}
		if w >= g.N() {
			return fmt.Errorf("verify: vertex %d matched with out-of-range %d", u, w)
		}
		if matchedWith[w] != u {
			return fmt.Errorf("verify: matching not symmetric at (%d,%d)", u, w)
		}
		if !g.HasEdge(u, w) {
			return fmt.Errorf("verify: matched pair (%d,%d) is not an edge", u, w)
		}
	}
	for _, e := range g.Edges() {
		if matchedWith[e[0]] < 0 && matchedWith[e[1]] < 0 {
			return fmt.Errorf("verify: matching not maximal: edge (%d,%d) free", e[0], e[1])
		}
	}
	return nil
}

// MatchingSize returns the number of matched pairs.
func MatchingSize(matchedWith []int) int {
	c := 0
	for _, w := range matchedWith {
		if w >= 0 {
			c++
		}
	}
	return c / 2
}
