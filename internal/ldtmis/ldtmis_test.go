package ldtmis

import (
	"math/rand"
	"sort"
	"testing"

	"awakemis/internal/graph"
	"awakemis/internal/sim"
	"awakemis/internal/verify"
	"awakemis/internal/vtree"
)

// bigIDs draws unique IDs from a huge space (I ≫ n), the regime
// LDT-MIS is designed for.
func bigIDs(n int, rng *rand.Rand) []int64 {
	seen := map[int64]bool{}
	ids := make([]int64, n)
	for v := range ids {
		for {
			id := rng.Int63n(1<<40) + 1
			if !seen[id] {
				seen[id] = true
				ids[v] = id
				break
			}
		}
	}
	return ids
}

func maxComp(g *graph.Graph) int {
	max := 1
	for _, c := range g.Components() {
		if len(c) > max {
			max = len(c)
		}
	}
	return max
}

// checkLFMISPerComponent verifies that within each component the output
// is the LFMIS with respect to ascending NewID.
func checkLFMISPerComponent(t *testing.T, g *graph.Graph, res *Result) {
	t.Helper()
	if err := verify.CheckMIS(g, res.InMIS); err != nil {
		t.Fatal(err)
	}
	for ci, comp := range g.Components() {
		order := append([]int(nil), comp...)
		sort.Slice(order, func(i, j int) bool {
			return res.NewID[order[i]] < res.NewID[order[j]]
		})
		// NewIDs must be exactly 1..|comp| within the component.
		for i, v := range order {
			if res.NewID[v] != i+1 {
				t.Fatalf("component %d: new IDs not a permutation: node %d has %d, want %d",
					ci, v, res.NewID[v], i+1)
			}
		}
		sub, mapping := g.Induced(comp)
		backMap := map[int]int{}
		for newIdx, orig := range mapping {
			backMap[orig] = newIdx
		}
		subOrder := make([]int, len(order))
		for i, v := range order {
			subOrder[i] = backMap[v]
		}
		subIn := make([]bool, sub.N())
		for newIdx, orig := range mapping {
			subIn[newIdx] = res.InMIS[orig]
		}
		if err := verify.CheckLFMIS(sub, subIn, subOrder); err != nil {
			t.Fatalf("component %d: %v", ci, err)
		}
	}
}

func testGraphs(seed int64) map[string]*graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	return map[string]*graph.Graph{
		"single":   graph.New(1),
		"pair":     graph.Path(2),
		"path":     graph.Path(11),
		"cycle":    graph.Cycle(14),
		"star":     graph.Star(9),
		"complete": graph.Complete(6),
		"tree":     graph.RandomTree(18, rng),
		"disjoint": graph.DisjointUnion(graph.Cycle(6), graph.Path(4), graph.New(3)),
	}
}

func TestLDTMISAwakeVariant(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for name, g := range testGraphs(1) {
		t.Run(name, func(t *testing.T) {
			res, _, err := Run(g, bigIDs(g.N(), rng), maxComp(g), VariantAwake,
				sim.Config{Seed: 3, N: 1 << 16, Strict: true})
			if err != nil {
				t.Fatal(err)
			}
			checkLFMISPerComponent(t, g, res)
		})
	}
}

func TestLDTMISRoundVariant(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for name, g := range testGraphs(2) {
		t.Run(name, func(t *testing.T) {
			res, _, err := Run(g, bigIDs(g.N(), rng), maxComp(g), VariantRound,
				sim.Config{Seed: 4, N: 1 << 16, Strict: true})
			if err != nil {
				t.Fatal(err)
			}
			checkLFMISPerComponent(t, g, res)
		})
	}
}

// TestLemma11AwakeComplexity: awake is O(log n′ + (n′ log n′)/log I),
// crucially independent of the ID-space size — compare with VT-MIS
// whose awake is Θ(log I).
func TestLemma11AwakeComplexity(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := graph.Cycle(24)
	np := 24
	_, m, err := Run(g, bigIDs(g.N(), rng), np, VariantAwake,
		sim.Config{Seed: 5, N: 1 << 16, Strict: true})
	if err != nil {
		t.Fatal(err)
	}
	// Budget: construction dominates with ~10 awake rounds per phase;
	// ranking, chunks, and VT-MIS add lower-order terms.
	_, _, chunks := permChunks(np, sim.DefaultBandwidth(1<<16))
	budget := int64(12*constructPhases(VariantAwake, np)+4*chunks) +
		int64(4*vtree.Depth(np)) + 16
	if m.MaxAwake > budget {
		t.Errorf("MaxAwake %d > budget %d", m.MaxAwake, budget)
	}
	// The point of the lemma: awake ≪ log(I) is false for VT-MIS with
	// I = 2^40 but true here; 40 bits of ID space never enter the bound.
	if m.MaxAwake > 1000 {
		t.Errorf("MaxAwake %d absurdly large", m.MaxAwake)
	}
}

func TestSpanMatchesExecution(t *testing.T) {
	// Span must exactly bound the rounds RunSub consumes: the last
	// possible wake is base+Span-1, so total rounds ≤ 1 + Span.
	for _, v := range []Variant{VariantAwake, VariantRound} {
		g := graph.Path(7)
		np := 7
		rng := rand.New(rand.NewSource(6))
		_, m, err := Run(g, bigIDs(7, rng), np, v, sim.Config{Seed: 7, N: 1 << 16})
		if err != nil {
			t.Fatal(err)
		}
		span := Span(np, sim.DefaultBandwidth(1<<16), v)
		if m.Rounds > span+1 {
			t.Errorf("variant %v: rounds %d exceed span %d + 1", v, m.Rounds, span)
		}
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	g := graph.Path(3)
	if _, _, err := Run(g, []int64{1, 2}, 3, VariantAwake, sim.Config{}); err == nil {
		t.Error("wrong id count accepted")
	}
	if _, _, err := Run(g, []int64{1, 2, 2}, 3, VariantAwake, sim.Config{}); err == nil {
		t.Error("duplicate ids accepted")
	}
}

func TestVariantString(t *testing.T) {
	if VariantAwake.String() != "awake" || VariantRound.String() != "round" {
		t.Error("variant names wrong")
	}
}

func TestDeterministicReplay(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	g := graph.Cycle(10)
	ids := bigIDs(10, rng)
	run := func() *Result {
		res, _, err := Run(g, ids, 10, VariantAwake, sim.Config{Seed: 9, N: 1 << 16})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	for v := range a.InMIS {
		if a.InMIS[v] != b.InMIS[v] || a.NewID[v] != b.NewID[v] {
			t.Fatalf("replay diverged at %d", v)
		}
	}
}
