// Package ldtmis implements Algorithm LDT-MIS (§5.3, Lemma 11) and its
// round-efficient sibling LDT-MIS-ROUND (Corollary 12): compute an
// LFMIS with respect to a uniformly random node ordering, in O(log n′)
// awake rounds even when node IDs come from a huge space I ≫ n′.
//
// The pipeline on each connected participant component of at most np
// nodes: (1) build a labeled distance tree; (2) rank the nodes and
// learn the exact component size; (3) the root draws a uniformly
// random permutation and ships it down in O((n′ log n′)/log I) chunked
// broadcasts; (4) each node adopts the permutation entry at its rank as
// a fresh small ID and runs VT-MIS with those IDs.
//
// The node program exists in two bit-identical forms: the goroutine
// form (RunSub / Program, the reference semantics) and the native
// step-machine form (RunSubStep / StepProgram, built on internal/ldt's
// resumable SProc ops), which the stepped engine executes inline with
// no per-node goroutine. Run uses the step form; the goroutine form is
// kept as the cross-form oracle the equivalence tests check against.
package ldtmis

import (
	"context"
	"fmt"
	"math/rand"

	"awakemis/internal/bitio"
	"awakemis/internal/graph"
	"awakemis/internal/ldt"
	"awakemis/internal/misproto"
	"awakemis/internal/sim"
	"awakemis/internal/vtmis"
)

// Variant selects the LDT construction.
type Variant int

const (
	// VariantAwake uses the randomized O(log n′)-awake construction
	// (Theorem 13 pipeline).
	VariantAwake Variant = iota
	// VariantRound uses the deterministic Appendix A construction
	// (Corollary 14 pipeline).
	VariantRound
)

// String implements fmt.Stringer.
func (v Variant) String() string {
	if v == VariantRound {
		return "round"
	}
	return "awake"
}

// constructPhases returns the phase budget for the variant.
func constructPhases(v Variant, np int) int {
	if v == VariantRound {
		return ldt.DefaultRoundPhases(np)
	}
	return ldt.DefaultAwakePhases(np)
}

// permWidth is the fixed bit width of one permutation entry.
func permWidth(np int) int { return bitio.UintBits(uint64(np)) }

// buildPermPayload is the root's side of the permutation shipment: a
// uniformly random permutation of [1, total], each entry in width
// bits, null-filled to payloadBits per §5.3. Pure (no wake points) and
// shared verbatim by the goroutine and step forms — the bit-identity
// contract depends on both forms encoding identically.
func buildPermPayload(rnd *rand.Rand, total, width, payloadBits int) []byte {
	perm := rnd.Perm(total)
	var w bitio.Writer
	for _, v := range perm {
		w.WriteUint(uint64(v+1), width)
	}
	for w.Len() < payloadBits {
		w.WriteUint(0, 1) // null filler per §5.3
	}
	return w.Bytes()
}

// decodeNewID extracts the rank-th width-bit permutation entry from
// the reassembled payload: the node's new small ID. Shared by both
// forms, like buildPermPayload.
func decodeNewID(data []byte, rank, width int) int {
	r := bitio.NewReader(data)
	newID := 0
	for i := 0; i < rank; i++ {
		u, err := r.ReadUint(width)
		if err != nil {
			panic(fmt.Sprintf("ldtmis: permutation decode: %v", err))
		}
		newID = int(u)
	}
	return newID
}

// permChunks returns the chunk geometry for shipping an np-entry
// permutation under the given bandwidth.
func permChunks(np, bandwidth int) (payloadBits, chunkBits, numChunks int) {
	payloadBits = np * permWidth(np)
	chunkBits = bandwidth / 2
	if chunkBits < 1 {
		chunkBits = 1
	}
	numChunks = ldt.NumChunks(payloadBits, chunkBits)
	return payloadBits, chunkBits, numChunks
}

// Span returns the total number of rounds RunSub occupies from its
// base round, for schedule pre-computation by composing algorithms
// (Awake-MIS sizes its phases with this).
func Span(np, bandwidth int, v Variant) int64 {
	var construct int64
	if v == VariantRound {
		construct = ldt.SpanConstructRound(np, constructPhases(v, np))
	} else {
		construct = ldt.SpanConstructAwake(np, constructPhases(v, np))
	}
	_, _, numChunks := permChunks(np, bandwidth)
	return 1 + // hello
		construct +
		ldt.SpanRank(np) +
		ldt.SpanBroadcastChunks(np, numChunks) +
		int64(np) // VT-MIS window
}

// RunSub executes LDT-MIS as a sub-procedure over rounds
// [base, base+Span(...)). Entry/exit contract matches vtmis.RunSub:
// enter from an awake round before base; return inside the final awake
// round, with the round not yet ended. id must be unique among
// participants; state is updated to the node's MIS decision.
// The node's new small ID (its permutation entry) is returned for
// verification purposes.
func RunSub(ctx *sim.Ctx, base int64, id int64, np int, v Variant, state *misproto.State) int {
	p := ldt.NewProc(ctx, base, id, np)
	p.Hello()
	if v == VariantRound {
		p.ConstructRound(constructPhases(v, np))
	} else {
		p.ConstructAwake(constructPhases(v, np))
	}
	rank, total := p.Rank()

	payloadBits, chunkBits, numChunks := permChunks(np, ctx.Bandwidth())
	width := permWidth(np)
	var payload []byte
	if p.IsRoot() {
		payload = buildPermPayload(ctx.Rand(), total, width, payloadBits)
	}
	data := p.BroadcastChunks(payload, payloadBits, chunkBits, numChunks)
	newID := decodeNewID(data, rank, width)

	vtmis.RunSub(ctx, p.Cursor(), newID, np, state, p.Active())
	return newID
}

// Result collects standalone outputs.
type Result struct {
	InMIS []bool
	// NewID[v] is the random small ID node v drew; within each
	// component the output is the LFMIS with respect to ascending
	// NewID.
	NewID []int
}

// Program returns the standalone per-node program in goroutine form:
// the cross-form oracle (Run executes the step form natively).
func Program(res *Result, ids []int64, np int, v Variant) sim.Program {
	return func(sctx *sim.Ctx) {
		state := misproto.Undecided
		res.NewID[sctx.Node()] = RunSub(sctx, 1, ids[sctx.Node()], np, v, &state)
		res.InMIS[sctx.Node()] = state == misproto.InMIS
	}
}

// Run executes standalone LDT-MIS on g: every node participates, with
// the provided unique IDs (from an arbitrarily large space) and a
// common component-size bound np ≥ the largest component of g.
func Run(g *graph.Graph, ids []int64, np int, v Variant, cfg sim.Config) (*Result, *sim.Metrics, error) {
	return RunContext(context.Background(), g, ids, np, v, cfg)
}

// RunContext is Run under a context; cancellation aborts the
// simulation at the next round boundary. It runs the native step form,
// which the stepped engine executes without the goroutine adapter.
func RunContext(ctx context.Context, g *graph.Graph, ids []int64, np int, v Variant, cfg sim.Config) (*Result, *sim.Metrics, error) {
	if len(ids) != g.N() {
		return nil, nil, fmt.Errorf("ldtmis: %d ids for %d nodes", len(ids), g.N())
	}
	seen := make(map[int64]bool, len(ids))
	for _, id := range ids {
		if seen[id] {
			return nil, nil, fmt.Errorf("ldtmis: duplicate id %d", id)
		}
		seen[id] = true
	}
	res := &Result{InMIS: make([]bool, g.N()), NewID: make([]int, g.N())}
	m, err := sim.RunStepContext(ctx, g, StepProgram(res, ids, np, v), cfg)
	return res, m, err
}
