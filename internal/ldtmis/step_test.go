package ldtmis_test

import (
	"context"
	"math/rand"
	"reflect"
	"testing"

	"awakemis/internal/graph"
	"awakemis/internal/ldtmis"
	"awakemis/internal/rng"
	"awakemis/internal/sim"
)

// TestStepFormMatchesGoroutineForm is the port-faithfulness check for
// the LDT-MIS pipeline: the native step machine and the goroutine
// original must produce bit-identical outputs AND metrics (same wake
// rounds, same messages) on both engines, for both LDT constructions,
// on graphs with several components, at several worker counts.
func TestStepFormMatchesGoroutineForm(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"cycle": graph.Cycle(24),
		"gnp":   graph.GNP(40, 0.08, rand.New(rand.NewSource(9))), // disconnected w.h.p.
		"path":  graph.Path(17),
	}
	engines := map[string]sim.Engine{
		"lockstep":  sim.NewLockstepEngine(),
		"stepped-1": sim.NewSteppedEngine(1),
		"stepped-4": sim.NewSteppedEngine(4),
	}
	for gname, g := range graphs {
		np := 0
		for _, c := range g.Components() {
			if len(c) > np {
				np = len(c)
			}
		}
		ids := rng.IDs40(g.N(), int64(len(gname)))
		for _, variant := range []ldtmis.Variant{ldtmis.VariantAwake, ldtmis.VariantRound} {
			t.Run(gname+"/"+variant.String(), func(t *testing.T) {
				cfg := sim.Config{Seed: 77, N: 1 << 16, Strict: true}
				cfg.Bandwidth = sim.DefaultBandwidth(1 << 40)

				var refRes *ldtmis.Result
				var refM *sim.Metrics
				check := func(form, ename string, res *ldtmis.Result, m *sim.Metrics) {
					t.Helper()
					if refRes == nil {
						refRes, refM = res, m
						return
					}
					if !reflect.DeepEqual(refRes, res) {
						t.Fatalf("%s/%s: output diverges from reference", form, ename)
					}
					if !reflect.DeepEqual(refM, m) {
						t.Fatalf("%s/%s: metrics diverge:\n%+v\nvs\n%+v", form, ename, refM, m)
					}
				}
				for ename, eng := range engines {
					res := &ldtmis.Result{InMIS: make([]bool, g.N()), NewID: make([]int, g.N())}
					m, err := eng.Run(context.Background(), g, ldtmis.Program(res, ids, np, variant), cfg)
					if err != nil {
						t.Fatalf("goroutine/%s: %v", ename, err)
					}
					check("goroutine", ename, res, m)
				}
				for ename, eng := range engines {
					res := &ldtmis.Result{InMIS: make([]bool, g.N()), NewID: make([]int, g.N())}
					m, err := eng.Run(context.Background(), g, ldtmis.StepProgram(res, ids, np, variant), cfg)
					if err != nil {
						t.Fatalf("step/%s: %v", ename, err)
					}
					check("step", ename, res, m)
				}
			})
		}
	}
}
