package ldtmis

// Step form of LDT-MIS: the same pipeline as RunSub — hello, LDT
// construction, ranking, chunked permutation broadcast, VT-MIS — but
// running as continuations on a sim.Machine instead of a goroutine, so
// the stepped engine executes it natively. RunSubStep is also the
// building block core's step-form Awake-MIS embeds into its phase
// windows. Both forms are bit-identical; the cross-form tests assert
// it.

import (
	"math/rand"

	"awakemis/internal/ldt"
	"awakemis/internal/misproto"
	"awakemis/internal/sim"
	"awakemis/internal/vtmis"
)

// RunSubStep is RunSub in continuation-passing step form, driven by m.
// rnd is the node's private randomness stream (sim.NodeEnv.Rand) and
// bandwidth the run's CONGEST budget — the two values RunSub reads from
// its Ctx. Entry/exit contract matches RunSub: call it at the end of an
// awake round strictly before base; k runs inside the final awake
// round's receive continuation with the node's MIS decision in *state
// and its new small ID as argument.
func RunSubStep(m *sim.Machine, rnd *rand.Rand, bandwidth int, base int64, id int64, np int, v Variant, state *misproto.State, k func(newID int)) {
	p := ldt.NewSProc(m, rnd, base, id, np)
	p.Hello(func() {
		construct := func(then func()) {
			if v == VariantRound {
				p.ConstructRound(constructPhases(v, np), then)
			} else {
				p.ConstructAwake(constructPhases(v, np), then)
			}
		}
		construct(func() {
			p.Rank(func(rank, total int) {
				payloadBits, chunkBits, numChunks := permChunks(np, bandwidth)
				width := permWidth(np)
				var payload []byte
				if p.IsRoot() {
					payload = buildPermPayload(rnd, total, width, payloadBits)
				}
				p.BroadcastChunks(payload, payloadBits, chunkBits, numChunks, func(data []byte) {
					newID := decodeNewID(data, rank, width)
					vtmis.RunSubStep(m, p.Cursor(), newID, np, state, p.Active(), func() {
						k(newID)
					})
				})
			})
		})
	})
}

// stepNode is the standalone per-node state machine: round 0 is the
// model's initial all-awake round (nothing to send), and the LDT
// session occupies rounds from base 1.
type stepNode struct {
	sim.Machine
	env *sim.NodeEnv
	res *Result
	id  int64
	np  int
	v   Variant
}

// StepProgram returns the standalone per-node program in step form.
func StepProgram(res *Result, ids []int64, np int, v Variant) sim.StepProgram {
	return func(env *sim.NodeEnv) sim.StepNode {
		return &stepNode{env: env, res: res, id: ids[env.ID], np: np, v: v}
	}
}

func (n *stepNode) Start(out *sim.Outbox) {
	n.Begin(out, func() {
		n.Yield(0, nil, func([]sim.Inbound) {
			state := misproto.Undecided
			RunSubStep(&n.Machine, n.env.Rand, n.env.Bandwidth, 1, n.id, n.np, n.v, &state, func(newID int) {
				n.res.NewID[n.env.ID] = newID
				n.res.InMIS[n.env.ID] = state == misproto.InMIS
			})
		})
	})
}
