// Package bitio provides bit-level encoding helpers used to account for
// message sizes in the CONGEST model, where every message must fit in
// O(log n) bits. Algorithms build messages out of bounded integers; the
// helpers here compute exactly how many bits a message occupies so the
// simulator can enforce the bandwidth bound.
package bitio

import (
	"fmt"
	"math/bits"
)

// UintBits returns the number of bits needed to represent v,
// with UintBits(0) == 1 (a zero still occupies one bit on the wire).
func UintBits(v uint64) int {
	if v == 0 {
		return 1
	}
	return bits.Len64(v)
}

// IntBits returns the number of bits needed for a signed value using a
// sign bit plus magnitude encoding.
func IntBits(v int64) int {
	if v < 0 {
		v = -v
	}
	return 1 + UintBits(uint64(v))
}

// FieldBits returns the number of bits needed for a fixed-width field
// holding values in [0, max]. It is the width a receiver that knows max
// would allocate for the field.
func FieldBits(max uint64) int {
	return UintBits(max)
}

// Writer accumulates bits most-significant first. It is used both to
// serialize payload chunks (e.g. permutation broadcasts over an LDT) and
// to account for the exact number of bits a message occupies.
type Writer struct {
	words []uint64
	n     int // number of bits written
}

// Len returns the number of bits written so far.
func (w *Writer) Len() int { return w.n }

// WriteUint appends the low "width" bits of v.
// It panics if v does not fit in width bits or width is out of range.
func (w *Writer) WriteUint(v uint64, width int) {
	if width <= 0 || width > 64 {
		panic(fmt.Sprintf("bitio: invalid width %d", width))
	}
	if width < 64 && v >= 1<<uint(width) {
		panic(fmt.Sprintf("bitio: value %d does not fit in %d bits", v, width))
	}
	for i := width - 1; i >= 0; i-- {
		bit := (v >> uint(i)) & 1
		idx := w.n / 64
		if idx == len(w.words) {
			w.words = append(w.words, 0)
		}
		off := 63 - uint(w.n%64)
		w.words[idx] |= bit << off
		w.n++
	}
}

// WriteBool appends a single bit.
func (w *Writer) WriteBool(b bool) {
	v := uint64(0)
	if b {
		v = 1
	}
	w.WriteUint(v, 1)
}

// Bytes returns the written bits packed into a byte slice, zero padded
// in the final byte.
func (w *Writer) Bytes() []byte {
	out := make([]byte, (w.n+7)/8)
	for i := range out {
		word := w.words[i/8]
		shift := 56 - 8*uint(i%8)
		out[i] = byte(word >> shift)
	}
	return out
}

// Reader consumes bits most-significant first from a Writer's output.
type Reader struct {
	data []byte
	pos  int // bit position
}

// NewReader returns a Reader over the packed bits in data.
func NewReader(data []byte) *Reader { return &Reader{data: data} }

// Remaining reports how many bits are left, counting padding bits in the
// final byte (callers track their own logical length).
func (r *Reader) Remaining() int { return 8*len(r.data) - r.pos }

// ReadUint reads a fixed-width unsigned value.
func (r *Reader) ReadUint(width int) (uint64, error) {
	if width <= 0 || width > 64 {
		return 0, fmt.Errorf("bitio: invalid width %d", width)
	}
	if r.Remaining() < width {
		return 0, fmt.Errorf("bitio: short read: need %d bits, have %d", width, r.Remaining())
	}
	var v uint64
	for i := 0; i < width; i++ {
		b := r.data[r.pos/8]
		bit := (b >> (7 - uint(r.pos%8))) & 1
		v = v<<1 | uint64(bit)
		r.pos++
	}
	return v, nil
}

// ReadBool reads a single bit.
func (r *Reader) ReadBool() (bool, error) {
	v, err := r.ReadUint(1)
	return v == 1, err
}
