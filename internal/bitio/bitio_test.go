package bitio

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestUintBits(t *testing.T) {
	tests := []struct {
		v    uint64
		want int
	}{
		{0, 1},
		{1, 1},
		{2, 2},
		{3, 2},
		{4, 3},
		{255, 8},
		{256, 9},
		{1<<63 - 1, 63},
		{1 << 63, 64},
	}
	for _, tt := range tests {
		if got := UintBits(tt.v); got != tt.want {
			t.Errorf("UintBits(%d) = %d, want %d", tt.v, got, tt.want)
		}
	}
}

func TestIntBits(t *testing.T) {
	tests := []struct {
		v    int64
		want int
	}{
		{0, 2},
		{1, 2},
		{-1, 2},
		{2, 3},
		{-255, 9},
	}
	for _, tt := range tests {
		if got := IntBits(tt.v); got != tt.want {
			t.Errorf("IntBits(%d) = %d, want %d", tt.v, got, tt.want)
		}
	}
}

func TestFieldBits(t *testing.T) {
	if got := FieldBits(63); got != 6 {
		t.Errorf("FieldBits(63) = %d, want 6", got)
	}
	if got := FieldBits(64); got != 7 {
		t.Errorf("FieldBits(64) = %d, want 7", got)
	}
}

func TestWriterReaderRoundTrip(t *testing.T) {
	var w Writer
	w.WriteUint(5, 3)
	w.WriteBool(true)
	w.WriteUint(1023, 10)
	w.WriteBool(false)
	if w.Len() != 15 {
		t.Fatalf("Len = %d, want 15", w.Len())
	}

	r := NewReader(w.Bytes())
	if v, err := r.ReadUint(3); err != nil || v != 5 {
		t.Errorf("ReadUint(3) = %d, %v; want 5", v, err)
	}
	if b, err := r.ReadBool(); err != nil || !b {
		t.Errorf("ReadBool = %v, %v; want true", b, err)
	}
	if v, err := r.ReadUint(10); err != nil || v != 1023 {
		t.Errorf("ReadUint(10) = %d, %v; want 1023", v, err)
	}
	if b, err := r.ReadBool(); err != nil || b {
		t.Errorf("ReadBool = %v, %v; want false", b, err)
	}
}

func TestWriterPanicsOnOverflow(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for value exceeding width")
		}
	}()
	var w Writer
	w.WriteUint(8, 3)
}

func TestWriterPanicsOnBadWidth(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for width 0")
		}
	}()
	var w Writer
	w.WriteUint(0, 0)
}

func TestReaderShortRead(t *testing.T) {
	r := NewReader([]byte{0xff})
	if _, err := r.ReadUint(9); err == nil {
		t.Fatal("expected short-read error")
	}
}

func TestReaderBadWidth(t *testing.T) {
	r := NewReader([]byte{0xff})
	if _, err := r.ReadUint(65); err == nil {
		t.Fatal("expected error for width 65")
	}
}

// Property: any sequence of (value, width) pairs round-trips.
func TestQuickRoundTrip(t *testing.T) {
	f := func(seed int64, count uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(count%32) + 1
		widths := make([]int, n)
		vals := make([]uint64, n)
		var w Writer
		for i := 0; i < n; i++ {
			widths[i] = rng.Intn(64) + 1
			if widths[i] == 64 {
				vals[i] = rng.Uint64()
			} else {
				vals[i] = rng.Uint64() & (1<<uint(widths[i]) - 1)
			}
			w.WriteUint(vals[i], widths[i])
		}
		r := NewReader(w.Bytes())
		for i := 0; i < n; i++ {
			v, err := r.ReadUint(widths[i])
			if err != nil || v != vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: UintBits(v) bits always suffice to encode v.
func TestQuickUintBitsSufficient(t *testing.T) {
	f := func(v uint64) bool {
		w := UintBits(v)
		var wr Writer
		wr.WriteUint(v, w)
		r := NewReader(wr.Bytes())
		got, err := r.ReadUint(w)
		return err == nil && got == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
