package cluster

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"testing"
)

func hashOf(i int) string {
	sum := sha256.Sum256([]byte(fmt.Sprintf("spec-%d", i)))
	return hex.EncodeToString(sum[:])
}

// TestRingDeterministicAcrossPeerOrder: every front in a fleet must
// route alike, however its -peers flag happened to be ordered.
func TestRingDeterministicAcrossPeerOrder(t *testing.T) {
	a := NewRing([]string{"http://a:1", "http://b:1", "http://c:1"}, 0)
	b := NewRing([]string{"http://c:1", "http://a:1", "http://b:1", "http://a:1"}, 0)
	for i := range 200 {
		h := hashOf(i)
		if a.Owner(h) != b.Owner(h) {
			t.Fatalf("hash %s: owners diverge: %s vs %s", h[:8], a.Owner(h), b.Owner(h))
		}
	}
}

// TestRingOrderCoversAllPeersOnce: Order is the reroute walk — it
// must visit every peer exactly once, starting at the owner.
func TestRingOrderCoversAllPeersOnce(t *testing.T) {
	peers := []string{"http://a:1", "http://b:1", "http://c:1", "http://d:1"}
	r := NewRing(peers, 0)
	for i := range 50 {
		h := hashOf(i)
		order := r.Order(h)
		if len(order) != len(peers) {
			t.Fatalf("hash %s: order %v has %d peers, want %d", h[:8], order, len(order), len(peers))
		}
		if order[0] != r.Owner(h) {
			t.Errorf("hash %s: order starts at %s, owner is %s", h[:8], order[0], r.Owner(h))
		}
		seen := map[string]bool{}
		for _, p := range order {
			if seen[p] {
				t.Fatalf("hash %s: order %v repeats %s", h[:8], order, p)
			}
			seen[p] = true
		}
	}
}

// TestRingBalance: with 64 vnodes per peer no peer should own a
// wildly disproportionate share of the key space.
func TestRingBalance(t *testing.T) {
	peers := []string{"http://a:1", "http://b:1", "http://c:1"}
	r := NewRing(peers, 0)
	counts := map[string]int{}
	const n = 3000
	for i := range n {
		counts[r.Owner(hashOf(i))]++
	}
	for _, p := range peers {
		share := float64(counts[p]) / n
		if share < 0.15 || share > 0.55 {
			t.Errorf("peer %s owns %.0f%% of keys, expected roughly a third (%v)", p, share*100, counts)
		}
	}
}

// TestRingStabilityUnderPeerLoss: removing one peer of three must not
// reshuffle keys between the survivors — only the dead peer's keys
// move. That is the property that keeps worker stores warm through
// membership changes.
func TestRingStabilityUnderPeerLoss(t *testing.T) {
	full := NewRing([]string{"http://a:1", "http://b:1", "http://c:1"}, 0)
	reduced := NewRing([]string{"http://a:1", "http://b:1"}, 0)
	for i := range 500 {
		h := hashOf(i)
		before := full.Owner(h)
		if before == "http://c:1" {
			continue // orphaned keys may land anywhere
		}
		if after := reduced.Owner(h); after != before {
			t.Fatalf("hash %s moved %s -> %s though its owner survived", h[:8], before, after)
		}
	}
}

// TestFrontNormalizesAddresses: bare host:port gains http://, trailing
// slashes and blanks are dropped, and an empty list is an error.
func TestFrontNormalizesAddresses(t *testing.T) {
	f, err := New([]string{" 127.0.0.1:7700 ", "http://127.0.0.1:7701/", ""}, Options{HealthInterval: -1})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer f.Close()
	want := []string{"http://127.0.0.1:7700", "http://127.0.0.1:7701"}
	got := f.ring.Peers()
	if len(got) != len(want) {
		t.Fatalf("peers = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("peer[%d] = %q, want %q", i, got[i], want[i])
		}
	}
	health := f.PeerHealth()
	for _, p := range want {
		if !health[p] {
			t.Errorf("peer %s not optimistically healthy at start", p)
		}
	}

	if _, err := New([]string{"", "  "}, Options{}); err == nil {
		t.Error("New with no usable peers: want error")
	}
}
