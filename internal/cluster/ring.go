// Package cluster shards awakemisd jobs across worker daemons. A
// front daemon (awakemisd -peers ...) owns no engines: it
// deduplicates submissions through its own cache and store, then
// forwards each new flight to the peer that owns its canonical spec
// hash on a consistent-hash ring — the same deterministic-
// partitioning shape the study subsystem applies to sweep cells, one
// level up. Determinism is the point: every front routes an equal
// spec to the same peer, so across the whole cluster each simulation
// is computed once, ever, and lands in exactly one worker's store.
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
)

// defaultReplicas is the virtual-node count per peer: enough that
// removing one peer of three moves only ~1/3 of the hash space, with
// a ring small enough to search by binary search in nanoseconds.
const defaultReplicas = 64

// Ring places peers on a consistent-hash ring keyed by canonical spec
// hash. Immutable after construction; equal peer lists (in any order)
// build identical rings, so every front in a fleet routes alike.
type Ring struct {
	points []point  // sorted by position
	peers  []string // sorted unique peer addresses
}

type point struct {
	pos  uint64
	peer string
}

// NewRing builds a ring of the peers with `replicas` virtual nodes
// each (<= 0 means the default 64).
func NewRing(peers []string, replicas int) *Ring {
	if replicas <= 0 {
		replicas = defaultReplicas
	}
	uniq := make([]string, 0, len(peers))
	seen := map[string]bool{}
	for _, p := range peers {
		if !seen[p] {
			seen[p] = true
			uniq = append(uniq, p)
		}
	}
	sort.Strings(uniq)
	r := &Ring{peers: uniq, points: make([]point, 0, len(uniq)*replicas)}
	for _, p := range uniq {
		for i := range replicas {
			r.points = append(r.points, point{pos: vnode(p, i), peer: p})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].pos != r.points[j].pos {
			return r.points[i].pos < r.points[j].pos
		}
		return r.points[i].peer < r.points[j].peer // deterministic on collisions
	})
	return r
}

// vnode hashes one virtual node's position.
func vnode(peer string, i int) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s#%d", peer, i)
	return h.Sum64()
}

// keyPos maps a canonical spec hash onto the ring. The hash is hex
// SHA-256, already uniform — its first 16 digits are the position.
func keyPos(hash string) uint64 {
	if len(hash) >= 16 {
		if v, err := strconv.ParseUint(hash[:16], 16, 64); err == nil {
			return v
		}
	}
	h := fnv.New64a() // non-hex key (shouldn't happen): still deterministic
	h.Write([]byte(hash))
	return h.Sum64()
}

// Peers returns the ring's peer addresses, sorted.
func (r *Ring) Peers() []string { return r.peers }

// Owner returns the peer owning hash: the first virtual node at or
// after the key's ring position, wrapping around.
func (r *Ring) Owner(hash string) string {
	if len(r.points) == 0 {
		return ""
	}
	return r.points[r.successor(keyPos(hash))].peer
}

// Order returns every peer exactly once, in ring-successor order
// starting at hash's owner — the deterministic retry order a front
// walks when the owner is down.
func (r *Ring) Order(hash string) []string {
	if len(r.points) == 0 {
		return nil
	}
	order := make([]string, 0, len(r.peers))
	seen := map[string]bool{}
	i := r.successor(keyPos(hash))
	for range r.points {
		p := r.points[i].peer
		if !seen[p] {
			seen[p] = true
			order = append(order, p)
			if len(order) == len(r.peers) {
				break
			}
		}
		i++
		if i == len(r.points) {
			i = 0
		}
	}
	return order
}

// successor finds the index of the first point at or after pos,
// wrapping past the top of the ring to index 0.
func (r *Ring) successor(pos uint64) int {
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].pos >= pos })
	if i == len(r.points) {
		return 0
	}
	return i
}
