package cluster

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"awakemis"
	"awakemis/client"
	"awakemis/internal/service"
)

// Options tunes a Front. The zero value is production-usable.
type Options struct {
	// HTTPClient carries all peer traffic (nil means http.DefaultClient).
	HTTPClient *http.Client
	// HealthInterval paces the background health probes (0 means 2s;
	// negative disables probing — health then updates only on forward
	// failures, which tests use for determinism).
	HealthInterval time.Duration
	// ProbeTimeout bounds one health probe (0 means 2s).
	ProbeTimeout time.Duration
	// Replicas is the ring's virtual-node count per peer (0 means 64).
	Replicas int
	// Logger receives structured records for forwards, reroutes, and
	// peer health transitions (nil silences them).
	Logger *slog.Logger
}

// noopHandler silences a nil Options.Logger (slog.DiscardHandler
// needs Go 1.24; the repo still tests on 1.23).
type noopHandler struct{}

func (noopHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (noopHandler) Handle(context.Context, slog.Record) error { return nil }
func (noopHandler) WithAttrs([]slog.Attr) slog.Handler        { return noopHandler{} }
func (noopHandler) WithGroup(string) slog.Handler             { return noopHandler{} }

// Front shards flights across worker daemons: consistent hashing by
// canonical spec hash picks the owner, unhealthy peers are skipped,
// and a failed forward reroutes to the ring successor — the job runs
// somewhere as long as any peer is alive. Implements
// service.Forwarder; create with New, start probing with Start, stop
// with Close.
type Front struct {
	ring  *Ring
	peers map[string]*peer

	interval time.Duration
	timeout  time.Duration
	logger   *slog.Logger

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// peer is one worker daemon as the front sees it.
type peer struct {
	addr    string
	client  *client.Client
	healthy atomic.Bool
}

// New builds a Front over the peer base URLs ("host:port" is
// normalized to "http://host:port"). Peers start optimistically
// healthy; probing begins at Start.
func New(addrs []string, opts Options) (*Front, error) {
	if opts.HealthInterval == 0 {
		opts.HealthInterval = 2 * time.Second
	}
	if opts.ProbeTimeout <= 0 {
		opts.ProbeTimeout = 2 * time.Second
	}
	normalized := make([]string, 0, len(addrs))
	for _, a := range addrs {
		a = strings.TrimSpace(a)
		if a == "" {
			continue
		}
		if !strings.Contains(a, "://") {
			a = "http://" + a
		}
		normalized = append(normalized, strings.TrimRight(a, "/"))
	}
	if len(normalized) == 0 {
		return nil, errors.New("cluster: no peers")
	}
	f := &Front{
		ring:     NewRing(normalized, opts.Replicas),
		peers:    make(map[string]*peer, len(normalized)),
		interval: opts.HealthInterval,
		timeout:  opts.ProbeTimeout,
		logger:   opts.Logger,
		stop:     make(chan struct{}),
	}
	if f.logger == nil {
		f.logger = slog.New(noopHandler{})
	}
	for _, addr := range f.ring.Peers() {
		p := &peer{addr: addr, client: client.New(addr, opts.HTTPClient)}
		p.healthy.Store(true)
		f.peers[addr] = p
	}
	return f, nil
}

// Start launches the background health prober (a no-op when probing
// is disabled).
func (f *Front) Start() {
	if f.interval < 0 {
		return
	}
	f.wg.Add(1)
	go func() {
		defer f.wg.Done()
		ticker := time.NewTicker(f.interval)
		defer ticker.Stop()
		for {
			select {
			case <-f.stop:
				return
			case <-ticker.C:
				f.probe()
			}
		}
	}()
}

// Close stops the health prober. In-flight forwards are unaffected —
// the graceful-drain order is: drain the front server (forwards
// finish), then Close.
func (f *Front) Close() {
	f.stopOnce.Do(func() { close(f.stop) })
	f.wg.Wait()
}

// probe health-checks every peer concurrently, logging transitions.
func (f *Front) probe() {
	var wg sync.WaitGroup
	for _, p := range f.peers {
		wg.Add(1)
		go func(p *peer) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), f.timeout)
			defer cancel()
			_, err := p.client.Health(ctx)
			up := err == nil
			if was := p.healthy.Swap(up); was != up {
				if up {
					f.logger.Info("peer recovered", "peer", p.addr)
				} else {
					f.logger.Warn("peer unhealthy", "peer", p.addr, "error", err.Error())
				}
			}
		}(p)
	}
	wg.Wait()
}

// FetchPeerStats implements service.PeerStatsFetcher, the read side
// of GET /v1/cluster/stats: one concurrent /v1/stats fetch per peer,
// each bounded by the probe timeout (within ctx), returning one
// snapshot per configured peer — raw JSON on success, the error
// otherwise. The front's own stats are not included; the service
// layer adds its own snapshot when it assembles the fleet view.
func (f *Front) FetchPeerStats(ctx context.Context) []service.PeerSnapshot {
	addrs := f.ring.Peers()
	snaps := make([]service.PeerSnapshot, len(addrs))
	var wg sync.WaitGroup
	for i, addr := range addrs {
		wg.Add(1)
		go func(i int, p *peer) {
			defer wg.Done()
			pctx, cancel := context.WithTimeout(ctx, f.timeout)
			defer cancel()
			data, err := p.client.StatsRaw(pctx)
			snaps[i] = service.PeerSnapshot{Addr: p.addr, Data: data, Err: err}
		}(i, f.peers[addr])
	}
	wg.Wait()
	return snaps
}

// PeerHealth reports every peer's last known health (service.Forwarder).
func (f *Front) PeerHealth() map[string]bool {
	health := make(map[string]bool, len(f.peers))
	for addr, p := range f.peers {
		health[addr] = p.healthy.Load()
	}
	return health
}

// permanentError marks a failure that would recur on every peer (the
// spec itself is bad, or its simulation legitimately failed) — the
// front must surface it, not reroute it.
type permanentError struct{ err error }

func (e *permanentError) Error() string { return e.err.Error() }
func (e *permanentError) Unwrap() error { return e.err }

// permanent classifies a peer failure: 4xx API responses (other than
// 404/408, which a restarted or slow peer can produce spuriously)
// and explicitly marked errors are deterministic; everything else —
// connection failures, 5xx, timeouts — is the peer's problem and
// worth rerouting.
func permanent(err error) bool {
	var pe *permanentError
	if errors.As(err, &pe) {
		return true
	}
	var apiErr *client.APIError
	if errors.As(err, &apiErr) {
		return apiErr.StatusCode >= 400 && apiErr.StatusCode < 500 &&
			apiErr.StatusCode != http.StatusNotFound &&
			apiErr.StatusCode != http.StatusRequestTimeout
	}
	return false
}

// Forward implements service.Forwarder: run the spec on the peer
// owning its canonical hash, rerouting along the ring on peer
// failure. Healthy peers are tried first in ring order; if every
// healthy peer fails, the unhealthy ones get a last-resort attempt
// (the prober may simply not have noticed a recovery yet). The
// returned bytes are the serving peer's exact report bytes; progress,
// when non-nil, receives the owning peer's live job-progress views.
// The trace id carried by ctx rides the forwarded requests, so the
// worker daemon's logs join the submitter's trail.
func (f *Front) Forward(ctx context.Context, spec awakemis.Spec, progress func(service.JobProgress)) ([]byte, string, error) {
	hash, err := service.Hash(spec)
	if err != nil {
		return nil, "", err
	}
	order := f.ring.Order(hash)
	candidates := make([]string, 0, len(order))
	for _, addr := range order { // healthy first, ring order preserved
		if f.peers[addr].healthy.Load() {
			candidates = append(candidates, addr)
		}
	}
	for _, addr := range order {
		if !f.peers[addr].healthy.Load() {
			candidates = append(candidates, addr)
		}
	}
	var lastErr error
	for i, addr := range candidates {
		if err := ctx.Err(); err != nil {
			return nil, "", err
		}
		p := f.peers[addr]
		if i > 0 {
			f.logger.Info("rerouting flight", "hash", hash, "peer", addr, "attempt", i+1)
		}
		data, err := f.runOn(ctx, p, spec, progress)
		if err == nil {
			p.healthy.Store(true)
			return data, addr, nil
		}
		if permanent(err) || ctx.Err() != nil {
			return nil, addr, err
		}
		p.healthy.Store(false)
		lastErr = err
	}
	return nil, "", fmt.Errorf("cluster: all %d peers failed: %w", len(candidates), lastErr)
}

// runOn submits the spec to one peer and waits for its report bytes,
// relaying the peer's live progress views to the front's tracker.
func (f *Front) runOn(ctx context.Context, p *peer, spec awakemis.Spec, progress func(service.JobProgress)) ([]byte, error) {
	job, err := p.client.Submit(ctx, spec)
	if err != nil {
		return nil, err
	}
	if !job.Status.Terminal() {
		var onUpdate func(*client.Job)
		if progress != nil {
			onUpdate = func(j *client.Job) {
				if j.Progress == nil {
					return
				}
				progress(service.JobProgress{
					Rounds:    j.Progress.Rounds,
					Executed:  j.Progress.Executed,
					Awake:     j.Progress.Awake,
					AwakeFrac: j.Progress.AwakeFrac,
					ElapsedMS: j.Progress.ElapsedMS,
					ETAMS:     j.Progress.ETAMS,
				})
			}
		}
		if job, err = p.client.WaitJob(ctx, job.ID, onUpdate); err != nil {
			return nil, err
		}
	}
	switch job.Status {
	case client.JobDone:
		return job.Report, nil
	case client.JobFailed:
		// Deterministic simulators fail deterministically: rerouting
		// would just fail again elsewhere.
		return nil, &permanentError{fmt.Errorf("peer %s: job %s failed: %s", p.addr, job.ID, job.Error)}
	default:
		// Canceled on the peer (say, a drain timeout killed it): another
		// peer can still run it.
		return nil, fmt.Errorf("peer %s: job %s ended %s", p.addr, job.ID, job.Status)
	}
}
