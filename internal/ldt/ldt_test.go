package ldt

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"

	"awakemis/internal/graph"
	"awakemis/internal/sim"
)

// snapshot captures a node's final LDT state for validation.
type snapshot struct {
	id         int64
	rootID     int64
	depth      int
	parentPort int
	children   []int
	rank       int
	total      int
	cursor     int64
	payload    []byte
}

type harness struct {
	mu    sync.Mutex
	snaps map[int]*snapshot
}

func (h *harness) put(v int, s *snapshot) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.snaps[v] = s
}

// runLDT builds an LDT over g (all nodes participating) with the given
// construction, then optionally ranks and broadcasts a payload.
func runLDT(t *testing.T, g *graph.Graph, np int, seed int64, deterministic bool,
	withRank bool, payload []byte) (*harness, *sim.Metrics) {
	t.Helper()
	h := &harness{snaps: map[int]*snapshot{}}
	ids := rand.New(rand.NewSource(seed ^ 0x5ca1ab1e)).Perm(1 << 16)
	prog := func(ctx *sim.Ctx) {
		id := int64(ids[ctx.Node()] + 1)
		p := NewProc(ctx, 1, id, np)
		p.Hello()
		if deterministic {
			p.ConstructRound(DefaultRoundPhases(np))
		} else {
			p.ConstructAwake(DefaultAwakePhases(np))
		}
		s := &snapshot{id: id, rootID: p.rootID, depth: p.depth,
			parentPort: p.parentPort, children: append([]int(nil), p.children...)}
		if withRank {
			s.rank, s.total = p.Rank()
		}
		if payload != nil {
			bits := len(payload) * 8
			chunkBits := ctx.Bandwidth() / 2
			s.payload = p.BroadcastChunks(payload, bits, chunkBits, NumChunks(bits, chunkBits))
		}
		s.cursor = p.Cursor()
		h.put(ctx.Node(), s)
	}
	m, err := sim.Run(g, prog, sim.Config{Seed: seed, N: 1 << 16, Strict: true})
	if err != nil {
		t.Fatal(err)
	}
	return h, m
}

// validateLDT checks the three LDT properties of §5.2 on every
// connected component: common root ID, correct depths, and
// parent/child pointer consistency.
func validateLDT(t *testing.T, g *graph.Graph, h *harness) {
	t.Helper()
	for ci, comp := range g.Components() {
		// (i) all nodes agree on the root ID, which must be a member's ID.
		rootID := h.snaps[comp[0]].rootID
		var root = -1
		for _, v := range comp {
			s := h.snaps[v]
			if s.rootID != rootID {
				t.Fatalf("component %d: node %d rootID %d != %d", ci, v, s.rootID, rootID)
			}
			if s.id == rootID {
				root = v
			}
		}
		if root < 0 {
			t.Fatalf("component %d: no member owns root ID %d", ci, rootID)
		}
		// (iii) parent/child pointers form a spanning tree rooted there.
		rs := h.snaps[root]
		if rs.parentPort != -1 {
			t.Fatalf("component %d: root %d has parent port %d", ci, root, rs.parentPort)
		}
		seen := map[int]bool{}
		queue := []int{root}
		seen[root] = true
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			s := h.snaps[v]
			// (ii) depth consistency.
			for _, q := range s.children {
				w := g.Neighbor(v, q)
				ws := h.snaps[w]
				if seen[w] {
					t.Fatalf("component %d: node %d reached twice", ci, w)
				}
				seen[w] = true
				if ws.depth != s.depth+1 {
					t.Fatalf("component %d: child %d depth %d, parent %d depth %d",
						ci, w, ws.depth, v, s.depth)
				}
				if g.Neighbor(w, ws.parentPort) != v {
					t.Fatalf("component %d: node %d parent port mismatch", ci, w)
				}
				queue = append(queue, w)
			}
		}
		if len(seen) != len(comp) {
			t.Fatalf("component %d: tree spans %d of %d nodes", ci, len(seen), len(comp))
		}
	}
}

func testGraphs(seed int64) map[string]*graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	return map[string]*graph.Graph{
		"single":   graph.New(1),
		"pair":     graph.Path(2),
		"path9":    graph.Path(9),
		"cycle12":  graph.Cycle(12),
		"star10":   graph.Star(10),
		"complete": graph.Complete(7),
		"tree20":   graph.RandomTree(20, rng),
		"gnp":      connectify(graph.GNP(24, 0.15, rng)),
		"grid":     graph.Grid(4, 5),
		"disjoint": graph.DisjointUnion(graph.Cycle(5), graph.Path(4), graph.New(2)),
	}
}

// connectify links components of g so LDT sizing stays within np.
func connectify(g *graph.Graph) *graph.Graph {
	comps := g.Components()
	edges := g.Edges()
	for i := 1; i < len(comps); i++ {
		edges = append(edges, [2]int{comps[i-1][0], comps[i][0]})
	}
	return graph.MustFromEdges(g.N(), edges)
}

func TestConstructAwakeBuildsLDT(t *testing.T) {
	for name, g := range testGraphs(1) {
		t.Run(name, func(t *testing.T) {
			h, _ := runLDT(t, g, maxComp(g), 42, false, false, nil)
			validateLDT(t, g, h)
		})
	}
}

func TestConstructRoundBuildsLDT(t *testing.T) {
	for name, g := range testGraphs(2) {
		t.Run(name, func(t *testing.T) {
			h, _ := runLDT(t, g, maxComp(g), 43, true, false, nil)
			validateLDT(t, g, h)
		})
	}
}

func maxComp(g *graph.Graph) int {
	max := 1
	for _, c := range g.Components() {
		if len(c) > max {
			max = len(c)
		}
	}
	return max
}

func TestConstructRoundSpanExact(t *testing.T) {
	// The static span formula must match the rounds the implementation
	// actually consumes (schedule consistency is what synchronizes
	// nodes, so drift would be a correctness bug).
	g := graph.Cycle(9)
	np := 9
	h, _ := runLDT(t, g, np, 44, true, false, nil)
	want := int64(1) + spanAdjacent + SpanConstructRound(np, DefaultRoundPhases(np))
	for v, s := range h.snaps {
		if s.cursor != want {
			t.Fatalf("node %d cursor %d, want %d", v, s.cursor, want)
		}
	}
}

func TestConstructAwakeSpanExact(t *testing.T) {
	g := graph.Path(6)
	np := 6
	h, _ := runLDT(t, g, np, 45, false, false, nil)
	want := int64(1) + spanAdjacent + SpanConstructAwake(np, DefaultAwakePhases(np))
	for v, s := range h.snaps {
		if s.cursor != want {
			t.Fatalf("node %d cursor %d, want %d", v, s.cursor, want)
		}
	}
}

func TestConstructAwakeAwakeComplexity(t *testing.T) {
	// Lemma 6 analogue: O(log n') awake. With our windows each node is
	// awake O(1) rounds per merge phase, so the bound is
	// c · DefaultAwakePhases(np) for a small constant c.
	g := graph.Cycle(64)
	_, m := runLDT(t, g, 64, 46, false, false, nil)
	phases := int64(DefaultAwakePhases(64))
	if m.MaxAwake > 12*phases {
		t.Errorf("MaxAwake %d > 12 phases (%d)", m.MaxAwake, 12*phases)
	}
}

func TestRanking(t *testing.T) {
	for name, g := range testGraphs(3) {
		t.Run(name, func(t *testing.T) {
			h, _ := runLDT(t, g, maxComp(g), 47, false, true, nil)
			validateLDT(t, g, h)
			for _, comp := range g.Components() {
				// Ranks form a permutation of 1..|comp| and totals match.
				ranks := []int{}
				for _, v := range comp {
					s := h.snaps[v]
					if s.total != len(comp) {
						t.Fatalf("node %d total %d, want %d", v, s.total, len(comp))
					}
					ranks = append(ranks, s.rank)
				}
				sort.Ints(ranks)
				for i, r := range ranks {
					if r != i+1 {
						t.Fatalf("ranks %v are not 1..%d", ranks, len(comp))
					}
				}
			}
		})
	}
}

func TestRankingRespectsInOrder(t *testing.T) {
	// For each node, the first (lowest-port) child's subtree must rank
	// entirely before it, and remaining subtrees entirely after.
	g := graph.RandomTree(30, rand.New(rand.NewSource(9)))
	h, _ := runLDT(t, g, 30, 48, true, true, nil)
	validateLDT(t, g, h)
	var subtree func(v int) []int
	subtree = func(v int) []int {
		out := []int{v}
		for _, q := range h.snaps[v].children {
			out = append(out, subtree(g.Neighbor(v, q))...)
		}
		return out
	}
	for v, s := range h.snaps {
		if len(s.children) == 0 {
			continue
		}
		firstChild := g.Neighbor(v, s.children[0])
		for _, w := range subtree(firstChild) {
			if h.snaps[w].rank >= s.rank {
				t.Fatalf("node %d (rank %d) not after first subtree node %d (rank %d)",
					v, s.rank, w, h.snaps[w].rank)
			}
		}
		for _, q := range s.children[1:] {
			for _, w := range subtree(g.Neighbor(v, q)) {
				if h.snaps[w].rank <= s.rank {
					t.Fatalf("node %d (rank %d) not before later subtree node %d (rank %d)",
						v, s.rank, w, h.snaps[w].rank)
				}
			}
		}
	}
}

func TestBroadcastChunks(t *testing.T) {
	payload := []byte{0xde, 0xad, 0xbe, 0xef, 0x01, 0x23, 0x45, 0x67, 0x89}
	for _, name := range []string{"path9", "star10", "complete"} {
		g := testGraphs(4)[name]
		t.Run(name, func(t *testing.T) {
			h, _ := runLDT(t, g, g.N(), 49, false, false, payload)
			for v, s := range h.snaps {
				if fmt.Sprintf("%x", s.payload) != fmt.Sprintf("%x", payload) {
					t.Fatalf("node %d payload %x, want %x", v, s.payload, payload)
				}
			}
		})
	}
}

func TestBroadcastChunksAwakeBudget(t *testing.T) {
	// Lemma 9 analogue: O(1) awake per chunk window, independent of n'.
	g := graph.Path(40)
	payload := make([]byte, 16)
	h, m := runLDT(t, g, 40, 50, false, false, payload)
	validateLDT(t, g, h)
	bits := len(payload) * 8
	chunkBits := sim.DefaultBandwidth(1<<16) / 2
	chunks := int64(NumChunks(bits, chunkBits))
	construct := int64(DefaultAwakePhases(40))
	if m.MaxAwake > 12*construct+4*chunks {
		t.Errorf("MaxAwake %d exceeds budget (construct %d, chunks %d)",
			m.MaxAwake, construct, chunks)
	}
}

func TestNumChunks(t *testing.T) {
	tests := []struct{ bits, chunk, want int }{
		{0, 10, 0},
		{1, 10, 1},
		{10, 10, 1},
		{11, 10, 2},
		{100, 7, 15},
	}
	for _, tt := range tests {
		if got := NumChunks(tt.bits, tt.chunk); got != tt.want {
			t.Errorf("NumChunks(%d,%d) = %d, want %d", tt.bits, tt.chunk, got, tt.want)
		}
	}
}

func TestSliceBits(t *testing.T) {
	data := []byte{0b10110100, 0b01011110}
	got := sliceBits(data, 3, 11)
	// bits 3..10: 10100 010 -> 0b10100010
	if got[0] != 0b10100010 {
		t.Errorf("sliceBits = %08b", got[0])
	}
}

func TestOpMsgBits(t *testing.T) {
	m := opMsg{Kind: kRoot, F: []int64{1, -5, 1000}}
	want := 5 + 3 + 2 + 4 + 11
	if got := m.Bits(); got != want {
		t.Errorf("Bits = %d, want %d", got, want)
	}
	c := chunkMsg{Data: []byte{1, 2}, NBits: 13}
	if c.Bits() != 21 {
		t.Errorf("chunk Bits = %d, want 21", c.Bits())
	}
}

func TestDeterministicConstructReplay(t *testing.T) {
	g := graph.Grid(4, 4)
	run := func() map[int]*snapshot {
		h, _ := runLDT(t, g, 16, 51, true, true, nil)
		return h.snaps
	}
	a, b := run(), run()
	for v := range a {
		if a[v].rootID != b[v].rootID || a[v].rank != b[v].rank || a[v].depth != b[v].depth {
			t.Fatalf("replay diverged at node %d", v)
		}
	}
}
