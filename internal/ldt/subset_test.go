package ldt

import (
	"math/rand"
	"testing"
	"testing/quick"

	"awakemis/internal/graph"
	"awakemis/internal/sim"
)

// TestSubsetParticipation exercises the mode Awake-MIS actually uses:
// only a subset of nodes runs the LDT session while the rest sleep.
// Participants must discover exactly each other through Hello (the
// sleeping model silently hides non-participants) and build one LDT per
// connected component of the induced subgraph.
func TestSubsetParticipation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := graph.Grid(6, 6) // 36 nodes
	// Participants: a checkerboard-ish random half.
	participant := make([]bool, g.N())
	var members []int
	for v := range participant {
		if rng.Intn(2) == 0 {
			participant[v] = true
			members = append(members, v)
		}
	}
	if len(members) < 5 {
		t.Skip("degenerate sample")
	}
	sub, mapping := g.Induced(members)
	np := 1
	for _, c := range sub.Components() {
		if len(c) > np {
			np = len(c)
		}
	}

	h := &harness{snaps: map[int]*snapshot{}}
	ids := rand.New(rand.NewSource(7)).Perm(1 << 12)
	prog := func(ctx *sim.Ctx) {
		if !participant[ctx.Node()] {
			return // non-participants drop out immediately
		}
		id := int64(ids[ctx.Node()] + 1)
		p := NewProc(ctx, 1, id, np)
		p.Hello()
		// Hello must discover exactly the participating neighbors.
		wantDeg := 0
		for _, w := range g.Neighbors(ctx.Node()) {
			if participant[w] {
				wantDeg++
			}
		}
		if len(p.Active()) != wantDeg {
			t.Errorf("node %d discovered %d participants, want %d",
				ctx.Node(), len(p.Active()), wantDeg)
		}
		p.ConstructAwake(DefaultAwakePhases(np))
		h.put(ctx.Node(), &snapshot{id: id, rootID: p.rootID, depth: p.depth,
			parentPort: p.parentPort, children: append([]int(nil), p.children...)})
	}
	if _, err := sim.Run(g, prog, sim.Config{Seed: 3, N: 1 << 12, Strict: true}); err != nil {
		t.Fatal(err)
	}

	// Validate per component of the induced subgraph, using original ids.
	for ci, comp := range sub.Components() {
		rootID := h.snaps[mapping[comp[0]]].rootID
		rootSeen := false
		for _, sv := range comp {
			v := mapping[sv]
			s := h.snaps[v]
			if s == nil {
				t.Fatalf("participant %d has no snapshot", v)
			}
			if s.rootID != rootID {
				t.Fatalf("component %d: node %d rootID %d != %d", ci, v, s.rootID, rootID)
			}
			if s.id == rootID {
				rootSeen = true
				if s.parentPort != -1 {
					t.Fatalf("root %d has a parent", v)
				}
			}
			// Parent/child ports must lead to participants.
			if s.parentPort >= 0 && !participant[g.Neighbor(v, s.parentPort)] {
				t.Fatalf("node %d parent port leads to a sleeper", v)
			}
			for _, q := range s.children {
				if !participant[g.Neighbor(v, q)] {
					t.Fatalf("node %d child port leads to a sleeper", v)
				}
			}
		}
		if !rootSeen {
			t.Fatalf("component %d: root ID %d not owned by a member", ci, rootID)
		}
	}
}

// TestQuickConstructionsOnRandomGraphs property-tests both
// constructions over random connected graphs.
func TestQuickConstructionsOnRandomGraphs(t *testing.T) {
	f := func(seed int64, nn uint8, det bool) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nn%14) + 2
		g := connectify(graph.GNP(n, 0.3, rng))
		h := &harness{snaps: map[int]*snapshot{}}
		ids := rng.Perm(1 << 12)
		prog := func(ctx *sim.Ctx) {
			id := int64(ids[ctx.Node()] + 1)
			p := NewProc(ctx, 1, id, n)
			p.Hello()
			if det {
				p.ConstructRound(DefaultRoundPhases(n))
			} else {
				p.ConstructAwake(DefaultAwakePhases(n))
			}
			rank, total := p.Rank()
			h.put(ctx.Node(), &snapshot{id: id, rootID: p.rootID, depth: p.depth,
				parentPort: p.parentPort, children: append([]int(nil), p.children...),
				rank: rank, total: total})
		}
		if _, err := sim.Run(g, prog, sim.Config{Seed: seed, N: 1 << 12, Strict: true}); err != nil {
			return false
		}
		// All same root; ranks form a permutation; totals equal n.
		rootID := h.snaps[0].rootID
		seen := make([]bool, n+1)
		for v := 0; v < n; v++ {
			s := h.snaps[v]
			if s.rootID != rootID || s.total != n {
				return false
			}
			if s.rank < 1 || s.rank > n || seen[s.rank] {
				return false
			}
			seen[s.rank] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
