package ldt

// This file implements the post-construction LDT operations of §5.2 /
// Appendix A.3: ranking (each node learns its rank in a total order of
// the tree plus the exact tree size, Lemma 9) and chunked root
// broadcasts (Fragment-Broadcast generalized to multi-message payloads,
// used to ship the random permutation in LDT-MIS). Both cost O(1) awake
// rounds per window.

// SpanRank returns the rounds consumed by Rank.
func SpanRank(np int) int64 { return 2 * spanWindow(np) }

// Rank computes the node's rank in the in-order-style total ordering of
// Appendix A.3 (visit the lowest-port subtree, then the node, then the
// remaining subtrees) and the exact number of nodes in the LDT.
// Rank values are 1-based.
func (p *Proc) Rank() (rank, total int) {
	// Upcast subtree sizes.
	sizes, childSizes := p.upcast([]int64{1}, func(acc, in []int64) []int64 {
		return []int64{acc[0] + in[0]}
	})
	mySubtree := sizes[0]

	// Downcast (offset, total): a node receiving offset x is ranked
	// after x earlier nodes; its first child's subtree precedes it.
	first := int64(0)
	if len(p.children) > 0 {
		first = childSizes[p.children[0]][0]
	}
	var seed []int64
	if p.IsRoot() {
		seed = []int64{0, mySubtree}
	}
	perChild := func(mine []int64, port int) []int64 {
		x := mine[0]
		if port == p.children[0] {
			return []int64{x, mine[1]}
		}
		// Later subtrees follow the node itself.
		off := x + first + 1
		for _, q := range p.children[1:] {
			if q == port {
				break
			}
			off += childSizes[q][0]
		}
		return []int64{off, mine[1]}
	}
	got := p.downcast(seed, perChild)
	if got == nil {
		// Singleton LDT (no parent, no children): seed stands.
		got = []int64{0, mySubtree}
	}
	rank = int(got[0] + first + 1)
	total = int(got[1])
	return rank, total
}

// NumChunks returns how many chunk windows a payload of payloadBits
// needs when each message may carry at most chunkBits.
func NumChunks(payloadBits, chunkBits int) int {
	if payloadBits <= 0 {
		return 0
	}
	return (payloadBits + chunkBits - 1) / chunkBits
}

// SpanBroadcastChunks returns the rounds consumed by BroadcastChunks.
func SpanBroadcastChunks(np, numChunks int) int64 {
	return int64(numChunks) * spanWindow(np)
}

// bitAccum reassembles a bit stream delivered in chunks, zero-padded
// to whole bytes. The pure half of BroadcastChunks, shared verbatim by
// the goroutine and step forms (bit-identity depends on both packing
// identically).
type bitAccum struct {
	out  []byte
	bits int
}

func newBitAccum(payloadBits int) *bitAccum {
	return &bitAccum{out: make([]byte, 0, (payloadBits+7)/8)}
}

func (a *bitAccum) append(data []byte, nbits int) {
	for i := 0; i < nbits; i++ {
		bit := (data[i/8] >> (7 - uint(i%8))) & 1
		if a.bits%8 == 0 {
			a.out = append(a.out, 0)
		}
		a.out[len(a.out)-1] |= bit << (7 - uint(a.bits%8))
		a.bits++
	}
}

// rootChunk cuts the root's c-th chunk out of the payload ("null"
// filler per §5.3 once the payload is exhausted). Shared by both forms.
func rootChunk(payload []byte, c, chunkBits, payloadBits int) *chunkMsg {
	lo := c * chunkBits
	hi := lo + chunkBits
	if hi > payloadBits {
		hi = payloadBits
	}
	if lo < hi {
		return &chunkMsg{Data: sliceBits(payload, lo, hi), NBits: hi - lo}
	}
	return &chunkMsg{NBits: 0}
}

// BroadcastChunks ships a root payload of payloadBits bits to every
// node in numChunks downcast windows of chunkBits bits each. The root
// supplies the payload; every node returns the reassembled payload
// bytes (zero-padded to whole bytes).
func (p *Proc) BroadcastChunks(payload []byte, payloadBits, chunkBits, numChunks int) []byte {
	acc := newBitAccum(payloadBits)
	for c := 0; c < numChunks; c++ {
		w := p.cur
		p.cur += spanWindow(p.np)
		var mine *chunkMsg
		if p.IsRoot() {
			mine = rootChunk(payload, c, chunkBits, payloadBits)
		} else {
			p.wake(w + int64(p.depth-1))
			for _, m := range p.ctx.Deliver() {
				if cm, ok := m.Msg.(chunkMsg); ok && m.Port == p.parentPort {
					cm := cm
					mine = &cm
				}
			}
		}
		if len(p.children) > 0 && mine != nil {
			p.wake(w + int64(p.depth))
			for _, q := range p.children {
				p.ctx.Send(q, *mine)
			}
			p.ctx.Deliver()
		}
		if mine != nil && mine.NBits > 0 {
			acc.append(mine.Data, mine.NBits)
		}
	}
	return acc.out
}

// sliceBits extracts bits [lo, hi) of data into a fresh byte slice.
func sliceBits(data []byte, lo, hi int) []byte {
	n := hi - lo
	out := make([]byte, (n+7)/8)
	for i := 0; i < n; i++ {
		bit := (data[(lo+i)/8] >> (7 - uint((lo+i)%8))) & 1
		out[i/8] |= bit << (7 - uint(i%8))
	}
	return out
}
