package ldt

// This file implements the two LDT constructions.
//
// ConstructAwake (randomized; substitution for Theorem 4 of [2], see
// DESIGN.md §2): repeated fragment merging where each fragment flips a
// coin and every tails fragment whose minimum outgoing edge points at a
// heads fragment merges into it. Each phase costs O(1) awake rounds per
// node, and O(log n′) phases suffice w.h.p., giving O(log n′) awake
// complexity.
//
// ConstructRound (deterministic; Appendix A): GHS-style phases in which
// every fragment finds its minimum outgoing edge, fragments form
// supergraph trees, a Cole–Vishkin 6-coloring of each tree drives a
// maximal fragment matching, unmatched fragments attach to their
// parent (or a child, at the tree root), and the resulting small-depth
// trees (diameter ≤ 4) merge around their smallest-ID fragment.
// ⌈log₂ n′⌉ + 1 phases merge everything deterministically.

// DefaultAwakePhases returns the default number of randomized merge
// phases for a component bound np: generous enough that all components
// of size ≤ np finish w.h.p. (each fragment merges with probability
// ≥ 1/4 per phase).
func DefaultAwakePhases(np int) int { return 4*log2ceil(np+1) + 12 }

// DefaultRoundPhases returns the number of deterministic GHS phases
// that guarantee completion: fragments at least halve per phase.
func DefaultRoundPhases(np int) int { return log2ceil(np+1) + 1 }

// SpanConstructAwake returns the number of rounds ConstructAwake
// occupies for the given parameters.
func SpanConstructAwake(np, phases int) int64 {
	return int64(phases) * (2*spanAdjacent + 4*spanWindow(np))
}

// ConstructAwake runs the randomized construction for the given number
// of phases. On return every participant of a component of size ≤ np
// belongs (w.h.p.) to a single LDT spanning the component.
func (p *Proc) ConstructAwake(phases int) {
	for ph := 0; ph < phases; ph++ {
		// (a) Exchange fragment IDs with neighbors.
		nbrRoot := map[int]int64{}
		for _, m := range p.adjacent(kRoot, []int64{p.rootID}) {
			nbrRoot[m.Port] = m.Msg.(opMsg).F[0]
		}

		// (b) Upcast the fragment's minimum outgoing edge.
		agg, _ := p.upcast(p.minEdge(nbrRoot), mergeMinEdge)

		// (c) Root draws the phase coin and broadcasts (edge, coin).
		var down []int64
		if p.IsRoot() {
			if agg != nil {
				down = []int64{agg[0], agg[1], int64(p.ctx.Rand().Intn(2))}
			}
			// No outgoing edge: component complete; broadcast nothing.
		}
		dec := p.downcast(down, nil)

		var chosenLo, chosenHi, coin int64 = -1, -1, 0
		if dec != nil {
			chosenLo, chosenHi, coin = dec[0], dec[1], dec[2]
		}

		// (d) Endpoint exchange across fragment boundaries: everyone
		// announces (rootID, coin, depth, chosenLo, chosenHi).
		ann := []int64{p.rootID, coin, int64(p.depth), chosenLo, chosenHi}
		in := p.adjacent(kRoot, ann)

		var pend *pending
		myPort := -1
		if chosenLo >= 0 {
			myPort = p.edgePort(chosenLo, chosenHi)
		}
		for _, m := range in {
			f := m.Msg.(opMsg).F
			nRoot, nCoin, nDepth, nLo, nHi := f[0], f[1], f[2], f[3], f[4]
			if nRoot == p.rootID {
				continue
			}
			// Tails fragment attaches through its chosen edge into a
			// heads fragment.
			if coin == 0 && m.Port == myPort && nCoin == 1 {
				pend = &pending{
					rootID:   nRoot,
					depth:    int(nDepth) + 1,
					parent:   m.Port,
					viaChild: -1,
				}
			}
			// Heads side: a tails neighbor whose chosen edge is this
			// edge becomes a child.
			if coin == 1 && nCoin == 0 && nLo >= 0 {
				if q := p.edgePort(nLo, nHi); q == m.Port {
					p.addChild(m.Port)
				}
			}
		}

		// (e) Relabel the merging fragment.
		oldParent := p.parentPort
		pend = p.upRelabel(pend)
		pend = p.downRelabel(pend)
		p.applyPending(pend, oldParent)
	}
}

// crSpanPerPhase mirrors the exact window sequence of one
// ConstructRound phase; a test asserts the implementation consumes
// exactly this many rounds.
func crSpanPerPhase(np int) int64 {
	w := spanWindow(np)
	adj := int64(spanAdjacent)
	s1 := adj + w + w + adj                    // ids, up min edge, down, endpoint exchange
	s2a := w + w                               // mutual upcast, T-root flag downcast
	colorStep := w + adj + w                   // downcast color, adjacent, upcast parent color
	cv := int64(cvIterations+4)*colorStep + w  // 6 CV iters + 2×(shift-down, recolor), final distribute
	match := 6*(w+adj+w+w+adj+w) + w           // per color: m1..m6; then final refresh
	s2e := adj                                 // attach-to-parent notification
	s2f := w + w + adj                         // up, down, notify chosen child
	s3core := int64(coreIters) * (adj + w + w) // core-ID propagation
	s3rel := int64(coreIters) * (adj + w + w)  // relabel waves
	return s1 + s2a + cv + match + s2e + s2f + s3core + s3rel
}

// cvIterations bounds the Cole–Vishkin color-length reduction: from
// 64-bit colors, 6 iterations reach 3-bit colors (64→7→4→3, fixed
// point), matching the O(log* I) bound with I ≤ 2⁶⁴.
const cvIterations = 6

// coreIters covers propagation across the small-depth trees of
// Appendix A stage 3 (fragment diameter ≤ 4, plus slack).
const coreIters = 6

// SpanConstructRound returns the number of rounds ConstructRound
// occupies.
func SpanConstructRound(np, phases int) int64 {
	return int64(phases) * crSpanPerPhase(np)
}

// cvStep performs one Cole–Vishkin bit-reduction step.
func cvStep(color, parent int64) int64 {
	diff := color ^ parent
	i := int64(0)
	for diff != 0 && diff&1 == 0 {
		diff >>= 1
		i++
	}
	return 2*i + (color>>uint(i))&1
}

// syntheticParent gives the tree root a pseudo-parent color differing
// from its own.
func syntheticParent(color int64) int64 {
	if color == 0 {
		return 1
	}
	return 0
}

// ConstructRound runs the deterministic Appendix A construction for
// the given number of phases (DefaultRoundPhases(np) suffices).
func (p *Proc) ConstructRound(phases int) {
	for ph := 0; ph < phases; ph++ {
		p.constructRoundPhase()
	}
}

func (p *Proc) constructRoundPhase() {
	// ---- Stage 1: minimum outgoing edge, known to all members. ----
	nbrRoot := map[int]int64{}
	for _, m := range p.adjacent(kRoot, []int64{p.rootID}) {
		nbrRoot[m.Port] = m.Msg.(opMsg).F[0]
	}
	agg, _ := p.upcast(p.minEdge(nbrRoot), mergeMinEdge)
	var down []int64
	if p.IsRoot() && agg != nil {
		down = []int64{agg[0], agg[1]}
	}
	dec := p.downcast(down, nil)
	var chosenLo, chosenHi int64 = -1, -1
	if dec != nil {
		chosenLo, chosenHi = dec[0], dec[1]
	}
	parentEdgePort := -1
	if chosenLo >= 0 {
		parentEdgePort = p.edgePort(chosenLo, chosenHi)
	}

	// Endpoint exchange: (rootID, chosenLo, chosenHi).
	in := p.adjacent(kRoot, []int64{p.rootID, chosenLo, chosenHi})
	nbrChosen := map[int][2]int64{}
	for _, m := range in {
		f := m.Msg.(opMsg).F
		nbrChosen[m.Port] = [2]int64{f[1], f[2]}
	}
	// childPorts: ports whose neighbor fragment chose the edge to us.
	childPorts := []int{}
	for _, q := range p.active {
		if nbrRoot[q] == p.rootID {
			continue
		}
		ch, ok := nbrChosen[q]
		if !ok || ch[0] < 0 {
			continue
		}
		if p.edgePort(ch[0], ch[1]) == q {
			childPorts = append(childPorts, q)
		}
	}

	// ---- Stage 2a: identify the supergraph-tree root fragment. ----
	// The mutual pair: our chosen edge's far side also chose it.
	var mutual []int64 // [otherRootID]
	if parentEdgePort >= 0 {
		if ch, ok := nbrChosen[parentEdgePort]; ok && ch == [2]int64{chosenLo, chosenHi} {
			mutual = []int64{nbrRoot[parentEdgePort]}
		}
	}
	aggMut, _ := p.upcast(mutual, mergeFirst)
	var tFlag []int64
	if p.IsRoot() {
		isTRoot := int64(0)
		if chosenLo < 0 {
			isTRoot = 1 // no outgoing edge: fragment is alone, trivially root
		} else if aggMut != nil && p.rootID < aggMut[0] {
			isTRoot = 1
		}
		tFlag = []int64{isTRoot}
	}
	flag := p.downcast(tFlag, nil)
	isTRoot := flag != nil && flag[0] == 1

	// ---- Stage 2c: Cole–Vishkin 6-coloring of fragments. ----
	// Each mini-step: downcast current color, adjacent exchange, upcast
	// the parent fragment's color, root computes the next color.
	color := p.rootID
	colorStep := func(compute func(cur, parentColor, childColor int64) int64) {
		cur := p.downcast(colorValIfRoot(&p.treeState, color), nil)
		if cur != nil {
			color = cur[0]
		}
		ex := p.adjacent(kRoot, []int64{p.rootID, color})
		var parentColor, childColor []int64
		for _, m := range ex {
			f := m.Msg.(opMsg).F
			if m.Port == parentEdgePort {
				parentColor = []int64{f[1]}
			}
			for _, q := range childPorts {
				if m.Port == q {
					childColor = []int64{f[1]}
				}
			}
		}
		own := []int64{encOpt(parentColor), encOpt(childColor)}
		aggC, _ := p.upcast(own, mergeOptPair)
		if p.IsRoot() {
			pc, cc := int64(-1), int64(-1)
			if aggC != nil {
				pc, cc = aggC[0], aggC[1]
			}
			if isTRoot || pc < 0 {
				pc = syntheticParent(color)
			}
			color = compute(color, pc, cc)
		}
	}
	for it := 0; it < cvIterations; it++ {
		colorStep(func(cur, pc, _ int64) int64 { return cvStep(cur, pc) })
	}
	// Two shift-down + recolor passes eliminate colors 7 and 6.
	for _, target := range []int64{7, 6} {
		colorStep(func(cur, pc, _ int64) int64 {
			// Shift down: take the parent's color; the T-root picks a
			// fresh color from {0,1,2} different from its own.
			if isTRoot {
				return syntheticParent(cur)
			}
			return pc
		})
		colorStep(func(cur, pc, cc int64) int64 {
			if cur != target {
				return cur
			}
			for c := int64(0); c < 6; c++ {
				if c != pc && c != cc {
					return c
				}
			}
			return cur // unreachable
		})
	}
	// Distribute the final color.
	if fin := p.downcast(colorValIfRoot(&p.treeState, color), nil); fin != nil {
		color = fin[0]
	}

	// ---- Stage 2d: maximal matching of fragments along tree edges. ----
	matched := false
	fPorts := []int{} // my ports that carry F-edges (supergraph forest edges)
	for c := int64(0); c < 6; c++ {
		// m1: refresh members' matched flag.
		var mv []int64
		if p.IsRoot() {
			mv = []int64{b2i(matched)}
		}
		if d := p.downcast(mv, nil); d != nil {
			matched = d[0] == 1
		}
		// m2: exchange (rootID, matched).
		ex := p.adjacent(kRoot, []int64{p.rootID, b2i(matched)})
		nbrMatched := map[int]bool{}
		for _, m := range ex {
			f := m.Msg.(opMsg).F
			nbrMatched[m.Port] = f[1] == 1
		}
		// m3: upcast minimum unmatched-child edge (color-c fragments).
		var own []int64
		if !matched && color == c {
			for _, q := range childPorts {
				if nbrMatched[q] {
					continue
				}
				lo, hi := p.id, p.nbrID[q]
				if lo > hi {
					lo, hi = hi, lo
				}
				if own == nil || lo < own[0] || (lo == own[0] && hi < own[1]) {
					own = []int64{lo, hi}
				}
			}
		}
		aggE, _ := p.upcast(own, mergeMinEdge)
		// m4: downcast the chosen edge; choosing marks us matched.
		var pick []int64
		if p.IsRoot() && !matched && color == c && aggE != nil {
			pick = []int64{aggE[0], aggE[1]}
			matched = true
		}
		d := p.downcast(pick, nil)
		var pickPort = -1
		if d != nil {
			matched = true
			pickPort = p.edgePort(d[0], d[1])
			if pickPort >= 0 {
				// Only the endpoint whose port crosses to the child counts.
				found := false
				for _, q := range childPorts {
					if q == pickPort {
						found = true
					}
				}
				if !found {
					pickPort = -1
				}
			}
		}
		// m5: notify the chosen child across the edge.
		var note []int64
		if pickPort >= 0 {
			note = []int64{1}
			fPorts = append(fPorts, pickPort)
		}
		justMatched := -1
		for _, got := range p.adjacentTargeted(pickPort, note) {
			if got == parentEdgePort {
				// Our parent matched us through our parent edge.
				justMatched = got
				fPorts = append(fPorts, got)
			}
		}
		// m6: the newly matched child fragment informs its root.
		var up []int64
		if justMatched >= 0 {
			up = []int64{1}
		}
		aggJ, _ := p.upcast(up, mergeFirst)
		if p.IsRoot() && aggJ != nil {
			matched = true
		}
	}
	// Final matched-flag refresh.
	var mv []int64
	if p.IsRoot() {
		mv = []int64{b2i(matched)}
	}
	if d := p.downcast(mv, nil); d != nil {
		matched = d[0] == 1
	}

	// ---- Stage 2e: unmatched non-root fragments attach to parent. ----
	var attach []int64
	attachPort := -1
	if !matched && !isTRoot && parentEdgePort >= 0 {
		attachPort = parentEdgePort
		attach = []int64{1}
		fPorts = append(fPorts, parentEdgePort)
	}
	fPorts = append(fPorts, p.adjacentTargeted(attachPort, attach)...)

	// ---- Stage 2f: an unmatched T-root attaches to one child. ----
	var ownC []int64
	if !matched && isTRoot {
		for _, q := range childPorts {
			lo, hi := p.id, p.nbrID[q]
			if lo > hi {
				lo, hi = hi, lo
			}
			if ownC == nil || lo < ownC[0] || (lo == ownC[0] && hi < ownC[1]) {
				ownC = []int64{lo, hi}
			}
		}
	}
	aggC2, _ := p.upcast(ownC, mergeMinEdge)
	var pick2 []int64
	if p.IsRoot() && !matched && isTRoot && aggC2 != nil {
		pick2 = []int64{aggC2[0], aggC2[1]}
	}
	d2 := p.downcast(pick2, nil)
	pick2Port := -1
	if d2 != nil {
		if q := p.edgePort(d2[0], d2[1]); q >= 0 {
			for _, c := range childPorts {
				if c == q {
					pick2Port = q
					fPorts = append(fPorts, q)
				}
			}
		}
	}
	var note2 []int64
	if pick2Port >= 0 {
		note2 = []int64{1}
	}
	fPorts = append(fPorts, p.adjacentTargeted(pick2Port, note2)...)

	// ---- Stage 3: merge each small-depth tree around its minimum
	// fragment ID. ----
	fSet := map[int]bool{}
	for _, q := range fPorts {
		fSet[q] = true
	}
	coreID := p.rootID
	for it := 0; it < coreIters; it++ {
		ex := p.adjacent(kRoot, []int64{coreID})
		best := coreID
		for _, m := range ex {
			if !fSet[m.Port] {
				continue
			}
			if v := m.Msg.(opMsg).F[0]; v < best {
				best = v
			}
		}
		var up []int64
		if best < coreID {
			up = []int64{best}
		}
		aggM, _ := p.upcast(up, mergeMinVal)
		var dn []int64
		if p.IsRoot() {
			c := coreID
			if aggM != nil && aggM[0] < c {
				c = aggM[0]
			}
			dn = []int64{c}
		}
		if d := p.downcast(dn, nil); d != nil {
			coreID = d[0]
		}
	}

	for it := 0; it < coreIters; it++ {
		relabeled := p.rootID == coreID
		ex := p.adjacent(kRoot, []int64{b2i(relabeled), coreID, int64(p.depth)})
		var pend *pending
		if !relabeled {
			for _, m := range ex {
				if !fSet[m.Port] {
					continue
				}
				f := m.Msg.(opMsg).F
				if f[0] == 1 && f[1] == coreID {
					pend = &pending{
						rootID:   coreID,
						depth:    int(f[2]) + 1,
						parent:   m.Port,
						viaChild: -1,
					}
					break
				}
			}
		}
		// The far-side (relabeled) endpoint adopts the attaching node
		// as a child.
		if relabeled {
			for _, m := range ex {
				if !fSet[m.Port] {
					continue
				}
				f := m.Msg.(opMsg).F
				if f[0] == 0 {
					p.addChild(m.Port)
				}
			}
		}
		oldParent := p.parentPort
		pend = p.upRelabel(pend)
		pend = p.downRelabel(pend)
		p.applyPending(pend, oldParent)
	}
}

// adjacentTargeted runs a one-round exchange in which only the given
// port (if ≥ 0) is sent the payload; it returns every port a payload
// arrived on (several fragments may notify the same node at once).
func (p *Proc) adjacentTargeted(port int, payload []int64) []int {
	w := p.cur
	p.cur += spanAdjacent
	p.wake(w)
	if port >= 0 && payload != nil {
		p.ctx.Send(port, opMsg{Kind: kRoot, F: payload})
	}
	var got []int
	for _, m := range p.ctx.Deliver() {
		if om, ok := m.Msg.(opMsg); ok && om.Kind == kRoot {
			got = append(got, m.Port)
		}
	}
	return got
}

func colorValIfRoot(t *treeState, color int64) []int64 {
	if t.IsRoot() {
		return []int64{color}
	}
	return nil
}

// mergeFirst keeps the first non-nil upcast value.
func mergeFirst(acc, in []int64) []int64 {
	if acc == nil {
		return in
	}
	return acc
}

// mergeOptPair folds the (parent-color, child-color) optional pairs of
// the Cole–Vishkin color step, -1 encoding "absent".
func mergeOptPair(acc, in []int64) []int64 {
	if acc == nil {
		return in
	}
	out := []int64{acc[0], acc[1]}
	if out[0] < 0 {
		out[0] = in[0]
	}
	if out[1] < 0 {
		out[1] = in[1]
	}
	return out
}

// mergeMinVal keeps the minimum single upcast value.
func mergeMinVal(acc, in []int64) []int64 {
	if acc == nil || (in != nil && in[0] < acc[0]) {
		return in
	}
	return acc
}

// encOpt encodes an optional single-value slice as -1 for absent.
func encOpt(v []int64) int64 {
	if v == nil {
		return -1
	}
	return v[0]
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
