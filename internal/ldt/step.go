package ldt

// This file is the resumable-step form of the LDT session: SProc
// mirrors Proc primitive by primitive, but instead of blocking a
// dedicated goroutine at each wake point it registers continuations on
// a sim.Machine, so the whole session runs natively on the stepped
// engine's inline hot path. Every primitive stages exactly the same
// messages and wakes in exactly the same rounds as its goroutine
// original — the cross-form tests hold the two bit-identical.
//
// Conversion rules (see sim.Machine):
//   - each wake of the goroutine form becomes one Machine.Yield whose
//     send closure stages what the goroutine sent after waking (the
//     node is asleep in between, so the staged state is identical);
//   - code between two wakes runs inside the earlier wake's receive
//     continuation;
//   - a primitive that skips a conditional wake simply calls its
//     continuation without yielding.

import (
	"math/rand"

	"awakemis/internal/sim"
)

// SProc is a node's participation in one LDT session over a connected
// participant set of at most np nodes, in resumable-step form. The
// scheduling contract matches Proc: all participants construct their
// SProc with the same base round and np.
type SProc struct {
	treeState
	m   *sim.Machine
	rnd *rand.Rand
	cur int64 // next unallocated sim round
}

// NewSProc prepares a step-form LDT session starting at sim round base.
// The caller must be at the end of an awake round strictly before base
// (i.e. inside a Machine continuation). rnd is the node's private
// randomness stream (sim.NodeEnv.Rand).
func NewSProc(m *sim.Machine, rnd *rand.Rand, base int64, id int64, np int) *SProc {
	return &SProc{
		treeState: newTreeState(id, np),
		m:         m,
		rnd:       rnd,
		cur:       base,
	}
}

// Cursor returns the first sim round not consumed by the session so far.
func (p *SProc) Cursor() int64 { return p.cur }

// loopN runs body(i, next) for i = 0..n-1 in continuation-passing
// style, then k. Bodies must call next exactly once, in tail position.
func loopN(n int, body func(i int, next func()), k func()) {
	var it func(int)
	it = func(i int) {
		if i >= n {
			k()
			return
		}
		body(i, func() { it(i + 1) })
	}
	it(0)
}

// Hello runs the one-round participant discovery, then k.
func (p *SProc) Hello(k func()) {
	w := p.cur
	p.cur += spanAdjacent
	p.m.Yield(w, func(out *sim.Outbox) {
		out.Broadcast(opMsg{Kind: kHello, F: []int64{p.id}})
	}, func(in []sim.Inbound) {
		for _, m := range in {
			if om, ok := m.Msg.(opMsg); ok && om.Kind == kHello {
				p.active = append(p.active, m.Port)
				p.nbrID[m.Port] = om.F[0]
			}
		}
		k()
	})
}

// adjacent runs a one-round exchange among participants and hands k the
// inbox filtered to messages of the given kind.
func (p *SProc) adjacent(kind uint8, payload []int64, k func(in []sim.Inbound)) {
	w := p.cur
	p.cur += spanAdjacent
	p.m.Yield(w, func(out *sim.Outbox) {
		if payload != nil {
			for _, q := range p.active {
				out.Send(q, opMsg{Kind: kind, F: payload})
			}
		}
	}, func(in []sim.Inbound) {
		filtered := in[:0]
		for _, m := range in {
			if om, ok := m.Msg.(opMsg); ok && om.Kind == kind {
				filtered = append(filtered, m)
			}
		}
		k(filtered)
	})
}

// adjacentTargeted runs a one-round exchange in which only the given
// port (if ≥ 0) is sent the payload; k receives every port a payload
// arrived on.
func (p *SProc) adjacentTargeted(port int, payload []int64, k func(got []int)) {
	w := p.cur
	p.cur += spanAdjacent
	p.m.Yield(w, func(out *sim.Outbox) {
		if port >= 0 && payload != nil {
			out.Send(port, opMsg{Kind: kRoot, F: payload})
		}
	}, func(in []sim.Inbound) {
		var got []int
		for _, m := range in {
			if om, ok := m.Msg.(opMsg); ok && om.Kind == kRoot {
				got = append(got, m.Port)
			}
		}
		k(got)
	})
}

// upcast runs one upcast half-window (same offsets and conditional
// wakes as Proc.upcast), then k with the accumulated value and the
// per-port child values.
func (p *SProc) upcast(own []int64, merge func(acc, in []int64) []int64, k func(acc []int64, childVals map[int][]int64)) {
	w := p.cur
	p.cur += spanWindow(p.np)
	acc := own
	var childVals map[int][]int64
	sendUp := func() {
		if p.parentPort >= 0 && acc != nil {
			p.m.Yield(w+int64(p.np-p.depth), func(out *sim.Outbox) {
				out.Send(p.parentPort, opMsg{Kind: kUp, F: acc})
			}, func([]sim.Inbound) {
				k(acc, childVals)
			})
			return
		}
		k(acc, childVals)
	}
	if len(p.children) > 0 {
		p.m.Yield(w+int64(p.np-p.depth-1), nil, func(in []sim.Inbound) {
			childVals = map[int][]int64{}
			for _, m := range in {
				om, ok := m.Msg.(opMsg)
				if !ok || om.Kind != kUp {
					continue
				}
				childVals[m.Port] = om.F
				acc = merge(acc, om.F)
			}
			sendUp()
		})
		return
	}
	sendUp()
}

// downcast runs one downcast half-window (same offsets and conditional
// wakes as Proc.downcast), then k with the node's received value.
func (p *SProc) downcast(rootVal []int64, perChild func(mine []int64, port int) []int64, k func(mine []int64)) {
	w := p.cur
	p.cur += spanWindow(p.np)
	var mine []int64
	sendDown := func() {
		if len(p.children) > 0 && mine != nil {
			p.m.Yield(w+int64(p.depth), func(out *sim.Outbox) {
				for _, q := range p.children {
					v := mine
					if perChild != nil {
						v = perChild(mine, q)
					}
					if v != nil {
						out.Send(q, opMsg{Kind: kDown, F: v})
					}
				}
			}, func([]sim.Inbound) {
				k(mine)
			})
			return
		}
		k(mine)
	}
	if p.parentPort < 0 {
		mine = rootVal
		sendDown()
		return
	}
	p.m.Yield(w+int64(p.depth-1), nil, func(in []sim.Inbound) {
		for _, m := range in {
			if om, ok := m.Msg.(opMsg); ok && om.Kind == kDown && m.Port == p.parentPort {
				mine = om.F
			}
		}
		sendDown()
	})
}

// upRelabel runs the first relabel half-window, then k with the
// (possibly discovered) pending relabel.
func (p *SProc) upRelabel(pend *pending, k func(*pending)) {
	w := p.cur
	p.cur += spanWindow(p.np)
	send := func() {
		if pend != nil && p.parentPort >= 0 {
			p.m.Yield(w+int64(p.np-p.depth), func(out *sim.Outbox) {
				out.Send(p.parentPort, opMsg{Kind: kRelabel, F: []int64{pend.rootID, int64(pend.depth)}})
			}, func([]sim.Inbound) {
				k(pend)
			})
			return
		}
		k(pend)
	}
	if len(p.children) > 0 {
		p.m.Yield(w+int64(p.np-p.depth-1), nil, func(in []sim.Inbound) {
			for _, m := range in {
				om, ok := m.Msg.(opMsg)
				if !ok || om.Kind != kRelabel || pend != nil {
					continue
				}
				pend = &pending{
					rootID:   om.F[0],
					depth:    int(om.F[1]) + 1,
					parent:   m.Port,
					viaChild: m.Port,
				}
			}
			send()
		})
		return
	}
	send()
}

// downRelabel runs the second relabel half-window, then k.
func (p *SProc) downRelabel(pend *pending, k func(*pending)) {
	w := p.cur
	p.cur += spanWindow(p.np)
	send := func() {
		if len(p.children) > 0 && pend != nil {
			p.m.Yield(w+int64(p.depth), func(out *sim.Outbox) {
				for _, q := range p.children {
					out.Send(q, opMsg{Kind: kRelabel, F: []int64{pend.rootID, int64(pend.depth)}})
				}
			}, func([]sim.Inbound) {
				k(pend)
			})
			return
		}
		k(pend)
	}
	if p.parentPort >= 0 {
		p.m.Yield(w+int64(p.depth-1), nil, func(in []sim.Inbound) {
			for _, m := range in {
				om, ok := m.Msg.(opMsg)
				if !ok || om.Kind != kRelabel || m.Port != p.parentPort {
					continue
				}
				if pend == nil {
					pend = &pending{
						rootID:   om.F[0],
						depth:    int(om.F[1]) + 1,
						parent:   p.parentPort,
						viaChild: -1,
					}
				}
			}
			send()
		})
		return
	}
	send()
}

// Rank computes the node's rank and the exact tree size (step form of
// Proc.Rank), then k(rank, total).
func (p *SProc) Rank(k func(rank, total int)) {
	p.upcast([]int64{1}, func(acc, in []int64) []int64 {
		return []int64{acc[0] + in[0]}
	}, func(sizes []int64, childSizes map[int][]int64) {
		mySubtree := sizes[0]
		first := int64(0)
		if len(p.children) > 0 {
			first = childSizes[p.children[0]][0]
		}
		var seed []int64
		if p.IsRoot() {
			seed = []int64{0, mySubtree}
		}
		perChild := func(mine []int64, port int) []int64 {
			x := mine[0]
			if port == p.children[0] {
				return []int64{x, mine[1]}
			}
			off := x + first + 1
			for _, q := range p.children[1:] {
				if q == port {
					break
				}
				off += childSizes[q][0]
			}
			return []int64{off, mine[1]}
		}
		p.downcast(seed, perChild, func(got []int64) {
			if got == nil {
				// Singleton LDT (no parent, no children): seed stands.
				got = []int64{0, mySubtree}
			}
			k(int(got[0]+first+1), int(got[1]))
		})
	})
}

// BroadcastChunks ships a root payload to every node in numChunks
// downcast windows (step form of Proc.BroadcastChunks), then k with the
// reassembled payload bytes.
func (p *SProc) BroadcastChunks(payload []byte, payloadBits, chunkBits, numChunks int, k func(data []byte)) {
	acc := newBitAccum(payloadBits)
	loopN(numChunks, func(c int, next func()) {
		w := p.cur
		p.cur += spanWindow(p.np)
		var mine *chunkMsg
		forward := func() {
			finish := func() {
				if mine != nil && mine.NBits > 0 {
					acc.append(mine.Data, mine.NBits)
				}
				next()
			}
			if len(p.children) > 0 && mine != nil {
				p.m.Yield(w+int64(p.depth), func(ob *sim.Outbox) {
					for _, q := range p.children {
						ob.Send(q, *mine)
					}
				}, func([]sim.Inbound) {
					finish()
				})
				return
			}
			finish()
		}
		if p.IsRoot() {
			mine = rootChunk(payload, c, chunkBits, payloadBits)
			forward()
			return
		}
		p.m.Yield(w+int64(p.depth-1), nil, func(in []sim.Inbound) {
			for _, m := range in {
				if cm, ok := m.Msg.(chunkMsg); ok && m.Port == p.parentPort {
					cm := cm
					mine = &cm
				}
			}
			forward()
		})
	}, func() {
		k(acc.out)
	})
}
