// Package ldt implements Labeled Distance Trees (§5.2, Appendix A):
// oriented, depth-labeled spanning trees over a connected participant
// set, together with the awake-efficient tree procedures the paper
// builds on them — upcast, downcast (Fragment-Broadcast), adjacent
// exchange (Transmit-Adjacent), ranking, chunked root broadcasts — and
// two distributed constructions:
//
//   - ConstructAwake: a randomized fragment-merging construction with
//     O(log n′) awake complexity w.h.p. (substitute for Theorem 4 of
//     [Augustine–Moses–Pandurangan 2022], whose deterministic
//     construction lives in a different paper; see DESIGN.md §2).
//   - ConstructRound: the deterministic construction of Appendix A
//     (GHS-style fragment merging with Cole–Vishkin 6-coloring and
//     fragment matching), with O((log n′)·log* I) awake complexity.
//
// All procedures are scheduled as fixed windows of rounds derived from
// the known component-size bound np, so every participant computes the
// same timetable locally and sleeps outside its O(1) awake rounds per
// window — exactly the transmission-schedule idea of Appendix A.1
// (split here into an upcast half-window and a downcast half-window).
package ldt

import (
	"fmt"
	"math/bits"

	"awakemis/internal/bitio"
	"awakemis/internal/sim"
)

// Window spans: an adjacent exchange takes one round; a tree half-window
// (upcast, downcast, or relabel wave) takes np+1 rounds, indexed by
// depth offsets as described on each primitive.
const spanAdjacent = 1

func spanWindow(np int) int64 { return int64(np) + 1 }

// message kinds
const (
	kHello   uint8 = iota + 1
	kRoot          // adjacent: fragment identity (and phase payloads)
	kUp            // upcast value
	kDown          // downcast value
	kRelabel       // relabel wave value
	kChunk         // broadcast chunk
)

// opMsg is the general LDT control message: a kind tag plus up to a few
// small integer fields. Bits accounts 5 bits for the kind, 3 for the
// field count, and sign+magnitude for each field, keeping every control
// message within O(log I) bits.
type opMsg struct {
	Kind uint8
	F    []int64
}

// Bits implements sim.Message.
func (m opMsg) Bits() int {
	b := 5 + 3
	for _, f := range m.F {
		b += bitio.IntBits(f)
	}
	return b
}

// chunkMsg carries one chunk of a root broadcast payload.
type chunkMsg struct {
	Data  []byte
	NBits int
}

// Bits implements sim.Message.
func (m chunkMsg) Bits() int { return 8 + m.NBits }

var (
	_ sim.Message = opMsg{}
	_ sim.Message = chunkMsg{}
)

// treeState is the pure (communication-free) half of a node's LDT
// session: identity, discovered topology, and the oriented labeled
// tree. It is shared verbatim by the two procedural forms — the
// goroutine-form Proc and the step-form SProc — so the tree-mutation
// logic (relabeling, child bookkeeping, edge selection) exists exactly
// once and both forms stay bit-identical by construction.
type treeState struct {
	np int
	id int64 // unique node ID in [1, I]

	// Topology discovered by Hello.
	active []int         // ports to participants, ascending
	nbrID  map[int]int64 // port -> participant neighbor's ID

	// LDT state.
	rootID     int64
	depth      int
	parentPort int   // -1 at the root
	children   []int // ports, ascending
}

func newTreeState(id int64, np int) treeState {
	if np < 1 {
		panic(fmt.Sprintf("ldt: np=%d", np))
	}
	return treeState{
		np:         np,
		id:         id,
		nbrID:      map[int]int64{},
		rootID:     id,
		parentPort: -1,
	}
}

// ID returns the node's ID.
func (t *treeState) ID() int64 { return t.id }

// RootID returns the LDT identifier (the root's node ID).
func (t *treeState) RootID() int64 { return t.rootID }

// Depth returns the node's depth in the LDT.
func (t *treeState) Depth() int { return t.depth }

// IsRoot reports whether this node is the LDT root.
func (t *treeState) IsRoot() bool { return t.parentPort < 0 }

// Active returns the ports leading to participating neighbors.
func (t *treeState) Active() []int { return t.active }

// Proc is a node's participation in one LDT session over a connected
// participant set of at most np nodes, in goroutine form. All
// participants must construct their Proc with the same base round and
// np; the window cursor then advances identically everywhere, which is
// what synchronizes the schedule without communication.
type Proc struct {
	treeState
	ctx *sim.Ctx
	cur int64 // next unallocated sim round
}

// NewProc prepares an LDT session starting at sim round base. The
// caller must currently be in an awake round strictly before base.
func NewProc(ctx *sim.Ctx, base int64, id int64, np int) *Proc {
	return &Proc{
		treeState: newTreeState(id, np),
		ctx:       ctx,
		cur:       base,
	}
}

// Cursor returns the first sim round not consumed by the session so far.
func (p *Proc) Cursor() int64 { return p.cur }

// wake ends the current round and wakes at sim round r (r must exceed
// the current round, which the monotone window allocation guarantees).
func (p *Proc) wake(r int64) { p.ctx.SleepUntil(r) }

// Hello runs the one-round participant discovery: everyone broadcasts
// its ID on all ports; the awake senders are exactly the participants.
func (p *Proc) Hello() {
	w := p.cur
	p.cur += spanAdjacent
	p.wake(w)
	p.ctx.Broadcast(opMsg{Kind: kHello, F: []int64{p.id}})
	for _, m := range p.ctx.Deliver() {
		if om, ok := m.Msg.(opMsg); ok && om.Kind == kHello {
			p.active = append(p.active, m.Port)
			p.nbrID[m.Port] = om.F[0]
		}
	}
}

// adjacent runs a one-round exchange among participants: if payload is
// non-nil it is broadcast (with the given kind) on all active ports;
// the returned inbox holds messages of that kind only.
func (p *Proc) adjacent(kind uint8, payload []int64) []sim.Inbound {
	w := p.cur
	p.cur += spanAdjacent
	p.wake(w)
	if payload != nil {
		for _, q := range p.active {
			p.ctx.Send(q, opMsg{Kind: kind, F: payload})
		}
	}
	in := p.ctx.Deliver()
	out := in[:0]
	for _, m := range in {
		if om, ok := m.Msg.(opMsg); ok && om.Kind == kind {
			out = append(out, m)
		}
	}
	return out
}

// upcast runs one upcast half-window: a node at depth d listens for its
// children's values at offset np-d-1 and sends its merged value to its
// parent at offset np-d. own is the node's contribution (nil for
// none); merge folds child values into the accumulator. It returns the
// node's accumulated value (at the root: the tree-wide aggregate) and
// the per-port child values.
func (p *Proc) upcast(own []int64, merge func(acc, in []int64) []int64) ([]int64, map[int][]int64) {
	w := p.cur
	p.cur += spanWindow(p.np)
	acc := own
	var childVals map[int][]int64
	if len(p.children) > 0 {
		p.wake(w + int64(p.np-p.depth-1))
		childVals = map[int][]int64{}
		for _, m := range p.ctx.Deliver() {
			om, ok := m.Msg.(opMsg)
			if !ok || om.Kind != kUp {
				continue
			}
			childVals[m.Port] = om.F
			acc = merge(acc, om.F)
		}
	}
	if p.parentPort >= 0 && acc != nil {
		p.wake(w + int64(p.np-p.depth))
		p.ctx.Send(p.parentPort, opMsg{Kind: kUp, F: acc})
		p.ctx.Deliver()
	}
	return acc, childVals
}

// downcast runs one downcast half-window: a node at depth d receives
// its value from its parent at offset d-1 and sends per-child values at
// offset d. rootVal seeds the root; perChild derives what each child
// receives (nil perChild forwards the node's value unchanged). Nodes
// whose parent sends nothing receive nil and send nothing.
func (p *Proc) downcast(rootVal []int64, perChild func(mine []int64, port int) []int64) []int64 {
	w := p.cur
	p.cur += spanWindow(p.np)
	var mine []int64
	if p.parentPort < 0 {
		mine = rootVal
	} else {
		p.wake(w + int64(p.depth-1))
		for _, m := range p.ctx.Deliver() {
			if om, ok := m.Msg.(opMsg); ok && om.Kind == kDown && m.Port == p.parentPort {
				mine = om.F
			}
		}
	}
	if len(p.children) > 0 && mine != nil {
		p.wake(w + int64(p.depth))
		for _, q := range p.children {
			out := mine
			if perChild != nil {
				out = perChild(mine, q)
			}
			if out != nil {
				p.ctx.Send(q, opMsg{Kind: kDown, F: out})
			}
		}
		p.ctx.Deliver()
	}
	return mine
}

// pending carries a node's not-yet-applied relabeling after a merge:
// its new root ID, depth, parent port, and (for path nodes) the child
// port the wave arrived through.
type pending struct {
	rootID   int64
	depth    int
	parent   int
	viaChild int // -1 for non-path nodes and the attachment initiator
}

// upRelabel runs the first relabel half-window (Appendix A, stage 3b):
// the wave climbs from the attachment node to the old fragment root
// along old-depth offsets, reversing parent pointers. pend non-nil
// marks this node as the attachment initiator.
func (p *Proc) upRelabel(pend *pending) *pending {
	w := p.cur
	p.cur += spanWindow(p.np)
	if len(p.children) > 0 {
		p.wake(w + int64(p.np-p.depth-1))
		for _, m := range p.ctx.Deliver() {
			om, ok := m.Msg.(opMsg)
			if !ok || om.Kind != kRelabel || pend != nil {
				continue
			}
			pend = &pending{
				rootID:   om.F[0],
				depth:    int(om.F[1]) + 1,
				parent:   m.Port,
				viaChild: m.Port,
			}
		}
	}
	if pend != nil && p.parentPort >= 0 {
		p.wake(w + int64(p.np-p.depth))
		p.ctx.Send(p.parentPort, opMsg{Kind: kRelabel, F: []int64{pend.rootID, int64(pend.depth)}})
		p.ctx.Deliver()
	}
	return pend
}

// downRelabel runs the second relabel half-window: nodes off the
// reversal path learn their new root ID and depth from their (old)
// parent, along old-depth offsets.
func (p *Proc) downRelabel(pend *pending) *pending {
	w := p.cur
	p.cur += spanWindow(p.np)
	if p.parentPort >= 0 {
		p.wake(w + int64(p.depth-1))
		for _, m := range p.ctx.Deliver() {
			om, ok := m.Msg.(opMsg)
			if !ok || om.Kind != kRelabel || m.Port != p.parentPort {
				continue
			}
			if pend == nil {
				pend = &pending{
					rootID:   om.F[0],
					depth:    int(om.F[1]) + 1,
					parent:   p.parentPort,
					viaChild: -1,
				}
			}
		}
	}
	if len(p.children) > 0 && pend != nil {
		p.wake(w + int64(p.depth))
		for _, q := range p.children {
			p.ctx.Send(q, opMsg{Kind: kRelabel, F: []int64{pend.rootID, int64(pend.depth)}})
		}
		p.ctx.Deliver()
	}
	return pend
}

// applyPending installs a relabel: path nodes (viaChild >= 0) reverse
// orientation — the wave's child becomes the parent and the old parent
// becomes a child; the attachment initiator keeps its prepared external
// parent and gains its old parent as a child.
func (p *treeState) applyPending(pend *pending, oldParent int) {
	if pend == nil {
		return
	}
	p.rootID = pend.rootID
	p.depth = pend.depth
	if pend.viaChild >= 0 {
		p.removeChild(pend.viaChild)
		if oldParent >= 0 {
			p.addChild(oldParent)
		}
		p.parentPort = pend.viaChild
	} else if pend.parent != oldParent {
		// Attachment initiator: parent moves to the external port.
		if oldParent >= 0 {
			p.addChild(oldParent)
		}
		p.parentPort = pend.parent
	}
	// Non-path nodes (viaChild < 0, parent unchanged) keep orientation.
}

func (p *treeState) addChild(q int) {
	for i, c := range p.children {
		if c == q {
			return
		} else if c > q {
			p.children = append(p.children[:i], append([]int{q}, p.children[i:]...)...)
			return
		}
	}
	p.children = append(p.children, q)
}

func (p *treeState) removeChild(q int) {
	for i, c := range p.children {
		if c == q {
			p.children = append(p.children[:i], p.children[i+1:]...)
			return
		}
	}
}

// minEdge returns the node's minimum incident outgoing edge as
// (lo, hi) with respect to current fragment IDs, or nil if none.
func (p *treeState) minEdge(nbrRoot map[int]int64) []int64 {
	var best []int64
	for _, q := range p.active {
		r, ok := nbrRoot[q]
		if !ok || r == p.rootID {
			continue
		}
		lo, hi := p.id, p.nbrID[q]
		if lo > hi {
			lo, hi = hi, lo
		}
		if best == nil || lo < best[0] || (lo == best[0] && hi < best[1]) {
			best = []int64{lo, hi}
		}
	}
	return best
}

// edgePort returns the active port realizing edge (lo, hi) incident to
// this node, or -1.
func (p *treeState) edgePort(lo, hi int64) int {
	other := int64(-1)
	switch p.id {
	case lo:
		other = hi
	case hi:
		other = lo
	default:
		return -1
	}
	for _, q := range p.active {
		if p.nbrID[q] == other {
			return q
		}
	}
	return -1
}

// mergeMinEdge folds upcast min-edge values.
func mergeMinEdge(acc, in []int64) []int64 {
	if in == nil {
		return acc
	}
	if acc == nil || in[0] < acc[0] || (in[0] == acc[0] && in[1] < acc[1]) {
		return in
	}
	return acc
}

// log2ceil returns ⌈log₂ x⌉ for x ≥ 1.
func log2ceil(x int) int {
	if x <= 1 {
		return 0
	}
	return bits.Len(uint(x - 1))
}
