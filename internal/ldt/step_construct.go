package ldt

// Step forms of the two LDT constructions: line-for-line CPS
// transcriptions of Proc.ConstructAwake and Proc.ConstructRound in
// construct.go. Every wake, message, and RNG draw happens at the same
// sequential point as in the goroutine originals, which is what keeps
// the two forms bit-identical (the cross-form tests assert it). When
// changing one form, change the other in lockstep.

import "awakemis/internal/sim"

// ConstructAwake runs the randomized construction for the given number
// of phases (step form of Proc.ConstructAwake), then k.
func (p *SProc) ConstructAwake(phases int, k func()) {
	loopN(phases, func(_ int, next func()) {
		// (a) Exchange fragment IDs with neighbors.
		p.adjacent(kRoot, []int64{p.rootID}, func(in []sim.Inbound) {
			nbrRoot := map[int]int64{}
			for _, m := range in {
				nbrRoot[m.Port] = m.Msg.(opMsg).F[0]
			}

			// (b) Upcast the fragment's minimum outgoing edge.
			p.upcast(p.minEdge(nbrRoot), mergeMinEdge, func(agg []int64, _ map[int][]int64) {
				// (c) Root draws the phase coin and broadcasts (edge, coin).
				var down []int64
				if p.IsRoot() {
					if agg != nil {
						down = []int64{agg[0], agg[1], int64(p.rnd.Intn(2))}
					}
					// No outgoing edge: component complete; broadcast nothing.
				}
				p.downcast(down, nil, func(dec []int64) {
					var chosenLo, chosenHi, coin int64 = -1, -1, 0
					if dec != nil {
						chosenLo, chosenHi, coin = dec[0], dec[1], dec[2]
					}

					// (d) Endpoint exchange across fragment boundaries: everyone
					// announces (rootID, coin, depth, chosenLo, chosenHi).
					ann := []int64{p.rootID, coin, int64(p.depth), chosenLo, chosenHi}
					p.adjacent(kRoot, ann, func(in []sim.Inbound) {
						var pend *pending
						myPort := -1
						if chosenLo >= 0 {
							myPort = p.edgePort(chosenLo, chosenHi)
						}
						for _, m := range in {
							f := m.Msg.(opMsg).F
							nRoot, nCoin, nDepth, nLo, nHi := f[0], f[1], f[2], f[3], f[4]
							if nRoot == p.rootID {
								continue
							}
							// Tails fragment attaches through its chosen edge into a
							// heads fragment.
							if coin == 0 && m.Port == myPort && nCoin == 1 {
								pend = &pending{
									rootID:   nRoot,
									depth:    int(nDepth) + 1,
									parent:   m.Port,
									viaChild: -1,
								}
							}
							// Heads side: a tails neighbor whose chosen edge is this
							// edge becomes a child.
							if coin == 1 && nCoin == 0 && nLo >= 0 {
								if q := p.edgePort(nLo, nHi); q == m.Port {
									p.addChild(m.Port)
								}
							}
						}

						// (e) Relabel the merging fragment.
						oldParent := p.parentPort
						p.upRelabel(pend, func(pend *pending) {
							p.downRelabel(pend, func(pend *pending) {
								p.applyPending(pend, oldParent)
								next()
							})
						})
					})
				})
			})
		})
	}, k)
}

// ConstructRound runs the deterministic Appendix A construction (step
// form of Proc.ConstructRound), then k.
func (p *SProc) ConstructRound(phases int, k func()) {
	loopN(phases, func(_ int, next func()) {
		p.constructRoundPhaseStep(next)
	}, k)
}

func (p *SProc) constructRoundPhaseStep(done func()) {
	// Phase state shared by the stage continuations, mirroring the
	// locals of Proc.constructRoundPhase.
	var (
		nbrRoot        map[int]int64
		nbrChosen      map[int][2]int64
		chosenLo       int64 = -1
		chosenHi       int64 = -1
		parentEdgePort       = -1
		childPorts     []int
		isTRoot        bool
		color          int64
		matched        bool
		fPorts         []int
	)
	var stage2a, stage2c, stage2d, stage2e, stage2f, stage3 func()

	// colorStep: one Cole–Vishkin mini-step (downcast current color,
	// adjacent exchange, upcast parent/child colors, root recomputes).
	colorStep := func(compute func(cur, parentColor, childColor int64) int64, then func()) {
		p.downcast(colorValIfRoot(&p.treeState, color), nil, func(cur []int64) {
			if cur != nil {
				color = cur[0]
			}
			p.adjacent(kRoot, []int64{p.rootID, color}, func(ex []sim.Inbound) {
				var parentColor, childColor []int64
				for _, m := range ex {
					f := m.Msg.(opMsg).F
					if m.Port == parentEdgePort {
						parentColor = []int64{f[1]}
					}
					for _, q := range childPorts {
						if m.Port == q {
							childColor = []int64{f[1]}
						}
					}
				}
				own := []int64{encOpt(parentColor), encOpt(childColor)}
				p.upcast(own, mergeOptPair, func(aggC []int64, _ map[int][]int64) {
					if p.IsRoot() {
						pc, cc := int64(-1), int64(-1)
						if aggC != nil {
							pc, cc = aggC[0], aggC[1]
						}
						if isTRoot || pc < 0 {
							pc = syntheticParent(color)
						}
						color = compute(color, pc, cc)
					}
					then()
				})
			})
		})
	}

	// ---- Stage 1: minimum outgoing edge, known to all members. ----
	stage1 := func() {
		p.adjacent(kRoot, []int64{p.rootID}, func(in []sim.Inbound) {
			nbrRoot = map[int]int64{}
			for _, m := range in {
				nbrRoot[m.Port] = m.Msg.(opMsg).F[0]
			}
			p.upcast(p.minEdge(nbrRoot), mergeMinEdge, func(agg []int64, _ map[int][]int64) {
				var down []int64
				if p.IsRoot() && agg != nil {
					down = []int64{agg[0], agg[1]}
				}
				p.downcast(down, nil, func(dec []int64) {
					if dec != nil {
						chosenLo, chosenHi = dec[0], dec[1]
					}
					if chosenLo >= 0 {
						parentEdgePort = p.edgePort(chosenLo, chosenHi)
					}

					// Endpoint exchange: (rootID, chosenLo, chosenHi).
					p.adjacent(kRoot, []int64{p.rootID, chosenLo, chosenHi}, func(in []sim.Inbound) {
						nbrChosen = map[int][2]int64{}
						for _, m := range in {
							f := m.Msg.(opMsg).F
							nbrChosen[m.Port] = [2]int64{f[1], f[2]}
						}
						// childPorts: ports whose neighbor fragment chose the edge to us.
						childPorts = []int{}
						for _, q := range p.active {
							if nbrRoot[q] == p.rootID {
								continue
							}
							ch, ok := nbrChosen[q]
							if !ok || ch[0] < 0 {
								continue
							}
							if p.edgePort(ch[0], ch[1]) == q {
								childPorts = append(childPorts, q)
							}
						}
						stage2a()
					})
				})
			})
		})
	}

	// ---- Stage 2a: identify the supergraph-tree root fragment. ----
	stage2a = func() {
		var mutual []int64 // [otherRootID]
		if parentEdgePort >= 0 {
			if ch, ok := nbrChosen[parentEdgePort]; ok && ch == [2]int64{chosenLo, chosenHi} {
				mutual = []int64{nbrRoot[parentEdgePort]}
			}
		}
		p.upcast(mutual, mergeFirst, func(aggMut []int64, _ map[int][]int64) {
			var tFlag []int64
			if p.IsRoot() {
				isTR := int64(0)
				if chosenLo < 0 {
					isTR = 1 // no outgoing edge: fragment is alone, trivially root
				} else if aggMut != nil && p.rootID < aggMut[0] {
					isTR = 1
				}
				tFlag = []int64{isTR}
			}
			p.downcast(tFlag, nil, func(flag []int64) {
				isTRoot = flag != nil && flag[0] == 1
				stage2c()
			})
		})
	}

	// ---- Stage 2c: Cole–Vishkin 6-coloring of fragments. ----
	stage2c = func() {
		color = p.rootID
		loopN(cvIterations, func(_ int, nextIt func()) {
			colorStep(func(cur, pc, _ int64) int64 { return cvStep(cur, pc) }, nextIt)
		}, func() {
			// Two shift-down + recolor passes eliminate colors 7 and 6.
			targets := []int64{7, 6}
			loopN(len(targets), func(ti int, nextT func()) {
				target := targets[ti]
				colorStep(func(cur, pc, _ int64) int64 {
					// Shift down: take the parent's color; the T-root picks a
					// fresh color from {0,1,2} different from its own.
					if isTRoot {
						return syntheticParent(cur)
					}
					return pc
				}, func() {
					colorStep(func(cur, pc, cc int64) int64 {
						if cur != target {
							return cur
						}
						for c := int64(0); c < 6; c++ {
							if c != pc && c != cc {
								return c
							}
						}
						return cur // unreachable
					}, nextT)
				})
			}, func() {
				// Distribute the final color.
				p.downcast(colorValIfRoot(&p.treeState, color), nil, func(fin []int64) {
					if fin != nil {
						color = fin[0]
					}
					stage2d()
				})
			})
		})
	}

	// ---- Stage 2d: maximal matching of fragments along tree edges. ----
	stage2d = func() {
		matched = false
		fPorts = []int{} // my ports that carry F-edges (supergraph forest edges)
		loopN(6, func(ci int, nextC func()) {
			c := int64(ci)
			// m1: refresh members' matched flag.
			var mv []int64
			if p.IsRoot() {
				mv = []int64{b2i(matched)}
			}
			p.downcast(mv, nil, func(d []int64) {
				if d != nil {
					matched = d[0] == 1
				}
				// m2: exchange (rootID, matched).
				p.adjacent(kRoot, []int64{p.rootID, b2i(matched)}, func(ex []sim.Inbound) {
					nbrMatched := map[int]bool{}
					for _, m := range ex {
						f := m.Msg.(opMsg).F
						nbrMatched[m.Port] = f[1] == 1
					}
					// m3: upcast minimum unmatched-child edge (color-c fragments).
					var own []int64
					if !matched && color == c {
						for _, q := range childPorts {
							if nbrMatched[q] {
								continue
							}
							lo, hi := p.id, p.nbrID[q]
							if lo > hi {
								lo, hi = hi, lo
							}
							if own == nil || lo < own[0] || (lo == own[0] && hi < own[1]) {
								own = []int64{lo, hi}
							}
						}
					}
					p.upcast(own, mergeMinEdge, func(aggE []int64, _ map[int][]int64) {
						// m4: downcast the chosen edge; choosing marks us matched.
						var pick []int64
						if p.IsRoot() && !matched && color == c && aggE != nil {
							pick = []int64{aggE[0], aggE[1]}
							matched = true
						}
						p.downcast(pick, nil, func(d []int64) {
							pickPort := -1
							if d != nil {
								matched = true
								pickPort = p.edgePort(d[0], d[1])
								if pickPort >= 0 {
									// Only the endpoint whose port crosses to the child counts.
									found := false
									for _, q := range childPorts {
										if q == pickPort {
											found = true
										}
									}
									if !found {
										pickPort = -1
									}
								}
							}
							// m5: notify the chosen child across the edge.
							var note []int64
							if pickPort >= 0 {
								note = []int64{1}
								fPorts = append(fPorts, pickPort)
							}
							p.adjacentTargeted(pickPort, note, func(got []int) {
								justMatched := -1
								for _, g := range got {
									if g == parentEdgePort {
										// Our parent matched us through our parent edge.
										justMatched = g
										fPorts = append(fPorts, g)
									}
								}
								// m6: the newly matched child fragment informs its root.
								var up []int64
								if justMatched >= 0 {
									up = []int64{1}
								}
								p.upcast(up, mergeFirst, func(aggJ []int64, _ map[int][]int64) {
									if p.IsRoot() && aggJ != nil {
										matched = true
									}
									nextC()
								})
							})
						})
					})
				})
			})
		}, func() {
			// Final matched-flag refresh.
			var mv []int64
			if p.IsRoot() {
				mv = []int64{b2i(matched)}
			}
			p.downcast(mv, nil, func(d []int64) {
				if d != nil {
					matched = d[0] == 1
				}
				stage2e()
			})
		})
	}

	// ---- Stage 2e: unmatched non-root fragments attach to parent. ----
	stage2e = func() {
		var attach []int64
		attachPort := -1
		if !matched && !isTRoot && parentEdgePort >= 0 {
			attachPort = parentEdgePort
			attach = []int64{1}
			fPorts = append(fPorts, parentEdgePort)
		}
		p.adjacentTargeted(attachPort, attach, func(got []int) {
			fPorts = append(fPorts, got...)
			stage2f()
		})
	}

	// ---- Stage 2f: an unmatched T-root attaches to one child. ----
	stage2f = func() {
		var ownC []int64
		if !matched && isTRoot {
			for _, q := range childPorts {
				lo, hi := p.id, p.nbrID[q]
				if lo > hi {
					lo, hi = hi, lo
				}
				if ownC == nil || lo < ownC[0] || (lo == ownC[0] && hi < ownC[1]) {
					ownC = []int64{lo, hi}
				}
			}
		}
		p.upcast(ownC, mergeMinEdge, func(aggC2 []int64, _ map[int][]int64) {
			var pick2 []int64
			if p.IsRoot() && !matched && isTRoot && aggC2 != nil {
				pick2 = []int64{aggC2[0], aggC2[1]}
			}
			p.downcast(pick2, nil, func(d2 []int64) {
				pick2Port := -1
				if d2 != nil {
					if q := p.edgePort(d2[0], d2[1]); q >= 0 {
						for _, c := range childPorts {
							if c == q {
								pick2Port = q
								fPorts = append(fPorts, q)
							}
						}
					}
				}
				var note2 []int64
				if pick2Port >= 0 {
					note2 = []int64{1}
				}
				p.adjacentTargeted(pick2Port, note2, func(got []int) {
					fPorts = append(fPorts, got...)
					stage3()
				})
			})
		})
	}

	// ---- Stage 3: merge each small-depth tree around its minimum
	// fragment ID. ----
	stage3 = func() {
		fSet := map[int]bool{}
		for _, q := range fPorts {
			fSet[q] = true
		}
		coreID := p.rootID
		loopN(coreIters, func(_ int, nextIt func()) {
			p.adjacent(kRoot, []int64{coreID}, func(ex []sim.Inbound) {
				best := coreID
				for _, m := range ex {
					if !fSet[m.Port] {
						continue
					}
					if v := m.Msg.(opMsg).F[0]; v < best {
						best = v
					}
				}
				var up []int64
				if best < coreID {
					up = []int64{best}
				}
				p.upcast(up, mergeMinVal, func(aggM []int64, _ map[int][]int64) {
					var dn []int64
					if p.IsRoot() {
						c := coreID
						if aggM != nil && aggM[0] < c {
							c = aggM[0]
						}
						dn = []int64{c}
					}
					p.downcast(dn, nil, func(d []int64) {
						if d != nil {
							coreID = d[0]
						}
						nextIt()
					})
				})
			})
		}, func() {
			loopN(coreIters, func(_ int, nextIt func()) {
				relabeled := p.rootID == coreID
				p.adjacent(kRoot, []int64{b2i(relabeled), coreID, int64(p.depth)}, func(ex []sim.Inbound) {
					var pend *pending
					if !relabeled {
						for _, m := range ex {
							if !fSet[m.Port] {
								continue
							}
							f := m.Msg.(opMsg).F
							if f[0] == 1 && f[1] == coreID {
								pend = &pending{
									rootID:   coreID,
									depth:    int(f[2]) + 1,
									parent:   m.Port,
									viaChild: -1,
								}
								break
							}
						}
					}
					// The far-side (relabeled) endpoint adopts the attaching node
					// as a child.
					if relabeled {
						for _, m := range ex {
							if !fSet[m.Port] {
								continue
							}
							f := m.Msg.(opMsg).F
							if f[0] == 0 {
								p.addChild(m.Port)
							}
						}
					}
					oldParent := p.parentPort
					p.upRelabel(pend, func(pend *pending) {
						p.downRelabel(pend, func(pend *pending) {
							p.applyPending(pend, oldParent)
							nextIt()
						})
					})
				})
			}, done)
		})
	}

	stage1()
}
