// Package expt is the experiment harness: it regenerates, as printed
// tables, the quantitative content of every theorem, lemma, and figure
// of the paper (the experiment index in DESIGN.md §4 and the recorded
// results in EXPERIMENTS.md). Each experiment validates its outputs
// against the verify oracles before reporting numbers.
package expt

import (
	"context"
	"fmt"
	"io"
	"math"
	"math/rand"
	"strings"

	"awakemis"
	"awakemis/internal/core"
	"awakemis/internal/graph"
	"awakemis/internal/greedy"
	"awakemis/internal/ldtmis"
	"awakemis/internal/luby"
	"awakemis/internal/rng"
	"awakemis/internal/sim"
	"awakemis/internal/stats"
	"awakemis/internal/verify"
	"awakemis/internal/vtmis"
	"awakemis/internal/vtree"
)

// Options configures a harness run.
type Options struct {
	// Seed makes the whole suite reproducible.
	Seed int64
	// Sizes is the n sweep; nil means the default sweep.
	Sizes []int
	// Trials per configuration; 0 means 3.
	Trials int
	// Quick shrinks sweeps for CI-speed runs.
	Quick bool
	// Engine runs every simulation on a named engine ("" means the
	// default stepped engine; see sim.EngineByName). Results are
	// engine-independent; this knob exists for benchmarking and
	// cross-checking. Experiments reject unknown names up front.
	Engine string
	// Workers caps the stepped engine's worker pool (0 = one per CPU).
	Workers int
	// Context cancels the whole suite: experiments poll it at round
	// boundaries and between runs. Nil means context.Background().
	Context context.Context
}

// ctx returns the harness context.
func (o Options) ctx() context.Context {
	if o.Context != nil {
		return o.Context
	}
	return context.Background()
}

// simConfig applies the harness-wide engine selection to one run's
// configuration.
func (o Options) simConfig(cfg sim.Config) sim.Config {
	if eng, err := sim.EngineByName(o.Engine, o.Workers); err == nil {
		cfg.Engine = eng
	}
	return cfg
}

func (o Options) withDefaults() Options {
	if o.Trials == 0 {
		o.Trials = 3
	}
	if len(o.Sizes) == 0 {
		if o.Quick {
			o.Sizes = []int{64, 256}
		} else {
			o.Sizes = []int{64, 256, 1024, 4096}
		}
	}
	return o
}

// Experiment is one reproducible experiment.
type Experiment struct {
	ID    string
	Title string
	Run   func(o Options, w io.Writer) error
}

// All returns every experiment in index order. Each experiment
// validates Options.Engine up front: an unknown engine name is an
// error, never a silent fallback to the default engine.
func All() []Experiment {
	list := experiments()
	for i := range list {
		run := list[i].Run
		list[i].Run = func(o Options, w io.Writer) error {
			if _, err := sim.EngineByName(o.Engine, o.Workers); err != nil {
				return err
			}
			return run(o, w)
		}
	}
	return list
}

func experiments() []Experiment {
	return []Experiment{
		{"f1", "Figure 1: virtual binary trees B([1,6]) and B*([1,6])", runF1},
		{"f2", "Figure 2: communication sets S3([1,6]), S5([1,6])", runF2},
		{"e1", "Theorem 13: Awake-MIS awake complexity vs n", runE1},
		{"e2", "Corollary 14: Awake-MIS round-variant vs n", runE2},
		{"e3", "Lemma 10: VT-MIS awake complexity vs ID bound I", runE3},
		{"e4", "Lemma 11: LDT-MIS awake complexity vs component size", runE4},
		{"e5", "Lemma 2: residual sparsity after greedy prefix", runE5},
		{"e6", "Lemma 3: graph shattering component sizes", runE6},
		{"e7", "Headline comparison: awake/round trade across algorithms", runE7},
		{"e8", "Node-averaged awake complexity (cf. §2 prior work)", runE8},
		{"e9", "Lemma 9/16: LDT construction and O(1)-awake operations", runE9},
		{"e10", "Ablation: Awake-MIS constants (C1, Δ', NP)", runE10},
		{"e11", "§7 extension: (Δ+1)-coloring in O(log I) awake", runE11},
		{"e12", "§7 extension: maximal matching with early-exit awake", runE12},
	}
}

// ByID finds an experiment.
func ByID(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// workload builds the standard experiment graph for a size.
func workload(n int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	return graph.GNP(n, 4/float64(n), rng)
}

func runF1(o Options, w io.Writer) error {
	tr := vtree.Build(6)
	fmt.Fprintln(w, "B([1,6]) in-order labels (level order):", tr.BLabel)
	fmt.Fprintln(w, "B*([1,6]) labels g(x)=⌊x/2⌋+1 (level order):", tr.StarLabel)
	fmt.Fprintln(w, "paper Figure 1 root row: B root=8, B* root=5  ✓ reproduced")
	return nil
}

func runF2(o Options, w io.Writer) error {
	fmt.Fprintln(w, "S3([1,6]) =", vtree.CommSet(3, 6), "(paper: {3,4,5})")
	fmt.Fprintln(w, "S5([1,6]) =", vtree.CommSet(5, 6), "(paper: {5,6}; 7 clipped at I=6)")
	fmt.Fprintln(w, "shared round for IDs 3 < 5:", vtree.SharedRound(3, 5, 6), "(paper: 5)")
	return nil
}

// sweepMIS runs an algorithm over the size sweep and prints the table.
func sweepMIS(o Options, w io.Writer, name string,
	run func(g *graph.Graph, n int, seed int64) (*sim.Metrics, []bool, error)) error {
	o = o.withDefaults()
	tb := &stats.Table{Header: []string{"n", "maxAwake", "avgAwake", "rounds", "execRounds", "messages"}}
	var xs, ys []float64
	for _, n := range o.Sizes {
		var maxAwake, avg, rounds, exec, msgs []float64
		for trial := 0; trial < o.Trials; trial++ {
			seed := o.Seed + int64(1000*n+trial)
			g := workload(n, seed)
			m, in, err := run(g, n, seed)
			if err != nil {
				return fmt.Errorf("%s n=%d: %w", name, n, err)
			}
			if err := verify.CheckMIS(g, in); err != nil {
				return fmt.Errorf("%s n=%d: %w", name, n, err)
			}
			maxAwake = append(maxAwake, float64(m.MaxAwake))
			avg = append(avg, m.AvgAwake())
			rounds = append(rounds, float64(m.Rounds))
			exec = append(exec, float64(m.ExecutedRounds))
			msgs = append(msgs, float64(m.MessagesSent))
		}
		tb.Add(n, stats.Summarize(maxAwake).Mean, stats.Summarize(avg).Mean,
			stats.Summarize(rounds).Mean, stats.Summarize(exec).Mean, stats.Summarize(msgs).Mean)
		xs = append(xs, float64(n))
		ys = append(ys, stats.Summarize(maxAwake).Mean)
	}
	fmt.Fprint(w, tb)
	fit := stats.FitGrowth(xs, ys)
	fmt.Fprintf(w, "max-awake growth fit: %s (R²=%.3f); growth ratio %.2fx over sweep\n",
		fit.Model, fit.R2, stats.GrowthRatio(ys))
	return nil
}

// runStudySweep runs tasks × sizes through the public study engine —
// the declarative replacement for this package's historical private
// sweep loops. The study expands into Runner-backed concurrent specs,
// aggregates per cell, and fits growth models with bootstrap CIs;
// output verification happens inside RunTask as always.
func runStudySweep(o Options, w io.Writer, tasks []string, sizes []int) error {
	o = o.withDefaults()
	if sizes == nil {
		sizes = o.Sizes
	}
	ss := awakemis.StudySpec{
		Name:    "expt/" + strings.Join(tasks, "+"),
		Tasks:   tasks,
		Sizes:   sizes,
		Engines: []awakemis.Engine{awakemis.Engine(o.Engine)},
		Trials:  o.Trials,
		Seed:    o.Seed,
		Options: awakemis.Options{Strict: true},
	}
	runner := &awakemis.StudyRunner{Workers: o.Workers}
	res, err := runner.Run(o.ctx(), ss)
	if err != nil {
		return err
	}
	printStudy(w, res)
	return nil
}

// printStudy renders a study artifact as the harness's usual fixed
// width table plus one growth-fit line per task.
func printStudy(w io.Writer, res *awakemis.StudyResult) {
	tb := &stats.Table{Header: []string{"task", "n", "maxAwake", "±std", "avgAwake", "rounds", "execRounds", "messages"}}
	for _, c := range res.Cells {
		m := c.Metrics
		tb.Add(c.Task, c.N, m["max_awake"].Mean, m["max_awake"].Std, m["avg_awake"].Mean,
			m["rounds"].Mean, m["executed_rounds"].Mean, m["messages_sent"].Mean)
	}
	fmt.Fprint(w, tb)
	for _, f := range res.Fits {
		if f.Metric != "max_awake" {
			continue
		}
		fmt.Fprintf(w, "%-14s max-awake growth: %-9s (R²=%.3f, B∈[%.2f, %.2f], margin %.3f over %s)\n",
			f.Task, f.Model, f.R2, f.BLo, f.BHi, f.Margin, f.RunnerUp)
	}
}

// runE1 reproduces the Theorem 13 n-sweep through the study engine:
// the table is exactly a one-task study over the size axis.
func runE1(o Options, w io.Writer) error {
	fmt.Fprintln(w, "Awake-MIS (Theorem 13). Expected shape: max awake ~O(log log n) — nearly flat.")
	return runStudySweep(o, w, []string{"awake-mis"}, nil)
}

func runE2(o Options, w io.Writer) error {
	fmt.Fprintln(w, "Awake-MIS round variant (Corollary 14, deterministic LDT construction).")
	fmt.Fprintln(w, "Note: with the randomized ConstructAwake substitution (DESIGN.md §2),")
	fmt.Fprintln(w, "the paper's round-complexity advantage of this variant inverts; awake stays O(log log n)·log* n.")
	return sweepMIS(o, w, "awake-mis-round", func(g *graph.Graph, n int, seed int64) (*sim.Metrics, []bool, error) {
		res, m, err := core.RunContext(o.ctx(), g, core.Params{Variant: ldtmis.VariantRound},
			o.simConfig(sim.Config{Seed: seed, Strict: true}))
		if err != nil {
			return nil, nil, err
		}
		return m, res.InMIS, nil
	})
}

func runE3(o Options, w io.Writer) error {
	o = o.withDefaults()
	fmt.Fprintln(w, "VT-MIS (Lemma 10): awake ≤ ⌈log I⌉+1 (+1 model round), rounds ≤ I.")
	tb := &stats.Table{Header: []string{"I", "n", "maxAwake", "bound ⌈log I⌉+2", "rounds"}}
	for _, n := range o.Sizes {
		for _, factor := range []int{1, 16} {
			idBound := n * factor
			seed := o.Seed + int64(idBound)
			g := workload(n, seed)
			// The ID permutation draws from its own derived stream, never
			// the raw seed the graph generator consumed.
			perm := rand.New(rand.NewSource(rng.Derive(seed, "perm-ids", 0))).Perm(idBound)[:n]
			ids := make([]int, n)
			for v := range ids {
				ids[v] = perm[v] + 1
			}
			res, m, err := vtmis.RunContext(o.ctx(), g, ids, idBound, o.simConfig(sim.Config{Seed: seed, Strict: true}))
			if err != nil {
				return err
			}
			if err := verify.CheckMIS(g, res.InMIS); err != nil {
				return err
			}
			tb.Add(idBound, n, m.MaxAwake, vtree.Depth(idBound)+2, m.Rounds)
		}
	}
	fmt.Fprint(w, tb)
	return nil
}

func runE4(o Options, w io.Writer) error {
	o = o.withDefaults()
	fmt.Fprintln(w, "LDT-MIS (Lemma 11): awake O(log n′ + n′·log n′ / log I), independent of the 2⁴⁰ ID space.")
	tb := &stats.Table{Header: []string{"n'", "variant", "maxAwake", "rounds", "messages"}}
	sizes := []int{8, 16, 32, 64}
	if o.Quick {
		sizes = []int{8, 16}
	}
	for _, np := range sizes {
		for _, v := range []ldtmis.Variant{ldtmis.VariantAwake, ldtmis.VariantRound} {
			seed := o.Seed + int64(np) + int64(v)
			g := graph.Cycle(np)
			ids := rng.IDs40(np, seed)
			res, m, err := ldtmis.RunContext(o.ctx(), g, ids, np, v, o.simConfig(sim.Config{Seed: seed, N: 1 << 16, Strict: true}))
			if err != nil {
				return err
			}
			if err := verify.CheckMIS(g, res.InMIS); err != nil {
				return err
			}
			tb.Add(np, v.String(), m.MaxAwake, m.Rounds, m.MessagesSent)
		}
	}
	fmt.Fprint(w, tb)
	return nil
}

func runE5(o Options, w io.Writer) error {
	o = o.withDefaults()
	fmt.Fprintln(w, "Residual sparsity (Lemma 2): max degree of G[V_t' \\ N(M_t)] vs (t'/t)·ln(n/ε), ε=1/n.")
	tb := &stats.Table{Header: []string{"n", "t", "t'", "residual maxDeg", "bound"}}
	n := o.Sizes[len(o.Sizes)-1]
	if n < 256 {
		n = 256
	}
	rng := rand.New(rand.NewSource(o.Seed + 5))
	for trial := 0; trial < o.Trials; trial++ {
		g := graph.GNP(n, 8/float64(n), rng)
		order := rng.Perm(n)
		for _, tc := range []struct{ t, tp int }{{n / 16, n / 4}, {n / 8, n}, {n / 4, n}} {
			got := greedy.ResidualMaxDegree(g, order, tc.t, tc.tp)
			bound := float64(tc.tp) / float64(tc.t) * 2 * math.Log(float64(n))
			if float64(got) > bound {
				return fmt.Errorf("lemma 2 violated: deg %d > bound %.1f", got, bound)
			}
			tb.Add(n, tc.t, tc.tp, got, bound)
		}
	}
	fmt.Fprint(w, tb)
	return nil
}

func runE6(o Options, w io.Writer) error {
	o = o.withDefaults()
	fmt.Fprintln(w, "Shattering (Lemma 3): max component of H[U_j] over 2Δ random classes vs 6·ln(n/ε), ε=1/n.")
	tb := &stats.Table{Header: []string{"n", "Δ", "max component", "bound 12·ln n"}}
	rng := rand.New(rand.NewSource(o.Seed + 6))
	for _, n := range o.Sizes {
		for _, d := range []int{4, 8} {
			if d >= n {
				continue
			}
			h := graph.RandomRegular(n, d, rng)
			sizes := greedy.Shatter(h, rng)
			got := greedy.MaxShatteredComponent(sizes)
			bound := 12 * math.Log(float64(n))
			if float64(got) > bound {
				return fmt.Errorf("lemma 3 violated: component %d > bound %.1f", got, bound)
			}
			tb.Add(n, h.MaxDegree(), got, bound)
		}
	}
	fmt.Fprint(w, tb)
	return nil
}

// runE7 runs the headline comparison through the study engine: one
// multi-task study over the n-sweep (the same graphs under every
// algorithm — cell seeds derive from (family, size, trial) only, so
// the comparison is paired), plus a supplemental study for the naive
// baseline, whose Θ(n²) awake node-rounds make large sizes
// impractical.
func runE7(o Options, w io.Writer) error {
	o = o.withDefaults()
	fmt.Fprintln(w, "Comparison (the abstract's headline): awake complexity vs round complexity.")
	fmt.Fprintln(w, "Expected shape: Luby max-awake ~ Θ(log n) (doubles over the sweep);")
	fmt.Fprintln(w, "Awake-MIS max-awake ~ Θ(log log n) (near-flat) at the cost of many sleeping rounds.")
	if err := runStudySweep(o, w, []string{"luby", "vt-mis", "awake-mis"}, nil); err != nil {
		return err
	}
	var small []int
	for _, n := range o.Sizes {
		if n <= 1024 {
			small = append(small, n)
		}
	}
	if len(small) == 0 {
		return nil
	}
	fmt.Fprintln(w)
	return runStudySweep(o, w, []string{"naive-greedy"}, small)
}

func runE8(o Options, w io.Writer) error {
	o = o.withDefaults()
	fmt.Fprintln(w, "Node-averaged awake complexity (§2: prior work achieves O(1) average;")
	fmt.Fprintln(w, "this paper optimizes the worst case — footnote 4 notes both are attainable).")
	tb := &stats.Table{Header: []string{"n", "algorithm", "avgAwake", "maxAwake", "max/avg"}}
	for _, n := range o.Sizes {
		seed := o.Seed + int64(n)
		g := workload(n, seed)
		lres, lm, err := luby.RunContext(o.ctx(), g, o.simConfig(sim.Config{Seed: seed}))
		if err != nil {
			return err
		}
		_ = lres
		tb.Add(n, "luby", lm.AvgAwake(), lm.MaxAwake, float64(lm.MaxAwake)/lm.AvgAwake())
		ares, am, err := core.RunContext(o.ctx(), g, core.Params{}, o.simConfig(sim.Config{Seed: seed}))
		if err != nil {
			return err
		}
		_ = ares
		tb.Add(n, "awake-mis", am.AvgAwake(), am.MaxAwake, float64(am.MaxAwake)/am.AvgAwake())
	}
	fmt.Fprint(w, tb)
	return nil
}

func runE9(o Options, w io.Writer) error {
	fmt.Fprintln(w, "LDT machinery (Lemma 9 / Lemma 16): construction awake grows with log n′;")
	fmt.Fprintln(w, "broadcast and ranking cost O(1) awake rounds each on top.")
	tb := &stats.Table{Header: []string{"n'", "construction", "maxAwake", "rounds"}}
	sizes := []int{8, 32, 128}
	if o.Quick {
		sizes = []int{8, 32}
	}
	for _, np := range sizes {
		for _, v := range []ldtmis.Variant{ldtmis.VariantAwake, ldtmis.VariantRound} {
			seed := o.Seed + int64(np)
			g := graph.Path(np)
			ids := rng.IDs40(np, seed)
			res, m, err := ldtmis.RunContext(o.ctx(), g, ids, np, v, o.simConfig(sim.Config{Seed: seed, N: 1 << 16, Strict: true}))
			if err != nil {
				return err
			}
			if err := verify.CheckMIS(g, res.InMIS); err != nil {
				return err
			}
			tb.Add(np, v.String(), m.MaxAwake, m.Rounds)
		}
	}
	fmt.Fprint(w, tb)
	return nil
}
