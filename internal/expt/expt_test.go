package expt

import (
	"bytes"
	"strings"
	"testing"
)

func quickOpts() Options {
	return Options{Seed: 1, Quick: true, Trials: 1, Sizes: []int{32, 64}}
}

func TestAllExperimentsRunQuick(t *testing.T) {
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			var buf bytes.Buffer
			if err := e.Run(quickOpts(), &buf); err != nil {
				t.Fatalf("%s failed: %v", e.ID, err)
			}
			if buf.Len() == 0 {
				t.Errorf("%s produced no output", e.ID)
			}
		})
	}
}

func TestByID(t *testing.T) {
	if _, ok := ByID("e1"); !ok {
		t.Error("e1 not found")
	}
	if _, ok := ByID("nope"); ok {
		t.Error("bogus id found")
	}
}

func TestUniqueIDs(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range All() {
		if seen[e.ID] {
			t.Errorf("duplicate experiment id %s", e.ID)
		}
		seen[e.ID] = true
		if e.Title == "" || e.Run == nil {
			t.Errorf("experiment %s incomplete", e.ID)
		}
	}
}

func TestF2GoldenOutput(t *testing.T) {
	var buf bytes.Buffer
	e, _ := ByID("f2")
	if err := e.Run(Options{}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"[3 4 5]", "[5 6]", "shared round for IDs 3 < 5: 5"} {
		if !strings.Contains(out, want) {
			t.Errorf("f2 output missing %q:\n%s", want, out)
		}
	}
}

func TestE7ContainsAllAlgorithms(t *testing.T) {
	var buf bytes.Buffer
	e, _ := ByID("e7")
	if err := e.Run(quickOpts(), &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, algo := range []string{"luby", "naive-greedy", "vt-mis", "awake-mis"} {
		if !strings.Contains(out, algo) {
			t.Errorf("e7 missing %s:\n%s", algo, out)
		}
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Trials != 3 || len(o.Sizes) == 0 {
		t.Errorf("defaults wrong: %+v", o)
	}
	q := Options{Quick: true}.withDefaults()
	if len(q.Sizes) >= len(Options{}.withDefaults().Sizes) {
		t.Error("quick sweep should be smaller")
	}
}
