package expt

import (
	"fmt"
	"io"
	"math/rand"

	"awakemis/internal/core"
	"awakemis/internal/rng"
	"awakemis/internal/sim"
	"awakemis/internal/stats"
	"awakemis/internal/verify"
	"awakemis/internal/vtcolor"
	"awakemis/internal/vtmatch"
	"awakemis/internal/vtree"
)

// runE10 is the ablation study DESIGN.md calls out: how the three
// tunable constants of Awake-MIS trade awake complexity against round
// complexity and failure margin. C1 scales batch-level populations,
// Δ′ the per-level batch count (residual-degree budget), NP the
// component bound handed to LDT-MIS (phase length).
func runE10(o Options, w io.Writer) error {
	o = o.withDefaults()
	n := 512
	fmt.Fprintf(w, "Ablation at n=%d, G(n, 4/n): one knob varies, the others hold the test defaults\n", n)
	fmt.Fprintln(w, "(C1=4, Δ'=8, NP=24). Larger NP stretches phases (rounds ↑) and adds merge")
	fmt.Fprintln(w, "phases (awake ↑); larger Δ' adds phases (rounds ↑) but thins batches.")
	tb := &stats.Table{Header: []string{"knob", "value", "maxAwake", "rounds", "execRounds", "phases"}}
	base := core.Params{C1: 4, DeltaPrime: 8, NP: 24}
	type knob struct {
		name string
		vals []int
		set  func(p core.Params, v int) core.Params
	}
	knobs := []knob{
		{"C1", []int{2, 4, 8}, func(p core.Params, v int) core.Params { p.C1 = float64(v); return p }},
		{"DeltaPrime", []int{4, 8, 16}, func(p core.Params, v int) core.Params { p.DeltaPrime = v; return p }},
		{"NP", []int{16, 24, 48}, func(p core.Params, v int) core.Params { p.NP = v; return p }},
	}
	for _, k := range knobs {
		for _, v := range k.vals {
			params := k.set(base, v)
			seed := o.Seed + int64(v)
			g := workload(n, seed)
			res, m, err := core.RunContext(o.ctx(), g, params, o.simConfig(sim.Config{Seed: seed, Strict: true}))
			if err != nil {
				return fmt.Errorf("ablation %s=%d: %w", k.name, v, err)
			}
			if err := verify.CheckMIS(g, res.InMIS); err != nil {
				return fmt.Errorf("ablation %s=%d: %w", k.name, v, err)
			}
			sched := core.NewSchedule(n, params, sim.DefaultBandwidth(n))
			tb.Add(k.name, v, m.MaxAwake, m.Rounds, m.ExecutedRounds, sched.TotalPhases)
		}
	}
	fmt.Fprint(w, tb)
	return nil
}

// runE12 measures the second §7 extension, maximal matching
// (internal/vtmatch): awake per node bounded by its degree with early
// exit on matching, output equal to greedy over the edge order.
func runE12(o Options, w io.Writer) error {
	o = o.withDefaults()
	fmt.Fprintln(w, "Maximal matching in the sleeping model (§7 extension):")
	fmt.Fprintln(w, "awake ≤ deg+1 per node with early exit; rounds ≤ m.")
	tb := &stats.Table{Header: []string{"n", "m", "matched pairs", "maxAwake", "avgAwake", "rounds"}}
	for _, n := range o.Sizes {
		seed := o.Seed + int64(n)
		g := workload(n, seed)
		// Edge order from its own derived stream, decorrelated from the
		// graph generator's.
		perm := rand.New(rand.NewSource(rng.Derive(seed, "edge-perm", 0))).Perm(g.M())
		ids := vtmatch.EdgeIDs{}
		for i, e := range g.Edges() {
			ids[e] = perm[i] + 1
		}
		res, m, err := vtmatch.RunContext(o.ctx(), g, ids, g.M(), o.simConfig(sim.Config{Seed: seed, Strict: true}))
		if err != nil {
			return err
		}
		if err := verify.CheckMatching(g, res.MatchedWith); err != nil {
			return err
		}
		tb.Add(n, g.M(), verify.MatchingSize(res.MatchedWith), m.MaxAwake, m.AvgAwake(), m.Rounds)
	}
	fmt.Fprint(w, tb)
	return nil
}

// runE11 measures the §7 future-work extension implemented in
// internal/vtcolor: greedy (Δ+1)-coloring with O(log I) awake rounds.
func runE11(o Options, w io.Writer) error {
	o = o.withDefaults()
	fmt.Fprintln(w, "Greedy (Δ+1)-coloring in the sleeping model (§7 extension):")
	fmt.Fprintln(w, "awake ≤ ⌈log I⌉+2, colors ≤ Δ+1, output equals sequential greedy.")
	tb := &stats.Table{Header: []string{"n", "Δ", "colors", "Δ+1", "maxAwake", "bound", "rounds"}}
	for _, n := range o.Sizes {
		seed := o.Seed + int64(n)
		g := workload(n, seed)
		// ID permutation from its own derived stream, decorrelated from
		// the graph generator's.
		perm := rand.New(rand.NewSource(rng.Derive(seed, "perm-ids", 0))).Perm(n)
		ids := make([]int, n)
		for v, p := range perm {
			ids[v] = p + 1
		}
		res, m, err := vtcolor.RunContext(o.ctx(), g, ids, n, o.simConfig(sim.Config{Seed: seed, Strict: true}))
		if err != nil {
			return err
		}
		if err := verify.CheckColoring(g, res.Color); err != nil {
			return err
		}
		tb.Add(n, g.MaxDegree(), verify.NumColors(res.Color), g.MaxDegree()+1,
			m.MaxAwake, vtree.Depth(n)+2, m.Rounds)
	}
	fmt.Fprint(w, tb)
	return nil
}
