// Package study is the engine behind the declarative study subsystem:
// deterministic expansion of a parameter-sweep grid (the cross product
// of a study's axes), per-cell seed derivation through internal/rng,
// streaming aggregation of per-trial metric samples into summaries,
// growth-law fitting with bootstrap confidence intervals, and CSV
// rendering of the resulting tables.
//
// The package is deliberately unaware of tasks, graphs, and Reports —
// it works on axis indexes and float64 samples — so it sits below the
// public facade: the root package maps StudySpec/StudyResult onto it,
// and the service daemon reuses the exact same code path, which is
// what makes direct and daemon-served study artifacts byte-identical.
package study

import (
	"encoding/csv"
	"fmt"
	"strings"

	"awakemis/internal/rng"
	"awakemis/internal/stats"
)

// Grid is the shape of a study's cross-product expansion: the length
// of each axis plus the per-cell replication count. Cells enumerate in
// family-major order — families × tasks × sizes × engines — and every
// cell expands into Trials specs, so spec i belongs to cell i/Trials,
// trial i%Trials.
type Grid struct {
	// Families, Tasks, Sizes, Engines are the axis lengths.
	Families, Tasks, Sizes, Engines int
	// Trials is the replication count per cell.
	Trials int
}

// Cells returns the number of aggregation cells.
func (g Grid) Cells() int { return g.Families * g.Tasks * g.Sizes * g.Engines }

// Specs returns the number of expanded specs (cells × trials).
func (g Grid) Specs() int { return g.Cells() * g.Trials }

// CellIndex maps axis indexes to the cell's position in enumeration
// order.
func (g Grid) CellIndex(family, task, size, engine int) int {
	return ((family*g.Tasks+task)*g.Sizes+size)*g.Engines + engine
}

// TrialSeed derives the run seed of one (family, n, trial) triple
// from the study's root seed via chained splitmix64 derivation. The
// derivation uses the family's key (its name plus explicit knobs) and
// the node count's value — never axis positions — so the same nominal
// cell derives the same seed in every study that contains it:
// overlapping grids share the daemon's report cache, and sweeps
// remain paired however their size lists are ordered or filtered. The
// task and engine axes deliberately do not enter the derivation:
// every algorithm and engine in a cell column runs on identical
// graphs, so cross-task comparisons (the paper's headline tables) are
// paired, and engine axes are pure determinism checks.
func (g Grid) TrialSeed(root int64, familyKey string, n, trial int) int64 {
	s := rng.Derive(root, "study-family/"+familyKey, 0)
	s = rng.Derive(s, "study-size", int64(n))
	return rng.Derive(s, "study-trial", int64(trial))
}

// GraphSeed derives the generator seed of one (family, n) cell
// column's shared graph. Like TrialSeed it hangs off the family key
// and node count only, but not the trial index: all R replications of
// a cell run on one identical graph (the paper's paired-seed design),
// which is what lets an executor batch them into a single vectorized
// pass. The result is never zero — a zero GraphSpec seed means
// "derive from the run seed", which would silently un-pair the trials.
func (g Grid) GraphSeed(root int64, familyKey string, n int) int64 {
	s := rng.Derive(root, "study-family/"+familyKey, 0)
	s = rng.Derive(s, "study-size", int64(n))
	s = rng.Derive(s, "study-graph", 0)
	if s == 0 {
		s = 1
	}
	return s
}

// Aggregator folds per-trial metric samples into per-cell series as
// results stream in. Samples are stored indexed by trial, never in
// arrival order, so summaries — including floating-point sums — are
// identical whatever completion order a parallel executor produces.
// Reports themselves are never retained: callers extract the handful
// of float64 samples and drop the rest.
//
// Aggregator is not internally synchronized; callers that feed it
// from concurrent completions must serialize Add (the batch Runner's
// Progress callback already is).
type Aggregator struct {
	trials  int
	samples []map[string][]float64 // samples[cell][metric][trial]
	seen    []int                  // trials recorded per cell
}

// NewAggregator returns an empty aggregator for a grid of `cells`
// cells with `trials` replications each.
func NewAggregator(cells, trials int) *Aggregator {
	return &Aggregator{
		trials:  trials,
		samples: make([]map[string][]float64, cells),
		seen:    make([]int, cells),
	}
}

// AddTrial records one trial's metric samples for a cell. Adding the
// same (cell, trial) twice, an out-of-range index, or a metric set
// that differs between trials is a programming error and panics.
func (a *Aggregator) AddTrial(cell, trial int, values map[string]float64) {
	if cell < 0 || cell >= len(a.samples) || trial < 0 || trial >= a.trials {
		panic(fmt.Sprintf("study: AddTrial(%d, %d) outside %d cells × %d trials",
			cell, trial, len(a.samples), a.trials))
	}
	if a.samples[cell] == nil {
		a.samples[cell] = make(map[string][]float64, len(values))
	}
	for metric, v := range values {
		series := a.samples[cell][metric]
		if series == nil {
			if a.seen[cell] > 0 {
				panic(fmt.Sprintf("study: cell %d trial %d introduced metric %q absent from earlier trials", cell, trial, metric))
			}
			series = make([]float64, a.trials)
			a.samples[cell][metric] = series
		}
		series[trial] = v
	}
	if a.seen[cell] > 0 && len(values) != len(a.samples[cell]) {
		panic(fmt.Sprintf("study: cell %d trial %d recorded %d metrics, earlier trials recorded %d", cell, trial, len(values), len(a.samples[cell])))
	}
	a.seen[cell]++
	if a.seen[cell] > a.trials {
		panic(fmt.Sprintf("study: cell %d received %d trials, want %d", cell, a.seen[cell], a.trials))
	}
}

// Complete reports whether every trial of the cell has been recorded.
func (a *Aggregator) Complete(cell int) bool { return a.seen[cell] == a.trials }

// Summary folds one cell metric's trial samples into a stats.Summary.
// The cell must be complete.
func (a *Aggregator) Summary(cell int, metric string) stats.Summary {
	if !a.Complete(cell) {
		panic(fmt.Sprintf("study: Summary(%d, %q) before the cell completed", cell, metric))
	}
	return stats.Summarize(a.samples[cell][metric])
}

// Mean returns one cell metric's trial mean (the y value growth fits
// consume). The cell must be complete.
func (a *Aggregator) Mean(cell int, metric string) float64 {
	return a.Summary(cell, metric).Mean
}

// Fit is one fitted growth law: the preferred model with its least
// squares parameters, the bootstrap confidence interval of its slope,
// and the comparison verdict against the runner-up model.
type Fit struct {
	// Model is the preferred growth model ("loglog n", "log n", ...).
	Model string
	// A, B, R2 are the least squares fit y ≈ A + B·f(x) and its R².
	A, B, R2 float64
	// BLo, BHi bound the slope B (95% percentile bootstrap).
	BLo, BHi float64
	// RunnerUp is the best competing model and Margin the R² gap to it
	// — small margins mean the sweep cannot separate the two models.
	RunnerUp string
	Margin   float64
}

// FitSeries fits ys over xs against every candidate growth model and
// returns the preferred fit with its bootstrap interval. Deterministic
// for equal inputs: the bootstrap RNG is seeded from the study seed by
// the caller.
func FitSeries(xs, ys []float64, resamples int, seed int64) Fit {
	v := stats.CompareGrowth(xs, ys)
	lo, hi := stats.BootstrapSlopeCI(xs, ys, v.Preferred.Model, resamples, seed)
	return Fit{
		Model: v.Preferred.Model,
		A:     v.Preferred.A, B: v.Preferred.B, R2: v.Preferred.R2,
		BLo: lo, BHi: hi,
		RunnerUp: v.RunnerUp.Model, Margin: v.Margin,
	}
}

// CSV renders a header and rows as RFC-4180 CSV with a trailing
// newline — the rendering both study artifact tables share.
func CSV(header []string, rows [][]string) string {
	var b strings.Builder
	w := csv.NewWriter(&b)
	w.Write(header)
	w.WriteAll(rows) // WriteAll flushes
	return b.String()
}
