package study

import (
	"math"
	"testing"
)

func TestGridIndexing(t *testing.T) {
	g := Grid{Families: 2, Tasks: 3, Sizes: 4, Engines: 2, Trials: 5}
	if g.Cells() != 48 || g.Specs() != 240 {
		t.Fatalf("cells=%d specs=%d", g.Cells(), g.Specs())
	}
	// CellIndex enumerates densely and in family-major order.
	seen := make([]bool, g.Cells())
	last := -1
	for f := 0; f < g.Families; f++ {
		for task := 0; task < g.Tasks; task++ {
			for s := 0; s < g.Sizes; s++ {
				for e := 0; e < g.Engines; e++ {
					i := g.CellIndex(f, task, s, e)
					if i != last+1 {
						t.Fatalf("CellIndex(%d,%d,%d,%d) = %d, want %d", f, task, s, e, i, last+1)
					}
					last = i
					seen[i] = true
				}
			}
		}
	}
	for i, ok := range seen {
		if !ok {
			t.Fatalf("cell %d never enumerated", i)
		}
	}
}

func TestTrialSeeds(t *testing.T) {
	g := Grid{Families: 2, Tasks: 3, Sizes: 2, Engines: 1, Trials: 3}
	// Task and engine never enter the derivation; family key, node
	// count, trial, and the root seed all do.
	base := g.TrialSeed(7, "gnp", 64, 0)
	if got := g.TrialSeed(7, "gnp", 64, 0); got != base {
		t.Error("TrialSeed not deterministic")
	}
	distinct := map[int64]bool{base: true}
	for _, v := range []struct {
		key      string
		n, trial int
	}{{"gnp(p=0.01)", 64, 0}, {"gnp", 256, 0}, {"gnp", 64, 1}} {
		s := g.TrialSeed(7, v.key, v.n, v.trial)
		if distinct[s] {
			t.Errorf("seed collision varying (family,n,trial) to %+v", v)
		}
		distinct[s] = true
	}
	if g.TrialSeed(8, "gnp", 64, 0) == base {
		t.Error("root seed ignored")
	}
	// The derivation ignores the grid's shape entirely: the same
	// nominal cell derives the same seed in every study that contains
	// it, which is what lets overlapping grids share the daemon cache
	// and keeps sweeps paired however the size list is sliced.
	other := Grid{Families: 1, Tasks: 1, Sizes: 5, Engines: 2, Trials: 9}
	if other.TrialSeed(7, "gnp", 64, 0) != base {
		t.Error("TrialSeed depends on grid shape")
	}
}

func TestAggregatorOrderIndependence(t *testing.T) {
	// Feeding trials in different orders must produce identical
	// summaries — the property that makes parallel study artifacts
	// byte-identical.
	build := func(order []int) *Aggregator {
		a := NewAggregator(1, 3)
		vals := []map[string]float64{
			{"max_awake": 5, "rounds": 100.25},
			{"max_awake": 7, "rounds": 101.5},
			{"max_awake": 6, "rounds": 99.125},
		}
		for _, trial := range order {
			a.AddTrial(0, trial, vals[trial])
		}
		return a
	}
	fwd := build([]int{0, 1, 2})
	rev := build([]int{2, 0, 1})
	if !fwd.Complete(0) || !rev.Complete(0) {
		t.Fatal("cells not complete")
	}
	for _, metric := range []string{"max_awake", "rounds"} {
		if fwd.Summary(0, metric) != rev.Summary(0, metric) {
			t.Errorf("%s summary depends on arrival order", metric)
		}
	}
	if fwd.Mean(0, "max_awake") != 6 {
		t.Errorf("mean = %v", fwd.Mean(0, "max_awake"))
	}
}

func TestAggregatorGuards(t *testing.T) {
	a := NewAggregator(1, 1)
	drift := NewAggregator(1, 3)
	drift.AddTrial(0, 0, map[string]float64{"x": 1, "y": 2})
	for _, bad := range []func(){
		func() { a.AddTrial(1, 0, nil) },
		func() { a.AddTrial(0, 1, nil) },
		func() { a.Summary(0, "x") },                                        // incomplete
		func() { drift.AddTrial(0, 1, map[string]float64{"x": 1}) },         // metric vanished
		func() { drift.AddTrial(0, 2, map[string]float64{"x": 1, "z": 3}) }, // metric appeared
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			bad()
		}()
	}
}

func TestFitSeries(t *testing.T) {
	xs := []float64{64, 256, 1024, 4096, 16384}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 2 + 3*math.Log2(x) + 0.01*float64(i%2)
	}
	fit := FitSeries(xs, ys, 200, 11)
	if fit.Model != "log n" {
		t.Fatalf("model = %q (fit %+v)", fit.Model, fit)
	}
	if !(fit.BLo <= fit.B && fit.B <= fit.BHi) {
		t.Errorf("point estimate %v outside CI [%v, %v]", fit.B, fit.BLo, fit.BHi)
	}
	if fit.RunnerUp == "" || fit.RunnerUp == fit.Model {
		t.Errorf("runner-up = %q", fit.RunnerUp)
	}
	if fit2 := FitSeries(xs, ys, 200, 11); fit != fit2 {
		t.Error("FitSeries not deterministic")
	}
}

func TestCSV(t *testing.T) {
	out := CSV([]string{"a", "b"}, [][]string{{"1", "x,y"}, {"2", `say "hi"`}})
	want := "a,b\n1,\"x,y\"\n2,\"say \"\"hi\"\"\"\n"
	if out != want {
		t.Errorf("CSV = %q, want %q", out, want)
	}
}
