// Package buildinfo exposes the binary's build identity — module
// version, VCS revision and commit time, Go toolchain — read once from
// debug.ReadBuildInfo. The daemon prints it for -version, serves it on
// /v1/healthz and /v1/stats, and the client mirrors it in Health, so
// every process in a cluster can be identified from the outside.
package buildinfo

import (
	"fmt"
	"runtime/debug"
	"sync"
)

// Info is the build identity of the running binary. Fields are empty
// when the binary was built without module or VCS metadata (e.g. plain
// `go build` in a test sandbox).
type Info struct {
	// Version is the main module version ("(devel)" for local builds).
	Version string `json:"version,omitempty"`
	// Revision is the VCS commit hash, suffixed with "+dirty" when the
	// working tree had local modifications.
	Revision string `json:"revision,omitempty"`
	// BuildTime is the VCS commit timestamp (RFC 3339).
	BuildTime string `json:"build_time,omitempty"`
	// GoVersion is the toolchain that built the binary.
	GoVersion string `json:"go_version,omitempty"`
}

var get = sync.OnceValue(func() Info {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return Info{}
	}
	info := Info{
		Version:   bi.Main.Version,
		GoVersion: bi.GoVersion,
	}
	var dirty bool
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			info.Revision = s.Value
		case "vcs.time":
			info.BuildTime = s.Value
		case "vcs.modified":
			dirty = s.Value == "true"
		}
	}
	if dirty && info.Revision != "" {
		info.Revision += "+dirty"
	}
	return info
})

// Get returns the process's build identity (computed once).
func Get() Info { return get() }

// String renders the identity as a one-line human-readable form for
// `awakemisd -version`.
func (i Info) String() string {
	v := i.Version
	if v == "" {
		v = "unknown"
	}
	s := fmt.Sprintf("awakemisd %s", v)
	if i.Revision != "" {
		s += fmt.Sprintf(" (%s", i.Revision)
		if i.BuildTime != "" {
			s += " " + i.BuildTime
		}
		s += ")"
	}
	if i.GoVersion != "" {
		s += " " + i.GoVersion
	}
	return s
}
