package misproto

import "testing"

func TestStateString(t *testing.T) {
	tests := []struct {
		s    State
		want string
	}{
		{Undecided, "undecided"},
		{InMIS, "inMIS"},
		{NotInMIS, "notinMIS"},
		{State(99), "invalid"},
	}
	for _, tt := range tests {
		if got := tt.s.String(); got != tt.want {
			t.Errorf("State(%d).String() = %q, want %q", tt.s, got, tt.want)
		}
	}
}

func TestDecided(t *testing.T) {
	if Undecided.Decided() {
		t.Error("Undecided must not be decided")
	}
	if !InMIS.Decided() || !NotInMIS.Decided() {
		t.Error("InMIS/NotInMIS must be decided")
	}
}

func TestStateMsgBits(t *testing.T) {
	// Three states fit in two bits; the CONGEST accounting relies on it.
	if got := (StateMsg{State: InMIS}).Bits(); got != 2 {
		t.Errorf("Bits = %d, want 2", got)
	}
}
