// Package misproto holds the node-state vocabulary and wire messages
// shared by all distributed MIS algorithms in this repository
// (the paper's state ∈ {undecided, inMIS, notinMIS}, §6).
package misproto

// State is a node's MIS status.
type State uint8

const (
	// Undecided nodes have not yet committed.
	Undecided State = iota
	// InMIS nodes have irrevocably joined the MIS.
	InMIS
	// NotInMIS nodes have a neighbor in the MIS.
	NotInMIS
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case Undecided:
		return "undecided"
	case InMIS:
		return "inMIS"
	case NotInMIS:
		return "notinMIS"
	default:
		return "invalid"
	}
}

// Decided reports whether the state is final.
func (s State) Decided() bool { return s != Undecided }

// StateMsg announces a sender's state to a neighbor.
type StateMsg struct {
	State State
}

// Bits returns the wire size: two bits encode three states.
func (m StateMsg) Bits() int { return 2 }
