// Package naive implements the naive distributed sequential greedy MIS
// described in §5.3: given unique IDs in [1, I], the algorithm runs for
// I rounds; in round r every (still participating) node is awake and
// broadcasts its state, and the node with ID r joins the MIS unless a
// neighbor already has. Its awake complexity is O(I) — the baseline
// whose exponential improvement VT-MIS demonstrates.
package naive

import (
	"context"
	"fmt"

	"awakemis/internal/graph"
	"awakemis/internal/misproto"
	"awakemis/internal/sim"
)

// Result collects the algorithm's output.
type Result struct {
	InMIS []bool
}

// Program returns the per-node program in goroutine form. ids assigns
// each node a unique ID in [1, I]. Every node stays awake for all I
// rounds (that is the point of the baseline); the LFMIS with respect to
// the ID order is produced.
func Program(res *Result, ids []int, idBound int) sim.Program {
	return func(ctx *sim.Ctx) {
		id := ids[ctx.Node()]
		state := misproto.Undecided
		for r := 1; r <= idBound; r++ {
			ctx.Broadcast(misproto.StateMsg{State: state})
			in := ctx.Deliver()
			if state == misproto.Undecided {
				for _, m := range in {
					if sm, ok := m.Msg.(misproto.StateMsg); ok && sm.State == misproto.InMIS {
						state = misproto.NotInMIS
						break
					}
				}
			}
			if r == id && state == misproto.Undecided {
				state = misproto.InMIS
				res.InMIS[ctx.Node()] = true
			}
			if r < idBound {
				ctx.Advance()
			}
		}
	}
}

// stepNode is the state-machine form of Program: algorithm round r is
// simulator round r-1, and the broadcast for round r+1 is staged while
// processing round r's inbox. Both forms run bit-identically.
type stepNode struct {
	res     *Result
	node    int
	id      int
	idBound int
	state   misproto.State
}

// StepProgram returns the per-node program in step form.
func StepProgram(res *Result, ids []int, idBound int) sim.StepProgram {
	return func(env *sim.NodeEnv) sim.StepNode {
		return &stepNode{res: res, node: env.ID, id: ids[env.ID], idBound: idBound}
	}
}

func (n *stepNode) Start(out *sim.Outbox) {
	out.Broadcast(misproto.StateMsg{State: n.state}) // algorithm round 1
}

func (n *stepNode) OnWake(round int64, inbox []sim.Inbound, out *sim.Outbox) (int64, bool) {
	r := int(round) + 1 // algorithm round
	if n.state == misproto.Undecided {
		for _, m := range inbox {
			if sm, ok := m.Msg.(misproto.StateMsg); ok && sm.State == misproto.InMIS {
				n.state = misproto.NotInMIS
				break
			}
		}
	}
	if r == n.id && n.state == misproto.Undecided {
		n.state = misproto.InMIS
		n.res.InMIS[n.node] = true
	}
	if r == n.idBound {
		return 0, true
	}
	out.Broadcast(misproto.StateMsg{State: n.state})
	return round + 1, false
}

// Run executes the naive algorithm with the given ID assignment.
func Run(g *graph.Graph, ids []int, idBound int, cfg sim.Config) (*Result, *sim.Metrics, error) {
	return RunContext(context.Background(), g, ids, idBound, cfg)
}

// RunContext is Run under a context; cancellation aborts the
// simulation at the next round boundary.
func RunContext(ctx context.Context, g *graph.Graph, ids []int, idBound int, cfg sim.Config) (*Result, *sim.Metrics, error) {
	if err := CheckIDs(g.N(), ids, idBound); err != nil {
		return nil, nil, err
	}
	res := &Result{InMIS: make([]bool, g.N())}
	m, err := sim.RunStepContext(ctx, g, StepProgram(res, ids, idBound), cfg)
	return res, m, err
}

// CheckIDs validates that ids are unique and within [1, idBound].
func CheckIDs(n int, ids []int, idBound int) error {
	if len(ids) != n {
		return fmt.Errorf("naive: %d ids for %d nodes", len(ids), n)
	}
	seen := make(map[int]bool, n)
	for v, id := range ids {
		if id < 1 || id > idBound {
			return fmt.Errorf("naive: node %d id %d outside [1,%d]", v, id, idBound)
		}
		if seen[id] {
			return fmt.Errorf("naive: duplicate id %d", id)
		}
		seen[id] = true
	}
	return nil
}
