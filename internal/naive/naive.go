// Package naive implements the naive distributed sequential greedy MIS
// described in §5.3: given unique IDs in [1, I], the algorithm runs for
// I rounds; in round r every (still participating) node is awake and
// broadcasts its state, and the node with ID r joins the MIS unless a
// neighbor already has. Its awake complexity is O(I) — the baseline
// whose exponential improvement VT-MIS demonstrates.
package naive

import (
	"fmt"

	"awakemis/internal/graph"
	"awakemis/internal/misproto"
	"awakemis/internal/sim"
)

// Result collects the algorithm's output.
type Result struct {
	InMIS []bool
}

// Program returns the per-node program. ids assigns each node a unique
// ID in [1, I]. Every node stays awake for all I rounds (that is the
// point of the baseline); the LFMIS with respect to the ID order is
// produced.
func Program(res *Result, ids []int, idBound int) sim.Program {
	return func(ctx *sim.Ctx) {
		id := ids[ctx.Node()]
		state := misproto.Undecided
		for r := 1; r <= idBound; r++ {
			ctx.Broadcast(misproto.StateMsg{State: state})
			in := ctx.Deliver()
			if state == misproto.Undecided {
				for _, m := range in {
					if sm, ok := m.Msg.(misproto.StateMsg); ok && sm.State == misproto.InMIS {
						state = misproto.NotInMIS
						break
					}
				}
			}
			if r == id && state == misproto.Undecided {
				state = misproto.InMIS
				res.InMIS[ctx.Node()] = true
			}
			if r < idBound {
				ctx.Advance()
			}
		}
	}
}

// Run executes the naive algorithm with the given ID assignment.
func Run(g *graph.Graph, ids []int, idBound int, cfg sim.Config) (*Result, *sim.Metrics, error) {
	if err := CheckIDs(g.N(), ids, idBound); err != nil {
		return nil, nil, err
	}
	res := &Result{InMIS: make([]bool, g.N())}
	m, err := sim.Run(g, Program(res, ids, idBound), cfg)
	return res, m, err
}

// CheckIDs validates that ids are unique and within [1, idBound].
func CheckIDs(n int, ids []int, idBound int) error {
	if len(ids) != n {
		return fmt.Errorf("naive: %d ids for %d nodes", len(ids), n)
	}
	seen := make(map[int]bool, n)
	for v, id := range ids {
		if id < 1 || id > idBound {
			return fmt.Errorf("naive: node %d id %d outside [1,%d]", v, id, idBound)
		}
		if seen[id] {
			return fmt.Errorf("naive: duplicate id %d", id)
		}
		seen[id] = true
	}
	return nil
}
