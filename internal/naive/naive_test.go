package naive

import (
	"math/rand"
	"testing"
	"testing/quick"

	"awakemis/internal/graph"
	"awakemis/internal/sim"
	"awakemis/internal/verify"
)

// seqIDs assigns IDs by a random permutation: node v gets perm position.
func seqIDs(n int, rng *rand.Rand) ([]int, []int) {
	perm := rng.Perm(n)
	ids := make([]int, n)
	order := make([]int, n) // order[r-1] = node with ID r
	for v, p := range perm {
		ids[v] = p + 1
		order[p] = v
	}
	return ids, order
}

func TestNaiveComputesLFMIS(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, g := range []*graph.Graph{
		graph.Cycle(20),
		graph.GNP(50, 0.15, rng),
		graph.Star(12),
		graph.Complete(8),
	} {
		ids, order := seqIDs(g.N(), rng)
		res, m, err := Run(g, ids, g.N(), sim.Config{Seed: 5, Strict: true})
		if err != nil {
			t.Fatal(err)
		}
		if err := verify.CheckLFMIS(g, res.InMIS, order); err != nil {
			t.Fatal(err)
		}
		// The defining cost: every node is awake in all I rounds.
		if m.MaxAwake != int64(g.N()) {
			t.Errorf("MaxAwake = %d, want I = %d", m.MaxAwake, g.N())
		}
	}
}

func TestNaiveSparseIDs(t *testing.T) {
	// IDs need not be contiguous: use a sparse assignment in [1, 4n].
	rng := rand.New(rand.NewSource(2))
	g := graph.Path(10)
	bound := 40
	perm := rng.Perm(bound)[:10]
	ids := make([]int, 10)
	type pair struct{ id, v int }
	pairs := []pair{}
	for v := range ids {
		ids[v] = perm[v] + 1
		pairs = append(pairs, pair{ids[v], v})
	}
	res, m, err := Run(g, ids, bound, sim.Config{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Build the order implied by sparse IDs.
	order := []int{}
	for id := 1; id <= bound; id++ {
		for _, p := range pairs {
			if p.id == id {
				order = append(order, p.v)
			}
		}
	}
	if err := verify.CheckLFMIS(g, res.InMIS, order); err != nil {
		t.Fatal(err)
	}
	if m.Rounds != int64(bound) {
		t.Errorf("Rounds = %d, want %d", m.Rounds, bound)
	}
}

func TestNaiveRejectsBadIDs(t *testing.T) {
	g := graph.Path(3)
	if _, _, err := Run(g, []int{1, 2}, 3, sim.Config{}); err == nil {
		t.Error("wrong length accepted")
	}
	if _, _, err := Run(g, []int{1, 2, 2}, 3, sim.Config{}); err == nil {
		t.Error("duplicate accepted")
	}
	if _, _, err := Run(g, []int{0, 1, 2}, 3, sim.Config{}); err == nil {
		t.Error("out-of-range accepted")
	}
	if _, _, err := Run(g, []int{1, 2, 9}, 3, sim.Config{}); err == nil {
		t.Error("over-bound accepted")
	}
}

func TestQuickNaiveMatchesSequentialGreedy(t *testing.T) {
	f := func(seed int64, nn uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nn%25) + 1
		g := graph.GNP(n, 0.3, rng)
		ids, order := seqIDs(n, rng)
		res, _, err := Run(g, ids, n, sim.Config{Seed: seed})
		if err != nil {
			return false
		}
		return verify.CheckLFMIS(g, res.InMIS, order) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
