package store

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// addr returns a deterministic content address for test record i.
func addr(i int) string {
	sum := sha256.Sum256([]byte(fmt.Sprintf("record-%d", i)))
	return hex.EncodeToString(sum[:])
}

// payload returns a compressible payload with distinctive content.
func payload(i, size int) []byte {
	p := make([]byte, size)
	for j := range p {
		p[j] = byte((i*31 + j) % 251)
	}
	return p
}

// backdate spreads record mtimes over distinct seconds so LRU order
// from a recovery scan is deterministic even on coarse filesystems.
func backdate(t *testing.T, s *Store, i int, age time.Duration) {
	t.Helper()
	when := time.Now().Add(-age)
	if err := os.Chtimes(s.path(addr(i)), when, when); err != nil {
		t.Fatal(err)
	}
}

func TestPutGetRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir(), 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	for i := range 5 {
		if err := s.Put(addr(i), payload(i, 1000+i)); err != nil {
			t.Fatal(err)
		}
	}
	// Duplicate put is a no-op (content addressing: values immutable).
	before := s.Stats().Bytes
	if err := s.Put(addr(0), payload(0, 1000)); err != nil {
		t.Fatal(err)
	}
	if s.Stats().Bytes != before {
		t.Error("duplicate put changed the byte accounting")
	}
	for i := range 5 {
		got, ok := s.Get(addr(i))
		if !ok || !bytes.Equal(got, payload(i, 1000+i)) {
			t.Fatalf("record %d: ok=%v, %d bytes back", i, ok, len(got))
		}
	}
	if _, ok := s.Get(addr(99)); ok {
		t.Error("absent record reported present")
	}
	st := s.Stats()
	if st.Hits != 5 || st.Misses != 1 || st.Entries != 5 || st.Corrupt != 0 {
		t.Errorf("stats = %+v", st)
	}
	// Records land under the two-hex-digit shard of their hash.
	h := addr(0)
	if _, err := os.Stat(filepath.Join(s.Dir(), h[:2], h+suffix)); err != nil {
		t.Errorf("record 0 not at its sharded path: %v", err)
	}
}

func TestRejectsInvalidAddress(t *testing.T) {
	s, err := Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range []string{"", "abc", "ZZ" + addr(0)[2:], addr(0) + "00"} {
		if err := s.Put(bad, []byte("x")); err == nil {
			t.Errorf("Put(%q) accepted an invalid address", bad)
		}
	}
}

// TestCrashRecovery is the satellite acceptance test: write N
// records, simulate a crash mid-write (a truncated temp file) plus a
// torn committed record, reopen, and assert the partial is discarded
// while every complete record verifies against its hash.
func TestCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	const n = 8
	for i := range n {
		if err := s.Put(addr(i), payload(i, 2000)); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()

	// Crash leftovers: a truncated temp file in a shard directory (a
	// kill mid-write never renames, so the partial only exists under
	// the temp name) ...
	shard := filepath.Join(dir, addr(0)[:2])
	tmp := filepath.Join(shard, tmpPrefix+addr(0)+"-crash")
	full, err := encodeRecord(payload(0, 2000))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(tmp, full[:len(full)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	// ... and a committed record torn after the fact (disk corruption:
	// rename is atomic, so this models bit rot, not a crash).
	tornPath := filepath.Join(dir, addr(3)[:2], addr(3)+suffix)
	if err := os.Truncate(tornPath, 40); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Errorf("temp leftover survived recovery: %v", err)
	}
	// The torn record is detected on read, deleted, and served as a
	// miss; every other record verifies and round-trips exactly.
	if _, ok := s2.Get(addr(3)); ok {
		t.Error("torn record served as a hit")
	}
	if _, err := os.Stat(tornPath); !os.IsNotExist(err) {
		t.Errorf("torn record not deleted: %v", err)
	}
	for i := range n {
		if i == 3 {
			continue
		}
		got, ok := s2.Get(addr(i))
		if !ok || !bytes.Equal(got, payload(i, 2000)) {
			t.Errorf("record %d did not survive recovery intact", i)
		}
	}
	st := s2.Stats()
	if st.Corrupt != 1 || st.Entries != n-1 {
		t.Errorf("post-recovery stats = %+v, want 1 corrupt, %d entries", st, n-1)
	}
}

func TestEvictionRespectsByteBudget(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	// Learn the on-disk size of one record, then budget for three.
	if err := s.Put(addr(0), payload(0, 4096)); err != nil {
		t.Fatal(err)
	}
	recSize := s.Stats().Bytes
	s.Close()

	// Compressed sizes vary a few bytes per payload; the slack keeps
	// the budget at "three records, not four".
	budget := 3*recSize + recSize/2
	s, err = Open(dir, budget)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < 8; i++ {
		if err := s.Put(addr(i), payload(i, 4096)); err != nil {
			t.Fatal(err)
		}
		if got := s.Stats().Bytes; got > budget {
			t.Fatalf("after put %d: %d bytes exceeds budget %d", i, got, budget)
		}
	}
	st := s.Stats()
	if st.Entries != 3 || st.Evictions != 5 {
		t.Errorf("entries/evictions = %d/%d, want 3/5", st.Entries, st.Evictions)
	}
	// Only the three newest survive, on disk as well as in the index.
	for i := range 8 {
		_, ok := s.Get(addr(i))
		if want := i >= 5; ok != want {
			t.Errorf("record %d present=%v, want %v", i, ok, want)
		}
	}
}

func TestGetRefreshesRecencyAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	for i := range 4 {
		if err := s.Put(addr(i), payload(i, 4096)); err != nil {
			t.Fatal(err)
		}
		backdate(t, s, i, time.Duration(10-i)*time.Minute)
	}
	recSize := s.Stats().Bytes / 4
	// Touch the oldest record: Get bumps its mtime, so after a reopen
	// with room for only two records, it must outlive records 1 and 2.
	if _, ok := s.Get(addr(0)); !ok {
		t.Fatal("record 0 missing")
	}
	s.Close()

	s2, err := Open(dir, 2*recSize+recSize/2)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []bool{true, false, false, true} {
		if _, ok := s2.Get(addr(i)); ok != want {
			t.Errorf("after reopen, record %d present=%v, want %v", i, ok, want)
		}
	}
}

func TestOversizedRecordSkipped(t *testing.T) {
	s, err := Open(t.TempDir(), 512)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(addr(0), payload(0, 100)); err != nil {
		t.Fatal(err)
	}
	// Incompressible-ish payload far over budget: skipped, and the
	// existing record is not evicted for it.
	if err := s.Put(addr(1), payload(1, 1<<16)); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(addr(1)); ok {
		t.Error("oversized record was stored")
	}
	if _, ok := s.Get(addr(0)); !ok {
		t.Error("oversized put evicted an existing record")
	}
}

func TestUnlimitedBudget(t *testing.T) {
	s, err := Open(t.TempDir(), -1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range 20 {
		if err := s.Put(addr(i), payload(i, 8192)); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.Entries != 20 || st.Evictions != 0 || st.Budget != 0 {
		t.Errorf("unlimited store stats = %+v", st)
	}
}
