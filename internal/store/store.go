// Package store is the persistent tier of the daemon's
// content-addressed report cache: a disk-backed map from canonical
// spec hash to one compressed, checksummed record file. It exists so
// a simulation is computed once, ever — reports survive daemon
// restarts and grow past RAM, and in cluster mode every daemon's
// store deduplicates work for the whole fleet.
//
// Layout and guarantees:
//
//   - Records live under a two-level sharded tree, dir/<hh>/<hash>.awr
//     with hh the first two hex digits of the hash, so no directory
//     grows unboundedly.
//   - Writes go to a temp file in the record's shard directory, are
//     fsynced, then atomically renamed into place — a reader never
//     observes a half-written record, and a crash mid-write leaves
//     only a temp file.
//   - Open scans the tree, deletes crash leftovers (temp files), and
//     rebuilds the index from the surviving records, oldest
//     modification time first.
//   - Every record embeds the SHA-256 and length of its payload; Get
//     verifies both and silently discards a record that fails (torn
//     by disk corruption, say), reporting a miss.
//   - A byte budget is enforced by LRU eviction: Get refreshes a
//     record's file mtime, so recency survives restarts too.
package store

import (
	"bytes"
	"compress/gzip"
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

const (
	// magic versions the record format; bump it on incompatible
	// changes so old stores read as empty rather than corrupt.
	magic = "AWRS1\n"
	// headerLen is magic + payload SHA-256 + big-endian payload length.
	headerLen = len(magic) + sha256.Size + 8
	// suffix marks committed record files.
	suffix = ".awr"
	// tmpPrefix marks in-progress writes; Open deletes leftovers.
	tmpPrefix = "tmp-"
)

// Stats is a snapshot of the store's counters and occupancy.
type Stats struct {
	Hits      int64 // records served (verified)
	Misses    int64 // lookups that found nothing
	Entries   int64 // committed records currently indexed
	Bytes     int64 // total record file bytes on disk
	Budget    int64 // eviction threshold (0 = unlimited)
	Evictions int64 // records removed by the byte budget
	Corrupt   int64 // records discarded by verification
}

// Store is a disk-backed content-addressed record store. Safe for
// concurrent use. Values are immutable once put: a hash maps to the
// exact payload bytes forever, so equal canonical specs always read
// back bit-identical reports.
type Store struct {
	dir    string
	budget int64 // 0 means unlimited

	mu      sync.Mutex
	entries map[string]*list.Element
	lru     *list.List // front = most recently used
	stats   Stats
}

// record is one indexed file; size is the on-disk file size (what the
// budget meters), not the payload size.
type record struct {
	hash string
	size int64
}

// Open opens (creating if needed) the store rooted at dir with the
// given byte budget: budget == 0 means a 1 GiB default, negative
// means unlimited. It removes temp files left by a crash, rebuilds
// the index from the committed records (oldest mtime = least recently
// used), and evicts immediately if the surviving records already
// exceed the budget.
func Open(dir string, budget int64) (*Store, error) {
	if budget == 0 {
		budget = 1 << 30
	}
	if budget < 0 {
		budget = 0 // unlimited
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{
		dir:     dir,
		budget:  budget,
		entries: map[string]*list.Element{},
		lru:     list.New(),
	}
	if err := s.recover(); err != nil {
		return nil, err
	}
	return s, nil
}

// recover is the crash-safe opening scan.
func (s *Store) recover() error {
	type found struct {
		record
		mtime time.Time
	}
	var recs []found
	err := filepath.WalkDir(s.dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		name := d.Name()
		if strings.HasPrefix(name, tmpPrefix) {
			// A write that never reached its rename: discard.
			return os.Remove(path)
		}
		hash, ok := strings.CutSuffix(name, suffix)
		if !ok || !validHash(hash) {
			return nil // not ours; leave it alone
		}
		info, err := d.Info()
		if err != nil {
			return err
		}
		recs = append(recs, found{record{hash: hash, size: info.Size()}, info.ModTime()})
		return nil
	})
	if err != nil {
		return fmt.Errorf("store: recovery scan: %w", err)
	}
	// Oldest first, hash as a deterministic tiebreak for equal mtimes;
	// pushing front leaves the newest records most recently used.
	sort.Slice(recs, func(i, j int) bool {
		if !recs[i].mtime.Equal(recs[j].mtime) {
			return recs[i].mtime.Before(recs[j].mtime)
		}
		return recs[i].hash < recs[j].hash
	})
	for i := range recs {
		r := recs[i].record
		s.entries[r.hash] = s.lru.PushFront(&r)
		s.stats.Bytes += r.size
	}
	s.evictLocked()
	return nil
}

// validHash accepts the hex SHA-256 content addresses the service
// produces; anything else in the tree is not a record.
func validHash(hash string) bool {
	if len(hash) != sha256.Size*2 {
		return false
	}
	for _, c := range hash {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

func (s *Store) path(hash string) string {
	return filepath.Join(s.dir, hash[:2], hash+suffix)
}

// Get returns the payload stored under hash. The record is verified
// against its embedded length and SHA-256; a record that fails —
// torn, truncated, or bit-rotted — is deleted and reported as a miss,
// so corruption degrades to recomputation, never to wrong bytes.
func (s *Store) Get(hash string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.entries[hash]
	if !ok {
		s.stats.Misses++
		return nil, false
	}
	path := s.path(hash)
	payload, err := readRecord(path)
	if err != nil {
		s.dropLocked(el)
		s.stats.Corrupt++
		s.stats.Misses++
		os.Remove(path)
		return nil, false
	}
	s.stats.Hits++
	s.lru.MoveToFront(el)
	// Best-effort recency persistence: the file's mtime is the LRU
	// clock the next Open sorts by.
	now := time.Now()
	os.Chtimes(path, now, now)
	return payload, true
}

// Contains reports whether hash is indexed, without reading or
// touching the record.
func (s *Store) Contains(hash string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.entries[hash]
	return ok
}

// Put stores payload under hash. Content addressing makes records
// immutable: putting an existing hash only refreshes its recency. A
// record bigger than the whole budget is not stored (it would evict
// everything for nothing). The write is atomic — temp file, fsync,
// rename — so a crash at any point leaves either the old state or the
// complete new record.
func (s *Store) Put(hash string, payload []byte) error {
	if !validHash(hash) {
		return fmt.Errorf("store: invalid content address %q", hash)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.entries[hash]; ok {
		s.lru.MoveToFront(el)
		return nil
	}
	data, err := encodeRecord(payload)
	if err != nil {
		return err
	}
	if s.budget > 0 && int64(len(data)) > s.budget {
		return nil
	}
	if err := s.writeAtomic(hash, data); err != nil {
		return err
	}
	r := &record{hash: hash, size: int64(len(data))}
	s.entries[hash] = s.lru.PushFront(r)
	s.stats.Bytes += r.size
	s.evictLocked()
	return nil
}

// writeAtomic commits data as hash's record file via temp + rename.
func (s *Store) writeAtomic(hash string, data []byte) error {
	shard := filepath.Join(s.dir, hash[:2])
	if err := os.MkdirAll(shard, 0o755); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	f, err := os.CreateTemp(shard, tmpPrefix+hash+"-*")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	tmp := f.Name()
	_, werr := f.Write(data)
	if werr == nil {
		werr = f.Sync()
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr == nil {
		werr = os.Rename(tmp, s.path(hash))
	}
	if werr != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: writing %s: %w", hash[:12], werr)
	}
	return nil
}

// evictLocked removes least-recently-used records until the byte
// budget holds. Callers hold s.mu.
func (s *Store) evictLocked() {
	if s.budget <= 0 {
		return
	}
	for s.stats.Bytes > s.budget {
		oldest := s.lru.Back()
		if oldest == nil {
			return
		}
		r := oldest.Value.(*record)
		os.Remove(s.path(r.hash))
		s.dropLocked(oldest)
		s.stats.Evictions++
	}
}

// dropLocked removes an element from the index and byte accounting
// (not from disk). Callers hold s.mu.
func (s *Store) dropLocked(el *list.Element) {
	r := el.Value.(*record)
	s.lru.Remove(el)
	delete(s.entries, r.hash)
	s.stats.Bytes -= r.size
}

// Stats returns a snapshot of the counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Entries = int64(len(s.entries))
	st.Budget = s.budget
	return st
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Len returns the number of committed records.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// Close releases the store. The on-disk state is always consistent,
// so Close has nothing to flush; it exists so callers express
// lifecycle intent (and so a future write-behind tier has a hook).
func (s *Store) Close() error { return nil }

// encodeRecord frames payload as a record: magic, payload SHA-256,
// payload length, gzip-compressed payload.
func encodeRecord(payload []byte) ([]byte, error) {
	var buf bytes.Buffer
	buf.WriteString(magic)
	sum := sha256.Sum256(payload)
	buf.Write(sum[:])
	var lenBytes [8]byte
	binary.BigEndian.PutUint64(lenBytes[:], uint64(len(payload)))
	buf.Write(lenBytes[:])
	zw, err := gzip.NewWriterLevel(&buf, gzip.BestSpeed)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	if _, err := zw.Write(payload); err != nil {
		return nil, fmt.Errorf("store: compressing record: %w", err)
	}
	if err := zw.Close(); err != nil {
		return nil, fmt.Errorf("store: compressing record: %w", err)
	}
	return buf.Bytes(), nil
}

// errCorrupt is the verification failure readRecord reports; Get
// turns it into a discard-and-miss.
var errCorrupt = errors.New("store: corrupt record")

// readRecord reads and fully verifies one record file: magic, exact
// payload length, and payload SHA-256.
func readRecord(path string) ([]byte, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(data) < headerLen || string(data[:len(magic)]) != magic {
		return nil, errCorrupt
	}
	wantSum := data[len(magic) : len(magic)+sha256.Size]
	wantLen := binary.BigEndian.Uint64(data[len(magic)+sha256.Size : headerLen])
	zr, err := gzip.NewReader(bytes.NewReader(data[headerLen:]))
	if err != nil {
		return nil, errCorrupt
	}
	payload, err := io.ReadAll(io.LimitReader(zr, int64(wantLen)+1))
	if err != nil || zr.Close() != nil {
		return nil, errCorrupt
	}
	if uint64(len(payload)) != wantLen {
		return nil, errCorrupt
	}
	if sum := sha256.Sum256(payload); !bytes.Equal(sum[:], wantSum) {
		return nil, errCorrupt
	}
	return payload, nil
}
