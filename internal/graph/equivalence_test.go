package graph

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"testing"
)

// This file pins the CSR builders to the representation they replaced.
// The ref* functions are verbatim ports of the seed's slice-of-slices
// generators (append-per-node adjacency, map[[2]int]bool dedup,
// sort.Slice normalize), consuming their RNG in the identical order.
// Every generator family must produce the exact same edge set — and,
// because ports are positions in sorted rows, the exact same port
// numbering — under the CSR layout. PreferentialAttachment is the one
// deliberate exception: the seed sampled its attachment set from a map
// (iteration-order nondeterministic), so it is checked structurally.

// refAdj is the seed's adjacency representation.
type refAdj struct {
	adj [][]int32
	m   int
}

func newRefAdj(n int) *refAdj { return &refAdj{adj: make([][]int32, n)} }

func (r *refAdj) add(u, v int) {
	r.adj[u] = append(r.adj[u], int32(v))
	r.adj[v] = append(r.adj[v], int32(u))
	r.m++
}

func (r *refAdj) normalize() {
	for _, nb := range r.adj {
		sort.Slice(nb, func(i, j int) bool { return nb[i] < nb[j] })
	}
}

// refFromEdges is the seed FromEdges: insertion-ordered map dedup.
func refFromEdges(n int, edges [][2]int) *refAdj {
	r := newRefAdj(n)
	seen := make(map[[2]int]bool, len(edges))
	for _, e := range edges {
		u, v := e[0], e[1]
		if u > v {
			u, v = v, u
		}
		if seen[[2]int{u, v}] {
			continue
		}
		seen[[2]int{u, v}] = true
		r.add(u, v)
	}
	r.normalize()
	return r
}

func refGNP(n int, p float64, rng *rand.Rand) *refAdj {
	r := newRefAdj(n)
	if p <= 0 || n < 2 {
		return r
	}
	if p >= 1 {
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				r.add(u, v)
			}
		}
		return r
	}
	logq := math.Log1p(-p)
	v, w := 1, -1
	for v < n {
		rr := rng.Float64()
		skip := math.Floor(math.Log1p(-rr) / logq)
		if skip > float64(n)*float64(n) {
			break
		}
		w += 1 + int(skip)
		for w >= v && v < n {
			w -= v
			v++
		}
		if v < n {
			r.add(v, w)
		}
	}
	r.normalize()
	return r
}

func refRandomTree(n int, rng *rand.Rand) *refAdj {
	if n <= 1 {
		return newRefAdj(n)
	}
	if n == 2 {
		return refFromEdges(2, [][2]int{{0, 1}})
	}
	prufer := make([]int, n-2)
	for i := range prufer {
		prufer[i] = rng.Intn(n)
	}
	degree := make([]int, n)
	for i := range degree {
		degree[i] = 1
	}
	for _, v := range prufer {
		degree[v]++
	}
	edges := make([][2]int, 0, n-1)
	leaves := &intHeap{}
	for v := 0; v < n; v++ {
		if degree[v] == 1 {
			leaves.push(v)
		}
	}
	for _, v := range prufer {
		leaf := leaves.pop()
		edges = append(edges, [2]int{leaf, v})
		degree[v]--
		if degree[v] == 1 {
			leaves.push(v)
		}
	}
	a := leaves.pop()
	b := leaves.pop()
	edges = append(edges, [2]int{a, b})
	return refFromEdges(n, edges)
}

func refRandomRegular(n, d int, rng *rand.Rand) *refAdj {
	stubs := make([]int, 0, n*d)
	for v := 0; v < n; v++ {
		for i := 0; i < d; i++ {
			stubs = append(stubs, v)
		}
	}
	rng.Shuffle(len(stubs), func(i, j int) { stubs[i], stubs[j] = stubs[j], stubs[i] })
	seen := make(map[[2]int]bool)
	edges := make([][2]int, 0, n*d/2)
	for i := 0; i+1 < len(stubs); i += 2 {
		u, v := stubs[i], stubs[i+1]
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		if seen[[2]int{u, v}] {
			continue
		}
		seen[[2]int{u, v}] = true
		edges = append(edges, [2]int{u, v})
	}
	return refFromEdges(n, edges)
}

func refRandomGeometric(n int, r float64, rng *rand.Rand) *refAdj {
	type pt struct{ x, y float64 }
	pts := make([]pt, n)
	for i := range pts {
		pts[i] = pt{rng.Float64(), rng.Float64()}
	}
	cell := r
	if cell <= 0 {
		return newRefAdj(n)
	}
	type key struct{ cx, cy int }
	buckets := make(map[key][]int)
	for i, p := range pts {
		k := key{int(p.x / cell), int(p.y / cell)}
		buckets[k] = append(buckets[k], i)
	}
	edges := [][2]int{}
	r2 := r * r
	for i, p := range pts {
		cx, cy := int(p.x/cell), int(p.y/cell)
		for dx := -1; dx <= 1; dx++ {
			for dy := -1; dy <= 1; dy++ {
				for _, j := range buckets[key{cx + dx, cy + dy}] {
					if j <= i {
						continue
					}
					q := pts[j]
					ddx, ddy := p.x-q.x, p.y-q.y
					if ddx*ddx+ddy*ddy <= r2 {
						edges = append(edges, [2]int{i, j})
					}
				}
			}
		}
	}
	return refFromEdges(n, edges)
}

func refTorus(rows, cols int) *refAdj {
	n := rows * cols
	id := func(r, c int) int { return ((r+rows)%rows)*cols + (c+cols)%cols }
	seen := map[[2]int]bool{}
	var edges [][2]int
	add := func(a, b int) {
		if a == b {
			return
		}
		if a > b {
			a, b = b, a
		}
		if !seen[[2]int{a, b}] {
			seen[[2]int{a, b}] = true
			edges = append(edges, [2]int{a, b})
		}
	}
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			add(id(r, c), id(r, c+1))
			add(id(r, c), id(r+1, c))
		}
	}
	return refFromEdges(n, edges)
}

// assertSameLayout checks that g matches the seed-layout reference
// vertex by vertex: identical sorted rows mean identical port numbering
// everywhere, which is what the determinism contract of the simulator
// rides on.
func assertSameLayout(t *testing.T, g *Graph, ref *refAdj) {
	t.Helper()
	if g.N() != len(ref.adj) {
		t.Fatalf("N = %d, reference %d", g.N(), len(ref.adj))
	}
	if g.M() != ref.m {
		t.Fatalf("M = %d, reference %d", g.M(), ref.m)
	}
	for v := 0; v < g.N(); v++ {
		nb := g.Neighbors(v)
		rb := ref.adj[v]
		if len(nb) != len(rb) {
			t.Fatalf("vertex %d: degree %d, reference %d", v, len(nb), len(rb))
		}
		for p := range nb {
			if nb[p] != rb[p] {
				t.Fatalf("vertex %d port %d: neighbor %d, reference %d", v, p, nb[p], rb[p])
			}
		}
	}
}

func TestCSREquivalenceDeterministic(t *testing.T) {
	cases := []struct {
		name string
		g    *Graph
		ref  *refAdj
	}{
		{"cycle1", Cycle(1), refFromEdges(1, nil)},
		{"cycle2", Cycle(2), refFromEdges(2, [][2]int{{0, 1}})},
		{"cycle9", Cycle(9), func() *refAdj {
			var e [][2]int
			for i := 0; i+1 < 9; i++ {
				e = append(e, [2]int{i, i + 1})
			}
			return refFromEdges(9, append(e, [2]int{0, 8}))
		}()},
		{"path7", Path(7), func() *refAdj {
			var e [][2]int
			for i := 0; i+1 < 7; i++ {
				e = append(e, [2]int{i, i + 1})
			}
			return refFromEdges(7, e)
		}()},
		{"complete8", Complete(8), func() *refAdj {
			var e [][2]int
			for u := 0; u < 8; u++ {
				for v := u + 1; v < 8; v++ {
					e = append(e, [2]int{u, v})
				}
			}
			return refFromEdges(8, e)
		}()},
		{"star6", Star(6), func() *refAdj {
			var e [][2]int
			for v := 1; v < 6; v++ {
				e = append(e, [2]int{0, v})
			}
			return refFromEdges(6, e)
		}()},
		{"grid4x5", Grid(4, 5), func() *refAdj {
			id := func(r, c int) int { return r*5 + c }
			var e [][2]int
			for r := 0; r < 4; r++ {
				for c := 0; c < 5; c++ {
					if c+1 < 5 {
						e = append(e, [2]int{id(r, c), id(r, c+1)})
					}
					if r+1 < 4 {
						e = append(e, [2]int{id(r, c), id(r+1, c)})
					}
				}
			}
			return refFromEdges(20, e)
		}()},
		{"btree10", BinaryTree(10), func() *refAdj {
			var e [][2]int
			for v := 0; v < 10; v++ {
				for _, c := range []int{2*v + 1, 2*v + 2} {
					if c < 10 {
						e = append(e, [2]int{v, c})
					}
				}
			}
			return refFromEdges(10, e)
		}()},
		{"caterpillar4x6", Caterpillar(4, 6), func() *refAdj {
			var e [][2]int
			for i := 0; i+1 < 4; i++ {
				e = append(e, [2]int{i, i + 1})
			}
			for l := 0; l < 6; l++ {
				e = append(e, [2]int{l % 4, 4 + l})
			}
			return refFromEdges(10, e)
		}()},
		{"hypercube4", Hypercube(4), func() *refAdj {
			var e [][2]int
			for v := 0; v < 16; v++ {
				for b := 0; b < 4; b++ {
					if w := v ^ (1 << uint(b)); w > v {
						e = append(e, [2]int{v, w})
					}
				}
			}
			return refFromEdges(16, e)
		}()},
		{"bipartite3x4", CompleteBipartite(3, 4), func() *refAdj {
			var e [][2]int
			for u := 0; u < 3; u++ {
				for v := 0; v < 4; v++ {
					e = append(e, [2]int{u, 3 + v})
				}
			}
			return refFromEdges(7, e)
		}()},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) { assertSameLayout(t, tt.g, tt.ref) })
	}
}

// TestCSREquivalenceTorus sweeps the degenerate dimensions where the
// seed relied on its map dedup (sizes 1 and 2 fold wraparound edges
// onto grid edges or self-loops).
func TestCSREquivalenceTorus(t *testing.T) {
	for rows := 1; rows <= 5; rows++ {
		for cols := 1; cols <= 5; cols++ {
			t.Run(fmt.Sprintf("%dx%d", rows, cols), func(t *testing.T) {
				assertSameLayout(t, Torus(rows, cols), refTorus(rows, cols))
			})
		}
	}
}

// TestCSREquivalenceRandom pins the RNG families: the new builders must
// draw from the stream in the seed's exact order so that recorded runs
// (and the golden report) replay bit-identically.
func TestCSREquivalenceRandom(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			n := 50 + int(seed)*37
			gnp := GNP(n, 0.08, rand.New(rand.NewSource(seed)))
			assertSameLayout(t, gnp, refGNP(n, 0.08, rand.New(rand.NewSource(seed))))

			tree := RandomTree(n, rand.New(rand.NewSource(seed)))
			assertSameLayout(t, tree, refRandomTree(n, rand.New(rand.NewSource(seed))))

			reg := RandomRegular(n, 4, rand.New(rand.NewSource(seed)))
			assertSameLayout(t, reg, refRandomRegular(n, 4, rand.New(rand.NewSource(seed))))

			geo := RandomGeometric(n, 0.12, rand.New(rand.NewSource(seed)))
			assertSameLayout(t, geo, refRandomGeometric(n, 0.12, rand.New(rand.NewSource(seed))))
		})
	}
	// GNP extremes take the non-sampling paths.
	assertSameLayout(t, GNP(30, 0, rand.New(rand.NewSource(1))), refGNP(30, 0, rand.New(rand.NewSource(1))))
	assertSameLayout(t, GNP(30, 1, rand.New(rand.NewSource(1))), refGNP(30, 1, rand.New(rand.NewSource(1))))
	// Tiny radii exercise the dense cell grid's clamped cell size.
	assertSameLayout(t,
		RandomGeometric(2000, 0.004, rand.New(rand.NewSource(9))),
		refRandomGeometric(2000, 0.004, rand.New(rand.NewSource(9))))
}

// TestCSREquivalenceFromEdges checks the dedup path against the seed's
// map-based one on adversarial duplicate patterns.
func TestCSREquivalenceFromEdges(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	n := 40
	var edges [][2]int
	for i := 0; i < 600; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v {
			continue
		}
		if rng.Intn(2) == 0 {
			u, v = v, u // both orientations of the same edge must collapse
		}
		edges = append(edges, [2]int{u, v})
	}
	g, err := FromEdges(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	assertSameLayout(t, g, refFromEdges(n, edges))
}

// TestCSREquivalenceUnionInduced covers the derived builders.
func TestCSREquivalenceUnionInduced(t *testing.T) {
	g := DisjointUnion(Cycle(5), Complete(4), Path(3))
	ref := func() *refAdj {
		var e [][2]int
		for _, p := range [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {0, 4}} {
			e = append(e, p)
		}
		for u := 0; u < 4; u++ {
			for v := u + 1; v < 4; v++ {
				e = append(e, [2]int{5 + u, 5 + v})
			}
		}
		e = append(e, [2]int{9, 10}, [2]int{10, 11})
		return refFromEdges(12, e)
	}()
	assertSameLayout(t, g, ref)

	sub, _ := g.Induced([]int{5, 6, 7, 0, 1})
	// Induced relabels in sorted vertex order: 0→0, 1→1, 5→2, 6→3, 7→4.
	assertSameLayout(t, sub, refFromEdges(5, [][2]int{{0, 1}, {2, 3}, {2, 4}, {3, 4}}))
}

// TestPreferentialAttachmentStructure checks the PA family structurally:
// the seed's sampler iterated a Go map, so its edge set was never
// deterministic to begin with — the CSR port is pinned by the invariant
// tests plus these shape properties instead.
func TestPreferentialAttachmentStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n, k := 300, 3
	g := PreferentialAttachment(n, k, rng)
	if g.N() != n {
		t.Fatalf("N = %d", g.N())
	}
	if !g.IsConnected() {
		t.Error("PA graph must be connected")
	}
	if g.M() > n*k {
		t.Errorf("M = %d exceeds n*k = %d", g.M(), n*k)
	}
	if g.M() < n-1 {
		t.Errorf("M = %d below tree bound %d", g.M(), n-1)
	}
	// Degree-proportional attachment concentrates on early vertices.
	if g.Degree(0) <= k {
		t.Errorf("vertex 0 degree %d suspiciously low for a %d-vertex PA graph", g.Degree(0), n)
	}
	// Determinism of the new builder (the seed lacked this property).
	h := PreferentialAttachment(n, k, rand.New(rand.NewSource(5)))
	g2 := PreferentialAttachment(n, k, rand.New(rand.NewSource(5)))
	assertSameGraph(t, h, g2)
}

func assertSameGraph(t *testing.T, a, b *Graph) {
	t.Helper()
	if a.N() != b.N() || a.M() != b.M() {
		t.Fatalf("graphs differ in size: (%d,%d) vs (%d,%d)", a.N(), a.M(), b.N(), b.M())
	}
	for v := 0; v < a.N(); v++ {
		na, nb := a.Neighbors(v), b.Neighbors(v)
		if len(na) != len(nb) {
			t.Fatalf("vertex %d: degrees differ", v)
		}
		for p := range na {
			if na[p] != nb[p] {
				t.Fatalf("vertex %d port %d: %d vs %d", v, p, na[p], nb[p])
			}
		}
	}
}

// TestReversePortConsistency checks the precomputed reverse-port table
// against Port on every family the simulator routes through: for every
// arc, following ReversePort from the far side must land back on the
// originating port.
func TestReversePortConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	graphs := map[string]*Graph{
		"gnp":       GNP(200, 0.05, rng),
		"tree":      RandomTree(150, rng),
		"regular":   RandomRegular(120, 5, rng),
		"geometric": RandomGeometric(150, 0.15, rng),
		"pa":        PreferentialAttachment(150, 2, rng),
		"torus":     Torus(7, 9),
		"hypercube": Hypercube(5),
		"barbell":   Barbell(6, 3),
		"lollipop":  Lollipop(5, 4),
		"union":     DisjointUnion(Cycle(4), Star(5)),
	}
	for name, g := range graphs {
		t.Run(name, func(t *testing.T) {
			for v := 0; v < g.N(); v++ {
				for p := 0; p < g.Degree(v); p++ {
					w := g.Neighbor(v, p)
					rp := g.ReversePort(v, p)
					if got := g.Neighbor(w, rp); got != v {
						t.Fatalf("Neighbor(%d, ReversePort(%d,%d)=%d) = %d, want %d", w, v, p, rp, got, v)
					}
					if pp := g.Port(w, v); pp != rp {
						t.Fatalf("ReversePort(%d,%d) = %d, Port(%d,%d) = %d", v, p, rp, w, v, pp)
					}
					if pp := g.Port(v, w); pp != p {
						t.Fatalf("Port(%d,%d) = %d, want %d", v, w, pp, p)
					}
				}
				if g.Port(v, v) >= 0 {
					t.Fatalf("Port(%d,%d) should be -1", v, v)
				}
			}
		})
	}
}
