package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFromEdgesBasic(t *testing.T) {
	g, err := FromEdges(4, [][2]int{{0, 1}, {1, 2}, {2, 3}, {1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 4 {
		t.Errorf("N = %d, want 4", g.N())
	}
	if g.M() != 3 {
		t.Errorf("M = %d, want 3 (duplicate collapsed)", g.M())
	}
	if !g.HasEdge(1, 2) || !g.HasEdge(2, 1) {
		t.Error("HasEdge(1,2) should hold in both directions")
	}
	if g.HasEdge(0, 3) {
		t.Error("HasEdge(0,3) should be false")
	}
	if d := g.Degree(1); d != 2 {
		t.Errorf("Degree(1) = %d, want 2", d)
	}
}

func TestFromEdgesErrors(t *testing.T) {
	if _, err := FromEdges(3, [][2]int{{1, 1}}); err == nil {
		t.Error("expected error for self-loop")
	}
	if _, err := FromEdges(3, [][2]int{{0, 3}}); err == nil {
		t.Error("expected error for out-of-range vertex")
	}
	if _, err := FromEdges(3, [][2]int{{-1, 0}}); err == nil {
		t.Error("expected error for negative vertex")
	}
}

func TestNeighborsSortedAndPorts(t *testing.T) {
	g := MustFromEdges(5, [][2]int{{2, 4}, {2, 0}, {2, 3}, {2, 1}})
	nb := g.Neighbors(2)
	want := []int32{0, 1, 3, 4}
	if len(nb) != len(want) {
		t.Fatalf("len = %d, want %d", len(nb), len(want))
	}
	for i := range want {
		if nb[i] != want[i] {
			t.Errorf("port %d -> %d, want %d", i, nb[i], want[i])
		}
		if g.Neighbor(2, i) != int(want[i]) {
			t.Errorf("Neighbor(2,%d) = %d, want %d", i, g.Neighbor(2, i), want[i])
		}
	}
}

func TestComponents(t *testing.T) {
	g := MustFromEdges(7, [][2]int{{0, 1}, {1, 2}, {3, 4}})
	comps := g.Components()
	if len(comps) != 4 {
		t.Fatalf("components = %d, want 4", len(comps))
	}
	if got := comps[0]; len(got) != 3 || got[0] != 0 || got[2] != 2 {
		t.Errorf("first component = %v, want [0 1 2]", got)
	}
	if g.IsConnected() {
		t.Error("graph should not be connected")
	}
	if !Cycle(5).IsConnected() {
		t.Error("cycle should be connected")
	}
}

func TestInduced(t *testing.T) {
	g := Cycle(6)
	sub, mapping := g.Induced([]int{0, 1, 2, 4})
	if sub.N() != 4 {
		t.Fatalf("induced N = %d, want 4", sub.N())
	}
	if sub.M() != 2 { // edges {0,1},{1,2}; vertex 4 isolated
		t.Errorf("induced M = %d, want 2", sub.M())
	}
	if mapping[3] != 4 {
		t.Errorf("mapping[3] = %d, want 4", mapping[3])
	}
	// Duplicate input vertices are collapsed.
	sub2, _ := g.Induced([]int{3, 3, 3})
	if sub2.N() != 1 {
		t.Errorf("induced with duplicates N = %d, want 1", sub2.N())
	}
}

func TestGenerators(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tests := []struct {
		name      string
		g         *Graph
		wantN     int
		wantM     int // -1 to skip
		connected bool
	}{
		{"cycle5", Cycle(5), 5, 5, true},
		{"cycle2", Cycle(2), 2, 1, true},
		{"path4", Path(4), 4, 3, true},
		{"path1", Path(1), 1, 0, true},
		{"complete6", Complete(6), 6, 15, true},
		{"star7", Star(7), 7, 6, true},
		{"grid3x4", Grid(3, 4), 12, 17, true},
		{"btree7", BinaryTree(7), 7, 6, true},
		{"randomtree50", RandomTree(50, rng), 50, 49, true},
		{"caterpillar", Caterpillar(5, 8), 13, 12, true},
		{"pa", PreferentialAttachment(40, 2, rng), 40, -1, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if tt.g.N() != tt.wantN {
				t.Errorf("N = %d, want %d", tt.g.N(), tt.wantN)
			}
			if tt.wantM >= 0 && tt.g.M() != tt.wantM {
				t.Errorf("M = %d, want %d", tt.g.M(), tt.wantM)
			}
			if tt.connected != tt.g.IsConnected() {
				t.Errorf("IsConnected = %v, want %v", tt.g.IsConnected(), tt.connected)
			}
		})
	}
}

func TestGNPEdgeCases(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	if g := GNP(10, 0, rng); g.M() != 0 {
		t.Errorf("GNP p=0 has %d edges", g.M())
	}
	if g := GNP(10, 1, rng); g.M() != 45 {
		t.Errorf("GNP p=1 has %d edges, want 45", g.M())
	}
	if g := GNP(1, 0.5, rng); g.N() != 1 || g.M() != 0 {
		t.Errorf("GNP n=1 = %v", g)
	}
}

func TestGNPEdgeCountConcentrates(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n, p := 400, 0.05
	g := GNP(n, p, rng)
	mean := p * float64(n*(n-1)) / 2
	if f := float64(g.M()); f < 0.7*mean || f > 1.3*mean {
		t.Errorf("GNP edge count %d far from mean %.0f", g.M(), mean)
	}
}

func TestRandomRegular(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := RandomRegular(100, 4, rng)
	if g.MaxDegree() > 4 {
		t.Errorf("max degree %d > 4", g.MaxDegree())
	}
	// Most vertices hit the target degree.
	full := 0
	for v := 0; v < g.N(); v++ {
		if g.Degree(v) == 4 {
			full++
		}
	}
	if full < 80 {
		t.Errorf("only %d/100 vertices reached degree 4", full)
	}
}

func TestRandomGeometric(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := RandomGeometric(200, 0.15, rng)
	if g.N() != 200 {
		t.Fatalf("N = %d", g.N())
	}
	if g.M() == 0 {
		t.Error("geometric graph with r=0.15 on 200 points should have edges")
	}
	if g2 := RandomGeometric(10, 0, rng); g2.M() != 0 {
		t.Error("r=0 must give empty graph")
	}
}

func TestDisjointUnion(t *testing.T) {
	g := DisjointUnion(Cycle(3), Path(2), New(1))
	if g.N() != 6 {
		t.Fatalf("N = %d, want 6", g.N())
	}
	if g.M() != 4 {
		t.Errorf("M = %d, want 4", g.M())
	}
	if !g.HasEdge(3, 4) {
		t.Error("path edge should be offset to (3,4)")
	}
	if g.HasEdge(2, 3) {
		t.Error("no edge should cross blocks")
	}
	if comps := g.Components(); len(comps) != 3 {
		t.Errorf("components = %d, want 3", len(comps))
	}
}

func TestDegreeHistogram(t *testing.T) {
	h := DegreeHistogram(Star(5))
	if h[1] != 4 || h[4] != 1 {
		t.Errorf("histogram = %v", h)
	}
}

func TestSortedComponentSizes(t *testing.T) {
	g := DisjointUnion(Cycle(4), Path(2), New(3))
	sizes := SortedComponentSizes(g)
	want := []int{4, 2, 1, 1, 1}
	if len(sizes) != len(want) {
		t.Fatalf("sizes = %v", sizes)
	}
	for i := range want {
		if sizes[i] != want[i] {
			t.Fatalf("sizes = %v, want %v", sizes, want)
		}
	}
}

func TestClone(t *testing.T) {
	g := Cycle(4)
	c := g.Clone()
	c.nbr[0] = 99
	if g.nbr[0] == 99 {
		t.Error("Clone must deep-copy adjacency")
	}
	if c.N() != g.N() || c.M() != g.M() {
		t.Error("Clone must preserve sizes")
	}
}

// Property: every generated graph has symmetric, sorted, self-loop-free
// adjacency and consistent edge count.
func TestQuickGraphInvariants(t *testing.T) {
	check := func(g *Graph) bool {
		total := 0
		for u := 0; u < g.N(); u++ {
			nb := g.Neighbors(u)
			for i, w := range nb {
				if int(w) == u {
					return false // self-loop
				}
				if i > 0 && nb[i-1] >= w {
					return false // unsorted or duplicate
				}
				if !g.HasEdge(int(w), u) {
					return false // asymmetric
				}
			}
			total += len(nb)
		}
		return total == 2*g.M()
	}
	f := func(seed int64, nn uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nn%60) + 2
		d := 3
		if d >= n {
			d = n - 1
		}
		gs := []*Graph{
			GNP(n, 0.2, rng),
			RandomTree(n, rng),
			PreferentialAttachment(n, 2, rng),
			RandomRegular(n, d, rng),
			RandomGeometric(n, 0.3, rng),
			Cycle(n), Path(n), Star(n), BinaryTree(n),
		}
		for _, g := range gs {
			if !check(g) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestRandomTreeIsTree(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{1, 2, 3, 10, 100} {
		g := RandomTree(n, rng)
		if g.N() != n {
			t.Fatalf("n=%d: N = %d", n, g.N())
		}
		if n > 0 && g.M() != n-1 {
			t.Errorf("n=%d: M = %d, want %d", n, g.M(), n-1)
		}
		if !g.IsConnected() {
			t.Errorf("n=%d: tree not connected", n)
		}
	}
}
