package graph

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

func TestEdgeListRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, g := range []*Graph{
		Cycle(12),
		GNP(50, 0.1, rng),
		New(5), // isolated vertices survive via the header
		Hypercube(4),
	} {
		var buf bytes.Buffer
		if err := WriteEdgeList(&buf, g); err != nil {
			t.Fatal(err)
		}
		back, err := ReadEdgeList(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if back.N() != g.N() || back.M() != g.M() {
			t.Fatalf("round trip: got n=%d m=%d, want n=%d m=%d",
				back.N(), back.M(), g.N(), g.M())
		}
		for u := 0; u < g.N(); u++ {
			nb, nb2 := g.Neighbors(u), back.Neighbors(u)
			if len(nb) != len(nb2) {
				t.Fatalf("vertex %d adjacency mismatch", u)
			}
			for i := range nb {
				if nb[i] != nb2[i] {
					t.Fatalf("vertex %d adjacency mismatch", u)
				}
			}
		}
	}
}

func TestReadEdgeListNoHeader(t *testing.T) {
	g, err := ReadEdgeList(strings.NewReader("0 1\n1 2\n"))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 3 || g.M() != 2 {
		t.Errorf("got n=%d m=%d", g.N(), g.M())
	}
}

func TestReadEdgeListCommentsAndBlank(t *testing.T) {
	in := "% comment\n\n// another\n# 4 2\n0 1\n\n2 3\n"
	g, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 4 || g.M() != 2 {
		t.Errorf("got n=%d m=%d", g.N(), g.M())
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	if _, err := ReadEdgeList(strings.NewReader("0 x\n")); err == nil {
		t.Error("garbage line accepted")
	}
	if _, err := ReadEdgeList(strings.NewReader("# 2 1\n0 5\n")); err == nil {
		t.Error("vertex beyond header accepted")
	}
	if _, err := ReadEdgeList(strings.NewReader("1 1\n")); err == nil {
		t.Error("self-loop accepted")
	}
}

func TestHypercube(t *testing.T) {
	g := Hypercube(4)
	if g.N() != 16 || g.M() != 32 {
		t.Fatalf("Q4: n=%d m=%d, want 16/32", g.N(), g.M())
	}
	for v := 0; v < g.N(); v++ {
		if g.Degree(v) != 4 {
			t.Fatalf("Q4 vertex %d degree %d", v, g.Degree(v))
		}
	}
	if !g.IsConnected() {
		t.Error("hypercube must be connected")
	}
	if q0 := Hypercube(0); q0.N() != 1 || q0.M() != 0 {
		t.Error("Q0 should be a single vertex")
	}
}

func TestTorus(t *testing.T) {
	g := Torus(4, 5)
	if g.N() != 20 {
		t.Fatalf("n = %d", g.N())
	}
	for v := 0; v < g.N(); v++ {
		if g.Degree(v) != 4 {
			t.Fatalf("torus vertex %d degree %d, want 4", v, g.Degree(v))
		}
	}
	// 2-wide torus collapses duplicate wrap edges.
	g2 := Torus(2, 3)
	if g2.MaxDegree() > 4 {
		t.Errorf("2x3 torus max degree %d", g2.MaxDegree())
	}
}

func TestCompleteBipartite(t *testing.T) {
	g := CompleteBipartite(3, 4)
	if g.N() != 7 || g.M() != 12 {
		t.Fatalf("K3,4: n=%d m=%d", g.N(), g.M())
	}
	if g.HasEdge(0, 1) {
		t.Error("no edges within a part")
	}
	if !g.HasEdge(0, 3) {
		t.Error("cross edges missing")
	}
}

func TestBarbell(t *testing.T) {
	g := Barbell(5, 3)
	if g.N() != 13 {
		t.Fatalf("n = %d", g.N())
	}
	wantM := 2*10 + 4 // two K5s + path of 3 intermediates (4 bridge edges)
	if g.M() != wantM {
		t.Errorf("m = %d, want %d", g.M(), wantM)
	}
	if !g.IsConnected() {
		t.Error("barbell must be connected")
	}
	// Zero-length path: single bridging edge.
	g0 := Barbell(4, 0)
	if g0.M() != 2*6+1 || !g0.IsConnected() {
		t.Errorf("barbell(4,0): m=%d connected=%v", g0.M(), g0.IsConnected())
	}
}

func TestLollipop(t *testing.T) {
	g := Lollipop(6, 4)
	if g.N() != 10 || g.M() != 15+4 {
		t.Fatalf("lollipop: n=%d m=%d", g.N(), g.M())
	}
	if !g.IsConnected() {
		t.Error("lollipop must be connected")
	}
	if g.Degree(9) != 1 {
		t.Error("tail end should be degree 1")
	}
}
