package graph

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// GNP returns an Erdős–Rényi random graph G(n, p) drawn with rng.
// For p <= 0 it returns the empty graph, for p >= 1 the complete graph.
func GNP(n int, p float64, rng *rand.Rand) *Graph {
	g := New(n)
	if p <= 0 || n < 2 {
		return g
	}
	if p >= 1 {
		return Complete(n)
	}
	// Batagelj–Brandes geometric skipping over the lower-triangular
	// pairs (v, w), w < v: O(n + m) expected time.
	logq := math.Log1p(-p)
	v, w := 1, -1
	for v < n {
		r := rng.Float64()
		skip := math.Floor(math.Log1p(-r) / logq)
		if skip > float64(n)*float64(n) { // overshoots every remaining pair
			break
		}
		w += 1 + int(skip)
		for w >= v && v < n {
			w -= v
			v++
		}
		if v < n {
			g.adj[v] = append(g.adj[v], int32(w))
			g.adj[w] = append(g.adj[w], int32(v))
			g.m++
		}
	}
	g.normalize()
	return g
}

// Cycle returns the n-cycle (n >= 3), or a path for n < 3.
func Cycle(n int) *Graph {
	g := Path(n)
	if n >= 3 {
		g.adj[0] = append(g.adj[0], int32(n-1))
		g.adj[n-1] = append(g.adj[n-1], int32(0))
		g.m++
		g.normalize()
	}
	return g
}

// Path returns the path 0-1-...-(n-1).
func Path(n int) *Graph {
	g := New(n)
	for i := 0; i+1 < n; i++ {
		g.adj[i] = append(g.adj[i], int32(i+1))
		g.adj[i+1] = append(g.adj[i+1], int32(i))
		g.m++
	}
	return g
}

// Complete returns the complete graph K_n.
func Complete(n int) *Graph {
	g := New(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			g.adj[u] = append(g.adj[u], int32(v))
			g.adj[v] = append(g.adj[v], int32(u))
			g.m++
		}
	}
	return g
}

// Star returns the star K_{1,n-1} with center 0.
func Star(n int) *Graph {
	g := New(n)
	for v := 1; v < n; v++ {
		g.adj[0] = append(g.adj[0], int32(v))
		g.adj[v] = append(g.adj[v], int32(0))
		g.m++
	}
	g.normalize()
	return g
}

// Grid returns the rows x cols grid graph.
func Grid(rows, cols int) *Graph {
	n := rows * cols
	g := New(n)
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				u, v := id(r, c), id(r, c+1)
				g.adj[u] = append(g.adj[u], int32(v))
				g.adj[v] = append(g.adj[v], int32(u))
				g.m++
			}
			if r+1 < rows {
				u, v := id(r, c), id(r+1, c)
				g.adj[u] = append(g.adj[u], int32(v))
				g.adj[v] = append(g.adj[v], int32(u))
				g.m++
			}
		}
	}
	g.normalize()
	return g
}

// RandomTree returns a uniformly random labeled tree on n vertices via
// a random Prüfer sequence.
func RandomTree(n int, rng *rand.Rand) *Graph {
	if n <= 1 {
		return New(n)
	}
	if n == 2 {
		return MustFromEdges(2, [][2]int{{0, 1}})
	}
	prufer := make([]int, n-2)
	for i := range prufer {
		prufer[i] = rng.Intn(n)
	}
	degree := make([]int, n)
	for i := range degree {
		degree[i] = 1
	}
	for _, v := range prufer {
		degree[v]++
	}
	edges := make([][2]int, 0, n-1)
	// Min-heap over leaves by index for determinism.
	leaves := &intHeap{}
	for v := 0; v < n; v++ {
		if degree[v] == 1 {
			leaves.push(v)
		}
	}
	for _, v := range prufer {
		leaf := leaves.pop()
		edges = append(edges, [2]int{leaf, v})
		degree[v]--
		if degree[v] == 1 {
			leaves.push(v)
		}
	}
	a := leaves.pop()
	b := leaves.pop()
	edges = append(edges, [2]int{a, b})
	return MustFromEdges(n, edges)
}

// BinaryTree returns the complete binary tree on n vertices with root 0
// (vertex v has children 2v+1 and 2v+2 when in range).
func BinaryTree(n int) *Graph {
	edges := make([][2]int, 0, n)
	for v := 0; v < n; v++ {
		for _, c := range []int{2*v + 1, 2*v + 2} {
			if c < n {
				edges = append(edges, [2]int{v, c})
			}
		}
	}
	return MustFromEdges(n, edges)
}

// RandomRegular returns an (approximately) d-regular random graph via
// the configuration model with rejection of self-loops and multi-edges;
// a small number of vertices may end up with degree below d.
func RandomRegular(n, d int, rng *rand.Rand) *Graph {
	if d >= n {
		panic(fmt.Sprintf("graph: RandomRegular requires d < n, got d=%d n=%d", d, n))
	}
	stubs := make([]int, 0, n*d)
	for v := 0; v < n; v++ {
		for i := 0; i < d; i++ {
			stubs = append(stubs, v)
		}
	}
	rng.Shuffle(len(stubs), func(i, j int) { stubs[i], stubs[j] = stubs[j], stubs[i] })
	seen := make(map[[2]int]bool)
	edges := make([][2]int, 0, n*d/2)
	for i := 0; i+1 < len(stubs); i += 2 {
		u, v := stubs[i], stubs[i+1]
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		if seen[[2]int{u, v}] {
			continue
		}
		seen[[2]int{u, v}] = true
		edges = append(edges, [2]int{u, v})
	}
	return MustFromEdges(n, edges)
}

// PreferentialAttachment returns a Barabási–Albert style power-law graph:
// each new vertex attaches to k existing vertices chosen proportionally
// to degree (with repetition collapsed).
func PreferentialAttachment(n, k int, rng *rand.Rand) *Graph {
	if n <= 0 {
		return New(0)
	}
	if k < 1 {
		k = 1
	}
	edges := make([][2]int, 0, n*k)
	// targets holds one entry per endpoint, so sampling uniformly from it
	// is degree-proportional sampling.
	targets := []int{0}
	for v := 1; v < n; v++ {
		picked := map[int]bool{}
		for t := 0; t < k && t < v; t++ {
			w := targets[rng.Intn(len(targets))]
			if w == v || picked[w] {
				continue
			}
			picked[w] = true
			edges = append(edges, [2]int{v, w})
		}
		if len(picked) == 0 {
			// Guarantee connectivity by attaching to a uniform earlier vertex.
			w := rng.Intn(v)
			picked[w] = true
			edges = append(edges, [2]int{v, w})
		}
		for w := range picked {
			targets = append(targets, w, v)
		}
	}
	return MustFromEdges(n, edges)
}

// RandomGeometric returns a random geometric graph: n points uniform in
// the unit square, an edge between points within distance r.
func RandomGeometric(n int, r float64, rng *rand.Rand) *Graph {
	type pt struct{ x, y float64 }
	pts := make([]pt, n)
	for i := range pts {
		pts[i] = pt{rng.Float64(), rng.Float64()}
	}
	// Grid bucketing for near-linear construction.
	cell := r
	if cell <= 0 {
		return New(n)
	}
	type key struct{ cx, cy int }
	buckets := make(map[key][]int)
	for i, p := range pts {
		k := key{int(p.x / cell), int(p.y / cell)}
		buckets[k] = append(buckets[k], i)
	}
	edges := [][2]int{}
	r2 := r * r
	for i, p := range pts {
		cx, cy := int(p.x/cell), int(p.y/cell)
		for dx := -1; dx <= 1; dx++ {
			for dy := -1; dy <= 1; dy++ {
				for _, j := range buckets[key{cx + dx, cy + dy}] {
					if j <= i {
						continue
					}
					q := pts[j]
					ddx, ddy := p.x-q.x, p.y-q.y
					if ddx*ddx+ddy*ddy <= r2 {
						edges = append(edges, [2]int{i, j})
					}
				}
			}
		}
	}
	return MustFromEdges(n, edges)
}

// Caterpillar returns a caterpillar tree: a spine path of length
// spine with legs pendant vertices attached round-robin to spine nodes.
// Useful as an adversarial low-diameter-tree workload.
func Caterpillar(spine, legs int) *Graph {
	n := spine + legs
	edges := make([][2]int, 0, n-1)
	for i := 0; i+1 < spine; i++ {
		edges = append(edges, [2]int{i, i + 1})
	}
	for l := 0; l < legs; l++ {
		edges = append(edges, [2]int{l % spine, spine + l})
	}
	return MustFromEdges(n, edges)
}

// DisjointUnion returns the disjoint union of the given graphs, with
// vertex blocks in argument order.
func DisjointUnion(gs ...*Graph) *Graph {
	total := 0
	for _, g := range gs {
		total += g.N()
	}
	out := New(total)
	base := 0
	for _, g := range gs {
		for u := 0; u < g.N(); u++ {
			for _, w := range g.adj[u] {
				out.adj[base+u] = append(out.adj[base+u], int32(base+int(w)))
			}
		}
		out.m += g.m
		base += g.N()
	}
	out.normalize()
	return out
}

// intHeap is a tiny min-heap used by RandomTree.
type intHeap struct{ a []int }

func (h *intHeap) push(v int) {
	h.a = append(h.a, v)
	i := len(h.a) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h.a[p] <= h.a[i] {
			break
		}
		h.a[p], h.a[i] = h.a[i], h.a[p]
		i = p
	}
}

func (h *intHeap) pop() int {
	v := h.a[0]
	last := len(h.a) - 1
	h.a[0] = h.a[last]
	h.a = h.a[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < last && h.a[l] < h.a[small] {
			small = l
		}
		if r < last && h.a[r] < h.a[small] {
			small = r
		}
		if small == i {
			break
		}
		h.a[i], h.a[small] = h.a[small], h.a[i]
		i = small
	}
	return v
}

// DegreeHistogram returns counts[d] = number of vertices of degree d.
func DegreeHistogram(g *Graph) []int {
	counts := make([]int, g.MaxDegree()+1)
	for v := 0; v < g.N(); v++ {
		counts[g.Degree(v)]++
	}
	return counts
}

// SortedComponentSizes returns component sizes in decreasing order.
func SortedComponentSizes(g *Graph) []int {
	comps := g.Components()
	sizes := make([]int, len(comps))
	for i, c := range comps {
		sizes[i] = len(c)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(sizes)))
	return sizes
}
