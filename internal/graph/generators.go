package graph

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// The generators build straight into CSR form: deterministic families
// stream their edge enumeration through build's count + fill passes
// (nothing materialized), while randomized families consume their RNG
// stream exactly once into flat half-edge arrays and hand those to
// fromPairs. No generator keeps per-node append slices or a
// map-of-edges; dedup, where a family needs it, is sort+compact over
// the assembled rows.

// GNP returns an Erdős–Rényi random graph G(n, p) drawn with rng.
// For p <= 0 it returns the empty graph, for p >= 1 the complete graph.
func GNP(n int, p float64, rng *rand.Rand) *Graph {
	if p <= 0 || n < 2 {
		return New(n)
	}
	if p >= 1 {
		return Complete(n)
	}
	est := int(p*float64(n)*float64(n-1)/2*1.1) + 16
	us := make([]int32, 0, est)
	vs := make([]int32, 0, est)
	// Batagelj–Brandes geometric skipping over the lower-triangular
	// pairs (v, w), w < v: O(n + m) expected time.
	logq := math.Log1p(-p)
	v, w := 1, -1
	for v < n {
		r := rng.Float64()
		skip := math.Floor(math.Log1p(-r) / logq)
		if skip > float64(n)*float64(n) { // overshoots every remaining pair
			break
		}
		w += 1 + int(skip)
		for w >= v && v < n {
			w -= v
			v++
		}
		if v < n {
			us = append(us, int32(v))
			vs = append(vs, int32(w))
		}
	}
	return fromPairs(n, us, vs, false)
}

// Cycle returns the n-cycle (n >= 3), or a path for n < 3.
func Cycle(n int) *Graph {
	return build(n, func(edge func(u, v int)) {
		for i := 0; i+1 < n; i++ {
			edge(i, i+1)
		}
		if n >= 3 {
			edge(0, n-1)
		}
	})
}

// Path returns the path 0-1-...-(n-1).
func Path(n int) *Graph {
	return build(n, func(edge func(u, v int)) {
		for i := 0; i+1 < n; i++ {
			edge(i, i+1)
		}
	})
}

// Complete returns the complete graph K_n.
func Complete(n int) *Graph {
	return build(n, func(edge func(u, v int)) {
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				edge(u, v)
			}
		}
	})
}

// Star returns the star K_{1,n-1} with center 0.
func Star(n int) *Graph {
	return build(n, func(edge func(u, v int)) {
		for v := 1; v < n; v++ {
			edge(0, v)
		}
	})
}

// Grid returns the rows x cols grid graph.
func Grid(rows, cols int) *Graph {
	id := func(r, c int) int { return r*cols + c }
	return build(rows*cols, func(edge func(u, v int)) {
		for r := 0; r < rows; r++ {
			for c := 0; c < cols; c++ {
				if c+1 < cols {
					edge(id(r, c), id(r, c+1))
				}
				if r+1 < rows {
					edge(id(r, c), id(r+1, c))
				}
			}
		}
	})
}

// RandomTree returns a uniformly random labeled tree on n vertices via
// a random Prüfer sequence.
func RandomTree(n int, rng *rand.Rand) *Graph {
	if n <= 1 {
		return New(n)
	}
	if n == 2 {
		return MustFromEdges(2, [][2]int{{0, 1}})
	}
	prufer := make([]int, n-2)
	for i := range prufer {
		prufer[i] = rng.Intn(n)
	}
	degree := make([]int, n)
	for i := range degree {
		degree[i] = 1
	}
	for _, v := range prufer {
		degree[v]++
	}
	us := make([]int32, 0, n-1)
	vs := make([]int32, 0, n-1)
	// Min-heap over leaves by index for determinism.
	leaves := &intHeap{}
	for v := 0; v < n; v++ {
		if degree[v] == 1 {
			leaves.push(v)
		}
	}
	for _, v := range prufer {
		leaf := leaves.pop()
		us = append(us, int32(leaf))
		vs = append(vs, int32(v))
		degree[v]--
		if degree[v] == 1 {
			leaves.push(v)
		}
	}
	a := leaves.pop()
	b := leaves.pop()
	us = append(us, int32(a))
	vs = append(vs, int32(b))
	return fromPairs(n, us, vs, false)
}

// BinaryTree returns the complete binary tree on n vertices with root 0
// (vertex v has children 2v+1 and 2v+2 when in range).
func BinaryTree(n int) *Graph {
	return build(n, func(edge func(u, v int)) {
		for v := 0; v < n; v++ {
			for _, c := range [2]int{2*v + 1, 2*v + 2} {
				if c < n {
					edge(v, c)
				}
			}
		}
	})
}

// RandomRegular returns an (approximately) d-regular random graph via
// the configuration model with rejection of self-loops and multi-edges;
// a small number of vertices may end up with degree below d.
func RandomRegular(n, d int, rng *rand.Rand) *Graph {
	if d >= n {
		panic(fmt.Sprintf("graph: RandomRegular requires d < n, got d=%d n=%d", d, n))
	}
	stubs := make([]int, 0, n*d)
	for v := 0; v < n; v++ {
		for i := 0; i < d; i++ {
			stubs = append(stubs, v)
		}
	}
	rng.Shuffle(len(stubs), func(i, j int) { stubs[i], stubs[j] = stubs[j], stubs[i] })
	us := make([]int32, 0, n*d/2)
	vs := make([]int32, 0, n*d/2)
	for i := 0; i+1 < len(stubs); i += 2 {
		u, v := stubs[i], stubs[i+1]
		if u == v {
			continue
		}
		us = append(us, int32(u))
		vs = append(vs, int32(v))
	}
	// Multi-edges from the pairing collapse in the dedup compaction.
	return fromPairs(n, us, vs, true)
}

// PreferentialAttachment returns a Barabási–Albert style power-law graph:
// each new vertex attaches to k existing vertices chosen proportionally
// to degree (with repetition collapsed). Attachment bookkeeping is a
// small pick list rather than a map, so the construction is fully
// deterministic for a fixed rng stream.
func PreferentialAttachment(n, k int, rng *rand.Rand) *Graph {
	if n <= 0 {
		return New(0)
	}
	if k < 1 {
		k = 1
	}
	us := make([]int32, 0, n*k)
	vs := make([]int32, 0, n*k)
	// targets holds one entry per endpoint, so sampling uniformly from it
	// is degree-proportional sampling.
	targets := make([]int32, 1, 2*n*k)
	picked := make([]int32, 0, k)
	for v := 1; v < n; v++ {
		picked = picked[:0]
		for t := 0; t < k && t < v; t++ {
			w := targets[rng.Intn(len(targets))]
			if int(w) == v || contains32(picked, w) {
				continue
			}
			picked = append(picked, w)
			us = append(us, int32(v))
			vs = append(vs, w)
		}
		if len(picked) == 0 {
			// Guarantee connectivity by attaching to a uniform earlier vertex.
			w := int32(rng.Intn(v))
			picked = append(picked, w)
			us = append(us, int32(v))
			vs = append(vs, w)
		}
		for _, w := range picked {
			targets = append(targets, w, int32(v))
		}
	}
	return fromPairs(n, us, vs, false)
}

// contains32 reports whether x occurs in s (s is at most k entries, so
// a linear scan beats any map).
func contains32(s []int32, x int32) bool {
	for _, y := range s {
		if y == x {
			return true
		}
	}
	return false
}

// RandomGeometric returns a random geometric graph: n points uniform in
// the unit square, an edge between points within distance r.
func RandomGeometric(n int, r float64, rng *rand.Rand) *Graph {
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i] = rng.Float64()
		ys[i] = rng.Float64()
	}
	if r <= 0 {
		return New(n)
	}
	// Grid bucketing for near-linear construction: a dense cell grid
	// filled by counting sort (the same count + fill discipline as the
	// CSR build itself). Cells are at least r wide so the 3×3 cell
	// neighborhood covers the radius, and at least 1/√(4n+16) wide so
	// the grid stays O(n) even for tiny radii.
	cell := r
	if minCell := 1 / math.Sqrt(float64(4*n+16)); cell < minCell {
		cell = minCell
	}
	w := int(1/cell) + 2
	counts := make([]int32, w*w+1)
	cellOf := func(i int) int {
		return int(xs[i]/cell)*w + int(ys[i]/cell)
	}
	for i := 0; i < n; i++ {
		counts[cellOf(i)+1]++
	}
	for c := 1; c <= w*w; c++ {
		counts[c] += counts[c-1]
	}
	order := make([]int32, n) // point indices grouped by cell, ascending within
	cur := append([]int32(nil), counts[:w*w]...)
	for i := 0; i < n; i++ {
		c := cellOf(i)
		order[cur[c]] = int32(i)
		cur[c]++
	}
	var us, vs []int32
	r2 := r * r
	for i := 0; i < n; i++ {
		cx, cy := int(xs[i]/cell), int(ys[i]/cell)
		for dx := -1; dx <= 1; dx++ {
			for dy := -1; dy <= 1; dy++ {
				nx, ny := cx+dx, cy+dy
				if nx < 0 || nx >= w || ny < 0 || ny >= w {
					continue
				}
				c := nx*w + ny
				for _, j32 := range order[counts[c]:counts[c+1]] {
					j := int(j32)
					if j <= i {
						continue
					}
					ddx, ddy := xs[i]-xs[j], ys[i]-ys[j]
					if ddx*ddx+ddy*ddy <= r2 {
						us = append(us, int32(i))
						vs = append(vs, j32)
					}
				}
			}
		}
	}
	return fromPairs(n, us, vs, false)
}

// Caterpillar returns a caterpillar tree: a spine path of length
// spine with legs pendant vertices attached round-robin to spine nodes.
// Useful as an adversarial low-diameter-tree workload.
func Caterpillar(spine, legs int) *Graph {
	return build(spine+legs, func(edge func(u, v int)) {
		for i := 0; i+1 < spine; i++ {
			edge(i, i+1)
		}
		for l := 0; l < legs; l++ {
			edge(l%spine, spine+l)
		}
	})
}

// DisjointUnion returns the disjoint union of the given graphs, with
// vertex blocks in argument order. Because each input is already in CSR
// form with sorted rows, the union is a straight concatenation: rows
// copy with a vertex-index shift.
func DisjointUnion(gs ...*Graph) *Graph {
	total, arcs, edges := 0, 0, 0
	for _, g := range gs {
		total += g.N()
		arcs += len(g.nbr)
		edges += g.m
	}
	checkEdgeCount(edges)
	out := &Graph{
		off: make([]int32, total+1),
		nbr: make([]int32, arcs),
	}
	base, pos := 0, int32(0)
	for _, g := range gs {
		for v := 0; v < g.N(); v++ {
			out.off[base+v] = pos + g.off[v]
		}
		for i, w := range g.nbr {
			out.nbr[int(pos)+i] = w + int32(base)
		}
		base += g.N()
		pos += int32(len(g.nbr))
		out.m += g.m
	}
	out.off[total] = pos
	return out
}

// intHeap is a tiny min-heap used by RandomTree.
type intHeap struct{ a []int }

func (h *intHeap) push(v int) {
	h.a = append(h.a, v)
	i := len(h.a) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h.a[p] <= h.a[i] {
			break
		}
		h.a[p], h.a[i] = h.a[i], h.a[p]
		i = p
	}
}

func (h *intHeap) pop() int {
	v := h.a[0]
	last := len(h.a) - 1
	h.a[0] = h.a[last]
	h.a = h.a[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < last && h.a[l] < h.a[small] {
			small = l
		}
		if r < last && h.a[r] < h.a[small] {
			small = r
		}
		if small == i {
			break
		}
		h.a[i], h.a[small] = h.a[small], h.a[i]
		i = small
	}
	return v
}

// DegreeHistogram returns counts[d] = number of vertices of degree d.
func DegreeHistogram(g *Graph) []int {
	counts := make([]int, g.MaxDegree()+1)
	for v := 0; v < g.N(); v++ {
		counts[g.Degree(v)]++
	}
	return counts
}

// SortedComponentSizes returns component sizes in decreasing order.
func SortedComponentSizes(g *Graph) []int {
	comps := g.Components()
	sizes := make([]int, len(comps))
	for i, c := range comps {
		sizes[i] = len(c)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(sizes)))
	return sizes
}
