package graph

// Additional workload families used by the wider test and benchmark
// matrix: structured topologies (hypercube, torus, bipartite) and
// adversarial shapes (barbell, lollipop) that stress different parts of
// the algorithms — symmetry breaking on vertex-transitive graphs,
// bottleneck edges, and dense cores attached to long sparse tails.

// Hypercube returns the d-dimensional hypercube on 2^d vertices.
func Hypercube(d int) *Graph {
	n := 1 << uint(d)
	edges := make([][2]int, 0, n*d/2)
	for v := 0; v < n; v++ {
		for b := 0; b < d; b++ {
			w := v ^ (1 << uint(b))
			if w > v {
				edges = append(edges, [2]int{v, w})
			}
		}
	}
	return MustFromEdges(n, edges)
}

// Torus returns the rows×cols 2D torus (grid with wraparound); each
// vertex has degree 4 when both dimensions exceed 2.
func Torus(rows, cols int) *Graph {
	n := rows * cols
	id := func(r, c int) int { return ((r+rows)%rows)*cols + (c+cols)%cols }
	seen := map[[2]int]bool{}
	var edges [][2]int
	add := func(a, b int) {
		if a == b {
			return
		}
		if a > b {
			a, b = b, a
		}
		if !seen[[2]int{a, b}] {
			seen[[2]int{a, b}] = true
			edges = append(edges, [2]int{a, b})
		}
	}
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			add(id(r, c), id(r, c+1))
			add(id(r, c), id(r+1, c))
		}
	}
	return MustFromEdges(n, edges)
}

// CompleteBipartite returns K_{a,b} with parts [0,a) and [a,a+b).
func CompleteBipartite(a, b int) *Graph {
	edges := make([][2]int, 0, a*b)
	for u := 0; u < a; u++ {
		for v := 0; v < b; v++ {
			edges = append(edges, [2]int{u, a + v})
		}
	}
	return MustFromEdges(a+b, edges)
}

// Barbell returns two K_k cliques joined by a path of pathLen
// intermediate vertices (pathLen may be 0 for a single bridging edge).
func Barbell(k, pathLen int) *Graph {
	n := 2*k + pathLen
	var edges [][2]int
	for u := 0; u < k; u++ {
		for v := u + 1; v < k; v++ {
			edges = append(edges, [2]int{u, v})
			edges = append(edges, [2]int{k + pathLen + u, k + pathLen + v})
		}
	}
	// Bridge: clique A's vertex k-1 — path — clique B's vertex k+pathLen.
	prev := k - 1
	for i := 0; i < pathLen; i++ {
		edges = append(edges, [2]int{prev, k + i})
		prev = k + i
	}
	edges = append(edges, [2]int{prev, k + pathLen})
	return MustFromEdges(n, edges)
}

// Lollipop returns a K_k clique with a path of tail vertices attached.
func Lollipop(k, tail int) *Graph {
	n := k + tail
	var edges [][2]int
	for u := 0; u < k; u++ {
		for v := u + 1; v < k; v++ {
			edges = append(edges, [2]int{u, v})
		}
	}
	prev := k - 1
	for i := 0; i < tail; i++ {
		edges = append(edges, [2]int{prev, k + i})
		prev = k + i
	}
	return MustFromEdges(n, edges)
}
