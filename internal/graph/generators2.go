package graph

// Additional workload families used by the wider test and benchmark
// matrix: structured topologies (hypercube, torus, bipartite) and
// adversarial shapes (barbell, lollipop) that stress different parts of
// the algorithms — symmetry breaking on vertex-transitive graphs,
// bottleneck edges, and dense cores attached to long sparse tails.
// All are deterministic enumerations, so they stream through build's
// count + fill passes without materializing an edge list.

// Hypercube returns the d-dimensional hypercube on 2^d vertices.
func Hypercube(d int) *Graph {
	n := 1 << uint(d)
	return build(n, func(edge func(u, v int)) {
		for v := 0; v < n; v++ {
			for b := 0; b < d; b++ {
				w := v ^ (1 << uint(b))
				if w > v {
					edge(v, w)
				}
			}
		}
	})
}

// Torus returns the rows×cols 2D torus (grid with wraparound); each
// vertex has degree 4 when both dimensions exceed 2. Wraparound edges
// that coincide with grid edges (a dimension of size 2) or degenerate
// to self-loops (size 1) are excluded by construction, so the
// enumeration is duplicate-free without a seen-set.
func Torus(rows, cols int) *Graph {
	id := func(r, c int) int { return ((r+rows)%rows)*cols + (c+cols)%cols }
	return build(rows*cols, func(edge func(u, v int)) {
		for r := 0; r < rows; r++ {
			for c := 0; c < cols; c++ {
				if cols >= 3 || (cols == 2 && c == 0) {
					edge(id(r, c), id(r, c+1))
				}
				if rows >= 3 || (rows == 2 && r == 0) {
					edge(id(r, c), id(r+1, c))
				}
			}
		}
	})
}

// CompleteBipartite returns K_{a,b} with parts [0,a) and [a,a+b).
func CompleteBipartite(a, b int) *Graph {
	return build(a+b, func(edge func(u, v int)) {
		for u := 0; u < a; u++ {
			for v := 0; v < b; v++ {
				edge(u, a+v)
			}
		}
	})
}

// Barbell returns two K_k cliques joined by a path of pathLen
// intermediate vertices (pathLen may be 0 for a single bridging edge).
func Barbell(k, pathLen int) *Graph {
	return build(2*k+pathLen, func(edge func(u, v int)) {
		for u := 0; u < k; u++ {
			for v := u + 1; v < k; v++ {
				edge(u, v)
				edge(k+pathLen+u, k+pathLen+v)
			}
		}
		// Bridge: clique A's vertex k-1 — path — clique B's vertex k+pathLen.
		prev := k - 1
		for i := 0; i < pathLen; i++ {
			edge(prev, k+i)
			prev = k + i
		}
		edge(prev, k+pathLen)
	})
}

// Lollipop returns a K_k clique with a path of tail vertices attached.
func Lollipop(k, tail int) *Graph {
	return build(k+tail, func(edge func(u, v int)) {
		for u := 0; u < k; u++ {
			for v := u + 1; v < k; v++ {
				edge(u, v)
			}
		}
		prev := k - 1
		for i := 0; i < tail; i++ {
			edge(prev, k+i)
			prev = k + i
		}
	})
}
