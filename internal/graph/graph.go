// Package graph provides the undirected-graph substrate used throughout
// the repository: a compact adjacency representation with port numbering
// (as required by the anonymous CONGEST model of the paper, §1.3),
// generators for the workload families the experiments sweep over, and
// structural utilities (degrees, connected components, induced
// subgraphs).
package graph

import (
	"fmt"
	"sort"
)

// Graph is an undirected simple graph on vertices 0..N-1. Adjacency
// lists are sorted by neighbor index; the position of a neighbor in a
// node's list is that node's "port" to the neighbor, matching the
// paper's port-numbered anonymous network model.
type Graph struct {
	adj [][]int32
	m   int // number of edges
}

// New returns an empty graph on n vertices.
func New(n int) *Graph {
	if n < 0 {
		panic("graph: negative vertex count")
	}
	return &Graph{adj: make([][]int32, n)}
}

// FromEdges builds a graph on n vertices from an edge list. Self-loops
// are rejected; duplicate edges are deduplicated.
func FromEdges(n int, edges [][2]int) (*Graph, error) {
	g := New(n)
	seen := make(map[[2]int]bool, len(edges))
	for _, e := range edges {
		u, v := e[0], e[1]
		if u == v {
			return nil, fmt.Errorf("graph: self-loop at %d", u)
		}
		if u < 0 || u >= n || v < 0 || v >= n {
			return nil, fmt.Errorf("graph: edge (%d,%d) out of range [0,%d)", u, v, n)
		}
		if u > v {
			u, v = v, u
		}
		if seen[[2]int{u, v}] {
			continue
		}
		seen[[2]int{u, v}] = true
		g.adj[u] = append(g.adj[u], int32(v))
		g.adj[v] = append(g.adj[v], int32(u))
		g.m++
	}
	g.normalize()
	return g, nil
}

// MustFromEdges is FromEdges but panics on error; for tests and
// generators with statically valid input.
func MustFromEdges(n int, edges [][2]int) *Graph {
	g, err := FromEdges(n, edges)
	if err != nil {
		panic(err)
	}
	return g
}

func (g *Graph) normalize() {
	for _, nb := range g.adj {
		sort.Slice(nb, func(i, j int) bool { return nb[i] < nb[j] })
	}
}

// N returns the number of vertices.
func (g *Graph) N() int { return len(g.adj) }

// M returns the number of edges.
func (g *Graph) M() int { return g.m }

// Degree returns the degree of vertex v.
func (g *Graph) Degree(v int) int { return len(g.adj[v]) }

// MaxDegree returns the maximum degree, or 0 for an empty graph.
func (g *Graph) MaxDegree() int {
	max := 0
	for _, nb := range g.adj {
		if len(nb) > max {
			max = len(nb)
		}
	}
	return max
}

// Neighbors returns the sorted adjacency list of v. The returned slice
// must not be modified.
func (g *Graph) Neighbors(v int) []int32 { return g.adj[v] }

// Neighbor returns the neighbor of v reached through the given port.
func (g *Graph) Neighbor(v, port int) int { return int(g.adj[v][port]) }

// HasEdge reports whether {u, v} is an edge.
func (g *Graph) HasEdge(u, v int) bool {
	nb := g.adj[u]
	i := sort.Search(len(nb), func(i int) bool { return nb[i] >= int32(v) })
	return i < len(nb) && nb[i] == int32(v)
}

// Edges returns all edges as (u, v) pairs with u < v, in sorted order.
func (g *Graph) Edges() [][2]int {
	out := make([][2]int, 0, g.m)
	for u, nb := range g.adj {
		for _, w := range nb {
			if int(w) > u {
				out = append(out, [2]int{u, int(w)})
			}
		}
	}
	return out
}

// Components returns the connected components as sorted vertex slices,
// ordered by smallest vertex.
func (g *Graph) Components() [][]int {
	n := g.N()
	comp := make([]int, n)
	for i := range comp {
		comp[i] = -1
	}
	var out [][]int
	stack := make([]int, 0, 64)
	for s := 0; s < n; s++ {
		if comp[s] >= 0 {
			continue
		}
		id := len(out)
		comp[s] = id
		stack = append(stack[:0], s)
		cur := []int{}
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			cur = append(cur, v)
			for _, w := range g.adj[v] {
				if comp[w] < 0 {
					comp[w] = id
					stack = append(stack, int(w))
				}
			}
		}
		sort.Ints(cur)
		out = append(out, cur)
	}
	return out
}

// IsConnected reports whether the graph is connected (the empty graph
// and singleton graphs are connected).
func (g *Graph) IsConnected() bool {
	return g.N() <= 1 || len(g.Components()) == 1
}

// Induced returns the subgraph induced by the given vertex set, along
// with the mapping from new indices to original vertices. Vertices are
// renumbered 0..len(vs)-1 in sorted order of the originals.
func (g *Graph) Induced(vs []int) (*Graph, []int) {
	sorted := append([]int(nil), vs...)
	sort.Ints(sorted)
	// Deduplicate.
	uniq := sorted[:0]
	for i, v := range sorted {
		if i == 0 || v != sorted[i-1] {
			uniq = append(uniq, v)
		}
	}
	index := make(map[int]int, len(uniq))
	for i, v := range uniq {
		index[v] = i
	}
	sub := New(len(uniq))
	for i, v := range uniq {
		for _, w := range g.adj[v] {
			if j, ok := index[int(w)]; ok && j > i {
				sub.adj[i] = append(sub.adj[i], int32(j))
				sub.adj[j] = append(sub.adj[j], int32(i))
				sub.m++
			}
		}
	}
	sub.normalize()
	mapping := append([]int(nil), uniq...)
	return sub, mapping
}

// Clone returns a deep copy of g.
func (g *Graph) Clone() *Graph {
	c := New(g.N())
	c.m = g.m
	for i, nb := range g.adj {
		c.adj[i] = append([]int32(nil), nb...)
	}
	return c
}

// String returns a short human-readable summary.
func (g *Graph) String() string {
	return fmt.Sprintf("graph{n=%d m=%d Δ=%d}", g.N(), g.M(), g.MaxDegree())
}
