// Package graph provides the undirected-graph substrate used throughout
// the repository: a compact adjacency representation with port numbering
// (as required by the anonymous CONGEST model of the paper, §1.3),
// generators for the workload families the experiments sweep over, and
// structural utilities (degrees, connected components, induced
// subgraphs).
package graph

import (
	"fmt"
	"sort"
)

// Graph is an undirected simple graph on vertices 0..N-1 in compressed
// sparse row (CSR) form: one flat neighbor array holding every sorted
// adjacency row back to back, plus per-vertex offsets into it. The
// position of a neighbor in a vertex's row is that vertex's "port" to
// the neighbor, matching the paper's port-numbered anonymous network
// model. The flat layout is what lets runs at n = 10⁷–10⁸ stay
// cache-dense: 4 bytes per directed arc for adjacency and 4 per vertex
// for the offset — at average degree 4 that is 20 bytes per vertex,
// with no per-vertex slice headers or allocator overhead (the seed's
// slice-of-slices layout paid ~46). Offsets are int32, which caps the
// arc count at 2^31-1 (~10⁹ edges, an 8GB neighbor array — beyond any
// run this simulator hosts); construction panics past the cap rather
// than overflowing.
type Graph struct {
	off []int32 // len N+1: row v is nbr[off[v]:off[v+1]]
	nbr []int32 // concatenated sorted adjacency rows (2m entries)
	m   int     // number of edges
}

// New returns an empty graph on n vertices.
func New(n int) *Graph {
	if n < 0 {
		panic("graph: negative vertex count")
	}
	return &Graph{off: make([]int32, n+1)}
}

// FromEdges builds a graph on n vertices from an edge list. Self-loops
// are rejected; duplicate edges are deduplicated.
func FromEdges(n int, edges [][2]int) (*Graph, error) {
	if n < 0 {
		panic("graph: negative vertex count")
	}
	for _, e := range edges {
		u, v := e[0], e[1]
		if u == v {
			return nil, fmt.Errorf("graph: self-loop at %d", u)
		}
		if u < 0 || u >= n || v < 0 || v >= n {
			return nil, fmt.Errorf("graph: edge (%d,%d) out of range [0,%d)", u, v, n)
		}
	}
	us := make([]int32, len(edges))
	vs := make([]int32, len(edges))
	for i, e := range edges {
		us[i], vs[i] = int32(e[0]), int32(e[1])
	}
	return fromPairs(n, us, vs, true), nil
}

// MustFromEdges is FromEdges but panics on error; for tests and
// generators with statically valid input.
func MustFromEdges(n int, edges [][2]int) *Graph {
	g, err := FromEdges(n, edges)
	if err != nil {
		panic(err)
	}
	return g
}

// N returns the number of vertices.
func (g *Graph) N() int { return len(g.off) - 1 }

// M returns the number of edges.
func (g *Graph) M() int { return g.m }

// Degree returns the degree of vertex v.
func (g *Graph) Degree(v int) int { return int(g.off[v+1] - g.off[v]) }

// MaxDegree returns the maximum degree, or 0 for an empty graph.
func (g *Graph) MaxDegree() int {
	max := int32(0)
	for v := 0; v+1 < len(g.off); v++ {
		if d := g.off[v+1] - g.off[v]; d > max {
			max = d
		}
	}
	return int(max)
}

// Neighbors returns the sorted adjacency row of v. The returned slice
// aliases the graph's flat neighbor array and must not be modified.
func (g *Graph) Neighbors(v int) []int32 { return g.nbr[g.off[v]:g.off[v+1]] }

// Neighbor returns the neighbor of v reached through the given port.
func (g *Graph) Neighbor(v, port int) int { return int(g.nbr[int(g.off[v])+port]) }

// Port returns v's port leading to neighbor w, or -1 if {v, w} is not
// an edge.
func (g *Graph) Port(v, w int) int {
	lo, hi := int(g.off[v]), int(g.off[v+1])
	end := hi
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if g.nbr[mid] < int32(w) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < end && g.nbr[lo] == int32(w) {
		return lo - int(g.off[v])
	}
	return -1
}

// ReversePort returns, for the edge crossed by v's given port, the port
// by which the neighbor reaches v back. It is derived by searching the
// neighbor's sorted row; the simulator's routing hot path does not call
// it — there, reverse ports are recovered incrementally by a monotone
// cursor over each receiver's row (senders are processed in ascending
// order, so a receiver's arrival ports are ascending too), which costs
// no extra memory and no per-message binary search.
func (g *Graph) ReversePort(v, port int) int { return g.Port(g.Neighbor(v, port), v) }

// HasEdge reports whether {u, v} is an edge.
func (g *Graph) HasEdge(u, v int) bool { return g.Port(u, v) >= 0 }

// Edges returns all edges as (u, v) pairs with u < v, in sorted order.
func (g *Graph) Edges() [][2]int {
	out := make([][2]int, 0, g.m)
	for u := 0; u+1 < len(g.off); u++ {
		for _, w := range g.nbr[g.off[u]:g.off[u+1]] {
			if int(w) > u {
				out = append(out, [2]int{u, int(w)})
			}
		}
	}
	return out
}

// Components returns the connected components as sorted vertex slices,
// ordered by smallest vertex.
func (g *Graph) Components() [][]int {
	n := g.N()
	comp := make([]int, n)
	for i := range comp {
		comp[i] = -1
	}
	var out [][]int
	stack := make([]int, 0, 64)
	for s := 0; s < n; s++ {
		if comp[s] >= 0 {
			continue
		}
		id := len(out)
		comp[s] = id
		stack = append(stack[:0], s)
		cur := []int{}
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			cur = append(cur, v)
			for _, w := range g.Neighbors(v) {
				if comp[w] < 0 {
					comp[w] = id
					stack = append(stack, int(w))
				}
			}
		}
		sort.Ints(cur)
		out = append(out, cur)
	}
	return out
}

// IsConnected reports whether the graph is connected (the empty graph
// and singleton graphs are connected).
func (g *Graph) IsConnected() bool {
	return g.N() <= 1 || len(g.Components()) == 1
}

// Induced returns the subgraph induced by the given vertex set, along
// with the mapping from new indices to original vertices. Vertices are
// renumbered 0..len(vs)-1 in sorted order of the originals.
func (g *Graph) Induced(vs []int) (*Graph, []int) {
	sorted := append([]int(nil), vs...)
	sort.Ints(sorted)
	// Deduplicate.
	uniq := sorted[:0]
	for i, v := range sorted {
		if i == 0 || v != sorted[i-1] {
			uniq = append(uniq, v)
		}
	}
	index := make(map[int]int, len(uniq))
	for i, v := range uniq {
		index[v] = i
	}
	var us, ws []int32
	for i, v := range uniq {
		for _, w := range g.Neighbors(v) {
			if j, ok := index[int(w)]; ok && j > i {
				us = append(us, int32(i))
				ws = append(ws, int32(j))
			}
		}
	}
	sub := fromPairs(len(uniq), us, ws, false)
	mapping := append([]int(nil), uniq...)
	return sub, mapping
}

// Clone returns a deep copy of g.
func (g *Graph) Clone() *Graph {
	return &Graph{
		off: append([]int32(nil), g.off...),
		nbr: append([]int32(nil), g.nbr...),
		m:   g.m,
	}
}

// String returns a short human-readable summary.
func (g *Graph) String() string {
	return fmt.Sprintf("graph{n=%d m=%d Δ=%d}", g.N(), g.M(), g.MaxDegree())
}
