package graph

import (
	"fmt"
	"math"
	"slices"
)

// CSR construction. Every graph in the package is built through one of
// three entry points, all sharing the same two-pass shape — count
// endpoint degrees, prefix-sum into row offsets, fill the flat neighbor
// array — so no per-node append slices or edge-list copies are ever
// materialized beyond the caller's own half-edge arrays:
//
//   - build(n, emit) streams a deterministic edge enumeration twice
//     (count pass + fill pass); nothing is materialized at all. Used by
//     the deterministic generators (grid, torus, hypercube, ...).
//   - fromPairs(n, us, vs, dedup) builds from parallel endpoint arrays
//     (4 bytes per endpoint), the form the randomized generators
//     collect while consuming their RNG stream exactly once.
//   - fromPairsChecked(n, us, vs) additionally validates self-loops and
//     vertex ranges in input order, for untrusted edge lists.
//
// Rows are sorted with slices.Sort (no reflection) and deduplicated by
// an in-place compaction over the sorted rows, replacing the seed
// layout's per-edge map[[2]int]bool lookups.

// maxEdges is the edge-count cap imposed by the int32 offsets (the arc
// count 2m must fit in an int32).
const maxEdges = math.MaxInt32 / 2

func checkEdgeCount(m int) {
	if m > maxEdges {
		panic(fmt.Sprintf("graph: %d edges overflow the int32 CSR offsets (max %d)", m, maxEdges))
	}
}

// build constructs the CSR graph on n vertices by running emit twice:
// once counting endpoint degrees, once filling the neighbor array. emit
// must enumerate the same simple, in-range, loop-free edges both times
// (each undirected edge exactly once).
func build(n int, emit func(edge func(u, v int))) *Graph {
	deg := make([]int32, n)
	m := 0
	emit(func(u, v int) {
		deg[u]++
		deg[v]++
		m++
	})
	checkEdgeCount(m)
	g := &Graph{off: make([]int32, n+1), nbr: make([]int32, 2*m), m: m}
	cur := fillOffsets(g.off, deg)
	emit(func(u, v int) {
		g.nbr[cur[u]] = int32(v)
		cur[u]++
		g.nbr[cur[v]] = int32(u)
		cur[v]++
	})
	g.sortRows()
	return g
}

// fromPairs builds the CSR graph from parallel endpoint arrays: edge i
// is {us[i], vs[i]}. Endpoints must be in range and loop-free; with
// dedup, duplicate edges (in either orientation) are collapsed.
func fromPairs(n int, us, vs []int32, dedup bool) *Graph {
	checkEdgeCount(len(us))
	deg := make([]int32, n)
	for i := range us {
		deg[us[i]]++
		deg[vs[i]]++
	}
	g := &Graph{off: make([]int32, n+1), nbr: make([]int32, 2*len(us)), m: len(us)}
	cur := fillOffsets(g.off, deg)
	for i := range us {
		u, v := us[i], vs[i]
		g.nbr[cur[u]] = v
		cur[u]++
		g.nbr[cur[v]] = u
		cur[v]++
	}
	g.sortRows()
	if dedup {
		g.dedupRows()
	}
	return g
}

// fromPairsChecked is fromPairs for untrusted input: it validates every
// edge in input order (self-loops, vertex range) before building, with
// duplicate edges collapsed.
func fromPairsChecked(n int, us, vs []int32) (*Graph, error) {
	for i := range us {
		u, v := us[i], vs[i]
		if u == v {
			return nil, fmt.Errorf("graph: self-loop at %d", u)
		}
		if u < 0 || int(u) >= n || v < 0 || int(v) >= n {
			return nil, fmt.Errorf("graph: edge (%d,%d) out of range [0,%d)", u, v, n)
		}
	}
	return fromPairs(n, us, vs, true), nil
}

// fillOffsets turns per-vertex degree counts into the CSR offset array
// (off[v+1] = off[v] + deg[v]) and returns a fill cursor initialized to
// each row's start.
func fillOffsets(off []int32, deg []int32) []int32 {
	cur := make([]int32, len(deg))
	for v, d := range deg {
		off[v+1] = off[v] + d
		cur[v] = off[v]
	}
	return cur
}

// sortRows sorts every adjacency row ascending, establishing the port
// numbering (a neighbor's port is its rank in the sorted row).
func (g *Graph) sortRows() {
	for v := 0; v+1 < len(g.off); v++ {
		slices.Sort(g.nbr[g.off[v]:g.off[v+1]])
	}
}

// dedupRows collapses duplicate entries within each sorted row by
// in-place compaction and recomputes the offsets and edge count.
func (g *Graph) dedupRows() {
	w := int32(0)
	for v := 0; v+1 < len(g.off); v++ {
		lo, hi := g.off[v], g.off[v+1]
		g.off[v] = w
		for i := lo; i < hi; i++ {
			if i > lo && g.nbr[i] == g.nbr[i-1] {
				continue
			}
			g.nbr[w] = g.nbr[i]
			w++
		}
	}
	g.off[len(g.off)-1] = w
	g.nbr = g.nbr[:w]
	g.m = int(w / 2)
}
