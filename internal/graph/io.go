package graph

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// WriteEdgeList writes g in the plain interchange format used by
// cmd/graphgen: a "# n m" header line followed by one "u v" pair per
// line with u < v, in sorted order.
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# %d %d\n", g.N(), g.M()); err != nil {
		return err
	}
	for _, e := range g.Edges() {
		if _, err := fmt.Fprintf(bw, "%d %d\n", e[0], e[1]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadEdgeList parses the WriteEdgeList format. Blank lines and lines
// starting with "%" or "//" are ignored; a leading "# n m" header fixes
// the vertex count (otherwise it is inferred as max index + 1).
func ReadEdgeList(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	n := -1
	var edges [][2]int
	maxV := -1
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") || strings.HasPrefix(line, "//") {
			continue
		}
		if strings.HasPrefix(line, "#") {
			var hn, hm int
			if _, err := fmt.Sscanf(line, "# %d %d", &hn, &hm); err == nil {
				n = hn
			}
			continue
		}
		var u, v int
		if _, err := fmt.Sscanf(line, "%d %d", &u, &v); err != nil {
			return nil, fmt.Errorf("graph: line %d: %q: %w", lineNo, line, err)
		}
		if u > maxV {
			maxV = u
		}
		if v > maxV {
			maxV = v
		}
		edges = append(edges, [2]int{u, v})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if n < 0 {
		n = maxV + 1
	}
	if n < maxV+1 {
		return nil, fmt.Errorf("graph: header n=%d below max vertex %d", n, maxV)
	}
	return FromEdges(n, edges)
}
