package graph

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strings"
)

// WriteEdgeList writes g in the plain interchange format used by
// cmd/graphgen: a "# n m" header line followed by one "u v" pair per
// line with u < v, in sorted order. Edges stream straight off the CSR
// rows; no edge list is materialized.
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# %d %d\n", g.N(), g.M()); err != nil {
		return err
	}
	for u := 0; u < g.N(); u++ {
		for _, v := range g.Neighbors(u) {
			if int(v) > u {
				if _, err := fmt.Fprintf(bw, "%d %d\n", u, v); err != nil {
					return err
				}
			}
		}
	}
	return bw.Flush()
}

// ReadEdgeList parses the WriteEdgeList format. Blank lines and lines
// starting with "%" or "//" are ignored; a leading "# n m" header fixes
// the vertex count (otherwise it is inferred as max index + 1). The
// parse collects flat half-edge arrays (4 bytes per endpoint) and the
// graph is assembled by the same count + fill CSR build the generators
// use, so a 100M-edge file is never held as a boxed edge list.
func ReadEdgeList(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	n := -1
	var us, vs []int32
	maxV := -1
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") || strings.HasPrefix(line, "//") {
			continue
		}
		if strings.HasPrefix(line, "#") {
			var hn, hm int
			if _, err := fmt.Sscanf(line, "# %d %d", &hn, &hm); err == nil {
				n = hn
			}
			continue
		}
		var u, v int
		if _, err := fmt.Sscanf(line, "%d %d", &u, &v); err != nil {
			return nil, fmt.Errorf("graph: line %d: %q: %w", lineNo, line, err)
		}
		if u > math.MaxInt32 || v > math.MaxInt32 {
			return nil, fmt.Errorf("graph: line %d: vertex index exceeds int32", lineNo)
		}
		if u > maxV {
			maxV = u
		}
		if v > maxV {
			maxV = v
		}
		us = append(us, int32(u))
		vs = append(vs, int32(v))
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if n < 0 {
		n = maxV + 1
	}
	if n < maxV+1 {
		return nil, fmt.Errorf("graph: header n=%d below max vertex %d", n, maxV)
	}
	return fromPairsChecked(n, us, vs)
}
