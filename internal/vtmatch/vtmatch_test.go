package vtmatch

import (
	"math/rand"
	"testing"
	"testing/quick"

	"awakemis/internal/graph"
	"awakemis/internal/sim"
	"awakemis/internal/verify"
)

// randomEdgeIDs assigns a random permutation of [1, m] to the edges.
func randomEdgeIDs(g *graph.Graph, rng *rand.Rand) EdgeIDs {
	perm := rng.Perm(g.M())
	ids := EdgeIDs{}
	for i, e := range g.Edges() {
		ids[e] = perm[i] + 1
	}
	return ids
}

func TestMatchingValidOnFamilies(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	graphs := map[string]*graph.Graph{
		"cycle":     graph.Cycle(21),
		"path":      graph.Path(14),
		"complete":  graph.Complete(9),
		"star":      graph.Star(12),
		"gnp":       graph.GNP(70, 0.08, rng),
		"tree":      graph.RandomTree(40, rng),
		"bipartite": graph.CompleteBipartite(6, 8),
		"empty":     graph.New(5),
		"torus":     graph.Torus(5, 5),
	}
	for name, g := range graphs {
		t.Run(name, func(t *testing.T) {
			ids := randomEdgeIDs(g, rng)
			res, m, err := Run(g, ids, g.M(), sim.Config{Seed: 3, Strict: true})
			if err != nil {
				t.Fatal(err)
			}
			if err := verify.CheckMatching(g, res.MatchedWith); err != nil {
				t.Fatal(err)
			}
			// The output equals the sequential greedy matching.
			want := GreedyReference(g, ids)
			for v := range want {
				if res.MatchedWith[v] != want[v] {
					t.Fatalf("node %d matched %d, greedy says %d", v, res.MatchedWith[v], want[v])
				}
			}
			// Awake ≤ degree + 1 (the model's initial round).
			for v, a := range m.AwakePerNode {
				if a > int64(g.Degree(v))+1 {
					t.Errorf("node %d awake %d > deg+1 = %d", v, a, g.Degree(v)+1)
				}
			}
		})
	}
}

func TestPerfectMatchingOnEvenCycle(t *testing.T) {
	// C4 with sequential edge ids: edges (0,1),(2,3) match first.
	g := graph.Cycle(4)
	ids := EdgeIDs{}
	for i, e := range g.Edges() {
		ids[e] = i + 1
	}
	res, _, err := Run(g, ids, g.M(), sim.Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if verify.MatchingSize(res.MatchedWith) != 2 {
		t.Errorf("C4 should be perfectly matched: %v", res.MatchedWith)
	}
}

func TestEarlyExitSavesAwake(t *testing.T) {
	// On a star, the center matches in its first processed edge and
	// sleeps through the rest: awake ≪ degree.
	g := graph.Star(40)
	rng := rand.New(rand.NewSource(5))
	ids := randomEdgeIDs(g, rng)
	res, m, err := Run(g, ids, g.M(), sim.Config{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if err := verify.CheckMatching(g, res.MatchedWith); err != nil {
		t.Fatal(err)
	}
	if m.AwakePerNode[0] > 3 {
		t.Errorf("center awake %d rounds; early exit should stop it at its first edge",
			m.AwakePerNode[0])
	}
}

func TestRejectsBadEdgeIDs(t *testing.T) {
	g := graph.Path(3)
	if _, _, err := Run(g, EdgeIDs{{0, 1}: 1}, 2, sim.Config{}); err == nil {
		t.Error("incomplete assignment accepted")
	}
	if _, _, err := Run(g, EdgeIDs{{0, 1}: 1, {1, 2}: 1}, 2, sim.Config{}); err == nil {
		t.Error("duplicate ids accepted")
	}
	if _, _, err := Run(g, EdgeIDs{{0, 1}: 1, {1, 2}: 9}, 2, sim.Config{}); err == nil {
		t.Error("out-of-range id accepted")
	}
}

func TestQuickMatchesSequentialGreedy(t *testing.T) {
	f := func(seed int64, nn uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nn%30) + 2
		g := graph.GNP(n, 0.25, rng)
		ids := randomEdgeIDs(g, rng)
		res, _, err := Run(g, ids, g.M(), sim.Config{Seed: seed, Strict: true})
		if err != nil {
			return false
		}
		if verify.CheckMatching(g, res.MatchedWith) != nil {
			return false
		}
		want := GreedyReference(g, ids)
		for v := range want {
			if res.MatchedWith[v] != want[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
