// Package vtmatch implements maximal matching in the sleeping model —
// the first of the symmetry-breaking problems §7 asks to extend the
// paper's techniques to.
//
// The algorithm is the distributed form of sequential greedy matching
// over a random *edge* ordering: edge e is processed in round id_e, and
// joins the matching iff both endpoints are still unmatched. The
// sleeping model makes this almost free to coordinate: an endpoint that
// is already matched simply stays asleep, so its partner hears silence
// and correctly skips the edge — no state exchange is needed at all.
// Each node is awake for at most one round per incident edge (and stops
// as soon as it matches), giving awake complexity O(deg) with early
// exit, and round complexity I. The output is the lexicographically
// first maximal matching (LFMM) of the edge order, which the tests
// verify against the sequential reference.
package vtmatch

import (
	"context"
	"fmt"
	"sort"

	"awakemis/internal/graph"
	"awakemis/internal/sim"
)

// proposeMsg signals "my side of this edge is unmatched".
type proposeMsg struct{}

// Bits implements sim.Message.
func (proposeMsg) Bits() int { return 1 }

var _ sim.Message = proposeMsg{}

// EdgeIDs assigns each edge (u < v) a unique processing round.
type EdgeIDs map[[2]int]int

// Check validates the assignment for g: complete, unique, in [1, bound].
func (ids EdgeIDs) Check(g *graph.Graph, bound int) error {
	if len(ids) != g.M() {
		return fmt.Errorf("vtmatch: %d edge ids for %d edges", len(ids), g.M())
	}
	seen := make(map[int]bool, len(ids))
	for _, e := range g.Edges() {
		id, ok := ids[e]
		if !ok {
			return fmt.Errorf("vtmatch: edge %v has no id", e)
		}
		if id < 1 || id > bound {
			return fmt.Errorf("vtmatch: edge %v id %d outside [1,%d]", e, id, bound)
		}
		if seen[id] {
			return fmt.Errorf("vtmatch: duplicate edge id %d", id)
		}
		seen[id] = true
	}
	return nil
}

// Result holds the matching: MatchedWith[v] is v's partner or -1.
type Result struct {
	MatchedWith []int
}

// slot schedules one incident edge: processed in sim round `round`
// through local port `port`.
type slot struct {
	round int
	port  int
}

// slotsOf returns node v's incident-edge schedule, ascending by round.
func slotsOf(g *graph.Graph, ids EdgeIDs, v int) []slot {
	slots := make([]slot, 0, g.Degree(v))
	for p := 0; p < g.Degree(v); p++ {
		w := g.Neighbor(v, p)
		key := [2]int{v, w}
		if w < v {
			key = [2]int{w, v}
		}
		slots = append(slots, slot{ids[key], p})
	}
	sort.Slice(slots, func(i, j int) bool { return slots[i].round < slots[j].round })
	return slots
}

// Program returns the per-node program in goroutine form.
func Program(res *Result, g *graph.Graph, ids EdgeIDs) sim.Program {
	return func(ctx *sim.Ctx) {
		v := ctx.Node()
		for _, s := range slotsOf(g, ids, v) {
			target := int64(s.round) // edge id r processed in sim round r (round 0 is the initial model round)
			if target > ctx.Round() {
				ctx.SleepUntil(target)
			}
			ctx.Send(s.port, proposeMsg{})
			in := ctx.Deliver()
			for _, m := range in {
				if _, ok := m.Msg.(proposeMsg); ok && m.Port == s.port {
					res.MatchedWith[v] = g.Neighbor(v, s.port)
					return // matched: sleep forever, silence skips later edges
				}
			}
		}
	}
}

// stepNode is the state-machine form of Program: the node wakes once
// per incident edge in edge-ID order, proposing on that edge's port,
// and halts as soon as a counter-proposal arrives (both endpoints free
// means both propose, so hearing one on the slot's port means matched).
// Both forms run bit-identically.
type stepNode struct {
	res   *Result
	g     *graph.Graph
	node  int
	slots []slot
	idx   int
}

// StepProgram returns the per-node program in step form.
func StepProgram(res *Result, g *graph.Graph, ids EdgeIDs) sim.StepProgram {
	return func(env *sim.NodeEnv) sim.StepNode {
		return &stepNode{res: res, g: g, node: env.ID, slots: slotsOf(g, ids, env.ID)}
	}
}

func (n *stepNode) Start(out *sim.Outbox) {
	// Round 0 sends nothing: edge IDs start at 1.
}

func (n *stepNode) OnWake(round int64, inbox []sim.Inbound, out *sim.Outbox) (int64, bool) {
	if round > 0 {
		s := n.slots[n.idx]
		for _, m := range inbox {
			if _, ok := m.Msg.(proposeMsg); ok && m.Port == s.port {
				n.res.MatchedWith[n.node] = n.g.Neighbor(n.node, s.port)
				return 0, true // matched: sleep forever, silence skips later edges
			}
		}
		n.idx++
	}
	if n.idx == len(n.slots) {
		return 0, true
	}
	next := n.slots[n.idx]
	out.Send(next.port, proposeMsg{})
	return int64(next.round), false
}

// Run executes the matching on g. Each node knows the IDs of its
// incident edges (both endpoints deterministically derive an edge's ID,
// e.g. during a hello round; the harness passes the assignment in).
func Run(g *graph.Graph, ids EdgeIDs, bound int, cfg sim.Config) (*Result, *sim.Metrics, error) {
	return RunContext(context.Background(), g, ids, bound, cfg)
}

// RunContext is Run under a context; cancellation aborts the
// simulation at the next round boundary.
func RunContext(ctx context.Context, g *graph.Graph, ids EdgeIDs, bound int, cfg sim.Config) (*Result, *sim.Metrics, error) {
	if err := ids.Check(g, bound); err != nil {
		return nil, nil, err
	}
	res := &Result{MatchedWith: make([]int, g.N())}
	for v := range res.MatchedWith {
		res.MatchedWith[v] = -1
	}
	m, err := sim.RunStepContext(ctx, g, StepProgram(res, g, ids), cfg)
	return res, m, err
}

// GreedyReference computes the sequential greedy matching over the
// edge-ID order: process edges by ascending ID, matching both endpoints
// when both are free.
func GreedyReference(g *graph.Graph, ids EdgeIDs) []int {
	type edge struct {
		id   int
		u, v int
	}
	edges := make([]edge, 0, g.M())
	for _, e := range g.Edges() {
		edges = append(edges, edge{ids[e], e[0], e[1]})
	}
	sort.Slice(edges, func(i, j int) bool { return edges[i].id < edges[j].id })
	matched := make([]int, g.N())
	for v := range matched {
		matched[v] = -1
	}
	for _, e := range edges {
		if matched[e.u] < 0 && matched[e.v] < 0 {
			matched[e.u] = e.v
			matched[e.v] = e.u
		}
	}
	return matched
}
