// Package vtcolor implements greedy (Δ+1)-coloring in the sleeping
// model with O(log I) awake complexity — the paper's §7 asks for
// exactly such extensions of its techniques to other symmetry-breaking
// problems, and the virtual-binary-tree machinery of §5.1 delivers one
// directly.
//
// The sequential greedy coloring processes nodes in ID order; each node
// takes the smallest color unused by its already-colored neighbors. As
// in VT-MIS, a node with ID k is awake only in rounds S_k([1,I]) ∪ {k}:
// by Observation 5, every pair of neighbors u < v shares an awake round
// r with u < r ≤ v, so v hears u's (final) color before or at its own
// round. The result is the lexicographically-first greedy coloring with
// respect to the ID order, using at most Δ+1 colors.
package vtcolor

import (
	"context"
	"fmt"

	"awakemis/internal/bitio"
	"awakemis/internal/graph"
	"awakemis/internal/sim"
	"awakemis/internal/vtree"
)

// colorMsg announces the sender's chosen color (-1 while undecided).
type colorMsg struct {
	Color int32
}

// Bits implements sim.Message.
func (m colorMsg) Bits() int { return bitio.IntBits(int64(m.Color)) }

var _ sim.Message = colorMsg{}

// Result holds the coloring.
type Result struct {
	// Color[v] is node v's color in [0, Δ].
	Color []int
}

// RunSub executes the coloring as a sub-procedure over rounds
// [base, base+idBound), with the same entry/exit contract as
// vtmis.RunSub. It returns the node's color.
func RunSub(ctx *sim.Ctx, base int64, id, idBound int, ports []int) int {
	rounds := vtree.AwakeRounds(id, idBound)
	color := int32(-1)
	taken := map[int32]bool{}
	first := true
	for _, r := range rounds {
		target := base + int64(r) - 1
		if first || target > ctx.Round() {
			ctx.SleepUntil(target)
			first = false
		}
		for _, p := range ports {
			ctx.Send(p, colorMsg{Color: color})
		}
		in := ctx.Deliver()
		if color < 0 {
			for _, m := range in {
				if cm, ok := m.Msg.(colorMsg); ok && cm.Color >= 0 {
					taken[cm.Color] = true
				}
			}
		}
		if r == id && color < 0 {
			for c := int32(0); ; c++ {
				if !taken[c] {
					color = c
					break
				}
			}
		}
	}
	return int(color)
}

// Program returns the standalone per-node program in goroutine form.
func Program(res *Result, ids []int, idBound int) sim.Program {
	return func(ctx *sim.Ctx) {
		ports := make([]int, ctx.Degree())
		for i := range ports {
			ports[i] = i
		}
		res.Color[ctx.Node()] = RunSub(ctx, 1, ids[ctx.Node()], idBound, ports)
	}
}

// stepNode is the state-machine form of Program: the node attends the
// rounds of its communication set, collecting neighbor colors until its
// own round, where it takes the smallest free color; every attended
// round's broadcast carries its current color (-1 while undecided).
// Both forms run bit-identically.
type stepNode struct {
	res    *Result
	node   int
	id     int
	color  int32
	taken  map[int32]bool
	rounds []int
	idx    int
}

// StepProgram returns the standalone per-node program in step form.
func StepProgram(res *Result, ids []int, idBound int) sim.StepProgram {
	return func(env *sim.NodeEnv) sim.StepNode {
		return &stepNode{
			res:    res,
			node:   env.ID,
			id:     ids[env.ID],
			color:  -1,
			taken:  map[int32]bool{},
			rounds: vtree.AwakeRounds(ids[env.ID], idBound),
		}
	}
}

func (n *stepNode) Start(out *sim.Outbox) {
	// Round 0 sends nothing; the first communication-set round is staged
	// from OnWake(0).
}

func (n *stepNode) OnWake(round int64, inbox []sim.Inbound, out *sim.Outbox) (int64, bool) {
	if round > 0 {
		r := n.rounds[n.idx]
		if n.color < 0 {
			for _, m := range inbox {
				if cm, ok := m.Msg.(colorMsg); ok && cm.Color >= 0 {
					n.taken[cm.Color] = true
				}
			}
		}
		if r == n.id && n.color < 0 {
			for c := int32(0); ; c++ {
				if !n.taken[c] {
					n.color = c
					break
				}
			}
		}
		n.idx++
		if n.idx == len(n.rounds) {
			n.res.Color[n.node] = int(n.color)
			return 0, true
		}
	}
	out.Broadcast(colorMsg{Color: n.color})
	return int64(n.rounds[n.idx]), false // base 1: round r is sim round r
}

// Run executes the standalone coloring on g with unique IDs in
// [1, idBound]; the algorithm occupies rounds 1..idBound after the
// model's initial all-awake round 0.
func Run(g *graph.Graph, ids []int, idBound int, cfg sim.Config) (*Result, *sim.Metrics, error) {
	return RunContext(context.Background(), g, ids, idBound, cfg)
}

// RunContext is Run under a context; cancellation aborts the
// simulation at the next round boundary.
func RunContext(ctx context.Context, g *graph.Graph, ids []int, idBound int, cfg sim.Config) (*Result, *sim.Metrics, error) {
	if err := checkIDs(g.N(), ids, idBound); err != nil {
		return nil, nil, err
	}
	res := &Result{Color: make([]int, g.N())}
	m, err := sim.RunStepContext(ctx, g, StepProgram(res, ids, idBound), cfg)
	return res, m, err
}

// Greedy computes the sequential greedy coloring reference for the
// given processing order.
func Greedy(g *graph.Graph, order []int) []int {
	color := make([]int, g.N())
	for i := range color {
		color[i] = -1
	}
	for _, v := range order {
		taken := map[int]bool{}
		for _, w := range g.Neighbors(v) {
			if color[w] >= 0 {
				taken[color[w]] = true
			}
		}
		for c := 0; ; c++ {
			if !taken[c] {
				color[v] = c
				break
			}
		}
	}
	return color
}

func checkIDs(n int, ids []int, idBound int) error {
	if len(ids) != n {
		return fmt.Errorf("vtcolor: %d ids for %d nodes", len(ids), n)
	}
	seen := make(map[int]bool, n)
	for v, id := range ids {
		if id < 1 || id > idBound {
			return fmt.Errorf("vtcolor: node %d id %d outside [1,%d]", v, id, idBound)
		}
		if seen[id] {
			return fmt.Errorf("vtcolor: duplicate id %d", id)
		}
		seen[id] = true
	}
	return nil
}
