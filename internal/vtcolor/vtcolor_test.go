package vtcolor

import (
	"math/rand"
	"testing"
	"testing/quick"

	"awakemis/internal/graph"
	"awakemis/internal/sim"
	"awakemis/internal/verify"
	"awakemis/internal/vtree"
)

func permIDs(n int, rng *rand.Rand) ([]int, []int) {
	perm := rng.Perm(n)
	ids := make([]int, n)
	order := make([]int, n)
	for v, p := range perm {
		ids[v] = p + 1
		order[p] = v
	}
	return ids, order
}

func TestColoringValidOnFamilies(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	graphs := map[string]*graph.Graph{
		"cycle":     graph.Cycle(25),
		"path":      graph.Path(12),
		"complete":  graph.Complete(9),
		"star":      graph.Star(15),
		"gnp":       graph.GNP(60, 0.1, rng),
		"tree":      graph.RandomTree(40, rng),
		"bipartite": graph.CompleteBipartite(5, 7),
		"barbell":   graph.Barbell(5, 3),
		"empty":     graph.New(6),
	}
	for name, g := range graphs {
		t.Run(name, func(t *testing.T) {
			ids, order := permIDs(g.N(), rng)
			res, m, err := Run(g, ids, g.N(), sim.Config{Seed: 3, Strict: true})
			if err != nil {
				t.Fatal(err)
			}
			if err := verify.CheckColoring(g, res.Color); err != nil {
				t.Fatal(err)
			}
			// The output equals the sequential greedy coloring.
			want := Greedy(g, order)
			for v := range want {
				if res.Color[v] != want[v] {
					t.Fatalf("node %d color %d, greedy says %d", v, res.Color[v], want[v])
				}
			}
			// Awake complexity O(log I).
			if m.MaxAwake > int64(vtree.Depth(g.N())+2) {
				t.Errorf("MaxAwake %d exceeds O(log I) bound", m.MaxAwake)
			}
		})
	}
}

func TestCompleteUsesExactlyNColors(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := graph.Complete(8)
	ids, _ := permIDs(8, rng)
	res, _, err := Run(g, ids, 8, sim.Config{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if got := verify.NumColors(res.Color); got != 8 {
		t.Errorf("K8 colored with %d colors, want 8", got)
	}
}

func TestBipartiteUsesTwoColors(t *testing.T) {
	// Greedy on a complete bipartite graph uses exactly 2 colors
	// regardless of order.
	rng := rand.New(rand.NewSource(3))
	g := graph.CompleteBipartite(6, 6)
	ids, _ := permIDs(12, rng)
	res, _, err := Run(g, ids, 12, sim.Config{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if got := verify.NumColors(res.Color); got != 2 {
		t.Errorf("K6,6 colored with %d colors, want 2", got)
	}
}

func TestQuickMatchesSequentialGreedy(t *testing.T) {
	f := func(seed int64, nn uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nn%25) + 1
		g := graph.GNP(n, 0.3, rng)
		ids, order := permIDs(n, rng)
		res, _, err := Run(g, ids, n, sim.Config{Seed: seed, Strict: true})
		if err != nil {
			return false
		}
		if verify.CheckColoring(g, res.Color) != nil {
			return false
		}
		want := Greedy(g, order)
		for v := range want {
			if res.Color[v] != want[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestRejectsBadIDs(t *testing.T) {
	g := graph.Path(3)
	for _, ids := range [][]int{{1, 2}, {1, 1, 2}, {0, 1, 2}, {1, 2, 9}} {
		if _, _, err := Run(g, ids, 3, sim.Config{}); err == nil {
			t.Errorf("ids %v accepted", ids)
		}
	}
}

func TestGreedyReference(t *testing.T) {
	// Path 0-1-2 processed 0,2,1: colors 0,0 then 1 for the middle.
	g := graph.Path(3)
	got := Greedy(g, []int{0, 2, 1})
	want := []int{0, 1, 0}
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("greedy = %v, want %v", got, want)
		}
	}
}
