package awakemis

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"

	"awakemis/internal/rng"
	"awakemis/internal/study"
)

// StudySpec declares a parameter-sweep study: the axes of a grid
// (tasks × graph families × n-sweep × engines), a replication count,
// and a root seed. A study expands deterministically into the cross
// product of Specs — same StudySpec, same Specs, same seeds, every
// time — and executes into a StudyResult artifact that aggregates each
// cell's trials and fits every metric's growth over the n-sweep.
//
// Seeds derive through internal/rng: one graph seed per (family,
// size) and one run seed per (family, size, trial). Every task,
// engine, and trial in one cell column therefore runs on an identical
// graph — cross-task comparisons are paired, an engine axis is a pure
// determinism check, and replication measures algorithmic randomness
// on a fixed input, which is what lets executors batch a cell's
// trials into one vectorized pass. StudySpec marshals to/from JSON (the
// `awakemis -study` file, the POST /v1/studies body, and the
// `graphgen -format study` output).
type StudySpec struct {
	// Name labels the study and its artifact (optional).
	Name string `json:"name,omitempty"`
	// Tasks are the registered task names to sweep (required).
	Tasks []string `json:"tasks"`
	// Families are the graph families with their generator knobs, one
	// cell column per entry (default: gnp with its default density).
	// Each entry's N and Seed must be zero — the Sizes axis supplies
	// node counts and seeds are derived from Seed.
	Families []GraphSpec `json:"families,omitempty"`
	// Sizes is the n-sweep (default 64, 256, 1024). Growth fits need at
	// least two sizes.
	Sizes []int `json:"sizes,omitempty"`
	// Engines lists the engines to run (default: the stepped engine).
	// Results never depend on the engine; a two-engine study is a
	// determinism check that costs 2× the simulations.
	Engines []Engine `json:"engines,omitempty"`
	// Trials is the replication count per cell (default 3).
	Trials int `json:"trials,omitempty"`
	// Seed is the root seed every cell seed derives from.
	Seed int64 `json:"seed,omitempty"`
	// Options is the base for every expanded Spec. Its Seed and Engine
	// must be zero (the study axes supply them); Workers and Trace are
	// zeroed during resolution — neither changes results, and keeping
	// them out of expanded specs is what makes local and daemon-served
	// artifacts byte-identical.
	Options Options `json:"options,omitempty"`
}

// maxStudySpecs caps a study's expansion (cells × trials). Validation
// rejects larger grids before any expansion is allocated, so the
// daemon can accept StudySpecs from the network without a small JSON
// body ballooning into an unbounded in-memory spec list.
const maxStudySpecs = 100_000

// label names the study in errors and progress lines.
func (ss StudySpec) label() string {
	if ss.Name != "" {
		return ss.Name
	}
	return "(unnamed)"
}

// Resolved returns the spec with every default filled in: families,
// sizes, engines, and trials populated, engine names resolved, and
// result-irrelevant base options (Workers, Trace) zeroed. Cells,
// Specs, and Accumulator all operate on the resolved form, and the
// StudyResult artifact embeds it.
func (ss StudySpec) Resolved() StudySpec {
	out := ss
	if len(out.Families) == 0 {
		out.Families = []GraphSpec{{Family: "gnp"}}
	}
	fams := make([]GraphSpec, len(out.Families))
	for i, f := range out.Families {
		f.Family = strings.ToLower(f.Family)
		if f.Family == "" {
			f.Family = "gnp"
		}
		fams[i] = f
	}
	out.Families = fams
	if len(out.Sizes) == 0 {
		out.Sizes = []int{64, 256, 1024}
	}
	if len(out.Engines) == 0 {
		out.Engines = []Engine{EngineStepped}
	}
	engs := make([]Engine, len(out.Engines))
	for i, e := range out.Engines {
		if e == "" {
			e = EngineStepped
		}
		engs[i] = e
	}
	out.Engines = engs
	if out.Trials == 0 {
		out.Trials = 3
	}
	out.Options.Workers = 0
	out.Options.Trace = false
	return out
}

// Validate checks the study without running it: every axis well
// formed, no duplicate axis entries, and every expanded Spec valid.
// Errors wrap ErrInvalidSpec, so the daemon maps them to 400.
func (ss StudySpec) Validate() error {
	if err := ss.check(); err != nil {
		if errors.Is(err, ErrInvalidSpec) {
			return err
		}
		return fmt.Errorf("awakemis: %w study %s: %s", ErrInvalidSpec, ss.label(), err)
	}
	return nil
}

func (ss StudySpec) check() error {
	if len(ss.Tasks) == 0 {
		return fmt.Errorf("missing tasks (have %s)", strings.Join(TaskNames(), "|"))
	}
	for _, task := range ss.Tasks {
		if _, ok := TaskByName(task); !ok {
			return fmt.Errorf("unknown task %q (have %s)", task, strings.Join(TaskNames(), "|"))
		}
	}
	if ss.Trials < 0 {
		return fmt.Errorf("trials must be non-negative, got %d (0 means the default, 3)", ss.Trials)
	}
	r := ss.Resolved()
	// Bound the expansion before allocating it: every entry point
	// (RunStudy, the daemon, the CLI) validates first, so a tiny JSON
	// body with a huge trial count or axis product can never OOM the
	// process. Each factor is checked against the cap before it is
	// multiplied in — the short-circuit keeps the running product at
	// most cap², so the arithmetic can never overflow past the check.
	specs := int64(1)
	for _, axis := range []int{len(r.Families), len(r.Tasks), len(r.Sizes), len(r.Engines), r.Trials} {
		if int64(axis) > maxStudySpecs || specs*int64(axis) > maxStudySpecs {
			return fmt.Errorf("study expands to more than %d runs (families × tasks × sizes × engines × trials); split the grid", maxStudySpecs)
		}
		specs *= int64(axis)
	}
	if ss.Options.Seed != 0 {
		return fmt.Errorf("options.seed must be zero: the study's root seed derives every cell seed")
	}
	if ss.Options.Engine != "" {
		return fmt.Errorf("options.engine must be empty: the engines axis supplies it")
	}
	for i, f := range ss.Families {
		if f.N != 0 {
			return fmt.Errorf("families[%d]: n must be zero (the sizes axis supplies node counts)", i)
		}
		if f.Seed != 0 {
			return fmt.Errorf("families[%d]: seed must be zero (cell seeds are derived from the study seed)", i)
		}
	}
	for i, n := range ss.Sizes {
		if n < 1 {
			return fmt.Errorf("sizes[%d]: need at least one node, got %d", i, n)
		}
	}
	if err := dupCheck("tasks", r.Tasks); err != nil {
		return err
	}
	famKeys := make([]string, len(r.Families))
	for i, f := range r.Families {
		famKeys[i] = familyKey(f)
	}
	if err := dupCheck("families", famKeys); err != nil {
		return err
	}
	sizeKeys := make([]string, len(r.Sizes))
	for i, n := range r.Sizes {
		sizeKeys[i] = strconv.Itoa(n)
	}
	if err := dupCheck("sizes", sizeKeys); err != nil {
		return err
	}
	engKeys := make([]string, len(r.Engines))
	for i, e := range r.Engines {
		engKeys[i] = string(e)
	}
	if err := dupCheck("engines", engKeys); err != nil {
		return err
	}
	// Validating every expanded spec catches the cross-axis conflicts a
	// per-axis check cannot (a regular family whose degree reaches one
	// of the sizes, an unknown task, a bad engine name, ...).
	for _, spec := range r.Specs() {
		if err := spec.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// dupCheck rejects repeated axis entries — a duplicate would silently
// double a cell column and skew every aggregate.
func dupCheck(axis string, keys []string) error {
	seen := make(map[string]bool, len(keys))
	for _, k := range keys {
		if seen[k] {
			return fmt.Errorf("%s: duplicate entry %q", axis, k)
		}
		seen[k] = true
	}
	return nil
}

// familyKey renders a family axis entry as a compact label: the
// family name plus any explicitly set generator knobs, so two entries
// sweeping the same family at different densities stay distinct.
func familyKey(f GraphSpec) string {
	key := f.Family
	var knobs []string
	if f.P != 0 {
		knobs = append(knobs, "p="+strconv.FormatFloat(f.P, 'g', -1, 64))
	}
	if f.Degree != 0 {
		knobs = append(knobs, "d="+strconv.Itoa(f.Degree))
	}
	if f.Radius != 0 {
		knobs = append(knobs, "r="+strconv.FormatFloat(f.Radius, 'g', -1, 64))
	}
	if len(knobs) > 0 {
		key += "(" + strings.Join(knobs, ",") + ")"
	}
	return key
}

// grid returns the expansion shape of a resolved spec.
func (ss StudySpec) grid() study.Grid {
	return study.Grid{
		Families: len(ss.Families), Tasks: len(ss.Tasks),
		Sizes: len(ss.Sizes), Engines: len(ss.Engines),
		Trials: ss.Trials,
	}
}

// StudyCell identifies one aggregation cell of the grid: a (task,
// family, n, engine) combination whose Trials runs are summarized
// together. Index is the cell's position in enumeration order
// (families × tasks × sizes × engines, family-major).
type StudyCell struct {
	Index  int    `json:"index"`
	Task   string `json:"task"`
	Family string `json:"family"`
	N      int    `json:"n"`
	Engine Engine `json:"engine"`
}

// label renders the cell for spec names and progress lines.
func (c StudyCell) label() string {
	return fmt.Sprintf("%s/%s/n=%d/%s", c.Task, c.Family, c.N, c.Engine)
}

// Cells enumerates the resolved study's aggregation cells in
// deterministic order.
func (ss StudySpec) Cells() []StudyCell {
	r := ss.Resolved()
	g := r.grid()
	cells := make([]StudyCell, 0, g.Cells())
	for fi, fam := range r.Families {
		key := familyKey(fam)
		for ti, task := range r.Tasks {
			for si, n := range r.Sizes {
				for ei, eng := range r.Engines {
					cells = append(cells, StudyCell{
						Index: g.CellIndex(fi, ti, si, ei),
						Task:  task, Family: key, N: n, Engine: eng,
					})
				}
			}
		}
	}
	return cells
}

// Specs expands the resolved study into its cross product of runnable
// Specs: one per (cell, trial), in cell order — spec i belongs to cell
// i/Trials, trial i%Trials. Every seed is resolved (derived from the
// study seed per (family, size, trial)), so the expansion is exactly
// reproducible and identical specs hit the daemon's content-addressed
// cache across re-submissions.
func (ss StudySpec) Specs() []Spec {
	r := ss.Resolved()
	g := r.grid()
	specs := make([]Spec, 0, g.Specs())
	for _, fam := range r.Families {
		key := familyKey(fam)
		for _, task := range r.Tasks {
			for _, n := range r.Sizes {
				for _, eng := range r.Engines {
					cell := StudyCell{Task: task, Family: key, N: n, Engine: eng}
					for t := 0; t < r.Trials; t++ {
						gs := fam
						gs.N = n
						// All trials of a cell column share one explicitly
						// seeded graph: replication measures algorithmic
						// randomness on a fixed input, and executors can
						// batch a cell's trials into one vectorized pass.
						gs.Seed = g.GraphSeed(r.Seed, key, n)
						opt := r.Options
						opt.Seed = g.TrialSeed(r.Seed, key, n, t)
						opt.Engine = eng
						specs = append(specs, Spec{
							Name:    fmt.Sprintf("%s/t%d", cell.label(), t),
							Task:    task,
							Graph:   gs,
							Options: opt,
						})
					}
				}
			}
		}
	}
	return specs
}

// studySamples flattens the deterministic numeric content of a Report
// into the named metric samples a study aggregates. WallMS is the one
// measure deliberately excluded: it is the Report's only
// nondeterministic field, and keeping it out is what makes StudyResult
// artifacts byte-identical across worker counts, batch orders, and
// direct-versus-daemon execution.
func studySamples(rep *Report) map[string]float64 {
	m := rep.Metrics
	return map[string]float64{
		"rounds":           float64(m.Rounds),
		"executed_rounds":  float64(m.ExecutedRounds),
		"max_awake":        float64(m.MaxAwake),
		"avg_awake":        m.AvgAwake,
		"awake_p50":        float64(m.AwakeQuantiles.P50),
		"awake_p90":        float64(m.AwakeQuantiles.P90),
		"awake_p99":        float64(m.AwakeQuantiles.P99),
		"messages_sent":    float64(m.MessagesSent),
		"bits_sent":        float64(m.BitsSent),
		"max_message_bits": float64(m.MaxMessageBits),
		"graph_m":          float64(rep.Graph.M),
		"graph_max_degree": float64(rep.Graph.MaxDegree),
	}
}

// studyMetricNames returns the aggregated metric names in sorted
// order — the iteration order every artifact rendering uses.
func studyMetricNames() []string {
	samples := studySamples(&Report{})
	names := make([]string, 0, len(samples))
	for name := range samples {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// MetricSummary aggregates one metric's trials within a cell.
type MetricSummary struct {
	Trials int     `json:"trials"`
	Mean   float64 `json:"mean"`
	Std    float64 `json:"std"`
	Min    float64 `json:"min"`
	Median float64 `json:"median"`
	Max    float64 `json:"max"`
}

// StudyCellResult is one cell of the artifact: the cell's identity
// plus a summary of every aggregated metric (keys are the metric
// names of the Report wire format, plus graph_m / graph_max_degree
// for the generated inputs).
type StudyCellResult struct {
	StudyCell
	Metrics map[string]MetricSummary `json:"metrics"`
}

// StudyFit is one fitted growth law: how a metric's per-cell mean
// grows with n along one (task, family, engine) series, which
// candidate model fits best, the 95% bootstrap confidence interval of
// its slope, and the R² margin over the runner-up model.
type StudyFit struct {
	Task   string `json:"task"`
	Family string `json:"family"`
	Engine Engine `json:"engine"`
	Metric string `json:"metric"`
	// Model is the preferred growth model; A, B, R2 its least squares
	// fit y ≈ A + B·f(n).
	Model string  `json:"model"`
	A     float64 `json:"a"`
	B     float64 `json:"b"`
	R2    float64 `json:"r2"`
	// BLo, BHi bound the slope B (95% percentile bootstrap over the
	// n-sweep, deterministically seeded from the study seed).
	BLo float64 `json:"b_lo"`
	BHi float64 `json:"b_hi"`
	// RunnerUp is the best competing model and Margin the R² gap to
	// it. A small margin means the sweep cannot separate the models.
	RunnerUp string  `json:"runner_up"`
	Margin   float64 `json:"margin"`
}

// StudyResult is the self-contained study artifact: the resolved
// StudySpec that produced it, every cell's aggregated metrics, and the
// growth fits over the n-sweep. It is deterministic — equal StudySpecs
// produce byte-identical artifacts at every Parallel/Workers setting
// and on every engine, locally or through the daemon — because every
// folded sample is deterministic (wall time is excluded) and every
// rendering iterates in a fixed order.
type StudyResult struct {
	Study StudySpec         `json:"study"`
	Cells []StudyCellResult `json:"cells"`
	Fits  []StudyFit        `json:"fits,omitempty"`
}

// JSON marshals the artifact (indented, stable field order) — the
// exact bytes `awakemis -study` prints and GET /v1/studies/{id}
// serves.
func (r *StudyResult) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// Cell finds a cell result by identity.
func (r *StudyResult) Cell(task, family string, n int, engine Engine) (StudyCellResult, bool) {
	for _, c := range r.Cells {
		if c.Task == task && c.Family == family && c.N == n && c.Engine == engine {
			return c, true
		}
	}
	return StudyCellResult{}, false
}

// Fit finds a growth fit by series and metric.
func (r *StudyResult) Fit(task, family string, engine Engine, metric string) (StudyFit, bool) {
	for _, f := range r.Fits {
		if f.Task == task && f.Family == family && f.Engine == engine && f.Metric == metric {
			return f, true
		}
	}
	return StudyFit{}, false
}

// fmtFloat renders a float for CSV cells: shortest representation
// that round-trips, so CSV renderings of a decoded artifact match the
// original byte for byte.
func fmtFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// CellsCSV renders the per-cell aggregates as long-format CSV: one
// row per (cell, metric).
func (r *StudyResult) CellsCSV() string {
	header := []string{"task", "family", "n", "engine", "metric", "trials", "mean", "std", "min", "median", "max"}
	var rows [][]string
	names := studyMetricNames()
	for _, c := range r.Cells {
		for _, name := range names {
			m, ok := c.Metrics[name]
			if !ok {
				continue
			}
			rows = append(rows, []string{
				c.Task, c.Family, strconv.Itoa(c.N), string(c.Engine), name,
				strconv.Itoa(m.Trials), fmtFloat(m.Mean), fmtFloat(m.Std),
				fmtFloat(m.Min), fmtFloat(m.Median), fmtFloat(m.Max),
			})
		}
	}
	return study.CSV(header, rows)
}

// FitsCSV renders the growth fits as CSV, one row per (series,
// metric).
func (r *StudyResult) FitsCSV() string {
	header := []string{"task", "family", "engine", "metric", "model", "a", "b", "r2", "b_lo", "b_hi", "runner_up", "margin"}
	rows := make([][]string, len(r.Fits))
	for i, f := range r.Fits {
		rows[i] = []string{
			f.Task, f.Family, string(f.Engine), f.Metric, f.Model,
			fmtFloat(f.A), fmtFloat(f.B), fmtFloat(f.R2),
			fmtFloat(f.BLo), fmtFloat(f.BHi), f.RunnerUp, fmtFloat(f.Margin),
		}
	}
	return study.CSV(header, rows)
}

// StudyAccumulator folds per-spec Reports into a StudyResult as they
// stream in, in any completion order. Only the extracted metric
// samples are retained — Reports are dropped after extraction, so a
// study over million-node graphs never holds more than its grid of
// float64s. Safe for concurrent use.
type StudyAccumulator struct {
	mu    sync.Mutex
	study StudySpec // resolved
	specs []Spec    // the expansion, built once (immutable)
	grid  study.Grid
	agg   *study.Aggregator
	added []bool
	done  int
}

// Accumulator validates the study and returns an empty accumulator
// for it. Feed it one Report per expanded Spec (Add with the spec's
// index in Specs() order), then call Result. The local StudyRunner
// and the daemon's study executor share this type — the reason their
// artifacts cannot drift apart.
func (ss StudySpec) Accumulator() (*StudyAccumulator, error) {
	if err := ss.Validate(); err != nil {
		return nil, err
	}
	r := ss.Resolved()
	g := r.grid()
	return &StudyAccumulator{
		study: r,
		specs: r.Specs(),
		grid:  g,
		agg:   study.NewAggregator(g.Cells(), g.Trials),
		added: make([]bool, g.Specs()),
	}, nil
}

// Study returns the resolved spec the accumulator aggregates for.
func (a *StudyAccumulator) Study() StudySpec { return a.study }

// Specs returns the study's expansion in index order — the slice Add
// indexes into, built once at construction so executors never
// re-expand the grid. Callers must not mutate it.
func (a *StudyAccumulator) Specs() []Spec { return a.specs }

// Total is the number of Reports the accumulator expects.
func (a *StudyAccumulator) Total() int { return len(a.added) }

// Done is the number of Reports recorded so far.
func (a *StudyAccumulator) Done() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.done
}

// Add records spec i's Report. Each index may be added once.
func (a *StudyAccumulator) Add(i int, rep *Report) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if i < 0 || i >= len(a.added) {
		return fmt.Errorf("awakemis: study %s: report index %d outside %d specs", a.study.label(), i, len(a.added))
	}
	if a.added[i] {
		return fmt.Errorf("awakemis: study %s: duplicate report for spec %d", a.study.label(), i)
	}
	if rep == nil {
		return fmt.Errorf("awakemis: study %s: nil report for spec %d", a.study.label(), i)
	}
	a.agg.AddTrial(i/a.grid.Trials, i%a.grid.Trials, studySamples(rep))
	a.added[i] = true
	a.done++
	return nil
}

// Result assembles the artifact. Every spec's Report must have been
// added.
func (a *StudyAccumulator) Result() (*StudyResult, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.done != len(a.added) {
		return nil, fmt.Errorf("awakemis: study %s incomplete: %d of %d runs recorded", a.study.label(), a.done, len(a.added))
	}
	names := studyMetricNames()
	cells := a.study.Cells()
	results := make([]StudyCellResult, len(cells))
	for i, c := range cells {
		ms := make(map[string]MetricSummary, len(names))
		for _, name := range names {
			s := a.agg.Summary(i, name)
			ms[name] = MetricSummary{
				Trials: s.N, Mean: s.Mean, Std: s.Std,
				Min: s.Min, Median: s.Median, Max: s.Max,
			}
		}
		results[i] = StudyCellResult{StudyCell: c, Metrics: ms}
	}

	var fits []StudyFit
	if len(a.study.Sizes) >= 2 {
		xs := make([]float64, len(a.study.Sizes))
		for i, n := range a.study.Sizes {
			xs[i] = float64(n)
		}
		series := 0
		for fi, fam := range a.study.Families {
			key := familyKey(fam)
			for ti, task := range a.study.Tasks {
				for ei, eng := range a.study.Engines {
					for _, metric := range names {
						ys := make([]float64, len(a.study.Sizes))
						for si := range a.study.Sizes {
							ys[si] = a.agg.Mean(a.grid.CellIndex(fi, ti, si, ei), metric)
						}
						f := study.FitSeries(xs, ys, 200, rng.Derive(a.study.Seed, "study-fit/"+metric, int64(series)))
						fits = append(fits, StudyFit{
							Task: task, Family: key, Engine: eng, Metric: metric,
							Model: f.Model, A: f.A, B: f.B, R2: f.R2,
							BLo: f.BLo, BHi: f.BHi,
							RunnerUp: f.RunnerUp, Margin: f.Margin,
						})
					}
					series++
				}
			}
		}
	}
	return &StudyResult{Study: a.study, Cells: results, Fits: fits}, nil
}

// StudyRunner executes studies locally: the streaming unit executor.
// The expansion is scheduled in units of one cell — the Trials
// consecutive specs sharing a graph — and a unit whose trials
// vectorize (≥2 trials, the stepped engine) runs as one merged pass
// through Run's WithVectorizedTrials instead of Trials scalar runs;
// other units fall back to a scalar loop. Either way the per-trial
// Reports, and therefore the artifact, are bit-identical (WallMS
// aside). Units run concurrently under a shared worker budget,
// Reports fold into the accumulator as units complete, and the
// artifact is assembled when the grid drains. The zero value is
// usable.
type StudyRunner struct {
	// Parallel caps how many units run concurrently (0 means one per
	// CPU).
	Parallel int
	// Workers is the total stepped-engine worker budget divided among
	// the units in flight (0 means one per CPU). Never changes results.
	Workers int
	// Scalar forces every unit onto the per-trial scalar path. Results
	// are identical; the switch exists for debugging and for the
	// vectorized-vs-scalar identity suites.
	Scalar bool
	// OnProgress, when non-nil, receives one callback per finished
	// spec, serialized.
	OnProgress func(Progress)
}

// Run executes the study and returns its artifact. Cancellation
// aborts in-flight simulations at their next round boundary.
func (sr *StudyRunner) Run(ctx context.Context, ss StudySpec) (*StudyResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	acc, err := ss.Accumulator()
	if err != nil {
		return nil, err
	}
	specs := acc.Specs()
	trials := acc.Study().Trials
	units := len(specs) / trials

	parallel := sr.Parallel
	if parallel <= 0 {
		parallel = runtime.NumCPU()
	}
	if parallel > units {
		parallel = units
	}
	budget := sr.Workers
	if budget <= 0 {
		budget = runtime.NumCPU()
	}
	perUnit := budget / max(parallel, 1)
	if perUnit < 1 {
		perUnit = 1
	}

	errs := make([]error, len(specs))
	var addErr error
	sem := make(chan struct{}, max(parallel, 1))
	var wg sync.WaitGroup
	var mu sync.Mutex
	done := 0
	// finish records one unit's outcomes: accumulate successes and
	// deliver the serialized per-spec progress stream.
	finish := func(lo int, reps []*Report, unitErrs []error) {
		mu.Lock()
		defer mu.Unlock()
		for j := range reps {
			i := lo + j
			errs[i] = unitErrs[j]
			if unitErrs[j] == nil && reps[j] != nil {
				if err := acc.Add(i, reps[j]); err != nil && addErr == nil {
					addErr = err
				}
			}
			done++
			if sr.OnProgress != nil {
				sr.OnProgress(Progress{
					Done: done, Total: len(specs),
					Index: i, Spec: specs[i], Report: reps[j], Err: unitErrs[j],
				})
			}
		}
	}
	for u := 0; u < units; u++ {
		wg.Add(1)
		go func(lo int) {
			defer wg.Done()
			unit := specs[lo : lo+trials]
			reps := make([]*Report, trials)
			unitErrs := make([]error, trials)
			fail := func(err error) {
				for j := range unitErrs {
					reps[j], unitErrs[j] = nil, err
				}
			}
			select {
			case sem <- struct{}{}:
				defer func() { <-sem }()
				if !sr.Scalar && vectorizable(unit[0], trials) {
					tr := make([]Trial, trials)
					for j, sp := range unit {
						tr[j] = Trial{Seed: sp.Options.Seed, Name: sp.Name}
					}
					if _, err := Run(ctx, unit[0], WithWorkers(perUnit), WithVectorizedTrials(tr, reps)); err != nil {
						fail(err)
					}
				} else {
					for j := range unit {
						reps[j], unitErrs[j] = Run(ctx, unit[j], WithWorkers(perUnit))
					}
				}
			case <-ctx.Done():
				fail(ctx.Err())
			}
			finish(lo, reps, unitErrs)
		}(u * trials)
	}
	wg.Wait()

	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("awakemis: study %s: %w", acc.Study().label(), err)
	}
	failed := 0
	var first error
	for _, err := range errs {
		if err != nil {
			failed++
			if first == nil {
				first = err
			}
		}
	}
	if failed > 0 {
		return nil, fmt.Errorf("awakemis: study %s: %d of %d specs failed (first: %w)",
			acc.Study().label(), failed, len(specs), first)
	}
	if addErr != nil {
		return nil, addErr
	}
	return acc.Result()
}

// RunStudy executes the study with default executor settings.
func RunStudy(ss StudySpec) (*StudyResult, error) {
	return RunStudyContext(context.Background(), ss)
}

// RunStudyContext is RunStudy under a context.
func RunStudyContext(ctx context.Context, ss StudySpec) (*StudyResult, error) {
	return (&StudyRunner{}).Run(ctx, ss)
}
