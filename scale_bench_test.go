// BenchmarkScale measures the big-graph regime the CSR layout and
// zero-allocation step loop exist for: MIS tasks on G(n, 4/n) at
// n = 10⁵, 10⁶, 10⁷. Beyond ns/op it reports the two numbers that
// decide whether n = 10⁷–10⁸ fits on one machine:
//
//   - ns/node — end-to-end simulation time per vertex;
//   - graph-B/node — live heap bytes per vertex held by the graph
//     (measured across generation with a forced GC on each side);
//   - alloc-B/node — bytes allocated per vertex per run (with the
//     pooled round state this is run setup, not per-round churn).
//
// Reference numbers, including the seed-layout baseline this PR
// replaced, are recorded in BENCH_scale.json. Run the full sweep with:
//
//	go test -run xxx -bench BenchmarkScale -benchtime 1x -timeout 2h
package awakemis_test

import (
	"runtime"
	"testing"

	"awakemis"
)

func BenchmarkScale(b *testing.B) {
	sizes := []struct {
		name string
		n    int
	}{
		{"n=100k", 100_000},
		{"n=1M", 1_000_000},
		{"n=10M", 10_000_000},
	}
	tasks := []string{"luby", "vt-mis", "awake-mis"}
	for _, sz := range sizes {
		b.Run(sz.name, func(b *testing.B) {
			// The graph is built lazily, once per size, inside the first
			// task sub-benchmark that actually runs — a -bench filter for
			// one task never pays for (or measures) the others.
			var g *awakemis.Graph
			graphBytes := 0.0
			build := func() {
				if g != nil {
					return
				}
				var before, after runtime.MemStats
				runtime.GC()
				runtime.ReadMemStats(&before)
				g = awakemis.GNP(sz.n, 4/float64(sz.n), int64(sz.n))
				runtime.GC()
				runtime.ReadMemStats(&after)
				graphBytes = float64(after.HeapAlloc) - float64(before.HeapAlloc)
			}
			for _, task := range tasks {
				b.Run(task, func(b *testing.B) {
					build()
					n := float64(sz.n)
					var ms0, ms1 runtime.MemStats
					runtime.ReadMemStats(&ms0)
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						if _, err := awakemis.RunTask(g, task, awakemis.Options{Seed: int64(i)}); err != nil {
							b.Fatal(err)
						}
					}
					b.StopTimer()
					runtime.ReadMemStats(&ms1)
					b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/n, "ns/node")
					b.ReportMetric(float64(ms1.TotalAlloc-ms0.TotalAlloc)/float64(b.N)/n, "alloc-B/node")
					b.ReportMetric(graphBytes/n, "graph-B/node")
				})
			}
		})
	}
}
