package awakemis_test

import (
	"errors"
	"strings"
	"testing"

	"awakemis"
)

func TestSpecValidate(t *testing.T) {
	valid := awakemis.Spec{
		Task:    "awake-mis",
		Graph:   awakemis.GraphSpec{Family: "gnp", N: 64, P: 0.1},
		Options: awakemis.Options{Seed: 1},
	}
	if err := valid.Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	// Zero values mean "default" everywhere.
	if err := (awakemis.Spec{Task: "luby"}).Validate(); err != nil {
		t.Fatalf("all-defaults spec rejected: %v", err)
	}

	cases := []struct {
		name string
		mut  func(*awakemis.Spec)
		want string // substring of the error
	}{
		{"missing task", func(s *awakemis.Spec) { s.Task = "" }, "missing task"},
		{"unknown task", func(s *awakemis.Spec) { s.Task = "frobnicate" }, `unknown task "frobnicate"`},
		{"unknown family", func(s *awakemis.Spec) { s.Graph.Family = "moebius" }, "unknown graph family"},
		{"negative n", func(s *awakemis.Spec) { s.Graph.N = -5 }, "non-negative node count"},
		{"p too big", func(s *awakemis.Spec) { s.Graph.P = 1.5 }, "edge probability"},
		{"negative p", func(s *awakemis.Spec) { s.Graph.P = -0.1 }, "edge probability"},
		{"negative degree", func(s *awakemis.Spec) { s.Graph.Degree = -1 }, "degree must be non-negative"},
		{"negative radius", func(s *awakemis.Spec) { s.Graph.Radius = -0.2 }, "radius must be non-negative"},
		{"regular degree >= n", func(s *awakemis.Spec) {
			s.Graph = awakemis.GraphSpec{Family: "regular", N: 8, Degree: 8}
		}, "degree < n"},
		{"unknown engine", func(s *awakemis.Spec) { s.Options.Engine = "quantum" }, `unknown engine "quantum"`},
		{"negative workers", func(s *awakemis.Spec) { s.Options.Workers = -2 }, "workers must be non-negative"},
		{"negative N bound", func(s *awakemis.Spec) { s.Options.N = -1 }, "network-size bound"},
		{"negative bandwidth", func(s *awakemis.Spec) { s.Options.Bandwidth = -8 }, "bandwidth"},
		{"negative max rounds", func(s *awakemis.Spec) { s.Options.MaxRounds = -1 }, "max_rounds"},
	}
	for _, tc := range cases {
		spec := valid
		tc.mut(&spec)
		err := spec.Validate()
		if err == nil {
			t.Errorf("%s: Validate accepted the spec", tc.name)
			continue
		}
		if !errors.Is(err, awakemis.ErrInvalidSpec) {
			t.Errorf("%s: error does not wrap ErrInvalidSpec: %v", tc.name, err)
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

// RunSpec must reject malformed specs up front with ErrInvalidSpec
// (the service daemon's 400-vs-500 discrimination), not via a deep
// generator or engine failure.
func TestRunSpecValidates(t *testing.T) {
	_, err := awakemis.RunSpec(awakemis.Spec{Task: "no-such-task"})
	if !errors.Is(err, awakemis.ErrInvalidSpec) {
		t.Errorf("RunSpec(unknown task) = %v, want ErrInvalidSpec", err)
	}
	_, err = awakemis.RunSpec(awakemis.Spec{
		Task:  "luby",
		Graph: awakemis.GraphSpec{Family: "gnp", N: -3},
	})
	if !errors.Is(err, awakemis.ErrInvalidSpec) {
		t.Errorf("RunSpec(negative n) = %v, want ErrInvalidSpec", err)
	}
}
