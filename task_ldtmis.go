package awakemis

import (
	"context"

	"awakemis/internal/ldtmis"
	"awakemis/internal/sim"
)

// Registration shim for internal/ldtmis: Algorithm LDT-MIS (Lemma 11).
func init() {
	registerTask(Task{
		Name:     string(LDTMIS),
		Kind:     "mis",
		Summary:  "LDT-MIS: O(log n′) awake via labeled distance trees (Lemma 11)",
		IDScheme: `distinct 40-bit IDs (Feistel over the 2⁴⁰ space), stream "big-ids"`,
		rank:     5,
		run: func(ctx context.Context, g *Graph, opt Options, cfg sim.Config) (Output, *sim.Metrics, error) {
			ids := bigIDs(g.N(), opt.Seed)
			np := 1
			for _, c := range g.Components() {
				if len(c) > np {
					np = len(c)
				}
			}
			if cfg.Bandwidth == 0 {
				// Lemma 11 allows O(log I)-bit messages; the IDs come from a
				// 2⁴⁰ space, so the CONGEST budget scales with log I.
				cfg.Bandwidth = sim.DefaultBandwidth(1 << 40)
			}
			res, m, err := ldtmis.RunContext(ctx, g.internal(), ids, np, ldtmis.VariantAwake, cfg)
			if err != nil {
				return Output{}, m, err
			}
			return Output{InMIS: res.InMIS}, m, nil
		},
		verify: verifyMIS,
	})
}
