// Cross-engine equivalence tests: the determinism contract of
// internal/sim, asserted at the public API for every algorithm. For a
// fixed seed, the lockstep and stepped engines — and the stepped engine
// at every worker count — must produce identical Results: the same MIS
// membership, the same round count, and the same per-node awake
// counters. The natively ported step-form algorithms are additionally
// checked bit-identical against their goroutine-form originals.
package awakemis_test

import (
	"context"
	"math/rand"
	"reflect"
	"runtime"
	"testing"

	"awakemis"
	"awakemis/internal/core"
	"awakemis/internal/graph"
	"awakemis/internal/ldtmis"
	"awakemis/internal/luby"
	"awakemis/internal/naive"
	rng2 "awakemis/internal/rng"
	"awakemis/internal/sim"
	"awakemis/internal/vtcolor"
	"awakemis/internal/vtmatch"
	"awakemis/internal/vtmis"
)

// engineConfigs is the grid of (engine, workers) the contract covers.
func engineConfigs() []awakemis.Options {
	return []awakemis.Options{
		{Engine: awakemis.EngineLockstep},
		{Engine: awakemis.EngineStepped, Workers: 1},
		{Engine: awakemis.EngineStepped, Workers: 4},
		{Engine: awakemis.EngineStepped, Workers: runtime.NumCPU()},
	}
}

func equivGraphs() map[string]*awakemis.Graph {
	return map[string]*awakemis.Graph{
		"gnp":   awakemis.GNP(90, 0.05, 5),
		"cycle": awakemis.Cycle(41),
		"grid":  awakemis.Grid(7, 8),
	}
}

func TestAllAlgorithmsIdenticalAcrossEngines(t *testing.T) {
	for gname, g := range equivGraphs() {
		for _, algo := range awakemis.Algorithms() {
			t.Run(gname+"/"+string(algo), func(t *testing.T) {
				for _, seed := range []int64{1, 17} {
					var ref *awakemis.Result
					for _, base := range engineConfigs() {
						opt := base
						opt.Seed = seed
						opt.Strict = true
						res, err := awakemis.RunMIS(g, algo, opt)
						if err != nil {
							t.Fatalf("engine %s/%d: %v", opt.Engine, opt.Workers, err)
						}
						if ref == nil {
							ref = res
							continue
						}
						if !reflect.DeepEqual(ref.InMIS, res.InMIS) {
							t.Fatalf("seed %d: MIS diverges on %s/%d", seed, opt.Engine, opt.Workers)
						}
						if !reflect.DeepEqual(ref.Metrics, res.Metrics) {
							t.Fatalf("seed %d: metrics diverge on %s/%d:\n%+v\nvs\n%+v",
								seed, opt.Engine, opt.Workers, ref.Metrics, res.Metrics)
						}
					}
				}
			})
		}
	}
}

func TestColoringMatchingIdenticalAcrossEngines(t *testing.T) {
	g := awakemis.GNP(80, 0.06, 3)
	var refColor, refMatch *awakemis.Report
	for _, base := range engineConfigs() {
		opt := base
		opt.Seed = 5
		crep, err := awakemis.RunTask(g, awakemis.TaskColoring, opt)
		if err != nil {
			t.Fatal(err)
		}
		mrep, err := awakemis.RunTask(g, awakemis.TaskMatching, opt)
		if err != nil {
			t.Fatal(err)
		}
		if refColor == nil {
			refColor, refMatch = crep, mrep
			continue
		}
		if !reflect.DeepEqual(refColor.Output, crep.Output) || !reflect.DeepEqual(refColor.Metrics, crep.Metrics) {
			t.Errorf("coloring diverges on %s/%d", opt.Engine, opt.Workers)
		}
		if !reflect.DeepEqual(refMatch.Output, mrep.Output) || !reflect.DeepEqual(refMatch.Metrics, mrep.Metrics) {
			t.Errorf("matching diverges on %s/%d", opt.Engine, opt.Workers)
		}
	}
}

// TestStepPortsMatchGoroutineOriginals runs each natively ported
// algorithm in both program forms on both engines and demands identical
// outputs and metrics — the port-faithfulness check. Since PR 4 this
// covers all eight algorithms: the awake-mis (core) and ldt-mis ports
// exercise the resumable ldt.SProc tree machinery.
func TestStepPortsMatchGoroutineOriginals(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	g := graph.GNP(70, 0.07, rng)
	n := g.N()
	ids := make([]int, n)
	for v, p := range rng.Perm(n) {
		ids[v] = p + 1
	}
	edgeIDs := vtmatch.EdgeIDs{}
	for i, e := range g.Edges() {
		edgeIDs[e] = i + 1
	}

	// awake-mis / ldt-mis inputs: the schedule every node derives
	// locally, and distinct big-space IDs with the component bound.
	baseCfg := sim.Config{Seed: 31, Strict: true}
	params := core.Params{}.WithDefaults(n)
	sched := core.NewSchedule(n, params, sim.DefaultBandwidth(n))
	bigCfg := baseCfg
	bigCfg.N = 1 << 16
	bigCfg.Bandwidth = sim.DefaultBandwidth(1 << 40)
	bigIDs := rng2.IDs40(n, 42)
	np := 1
	for _, c := range g.Components() {
		if len(c) > np {
			np = len(c)
		}
	}

	type variant struct {
		out  func() any // fresh result container read back after the run
		prog func(out any) sim.NodeProgram
	}
	cases := map[string]map[string]variant{
		"naive": {
			"goroutine": {
				out:  func() any { return &naive.Result{InMIS: make([]bool, n)} },
				prog: func(o any) sim.NodeProgram { return naive.Program(o.(*naive.Result), ids, n) },
			},
			"step": {
				out:  func() any { return &naive.Result{InMIS: make([]bool, n)} },
				prog: func(o any) sim.NodeProgram { return naive.StepProgram(o.(*naive.Result), ids, n) },
			},
		},
		"luby": {
			"goroutine": {
				out:  func() any { return &luby.Result{InMIS: make([]bool, n)} },
				prog: func(o any) sim.NodeProgram { return luby.Program(o.(*luby.Result)) },
			},
			"step": {
				out:  func() any { return &luby.Result{InMIS: make([]bool, n)} },
				prog: func(o any) sim.NodeProgram { return luby.StepProgram(o.(*luby.Result)) },
			},
		},
		"vtmis": {
			"goroutine": {
				out:  func() any { return &vtmis.Result{InMIS: make([]bool, n)} },
				prog: func(o any) sim.NodeProgram { return vtmis.Program(o.(*vtmis.Result), ids, n) },
			},
			"step": {
				out:  func() any { return &vtmis.Result{InMIS: make([]bool, n)} },
				prog: func(o any) sim.NodeProgram { return vtmis.StepProgram(o.(*vtmis.Result), ids, n) },
			},
		},
		"vtcolor": {
			"goroutine": {
				out:  func() any { return &vtcolor.Result{Color: make([]int, n)} },
				prog: func(o any) sim.NodeProgram { return vtcolor.Program(o.(*vtcolor.Result), ids, n) },
			},
			"step": {
				out:  func() any { return &vtcolor.Result{Color: make([]int, n)} },
				prog: func(o any) sim.NodeProgram { return vtcolor.StepProgram(o.(*vtcolor.Result), ids, n) },
			},
		},
		"vtmatch": {
			"goroutine": {
				out: func() any {
					r := &vtmatch.Result{MatchedWith: make([]int, n)}
					for i := range r.MatchedWith {
						r.MatchedWith[i] = -1
					}
					return r
				},
				prog: func(o any) sim.NodeProgram { return vtmatch.Program(o.(*vtmatch.Result), g, edgeIDs) },
			},
			"step": {
				out: func() any {
					r := &vtmatch.Result{MatchedWith: make([]int, n)}
					for i := range r.MatchedWith {
						r.MatchedWith[i] = -1
					}
					return r
				},
				prog: func(o any) sim.NodeProgram { return vtmatch.StepProgram(o.(*vtmatch.Result), g, edgeIDs) },
			},
		},
		"awake-mis": {
			"goroutine": {
				out: func() any { return &core.Result{InMIS: make([]bool, n), Batch: make([]int, n)} },
				prog: func(o any) sim.NodeProgram {
					return core.Program(o.(*core.Result), sched, params, n)
				},
			},
			"step": {
				out: func() any { return &core.Result{InMIS: make([]bool, n), Batch: make([]int, n)} },
				prog: func(o any) sim.NodeProgram {
					return core.StepProgram(o.(*core.Result), sched, params, n)
				},
			},
		},
		"ldt-mis": {
			"goroutine": {
				out: func() any { return &ldtmis.Result{InMIS: make([]bool, n), NewID: make([]int, n)} },
				prog: func(o any) sim.NodeProgram {
					return ldtmis.Program(o.(*ldtmis.Result), bigIDs, np, ldtmis.VariantAwake)
				},
			},
			"step": {
				out: func() any { return &ldtmis.Result{InMIS: make([]bool, n), NewID: make([]int, n)} },
				prog: func(o any) sim.NodeProgram {
					return ldtmis.StepProgram(o.(*ldtmis.Result), bigIDs, np, ldtmis.VariantAwake)
				},
			},
		},
	}
	// ldt-mis ships 40-bit IDs in its control messages; its CONGEST
	// budget scales with log I like the task shim's.
	cfgs := map[string]sim.Config{"ldt-mis": bigCfg}

	engines := map[string]sim.Engine{
		"lockstep":  sim.NewLockstepEngine(),
		"stepped-1": sim.NewSteppedEngine(1),
		"stepped-4": sim.NewSteppedEngine(4),
	}
	for algo, forms := range cases {
		t.Run(algo, func(t *testing.T) {
			cfg, ok := cfgs[algo]
			if !ok {
				cfg = baseCfg
			}
			var refOut any
			var refMetrics *sim.Metrics
			for fname, form := range forms {
				for ename, eng := range engines {
					out := form.out()
					m, err := eng.Run(context.Background(), g, form.prog(out), cfg)
					if err != nil {
						t.Fatalf("%s/%s: %v", fname, ename, err)
					}
					if refOut == nil {
						refOut, refMetrics = out, m
						continue
					}
					if !reflect.DeepEqual(refOut, out) {
						t.Fatalf("%s/%s: output diverges from reference", fname, ename)
					}
					if !reflect.DeepEqual(refMetrics, m) {
						t.Fatalf("%s/%s: metrics diverge:\n%+v\nvs\n%+v", fname, ename, refMetrics, m)
					}
				}
			}
		})
	}
}
