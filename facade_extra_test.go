package awakemis

import (
	"bytes"
	"strings"
	"testing"
)

func TestColoringTask(t *testing.T) {
	for name, g := range map[string]*Graph{
		"gnp":       GNP(120, 0.08, 1),
		"hypercube": Hypercube(6),
		"torus":     Torus(6, 7),
		"bipartite": CompleteBipartite(8, 9),
	} {
		t.Run(name, func(t *testing.T) {
			res, err := RunTask(g, TaskColoring, Options{Seed: 5, Strict: true})
			if err != nil {
				t.Fatal(err)
			}
			// Proper coloring, bounded palette.
			colors := map[int]bool{}
			for v, c := range res.Output.Color {
				colors[c] = true
				for _, w := range g.Neighbors(v) {
					if res.Output.Color[w] == c {
						t.Fatalf("edge (%d,%d) monochromatic", v, w)
					}
				}
			}
			if len(colors) > g.MaxDegree()+1 {
				t.Errorf("%d colors exceed Δ+1 = %d", len(colors), g.MaxDegree()+1)
			}
			if res.Metrics.MaxAwake > 20 {
				t.Errorf("coloring awake %d too large for O(log n)", res.Metrics.MaxAwake)
			}
		})
	}
}

func TestMatchingTask(t *testing.T) {
	for name, g := range map[string]*Graph{
		"gnp":   GNP(100, 0.08, 2),
		"cycle": Cycle(25),
		"torus": Torus(6, 6),
	} {
		t.Run(name, func(t *testing.T) {
			res, err := RunTask(g, TaskMatching, Options{Seed: 6, Strict: true})
			if err != nil {
				t.Fatal(err)
			}
			// Symmetry and maximality are verified by the task's checker;
			// check the metrics shape here.
			for v, w := range res.Output.MatchedWith {
				if w >= 0 && res.Output.MatchedWith[w] != v {
					t.Fatalf("asymmetric match at %d", v)
				}
			}
			if res.Metrics.MaxAwake > int64(g.MaxDegree())+1 {
				t.Errorf("awake %d exceeds deg+1 bound %d",
					res.Metrics.MaxAwake, g.MaxDegree()+1)
			}
		})
	}
}

func TestNewGenerators(t *testing.T) {
	if g := Hypercube(5); g.N() != 32 || g.MaxDegree() != 5 {
		t.Errorf("hypercube wrong: %v", g)
	}
	if g := Torus(5, 5); g.N() != 25 || g.MaxDegree() != 4 {
		t.Errorf("torus wrong: %v", g)
	}
	if g := CompleteBipartite(4, 6); g.N() != 10 || g.M() != 24 {
		t.Errorf("bipartite wrong: %v", g)
	}
	if g := Barbell(5, 2); !g.IsConnected() || g.N() != 12 {
		t.Errorf("barbell wrong: %v", g)
	}
	if g := Lollipop(5, 5); !g.IsConnected() || g.N() != 10 {
		t.Errorf("lollipop wrong: %v", g)
	}
}

func TestGraphReadWrite(t *testing.T) {
	g := Barbell(4, 2)
	var buf bytes.Buffer
	if err := WriteGraph(&buf, g); err != nil {
		t.Fatal(err)
	}
	back, err := ReadGraph(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.N() != g.N() || back.M() != g.M() {
		t.Errorf("round trip: n=%d m=%d, want n=%d m=%d", back.N(), back.M(), g.N(), g.M())
	}
	if _, err := ReadGraph(strings.NewReader("0 zero\n")); err == nil {
		t.Error("garbage accepted")
	}
}

func TestTraceThroughFacade(t *testing.T) {
	g := Cycle(16)
	res, err := RunMIS(g, AwakeMIS, Options{Seed: 2, Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.TraceSummary(), "traced 16 nodes") {
		t.Errorf("summary: %s", res.TraceSummary())
	}
	tl := res.Timeline(3, 40)
	if !strings.Contains(tl, "|") || len(strings.Split(tl, "\n")) < 4 {
		t.Errorf("timeline:\n%s", tl)
	}
	// Without tracing, the accessors degrade gracefully.
	res2, err := RunMIS(g, Luby, Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res2.Timeline(1, 10), "disabled") ||
		!strings.Contains(res2.TraceSummary(), "disabled") {
		t.Error("untraced result should say tracing is disabled")
	}
}

func TestAwakeMISOnAdversarialFamilies(t *testing.T) {
	// Dense cores with sparse attachments stress the batching phases.
	for name, g := range map[string]*Graph{
		"barbell":  Barbell(12, 20),
		"lollipop": Lollipop(15, 30),
		"torus":    Torus(8, 8),
	} {
		t.Run(name, func(t *testing.T) {
			res, err := RunMIS(g, AwakeMIS, Options{Seed: 9, Strict: true})
			if err != nil {
				t.Fatal(err)
			}
			if err := Verify(g, res.InMIS); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestVertexRelabelingInvariance runs the same structural graph under a
// different vertex numbering: algorithms may only use ports and their
// private randomness, so validity must be preserved (an implementation
// leaning on global indices would break here).
func TestVertexRelabelingInvariance(t *testing.T) {
	n := 60
	base := GNP(n, 0.1, 4)
	// Relabel v -> (v*37+11) mod n (37 coprime to 60).
	perm := make([]int, n)
	for v := range perm {
		perm[v] = (v*37 + 11) % n
	}
	edges := [][2]int{}
	for _, e := range base.Edges() {
		edges = append(edges, [2]int{perm[e[0]], perm[e[1]]})
	}
	relabeled, err := NewGraph(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	for _, algo := range []Algorithm{AwakeMIS, Luby, VTMIS, LDTMIS} {
		res, err := RunMIS(relabeled, algo, Options{Seed: 4, Strict: true})
		if err != nil {
			t.Fatalf("%s on relabeled graph: %v", algo, err)
		}
		if err := Verify(relabeled, res.InMIS); err != nil {
			t.Fatalf("%s on relabeled graph: %v", algo, err)
		}
	}
}
