package awakemis

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"awakemis/internal/rng"
)

// Progress reports batch completion; the Runner delivers one Progress
// per finished spec, serialized (never two callbacks at once).
type Progress struct {
	// Done of Total specs have finished (including failures).
	Done, Total int
	// Index is the finished spec's position in the batch.
	Index int
	// Spec is the finished spec.
	Spec Spec
	// Report is the spec's result, nil when it failed.
	Report *Report
	// Err is the spec's failure, nil when it succeeded.
	Err error
}

// Runner executes batches of Specs concurrently. The zero value is
// usable: one spec in flight per CPU, a shared stepped-engine worker
// budget of one per CPU, and root seed 0.
//
// Results are deterministic: a batch produces bit-identical Reports
// (up to WallMS) to running each resolved spec sequentially through
// RunSpec, at every Parallel and Workers setting.
type Runner struct {
	// Parallel caps how many specs run concurrently (0 means one per
	// CPU).
	Parallel int
	// Workers is the total stepped-engine worker budget, divided evenly
	// among the specs in flight (0 means one per CPU). A spec whose
	// Options.Workers is set explicitly keeps its own pool instead.
	// Worker counts never change results, only wall-clock time.
	Workers int
	// Seed resolves specs whose Options.Seed is zero: spec i runs with
	// DeriveSeed(Seed, "spec", i), so one root seed reproduces a whole
	// batch and specs never share RNG streams by accident.
	Seed int64
	// OnProgress, when non-nil, receives one callback per finished spec.
	OnProgress func(Progress)
}

// Resolve returns the spec as the Runner would run it at batch index
// i: a zero Options.Seed replaced by the derived per-spec seed.
// RunSpec on the resolved spec reproduces the batch entry exactly.
func (r *Runner) Resolve(spec Spec, i int) Spec {
	if spec.Options.Seed == 0 {
		spec.Options.Seed = rng.Derive(r.Seed, "spec", int64(i))
	}
	return spec
}

// RunBatch executes every spec and returns one Report per spec, in
// spec order. Specs run concurrently (at most Parallel in flight) but
// independently: one spec's failure does not stop its siblings, and
// reports[i] is nil exactly when spec i failed. The returned error is
// nil when every spec succeeded, ctx.Err() when the batch was
// cancelled, and a summary error otherwise.
func (r *Runner) RunBatch(ctx context.Context, specs []Spec) ([]*Report, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	parallel := r.Parallel
	if parallel <= 0 {
		parallel = runtime.NumCPU()
	}
	if parallel > len(specs) {
		parallel = len(specs)
	}
	budget := r.Workers
	if budget <= 0 {
		budget = runtime.NumCPU()
	}
	perSpec := budget / max(parallel, 1)
	if perSpec < 1 {
		perSpec = 1
	}

	reports := make([]*Report, len(specs))
	errs := make([]error, len(specs))
	sem := make(chan struct{}, max(parallel, 1))
	var wg sync.WaitGroup
	var mu sync.Mutex
	done := 0
	for i := range specs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			spec := r.Resolve(specs[i], i)
			var rep *Report
			err := ctx.Err()
			if err == nil {
				select {
				case sem <- struct{}{}:
					workers := spec.Options.Workers
					if workers == 0 {
						workers = perSpec
					}
					rep, err = runSpec(ctx, spec, workers)
					<-sem
				case <-ctx.Done():
					err = ctx.Err()
				}
			}
			reports[i], errs[i] = rep, err
			mu.Lock()
			done++
			if r.OnProgress != nil {
				r.OnProgress(Progress{
					Done: done, Total: len(specs),
					Index: i, Spec: spec, Report: rep, Err: err,
				})
			}
			mu.Unlock()
		}(i)
	}
	wg.Wait()

	if err := ctx.Err(); err != nil {
		return reports, err
	}
	failed := 0
	var first error
	for _, err := range errs {
		if err != nil {
			failed++
			if first == nil {
				first = err
			}
		}
	}
	if failed > 0 {
		return reports, fmt.Errorf("awakemis: %d of %d specs failed (first: %w)", failed, len(specs), first)
	}
	return reports, nil
}
