package awakemis_test

import (
	"context"
	"encoding/json"
	"reflect"
	"testing"

	"awakemis"
)

// statLog collects the public RoundStats a run emits.
type statLog struct {
	stats []awakemis.RoundStat
}

func (l *statLog) ObserveRound(st awakemis.RoundStat) { l.stats = append(l.stats, st) }

// telemetrySpec is a run long enough to exercise bucket merging: the
// naive-greedy schedule executes a few hundred rounds on a cycle.
func telemetrySpec() awakemis.Spec {
	return awakemis.Spec{
		Name:    "telemetry",
		Task:    "naive-greedy",
		Graph:   awakemis.GraphSpec{Family: "cycle", N: 192},
		Options: awakemis.Options{Seed: 17, RoundSummary: true},
	}
}

// TestRoundSummaryAcrossEnginesAndWorkers pins the determinism of the
// report's round-summary block: byte-identical report JSON (modulo
// wall time) across lockstep/stepped × workers 1/4, with internally
// consistent totals.
func TestRoundSummaryAcrossEnginesAndWorkers(t *testing.T) {
	var refJSON []byte
	var refName string
	for _, tc := range []struct {
		name    string
		engine  awakemis.Engine
		workers int
	}{
		{"lockstep", awakemis.EngineLockstep, 0},
		{"stepped-1", awakemis.EngineStepped, 1},
		{"stepped-4", awakemis.EngineStepped, 4},
	} {
		spec := telemetrySpec()
		spec.Options.Engine = tc.engine
		spec.Options.Workers = tc.workers
		rep, err := awakemis.Run(context.Background(), spec)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		rs := rep.RoundSummary
		if rs == nil {
			t.Fatalf("%s: Options.RoundSummary produced no block", tc.name)
		}
		if rs.Executed != rep.Metrics.ExecutedRounds {
			t.Errorf("%s: summary executed %d, metrics %d", tc.name, rs.Executed, rep.Metrics.ExecutedRounds)
		}
		var executed, sent, bits int64
		for i, b := range rs.Buckets {
			executed += b.Executed
			sent += b.Sent
			bits += b.Bits
			if i > 0 && b.FromRound <= rs.Buckets[i-1].ToRound {
				t.Errorf("%s: bucket %d rounds overlap: %+v after %+v", tc.name, i, b, rs.Buckets[i-1])
			}
		}
		if len(rs.Buckets) == 0 || len(rs.Buckets) > 64 {
			t.Errorf("%s: %d buckets, want 1..64", tc.name, len(rs.Buckets))
		}
		if executed != rs.Executed {
			t.Errorf("%s: buckets sum to %d executed rounds, summary says %d", tc.name, executed, rs.Executed)
		}
		if sent != rep.Metrics.MessagesSent || bits != rep.Metrics.BitsSent {
			t.Errorf("%s: bucket traffic %d msgs/%d bits, metrics %d/%d",
				tc.name, sent, bits, rep.Metrics.MessagesSent, rep.Metrics.BitsSent)
		}
		if last := rs.Buckets[len(rs.Buckets)-1]; last.ToRound+1 != rep.Metrics.Rounds {
			t.Errorf("%s: last bucket ends at round %d, metrics rounds %d", tc.name, last.ToRound, rep.Metrics.Rounds)
		}
		// Engine and Workers are recorded in the report (and wall time is
		// nondeterministic); neutralize them before the byte comparison.
		c := *rep
		c.WallMS = 0
		c.Engine = ""
		c.Workers = 0
		data, err := json.Marshal(&c)
		if err != nil {
			t.Fatal(err)
		}
		if refJSON == nil {
			refJSON, refName = data, tc.name
			continue
		}
		if string(refJSON) != string(data) {
			t.Errorf("round summary diverges:\n%s: %s\n%s: %s", refName, refJSON, tc.name, data)
		}
	}
}

// TestObserverTotalsMatchReport pins the facade-level observer
// identity: summing the streamed per-round stats reproduces the
// report's metrics.
func TestObserverTotalsMatchReport(t *testing.T) {
	spec := telemetrySpec()
	log := &statLog{}
	spec.Options.Observer = log
	rep, err := awakemis.Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(log.stats)) != rep.Metrics.ExecutedRounds {
		t.Errorf("observed %d rounds, metrics executed %d", len(log.stats), rep.Metrics.ExecutedRounds)
	}
	var sent, bits int64
	for _, st := range log.stats {
		sent += st.Sent
		bits += st.Bits
	}
	if sent != rep.Metrics.MessagesSent || bits != rep.Metrics.BitsSent {
		t.Errorf("observer totals %d msgs/%d bits, metrics %d/%d",
			sent, bits, rep.Metrics.MessagesSent, rep.Metrics.BitsSent)
	}
	if last := log.stats[len(log.stats)-1]; last.Round+1 != rep.Metrics.Rounds {
		t.Errorf("last observed round %d, metrics rounds %d", last.Round, rep.Metrics.Rounds)
	}
}

// TestObserverLeavesReportUnchanged asserts the byte-identity contract
// with an observer attached: the report is bit-identical to a bare run.
func TestObserverLeavesReportUnchanged(t *testing.T) {
	spec := telemetrySpec()
	spec.Options.RoundSummary = false
	bare, err := awakemis.Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	spec.Options.Observer = &statLog{}
	observed, err := awakemis.Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	a, b := *bare, *observed
	a.WallMS, b.WallMS = 0, 0
	if !reflect.DeepEqual(a, b) {
		t.Errorf("observer changed the report:\nbare:     %+v\nobserved: %+v", a, b)
	}
}
