package awakemis

import (
	"encoding/json"

	"awakemis/internal/trace"
)

// Output is the union of task outputs; exactly the fields of the task
// that produced it are non-nil.
type Output struct {
	// InMIS[v] reports whether node v joined the MIS (MIS tasks).
	InMIS []bool `json:"in_mis,omitempty"`
	// Color[v] is node v's color in [0, Δ] (the coloring task).
	Color []int `json:"color,omitempty"`
	// MatchedWith[v] is v's partner, or -1 if unmatched (the matching
	// task).
	MatchedWith []int `json:"matched_with,omitempty"`
}

// GraphStats summarizes a run's input graph.
type GraphStats struct {
	N         int `json:"n"`
	M         int `json:"m"`
	MaxDegree int `json:"max_degree"`
}

func statsOf(g *Graph) GraphStats {
	return GraphStats{N: g.N(), M: g.M(), MaxDegree: g.MaxDegree()}
}

// Report is the machine-readable result envelope every task run
// produces: what ran, on what input, under which engine and seed, what
// came out, and what it cost. It marshals to JSON as-is (the per-node
// awake counters are elided from JSON to keep reports compact at
// million-node scale; use the in-memory Metrics.AwakePerNode).
//
// Reports are deterministic except WallMS: equal (graph, task, seed)
// runs produce identical reports on every engine at every worker count
// and batch size.
type Report struct {
	// Task names the registered task that produced this report.
	Task string `json:"task"`
	// Name is the spec label when the run came from a Spec ("" for
	// direct RunTask calls).
	Name string `json:"name,omitempty"`
	// Engine and Workers record the runtime configuration. Workers is
	// the requested Options.Workers (0 means automatic), not the value a
	// batch budget resolved it to.
	Engine  string `json:"engine"`
	Workers int    `json:"workers,omitempty"`
	// Seed is the run seed every stream derived from.
	Seed int64 `json:"seed"`
	// Graph summarizes the input.
	Graph GraphStats `json:"graph"`
	// Metrics holds the run's complexity measures.
	Metrics Metrics `json:"metrics"`
	// Output is the task's verified output.
	Output Output `json:"output"`
	// Verified reports that the task's oracle accepted the output (a
	// Report is only produced when it did).
	Verified bool `json:"verified"`
	// WallMS is the wall-clock run time in milliseconds — the only
	// nondeterministic field.
	WallMS float64 `json:"wall_ms"`
	// RoundSummary is the optional compact per-round block
	// (Options.RoundSummary); deterministic like the rest of the report.
	RoundSummary *RoundSummary `json:"round_summary,omitempty"`

	trace *trace.Collector
}

// JSON marshals the report (indented, stable field order).
func (r *Report) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// Timeline renders an ASCII awake-density timeline of the k busiest
// nodes (requires Options.Trace; otherwise returns a notice).
func (r *Report) Timeline(k, width int) string {
	if r.trace == nil {
		return "tracing disabled: set Options.Trace\n"
	}
	return r.trace.Timeline(r.trace.BusiestNodes(k), width)
}

// TraceSummary describes the recorded trace (requires Options.Trace).
func (r *Report) TraceSummary() string {
	if r.trace == nil {
		return "tracing disabled: set Options.Trace"
	}
	return r.trace.Summary()
}
