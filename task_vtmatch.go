package awakemis

import (
	"context"
	"math/rand"

	"awakemis/internal/rng"
	"awakemis/internal/sim"
	"awakemis/internal/verify"
	"awakemis/internal/vtmatch"
)

// Registration shim for internal/vtmatch: maximal matching, the second
// §7 extension.
func init() {
	registerTask(Task{
		Name:     TaskMatching,
		Kind:     "matching",
		Summary:  "maximal matching with early-exit awake complexity (§7 extension)",
		IDScheme: `random permutation of the edges, stream "edge-perm"`,
		rank:     7,
		run: func(ctx context.Context, g *Graph, opt Options, cfg sim.Config) (Output, *sim.Metrics, error) {
			src := rand.New(rand.NewSource(rng.Derive(opt.Seed, "edge-perm", 0)))
			perm := src.Perm(g.M())
			ids := vtmatch.EdgeIDs{}
			for i, e := range g.internal().Edges() {
				ids[e] = perm[i] + 1
			}
			res, m, err := vtmatch.RunContext(ctx, g.internal(), ids, g.M(), cfg)
			if err != nil {
				return Output{}, m, err
			}
			return Output{MatchedWith: res.MatchedWith}, m, nil
		},
		verify: func(g *Graph, out Output) error {
			return verify.CheckMatching(g.internal(), out.MatchedWith)
		},
	})
}
