package awakemis

import (
	"errors"
	"fmt"
	"math"
	"strings"
)

// ErrInvalidSpec is wrapped by every Spec.Validate failure, so callers
// that accept specs from the outside (the service daemon, batch file
// loaders) can distinguish a malformed request from an execution
// failure with errors.Is.
var ErrInvalidSpec = errors.New("invalid spec")

// Validate checks the spec without running it: the task must be
// registered, the graph spec well-formed, and the options within
// range. RunSpec and Runner.RunBatch validate every spec before
// spending a simulation on it, so a bad spec fails fast with a
// descriptive error (wrapping ErrInvalidSpec) instead of surfacing as
// a deep generator or engine failure.
func (s Spec) Validate() error {
	err := s.check()
	if err == nil {
		return nil
	}
	return fmt.Errorf("awakemis: %w %s: %s", ErrInvalidSpec, s.label(), err)
}

func (s Spec) check() error {
	if s.Task == "" {
		return fmt.Errorf("missing task (have %s)", strings.Join(TaskNames(), "|"))
	}
	if _, ok := TaskByName(s.Task); !ok {
		return fmt.Errorf("unknown task %q (have %s)", s.Task, strings.Join(TaskNames(), "|"))
	}
	if err := s.Graph.validate(); err != nil {
		return fmt.Errorf("graph: %w", err)
	}
	if err := s.Options.validate(); err != nil {
		return fmt.Errorf("options: %w", err)
	}
	return nil
}

// validate checks the graph spec against its family's constraints.
// Zero values are legal (they mean "family default"); negative or
// out-of-range values are not.
func (gs GraphSpec) validate() error {
	family := gs.Family
	if family == "" {
		family = "gnp"
	}
	known := false
	for _, f := range Families() {
		if strings.EqualFold(family, f) {
			known = true
			break
		}
	}
	if !known {
		return fmt.Errorf("unknown graph family %q (have %s)", gs.Family, strings.Join(Families(), "|"))
	}
	if gs.N < 0 {
		return fmt.Errorf("family %q needs a non-negative node count, got n=%d (0 means the default, 1024)", family, gs.N)
	}
	if gs.P < 0 || gs.P > 1 || math.IsNaN(gs.P) {
		return fmt.Errorf("edge probability must be in [0, 1], got p=%v", gs.P)
	}
	if gs.Degree < 0 {
		return fmt.Errorf("degree must be non-negative, got degree=%d", gs.Degree)
	}
	if gs.Radius < 0 || math.IsNaN(gs.Radius) {
		return fmt.Errorf("radius must be non-negative, got radius=%v", gs.Radius)
	}
	if strings.EqualFold(family, "regular") {
		n, d := gs.N, gs.Degree
		if n == 0 {
			n = 1024
		}
		if d == 0 {
			d = 4
		}
		if d >= n {
			return fmt.Errorf("regular family needs degree < n, got degree=%d >= n=%d", d, n)
		}
	}
	return nil
}

// validate checks the run options: engine name, and non-negative
// resource knobs (zero always means "the default").
func (o Options) validate() error {
	switch o.Engine {
	case "", EngineStepped, EngineLockstep:
	default:
		return fmt.Errorf("unknown engine %q (have stepped|lockstep)", o.Engine)
	}
	if o.Workers < 0 {
		return fmt.Errorf("workers must be non-negative, got %d", o.Workers)
	}
	if o.N < 0 {
		return fmt.Errorf("the known network-size bound N must be non-negative, got %d", o.N)
	}
	if o.Bandwidth < 0 {
		return fmt.Errorf("bandwidth must be non-negative, got %d bits", o.Bandwidth)
	}
	if o.MaxRounds < 0 {
		return fmt.Errorf("max_rounds must be non-negative, got %d", o.MaxRounds)
	}
	return nil
}
