package awakemis_test

import (
	"context"
	"encoding/json"
	"errors"
	"reflect"
	"strings"
	"testing"

	"awakemis"
)

func TestTasksListsAllEightProblems(t *testing.T) {
	want := []string{
		"awake-mis", "awake-mis-round", "luby", "naive-greedy",
		"vt-mis", "ldt-mis", "coloring", "matching",
	}
	if got := awakemis.TaskNames(); !reflect.DeepEqual(got, want) {
		t.Fatalf("TaskNames() = %v, want %v", got, want)
	}
	for _, task := range awakemis.Tasks() {
		if task.Summary == "" || task.IDScheme == "" {
			t.Errorf("task %s metadata incomplete: %+v", task.Name, task)
		}
		if _, ok := awakemis.TaskByName(task.Name); !ok {
			t.Errorf("TaskByName(%s) missing", task.Name)
		}
	}
	if _, ok := awakemis.TaskByName("bogus"); ok {
		t.Error("TaskByName accepted an unknown name")
	}
}

func TestRunTaskEveryTaskProducesVerifiedReport(t *testing.T) {
	g := awakemis.GNP(70, 0.06, 11)
	for _, task := range awakemis.TaskNames() {
		t.Run(task, func(t *testing.T) {
			rep, err := awakemis.RunTask(g, task, awakemis.Options{Seed: 4, Strict: true})
			if err != nil {
				t.Fatal(err)
			}
			if !rep.Verified || rep.Task != task || rep.Engine != "stepped" {
				t.Errorf("envelope wrong: %+v", rep)
			}
			if rep.Graph.N != g.N() || rep.Graph.M != g.M() {
				t.Errorf("graph stats wrong: %+v", rep.Graph)
			}
			if rep.Metrics.Rounds < 1 || rep.Metrics.MaxAwake < 1 {
				t.Errorf("suspicious metrics: %+v", rep.Metrics)
			}
			// Exactly one output field per task kind.
			outputs := 0
			if rep.Output.InMIS != nil {
				outputs++
			}
			if rep.Output.Color != nil {
				outputs++
			}
			if rep.Output.MatchedWith != nil {
				outputs++
			}
			if outputs != 1 {
				t.Errorf("%d output fields set, want 1: %+v", outputs, rep.Output)
			}
		})
	}
}

func TestReportJSONRoundTrip(t *testing.T) {
	g := awakemis.Cycle(20)
	rep, err := awakemis.RunTask(g, "luby", awakemis.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	data, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"task", "engine", "seed", "graph", "metrics", "output", "verified", "wall_ms"} {
		if _, ok := decoded[key]; !ok {
			t.Errorf("report JSON missing %q:\n%s", key, data)
		}
	}
	if decoded["task"] != "luby" || decoded["verified"] != true {
		t.Errorf("report JSON content wrong:\n%s", data)
	}
	// Per-node awake counters stay out of the wire form.
	if strings.Contains(string(data), "AwakePerNode") {
		t.Error("AwakePerNode leaked into JSON")
	}
}

func TestRunTaskUnknownNameListsRegistry(t *testing.T) {
	_, err := awakemis.RunTask(awakemis.Cycle(4), "bogus", awakemis.Options{})
	if err == nil || !strings.Contains(err.Error(), "awake-mis") {
		t.Fatalf("want an error naming the registry, got %v", err)
	}
}

func TestRunRejectsNonMISTasks(t *testing.T) {
	for _, task := range []string{awakemis.TaskColoring, awakemis.TaskMatching} {
		if _, err := awakemis.RunMIS(awakemis.Cycle(10), awakemis.Algorithm(task), awakemis.Options{Seed: 1}); err == nil {
			t.Errorf("Run accepted non-MIS task %q", task)
		}
	}
}

func TestDeprecatedWrappersMatchRegistry(t *testing.T) {
	g := awakemis.GNP(60, 0.08, 5)
	opt := awakemis.Options{Seed: 9, Strict: true}

	cres, err := awakemis.RunColoring(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	crep, err := awakemis.RunTask(g, awakemis.TaskColoring, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cres.Color, crep.Output.Color) || !reflect.DeepEqual(cres.Metrics, crep.Metrics) {
		t.Error("RunColoring diverges from RunTask(coloring)")
	}

	mres, err := awakemis.RunMatching(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	mrep, err := awakemis.RunTask(g, awakemis.TaskMatching, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(mres.MatchedWith, mrep.Output.MatchedWith) || !reflect.DeepEqual(mres.Metrics, mrep.Metrics) {
		t.Error("RunMatching diverges from RunTask(matching)")
	}

	rres, err := awakemis.RunMIS(g, awakemis.Luby, opt)
	if err != nil {
		t.Fatal(err)
	}
	rrep, err := awakemis.RunTask(g, "luby", opt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rres.InMIS, rrep.Output.InMIS) || !reflect.DeepEqual(rres.Metrics, rrep.Metrics) {
		t.Error("Run diverges from RunTask(luby)")
	}
}

func TestRunTaskContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	// naive-greedy on a big cycle would run for thousands of rounds; a
	// dead context must stop it before the first one.
	_, err := awakemis.RunTaskContext(ctx, awakemis.Cycle(2000), "naive-greedy", awakemis.Options{Seed: 1})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestDeriveSeedStableAndSeparated(t *testing.T) {
	a := awakemis.DeriveSeed(7, "spec", 0)
	if a != awakemis.DeriveSeed(7, "spec", 0) {
		t.Fatal("DeriveSeed not deterministic")
	}
	if a == awakemis.DeriveSeed(7, "spec", 1) || a == awakemis.DeriveSeed(7, "graph", 0) || a == awakemis.DeriveSeed(8, "spec", 0) {
		t.Fatal("DeriveSeed streams collide")
	}
}
