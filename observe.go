package awakemis

import (
	"awakemis/internal/sim"
)

// RoundStat is one executed round's flat aggregate, as delivered to a
// RoundObserver and streamed by `awakemis -runlog`: round number, how
// many nodes were awake, and what the round's traffic cost. All fields
// except ElapsedNS are deterministic for a fixed (graph, task, seed)
// on every engine at every worker count; summed over a run they equal
// the final Metrics exactly.
type RoundStat struct {
	// Round is the round number. Rounds in which every node sleeps are
	// skipped by the engines, so consecutive stats may jump.
	Round int64 `json:"round"`
	// Awake is the number of nodes awake this round.
	Awake int `json:"awake"`
	// Sent counts messages sent this round; Delivered counts the ones
	// that reached an awake receiver (the rest were lost to sleepers).
	Sent      int64 `json:"sent"`
	Delivered int64 `json:"delivered"`
	// Bits is the total wire size of this round's sends.
	Bits int64 `json:"bits"`
	// ElapsedNS is the wall time the engine spent on the round — the
	// only nondeterministic field.
	ElapsedNS int64 `json:"elapsed_ns"`
}

// RoundObserver receives one RoundStat per executed round, in round
// order, from the engine goroutine. Implementations should be cheap:
// they run once per round on the engine's hot path (though never per
// node or per message — cost is independent of graph size).
type RoundObserver interface {
	ObserveRound(RoundStat)
}

// simObserver adapts the facade observer surface to the engine hook:
// it converts sim.RoundStat into the public RoundStat and fans it to
// the optional round-summary accumulator and the caller's observer.
type simObserver struct {
	user RoundObserver
	acc  *roundSummaryAcc
}

var _ sim.RoundObserver = (*simObserver)(nil)

func (o *simObserver) ObserveRound(st sim.RoundStat) {
	rs := RoundStat{
		Round:     st.Round,
		Awake:     st.Awake,
		Sent:      st.Sent,
		Delivered: st.Delivered,
		Bits:      st.Bits,
		ElapsedNS: int64(st.Elapsed),
	}
	if o.acc != nil {
		o.acc.add(rs)
	}
	if o.user != nil {
		o.user.ObserveRound(rs)
	}
}

// RoundSummary is the Report's optional compact per-round block
// (Options.RoundSummary): run-level aggregates plus a bounded sequence
// of round buckets tracing the paper's awake/round tradeoff over time.
// It is fully deterministic — wall times are deliberately excluded so
// WallMS stays the Report's only nondeterministic field.
type RoundSummary struct {
	// Executed is the number of executed rounds summarized.
	Executed int64 `json:"executed"`
	// PeakAwake is the maximum awake-node count over all rounds, and
	// PeakRound the first round attaining it.
	PeakAwake int   `json:"peak_awake"`
	PeakRound int64 `json:"peak_round"`
	// Lost counts messages lost to sleeping receivers.
	Lost int64 `json:"lost"`
	// Buckets partitions the executed rounds, in order, into at most 64
	// equal-size groups (sizes double as the run grows, so the block
	// stays compact at any round count).
	Buckets []RoundBucket `json:"buckets,omitempty"`
}

// RoundBucket aggregates a consecutive range of executed rounds.
type RoundBucket struct {
	// FromRound and ToRound bound the rounds folded into this bucket
	// (inclusive; skipped all-asleep rounds in between carry no cost).
	FromRound int64 `json:"from_round"`
	ToRound   int64 `json:"to_round"`
	// Executed is the number of executed rounds in the bucket.
	Executed int64 `json:"executed"`
	// MaxAwake is the bucket's peak awake-node count; AwakeSum its
	// total awake node-rounds.
	MaxAwake int   `json:"max_awake"`
	AwakeSum int64 `json:"awake_sum"`
	// Sent, Delivered, and Bits total the bucket's traffic.
	Sent      int64 `json:"sent"`
	Delivered int64 `json:"delivered"`
	Bits      int64 `json:"bits"`
}

// maxRoundBuckets bounds RoundSummary.Buckets. When the accumulator
// fills all slots it merges adjacent pairs and doubles the per-bucket
// span, so memory stays O(1) however long the run is.
const maxRoundBuckets = 64

// roundSummaryAcc streams RoundStats into a RoundSummary without
// retaining them: O(maxRoundBuckets) state total.
type roundSummaryAcc struct {
	sum     RoundSummary
	buckets []RoundBucket
	span    int64 // executed rounds per full bucket
	fill    int64 // executed rounds folded into the open (last) bucket
}

func (a *roundSummaryAcc) add(st RoundStat) {
	a.sum.Executed++
	if st.Awake > a.sum.PeakAwake {
		a.sum.PeakAwake, a.sum.PeakRound = st.Awake, st.Round
	}
	a.sum.Lost += st.Sent - st.Delivered

	if a.span == 0 {
		a.span = 1
	}
	if a.fill == 0 { // open a new bucket
		if len(a.buckets) == maxRoundBuckets {
			a.mergePairs()
		}
		a.buckets = append(a.buckets, RoundBucket{FromRound: st.Round})
	}
	b := &a.buckets[len(a.buckets)-1]
	b.ToRound = st.Round
	b.Executed++
	if st.Awake > b.MaxAwake {
		b.MaxAwake = st.Awake
	}
	b.AwakeSum += int64(st.Awake)
	b.Sent += st.Sent
	b.Delivered += st.Delivered
	b.Bits += st.Bits
	a.fill++
	if a.fill == a.span {
		a.fill = 0
	}
}

// mergePairs halves a full bucket list by merging adjacent pairs and
// doubles the span. It is only called when every bucket is full, so
// the merged buckets are full at the doubled span too.
func (a *roundSummaryAcc) mergePairs() {
	half := len(a.buckets) / 2
	for i := 0; i < half; i++ {
		l, r := a.buckets[2*i], a.buckets[2*i+1]
		m := l
		m.ToRound = r.ToRound
		m.Executed += r.Executed
		if r.MaxAwake > m.MaxAwake {
			m.MaxAwake = r.MaxAwake
		}
		m.AwakeSum += r.AwakeSum
		m.Sent += r.Sent
		m.Delivered += r.Delivered
		m.Bits += r.Bits
		a.buckets[i] = m
	}
	a.buckets = a.buckets[:half]
	a.span *= 2
}

// summary returns the accumulated block, or nil if no round was
// observed (an empty graph runs zero rounds).
func (a *roundSummaryAcc) summary() *RoundSummary {
	if a.sum.Executed == 0 {
		return nil
	}
	s := a.sum
	s.Buckets = a.buckets
	return &s
}
