// Package awakemis is a Go implementation of
//
//	Dufoulon, Moses Jr., Pandurangan.
//	"Distributed MIS in O(log log n) Awake Complexity." PODC 2023.
//
// It provides the paper's main algorithm — a randomized distributed
// maximal-independent-set algorithm whose worst-case awake complexity
// (the number of rounds any node must keep its radio on) is
// O(log log n) — together with the full stack it is built on: a
// SLEEPING-CONGEST network simulator, the virtual-binary-tree
// coordination technique, labeled distance trees, the auxiliary
// algorithms VT-MIS and LDT-MIS, the classical baselines the paper
// compares against, and the §7 extensions to (Δ+1)-coloring and
// maximal matching.
//
// Every problem is a registered Task; runs produce a machine-readable
// Report, and a Runner executes batches of Specs concurrently with
// deterministic seed derivation. Quick start:
//
//	g := awakemis.GNP(1024, 0.004, 1)
//	rep, err := awakemis.RunTask(g, "awake-mis", awakemis.Options{Seed: 1})
//	// rep.Output.InMIS is a verified MIS; rep.Metrics.MaxAwake is
//	// O(log log n); rep.JSON() is the wire form.
//
// Spec-driven execution goes through the single consolidated entry
// point Run(ctx, spec, ...RunOption): functional options select worker
// budgets (WithWorkers), per-round observers (WithObserver), and
// vectorized trial batches (WithVectorizedTrials) that execute all
// replications of a study cell in one merged pass. RunMIS returns the
// typed MIS view; RunSpec / RunSpecContext / RunSpecWorkers and the
// RunColoring / RunMatching wrappers are deprecated delegates.
package awakemis

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"slices"

	"awakemis/internal/core"
	"awakemis/internal/rng"
	"awakemis/internal/sim"
	"awakemis/internal/trace"
)

// Algorithm selects a distributed MIS algorithm (a Task name; Run
// accepts exactly the tasks that produce an MIS).
type Algorithm string

const (
	// AwakeMIS is the paper's main contribution (Theorem 13):
	// O(log log n) awake complexity.
	AwakeMIS Algorithm = "awake-mis"
	// AwakeMISRound is the Corollary 14 variant built on the
	// deterministic LDT construction.
	AwakeMISRound Algorithm = "awake-mis-round"
	// Luby is the classical O(log n)-round, O(log n)-awake baseline.
	Luby Algorithm = "luby"
	// NaiveGreedy is the O(I)-awake naive distributed sequential greedy
	// (§5.3), with IDs assigned as a random permutation of [1, n].
	NaiveGreedy Algorithm = "naive-greedy"
	// VTMIS is Algorithm VT-MIS (Lemma 10): O(log I) awake via the
	// virtual binary tree, with IDs a random permutation of [1, n].
	VTMIS Algorithm = "vt-mis"
	// LDTMIS is Algorithm LDT-MIS (Lemma 11): O(log n′) awake via
	// labeled distance trees, with IDs from a 2⁴⁰ space.
	LDTMIS Algorithm = "ldt-mis"
)

// Task names for the §7 extensions (use RunTask, or the deprecated
// typed wrappers RunColoring and RunMatching).
const (
	// TaskColoring is greedy (Δ+1)-coloring in O(log n) awake rounds.
	TaskColoring = "coloring"
	// TaskMatching is maximal matching with early-exit awake complexity.
	TaskMatching = "matching"
)

// Algorithms lists every MIS algorithm (the tasks Run accepts). See
// Tasks for the full registry including coloring and matching.
func Algorithms() []Algorithm {
	return []Algorithm{AwakeMIS, AwakeMISRound, Luby, NaiveGreedy, VTMIS, LDTMIS}
}

// Engine selects the simulation runtime (see internal/sim): the
// default stepped engine keeps node state inline and shards step calls
// across a worker pool; the lockstep engine runs one goroutine per
// node. Both produce bit-identical results for equal seeds.
type Engine string

const (
	// EngineStepped is the default: the inline-state parallel engine.
	EngineStepped Engine = "stepped"
	// EngineLockstep is the goroutine-per-node reference engine.
	EngineLockstep Engine = "lockstep"
)

// Engines lists the available engines.
func Engines() []Engine { return []Engine{EngineStepped, EngineLockstep} }

// Options configures a run. The zero value is usable, and the struct
// marshals to/from JSON for batch spec files.
type Options struct {
	// Seed drives all randomness; equal seeds replay identical runs on
	// every engine at every worker count. Every derived stream (per-node
	// randomness, ID permutations, edge orders) comes from this seed
	// through the centralized splitmix64 deriver (see DeriveSeed).
	Seed int64 `json:"seed,omitempty"`
	// Engine selects the runtime engine ("" means EngineStepped).
	Engine Engine `json:"engine,omitempty"`
	// Workers caps the stepped engine's worker pool (0 means one per
	// CPU). Worker count never changes results, only wall-clock time.
	Workers int `json:"workers,omitempty"`
	// N is the common polynomial upper bound on the network size known
	// to nodes (the paper's N). Zero means the exact node count.
	N int `json:"n,omitempty"`
	// Bandwidth overrides the CONGEST per-message bit budget
	// (default 16·⌈log₂ N⌉ + 16).
	Bandwidth int `json:"bandwidth,omitempty"`
	// Strict makes any message exceeding Bandwidth a run error.
	Strict bool `json:"strict,omitempty"`
	// MaxRounds aborts runaway schedules (default 2⁴⁰ rounds).
	MaxRounds int64 `json:"max_rounds,omitempty"`
	// Params tunes Awake-MIS constants (ignored by other tasks);
	// zero fields take paper-faithful defaults.
	Params core.Params `json:"params,omitempty"`
	// Trace records per-node awake timelines and message-loss counters,
	// exposed through Report.Timeline and Report.TraceSummary. The
	// recorded node set is sampled (first trace.DefaultMaxNodes ids) so
	// tracing stays bounded on million-node graphs.
	Trace bool `json:"trace,omitempty"`
	// RoundSummary embeds the compact, deterministic per-round block in
	// the Report (Report.RoundSummary). Unlike Trace it affects report
	// bytes, so it participates in spec canonicalization and caching.
	RoundSummary bool `json:"round_summary,omitempty"`
	// Observer, if non-nil, receives one RoundStat per executed round.
	// Local-only: it is never serialized and never affects results or
	// report bytes.
	Observer RoundObserver `json:"-"`
}

// simConfig resolves the options into an engine configuration. workers
// overrides Options.Workers when the caller manages a shared budget
// (Runner.RunBatch); pass o.Workers otherwise.
func (o Options) simConfig(workers int) (sim.Config, error) {
	eng, err := sim.EngineByName(string(o.Engine), workers)
	if err != nil {
		return sim.Config{}, fmt.Errorf("awakemis: %w", err)
	}
	return sim.Config{
		Seed:      o.Seed,
		N:         o.N,
		Bandwidth: o.Bandwidth,
		Strict:    o.Strict,
		MaxRounds: o.MaxRounds,
		Engine:    eng,
	}, nil
}

// Metrics reports the complexity measures of a run (§1.3–1.4).
type Metrics struct {
	// Rounds is the round complexity (sleeping rounds included).
	Rounds int64 `json:"rounds"`
	// ExecutedRounds is the number of rounds with at least one awake node.
	ExecutedRounds int64 `json:"executed_rounds"`
	// MaxAwake is the worst-case awake complexity max_v A_v.
	MaxAwake int64 `json:"max_awake"`
	// AvgAwake is the node-averaged awake complexity.
	AvgAwake float64 `json:"avg_awake"`
	// AwakeQuantiles is the compact wire summary of the per-node awake
	// distribution — what studies aggregate now that AwakePerNode never
	// reaches the wire.
	AwakeQuantiles AwakeQuantiles `json:"awake_quantiles"`
	// AwakePerNode is A_v for every node (elided from JSON; reports stay
	// compact at million-node scale — see AwakeQuantiles for the wire
	// summary).
	AwakePerNode []int64 `json:"-"`
	// MessagesSent and BitsSent measure communication volume.
	MessagesSent int64 `json:"messages_sent"`
	BitsSent     int64 `json:"bits_sent"`
	// MaxMessageBits is the largest message observed.
	MaxMessageBits int `json:"max_message_bits"`
}

// AwakeQuantiles summarizes the distribution of per-node awake rounds
// as nearest-rank quantiles: sorted[⌈q·n⌉-1]. Min is the best-off
// node; MaxAwake (the paper's headline measure) is the p100 and lives
// on Metrics directly.
type AwakeQuantiles struct {
	Min int64 `json:"min"`
	P25 int64 `json:"p25"`
	P50 int64 `json:"p50"`
	P75 int64 `json:"p75"`
	P90 int64 `json:"p90"`
	P99 int64 `json:"p99"`
}

// awakeQuantiles folds per-node awake counters into their wire
// summary. Deterministic: nearest-rank on the sorted counters.
func awakeQuantiles(per []int64) AwakeQuantiles {
	if len(per) == 0 {
		return AwakeQuantiles{}
	}
	sorted := append([]int64(nil), per...)
	slices.Sort(sorted)
	q := func(p float64) int64 {
		idx := int(math.Ceil(p*float64(len(sorted)))) - 1
		if idx < 0 {
			idx = 0
		}
		return sorted[idx]
	}
	return AwakeQuantiles{
		Min: sorted[0], P25: q(0.25), P50: q(0.50),
		P75: q(0.75), P90: q(0.90), P99: q(0.99),
	}
}

func fromSim(m *sim.Metrics) Metrics {
	return Metrics{
		Rounds:         m.Rounds,
		ExecutedRounds: m.ExecutedRounds,
		MaxAwake:       m.MaxAwake,
		AvgAwake:       m.AvgAwake(),
		AwakeQuantiles: awakeQuantiles(m.AwakePerNode),
		AwakePerNode:   append([]int64(nil), m.AwakePerNode...),
		MessagesSent:   m.MessagesSent,
		BitsSent:       m.BitsSent,
		MaxMessageBits: m.MaxMessageBits,
	}
}

// Result is an MIS algorithm's output (the typed view Run returns; the
// registry-level envelope is Report).
type Result struct {
	// InMIS[v] reports whether node v joined the MIS.
	InMIS []bool
	// Metrics holds the run's complexity measures.
	Metrics Metrics

	trace *trace.Collector
}

// Timeline renders an ASCII awake-density timeline of the k busiest
// nodes (requires Options.Trace; otherwise returns a notice).
func (r *Result) Timeline(k, width int) string {
	if r.trace == nil {
		return "tracing disabled: set Options.Trace\n"
	}
	return r.trace.Timeline(r.trace.BusiestNodes(k), width)
}

// TraceSummary describes the recorded trace (requires Options.Trace).
func (r *Result) TraceSummary() string {
	if r.trace == nil {
		return "tracing disabled: set Options.Trace"
	}
	return r.trace.Summary()
}

// RunMIS executes the selected MIS algorithm on g and returns its MIS
// and metrics; it dispatches through the task registry (RunTask is the
// registry-level equivalent and also covers coloring and matching).
// The output is always verified to be a maximal independent set before
// returning. For spec-driven execution — serializable inputs, worker
// budgets, vectorized trial batches — use Run.
func RunMIS(g *Graph, algo Algorithm, opt Options) (*Result, error) {
	return RunMISContext(context.Background(), g, algo, opt)
}

// RunMISContext is RunMIS under a context: cancellation or a missed
// deadline aborts the simulation at the next round boundary.
func RunMISContext(ctx context.Context, g *Graph, algo Algorithm, opt Options) (*Result, error) {
	// Reject non-MIS tasks before spending a simulation on them.
	if t, ok := TaskByName(string(algo)); ok && t.Kind != "mis" {
		return nil, fmt.Errorf("awakemis: task %q does not compute an MIS; use RunTask", algo)
	}
	rep, err := RunTaskContext(ctx, g, string(algo), opt)
	if err != nil {
		return nil, err
	}
	return &Result{InMIS: rep.Output.InMIS, Metrics: rep.Metrics, trace: rep.trace}, nil
}

// Verify checks that inMIS is a maximal independent set of g.
func Verify(g *Graph, inMIS []bool) error {
	return verifyMIS(g, Output{InMIS: inMIS})
}

// ColoringResult is the output of RunColoring.
type ColoringResult struct {
	// Color[v] is node v's color; colors are in [0, Δ].
	Color []int
	// Metrics holds the run's complexity measures.
	Metrics Metrics
}

// RunColoring computes a greedy (Δ+1)-coloring in the sleeping model
// with O(log n) awake complexity — the §7 extension of the paper's
// virtual-binary-tree technique to another symmetry-breaking problem.
//
// Deprecated: RunColoring is a thin wrapper kept for compatibility;
// use RunTask(g, TaskColoring, opt) and read Report.Output.Color.
func RunColoring(g *Graph, opt Options) (*ColoringResult, error) {
	rep, err := RunTask(g, TaskColoring, opt)
	if err != nil {
		return nil, err
	}
	return &ColoringResult{Color: rep.Output.Color, Metrics: rep.Metrics}, nil
}

// MatchingResult is the output of RunMatching.
type MatchingResult struct {
	// MatchedWith[v] is v's partner, or -1 if unmatched.
	MatchedWith []int
	// Metrics holds the run's complexity measures.
	Metrics Metrics
}

// RunMatching computes a maximal matching in the sleeping model via
// greedy processing of a random edge order (§7 extension).
//
// Deprecated: RunMatching is a thin wrapper kept for compatibility;
// use RunTask(g, TaskMatching, opt) and read Report.Output.MatchedWith.
func RunMatching(g *Graph, opt Options) (*MatchingResult, error) {
	rep, err := RunTask(g, TaskMatching, opt)
	if err != nil {
		return nil, err
	}
	return &MatchingResult{MatchedWith: rep.Output.MatchedWith, Metrics: rep.Metrics}, nil
}

// DeriveSeed derives an independent stream seed from a root seed: the
// centralized splitmix64 deriver every ID assignment, edge order, and
// batch-spec seed goes through (replacing the historical seed^const
// XORs, whose nearby constants produced correlated streams). Equal
// inputs give equal outputs, so derived seeds are as replayable as the
// root seed.
func DeriveSeed(seed int64, label string, n int64) int64 {
	return rng.Derive(seed, label, n)
}

// permIDs derives the random ID permutation of [1, n] used by the
// permutation-ID tasks (naive-greedy, vt-mis, coloring).
func permIDs(n int, seed int64) []int {
	perm := rand.New(rand.NewSource(rng.Derive(seed, "perm-ids", 0))).Perm(n)
	ids := make([]int, n)
	for v, p := range perm {
		ids[v] = p + 1
	}
	return ids
}

// bigIDs derives n distinct IDs from the 2⁴⁰ space (Lemma 11's I) via
// the collision-free Feistel generator — no rejection table.
func bigIDs(n int, seed int64) []int64 {
	return rng.IDs40(n, rng.Derive(seed, "big-ids", 0))
}
