// Package awakemis is a Go implementation of
//
//	Dufoulon, Moses Jr., Pandurangan.
//	"Distributed MIS in O(log log n) Awake Complexity." PODC 2023.
//
// It provides the paper's main algorithm — a randomized distributed
// maximal-independent-set algorithm whose worst-case awake complexity
// (the number of rounds any node must keep its radio on) is
// O(log log n) — together with the full stack it is built on: a
// SLEEPING-CONGEST network simulator, the virtual-binary-tree
// coordination technique, labeled distance trees, the auxiliary
// algorithms VT-MIS and LDT-MIS, and the classical baselines the paper
// compares against.
//
// Quick start:
//
//	g := awakemis.GNP(1024, 0.004, 1)
//	res, err := awakemis.Run(g, awakemis.AwakeMIS, awakemis.Options{Seed: 1})
//	// res.InMIS is a valid MIS; res.Metrics.MaxAwake is O(log log n).
package awakemis

import (
	"fmt"
	"math/rand"

	"awakemis/internal/core"
	"awakemis/internal/ldtmis"
	"awakemis/internal/luby"
	"awakemis/internal/naive"
	"awakemis/internal/sim"
	"awakemis/internal/trace"
	"awakemis/internal/verify"
	"awakemis/internal/vtcolor"
	"awakemis/internal/vtmatch"
	"awakemis/internal/vtmis"
)

// Algorithm selects a distributed MIS algorithm.
type Algorithm string

const (
	// AwakeMIS is the paper's main contribution (Theorem 13):
	// O(log log n) awake complexity.
	AwakeMIS Algorithm = "awake-mis"
	// AwakeMISRound is the Corollary 14 variant built on the
	// deterministic LDT construction.
	AwakeMISRound Algorithm = "awake-mis-round"
	// Luby is the classical O(log n)-round, O(log n)-awake baseline.
	Luby Algorithm = "luby"
	// NaiveGreedy is the O(I)-awake naive distributed sequential greedy
	// (§5.3), with IDs assigned as a random permutation of [1, n].
	NaiveGreedy Algorithm = "naive-greedy"
	// VTMIS is Algorithm VT-MIS (Lemma 10): O(log I) awake via the
	// virtual binary tree, with IDs a random permutation of [1, n].
	VTMIS Algorithm = "vt-mis"
	// LDTMIS is Algorithm LDT-MIS (Lemma 11): O(log n′) awake via
	// labeled distance trees, with IDs from a 2⁴⁰ space.
	LDTMIS Algorithm = "ldt-mis"
)

// Algorithms lists every available algorithm.
func Algorithms() []Algorithm {
	return []Algorithm{AwakeMIS, AwakeMISRound, Luby, NaiveGreedy, VTMIS, LDTMIS}
}

// Engine selects the simulation runtime (see internal/sim): the
// default stepped engine keeps node state inline and shards step calls
// across a worker pool; the lockstep engine runs one goroutine per
// node. Both produce bit-identical results for equal seeds.
type Engine string

const (
	// EngineStepped is the default: the inline-state parallel engine.
	EngineStepped Engine = "stepped"
	// EngineLockstep is the goroutine-per-node reference engine.
	EngineLockstep Engine = "lockstep"
)

// Engines lists the available engines.
func Engines() []Engine { return []Engine{EngineStepped, EngineLockstep} }

// Options configures a run. The zero value is usable.
type Options struct {
	// Seed drives all randomness; equal seeds replay identical runs on
	// every engine at every worker count.
	Seed int64
	// Engine selects the runtime engine ("" means EngineStepped).
	Engine Engine
	// Workers caps the stepped engine's worker pool (0 means one per
	// CPU). Worker count never changes results, only wall-clock time.
	Workers int
	// N is the common polynomial upper bound on the network size known
	// to nodes (the paper's N). Zero means the exact node count.
	N int
	// Bandwidth overrides the CONGEST per-message bit budget
	// (default 16·⌈log₂ N⌉ + 16).
	Bandwidth int
	// Strict makes any message exceeding Bandwidth a run error.
	Strict bool
	// MaxRounds aborts runaway schedules (default 2⁴⁰ rounds).
	MaxRounds int64
	// Params tunes Awake-MIS constants (ignored by other algorithms);
	// zero fields take paper-faithful defaults.
	Params core.Params
	// Trace records per-node awake timelines and message-loss counters,
	// exposed through Result.Timeline and Result.TraceSummary.
	Trace bool
}

func (o Options) simConfig() (sim.Config, error) {
	eng, err := sim.EngineByName(string(o.Engine), o.Workers)
	if err != nil {
		return sim.Config{}, fmt.Errorf("awakemis: %w", err)
	}
	return sim.Config{
		Seed:      o.Seed,
		N:         o.N,
		Bandwidth: o.Bandwidth,
		Strict:    o.Strict,
		MaxRounds: o.MaxRounds,
		Engine:    eng,
	}, nil
}

// Metrics reports the complexity measures of a run (§1.3–1.4).
type Metrics struct {
	// Rounds is the round complexity (sleeping rounds included).
	Rounds int64
	// ExecutedRounds is the number of rounds with at least one awake node.
	ExecutedRounds int64
	// MaxAwake is the worst-case awake complexity max_v A_v.
	MaxAwake int64
	// AvgAwake is the node-averaged awake complexity.
	AvgAwake float64
	// AwakePerNode is A_v for every node.
	AwakePerNode []int64
	// MessagesSent and BitsSent measure communication volume.
	MessagesSent int64
	BitsSent     int64
	// MaxMessageBits is the largest message observed.
	MaxMessageBits int
}

func fromSim(m *sim.Metrics) Metrics {
	return Metrics{
		Rounds:         m.Rounds,
		ExecutedRounds: m.ExecutedRounds,
		MaxAwake:       m.MaxAwake,
		AvgAwake:       m.AvgAwake(),
		AwakePerNode:   append([]int64(nil), m.AwakePerNode...),
		MessagesSent:   m.MessagesSent,
		BitsSent:       m.BitsSent,
		MaxMessageBits: m.MaxMessageBits,
	}
}

// Result is an algorithm's output.
type Result struct {
	// InMIS[v] reports whether node v joined the MIS.
	InMIS []bool
	// Metrics holds the run's complexity measures.
	Metrics Metrics

	trace *trace.Collector
}

// Timeline renders an ASCII awake-density timeline of the k busiest
// nodes (requires Options.Trace; otherwise returns a notice).
func (r *Result) Timeline(k, width int) string {
	if r.trace == nil {
		return "tracing disabled: set Options.Trace\n"
	}
	return r.trace.Timeline(r.trace.BusiestNodes(k), width)
}

// TraceSummary describes the recorded trace (requires Options.Trace).
func (r *Result) TraceSummary() string {
	if r.trace == nil {
		return "tracing disabled: set Options.Trace"
	}
	return r.trace.Summary()
}

// Run executes the selected algorithm on g and returns its MIS and
// metrics. The output is always verified to be a maximal independent
// set before returning (a violation — possible only if a
// high-probability event failed — is reported as an error).
func Run(g *Graph, algo Algorithm, opt Options) (*Result, error) {
	cfg, err := opt.simConfig()
	if err != nil {
		return nil, err
	}
	var collector *trace.Collector
	if opt.Trace {
		collector = trace.NewCollector()
		cfg.Tracer = collector
	}
	n := g.N()
	var in []bool
	var m *sim.Metrics

	switch algo {
	case AwakeMIS, AwakeMISRound:
		params := opt.Params
		if algo == AwakeMISRound {
			params.Variant = ldtmis.VariantRound
		}
		var res *core.Result
		res, m, err = core.Run(g.internal(), params, cfg)
		if err == nil {
			in = res.InMIS
		}
	case Luby:
		var res *luby.Result
		res, m, err = luby.Run(g.internal(), cfg)
		if err == nil {
			in = res.InMIS
		}
	case NaiveGreedy:
		ids := permIDs(n, opt.Seed)
		var res *naive.Result
		res, m, err = naive.Run(g.internal(), ids, n, cfg)
		if err == nil {
			in = res.InMIS
		}
	case VTMIS:
		ids := permIDs(n, opt.Seed)
		var res *vtmis.Result
		res, m, err = vtmis.Run(g.internal(), ids, n, cfg)
		if err == nil {
			in = res.InMIS
		}
	case LDTMIS:
		ids := bigIDs(n, opt.Seed)
		np := 1
		for _, c := range g.Components() {
			if len(c) > np {
				np = len(c)
			}
		}
		if cfg.Bandwidth == 0 {
			// Lemma 11 allows O(log I)-bit messages; the IDs come from a
			// 2⁴⁰ space, so the CONGEST budget scales with log I.
			cfg.Bandwidth = sim.DefaultBandwidth(1 << 40)
		}
		var res *ldtmis.Result
		res, m, err = ldtmis.Run(g.internal(), ids, np, ldtmis.VariantAwake, cfg)
		if err == nil {
			in = res.InMIS
		}
	default:
		return nil, fmt.Errorf("awakemis: unknown algorithm %q", algo)
	}
	if err != nil {
		return nil, fmt.Errorf("awakemis: %s: %w", algo, err)
	}
	if verr := verify.CheckMIS(g.internal(), in); verr != nil {
		return nil, fmt.Errorf("awakemis: %s produced an invalid MIS (failed w.h.p. event): %w", algo, verr)
	}
	return &Result{InMIS: in, Metrics: fromSim(m), trace: collector}, nil
}

// Verify checks that inMIS is a maximal independent set of g.
func Verify(g *Graph, inMIS []bool) error {
	return verify.CheckMIS(g.internal(), inMIS)
}

// ColoringResult is the output of RunColoring.
type ColoringResult struct {
	// Color[v] is node v's color; colors are in [0, Δ].
	Color []int
	// Metrics holds the run's complexity measures.
	Metrics Metrics
}

// RunColoring computes a greedy (Δ+1)-coloring in the sleeping model
// with O(log n) awake complexity — the §7 extension of the paper's
// virtual-binary-tree technique to another symmetry-breaking problem.
// The output is verified to be a proper coloring with every node's
// color at most its degree.
func RunColoring(g *Graph, opt Options) (*ColoringResult, error) {
	cfg, err := opt.simConfig()
	if err != nil {
		return nil, err
	}
	ids := permIDs(g.N(), opt.Seed)
	res, m, err := vtcolor.Run(g.internal(), ids, g.N(), cfg)
	if err != nil {
		return nil, fmt.Errorf("awakemis: coloring: %w", err)
	}
	if verr := verify.CheckColoring(g.internal(), res.Color); verr != nil {
		return nil, fmt.Errorf("awakemis: coloring invalid: %w", verr)
	}
	return &ColoringResult{Color: res.Color, Metrics: fromSim(m)}, nil
}

// MatchingResult is the output of RunMatching.
type MatchingResult struct {
	// MatchedWith[v] is v's partner, or -1 if unmatched.
	MatchedWith []int
	// Metrics holds the run's complexity measures.
	Metrics Metrics
}

// RunMatching computes a maximal matching in the sleeping model via
// greedy processing of a random edge order (§7 extension). Each node is
// awake at most once per incident edge and stops as soon as it matches;
// the output is verified maximal before returning.
func RunMatching(g *Graph, opt Options) (*MatchingResult, error) {
	cfg, err := opt.simConfig()
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(opt.Seed ^ 0x3f7))
	perm := rng.Perm(g.M())
	ids := vtmatch.EdgeIDs{}
	for i, e := range g.internal().Edges() {
		ids[e] = perm[i] + 1
	}
	res, m, err := vtmatch.Run(g.internal(), ids, g.M(), cfg)
	if err != nil {
		return nil, fmt.Errorf("awakemis: matching: %w", err)
	}
	if verr := verify.CheckMatching(g.internal(), res.MatchedWith); verr != nil {
		return nil, fmt.Errorf("awakemis: matching invalid: %w", verr)
	}
	return &MatchingResult{MatchedWith: res.MatchedWith, Metrics: fromSim(m)}, nil
}

func permIDs(n int, seed int64) []int {
	perm := rand.New(rand.NewSource(seed ^ 0x1d5)).Perm(n)
	ids := make([]int, n)
	for v, p := range perm {
		ids[v] = p + 1
	}
	return ids
}

func bigIDs(n int, seed int64) []int64 {
	rng := rand.New(rand.NewSource(seed ^ 0x2e6))
	seen := make(map[int64]bool, n)
	ids := make([]int64, n)
	for v := range ids {
		for {
			id := rng.Int63n(1<<40) + 1
			if !seen[id] {
				seen[id] = true
				ids[v] = id
				break
			}
		}
	}
	return ids
}
