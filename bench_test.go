// Benchmarks regenerating the paper-reproduction experiments (one per
// table/figure in DESIGN.md §4). Beyond ns/op, each benchmark reports
// the complexity measures the paper is about as custom metrics:
// awake-max (worst-case awake complexity), awake-avg, and rounds.
//
// Run everything:
//
//	go test -bench=. -benchmem
package awakemis_test

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"awakemis"
	"awakemis/internal/core"
	"awakemis/internal/graph"
	"awakemis/internal/greedy"
	"awakemis/internal/ldt"
	"awakemis/internal/ldtmis"
	"awakemis/internal/rng"
	"awakemis/internal/sim"
	"awakemis/internal/vtree"
)

func benchRun(b *testing.B, algo awakemis.Algorithm, n int) {
	b.Helper()
	g := awakemis.GNP(n, 4/float64(n), int64(n))
	var last awakemis.Metrics
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := awakemis.RunMIS(g, algo, awakemis.Options{Seed: int64(i)})
		if err != nil {
			b.Fatal(err)
		}
		last = res.Metrics
	}
	b.ReportMetric(float64(last.MaxAwake), "awake-max")
	b.ReportMetric(last.AvgAwake, "awake-avg")
	b.ReportMetric(float64(last.Rounds), "rounds")
}

// BenchmarkAwakeMIS regenerates E1 (Theorem 13): worst-case awake
// complexity of Awake-MIS across the size sweep.
func BenchmarkAwakeMIS(b *testing.B) {
	for _, n := range []int{256, 1024, 4096} {
		b.Run(sizeName(n), func(b *testing.B) { benchRun(b, awakemis.AwakeMIS, n) })
	}
}

// BenchmarkAwakeMISRound regenerates E2 (Corollary 14).
func BenchmarkAwakeMISRound(b *testing.B) {
	for _, n := range []int{256, 1024} {
		b.Run(sizeName(n), func(b *testing.B) { benchRun(b, awakemis.AwakeMISRound, n) })
	}
}

// BenchmarkLuby is the E7 baseline: Θ(log n) awake complexity.
func BenchmarkLuby(b *testing.B) {
	for _, n := range []int{256, 1024, 4096} {
		b.Run(sizeName(n), func(b *testing.B) { benchRun(b, awakemis.Luby, n) })
	}
}

// BenchmarkNaiveGreedy is the E7/E3 baseline with O(I) awake.
func BenchmarkNaiveGreedy(b *testing.B) {
	for _, n := range []int{256, 1024} {
		b.Run(sizeName(n), func(b *testing.B) { benchRun(b, awakemis.NaiveGreedy, n) })
	}
}

// BenchmarkVTMIS regenerates E3 (Lemma 10): O(log I) awake.
func BenchmarkVTMIS(b *testing.B) {
	for _, n := range []int{256, 1024, 4096} {
		b.Run(sizeName(n), func(b *testing.B) { benchRun(b, awakemis.VTMIS, n) })
	}
}

// BenchmarkLDTMIS regenerates E4 (Lemma 11) on connected components.
func BenchmarkLDTMIS(b *testing.B) {
	for _, np := range []int{16, 64} {
		b.Run(sizeName(np), func(b *testing.B) {
			g := graph.Cycle(np)
			rng := rand.New(rand.NewSource(int64(np)))
			ids := make([]int64, np)
			seen := map[int64]bool{}
			for i := range ids {
				for {
					id := rng.Int63n(1<<40) + 1
					if !seen[id] {
						seen[id] = true
						ids[i] = id
						break
					}
				}
			}
			var last *sim.Metrics
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, m, err := ldtmis.Run(g, ids, np, ldtmis.VariantAwake,
					sim.Config{Seed: int64(i), N: 1 << 16})
				if err != nil {
					b.Fatal(err)
				}
				last = m
			}
			b.ReportMetric(float64(last.MaxAwake), "awake-max")
			b.ReportMetric(float64(last.Rounds), "rounds")
		})
	}
}

// BenchmarkResidualSparsity regenerates E5 (Lemma 2).
func BenchmarkResidualSparsity(b *testing.B) {
	n := 2048
	rng := rand.New(rand.NewSource(5))
	g := graph.GNP(n, 8/float64(n), rng)
	var last int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		order := rng.Perm(n)
		last = greedy.ResidualMaxDegree(g, order, n/16, n)
	}
	b.ReportMetric(float64(last), "residual-deg")
	b.ReportMetric(16*2*math.Log(float64(n)), "lemma2-bound")
}

// BenchmarkShattering regenerates E6 (Lemma 3).
func BenchmarkShattering(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	h := graph.RandomRegular(2048, 8, rng)
	var last int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		last = greedy.MaxShatteredComponent(greedy.Shatter(h, rng))
	}
	b.ReportMetric(float64(last), "max-component")
	b.ReportMetric(12*math.Log(2048), "lemma3-bound")
}

// BenchmarkLDTConstruct regenerates E9 (Lemma 16): both constructions.
func BenchmarkLDTConstruct(b *testing.B) {
	for _, det := range []bool{false, true} {
		name := "awake"
		if det {
			name = "round"
		}
		b.Run(name, func(b *testing.B) {
			np := 32
			g := graph.Cycle(np)
			var last *sim.Metrics
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				prog := func(ctx *sim.Ctx) {
					p := ldt.NewProc(ctx, 1, int64(1000+ctx.Node()), np)
					p.Hello()
					if det {
						p.ConstructRound(ldt.DefaultRoundPhases(np))
					} else {
						p.ConstructAwake(ldt.DefaultAwakePhases(np))
					}
				}
				m, err := sim.Run(g, prog, sim.Config{Seed: int64(i), N: 1 << 12})
				if err != nil {
					b.Fatal(err)
				}
				last = m
			}
			b.ReportMetric(float64(last.MaxAwake), "awake-max")
			b.ReportMetric(float64(last.Rounds), "rounds")
		})
	}
}

// BenchmarkColoring regenerates E11 (§7 extension): (Δ+1)-coloring in
// O(log n) awake rounds.
func BenchmarkColoring(b *testing.B) {
	for _, n := range []int{256, 1024} {
		b.Run(sizeName(n), func(b *testing.B) {
			g := awakemis.GNP(n, 4/float64(n), int64(n))
			var last awakemis.Metrics
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := awakemis.RunTask(g, awakemis.TaskColoring, awakemis.Options{Seed: int64(i)})
				if err != nil {
					b.Fatal(err)
				}
				last = res.Metrics
			}
			b.ReportMetric(float64(last.MaxAwake), "awake-max")
			b.ReportMetric(float64(last.Rounds), "rounds")
		})
	}
}

// BenchmarkAblationNP regenerates the NP axis of E10: phase length vs
// awake complexity.
func BenchmarkAblationNP(b *testing.B) {
	for _, np := range []int{16, 48} {
		b.Run("np="+itoa(np), func(b *testing.B) {
			g := awakemis.GNP(512, 4.0/512, 5)
			var last awakemis.Metrics
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := awakemis.RunMIS(g, awakemis.AwakeMIS, awakemis.Options{
					Seed:   int64(i),
					Params: core.Params{C1: 4, DeltaPrime: 8, NP: np},
				})
				if err != nil {
					b.Fatal(err)
				}
				last = res.Metrics
			}
			b.ReportMetric(float64(last.MaxAwake), "awake-max")
			b.ReportMetric(float64(last.Rounds), "rounds")
		})
	}
}

// BenchmarkMatching regenerates E12 (§7 extension): maximal matching
// with early-exit awake complexity.
func BenchmarkMatching(b *testing.B) {
	for _, n := range []int{256, 1024} {
		b.Run(sizeName(n), func(b *testing.B) {
			g := awakemis.GNP(n, 4/float64(n), int64(n))
			var last awakemis.Metrics
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := awakemis.RunTask(g, awakemis.TaskMatching, awakemis.Options{Seed: int64(i)})
				if err != nil {
					b.Fatal(err)
				}
				last = res.Metrics
			}
			b.ReportMetric(float64(last.MaxAwake), "awake-max")
			b.ReportMetric(last.AvgAwake, "awake-avg")
			b.ReportMetric(float64(last.Rounds), "rounds")
		})
	}
}

// BenchmarkVectorizedTrials measures the tentpole: R replications of
// one study cell (same graph, paired seeds) as a per-trial scalar loop
// versus one merged vectorized pass. The scalar arm mirrors the scalar
// study path exactly — one Run per trial, graph rebuilt each time —
// so ns/op ratios between the scalar and vector arms are the study
// throughput gain. CI's bench job records both arms in
// BENCH_vector.json and smoke-gates the ratio at R = 8.
func BenchmarkVectorizedTrials(b *testing.B) {
	for _, n := range []int{4096, 1 << 20} {
		for _, r := range []int{2, 8, 32} {
			spec := awakemis.Spec{
				Task:    "luby",
				Graph:   awakemis.GraphSpec{Family: "gnp", N: n, Seed: 1},
				Options: awakemis.Options{Seed: 1},
			}
			trials := make([]awakemis.Trial, r)
			for i := range trials {
				trials[i] = awakemis.Trial{Seed: int64(i + 1)}
			}
			out := make([]*awakemis.Report, r)
			name := sizeName(n) + "/r=" + itoa(r)
			b.Run(name+"/scalar", func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					for j := range trials {
						sp := spec
						sp.Options.Seed = trials[j].Seed
						rep, err := awakemis.Run(context.Background(), sp)
						if err != nil {
							b.Fatal(err)
						}
						out[j] = rep
					}
				}
			})
			b.Run(name+"/vector", func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := awakemis.Run(context.Background(), spec,
						awakemis.WithVectorizedTrials(trials, out)); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkCommSet measures the F1/F2 machinery itself.
func BenchmarkCommSet(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		k := i%4095 + 1
		_ = vtree.CommSet(k, 4096)
	}
}

// BenchmarkEngines compares the two engines across every registered
// task. Results are bit-identical across engines (the cross-engine
// tests assert it); only wall-clock differs — the stepped engine keeps
// node state inline instead of paying per-node goroutines and
// per-round channel handshakes. Since PR 4 every task, including
// awake-mis and ldt-mis, runs the stepped engine natively (no
// goroutine adapter on the default path). The task-grid measurements
// are recorded in BENCH_tasks.json (the PR 1 Luby size sweep stays in
// BENCH_engine.json):
//
//	go test -run xxx -bench BenchmarkEngines -benchtime 2x
func BenchmarkEngines(b *testing.B) {
	const n = 1024
	g := awakemis.GNP(n, 4/float64(n), int64(n))
	for _, task := range awakemis.TaskNames() {
		for _, eng := range awakemis.Engines() {
			b.Run(task+"/"+string(eng), func(b *testing.B) {
				var last awakemis.Metrics
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					rep, err := awakemis.RunTask(g, task, awakemis.Options{Seed: int64(i), Engine: eng})
					if err != nil {
						b.Fatal(err)
					}
					last = rep.Metrics
				}
				b.ReportMetric(float64(last.MaxAwake), "awake-max")
				b.ReportMetric(float64(last.Rounds), "rounds")
			})
		}
	}
}

// BenchmarkEngineAdapter isolates the tentpole gain of PR 4: the two
// flagship tasks executed on the stepped engine natively (step form)
// versus through the goroutine adapter (the pre-PR 4 default path).
func BenchmarkEngineAdapter(b *testing.B) {
	const n = 1024
	g := graph.GNP(n, 4/float64(n), rand.New(rand.NewSource(int64(n))))
	params := core.Params{}.WithDefaults(n)
	cfg := sim.Config{Seed: 1, Bandwidth: sim.DefaultBandwidth(n)}
	sched := core.NewSchedule(n, params, cfg.Bandwidth)
	np := 1
	for _, c := range g.Components() {
		if len(c) > np {
			np = len(c)
		}
	}
	ids := rng.IDs40(n, 7)
	ldtCfg := sim.Config{Seed: 1, N: 1 << 16, Bandwidth: sim.DefaultBandwidth(1 << 40)}
	progs := map[string]struct {
		cfg sim.Config
		mk  func() sim.NodeProgram
	}{
		"awake-mis/native": {cfg, func() sim.NodeProgram {
			res := &core.Result{InMIS: make([]bool, n), Batch: make([]int, n)}
			return core.StepProgram(res, sched, params, n)
		}},
		"awake-mis/adapter": {cfg, func() sim.NodeProgram {
			res := &core.Result{InMIS: make([]bool, n), Batch: make([]int, n)}
			return core.Program(res, sched, params, n)
		}},
		"ldt-mis/native": {ldtCfg, func() sim.NodeProgram {
			res := &ldtmis.Result{InMIS: make([]bool, n), NewID: make([]int, n)}
			return ldtmis.StepProgram(res, ids, np, ldtmis.VariantAwake)
		}},
		"ldt-mis/adapter": {ldtCfg, func() sim.NodeProgram {
			res := &ldtmis.Result{InMIS: make([]bool, n), NewID: make([]int, n)}
			return ldtmis.Program(res, ids, np, ldtmis.VariantAwake)
		}},
	}
	for name, p := range progs {
		b.Run(name, func(b *testing.B) {
			eng := sim.NewSteppedEngine(0)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c := p.cfg
				c.Seed = int64(i)
				if _, err := eng.Run(context.Background(), g, p.mk(), c); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSimulatorFlood measures raw engine throughput (messages
// through the lock-step barriers).
func BenchmarkSimulatorFlood(b *testing.B) {
	g := graph.Grid(16, 16)
	prog := func(ctx *sim.Ctx) {
		for i := 0; i < 10; i++ {
			ctx.Broadcast(floodMsg{})
			ctx.Deliver()
			if i < 9 {
				ctx.Advance()
			}
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(g, prog, sim.Config{Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

type floodMsg struct{}

func (floodMsg) Bits() int { return 1 }

func sizeName(n int) string {
	switch {
	case n >= 1024 && n%1024 == 0:
		return "n=" + itoa(n/1024) + "k"
	default:
		return "n=" + itoa(n)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
