package awakemis

import (
	"context"

	"awakemis/internal/naive"
	"awakemis/internal/sim"
)

// Registration shim for internal/naive: the O(I)-awake sequential
// greedy baseline (§5.3).
func init() {
	registerTask(Task{
		Name:     string(NaiveGreedy),
		Kind:     "mis",
		Summary:  "naive distributed sequential greedy MIS: O(I) awake (§5.3)",
		IDScheme: `random permutation of [1, n], stream "perm-ids"`,
		rank:     3,
		run: func(ctx context.Context, g *Graph, opt Options, cfg sim.Config) (Output, *sim.Metrics, error) {
			n := g.N()
			res, m, err := naive.RunContext(ctx, g.internal(), permIDs(n, opt.Seed), n, cfg)
			if err != nil {
				return Output{}, m, err
			}
			return Output{InMIS: res.InMIS}, m, nil
		},
		verify: verifyMIS,
	})
}
