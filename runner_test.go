package awakemis_test

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"awakemis"
)

// batchSpecs covers every task, mixed explicit and derived seeds, and
// several graph families.
func batchSpecs() []awakemis.Spec {
	return []awakemis.Spec{
		{Name: "headline", Task: "awake-mis", Graph: awakemis.GraphSpec{Family: "gnp", N: 64, P: 0.06}, Options: awakemis.Options{Seed: 3, Strict: true}},
		{Task: "awake-mis-round", Graph: awakemis.GraphSpec{Family: "gnp", N: 48, P: 0.08, Seed: 5}},
		{Name: "baseline", Task: "luby", Graph: awakemis.GraphSpec{Family: "cycle", N: 51}},
		{Task: "naive-greedy", Graph: awakemis.GraphSpec{Family: "grid", N: 49}, Options: awakemis.Options{Seed: 8}},
		{Task: "vt-mis", Graph: awakemis.GraphSpec{Family: "tree", N: 40}},
		{Task: "ldt-mis", Graph: awakemis.GraphSpec{Family: "gnp", N: 36, P: 0.1}},
		{Task: "coloring", Graph: awakemis.GraphSpec{Family: "geometric", N: 50, Radius: 0.2}},
		{Task: "matching", Graph: awakemis.GraphSpec{Family: "gnp", N: 55, P: 0.07}, Options: awakemis.Options{Seed: 2, Engine: awakemis.EngineLockstep}},
	}
}

// canon strips the one nondeterministic report field (wall time).
func canon(rep *awakemis.Report) awakemis.Report {
	c := *rep
	c.WallMS = 0
	return c
}

func TestRunBatchBitIdenticalToSequential(t *testing.T) {
	specs := batchSpecs()
	const rootSeed = 42

	// Reference: each resolved spec run sequentially, one at a time.
	seq := make([]*awakemis.Report, len(specs))
	ref := &awakemis.Runner{Seed: rootSeed}
	for i, spec := range specs {
		rep, err := awakemis.Run(context.Background(), ref.Resolve(spec, i))
		if err != nil {
			t.Fatalf("sequential spec %d: %v", i, err)
		}
		seq[i] = rep
	}

	for _, parallel := range []int{1, 2, 8} {
		r := &awakemis.Runner{Parallel: parallel, Seed: rootSeed}
		reports, err := r.RunBatch(context.Background(), specs)
		if err != nil {
			t.Fatalf("parallel=%d: %v", parallel, err)
		}
		for i := range specs {
			if reports[i] == nil {
				t.Fatalf("parallel=%d: report %d missing", parallel, i)
			}
			if got, want := canon(reports[i]), canon(seq[i]); !reflect.DeepEqual(got, want) {
				t.Errorf("parallel=%d spec %d (%s): batch report diverges from sequential:\n%+v\nvs\n%+v",
					parallel, i, specs[i].Task, got, want)
			}
		}
	}
}

func TestRunBatchSharedWorkerBudget(t *testing.T) {
	// A tiny explicit budget must still produce the same reports.
	specs := batchSpecs()[:4]
	a := &awakemis.Runner{Parallel: 4, Workers: 1, Seed: 1}
	b := &awakemis.Runner{Parallel: 1, Workers: 16, Seed: 1}
	ra, err := a.RunBatch(context.Background(), specs)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := b.RunBatch(context.Background(), specs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range specs {
		if !reflect.DeepEqual(canon(ra[i]), canon(rb[i])) {
			t.Errorf("spec %d: worker budget changed the report", i)
		}
	}
}

func TestRunBatchProgress(t *testing.T) {
	specs := batchSpecs()[:5]
	var calls []awakemis.Progress
	r := &awakemis.Runner{
		Parallel: 3, Seed: 7,
		OnProgress: func(p awakemis.Progress) { calls = append(calls, p) },
	}
	if _, err := r.RunBatch(context.Background(), specs); err != nil {
		t.Fatal(err)
	}
	if len(calls) != len(specs) {
		t.Fatalf("%d progress callbacks for %d specs", len(calls), len(specs))
	}
	seenIdx := map[int]bool{}
	for i, p := range calls {
		if p.Done != i+1 || p.Total != len(specs) {
			t.Errorf("callback %d: Done/Total = %d/%d", i, p.Done, p.Total)
		}
		if p.Err != nil || p.Report == nil {
			t.Errorf("callback %d: unexpected failure %v", i, p.Err)
		}
		seenIdx[p.Index] = true
	}
	if len(seenIdx) != len(specs) {
		t.Error("progress callbacks skipped a spec index")
	}
}

func TestRunBatchIsolatesFailures(t *testing.T) {
	specs := []awakemis.Spec{
		{Task: "luby", Graph: awakemis.GraphSpec{Family: "cycle", N: 30}, Options: awakemis.Options{Seed: 1}},
		{Task: "no-such-task", Graph: awakemis.GraphSpec{Family: "cycle", N: 30}, Options: awakemis.Options{Seed: 1}},
		{Task: "vt-mis", Graph: awakemis.GraphSpec{Family: "no-such-family", N: 30}, Options: awakemis.Options{Seed: 1}},
		{Task: "coloring", Graph: awakemis.GraphSpec{Family: "cycle", N: 30}, Options: awakemis.Options{Seed: 1}},
	}
	r := &awakemis.Runner{Parallel: 2}
	reports, err := r.RunBatch(context.Background(), specs)
	if err == nil || !strings.Contains(err.Error(), "2 of 4 specs failed") {
		t.Fatalf("err = %v, want a 2-of-4 summary", err)
	}
	if reports[0] == nil || reports[3] == nil {
		t.Error("healthy specs should still report")
	}
	if reports[1] != nil || reports[2] != nil {
		t.Error("failed specs should have nil reports")
	}
}

func TestRunBatchCancellation(t *testing.T) {
	// Many slow specs, cancelled almost immediately: RunBatch must
	// return ctx.Err() promptly rather than finish the batch.
	specs := make([]awakemis.Spec, 16)
	for i := range specs {
		specs[i] = awakemis.Spec{
			Task:    "naive-greedy",
			Graph:   awakemis.GraphSpec{Family: "cycle", N: 3000},
			Options: awakemis.Options{Seed: int64(i + 1)},
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	var fired atomic.Bool
	go func() {
		time.Sleep(5 * time.Millisecond)
		fired.Store(true)
		cancel()
	}()
	start := time.Now()
	_, err := (&awakemis.Runner{Parallel: 2}).RunBatch(ctx, specs)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if !fired.Load() {
		t.Fatal("batch finished before cancellation fired; enlarge the workload")
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("cancellation took %v", elapsed)
	}
}
