// BenchmarkObserverOverhead prices the round-telemetry hook: the same
// Luby run with Options.Observer nil ("off") versus attached ("on").
// CI's bench job compares the two ns/op against the <=5% overhead
// budget — the hook runs once per executed round, never per node or
// per message, so the gap must vanish as n grows.
//
//	go test -bench 'BenchmarkObserverOverhead' -benchmem
package awakemis_test

import (
	"testing"

	"awakemis"
)

// countingObserver is the cheapest possible consumer: the benchmark
// measures the engines' cost of producing RoundStats, not any sink.
type countingObserver struct{ rounds int64 }

func (o *countingObserver) ObserveRound(awakemis.RoundStat) { o.rounds++ }

func BenchmarkObserverOverhead(b *testing.B) {
	for _, sz := range []struct {
		name string
		n    int
	}{{"n=4k", 4096}, {"n=1M", 1 << 20}} {
		b.Run(sz.name, func(b *testing.B) {
			n := sz.n
			g := awakemis.GNP(n, 4/float64(n), int64(n))
			run := func(b *testing.B, obs awakemis.RoundObserver) {
				var last awakemis.Metrics
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					res, err := awakemis.RunMIS(g, awakemis.Luby,
						awakemis.Options{Seed: int64(i), Observer: obs})
					if err != nil {
						b.Fatal(err)
					}
					last = res.Metrics
				}
				b.ReportMetric(float64(last.Rounds), "rounds")
			}
			b.Run("off", func(b *testing.B) { run(b, nil) })
			b.Run("on", func(b *testing.B) {
				obs := &countingObserver{}
				run(b, obs)
				if obs.rounds == 0 {
					b.Fatal("observer saw no rounds")
				}
			})
		})
	}
}
