// Command experiments regenerates the paper-reproduction tables
// recorded in EXPERIMENTS.md: one experiment per theorem, lemma, and
// figure (see DESIGN.md §4 for the index).
//
// Usage:
//
//	experiments                # run the whole suite
//	experiments -run e1,e7     # selected experiments
//	experiments -quick         # smaller sweeps
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"time"

	"awakemis/internal/expt"
	"awakemis/internal/sim"
)

func main() {
	var (
		run     = flag.String("run", "", "comma-separated experiment ids (default: all)")
		quick   = flag.Bool("quick", false, "smaller sweeps")
		seed    = flag.Int64("seed", 1, "random seed")
		trials  = flag.Int("trials", 0, "trials per configuration (0 = default)")
		sizes   = flag.String("sizes", "", "comma-separated n sweep (default: 64,256,1024,4096)")
		engine  = flag.String("engine", "stepped", "simulation engine: stepped|lockstep (results are identical)")
		workers = flag.Int("workers", 0, "stepped-engine worker pool size (0 = one per CPU)")
	)
	flag.Parse()

	if _, err := sim.EngineByName(*engine, *workers); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	// Ctrl-C cancels the suite: every simulation aborts at its next
	// round boundary instead of running to completion.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	opts := expt.Options{
		Seed: *seed, Quick: *quick, Trials: *trials,
		Engine: *engine, Workers: *workers, Context: ctx,
	}
	if *sizes != "" {
		for _, s := range strings.Split(*sizes, ",") {
			var n int
			if _, err := fmt.Sscanf(strings.TrimSpace(s), "%d", &n); err != nil || n < 2 {
				fmt.Fprintf(os.Stderr, "bad size %q\n", s)
				os.Exit(1)
			}
			opts.Sizes = append(opts.Sizes, n)
		}
	}

	var selected []expt.Experiment
	if *run == "" {
		selected = expt.All()
	} else {
		for _, id := range strings.Split(*run, ",") {
			e, ok := expt.ByID(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "unknown experiment %q; available:\n", id)
				for _, e := range expt.All() {
					fmt.Fprintf(os.Stderr, "  %-3s %s\n", e.ID, e.Title)
				}
				os.Exit(1)
			}
			selected = append(selected, e)
		}
	}

	for _, e := range selected {
		fmt.Printf("=== %s: %s ===\n", strings.ToUpper(e.ID), e.Title)
		start := time.Now()
		if err := e.Run(opts, os.Stdout); err != nil {
			if errors.Is(err, context.Canceled) {
				fmt.Fprintln(os.Stderr, "interrupted")
				os.Exit(130)
			}
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Printf("(%.1fs)\n\n", time.Since(start).Seconds())
	}
}
