// Command awakemisd serves the task registry as a job-queue service:
// an HTTP JSON API that accepts Specs, deduplicates identical
// submissions through a content-addressed report cache (in-flight
// duplicates coalesce onto one simulation), executes on a bounded
// worker pool, and serves the resulting Reports.
//
// Usage:
//
//	awakemisd -addr :7600 -workers 4 -queue 256 -cache-mb 64
//
// With -store-dir the in-memory cache is backed by a persistent
// content-addressed store that survives restarts; with -peers the
// daemon becomes a cluster front that runs no simulations itself and
// instead shards each flight to the worker daemon owning its
// canonical spec hash:
//
//	awakemisd -addr :7700 -store-dir /var/lib/awakemis/w1           # worker
//	awakemisd -addr :7602 -peers 127.0.0.1:7700,127.0.0.1:7701      # front
//
// Endpoints (see the README's "Running as a service", "Cluster mode &
// persistence", and "Observability" sections):
//
//	POST   /v1/jobs         submit a Spec; 200 on cache hit, else 202
//	GET    /v1/jobs/{id}    job status, live progress, and (when done) its Report
//	GET    /v1/jobs/{id}/events  SSE stream of the job's states until terminal
//	DELETE /v1/jobs/{id}    cancel one submission (duplicates unaffected)
//	POST   /v1/studies      submit a StudySpec grid; always 202
//	GET    /v1/studies      list studies, newest first, with live progress
//	GET    /v1/studies/{id} study status, per-cell progress, and (when done) its artifact
//	GET    /v1/studies/{id}/events  SSE stream of the study's progress until terminal
//	DELETE /v1/studies/{id} cancel a study and its unfinished sub-runs
//	GET    /v1/tasks        the task registry
//	GET    /v1/stats        cache/store/queue/job/study/peer/engine counters
//	GET    /v1/cluster/stats  fleet-wide per-peer stats + merged total (front only)
//	GET    /v1/dashboard    embedded live dashboard (self-contained HTML)
//	GET    /v1/healthz      200 serving, 503 draining; body carries build info
//	GET    /metrics         Prometheus text exposition (disable: -metrics=false)
//
// All logging is structured (log/slog) on stderr; -log-format picks
// text or JSON records. Every request and job record carries the
// X-Awakemis-Trace-Id it arrived with (minted when absent), so one
// grep follows a submission across a whole cluster. -pprof exposes
// net/http/pprof on a separate listener for live profiling.
//
// SIGINT/SIGTERM drains gracefully: new submissions get 503, queued
// and running simulations finish (up to -drain-timeout, then they are
// canceled at the next round boundary), and the process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"awakemis/internal/buildinfo"
	"awakemis/internal/cluster"
	"awakemis/internal/service"
	"awakemis/internal/store"
)

func main() {
	var (
		addr        = flag.String("addr", ":7600", "listen address")
		workers     = flag.Int("workers", 0, "simulations in flight at once (0 = one per CPU, capped at 4)")
		simWorkers  = flag.Int("sim-workers", 0, "total stepped-engine worker budget divided among the slots (0 = one per CPU)")
		queue       = flag.Int("queue", 0, "pending-simulation queue bound (0 = 256)")
		cacheMB     = flag.Int64("cache-mb", 0, "report cache budget in MiB (0 = 64, negative disables)")
		history     = flag.Int("history", 0, "finished jobs kept queryable (0 = 4096)")
		drain       = flag.Duration("drain-timeout", 30*time.Second, "how long shutdown lets in-flight simulations finish")
		storeDir    = flag.String("store-dir", "", "persistent report store directory (empty = memory only)")
		storeBudget = flag.Int64("store-budget", 0, "store byte budget in MiB (0 = 1024, negative unlimited)")
		peers       = flag.String("peers", "", "comma-separated worker daemon addresses; makes this daemon a cluster front")
		metrics     = flag.Bool("metrics", true, "serve Prometheus text metrics at GET /metrics")
		logFormat   = flag.String("log-format", "text", "structured log format: text|json")
		pprofAddr   = flag.String("pprof", "", "serve net/http/pprof on this separate address (empty = off)")
		version     = flag.Bool("version", false, "print build info and exit")
	)
	flag.Parse()

	if *version {
		fmt.Println(buildinfo.Get().String())
		return
	}

	var handler slog.Handler
	switch *logFormat {
	case "text":
		handler = slog.NewTextHandler(os.Stderr, nil)
	case "json":
		handler = slog.NewJSONHandler(os.Stderr, nil)
	default:
		fmt.Fprintf(os.Stderr, "error: unknown -log-format %q (want text|json)\n", *logFormat)
		os.Exit(1)
	}
	logger := slog.New(handler)

	cfg := service.Config{
		Workers:    *workers,
		SimWorkers: *simWorkers,
		QueueSize:  *queue,
		CacheBytes: *cacheMB << 20,
		JobHistory: *history,
		Metrics:    *metrics,
		Logger:     logger,
	}

	if *storeDir != "" {
		budget := *storeBudget << 20
		if *storeBudget < 0 {
			budget = -1
		}
		st, err := store.Open(*storeDir, budget)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error: opening store:", err)
			os.Exit(1)
		}
		ss := st.Stats()
		logger.Info("store recovered", "dir", st.Dir(),
			"entries", ss.Entries, "bytes", ss.Bytes, "budget", ss.Budget)
		cfg.Store = st
	}

	var front *cluster.Front
	if *peers != "" {
		var err error
		front, err = cluster.New(strings.Split(*peers, ","), cluster.Options{Logger: logger})
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		front.Start()
		cfg.Forward = front
		logger.Info("cluster front", "peers", len(front.PeerHealth()))
	}

	if *pprofAddr != "" {
		// pprof gets its own mux on its own listener: the profiling
		// surface never shares a port with the public API.
		pm := http.NewServeMux()
		pm.HandleFunc("/debug/pprof/", pprof.Index)
		pm.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pm.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pm.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pm.HandleFunc("/debug/pprof/trace", pprof.Trace)
		pln, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error: pprof listen:", err)
			os.Exit(1)
		}
		logger.Info("pprof listening", "addr", pln.Addr().String())
		go func() {
			if err := http.Serve(pln, pm); err != nil {
				logger.Error("pprof serve", "error", err.Error())
			}
		}()
	}

	srv := service.New(cfg)
	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	bi := buildinfo.Get()
	logger.Info("awakemisd listening", "addr", ln.Addr().String(),
		"version", bi.Version, "revision", bi.Revision, "go", bi.GoVersion)

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		logger.Info("draining", "signal", sig.String(), "timeout", drain.String())
	case err := <-errc:
		logger.Error("serve", "error", err.Error())
		os.Exit(1)
	}

	// Drain the job queue first — new submissions already get 503, but
	// status polls keep working so waiting clients see their jobs
	// finish — then stop forwarding, then close the HTTP listener. The
	// store needs no flush: every write is already durable.
	drainCtx, cancelDrain := context.WithTimeout(context.Background(), *drain)
	defer cancelDrain()
	switch err := srv.Shutdown(drainCtx); {
	case errors.Is(err, context.DeadlineExceeded):
		logger.Warn("drain timed out; in-flight simulations were canceled")
	case err != nil:
		logger.Warn("drain", "error", err.Error())
	}
	if front != nil {
		front.Close()
	}
	if cfg.Store != nil {
		cfg.Store.Close()
	}
	httpCtx, cancelHTTP := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancelHTTP()
	if err := httpSrv.Shutdown(httpCtx); err != nil {
		logger.Warn("http shutdown", "error", err.Error())
	}
	logger.Info("awakemisd stopped")
}
