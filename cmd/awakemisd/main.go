// Command awakemisd serves the task registry as a job-queue service:
// an HTTP JSON API that accepts Specs, deduplicates identical
// submissions through a content-addressed report cache (in-flight
// duplicates coalesce onto one simulation), executes on a bounded
// worker pool, and serves the resulting Reports.
//
// Usage:
//
//	awakemisd -addr :7600 -workers 4 -queue 256 -cache-mb 64
//
// Endpoints (see the README's "Running as a service" and "Studies"
// sections):
//
//	POST   /v1/jobs         submit a Spec; 200 on cache hit, else 202
//	GET    /v1/jobs/{id}    job status and, when done, its Report
//	DELETE /v1/jobs/{id}    cancel one submission (duplicates unaffected)
//	POST   /v1/studies      submit a StudySpec grid; always 202
//	GET    /v1/studies/{id} study progress and, when done, its artifact
//	DELETE /v1/studies/{id} cancel a study and its unfinished sub-runs
//	GET    /v1/tasks        the task registry
//	GET    /v1/stats        cache/queue/job/study counters
//	GET    /v1/healthz      200 serving, 503 draining
//
// SIGINT/SIGTERM drains gracefully: new submissions get 503, queued
// and running simulations finish (up to -drain-timeout, then they are
// canceled at the next round boundary), and the process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"awakemis/internal/service"
)

func main() {
	var (
		addr       = flag.String("addr", ":7600", "listen address")
		workers    = flag.Int("workers", 0, "simulations in flight at once (0 = one per CPU, capped at 4)")
		simWorkers = flag.Int("sim-workers", 0, "total stepped-engine worker budget divided among the slots (0 = one per CPU)")
		queue      = flag.Int("queue", 0, "pending-simulation queue bound (0 = 256)")
		cacheMB    = flag.Int64("cache-mb", 0, "report cache budget in MiB (0 = 64, negative disables)")
		history    = flag.Int("history", 0, "finished jobs kept queryable (0 = 4096)")
		drain      = flag.Duration("drain-timeout", 30*time.Second, "how long shutdown lets in-flight simulations finish")
	)
	flag.Parse()

	srv := service.New(service.Config{
		Workers:    *workers,
		SimWorkers: *simWorkers,
		QueueSize:  *queue,
		CacheBytes: *cacheMB << 20,
		JobHistory: *history,
	})
	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	log.Printf("awakemisd listening on %s", ln.Addr())

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		log.Printf("received %s, draining (timeout %s)", sig, *drain)
	case err := <-errc:
		log.Fatalf("serve: %v", err)
	}

	// Drain the job queue first — new submissions already get 503, but
	// status polls keep working so waiting clients see their jobs
	// finish — then close the HTTP listener.
	drainCtx, cancelDrain := context.WithTimeout(context.Background(), *drain)
	defer cancelDrain()
	switch err := srv.Shutdown(drainCtx); {
	case errors.Is(err, context.DeadlineExceeded):
		log.Printf("drain timed out; in-flight simulations were canceled")
	case err != nil:
		log.Printf("drain: %v", err)
	}
	httpCtx, cancelHTTP := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancelHTTP()
	if err := httpSrv.Shutdown(httpCtx); err != nil {
		log.Printf("http shutdown: %v", err)
	}
	log.Printf("awakemisd stopped")
}
