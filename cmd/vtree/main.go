// Command vtree renders the virtual binary trees of §5.1 and their
// communication sets — the machinery behind Figures 1 and 2 — for any
// ID bound i.
//
// Usage:
//
//	vtree -i 6        # reproduces the paper's figures
//	vtree -i 6 -k 3   # the wake schedule of ID 3
package main

import (
	"flag"
	"fmt"
	"strings"

	"awakemis/internal/vtree"
)

func main() {
	var (
		i = flag.Int("i", 6, "ID bound (the tree covers [1,i])")
		k = flag.Int("k", 0, "show the communication set of this ID (0 = all)")
	)
	flag.Parse()

	tr := vtree.Build(*i)
	fmt.Printf("B([1,%d]): depth %d, %d nodes\n", *i, vtree.Depth(*i), vtree.Size(*i))
	printLevels(tr.BLabel)
	fmt.Printf("\nB*([1,%d]) = g(B), g(x) = ⌊x/2⌋+1:\n", *i)
	printLevels(tr.StarLabel)
	fmt.Println()

	ks := []int{}
	if *k > 0 {
		ks = append(ks, *k)
	} else {
		for id := 1; id <= *i; id++ {
			ks = append(ks, id)
		}
	}
	for _, id := range ks {
		fmt.Printf("S_%d([1,%d]) = %v    awake rounds: %v\n",
			id, *i, vtree.CommSet(id, *i), vtree.AwakeRounds(id, *i))
	}
}

// printLevels prints a heap-ordered tree one level per line, centered.
func printLevels(labels []int) {
	depth := 0
	for (1 << (depth + 1)) <= len(labels)+1 {
		depth++
	}
	width := 1 << depth * 4
	idx := 0
	for level := 0; idx < len(labels); level++ {
		count := 1 << level
		cell := width / count
		var b strings.Builder
		for j := 0; j < count && idx < len(labels); j++ {
			s := fmt.Sprintf("%d", labels[idx])
			pad := (cell - len(s)) / 2
			b.WriteString(strings.Repeat(" ", pad))
			b.WriteString(s)
			b.WriteString(strings.Repeat(" ", cell-pad-len(s)))
			idx++
		}
		fmt.Println(strings.TrimRight(b.String(), " "))
	}
}
