// Command awakemis runs a distributed MIS algorithm on a generated
// graph in the SLEEPING-CONGEST simulator and reports the complexity
// measures of the run.
//
// Usage:
//
//	awakemis -algo awake-mis -graph gnp -n 1024 -p 0.004 -seed 1
//	awakemis -algo luby -graph cycle -n 4096
//	awakemis -algo luby -n 1000000 -engine stepped -workers 8
//	awakemis -list
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"awakemis"
)

func main() {
	var (
		algo     = flag.String("algo", "awake-mis", "algorithm: "+algoList())
		family   = flag.String("graph", "gnp", "graph family: gnp|cycle|path|complete|star|grid|tree|regular|geometric|powerlaw")
		input    = flag.String("input", "", "read the graph from an edge-list file instead of generating")
		n        = flag.Int("n", 1024, "number of nodes")
		p        = flag.Float64("p", 0, "edge probability for gnp (0 = 4/n)")
		d        = flag.Int("d", 4, "degree for regular / attachments for powerlaw")
		r        = flag.Float64("r", 0.1, "radius for geometric")
		seed     = flag.Int64("seed", 1, "random seed")
		engine   = flag.String("engine", "stepped", "simulation engine: stepped|lockstep (results are identical)")
		workers  = flag.Int("workers", 0, "stepped-engine worker pool size (0 = one per CPU)")
		strict   = flag.Bool("strict", true, "enforce the CONGEST bandwidth bound")
		timeline = flag.Int("timeline", 0, "show an awake timeline of the k busiest nodes")
		list     = flag.Bool("list", false, "list algorithms and exit")
	)
	flag.Parse()

	if *list {
		for _, a := range awakemis.Algorithms() {
			fmt.Println(a)
		}
		return
	}

	var g *awakemis.Graph
	var err error
	if *input != "" {
		f, ferr := os.Open(*input)
		if ferr != nil {
			fmt.Fprintln(os.Stderr, "error:", ferr)
			os.Exit(1)
		}
		g, err = awakemis.ReadGraph(f)
		f.Close()
	} else {
		g, err = awakemis.Generate(*family, awakemis.GenOptions{N: *n, P: *p, Degree: *d, Radius: *r, Seed: *seed})
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	res, err := awakemis.Run(g, awakemis.Algorithm(*algo), awakemis.Options{
		Seed: *seed, Strict: *strict, Trace: *timeline > 0,
		Engine: awakemis.Engine(*engine), Workers: *workers,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	misSize := 0
	for _, in := range res.InMIS {
		if in {
			misSize++
		}
	}
	m := res.Metrics
	fmt.Printf("graph            %v\n", g)
	fmt.Printf("algorithm        %s\n", *algo)
	fmt.Printf("MIS size         %d\n", misSize)
	fmt.Printf("max awake        %d    <- worst-case awake complexity\n", m.MaxAwake)
	fmt.Printf("avg awake        %.2f\n", m.AvgAwake)
	fmt.Printf("rounds           %d    (executed: %d; the rest everyone slept through)\n", m.Rounds, m.ExecutedRounds)
	fmt.Printf("messages         %d    (%d bits, max %d bits/message)\n", m.MessagesSent, m.BitsSent, m.MaxMessageBits)
	if *timeline > 0 {
		fmt.Println()
		fmt.Println(res.TraceSummary())
		fmt.Printf("awake timeline of the %d busiest nodes:\n", *timeline)
		fmt.Print(res.Timeline(*timeline, 100))
	}
}

func algoList() string {
	names := make([]string, 0, len(awakemis.Algorithms()))
	for _, a := range awakemis.Algorithms() {
		names = append(names, string(a))
	}
	return strings.Join(names, "|")
}
