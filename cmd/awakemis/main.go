// Command awakemis runs any registered task — the paper's MIS
// algorithms, (Δ+1)-coloring, maximal matching — on a generated graph
// in the SLEEPING-CONGEST simulator and reports the complexity
// measures of the run, as text or as a machine-readable JSON Report.
//
// Usage:
//
//	awakemis -algo awake-mis -graph gnp -n 1024 -p 0.004 -seed 1
//	awakemis -algo coloring -json
//	awakemis -algo luby -n 1000000 -engine stepped -workers 8
//	awakemis -batch specs.json -parallel 4 > reports.json
//	awakemis -batch specs.json -server http://127.0.0.1:7600
//	awakemis -study study.json > result.json
//	awakemis -study study.json -server http://127.0.0.1:7600
//	awakemis -study study.json -server http://127.0.0.1:7600 -progress
//	awakemis -study study.json -csv > cells-and-fits.csv
//	awakemis -list
//
// The -batch file is a JSON array of specs, each {name, task, graph,
// options}; see the Spec type. Batch output is a JSON array of
// Reports in spec order; progress goes to stderr. Ctrl-C cancels
// in-flight simulations at their next round boundary.
//
// The -study file is one StudySpec: a declarative parameter-sweep
// grid (tasks × families × n-sweep × engines × trials) that expands
// deterministically, aggregates each cell, and fits every metric's
// growth over the n-sweep. Output is the StudyResult artifact as JSON
// (or, with -csv, the cells and fits tables as CSV). The artifact is
// byte-identical at every -parallel/-workers setting and across local
// and -server execution.
//
// With -server, the work is submitted to a running awakemisd daemon
// instead of executing locally: specs are resolved with the same
// per-spec seed derivation the local Runner uses, so reports carry
// the same results a local run produces (the daemon canonicalizes
// specs, so the workers echo field and traces are dropped — neither
// affects results). Duplicate specs coalesce server-side, repeated
// submissions are served byte-identically from the daemon's report
// cache, and a re-submitted study therefore runs zero simulations.
// With -progress, server-side studies additionally render a live
// per-cell ticker on stderr — one line per cell state transition
// (running, done, cached, failed) plus aggregate run/round/ETA lines —
// fed by the daemon's SSE study stream (or its polled equivalent).
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"
	"sync"
	"time"

	"awakemis"
	"awakemis/client"
)

func main() {
	var (
		algo     = flag.String("algo", "awake-mis", "task to run (see -list)")
		family   = flag.String("graph", "gnp", "graph family: "+strings.Join(awakemis.Families(), "|"))
		input    = flag.String("input", "", "read the graph from an edge-list file instead of generating")
		n        = flag.Int("n", 1024, "number of nodes")
		p        = flag.Float64("p", 0, "edge probability for gnp (0 = 4/n)")
		d        = flag.Int("d", 4, "degree for regular / attachments for powerlaw")
		r        = flag.Float64("r", 0.1, "radius for geometric")
		seed     = flag.Int64("seed", 1, "random seed")
		engine   = flag.String("engine", "stepped", "simulation engine: stepped|lockstep (results are identical)")
		workers  = flag.Int("workers", 0, "stepped-engine worker pool size; with -batch, the total budget divided among in-flight specs (0 = one per CPU)")
		strict   = flag.Bool("strict", true, "enforce the CONGEST bandwidth bound")
		timeline = flag.Int("timeline", 0, "show an awake timeline of the k busiest nodes (text mode)")
		asJSON   = flag.Bool("json", false, "emit the run's Report as JSON")
		batch    = flag.String("batch", "", "run a JSON file of specs through the batch Runner")
		study    = flag.String("study", "", "run a StudySpec JSON file through the study engine")
		csvOut   = flag.Bool("csv", false, "study: emit the artifact's cells and fits tables as CSV instead of JSON")
		progress = flag.Bool("progress", false, "study: live per-cell progress ticker on stderr (needs -server)")
		parallel = flag.Int("parallel", 0, "batch/study: specs in flight at once (0 = one per CPU)")
		server   = flag.String("server", "", "batch/study: submit to a running awakemisd at this base URL instead of executing locally")
		list     = flag.Bool("list", false, "list tasks and exit")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memProf  = flag.String("memprofile", "", "write a heap profile (after a final GC) to this file at exit")
		runlog   = flag.String("runlog", "", "stream one JSON line per executed round to this file (\"-\" = stdout)")
		roundSum = flag.Bool("round-summary", false, "include the compact per-round summary block in the Report")
	)
	flag.Parse()

	startProfiles(*cpuProf, *memProf)
	defer flushProfiles()

	if *list {
		for _, t := range awakemis.Tasks() {
			fmt.Printf("%-16s %s\n", t.Name, t.Summary)
			fmt.Printf("%-16s   ids: %s\n", "", t.IDScheme)
		}
		return
	}

	// Ctrl-C cancels in-flight simulations at their next round boundary.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	if *study != "" {
		if *batch != "" {
			fail(errors.New("-study and -batch are mutually exclusive"))
		}
		if *progress && *server == "" {
			fail(errors.New("-progress requires -server (local studies already report per-run progress)"))
		}
		runStudy(ctx, *study, *server, *parallel, *workers, *csvOut, *progress)
		return
	}
	if *csvOut {
		fail(errors.New("-csv requires -study"))
	}
	if *progress {
		fail(errors.New("-progress requires -study"))
	}
	if *batch != "" {
		if *server != "" {
			submitBatch(ctx, *batch, *server, *parallel, *seed)
		} else {
			runBatch(ctx, *batch, *parallel, *workers, *seed)
		}
		return
	}
	if *server != "" {
		fail(errors.New("-server requires -batch or -study (single runs execute locally)"))
	}

	var g *awakemis.Graph
	var err error
	if *input != "" {
		f, ferr := os.Open(*input)
		if ferr != nil {
			fail(ferr)
		}
		g, err = awakemis.ReadGraph(f)
		f.Close()
	} else {
		g, err = awakemis.Generate(*family, awakemis.GenOptions{N: *n, P: *p, Degree: *d, Radius: *r, Seed: *seed})
	}
	if err != nil {
		fail(err)
	}
	opt := awakemis.Options{
		Seed: *seed, Strict: *strict, Trace: *timeline > 0,
		Engine: awakemis.Engine(*engine), Workers: *workers,
		RoundSummary: *roundSum,
	}
	var rl *runlogWriter
	if *runlog != "" {
		if rl, err = openRunlog(*runlog); err != nil {
			fail(err)
		}
		opt.Observer = rl
	}
	rep, err := awakemis.RunTaskContext(ctx, g, *algo, opt)
	if rl != nil {
		if cerr := rl.close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	if err != nil {
		fail(err)
	}

	if *asJSON {
		data, err := rep.JSON()
		if err != nil {
			fail(err)
		}
		fmt.Println(string(data))
		return
	}

	m := rep.Metrics
	fmt.Printf("graph            %v\n", g)
	fmt.Printf("task             %s\n", rep.Task)
	fmt.Printf("%s\n", outputLine(rep))
	fmt.Printf("max awake        %d    <- worst-case awake complexity\n", m.MaxAwake)
	fmt.Printf("avg awake        %.2f\n", m.AvgAwake)
	fmt.Printf("rounds           %d    (executed: %d; the rest everyone slept through)\n", m.Rounds, m.ExecutedRounds)
	fmt.Printf("messages         %d    (%d bits, max %d bits/message)\n", m.MessagesSent, m.BitsSent, m.MaxMessageBits)
	// Wall time goes to stderr: stdout stays byte-identical across
	// engines and worker counts (the determinism contract verify flows
	// diff it).
	fmt.Fprintf(os.Stderr, "(%.1fms on the %s engine)\n", rep.WallMS, rep.Engine)
	if *timeline > 0 {
		fmt.Println()
		fmt.Println(rep.TraceSummary())
		fmt.Printf("awake timeline of the %d busiest nodes:\n", *timeline)
		fmt.Print(rep.Timeline(*timeline, 100))
	}
}

// runlogWriter streams the run-log (-runlog): one JSON-encoded
// RoundStat per line, written from the engine goroutine through a
// buffered writer. The first write error sticks and is surfaced at
// close — the simulation itself is never interrupted by a full disk.
type runlogWriter struct {
	f   *os.File // nil for stdout
	buf *bufio.Writer
	enc *json.Encoder
	err error
}

func openRunlog(path string) (*runlogWriter, error) {
	l := &runlogWriter{}
	out := os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return nil, err
		}
		l.f, out = f, f
	}
	l.buf = bufio.NewWriterSize(out, 1<<16)
	l.enc = json.NewEncoder(l.buf)
	return l, nil
}

func (l *runlogWriter) ObserveRound(st awakemis.RoundStat) {
	if l.err == nil {
		l.err = l.enc.Encode(st)
	}
}

func (l *runlogWriter) close() error {
	err := l.err
	if ferr := l.buf.Flush(); err == nil {
		err = ferr
	}
	if l.f != nil {
		if cerr := l.f.Close(); err == nil {
			err = cerr
		}
	}
	if err != nil {
		return fmt.Errorf("runlog: %w", err)
	}
	return nil
}

// outputLine summarizes the task's output for the text report.
func outputLine(rep *awakemis.Report) string {
	switch out := rep.Output; {
	case out.InMIS != nil:
		size := 0
		for _, in := range out.InMIS {
			if in {
				size++
			}
		}
		return fmt.Sprintf("MIS size         %d", size)
	case out.Color != nil:
		colors := map[int]bool{}
		for _, c := range out.Color {
			colors[c] = true
		}
		return fmt.Sprintf("colors used      %d (Δ+1 bound: %d)", len(colors), rep.Graph.MaxDegree+1)
	case out.MatchedWith != nil:
		pairs := 0
		for v, w := range out.MatchedWith {
			if w > v {
				pairs++
			}
		}
		return fmt.Sprintf("matched pairs    %d", pairs)
	default:
		return "output           (empty)"
	}
}

// loadSpecs reads a -batch file: a JSON array of Specs.
func loadSpecs(path string) []awakemis.Spec {
	data, err := os.ReadFile(path)
	if err != nil {
		fail(err)
	}
	var specs []awakemis.Spec
	if err := json.Unmarshal(data, &specs); err != nil {
		fail(fmt.Errorf("%s: %w", path, err))
	}
	return specs
}

// runBatch executes a JSON spec file through the batch Runner:
// reports to stdout (a JSON array, in spec order), progress to stderr.
func runBatch(ctx context.Context, path string, parallel, workers int, seed int64) {
	specs := loadSpecs(path)
	runner := &awakemis.Runner{
		Parallel: parallel,
		Workers:  workers,
		Seed:     seed,
		OnProgress: func(p awakemis.Progress) {
			status := "ok"
			if p.Err != nil {
				status = "FAILED: " + p.Err.Error()
			}
			fmt.Fprintf(os.Stderr, "[%d/%d] %-24s %s\n", p.Done, p.Total, p.Spec.Name+" "+p.Spec.Task, status)
		},
	}
	reports, err := runner.RunBatch(ctx, specs)
	if errors.Is(err, context.Canceled) {
		flushProfiles()
		fmt.Fprintln(os.Stderr, "interrupted")
		os.Exit(130)
	}
	out, jerr := json.MarshalIndent(reports, "", "  ")
	if jerr != nil {
		fail(jerr)
	}
	fmt.Println(string(out))
	if err != nil {
		fail(err)
	}
}

// submitBatch runs a spec file against a remote awakemisd: every spec
// is resolved with the Runner's per-spec seed derivation (so remote
// reports carry the same results as a local -batch run; the daemon's
// canonicalization drops the result-irrelevant workers echo field),
// submitted through the typed client, and awaited. Output matches
// runBatch: a JSON array of Reports in spec order on stdout — the
// daemon serves the exact bytes it cached, so resubmissions are
// byte-identical — and progress on stderr.
func submitBatch(ctx context.Context, path, server string, parallel int, seed int64) {
	specs := loadSpecs(path)
	c := client.New(server, nil)
	if _, err := c.Health(ctx); err != nil {
		fail(err)
	}

	if parallel <= 0 {
		parallel = runtime.NumCPU()
	}
	resolver := &awakemis.Runner{Seed: seed}
	reports := make([]json.RawMessage, len(specs))
	errs := make([]error, len(specs))
	sem := make(chan struct{}, parallel)
	var wg sync.WaitGroup
	var mu sync.Mutex
	done := 0
	for i := range specs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			spec := resolver.Resolve(specs[i], i)
			job, err := c.Submit(ctx, spec)
			if err == nil && !job.Status.Terminal() {
				// WaitJob follows the daemon's SSE event stream (falling
				// back to polling), so completions arrive without poll lag.
				job, err = c.WaitJob(ctx, job.ID, nil)
			}
			status := ""
			switch {
			case err != nil:
			case job.Status == client.JobDone:
				reports[i] = job.Report
				if job.Cached {
					status = " (cached)"
				}
			case job.Status == client.JobFailed:
				err = errors.New(job.Error)
			default:
				err = fmt.Errorf("job %s was %s", job.ID, job.Status)
			}
			errs[i] = err
			mu.Lock()
			done++
			line := "ok" + status
			if err != nil {
				line = "FAILED: " + err.Error()
			}
			fmt.Fprintf(os.Stderr, "[%d/%d] %-24s %s\n", done, len(specs), spec.Name+" "+spec.Task, line)
			mu.Unlock()
		}(i)
	}
	wg.Wait()

	if err := ctx.Err(); err != nil {
		flushProfiles()
		fmt.Fprintln(os.Stderr, "interrupted")
		os.Exit(130)
	}
	out, err := json.MarshalIndent(reports, "", "  ")
	if err != nil {
		fail(err)
	}
	fmt.Println(string(out))
	failed := 0
	var first error
	for _, err := range errs {
		if err != nil {
			failed++
			if first == nil {
				first = err
			}
		}
	}
	if failed > 0 {
		fail(fmt.Errorf("%d of %d specs failed (first: %w)", failed, len(specs), first))
	}
}

// runStudy executes a StudySpec file — locally through the streaming
// StudyRunner, or server-side via POST /v1/studies when -server is
// set — and prints the StudyResult artifact to stdout (JSON, or the
// cells and fits CSV tables with -csv, separated by a blank line).
// Both paths print byte-identical artifacts for the same spec: the
// daemon assembles its result through the same accumulator, and the
// CLI re-renders the decoded artifact with the same canonical
// marshaling.
func runStudy(ctx context.Context, path, server string, parallel, workers int, csvOut, progress bool) {
	data, err := os.ReadFile(path)
	if err != nil {
		fail(err)
	}
	var ss awakemis.StudySpec
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&ss); err != nil {
		fail(fmt.Errorf("%s: %w", path, err))
	}

	var res *awakemis.StudyResult
	if server != "" {
		res = submitStudy(ctx, ss, server, progress)
	} else {
		runner := &awakemis.StudyRunner{
			Parallel: parallel,
			Workers:  workers,
			OnProgress: func(p awakemis.Progress) {
				status := "ok"
				if p.Err != nil {
					status = "FAILED: " + p.Err.Error()
				}
				fmt.Fprintf(os.Stderr, "[%d/%d] %-32s %s\n", p.Done, p.Total, p.Spec.Name, status)
			},
		}
		res, err = runner.Run(ctx, ss)
		if errors.Is(err, context.Canceled) {
			flushProfiles()
			fmt.Fprintln(os.Stderr, "interrupted")
			os.Exit(130)
		}
		if err != nil {
			fail(err)
		}
	}

	if csvOut {
		fmt.Print(res.CellsCSV())
		fmt.Println()
		fmt.Print(res.FitsCSV())
		return
	}
	out, err := res.JSON()
	if err != nil {
		fail(err)
	}
	fmt.Println(string(out))
}

// submitStudy runs the study on a remote awakemisd, with progress on
// stderr as sub-runs finish — coarse run-count lines by default, a
// per-cell ticker with -progress.
func submitStudy(ctx context.Context, ss awakemis.StudySpec, server string, progress bool) *awakemis.StudyResult {
	c := client.New(server, nil)
	if _, err := c.Health(ctx); err != nil {
		fail(err)
	}
	st, err := c.SubmitStudy(ctx, ss)
	if err != nil {
		fail(err)
	}
	id := st.ID // survives WaitStudy overwriting st (nil on poll errors)
	fmt.Fprintf(os.Stderr, "study %s: %d runs\n", id, st.Total)
	var onUpdate func(*client.Study)
	if progress {
		onUpdate = (&studyTicker{}).observe
	} else {
		lastDone := -1
		onUpdate = func(s *client.Study) {
			if s.Done != lastDone {
				fmt.Fprintf(os.Stderr, "[%d/%d] %s\n", s.Done, s.Total, s.Status)
				lastDone = s.Done
			}
		}
	}
	st, err = c.WaitStudy(ctx, id, onUpdate)
	if ctx.Err() != nil || errors.Is(err, context.Canceled) {
		// Best effort: release the daemon-side sub-runs we no longer want.
		cancelCtx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		c.CancelStudy(cancelCtx, id)
		flushProfiles()
		fmt.Fprintln(os.Stderr, "interrupted")
		os.Exit(130)
	}
	if err != nil {
		fail(err)
	}
	switch st.Status {
	case client.JobDone:
		res, err := st.DecodeResult()
		if err != nil {
			fail(err)
		}
		return res
	case client.JobFailed:
		fail(fmt.Errorf("study %s failed: %s", st.ID, st.Error))
	default:
		fail(fmt.Errorf("study %s was %s", st.ID, st.Status))
	}
	return nil
}

// studyTicker renders -progress lines on stderr from the study's live
// views (SSE frames, or polled states on fallback): one line per cell
// state transition, plus an aggregate line whenever the run counters
// move. Cells never transition back into "queued", so that state is
// only ever the silent starting point.
type studyTicker struct {
	states  []string
	lastAgg string
}

func (t *studyTicker) observe(s *client.Study) {
	p := s.Progress
	if p == nil {
		// Pre-progress daemon: degrade to the coarse run counter.
		if agg := fmt.Sprintf("[%d/%d] %s", s.Done, s.Total, s.Status); agg != t.lastAgg {
			fmt.Fprintln(os.Stderr, agg)
			t.lastAgg = agg
		}
		return
	}
	if t.states == nil {
		t.states = make([]string, len(p.Cells))
	}
	for i, c := range p.Cells {
		if i >= len(t.states) || c.State == t.states[i] || c.State == "queued" {
			continue
		}
		t.states[i] = c.State
		detail := fmt.Sprintf("%d/%d trials", c.Done, c.Trials)
		if c.Cached > 0 {
			detail += fmt.Sprintf(", %d cached", c.Cached)
		}
		fmt.Fprintf(os.Stderr, "  cell %2d %s/%s n=%-8d %-9s %-8s (%s)\n",
			c.Index, c.Task, c.Family, c.N, c.Engine, c.State, detail)
	}
	agg := fmt.Sprintf("[%d/%d runs] %d running, %d done, %d cached",
		p.RunsDone, s.Total, p.CellsRunning, p.CellsDone, p.CellsCached)
	if p.CellsFailed > 0 {
		agg += fmt.Sprintf(", %d failed", p.CellsFailed)
	}
	if p.ExecutedRounds > 0 {
		agg += fmt.Sprintf(" · %d rounds", p.ExecutedRounds)
	}
	if p.ETAMS > 0 {
		agg += fmt.Sprintf(" · eta %.1fs", p.ETAMS/1000)
	}
	if agg != t.lastAgg {
		fmt.Fprintln(os.Stderr, agg)
		t.lastAgg = agg
	}
}

// profiles holds the optional pprof outputs. CPU profiling covers
// everything from flag parsing to exit (graph construction included —
// at n=10⁷ the build is a visible fraction of the run); the heap
// profile is written after a final GC, so it reports live bytes, the
// number that matters for "how big a graph fits".
var profiles struct {
	cpu     *os.File
	memPath string
	flushed bool
}

func startProfiles(cpuPath, memPath string) {
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			fail(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			fail(err)
		}
		profiles.cpu = f
	}
	profiles.memPath = memPath
}

// flushProfiles finalizes both profiles; it runs on normal exit and
// from fail, whichever comes first.
func flushProfiles() {
	if profiles.flushed {
		return
	}
	profiles.flushed = true
	if profiles.cpu != nil {
		pprof.StopCPUProfile()
		if err := profiles.cpu.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
		}
	}
	if profiles.memPath != "" {
		f, err := os.Create(profiles.memPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			return
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
		}
		f.Close()
	}
}

func fail(err error) {
	flushProfiles()
	fmt.Fprintln(os.Stderr, "error:", err)
	os.Exit(1)
}
