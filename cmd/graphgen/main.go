// Command graphgen generates workload graphs as edge lists on stdout
// (one "u v" pair per line, preceded by a "# n m" header), for feeding
// external tools or archiving experiment inputs.
//
// Usage:
//
//	graphgen -graph gnp -n 1024 -p 0.004 -seed 7 > g.txt
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"awakemis"
)

func main() {
	var (
		family = flag.String("graph", "gnp", "family: gnp|cycle|path|complete|star|grid|tree|regular|geometric|powerlaw")
		n      = flag.Int("n", 1024, "number of nodes")
		p      = flag.Float64("p", 0, "edge probability for gnp (0 = 4/n)")
		d      = flag.Int("d", 4, "degree for regular / attachments for powerlaw")
		r      = flag.Float64("r", 0.1, "radius for geometric")
		seed   = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()

	g, err := awakemis.Generate(*family, awakemis.GenOptions{N: *n, P: *p, Degree: *d, Radius: *r, Seed: *seed})
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	fmt.Fprintf(w, "# %d %d\n", g.N(), g.M())
	for _, e := range g.Edges() {
		fmt.Fprintf(w, "%d %d\n", e[0], e[1])
	}
}
