// Command graphgen generates workloads: edge lists for external
// tools, or ready-to-submit Spec JSON for the batch runner and the
// awakemisd service.
//
// Usage:
//
//	graphgen -graph gnp -n 1024 -p 0.004 -seed 7 > g.txt
//	graphgen -format spec -graph gnp -n 1024 -task awake-mis > spec.json
//	graphgen -format batch -families all -tasks awake-mis,luby -seeds 3 > specs.json
//
// Formats:
//
//	edges  (default) one "u v" pair per line after a "# n m" header
//	spec   one Spec as JSON — pipe into POST /v1/jobs
//	batch  a JSON array of Specs, the cross product of -families ×
//	       -tasks × -seeds — pipe into awakemis -batch or submit with
//	       awakemis -batch specs.json -server URL
//
// Batch specs are named family/task/s<seed> and validated before
// emission, so a generated file never fails downstream.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"awakemis"
)

func main() {
	var (
		family   = flag.String("graph", "gnp", "family: "+strings.Join(awakemis.Families(), "|"))
		n        = flag.Int("n", 1024, "number of nodes")
		p        = flag.Float64("p", 0, "edge probability for gnp (0 = 4/n)")
		d        = flag.Int("d", 4, "degree for regular / attachments for powerlaw")
		r        = flag.Float64("r", 0.1, "radius for geometric")
		seed     = flag.Int64("seed", 1, "random seed (batch: the first of -seeds consecutive seeds)")
		format   = flag.String("format", "edges", "output: edges|spec|batch")
		tasks    = flag.String("tasks", "awake-mis", "spec/batch: comma-separated task names (see awakemis -list)")
		families = flag.String("families", "", `batch: comma-separated families, or "all" (default: the -graph family)`)
		seeds    = flag.Int("seeds", 1, "batch: seed variants per family×task combo (seed, seed+1, ...)")
		engine   = flag.String("engine", "", "spec/batch: engine option to embed (stepped|lockstep; empty = default)")
		strict   = flag.Bool("strict", true, "spec/batch: enforce the CONGEST bandwidth bound")
	)
	flag.Parse()

	switch *format {
	case "edges":
		emitEdges(*family, awakemis.GenOptions{N: *n, P: *p, Degree: *d, Radius: *r, Seed: *seed})
	case "spec":
		taskList := splitList(*tasks)
		if len(taskList) != 1 {
			fail(fmt.Errorf("-format spec emits one spec; got %d tasks (use -format batch)", len(taskList)))
		}
		spec := buildSpec(taskList[0], *family, *n, *p, *d, *r, *seed, *engine, *strict)
		emitJSON(spec)
	case "batch":
		famList := splitList(*families)
		if len(famList) == 0 {
			famList = []string{*family}
		} else if len(famList) == 1 && strings.EqualFold(famList[0], "all") {
			famList = awakemis.Families()
		}
		taskList := splitList(*tasks)
		if len(taskList) == 0 {
			fail(fmt.Errorf("-format batch needs at least one task"))
		}
		if *seeds < 1 {
			fail(fmt.Errorf("-seeds must be at least 1, got %d", *seeds))
		}
		var specs []awakemis.Spec
		for _, fam := range famList {
			for _, task := range taskList {
				for i := range *seeds {
					specs = append(specs, buildSpec(task, fam, *n, *p, *d, *r, *seed+int64(i), *engine, *strict))
				}
			}
		}
		emitJSON(specs)
	default:
		fail(fmt.Errorf("unknown -format %q (have edges|spec|batch)", *format))
	}
}

// buildSpec assembles and validates one Spec; flag values that match
// the family defaults are elided so the emitted JSON stays minimal.
func buildSpec(task, family string, n int, p float64, d int, r float64, seed int64, engine string, strict bool) awakemis.Spec {
	gs := awakemis.GraphSpec{Family: family, N: n}
	switch strings.ToLower(family) {
	case "gnp":
		gs.P = p
	case "regular", "powerlaw":
		if d != 4 {
			gs.Degree = d
		}
	case "geometric":
		if r != 0.1 {
			gs.Radius = r
		}
	}
	spec := awakemis.Spec{
		Name:  fmt.Sprintf("%s/%s/s%d", strings.ToLower(family), task, seed),
		Task:  task,
		Graph: gs,
		Options: awakemis.Options{
			Seed:   seed,
			Engine: awakemis.Engine(engine),
			Strict: strict,
		},
	}
	if err := spec.Validate(); err != nil {
		fail(err)
	}
	return spec
}

// splitList parses a comma-separated flag into trimmed entries.
func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

func emitEdges(family string, o awakemis.GenOptions) {
	g, err := awakemis.Generate(family, o)
	if err != nil {
		fail(err)
	}
	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	fmt.Fprintf(w, "# %d %d\n", g.N(), g.M())
	for _, e := range g.Edges() {
		fmt.Fprintf(w, "%d %d\n", e[0], e[1])
	}
}

func emitJSON(v any) {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		fail(err)
	}
	fmt.Println(string(data))
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "error:", err)
	os.Exit(1)
}
