// Command graphgen generates workloads: edge lists for external
// tools, or ready-to-submit Spec JSON for the batch runner and the
// awakemisd service.
//
// Usage:
//
//	graphgen -graph gnp -n 1024 -p 0.004 -seed 7 > g.txt
//	graphgen -format spec -graph gnp -n 1024 -task awake-mis > spec.json
//	graphgen -format batch -families all -tasks awake-mis,luby -seeds 3 > specs.json
//	graphgen -format study -families gnp,regular -tasks awake-mis,vt-mis \
//	    -sizes 64,256,1024 -trials 3 > study.json
//
// Formats:
//
//	edges  (default) one "u v" pair per line after a "# n m" header
//	spec   one Spec as JSON — pipe into POST /v1/jobs
//	batch  a JSON array of Specs, the cross product of -families ×
//	       -tasks × -seeds — pipe into awakemis -batch or submit with
//	       awakemis -batch specs.json -server URL
//	study  one StudySpec as JSON: the declarative grid -families ×
//	       -tasks × -sizes with -trials replications per cell — run
//	       with awakemis -study or submit to POST /v1/studies
//
// Batch specs are named family/task/s<seed> and validated before
// emission, so a generated file never fails downstream; study specs
// are validated the same way (including every cell of the expansion).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"awakemis"
)

func main() {
	var (
		family   = flag.String("graph", "gnp", "family: "+strings.Join(awakemis.Families(), "|"))
		n        = flag.Int("n", 1024, "number of nodes")
		p        = flag.Float64("p", 0, "edge probability for gnp (0 = 4/n)")
		d        = flag.Int("d", 4, "degree for regular / attachments for powerlaw")
		r        = flag.Float64("r", 0.1, "radius for geometric")
		seed     = flag.Int64("seed", 1, "random seed (batch: the first of -seeds consecutive seeds; study: the root seed)")
		format   = flag.String("format", "edges", "output: edges|spec|batch|study")
		tasks    = flag.String("tasks", "awake-mis", "spec/batch/study: comma-separated task names (see awakemis -list)")
		families = flag.String("families", "", `batch/study: comma-separated families, or "all" (default: the -graph family)`)
		seeds    = flag.Int("seeds", 1, "batch: seed variants per family×task combo (seed, seed+1, ...)")
		sizes    = flag.String("sizes", "64,256,1024", "study: comma-separated n-sweep")
		trials   = flag.Int("trials", 3, "study: replications per grid cell")
		name     = flag.String("name", "", "study: artifact label (empty = unnamed)")
		engine   = flag.String("engine", "", "spec/batch/study: engine option to embed (stepped|lockstep; empty = default)")
		strict   = flag.Bool("strict", true, "spec/batch/study: enforce the CONGEST bandwidth bound")
	)
	flag.Parse()

	switch *format {
	case "edges":
		emitEdges(*family, awakemis.GenOptions{N: *n, P: *p, Degree: *d, Radius: *r, Seed: *seed})
	case "spec":
		taskList := splitList(*tasks)
		if len(taskList) != 1 {
			fail(fmt.Errorf("-format spec emits one spec; got %d tasks (use -format batch)", len(taskList)))
		}
		spec := buildSpec(taskList[0], *family, *n, *p, *d, *r, *seed, *engine, *strict)
		emitJSON(spec)
	case "batch":
		famList := splitList(*families)
		if len(famList) == 0 {
			famList = []string{*family}
		} else if len(famList) == 1 && strings.EqualFold(famList[0], "all") {
			famList = awakemis.Families()
		}
		taskList := splitList(*tasks)
		if len(taskList) == 0 {
			fail(fmt.Errorf("-format batch needs at least one task"))
		}
		if *seeds < 1 {
			fail(fmt.Errorf("-seeds must be at least 1, got %d", *seeds))
		}
		var specs []awakemis.Spec
		for _, fam := range famList {
			for _, task := range taskList {
				for i := range *seeds {
					specs = append(specs, buildSpec(task, fam, *n, *p, *d, *r, *seed+int64(i), *engine, *strict))
				}
			}
		}
		emitJSON(specs)
	case "study":
		famList := splitList(*families)
		if len(famList) == 0 {
			famList = []string{*family}
		} else if len(famList) == 1 && strings.EqualFold(famList[0], "all") {
			famList = awakemis.Families()
		}
		taskList := splitList(*tasks)
		if len(taskList) == 0 {
			fail(fmt.Errorf("-format study needs at least one task"))
		}
		ss := buildStudy(*name, taskList, famList, splitList(*sizes), *trials, *seed, *p, *d, *r, *engine, *strict)
		emitJSON(ss)
	default:
		fail(fmt.Errorf("unknown -format %q (have edges|spec|batch|study)", *format))
	}
}

// buildStudy assembles and validates a ready-to-run StudySpec grid:
// the same family-knob elision rules as buildSpec, applied per family
// axis entry, with the n-sweep and replication count as axes instead
// of flags baked into each spec. Validation covers the whole
// expansion, so an emitted study never fails downstream.
func buildStudy(name string, tasks, families, sizeList []string, trials int, seed int64, p float64, d int, r float64, engine string, strict bool) awakemis.StudySpec {
	var sizes []int
	for _, s := range sizeList {
		n, err := strconv.Atoi(s)
		if err != nil {
			fail(fmt.Errorf("-sizes: %w", err))
		}
		sizes = append(sizes, n)
	}
	fams := make([]awakemis.GraphSpec, len(families))
	for i, fam := range families {
		gs := awakemis.GraphSpec{Family: strings.ToLower(fam)}
		switch gs.Family {
		case "gnp":
			gs.P = p
		case "regular", "powerlaw":
			if d != 4 {
				gs.Degree = d
			}
		case "geometric":
			if r != 0.1 {
				gs.Radius = r
			}
		}
		fams[i] = gs
	}
	var engines []awakemis.Engine
	if engine != "" {
		engines = []awakemis.Engine{awakemis.Engine(engine)}
	}
	ss := awakemis.StudySpec{
		Name:     name,
		Tasks:    tasks,
		Families: fams,
		Sizes:    sizes,
		Engines:  engines,
		Trials:   trials,
		Seed:     seed,
		Options:  awakemis.Options{Strict: strict},
	}
	if err := ss.Validate(); err != nil {
		fail(err)
	}
	return ss
}

// buildSpec assembles and validates one Spec; flag values that match
// the family defaults are elided so the emitted JSON stays minimal.
func buildSpec(task, family string, n int, p float64, d int, r float64, seed int64, engine string, strict bool) awakemis.Spec {
	gs := awakemis.GraphSpec{Family: family, N: n}
	switch strings.ToLower(family) {
	case "gnp":
		gs.P = p
	case "regular", "powerlaw":
		if d != 4 {
			gs.Degree = d
		}
	case "geometric":
		if r != 0.1 {
			gs.Radius = r
		}
	}
	spec := awakemis.Spec{
		Name:  fmt.Sprintf("%s/%s/s%d", strings.ToLower(family), task, seed),
		Task:  task,
		Graph: gs,
		Options: awakemis.Options{
			Seed:   seed,
			Engine: awakemis.Engine(engine),
			Strict: strict,
		},
	}
	if err := spec.Validate(); err != nil {
		fail(err)
	}
	return spec
}

// splitList parses a comma-separated flag into trimmed entries.
func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

func emitEdges(family string, o awakemis.GenOptions) {
	g, err := awakemis.Generate(family, o)
	if err != nil {
		fail(err)
	}
	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	fmt.Fprintf(w, "# %d %d\n", g.N(), g.M())
	for _, e := range g.Edges() {
		fmt.Fprintf(w, "%d %d\n", e[0], e[1])
	}
}

func emitJSON(v any) {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		fail(err)
	}
	fmt.Println(string(data))
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "error:", err)
	os.Exit(1)
}
