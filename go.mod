module awakemis

go 1.24
