module awakemis

go 1.23
