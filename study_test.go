package awakemis_test

import (
	"context"
	"encoding/json"
	"strings"
	"testing"

	"awakemis"
)

// quickStudy is the acceptance-criteria workload: the paper's
// headline task and the VT-MIS auxiliary over an n-sweep, three
// trials per cell. The seed pins one deterministic draw of the shared
// per-size graphs (cells run all trials on one graph since the paired
// graph-seed derivation); most seeds show the loglog signal at this
// sweep, a few draw an outlier graph — this one is a typical draw.
func quickStudy() awakemis.StudySpec {
	return awakemis.StudySpec{
		Name:    "quick",
		Tasks:   []string{"awake-mis", "vt-mis"},
		Sizes:   []int{64, 256, 1024},
		Trials:  3,
		Seed:    5,
		Options: awakemis.Options{Strict: true},
	}
}

// tinyStudy is the cheapest interesting grid, for tests that sweep
// executor settings.
func tinyStudy() awakemis.StudySpec {
	return awakemis.StudySpec{
		Name:    "tiny",
		Tasks:   []string{"luby", "vt-mis"},
		Sizes:   []int{32, 64},
		Trials:  2,
		Seed:    3,
		Options: awakemis.Options{Strict: true},
	}
}

func TestStudySpecExpansion(t *testing.T) {
	ss := awakemis.StudySpec{
		Tasks:    []string{"awake-mis", "luby"},
		Families: []awakemis.GraphSpec{{Family: "gnp"}, {Family: "Regular", Degree: 6}},
		Sizes:    []int{32, 64},
		Engines:  []awakemis.Engine{"", awakemis.EngineLockstep},
		Trials:   2,
		Seed:     9,
	}
	cells := ss.Cells()
	specs := ss.Specs()
	if len(cells) != 2*2*2*2 {
		t.Fatalf("cells = %d, want 16", len(cells))
	}
	if len(specs) != len(cells)*2 {
		t.Fatalf("specs = %d, want %d", len(specs), len(cells)*2)
	}
	for i, c := range cells {
		if c.Index != i {
			t.Errorf("cell %d has index %d", i, c.Index)
		}
	}
	// The empty engine resolves; the mixed-case family lowercases and
	// its knob lands in the family key.
	if cells[0].Engine != awakemis.EngineStepped {
		t.Errorf("engine = %q, want stepped", cells[0].Engine)
	}
	if want := "regular(d=6)"; cells[len(cells)-1].Family != want {
		t.Errorf("family key = %q, want %q", cells[len(cells)-1].Family, want)
	}
	// Every spec is valid, seed-resolved, and workers/trace-free.
	seedsByGraph := map[string]int64{}
	for i, spec := range specs {
		if err := spec.Validate(); err != nil {
			t.Fatalf("spec %d invalid: %v", i, err)
		}
		if spec.Options.Seed == 0 {
			t.Fatalf("spec %d seed unresolved", i)
		}
		if spec.Options.Workers != 0 || spec.Options.Trace {
			t.Fatalf("spec %d leaked workers/trace: %+v", i, spec.Options)
		}
		// Seeds depend only on (family, size, trial): the same graph
		// under every task and engine.
		cell, trial := cells[i/2], i%2
		key := cell.Family + "/" + string(rune('0'+trial)) + "/" + string(rune('0'+cell.N/32))
		if prev, ok := seedsByGraph[key]; ok && prev != spec.Options.Seed {
			t.Errorf("spec %d: seed %d differs from sibling %d for %s", i, spec.Options.Seed, prev, key)
		}
		seedsByGraph[key] = spec.Options.Seed
	}
	// Expansion is deterministic.
	again := ss.Specs()
	for i := range specs {
		if specs[i] != again[i] {
			t.Fatalf("expansion not deterministic at spec %d", i)
		}
	}

	// Cell seeds depend on the nominal cell, not its grid position:
	// two studies overlapping on a (family, n, trial) derive the same
	// spec for it, so their daemon submissions share one cache entry.
	wide := awakemis.StudySpec{Tasks: []string{"luby"}, Sizes: []int{32, 64}, Trials: 1, Seed: 9}
	narrow := awakemis.StudySpec{Tasks: []string{"luby"}, Sizes: []int{64}, Trials: 1, Seed: 9}
	if wide.Specs()[1] != narrow.Specs()[0] {
		t.Errorf("overlapping cells expand differently:\n%+v\n%+v", wide.Specs()[1], narrow.Specs()[0])
	}
}

func TestStudySpecValidate(t *testing.T) {
	cases := []struct {
		name string
		ss   awakemis.StudySpec
		want string
	}{
		{"no tasks", awakemis.StudySpec{}, "missing tasks"},
		{"unknown task", awakemis.StudySpec{Tasks: []string{"quicksort"}}, "unknown task"},
		{"dup task", awakemis.StudySpec{Tasks: []string{"luby", "luby"}}, "duplicate"},
		{"family n", awakemis.StudySpec{Tasks: []string{"luby"}, Families: []awakemis.GraphSpec{{Family: "gnp", N: 8}}}, "n must be zero"},
		{"family seed", awakemis.StudySpec{Tasks: []string{"luby"}, Families: []awakemis.GraphSpec{{Family: "gnp", Seed: 1}}}, "seed must be zero"},
		{"options seed", awakemis.StudySpec{Tasks: []string{"luby"}, Options: awakemis.Options{Seed: 5}}, "options.seed"},
		{"options engine", awakemis.StudySpec{Tasks: []string{"luby"}, Options: awakemis.Options{Engine: awakemis.EngineStepped}}, "options.engine"},
		{"bad size", awakemis.StudySpec{Tasks: []string{"luby"}, Sizes: []int{0}}, "sizes[0]"},
		{"bad engine", awakemis.StudySpec{Tasks: []string{"luby"}, Engines: []awakemis.Engine{"quantum"}}, "unknown engine"},
		{"oversized grid", awakemis.StudySpec{Tasks: []string{"luby"}, Trials: 1 << 40}, "split the grid"},
		// 3 sizes × 2^62 overflows a naive running product past the cap
		// check; the per-factor guard must trip instead of panicking in
		// the expansion's make().
		{"overflowing grid", awakemis.StudySpec{Tasks: []string{"luby"}, Trials: 1 << 62}, "split the grid"},
		{"cross-axis", awakemis.StudySpec{Tasks: []string{"luby"}, Families: []awakemis.GraphSpec{{Family: "regular", Degree: 64}}, Sizes: []int{32, 128}}, "degree"},
	}
	for _, c := range cases {
		err := c.ss.Validate()
		if err == nil {
			t.Errorf("%s: no error", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
		if !strings.Contains(err.Error(), "invalid spec") {
			t.Errorf("%s: error %q does not wrap ErrInvalidSpec", c.name, err)
		}
	}
	if err := quickStudy().Validate(); err != nil {
		t.Errorf("quick study invalid: %v", err)
	}
}

// TestStudyArtifactDeterminism is the study determinism contract:
// the same StudySpec produces a byte-identical StudyResult artifact
// at every Parallel and Workers setting.
func TestStudyArtifactDeterminism(t *testing.T) {
	ss := tinyStudy()
	var golden []byte
	for _, cfg := range []awakemis.StudyRunner{
		{Parallel: 1, Workers: 1},
		{Parallel: 2, Workers: 1},
		{Parallel: 8, Workers: 4},
		{}, // defaults
	} {
		res, err := cfg.Run(context.Background(), ss)
		if err != nil {
			t.Fatalf("%+v: %v", cfg, err)
		}
		data, err := res.JSON()
		if err != nil {
			t.Fatal(err)
		}
		if golden == nil {
			golden = data
			continue
		}
		if string(data) != string(golden) {
			t.Fatalf("artifact differs at Parallel=%d Workers=%d", cfg.Parallel, cfg.Workers)
		}
	}
}

// TestStudyVectorizedMatchesScalar pins the vectorized executor's
// identity contract: at every replication count and worker setting,
// the trial-vectorized path (the default whenever a cell has R ≥ 2)
// produces a StudyResult artifact byte-identical to the per-trial
// scalar path.
func TestStudyVectorizedMatchesScalar(t *testing.T) {
	for _, trials := range []int{1, 3, 8} {
		ss := awakemis.StudySpec{
			Name:    "ident",
			Tasks:   []string{"luby", "vt-mis"},
			Sizes:   []int{32, 64},
			Trials:  trials,
			Seed:    11,
			Options: awakemis.Options{Strict: true},
		}
		var golden []byte
		for _, workers := range []int{1, 4} {
			for _, scalar := range []bool{true, false} {
				sr := awakemis.StudyRunner{Workers: workers, Scalar: scalar}
				res, err := sr.Run(context.Background(), ss)
				if err != nil {
					t.Fatalf("trials=%d workers=%d scalar=%v: %v", trials, workers, scalar, err)
				}
				data, err := res.JSON()
				if err != nil {
					t.Fatal(err)
				}
				if golden == nil {
					golden = data
					continue
				}
				if string(data) != string(golden) {
					t.Fatalf("artifact differs at trials=%d workers=%d scalar=%v", trials, workers, scalar)
				}
			}
		}
	}
}

// TestStudyFitPrefersLogLog checks the acceptance criterion: over the
// quick study's n-sweep, awake-mis's awake-metric fit prefers the
// log log n model while vt-mis (awake Θ(log I), I = n) prefers log n.
func TestStudyFitPrefersLogLog(t *testing.T) {
	res, err := awakemis.RunStudy(quickStudy())
	if err != nil {
		t.Fatal(err)
	}
	fit, ok := res.Fit("awake-mis", "gnp", awakemis.EngineStepped, "max_awake")
	if !ok {
		t.Fatal("awake-mis max_awake fit missing")
	}
	if fit.Model != "loglog n" {
		t.Errorf("awake-mis max_awake model = %q, want loglog n (fit %+v)", fit.Model, fit)
	}
	if fit.B < fit.BLo-1e-9 || fit.B > fit.BHi+1e-9 {
		t.Errorf("slope %v outside its CI [%v, %v]", fit.B, fit.BLo, fit.BHi)
	}
	vt, ok := res.Fit("vt-mis", "gnp", awakemis.EngineStepped, "max_awake")
	if !ok {
		t.Fatal("vt-mis max_awake fit missing")
	}
	if vt.Model != "log n" {
		t.Errorf("vt-mis max_awake model = %q, want log n (fit %+v)", vt.Model, vt)
	}
	// Cells carry the distribution summary metrics.
	cell, ok := res.Cell("awake-mis", "gnp", 1024, awakemis.EngineStepped)
	if !ok {
		t.Fatal("awake-mis n=1024 cell missing")
	}
	for _, metric := range []string{"max_awake", "awake_p50", "awake_p99", "rounds", "graph_m"} {
		m, ok := cell.Metrics[metric]
		if !ok || m.Trials != 3 {
			t.Errorf("cell metric %s = %+v (ok=%v)", metric, m, ok)
		}
	}
}

// TestStudyArtifactRoundTrip: an artifact decoded from its own JSON
// re-encodes and re-renders identically — what lets a client of the
// daemon regenerate the CSV views locally.
func TestStudyArtifactRoundTrip(t *testing.T) {
	res, err := awakemis.RunStudy(tinyStudy())
	if err != nil {
		t.Fatal(err)
	}
	first, err := res.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var decoded awakemis.StudyResult
	if err := json.Unmarshal(first, &decoded); err != nil {
		t.Fatal(err)
	}
	second, err := decoded.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(first) != string(second) {
		t.Error("JSON round trip not stable")
	}
	if res.CellsCSV() != decoded.CellsCSV() || res.FitsCSV() != decoded.FitsCSV() {
		t.Error("CSV renderings differ after round trip")
	}
	if !strings.HasPrefix(res.CellsCSV(), "task,family,n,engine,metric,trials,mean,std,min,median,max\n") {
		t.Errorf("cells CSV header:\n%s", res.CellsCSV())
	}
	wantRows := len(res.Cells)*len(res.Cells[0].Metrics) + 1
	if got := strings.Count(res.CellsCSV(), "\n"); got != wantRows {
		t.Errorf("cells CSV has %d lines, want %d", got, wantRows)
	}
}

func TestStudyAccumulatorGuards(t *testing.T) {
	ss := awakemis.StudySpec{Tasks: []string{"luby"}, Sizes: []int{16}, Trials: 1, Seed: 1}
	acc, err := ss.Accumulator()
	if err != nil {
		t.Fatal(err)
	}
	if acc.Total() != 1 {
		t.Fatalf("total = %d", acc.Total())
	}
	if _, err := acc.Result(); err == nil || !strings.Contains(err.Error(), "incomplete") {
		t.Errorf("incomplete result error = %v", err)
	}
	rep, err := awakemis.Run(context.Background(), acc.Study().Specs()[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := acc.Add(0, rep); err != nil {
		t.Fatal(err)
	}
	if err := acc.Add(0, rep); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Errorf("duplicate add error = %v", err)
	}
	if err := acc.Add(5, rep); err == nil {
		t.Error("out-of-range add accepted")
	}
	if _, err := acc.Result(); err != nil {
		t.Errorf("complete result errored: %v", err)
	}
}
