package awakemis

import "testing"

func TestGenerateAllFamilies(t *testing.T) {
	for _, fam := range Families() {
		t.Run(fam, func(t *testing.T) {
			g, err := Generate(fam, GenOptions{N: 40, Seed: 1})
			if err != nil {
				t.Fatal(err)
			}
			if g.N() < 40 {
				t.Errorf("family %s: n = %d, want >= 40", fam, g.N())
			}
			// Every generated graph is a usable algorithm input.
			res, err := RunMIS(g, Luby, Options{Seed: 1})
			if err != nil {
				t.Fatal(err)
			}
			if err := Verify(g, res.InMIS); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestGenerateDefaults(t *testing.T) {
	g, err := Generate("gnp", GenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 1024 {
		t.Errorf("default n = %d, want 1024", g.N())
	}
}

func TestGenerateErrors(t *testing.T) {
	if _, err := Generate("klein-bottle", GenOptions{N: 10}); err == nil {
		t.Error("unknown family accepted")
	}
	if _, err := Generate("regular", GenOptions{N: 3, Degree: 5}); err == nil {
		t.Error("regular with d >= n accepted")
	}
}

func TestGenerateCaseInsensitive(t *testing.T) {
	if _, err := Generate("CYCLE", GenOptions{N: 5}); err != nil {
		t.Errorf("uppercase family rejected: %v", err)
	}
}

func TestGenerateRoundsUpStructured(t *testing.T) {
	// hypercube/torus/grid round n up to the nearest valid size.
	g, err := Generate("hypercube", GenOptions{N: 100})
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 128 {
		t.Errorf("hypercube n = %d, want 128", g.N())
	}
	g, err = Generate("torus", GenOptions{N: 10})
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 16 {
		t.Errorf("torus n = %d, want 16", g.N())
	}
}
