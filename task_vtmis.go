package awakemis

import (
	"context"

	"awakemis/internal/sim"
	"awakemis/internal/vtmis"
)

// Registration shim for internal/vtmis: Algorithm VT-MIS (Lemma 10).
func init() {
	registerTask(Task{
		Name:     string(VTMIS),
		Kind:     "mis",
		Summary:  "VT-MIS: O(log I) awake via the virtual binary tree (Lemma 10)",
		IDScheme: `random permutation of [1, n], stream "perm-ids"`,
		rank:     4,
		run: func(ctx context.Context, g *Graph, opt Options, cfg sim.Config) (Output, *sim.Metrics, error) {
			n := g.N()
			res, m, err := vtmis.RunContext(ctx, g.internal(), permIDs(n, opt.Seed), n, cfg)
			if err != nil {
				return Output{}, m, err
			}
			return Output{InMIS: res.InMIS}, m, nil
		},
		verify: verifyMIS,
	})
}
