package awakemis

import (
	"context"

	"awakemis/internal/luby"
	"awakemis/internal/sim"
)

// Registration shim for internal/luby: the classical baseline.
func init() {
	registerTask(Task{
		Name:     string(Luby),
		Kind:     "mis",
		Summary:  "Luby's classical MIS: O(log n) rounds and O(log n) awake",
		IDScheme: "anonymous: per-node randomness only",
		rank:     2,
		run: func(ctx context.Context, g *Graph, opt Options, cfg sim.Config) (Output, *sim.Metrics, error) {
			res, m, err := luby.RunContext(ctx, g.internal(), cfg)
			if err != nil {
				return Output{}, m, err
			}
			return Output{InMIS: res.InMIS}, m, nil
		},
		verify: verifyMIS,
	})
}
