// Sensornet: the paper's motivating scenario (§1.2). A battery-powered
// wireless sensor network — modeled as a random geometric graph — needs
// a maximal independent set to elect cluster heads. Radios dominate the
// energy budget, and a radio listening idly costs almost as much as one
// transmitting, so what matters is how many rounds each sensor must be
// awake, not how many rounds the protocol takes.
//
// This example compares the energy profile of Luby's classical
// algorithm (every undecided node awake every round) against Awake-MIS
// and translates awake rounds into battery figures. Both runs share a
// deployment deadline: a context bounds how long the simulation itself
// may take.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"awakemis"
)

const (
	// Representative radio energy figures (order-of-magnitude, per
	// round): an awake round costs ~1000 units (listen/transmit draw
	// nearly the same, per Feeney–Nilsson 2001), a sleeping round ~1.
	awakeCost = 1000.0
	sleepCost = 1.0
)

func main() {
	// 2000 sensors scattered on the unit square, radio radius 0.045
	// (average degree ~12).
	g := awakemis.RandomGeometric(2000, 0.045, 7)
	fmt.Println("sensor field:", g)

	// Simulations abort (with an error wrapping the deadline) rather
	// than run away — the service-shaped entry point.
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	for _, task := range []string{"luby", "awake-mis"} {
		rep, err := awakemis.RunTaskContext(ctx, g, task, awakemis.Options{Seed: 7})
		if err != nil {
			log.Fatal(err)
		}
		m := rep.Metrics

		heads := 0
		for _, in := range rep.Output.InMIS {
			if in {
				heads++
			}
		}
		// Worst-case node battery: its awake rounds at awakeCost, the
		// rest of the protocol asleep at sleepCost.
		worst := float64(m.MaxAwake)*awakeCost + float64(m.Rounds-m.MaxAwake)*sleepCost
		avg := m.AvgAwake*awakeCost + (float64(m.Rounds)-m.AvgAwake)*sleepCost

		fmt.Printf("\n%s:\n", task)
		fmt.Printf("  cluster heads elected:  %d\n", heads)
		fmt.Printf("  worst-case awake:       %d rounds\n", m.MaxAwake)
		fmt.Printf("  protocol length:        %d rounds\n", m.Rounds)
		fmt.Printf("  worst node energy:      %.0f units\n", worst)
		fmt.Printf("  average node energy:    %.0f units\n", avg)
	}

	fmt.Println("\nNote: Awake-MIS trades a much longer (mostly sleeping) protocol for")
	fmt.Println("a worst-case awake count that barely grows with the network size —")
	fmt.Println("the asymptotic O(log log n) vs O(log n) separation of the paper.")
}
