// Frequency: assign radio frequencies (colors) to wireless sensors so
// no two neighbors share one — the classical application of distributed
// (Δ+1)-coloring, here run in the sleeping model with the §7 extension
// of the paper's virtual-binary-tree technique: every sensor needs only
// O(log n) awake rounds to pick a conflict-free frequency. The run goes
// through the task registry ("coloring") and reads the Report envelope.
package main

import (
	"fmt"
	"log"

	"awakemis"
)

func main() {
	// A dense sensor deployment: interference radius 0.08 on the unit
	// square gives average degree ~25.
	g := awakemis.RandomGeometric(1500, 0.08, 3)
	fmt.Println("interference graph:", g)

	rep, err := awakemis.RunTask(g, awakemis.TaskColoring, awakemis.Options{Seed: 3, Strict: true})
	if err != nil {
		log.Fatal(err)
	}

	channels := map[int]int{}
	for _, c := range rep.Output.Color {
		channels[c]++
	}
	fmt.Printf("\nfrequencies used:   %d (Δ+1 bound: %d)\n", len(channels), rep.Graph.MaxDegree+1)
	fmt.Printf("worst-case awake:   %d rounds (the O(log n) guarantee)\n", rep.Metrics.MaxAwake)
	fmt.Printf("protocol length:    %d rounds\n", rep.Metrics.Rounds)
	fmt.Printf("verified proper:    %v (%.1fms on the %s engine)\n", rep.Verified, rep.WallMS, rep.Engine)

	fmt.Println("\nchannel load (sensors per frequency):")
	for c := 0; c < len(channels); c++ {
		if channels[c] > 0 {
			bar := channels[c] / 8
			fmt.Printf("  ch %2d: %4d %s\n", c, channels[c], repeat('#', bar))
		}
	}
}

func repeat(ch byte, n int) string {
	if n < 0 {
		n = 0
	}
	b := make([]byte, n)
	for i := range b {
		b[i] = ch
	}
	return string(b)
}
