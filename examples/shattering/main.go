// Shattering: a visual demonstration of the two probabilistic pillars
// under Awake-MIS (§4.3–4.4). First, residual sparsity (Lemma 2):
// running greedy MIS on a random prefix of the nodes collapses the
// maximum degree of what remains. Second, shattering (Lemma 3):
// splitting a bounded-degree graph into 2Δ random classes leaves only
// tiny connected components — which is why each Awake-MIS batch can
// finish with an O(log n)-size LDT-MIS in O(log log n) awake rounds.
//
// Unlike the other examples, this one demonstrates the internal
// probabilistic machinery directly (no simulation runs), so it stays
// on the internal packages; its RNG streams go through the
// centralized splitmix64 deriver like everything else.
package main

import (
	"fmt"
	"math"
	"math/rand"

	"awakemis/internal/graph"
	"awakemis/internal/greedy"
	"awakemis/internal/rng"
)

const seed = 11

// stream returns an independent labeled RNG stream under the demo seed.
func stream(label string) *rand.Rand {
	return rand.New(rand.NewSource(rng.Derive(seed, label, 0)))
}

func main() {
	n := 4096
	g := graph.GNP(n, 16/float64(n), stream("input"))
	fmt.Println("input:", g)

	fmt.Println("\n-- Lemma 2: residual sparsity after a greedy prefix --")
	fmt.Printf("%-10s %-14s %-14s\n", "prefix t", "residual Δ", "bound (n/t)·2ln n")
	order := stream("order").Perm(n)
	for _, t := range []int{64, 128, 256, 512, 1024, 2048} {
		maxDeg := greedy.ResidualMaxDegree(g, order, t, n)
		bound := float64(n) / float64(t) * 2 * math.Log(float64(n))
		fmt.Printf("%-10d %-14d %-14.1f\n", t, maxDeg, bound)
	}

	fmt.Println("\n-- Lemma 3: shattering a bounded-degree graph --")
	h := graph.RandomRegular(n, 8, stream("regular"))
	fmt.Println("input:", h)
	classSizes := greedy.Shatter(h, stream("shatter"))
	largest := greedy.MaxShatteredComponent(classSizes)
	fmt.Printf("classes: 2Δ = %d\n", len(classSizes))
	fmt.Printf("largest surviving component: %d nodes (bound 12·ln n = %.1f)\n",
		largest, 12*math.Log(float64(n)))

	hist := map[int]int{}
	for _, sizes := range classSizes {
		for _, s := range sizes {
			hist[s]++
		}
	}
	fmt.Println("component size histogram across all classes:")
	for s := 1; s <= largest; s++ {
		if hist[s] > 0 {
			fmt.Printf("  size %2d: %5d components\n", s, hist[s])
		}
	}
	fmt.Println("\nalmost everything is a singleton — each batch of Awake-MIS sees")
	fmt.Println("only O(log n)-sized islands, small enough for LDT-MIS to finish")
	fmt.Println("in O(log log n) awake rounds.")
}
