// Compare: sweep the network size and watch the growth rates that the
// paper's title is about — Luby's awake complexity grows like log n,
// Awake-MIS like log log n (essentially flat at laptop scales), while
// VT-MIS shows the O(log I) middle ground of Lemma 10.
package main

import (
	"fmt"
	"log"

	"awakemis"
)

func main() {
	sizes := []int{64, 256, 1024, 4096}
	algos := []awakemis.Algorithm{awakemis.Luby, awakemis.VTMIS, awakemis.AwakeMIS}

	fmt.Printf("%-8s", "n")
	for _, a := range algos {
		fmt.Printf("%16s", a)
	}
	fmt.Println("   (max awake rounds)")

	first := map[awakemis.Algorithm]int64{}
	last := map[awakemis.Algorithm]int64{}
	for _, n := range sizes {
		g := awakemis.GNP(n, 4/float64(n), int64(n))
		fmt.Printf("%-8d", n)
		for _, a := range algos {
			res, err := awakemis.Run(g, a, awakemis.Options{Seed: int64(n)})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%16d", res.Metrics.MaxAwake)
			if _, ok := first[a]; !ok {
				first[a] = res.Metrics.MaxAwake
			}
			last[a] = res.Metrics.MaxAwake
		}
		fmt.Println()
	}

	fmt.Println("\ngrowth over the sweep (last/first):")
	for _, a := range algos {
		fmt.Printf("  %-12s %.2fx\n", a, float64(last[a])/float64(first[a]))
	}
	fmt.Println("\nexpected shape: luby ~2x (Θ(log n) over a 64x size range),")
	fmt.Println("vt-mis ~1.5x (Θ(log I) with I=n), awake-mis ~1.0x (Θ(log log n)).")
}
