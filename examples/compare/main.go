// Compare: sweep the network size and watch the growth rates that the
// paper's title is about — Luby's awake complexity grows like log n,
// Awake-MIS like log log n (essentially flat at laptop scales), while
// VT-MIS shows the O(log I) middle ground of Lemma 10.
//
// The whole sweep is one declarative batch: a Spec per (algorithm, n),
// executed concurrently by the Runner with deterministic results.
package main

import (
	"context"
	"fmt"
	"log"

	"awakemis"
)

func main() {
	sizes := []int{64, 256, 1024, 4096}
	tasks := []string{"luby", "vt-mis", "awake-mis"}

	var specs []awakemis.Spec
	for _, n := range sizes {
		for _, task := range tasks {
			specs = append(specs, awakemis.Spec{
				Name:    fmt.Sprintf("%s/n=%d", task, n),
				Task:    task,
				Graph:   awakemis.GraphSpec{Family: "gnp", N: n, P: 4 / float64(n), Seed: int64(n)},
				Options: awakemis.Options{Seed: int64(n)},
			})
		}
	}
	reports, err := (&awakemis.Runner{}).RunBatch(context.Background(), specs)
	if err != nil {
		log.Fatal(err)
	}
	byName := map[string]*awakemis.Report{}
	for i, rep := range reports {
		byName[specs[i].Name] = rep
	}

	fmt.Printf("%-8s", "n")
	for _, task := range tasks {
		fmt.Printf("%16s", task)
	}
	fmt.Println("   (max awake rounds)")

	first := map[string]int64{}
	last := map[string]int64{}
	for _, n := range sizes {
		fmt.Printf("%-8d", n)
		for _, task := range tasks {
			rep := byName[fmt.Sprintf("%s/n=%d", task, n)]
			fmt.Printf("%16d", rep.Metrics.MaxAwake)
			if _, ok := first[task]; !ok {
				first[task] = rep.Metrics.MaxAwake
			}
			last[task] = rep.Metrics.MaxAwake
		}
		fmt.Println()
	}

	fmt.Println("\ngrowth over the sweep (last/first):")
	for _, task := range tasks {
		fmt.Printf("  %-12s %.2fx\n", task, float64(last[task])/float64(first[task]))
	}
	fmt.Println("\nexpected shape: luby ~2x (Θ(log n) over a 64x size range),")
	fmt.Println("vt-mis ~1.5x (Θ(log I) with I=n), awake-mis ~1.0x (Θ(log log n)).")
}
