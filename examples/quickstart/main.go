// Quickstart: run the paper's O(log log n)-awake MIS through the task
// registry, inspect the Report envelope, and print its JSON wire form.
package main

import (
	"fmt"
	"log"

	"awakemis"
)

func main() {
	// The task registry is the API surface: every problem in the
	// repository is one registered Task.
	fmt.Println("registered tasks:")
	for _, t := range awakemis.Tasks() {
		fmt.Printf("  %-16s %s\n", t.Name, t.Summary)
	}

	// A sparse random graph on 1024 nodes (average degree ~4).
	g := awakemis.GNP(1024, 4.0/1024, 1)
	fmt.Println("\ninput:", g)

	rep, err := awakemis.RunTask(g, "awake-mis", awakemis.Options{
		Seed:   42,
		Strict: true, // enforce the O(log n)-bit CONGEST bound
	})
	if err != nil {
		log.Fatal(err)
	}

	misSize := 0
	for _, in := range rep.Output.InMIS {
		if in {
			misSize++
		}
	}
	m := rep.Metrics
	fmt.Printf("MIS size:          %d (verified: %v)\n", misSize, rep.Verified)
	fmt.Printf("worst-case awake:  %d rounds  <- the O(log log n) quantity\n", m.MaxAwake)
	fmt.Printf("node-avg awake:    %.1f rounds\n", m.AvgAwake)
	fmt.Printf("round complexity:  %d rounds (%d actually executed;\n", m.Rounds, m.ExecutedRounds)
	fmt.Printf("                   in the rest, every node was asleep)\n")
	fmt.Printf("communication:     %d messages, %d bits total\n", m.MessagesSent, m.BitsSent)
	fmt.Printf("wall time:         %.1fms on the %s engine\n", rep.WallMS, rep.Engine)

	// The same envelope, machine-readable: this is what
	// `cmd/awakemis -json` and the batch Runner emit.
	rep.Output.InMIS = rep.Output.InMIS[:8] // truncate for display only
	data, err := rep.JSON()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nReport JSON (output truncated to 8 nodes):\n%s\n", data)
}
