// Quickstart: compute a maximal independent set with the paper's
// O(log log n)-awake algorithm and inspect the complexity metrics.
package main

import (
	"fmt"
	"log"

	"awakemis"
)

func main() {
	// A sparse random graph on 1024 nodes (average degree ~4).
	g := awakemis.GNP(1024, 4.0/1024, 1)
	fmt.Println("input:", g)

	res, err := awakemis.Run(g, awakemis.AwakeMIS, awakemis.Options{
		Seed:   42,
		Strict: true, // enforce the O(log n)-bit CONGEST bound
	})
	if err != nil {
		log.Fatal(err)
	}

	misSize := 0
	for _, in := range res.InMIS {
		if in {
			misSize++
		}
	}
	m := res.Metrics
	fmt.Printf("MIS size:          %d (verified maximal + independent)\n", misSize)
	fmt.Printf("worst-case awake:  %d rounds  <- the O(log log n) quantity\n", m.MaxAwake)
	fmt.Printf("node-avg awake:    %.1f rounds\n", m.AvgAwake)
	fmt.Printf("round complexity:  %d rounds (%d actually executed;\n", m.Rounds, m.ExecutedRounds)
	fmt.Printf("                   in the rest, every node was asleep)\n")
	fmt.Printf("communication:     %d messages, %d bits total\n", m.MessagesSent, m.BitsSent)
}
