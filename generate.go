package awakemis

import (
	"fmt"
	"strings"
)

// GenOptions parameterizes Generate. Zero values take family-specific
// defaults (P = 4/N for gnp, Degree = 4, Radius = 0.1).
type GenOptions struct {
	// N is the number of nodes.
	N int
	// P is the edge probability (gnp).
	P float64
	// Degree is the degree target (regular) or attachments (powerlaw).
	Degree int
	// Radius is the connection radius (geometric).
	Radius float64
	// Seed drives randomized generators.
	Seed int64
}

// Families lists the graph families Generate accepts.
func Families() []string {
	return []string{
		"gnp", "cycle", "path", "complete", "star", "grid",
		"tree", "regular", "geometric", "powerlaw", "hypercube", "torus",
	}
}

// Generate builds a workload graph by family name — the single place
// the CLI tools and experiment scripts construct inputs from.
func Generate(family string, o GenOptions) (*Graph, error) {
	n := o.N
	if n <= 0 {
		n = 1024
	}
	p := o.P
	if p == 0 {
		p = 4 / float64(n)
	}
	d := o.Degree
	if d == 0 {
		d = 4
	}
	r := o.Radius
	if r == 0 {
		r = 0.1
	}
	switch strings.ToLower(family) {
	case "gnp":
		return GNP(n, p, o.Seed), nil
	case "cycle":
		return Cycle(n), nil
	case "path":
		return Path(n), nil
	case "complete":
		return Complete(n), nil
	case "star":
		return Star(n), nil
	case "grid":
		side := 1
		for side*side < n {
			side++
		}
		return Grid(side, side), nil
	case "tree":
		return RandomTree(n, o.Seed), nil
	case "regular":
		if d >= n {
			return nil, fmt.Errorf("awakemis: regular family needs degree < n, got %d >= %d", d, n)
		}
		return RandomRegular(n, d, o.Seed), nil
	case "geometric":
		return RandomGeometric(n, r, o.Seed), nil
	case "powerlaw":
		return PreferentialAttachment(n, d, o.Seed), nil
	case "hypercube":
		dim := 0
		for 1<<uint(dim) < n {
			dim++
		}
		return Hypercube(dim), nil
	case "torus":
		side := 1
		for side*side < n {
			side++
		}
		return Torus(side, side), nil
	default:
		return nil, fmt.Errorf("awakemis: unknown graph family %q (have %s)",
			family, strings.Join(Families(), "|"))
	}
}
